(** Telemetry: hierarchical tracing, a metrics registry and a cost-model
    accuracy monitor (DESIGN.md §11).

    An {!t} is the sink an {!Granii_core.Engine.t} carries; each of its
    three components is independently optional, and {!disabled} — the
    default — makes every recording entry point a cheap no-op (one option
    match, no allocation), so an untelemetered run is indistinguishable
    from the pre-observability executor.

    All span and recording entry points are for the {e orchestrating}
    thread only (like the workspace arena); worker domains never touch the
    sink. *)

(** {1 Hierarchical span recorder} *)

module Trace : sig
  type t

  type span
  (** A handle to an open span; mutable, owned by the recorder. *)

  val create : unit -> t

  val enter : t -> ?cat:string -> string -> span
  (** Open a span named [name] (category default ["granii"]) at the current
      stack depth, timestamped with {!Granii_hw.Timer.wall}. *)

  val exit_ : t -> ?attrs:(string * string) list -> ?dur:float -> span -> unit
  (** Close the span: duration from the wall clock, or [dur] seconds when
      the caller already measured the bracket (the executor does — spans
      and [per_step] report entries then agree exactly). Any still-open
      descendant is closed first, so the recorder stays balanced even when
      an exception unwound past a manual {!enter}. Closing an
      already-closed span is a no-op. *)

  val with_span :
    t -> ?cat:string -> ?attrs:(string * string) list -> string ->
    (unit -> 'a) -> 'a
  (** Exception-safe bracket; a raising body still closes the span (with an
      ["error"] attribute) before the exception propagates. *)

  val add_attrs : span -> (string * string) list -> unit

  val count : t -> int
  (** Spans recorded so far. *)

  val open_spans : t -> int
  (** Currently unbalanced spans; [0] after every bracket closed. *)

  val aggregate : t -> (string * int * float) list
  (** Per-name [(count, total seconds)], sorted by descending total. *)

  val to_chrome_json : t -> string
  (** Chrome [trace_event] JSON (complete ["X"] events, microsecond
      timestamps relative to the trace epoch) — loadable by
      [chrome://tracing] and Perfetto. *)

  val to_folded : t -> string
  (** Folded flamegraph lines (["stack;frames self-us"]) for
      [flamegraph.pl] / speedscope. *)
end

(** {1 Metrics registry} *)

module Metrics : sig
  type t

  val create : unit -> t

  val add : t -> string -> int -> unit
  (** Increment a counter (created at first use). *)

  val set_gauge : t -> string -> float -> unit

  val observe : t -> string -> float -> unit
  (** Record a sample into a histogram (log-spaced seconds buckets,
      [1e-6 .. 10] plus overflow). *)

  val counter_value : t -> string -> int
  (** [0] for an unknown counter. *)

  val gauge_value : t -> string -> float option

  val hist_stats : t -> string -> (int * float * float * float) option
  (** [(count, sum, min, max)] of a histogram. *)

  val counters : t -> (string * int) list
  (** Sorted by name; likewise {!gauges} and {!histograms}. *)

  val gauges : t -> (string * float) list

  val histograms : t -> (string * (int * float * float * float)) list

  val to_json : t -> string

  val to_prometheus : t -> string
  (** Prometheus text exposition format; names are sanitized to
      [[a-zA-Z0-9_]] and prefixed ["granii_"]. *)
end

(** {1 Cost-model accuracy monitor} *)

module Cost_monitor : sig
  type t

  val create : unit -> t

  val record : t -> prim:string -> predicted:float -> measured:float -> unit
  (** Log one (predicted, measured) runtime pair for a primitive. The
      per-primitive series is a ring capped at 4096 pairs: once full, each
      new pair displaces the oldest, so the summary statistics (and the
      {!Granii_core.Cost_oracle} calibration feed) always describe the
      most recent 4096 executions. [n] counts every recorded run. *)

  val series_pairs : t -> string -> (float * float) list
  (** The (predicted, measured) pairs currently held for a primitive,
      oldest first ([[]] for an unknown primitive). This is the
      calibration feed: at most the 4096 most recent pairs. *)

  val prims : t -> string list
  (** Primitive names with at least one recorded pair, sorted. *)

  type summary = {
    prim : string;
    n : int;                    (** recorded runs *)
    mean_abs_log_err : float;
        (** mean [|ln (predicted / measured)|] over positive pairs;
            [0] = perfect, [ln 2 ≈ 0.69] = off by 2x on average *)
    rank_inversions : int;
        (** discordant pairs: the model predicted [a] faster than [b] but
            [b] measured faster — the quantity selection actually depends
            on (Kendall-tau numerator) *)
    pairs_compared : int;       (** pairs with distinct values on both axes *)
  }

  val summaries : t -> summary list
  (** Sorted by primitive name. *)

  val to_json : t -> string

  val pp : Format.formatter -> t -> unit
end

(** {1 The sink} *)

type t = {
  trace : Trace.t option;
  metrics : Metrics.t option;
  costmon : Cost_monitor.t option;
}

val disabled : t
(** All three components off; every helper below is a no-op. *)

val create : ?trace:bool -> ?metrics:bool -> ?costmon:bool -> unit -> t
(** A live sink; each component defaults to on. *)

val enabled : t -> bool

val tracing : t -> bool

val span : t -> ?cat:string -> ?attrs:(string * string) list -> string ->
  (unit -> 'a) -> 'a
(** {!Trace.with_span} when tracing, plain call otherwise. *)

val count : t -> string -> int -> unit
val gauge : t -> string -> float -> unit
val observe : t -> string -> float -> unit
val record_cost : t -> prim:string -> predicted:float -> measured:float -> unit

(** {1 JSON checker} *)

module Json : sig
  val validate : string -> (unit, string) result
  (** Accepts exactly RFC 8259 JSON; the error names the failing byte
      offset. Used by the exporter tests and the CI telemetry checker. *)
end
