(** Telemetry: hierarchical tracing, a metrics registry, a cost-model
    accuracy monitor, a lock-free per-domain event journal, streaming
    quantile sketches and drift detectors (DESIGN.md §11, §16).

    An {!t} is the sink an {!Granii_core.Engine.t} carries; each of its
    four components is independently optional, and {!disabled} — the
    default — makes every recording entry point a cheap no-op (one option
    match, no allocation), so an untelemetered run is indistinguishable
    from the pre-observability executor.

    Span and metric recording entry points are for the {e orchestrating}
    thread only (like the workspace arena). The {!Journal} is the one
    exception: any domain may record into it concurrently (each writes its
    own ring). *)

(** {1 Hierarchical span recorder} *)

module Trace : sig
  type t

  type span
  (** A handle to an open span; mutable, owned by the recorder. *)

  val create : unit -> t

  val enter : t -> ?cat:string -> string -> span
  (** Open a span named [name] (category default ["granii"]) at the current
      stack depth, timestamped with {!Granii_hw.Timer.wall}. *)

  val exit_ : t -> ?attrs:(string * string) list -> ?dur:float -> span -> unit
  (** Close the span: duration from the wall clock, or [dur] seconds when
      the caller already measured the bracket (the executor does — spans
      and [per_step] report entries then agree exactly). Any still-open
      descendant is closed first, so the recorder stays balanced even when
      an exception unwound past a manual {!enter}. Closing an
      already-closed span is a no-op. *)

  val with_span :
    t -> ?cat:string -> ?attrs:(string * string) list -> string ->
    (unit -> 'a) -> 'a
  (** Exception-safe bracket; a raising body still closes the span (with an
      ["error"] attribute) before the exception propagates. *)

  val add_attrs : span -> (string * string) list -> unit

  val count : t -> int
  (** Spans recorded so far. *)

  val open_spans : t -> int
  (** Currently unbalanced spans; [0] after every bracket closed. *)

  val aggregate : t -> (string * int * float) list
  (** Per-name [(count, total seconds)], sorted by descending total. *)

  val to_chrome_json : t -> string
  (** Chrome [trace_event] JSON (complete ["X"] events, microsecond
      timestamps relative to the trace epoch) — loadable by
      [chrome://tracing] and Perfetto. *)

  val to_folded : t -> string
  (** Folded flamegraph lines (["stack;frames self-us"]) for
      [flamegraph.pl] / speedscope. *)
end

(** {1 Metrics registry} *)

module Metrics : sig
  type t

  val create : unit -> t

  val add : t -> string -> int -> unit
  (** Increment a counter (created at first use). *)

  val set_gauge : t -> string -> float -> unit

  val add_labeled : t -> string -> labels:(string * string) list -> int -> unit
  (** Increment a labeled counter series. Labels are sorted, so the same
      set in any order addresses the same series; listings and exports
      render the series as [name{k="v",...}] with label values escaped per
      the Prometheus exposition format. *)

  val set_gauge_labeled :
    t -> string -> labels:(string * string) list -> float -> unit

  val escape_label_value : string -> string
  (** Prometheus exposition-format label-value escaping: backslash, double
      quote and newline. *)

  val observe : t -> string -> float -> unit
  (** Record a sample into a histogram (log-spaced seconds buckets,
      [1e-6 .. 10] plus overflow). *)

  val counter_value : t -> string -> int
  (** [0] for an unknown counter. *)

  val gauge_value : t -> string -> float option

  val hist_stats : t -> string -> (int * float * float * float) option
  (** [(count, sum, min, max)] of a histogram. *)

  val counters : t -> (string * int) list
  (** Sorted by name; likewise {!gauges} and {!histograms}. *)

  val gauges : t -> (string * float) list

  val histograms : t -> (string * (int * float * float * float)) list

  val to_json : t -> string

  val to_prometheus : t -> string
  (** Prometheus text exposition format; names are sanitized to
      [[a-zA-Z0-9_]] and prefixed ["granii_"]. Every metric family gets
      exactly one [# HELP] and one [# TYPE] line ahead of its samples, and
      label values are escaped with {!escape_label_value}. *)
end

(** {1 Cost-model accuracy monitor} *)

module Cost_monitor : sig
  type t

  val create : unit -> t

  val record : t -> prim:string -> predicted:float -> measured:float -> unit
  (** Log one (predicted, measured) runtime pair for a primitive. Below
      4096 pairs the per-primitive series holds every pair exactly, in
      recording order. Past that it becomes a reservoir sample (Vitter's
      Algorithm R over a deterministic per-primitive xorshift stream): each
      subsequent pair lands in a uniformly random slot with probability
      [4096/n], so the summary statistics (and the
      {!Granii_core.Cost_oracle} calibration feed) describe the process's
      {e whole} history with uniform weight rather than one arbitrary
      window. [n] counts every recorded run. *)

  val series_pairs : t -> string -> (float * float) list
  (** The (predicted, measured) pairs currently held for a primitive,
      ordered by recording index — oldest first — so "newest third"
      holdout splits stay meaningful ([[]] for an unknown primitive). This
      is the calibration feed: at most 4096 pairs, a uniform sample of the
      series history once past the cap. *)

  val prims : t -> string list
  (** Primitive names with at least one recorded pair, sorted. *)

  type summary = {
    prim : string;
    n : int;                    (** recorded runs *)
    mean_abs_log_err : float;
        (** mean [|ln (predicted / measured)|] over positive pairs;
            [0] = perfect, [ln 2 ≈ 0.69] = off by 2x on average *)
    rank_inversions : int;
        (** discordant pairs: the model predicted [a] faster than [b] but
            [b] measured faster — the quantity selection actually depends
            on (Kendall-tau numerator) *)
    pairs_compared : int;       (** pairs with distinct values on both axes *)
  }

  val summaries : t -> summary list
  (** Sorted by primitive name. *)

  val to_json : t -> string

  val pp : Format.formatter -> t -> unit
end

(** {1 Event journal} *)

module Journal : sig
  (** An always-on, lock-free, per-domain bounded event journal. Each
      writer domain owns a fixed ring of [capacity] records (parallel
      unboxed arrays), so recording an event is a handful of array stores
      and a counter bump — no allocation, no lock, no contention with
      other domains. Once a ring is full the oldest record is overwritten;
      per-domain sequence numbers are monotonic from 0, so a drained
      snapshot shows exactly which records were lost. *)

  type kind =
    | Step                   (** one measured plan-step execution *)
    | Request                (** one serving request fulfilled *)
    | Batch                  (** one training batch executed *)
    | Plan_cache_hit
    | Plan_cache_miss
    | Plan_cache_invalidate  (** oracle version bump invalidated cached plans *)
    | Calibrate              (** a calibration pass ran (tag: accepted/rejected) *)
    | Drift                  (** a drift detector fired *)
    | Backpressure           (** a submit was rejected with [Queue_full] *)
    | Slo_breach             (** a request latency exceeded the SLO *)
    | Mark                   (** free-form marker *)

  val kind_to_string : kind -> string

  type entry = {
    e_seq : int;     (** per-domain monotonic sequence number, from 0 *)
    e_domain : int;  (** writer domain id *)
    e_t : float;     (** {!Granii_hw.Timer.wall} at record time *)
    e_kind : kind;
    e_tag : string;
    e_v : float;
  }

  type t

  val create : ?capacity:int -> unit -> t
  (** Per-domain ring capacity, default 1024 records (min 8). *)

  val capacity : t -> int

  val record : t -> kind -> tag:string -> v:float -> unit
  (** Safe from any domain; each domain writes only its own ring. *)

  val total : t -> int
  (** Events ever recorded, across domains. *)

  val dropped : t -> int
  (** Events lost to ring overwrite, across domains. *)

  val entries : t -> entry list
  (** Advisory snapshot of the currently-held records, merged across
      domains by timestamp (ties: domain, then sequence). Writers running
      concurrently with the drain may overwrite the oldest slots; drain
      after writers quiesce when exact contents matter. *)

  val kind_counts : t -> (string * int) list
  (** [(kind, count)] over the held records, zero kinds omitted. *)

  val to_jsonl : t -> string
  (** One JSON object per line:
      [{"seq":…,"domain":…,"t":…,"kind":…,"tag":…,"v":…}]. *)

  val pp_entry : Format.formatter -> entry -> unit
end

(** {1 Streaming quantile sketches} *)

module Sketch : sig
  (** P² (Jain & Chlamtac 1985) streaming quantile estimation: five
      markers per tracked quantile (p50/p90/p95/p99), fixed memory, O(1)
      per observation, no stored samples. Exact for the first five
      observations. Estimation error is not worst-case bounded; on smooth
      unimodal distributions it is empirically within a few percent
      relative (tolerances pinned by the tests, documented in DESIGN.md
      §16). *)

  type t

  val create : unit -> t
  val add : t -> float -> unit
  (** Non-finite samples are ignored. *)

  val count : t -> int
  val minimum : t -> float
  val maximum : t -> float

  val quantile : t -> float -> float
  (** [nan] when empty. Tracked quantiles (0.5, 0.9, 0.95, 0.99) read
      their estimator directly; other probabilities interpolate between
      the tracked estimates and the observed min/max. *)

  val merge : t -> t -> t
  (** A merged view built by stratified replay through each input's
      piecewise-linear inverse CDF (≤ 512 synthetic samples, proportional
      to the inputs' counts and never more than an input's own count, so
      small merges keep an honest {!count}). Approximate — tails are
      linearized — and never mutates the inputs. *)

  val merge_all : t list -> t
  (** Folds {!merge}; a singleton list returns the sketch itself (treat
      the result as read-only). *)
end

(** {1 Drift detectors} *)

module Drift : sig
  (** Change detection over a scalar stream (|log error|, p99 latency, …)
      combining two tests: Page–Hinkley (cumulative deviation above the
      running mean minus [delta] exceeds [lambda]) for sustained upward
      trends, and a sustained-level test (EWMA above [level] for
      [patience] consecutive observations) for streams that are wrong from
      the start — e.g. a mis-anchored hardware profile, which never shows
      a trend. Either firing counts as drift; the detector resets itself
      afterwards so it re-arms against the corrected stream. *)

  type t

  val create :
    ?delta:float -> ?lambda:float -> ?level:float -> ?patience:int ->
    ?min_samples:int -> ?alpha:float -> string -> t
  (** [delta]: PH insensitivity (default 0.005). [lambda]: PH threshold
      (default 25.; [infinity] disables). [level]: level threshold
      (default 0. = disabled). [patience]: consecutive EWMA exceedances to
      fire (default 32). [min_samples]: no firing before this many
      observations (default 32). [alpha]: EWMA smoothing (default 0.1). *)

  val name : t -> string

  val observe : t -> float -> bool
  (** Feed one observation; [true] = drift fired (and the detector was
      reset). Non-finite observations are ignored. *)

  val fired : t -> int
  (** Total firings over the detector's life. *)

  val samples : t -> int
  (** Observations since the last reset. *)

  val last_stat : t -> float
  (** Statistic value at the last firing. *)
end

(** {1 The sink} *)

type t = {
  trace : Trace.t option;
  metrics : Metrics.t option;
  costmon : Cost_monitor.t option;
  journal : Journal.t option;
}

val disabled : t
(** All four components off; every helper below is a no-op. *)

val create :
  ?trace:bool -> ?metrics:bool -> ?costmon:bool -> ?journal:bool ->
  ?journal_capacity:int -> unit -> t
(** A live sink; each component defaults to on. *)

val enabled : t -> bool

val tracing : t -> bool

val span : t -> ?cat:string -> ?attrs:(string * string) list -> string ->
  (unit -> 'a) -> 'a
(** {!Trace.with_span} when tracing, plain call otherwise. *)

val count : t -> string -> int -> unit
val gauge : t -> string -> float -> unit
val observe : t -> string -> float -> unit
val record_cost : t -> prim:string -> predicted:float -> measured:float -> unit

val event : t -> Journal.kind -> tag:string -> v:float -> unit
(** Journal an event when the journal is on. Hot paths should guard on
    [t.journal <> None] before computing the tag/value, so a disabled sink
    costs nothing. *)

(** {1 JSON checker / reader} *)

module Json : sig
  val validate : string -> (unit, string) result
  (** Accepts exactly RFC 8259 JSON; the error names the failing byte
      offset. Used by the exporter tests and the CI telemetry checker. *)

  type value =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of value list
    | Obj of (string * value) list

  val parse : string -> (value, string) result
  (** Same grammar as {!validate}, building a {!value}. All numbers land
      in [Num]. Used by [bin/bench_gate.ml] to diff bench artifacts
      against committed baselines. *)

  val member : string -> value -> value option
  (** Field lookup on an [Obj]; [None] otherwise. *)
end
