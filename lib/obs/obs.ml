module Timer = Granii_hw.Timer

(* ---- hierarchical span recorder ---- *)

module Trace = struct
  type span = {
    name : string;
    cat : string;
    depth : int;
    ts : float;              (* wall seconds at enter, absolute *)
    mutable dur : float;     (* seconds; < 0 while the span is open *)
    mutable attrs : (string * string) list;
  }

  type t = {
    epoch : float;
    mutable spans_rev : span list;  (* every entered span, newest first *)
    mutable n : int;
    mutable stack : span list;      (* open spans, innermost first *)
  }

  let create () =
    { epoch = Timer.wall (); spans_rev = []; n = 0; stack = [] }

  let count t = t.n
  let open_spans t = List.length t.stack

  let enter t ?(cat = "granii") name =
    let sp =
      { name;
        cat;
        depth = List.length t.stack;
        ts = Timer.wall ();
        dur = -1.;
        attrs = [] }
    in
    t.spans_rev <- sp :: t.spans_rev;
    t.n <- t.n + 1;
    t.stack <- sp :: t.stack;
    sp

  (* Close [sp], closing any still-open descendant first so the recorder
     stays balanced even when a callee leaked a span (e.g. an exception
     unwound past a manual enter). *)
  let exit_ t ?(attrs = []) ?dur sp =
    let close s d = if s.dur < 0. then s.dur <- d in
    let rec pop () =
      match t.stack with
      | [] -> ()
      | s :: rest ->
          t.stack <- rest;
          if s == sp then begin
            (match dur with
            | Some d -> close s d
            | None -> close s (Timer.wall () -. s.ts));
            s.attrs <- attrs @ s.attrs
          end
          else begin
            close s (Timer.wall () -. s.ts);
            pop ()
          end
    in
    if List.exists (fun s -> s == sp) t.stack then pop ()

  let with_span t ?cat ?(attrs = []) name f =
    let sp = enter t ?cat name in
    match f () with
    | x ->
        exit_ t ~attrs sp;
        x
    | exception e ->
        exit_ t ~attrs:(("error", Printexc.to_string e) :: attrs) sp;
        raise e

  let add_attrs sp attrs = sp.attrs <- attrs @ sp.attrs

  let ordered t = List.rev t.spans_rev

  let dur_of sp = Float.max 0. sp.dur

  (* name -> (count, total seconds), sorted by descending total *)
  let aggregate t =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun sp ->
        let c, s =
          match Hashtbl.find_opt tbl sp.name with
          | Some (c, s) -> (c, s)
          | None -> (0, 0.)
        in
        Hashtbl.replace tbl sp.name (c + 1, s +. dur_of sp))
      (ordered t);
    Hashtbl.fold (fun name (c, s) acc -> (name, c, s) :: acc) tbl []
    |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)

  let json_escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  (* Chrome trace_event format: one complete ("ph":"X") event per span,
     timestamps in microseconds relative to the trace epoch. Loadable by
     chrome://tracing and Perfetto. *)
  let to_chrome_json t =
    let b = Buffer.create 4096 in
    Buffer.add_string b "[";
    let first = ref true in
    List.iter
      (fun sp ->
        if not !first then Buffer.add_string b ",";
        first := false;
        Buffer.add_string b
          (Printf.sprintf
             "\n  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \
              \"ts\": %.3f, \"dur\": %.3f, \"pid\": 0, \"tid\": 0"
             (json_escape sp.name) (json_escape sp.cat)
             ((sp.ts -. t.epoch) *. 1e6)
             (dur_of sp *. 1e6));
        (match sp.attrs with
        | [] -> ()
        | attrs ->
            Buffer.add_string b ", \"args\": {";
            List.iteri
              (fun i (k, v) ->
                if i > 0 then Buffer.add_string b ", ";
                Buffer.add_string b
                  (Printf.sprintf "\"%s\": \"%s\"" (json_escape k)
                     (json_escape v)))
              attrs;
            Buffer.add_string b "}");
        Buffer.add_string b "}")
      (ordered t);
    Buffer.add_string b "\n]\n";
    Buffer.contents b

  (* Folded flamegraph lines: "root;child;leaf <self-time-in-us>", one line
     per distinct stack, mergeable by flamegraph.pl / speedscope. Self time
     is a span's duration minus its direct children's. *)
  let to_folded t =
    let totals = Hashtbl.create 16 in
    let add path self =
      let v = try Hashtbl.find totals path with Not_found -> 0. in
      Hashtbl.replace totals path (v +. Float.max 0. self)
    in
    (* stack of (span, children-duration accumulator, path) *)
    let stack = ref [] in
    let retire (sp, children, path) = add path (dur_of sp -. !children) in
    let rec unwind depth =
      match !stack with
      | ((sp, _, _) as top) :: rest when sp.depth >= depth ->
          retire top;
          stack := rest;
          (match rest with
          | (_, children, _) :: _ -> children := !children +. dur_of sp
          | [] -> ());
          unwind depth
      | _ -> ()
    in
    List.iter
      (fun sp ->
        unwind sp.depth;
        let path =
          match !stack with
          | (_, _, parent) :: _ -> parent ^ ";" ^ sp.name
          | [] -> sp.name
        in
        stack := (sp, ref 0., path) :: !stack)
      (ordered t);
    unwind 0;
    let lines =
      Hashtbl.fold
        (fun path self acc ->
          (Printf.sprintf "%s %.0f" path (self *. 1e6)) :: acc)
        totals []
      |> List.sort compare
    in
    String.concat "\n" lines ^ if lines = [] then "" else "\n"
end

(* ---- metrics registry ---- *)

module Metrics = struct
  (* log-spaced "less or equal" bucket bounds, in seconds when the metric is
     a time; the +Inf bucket is implicit *)
  let default_buckets = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10. |]

  type hist = {
    mutable count : int;
    mutable sum : float;
    mutable min : float;
    mutable max : float;
    bounds : float array;
    buckets : int array;  (* non-cumulative; one slot per bound + overflow *)
  }

  type t = {
    counters : (string, int ref) Hashtbl.t;
    gauges : (string, float ref) Hashtbl.t;
    hists : (string, hist) Hashtbl.t;
  }

  let create () =
    { counters = Hashtbl.create 16;
      gauges = Hashtbl.create 16;
      hists = Hashtbl.create 16 }

  let add t name n =
    match Hashtbl.find_opt t.counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.add t.counters name (ref n)

  let set_gauge t name v =
    match Hashtbl.find_opt t.gauges name with
    | Some r -> r := v
    | None -> Hashtbl.add t.gauges name (ref v)

  let observe t name v =
    let h =
      match Hashtbl.find_opt t.hists name with
      | Some h -> h
      | None ->
          let h =
            { count = 0;
              sum = 0.;
              min = infinity;
              max = neg_infinity;
              bounds = default_buckets;
              buckets = Array.make (Array.length default_buckets + 1) 0 }
          in
          Hashtbl.add t.hists name h;
          h
    in
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.min then h.min <- v;
    if v > h.max then h.max <- v;
    let rec slot i =
      if i >= Array.length h.bounds then i
      else if v <= h.bounds.(i) then i
      else slot (i + 1)
    in
    let i = slot 0 in
    h.buckets.(i) <- h.buckets.(i) + 1

  let counter_value t name =
    match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

  let gauge_value t name =
    match Hashtbl.find_opt t.gauges name with Some r -> Some !r | None -> None

  let hist_stats t name =
    match Hashtbl.find_opt t.hists name with
    | None -> None
    | Some h -> Some (h.count, h.sum, h.min, h.max)

  let sorted_keys tbl =
    Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

  let counters t = List.map (fun k -> (k, counter_value t k)) (sorted_keys t.counters)
  let gauges t =
    List.map
      (fun k -> (k, match gauge_value t k with Some v -> v | None -> 0.))
      (sorted_keys t.gauges)
  let histograms t =
    List.filter_map
      (fun k ->
        match Hashtbl.find_opt t.hists k with
        | Some h -> Some (k, (h.count, h.sum, h.min, h.max))
        | None -> None)
      (sorted_keys t.hists)

  let esc = Trace.json_escape

  let fnum x =
    if Float.is_finite x then Printf.sprintf "%.9g" x
    else Printf.sprintf "\"%s\"" (string_of_float x)

  let to_json t =
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\n  \"counters\": {";
    List.iteri
      (fun i k ->
        if i > 0 then Buffer.add_string b ",";
        Buffer.add_string b
          (Printf.sprintf "\n    \"%s\": %d" (esc k) (counter_value t k)))
      (sorted_keys t.counters);
    Buffer.add_string b "\n  },\n  \"gauges\": {";
    List.iteri
      (fun i k ->
        if i > 0 then Buffer.add_string b ",";
        let v = match gauge_value t k with Some v -> v | None -> 0. in
        Buffer.add_string b (Printf.sprintf "\n    \"%s\": %s" (esc k) (fnum v)))
      (sorted_keys t.gauges);
    Buffer.add_string b "\n  },\n  \"histograms\": {";
    List.iteri
      (fun i k ->
        if i > 0 then Buffer.add_string b ",";
        let h = Hashtbl.find t.hists k in
        Buffer.add_string b
          (Printf.sprintf
             "\n    \"%s\": {\"count\": %d, \"sum\": %s, \"min\": %s, \
              \"max\": %s, \"buckets\": ["
             (esc k) h.count (fnum h.sum)
             (fnum (if h.count = 0 then 0. else h.min))
             (fnum (if h.count = 0 then 0. else h.max)));
        Array.iteri
          (fun i c ->
            if i > 0 then Buffer.add_string b ", ";
            Buffer.add_string b (string_of_int c))
          h.buckets;
        Buffer.add_string b "]}")
      (sorted_keys t.hists);
    Buffer.add_string b "\n  }\n}\n";
    Buffer.contents b

  (* Prometheus text exposition format. Metric names are sanitized to the
     [a-zA-Z0-9_] alphabet and prefixed "granii_". *)
  let prom_name name =
    "granii_"
    ^ String.map
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
          | _ -> '_')
        name

  let to_prometheus t =
    let b = Buffer.create 1024 in
    List.iter
      (fun k ->
        let n = prom_name k in
        Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" n);
        Buffer.add_string b (Printf.sprintf "%s %d\n" n (counter_value t k)))
      (sorted_keys t.counters);
    List.iter
      (fun k ->
        let n = prom_name k in
        let v = match gauge_value t k with Some v -> v | None -> 0. in
        Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" n);
        Buffer.add_string b (Printf.sprintf "%s %.9g\n" n v))
      (sorted_keys t.gauges);
    List.iter
      (fun k ->
        let h = Hashtbl.find t.hists k in
        let n = prom_name k in
        Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
        let cum = ref 0 in
        Array.iteri
          (fun i bound ->
            cum := !cum + h.buckets.(i);
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"%.0e\"} %d\n" n bound !cum))
          h.bounds;
        Buffer.add_string b
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n h.count);
        Buffer.add_string b (Printf.sprintf "%s_sum %.9g\n" n h.sum);
        Buffer.add_string b (Printf.sprintf "%s_count %d\n" n h.count))
      (sorted_keys t.hists);
    Buffer.contents b
end

(* ---- cost-model accuracy monitor ---- *)

module Cost_monitor = struct
  (* Per-primitive (predicted, measured) pairs in a bounded ring, so a long
     profiling sweep cannot grow the monitor without bound. The ring keeps
     the [max_pairs] MOST RECENT pairs — the summary statistics (and the
     calibration feed built on them) always describe the current regime,
     not whatever the process happened to do first. *)
  let max_pairs = 4096

  type series = {
    mutable buf : (float * float) array;  (* ring storage, grows to max_pairs *)
    mutable start : int;                  (* index of the oldest pair *)
    mutable len : int;                    (* pairs currently held *)
    mutable n : int;                      (* pairs ever recorded *)
  }

  type t = (string, series) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let record (t : t) ~prim ~predicted ~measured =
    let s =
      match Hashtbl.find_opt t prim with
      | Some s -> s
      | None ->
          let s = { buf = Array.make 64 (0., 0.); start = 0; len = 0; n = 0 } in
          Hashtbl.add t prim s;
          s
    in
    s.n <- s.n + 1;
    let cap = Array.length s.buf in
    if s.len = cap && cap < max_pairs then begin
      (* grow: unroll the ring into a doubled buffer *)
      let cap' = min max_pairs (2 * cap) in
      let buf' = Array.make cap' (0., 0.) in
      for i = 0 to s.len - 1 do
        buf'.(i) <- s.buf.((s.start + i) mod cap)
      done;
      s.buf <- buf';
      s.start <- 0
    end;
    let cap = Array.length s.buf in
    if s.len < cap then begin
      s.buf.((s.start + s.len) mod cap) <- (predicted, measured);
      s.len <- s.len + 1
    end
    else begin
      (* full ring: overwrite the oldest pair *)
      s.buf.(s.start) <- (predicted, measured);
      s.start <- (s.start + 1) mod cap
    end

  (* Oldest-first snapshot of the pairs currently held. *)
  let held (s : series) =
    let cap = Array.length s.buf in
    List.init s.len (fun i -> s.buf.((s.start + i) mod cap))

  let series_pairs (t : t) prim =
    match Hashtbl.find_opt t prim with None -> [] | Some s -> held s

  let prims (t : t) =
    Hashtbl.fold (fun prim _ acc -> prim :: acc) t [] |> List.sort compare

  type summary = {
    prim : string;
    n : int;                    (* recorded runs *)
    mean_abs_log_err : float;   (* mean |ln(predicted / measured)| *)
    rank_inversions : int;      (* discordant (predicted, measured) pairs *)
    pairs_compared : int;       (* pair count the inversions are out of *)
  }

  let summarize prim (s : series) =
    let pairs = List.filter (fun (p, m) -> p > 0. && m > 0.) (held s) in
    let k = List.length pairs in
    let mean_abs_log_err =
      if k = 0 then nan
      else
        List.fold_left (fun acc (p, m) -> acc +. Float.abs (log (p /. m))) 0. pairs
        /. float_of_int k
    in
    let arr = Array.of_list pairs in
    let inv = ref 0 and total = ref 0 in
    for i = 0 to Array.length arr - 1 do
      for j = i + 1 to Array.length arr - 1 do
        let pi, mi = arr.(i) and pj, mj = arr.(j) in
        if pi <> pj && mi <> mj then begin
          incr total;
          if (pi -. pj) *. (mi -. mj) < 0. then incr inv
        end
      done
    done;
    { prim;
      n = s.n;
      mean_abs_log_err;
      rank_inversions = !inv;
      pairs_compared = !total }

  let summaries (t : t) =
    Hashtbl.fold (fun prim s acc -> summarize prim s :: acc) t []
    |> List.sort (fun a b -> compare a.prim b.prim)

  let to_json (t : t) =
    let b = Buffer.create 512 in
    Buffer.add_string b "{";
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_string b ",";
        Buffer.add_string b
          (Printf.sprintf
             "\n  \"%s\": {\"n\": %d, \"mean_abs_log_err\": %s, \
              \"rank_inversions\": %d, \"pairs_compared\": %d}"
             (Trace.json_escape s.prim) s.n
             (Metrics.fnum s.mean_abs_log_err)
             s.rank_inversions s.pairs_compared))
      (summaries t);
    Buffer.add_string b "\n}\n";
    Buffer.contents b

  let pp ppf (t : t) =
    Format.fprintf ppf "%-16s %6s %14s %16s@." "primitive" "runs"
      "mean|log err|" "rank inversions";
    List.iter
      (fun s ->
        Format.fprintf ppf "%-16s %6d %14.3f %10d/%d@." s.prim s.n
          s.mean_abs_log_err s.rank_inversions s.pairs_compared)
      (summaries t)
end

(* ---- the sink threaded through the engine ---- *)

type t = {
  trace : Trace.t option;
  metrics : Metrics.t option;
  costmon : Cost_monitor.t option;
}

let disabled = { trace = None; metrics = None; costmon = None }

let create ?(trace = true) ?(metrics = true) ?(costmon = true) () =
  { trace = (if trace then Some (Trace.create ()) else None);
    metrics = (if metrics then Some (Metrics.create ()) else None);
    costmon = (if costmon then Some (Cost_monitor.create ()) else None) }

let enabled t = t.trace <> None || t.metrics <> None || t.costmon <> None
let tracing t = t.trace <> None

let span t ?cat ?attrs name f =
  match t.trace with
  | None -> f ()
  | Some tr -> Trace.with_span tr ?cat ?attrs name f

let count t name n =
  match t.metrics with None -> () | Some m -> Metrics.add m name n

let gauge t name v =
  match t.metrics with None -> () | Some m -> Metrics.set_gauge m name v

let observe t name v =
  match t.metrics with None -> () | Some m -> Metrics.observe m name v

let record_cost t ~prim ~predicted ~measured =
  match t.costmon with
  | None -> ()
  | Some cm -> Cost_monitor.record cm ~prim ~predicted ~measured

(* ---- minimal JSON well-formedness checker ----

   Used by the exporter tests and the CI telemetry checker; accepts exactly
   the JSON grammar (RFC 8259), reports the failing byte offset. *)

module Json = struct
  exception Bad of int * string

  let validate s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let bump () = incr pos in
    let fail msg = raise (Bad (!pos, msg)) in
    let rec ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          bump ();
          ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> bump ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal l =
      String.iter (fun c -> expect c) l
    in
    let string_ () =
      expect '"';
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> bump ()
        | Some '\\' -> (
            bump ();
            match peek () with
            | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
                bump ();
                go ()
            | Some 'u' ->
                bump ();
                for _ = 1 to 4 do
                  match peek () with
                  | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> bump ()
                  | _ -> fail "bad \\u escape"
                done;
                go ()
            | _ -> fail "bad escape")
        | Some c when Char.code c < 0x20 -> fail "control char in string"
        | Some _ ->
            bump ();
            go ()
      in
      go ()
    in
    let number () =
      (match peek () with Some '-' -> bump () | _ -> ());
      let digits () =
        let saw = ref false in
        let rec go () =
          match peek () with
          | Some '0' .. '9' ->
              saw := true;
              bump ();
              go ()
          | _ -> ()
        in
        go ();
        if not !saw then fail "expected digit"
      in
      digits ();
      (match peek () with
      | Some '.' ->
          bump ();
          digits ()
      | _ -> ());
      match peek () with
      | Some ('e' | 'E') ->
          bump ();
          (match peek () with Some ('+' | '-') -> bump () | _ -> ());
          digits ()
      | _ -> ()
    in
    let rec value () =
      ws ();
      match peek () with
      | Some '{' ->
          bump ();
          ws ();
          if peek () = Some '}' then bump ()
          else begin
            let rec members () =
              ws ();
              string_ ();
              ws ();
              expect ':';
              value ();
              ws ();
              match peek () with
              | Some ',' ->
                  bump ();
                  members ()
              | Some '}' -> bump ()
              | _ -> fail "expected , or }"
            in
            members ()
          end
      | Some '[' ->
          bump ();
          ws ();
          if peek () = Some ']' then bump ()
          else begin
            let rec elements () =
              value ();
              ws ();
              match peek () with
              | Some ',' ->
                  bump ();
                  elements ()
              | Some ']' -> bump ()
              | _ -> fail "expected , or ]"
            in
            elements ()
          end
      | Some '"' -> string_ ()
      | Some 't' -> literal "true"
      | Some 'f' -> literal "false"
      | Some 'n' -> literal "null"
      | Some ('-' | '0' .. '9') -> number ()
      | _ -> fail "expected a JSON value"
    in
    match
      value ();
      ws ();
      if !pos <> n then fail "trailing garbage"
    with
    | () -> Ok ()
    | exception Bad (at, msg) ->
        Error (Printf.sprintf "invalid JSON at byte %d: %s" at msg)
end
