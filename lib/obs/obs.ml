module Timer = Granii_hw.Timer

(* ---- hierarchical span recorder ---- *)

module Trace = struct
  type span = {
    name : string;
    cat : string;
    depth : int;
    ts : float;              (* wall seconds at enter, absolute *)
    mutable dur : float;     (* seconds; < 0 while the span is open *)
    mutable attrs : (string * string) list;
  }

  type t = {
    epoch : float;
    mutable spans_rev : span list;  (* every entered span, newest first *)
    mutable n : int;
    mutable stack : span list;      (* open spans, innermost first *)
  }

  let create () =
    { epoch = Timer.wall (); spans_rev = []; n = 0; stack = [] }

  let count t = t.n
  let open_spans t = List.length t.stack

  let enter t ?(cat = "granii") name =
    let sp =
      { name;
        cat;
        depth = List.length t.stack;
        ts = Timer.wall ();
        dur = -1.;
        attrs = [] }
    in
    t.spans_rev <- sp :: t.spans_rev;
    t.n <- t.n + 1;
    t.stack <- sp :: t.stack;
    sp

  (* Close [sp], closing any still-open descendant first so the recorder
     stays balanced even when a callee leaked a span (e.g. an exception
     unwound past a manual enter). *)
  let exit_ t ?(attrs = []) ?dur sp =
    let close s d = if s.dur < 0. then s.dur <- d in
    let rec pop () =
      match t.stack with
      | [] -> ()
      | s :: rest ->
          t.stack <- rest;
          if s == sp then begin
            (match dur with
            | Some d -> close s d
            | None -> close s (Timer.wall () -. s.ts));
            s.attrs <- attrs @ s.attrs
          end
          else begin
            close s (Timer.wall () -. s.ts);
            pop ()
          end
    in
    if List.exists (fun s -> s == sp) t.stack then pop ()

  let with_span t ?cat ?(attrs = []) name f =
    let sp = enter t ?cat name in
    match f () with
    | x ->
        exit_ t ~attrs sp;
        x
    | exception e ->
        exit_ t ~attrs:(("error", Printexc.to_string e) :: attrs) sp;
        raise e

  let add_attrs sp attrs = sp.attrs <- attrs @ sp.attrs

  let ordered t = List.rev t.spans_rev

  let dur_of sp = Float.max 0. sp.dur

  (* name -> (count, total seconds), sorted by descending total *)
  let aggregate t =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun sp ->
        let c, s =
          match Hashtbl.find_opt tbl sp.name with
          | Some (c, s) -> (c, s)
          | None -> (0, 0.)
        in
        Hashtbl.replace tbl sp.name (c + 1, s +. dur_of sp))
      (ordered t);
    Hashtbl.fold (fun name (c, s) acc -> (name, c, s) :: acc) tbl []
    |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)

  let json_escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  (* Chrome trace_event format: one complete ("ph":"X") event per span,
     timestamps in microseconds relative to the trace epoch. Loadable by
     chrome://tracing and Perfetto. *)
  let to_chrome_json t =
    let b = Buffer.create 4096 in
    Buffer.add_string b "[";
    let first = ref true in
    List.iter
      (fun sp ->
        if not !first then Buffer.add_string b ",";
        first := false;
        Buffer.add_string b
          (Printf.sprintf
             "\n  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \
              \"ts\": %.3f, \"dur\": %.3f, \"pid\": 0, \"tid\": 0"
             (json_escape sp.name) (json_escape sp.cat)
             ((sp.ts -. t.epoch) *. 1e6)
             (dur_of sp *. 1e6));
        (match sp.attrs with
        | [] -> ()
        | attrs ->
            Buffer.add_string b ", \"args\": {";
            List.iteri
              (fun i (k, v) ->
                if i > 0 then Buffer.add_string b ", ";
                Buffer.add_string b
                  (Printf.sprintf "\"%s\": \"%s\"" (json_escape k)
                     (json_escape v)))
              attrs;
            Buffer.add_string b "}");
        Buffer.add_string b "}")
      (ordered t);
    Buffer.add_string b "\n]\n";
    Buffer.contents b

  (* Folded flamegraph lines: "root;child;leaf <self-time-in-us>", one line
     per distinct stack, mergeable by flamegraph.pl / speedscope. Self time
     is a span's duration minus its direct children's. *)
  let to_folded t =
    let totals = Hashtbl.create 16 in
    let add path self =
      let v = try Hashtbl.find totals path with Not_found -> 0. in
      Hashtbl.replace totals path (v +. Float.max 0. self)
    in
    (* stack of (span, children-duration accumulator, path) *)
    let stack = ref [] in
    let retire (sp, children, path) = add path (dur_of sp -. !children) in
    let rec unwind depth =
      match !stack with
      | ((sp, _, _) as top) :: rest when sp.depth >= depth ->
          retire top;
          stack := rest;
          (match rest with
          | (_, children, _) :: _ -> children := !children +. dur_of sp
          | [] -> ());
          unwind depth
      | _ -> ()
    in
    List.iter
      (fun sp ->
        unwind sp.depth;
        let path =
          match !stack with
          | (_, _, parent) :: _ -> parent ^ ";" ^ sp.name
          | [] -> sp.name
        in
        stack := (sp, ref 0., path) :: !stack)
      (ordered t);
    unwind 0;
    let lines =
      Hashtbl.fold
        (fun path self acc ->
          (Printf.sprintf "%s %.0f" path (self *. 1e6)) :: acc)
        totals []
      |> List.sort compare
    in
    String.concat "\n" lines ^ if lines = [] then "" else "\n"
end

(* ---- metrics registry ---- *)

module Metrics = struct
  (* log-spaced "less or equal" bucket bounds, in seconds when the metric is
     a time; the +Inf bucket is implicit *)
  let default_buckets = [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10. |]

  type hist = {
    mutable count : int;
    mutable sum : float;
    mutable min : float;
    mutable max : float;
    bounds : float array;
    buckets : int array;  (* non-cumulative; one slot per bound + overflow *)
  }

  type t = {
    counters : (string, int ref) Hashtbl.t;
    gauges : (string, float ref) Hashtbl.t;
    hists : (string, hist) Hashtbl.t;
  }

  let create () =
    { counters = Hashtbl.create 16;
      gauges = Hashtbl.create 16;
      hists = Hashtbl.create 16 }

  (* Labeled series are stored under an encoded key: the family name plus
     the sorted label pairs joined on unprintable separators (which never
     appear in metric names — those are dotted identifiers from code).
     Unlabeled metrics keep their plain name as the key, so every existing
     call site and lookup is unaffected. *)
  let label_sep = '\x00'
  let kv_sep = '\x01'

  let encode_key name labels =
    match labels with
    | [] -> name
    | labels ->
        let labels = List.sort compare labels in
        let b = Buffer.create 32 in
        Buffer.add_string b name;
        List.iter
          (fun (k, v) ->
            Buffer.add_char b label_sep;
            Buffer.add_string b k;
            Buffer.add_char b kv_sep;
            Buffer.add_string b v)
          labels;
        Buffer.contents b

  let decode_key key =
    match String.index_opt key label_sep with
    | None -> (key, [])
    | Some i ->
        let name = String.sub key 0 i in
        let rest = String.sub key (i + 1) (String.length key - i - 1) in
        let labels =
          List.map
            (fun part ->
              match String.index_opt part kv_sep with
              | Some j ->
                  ( String.sub part 0 j,
                    String.sub part (j + 1) (String.length part - j - 1) )
              | None -> (part, ""))
            (String.split_on_char label_sep rest)
        in
        (name, labels)

  (* Label values per the Prometheus exposition format: backslash, double
     quote and newline must be escaped inside the quoted value. *)
  let escape_label_value v =
    let b = Buffer.create (String.length v + 2) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string b "\\\\"
        | '"' -> Buffer.add_string b "\\\""
        | '\n' -> Buffer.add_string b "\\n"
        | c -> Buffer.add_char b c)
      v;
    Buffer.contents b

  let display_key key =
    let name, labels = decode_key key in
    match labels with
    | [] -> name
    | labels ->
        name ^ "{"
        ^ String.concat ","
            (List.map
               (fun (k, v) ->
                 Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
               labels)
        ^ "}"

  let add t name n =
    match Hashtbl.find_opt t.counters name with
    | Some r -> r := !r + n
    | None -> Hashtbl.add t.counters name (ref n)

  let add_labeled t name ~labels n = add t (encode_key name labels) n

  let set_gauge t name v =
    match Hashtbl.find_opt t.gauges name with
    | Some r -> r := v
    | None -> Hashtbl.add t.gauges name (ref v)

  let set_gauge_labeled t name ~labels v = set_gauge t (encode_key name labels) v

  let observe t name v =
    let h =
      match Hashtbl.find_opt t.hists name with
      | Some h -> h
      | None ->
          let h =
            { count = 0;
              sum = 0.;
              min = infinity;
              max = neg_infinity;
              bounds = default_buckets;
              buckets = Array.make (Array.length default_buckets + 1) 0 }
          in
          Hashtbl.add t.hists name h;
          h
    in
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.min then h.min <- v;
    if v > h.max then h.max <- v;
    let rec slot i =
      if i >= Array.length h.bounds then i
      else if v <= h.bounds.(i) then i
      else slot (i + 1)
    in
    let i = slot 0 in
    h.buckets.(i) <- h.buckets.(i) + 1

  let counter_value t name =
    match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

  let gauge_value t name =
    match Hashtbl.find_opt t.gauges name with Some r -> Some !r | None -> None

  let hist_stats t name =
    match Hashtbl.find_opt t.hists name with
    | None -> None
    | Some h -> Some (h.count, h.sum, h.min, h.max)

  let sorted_keys tbl =
    Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

  (* Listings render labeled keys as [name{k="v",...}] with escaped label
     values; unlabeled keys are returned verbatim. *)
  let counters t =
    List.map (fun k -> (display_key k, counter_value t k)) (sorted_keys t.counters)
  let gauges t =
    List.map
      (fun k -> (display_key k, match gauge_value t k with Some v -> v | None -> 0.))
      (sorted_keys t.gauges)
  let histograms t =
    List.filter_map
      (fun k ->
        match Hashtbl.find_opt t.hists k with
        | Some h -> Some (display_key k, (h.count, h.sum, h.min, h.max))
        | None -> None)
      (sorted_keys t.hists)

  let esc = Trace.json_escape

  let fnum x =
    if Float.is_finite x then Printf.sprintf "%.9g" x
    else Printf.sprintf "\"%s\"" (string_of_float x)

  let to_json t =
    let b = Buffer.create 1024 in
    Buffer.add_string b "{\n  \"counters\": {";
    List.iteri
      (fun i k ->
        if i > 0 then Buffer.add_string b ",";
        Buffer.add_string b
          (Printf.sprintf "\n    \"%s\": %d" (esc (display_key k)) (counter_value t k)))
      (sorted_keys t.counters);
    Buffer.add_string b "\n  },\n  \"gauges\": {";
    List.iteri
      (fun i k ->
        if i > 0 then Buffer.add_string b ",";
        let v = match gauge_value t k with Some v -> v | None -> 0. in
        Buffer.add_string b
          (Printf.sprintf "\n    \"%s\": %s" (esc (display_key k)) (fnum v)))
      (sorted_keys t.gauges);
    Buffer.add_string b "\n  },\n  \"histograms\": {";
    List.iteri
      (fun i k ->
        if i > 0 then Buffer.add_string b ",";
        let h = Hashtbl.find t.hists k in
        Buffer.add_string b
          (Printf.sprintf
             "\n    \"%s\": {\"count\": %d, \"sum\": %s, \"min\": %s, \
              \"max\": %s, \"buckets\": ["
             (esc (display_key k)) h.count (fnum h.sum)
             (fnum (if h.count = 0 then 0. else h.min))
             (fnum (if h.count = 0 then 0. else h.max)));
        Array.iteri
          (fun i c ->
            if i > 0 then Buffer.add_string b ", ";
            Buffer.add_string b (string_of_int c))
          h.buckets;
        Buffer.add_string b "]}")
      (sorted_keys t.hists);
    Buffer.add_string b "\n  }\n}\n";
    Buffer.contents b

  (* Prometheus text exposition format. Metric names are sanitized to the
     [a-zA-Z0-9_] alphabet and prefixed "granii_". *)
  let prom_name name =
    "granii_"
    ^ String.map
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
          | _ -> '_')
        name

  let prom_label_name k =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
      k

  (* Group sorted encoded keys into (family, [(key, labels); ...]) runs.
     Encoded keys of one family sort contiguously because the separator
     byte is below every printable character. *)
  let families keys =
    List.fold_left
      (fun acc k ->
        let name, labels = decode_key k in
        match acc with
        | (n, ks) :: rest when String.equal n name ->
            (n, (k, labels) :: ks) :: rest
        | _ -> (name, [ (k, labels) ]) :: acc)
      [] keys
    |> List.rev_map (fun (n, ks) -> (n, List.rev ks))

  let prom_labels labels =
    match labels with
    | [] -> ""
    | labels ->
        "{"
        ^ String.concat ","
            (List.map
               (fun (k, v) ->
                 Printf.sprintf "%s=\"%s\"" (prom_label_name k)
                   (escape_label_value v))
               labels)
        ^ "}"

  let to_prometheus t =
    let b = Buffer.create 1024 in
    (* every family gets exactly one # HELP and one # TYPE line, before any
       of its samples, as the exposition format requires *)
    let preamble fam kind =
      let n = prom_name fam in
      Buffer.add_string b
        (Printf.sprintf "# HELP %s GRANII %s %s\n" n kind fam);
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" n kind);
      n
    in
    List.iter
      (fun (fam, samples) ->
        let n = preamble fam "counter" in
        List.iter
          (fun (k, labels) ->
            Buffer.add_string b
              (Printf.sprintf "%s%s %d\n" n (prom_labels labels)
                 (counter_value t k)))
          samples)
      (families (sorted_keys t.counters));
    List.iter
      (fun (fam, samples) ->
        let n = preamble fam "gauge" in
        List.iter
          (fun (k, labels) ->
            let v = match gauge_value t k with Some v -> v | None -> 0. in
            Buffer.add_string b
              (Printf.sprintf "%s%s %.9g\n" n (prom_labels labels) v))
          samples)
      (families (sorted_keys t.gauges));
    List.iter
      (fun (fam, samples) ->
        let n = preamble fam "histogram" in
        List.iter
          (fun (k, labels) ->
            let h = Hashtbl.find t.hists k in
            let with_le le =
              prom_labels (labels @ [ ("le", le) ])
            in
            let plain = prom_labels labels in
            let cum = ref 0 in
            Array.iteri
              (fun i bound ->
                cum := !cum + h.buckets.(i);
                Buffer.add_string b
                  (Printf.sprintf "%s_bucket%s %d\n" n
                     (with_le (Printf.sprintf "%.0e" bound))
                     !cum))
              h.bounds;
            Buffer.add_string b
              (Printf.sprintf "%s_bucket%s %d\n" n (with_le "+Inf") h.count);
            Buffer.add_string b
              (Printf.sprintf "%s_sum%s %.9g\n" n plain h.sum);
            Buffer.add_string b
              (Printf.sprintf "%s_count%s %d\n" n plain h.count))
          samples)
      (families (sorted_keys t.hists));
    Buffer.contents b
end

(* ---- cost-model accuracy monitor ---- *)

module Cost_monitor = struct
  (* Per-primitive (predicted, measured) pairs in bounded storage, so a long
     profiling sweep cannot grow the monitor without bound. Below
     [max_pairs] every pair is held exactly, in recording order. Past the
     cap the series switches to reservoir sampling (Vitter's Algorithm R,
     driven by a deterministic per-primitive xorshift64 stream): the n-th
     pair replaces a uniformly random slot with probability max_pairs/n, so
     a long-running serving process keeps a statistically representative
     sample of its whole history instead of freezing on (or thrashing
     through) whichever pairs arrived in one window. [held] orders the
     sample by recording index, so "newest third" holdout splits remain
     meaningful. *)
  let max_pairs = 4096

  type series = {
    mutable buf : (float * float) array;  (* grows by doubling to max_pairs *)
    mutable seq : int array;              (* recording index of each held pair *)
    mutable len : int;                    (* pairs currently held *)
    mutable n : int;                      (* pairs ever recorded *)
    mutable rng : int64;                  (* xorshift64 state, per-series *)
  }

  type t = (string, series) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let xorshift64 x =
    let x = Int64.logxor x (Int64.shift_left x 13) in
    let x = Int64.logxor x (Int64.shift_right_logical x 7) in
    Int64.logxor x (Int64.shift_left x 17)

  let rand_below s bound =
    s.rng <- xorshift64 s.rng;
    Int64.to_int (Int64.rem (Int64.logand s.rng Int64.max_int) (Int64.of_int bound))

  let record (t : t) ~prim ~predicted ~measured =
    let s =
      match Hashtbl.find_opt t prim with
      | Some s -> s
      | None ->
          let seed = Int64.of_int ((Hashtbl.hash prim lsl 1) lor 1) in
          let s =
            { buf = Array.make 64 (0., 0.);
              seq = Array.make 64 0;
              len = 0;
              n = 0;
              rng = seed }
          in
          Hashtbl.add t prim s;
          s
    in
    let idx = s.n in
    s.n <- s.n + 1;
    if s.len < max_pairs then begin
      let cap = Array.length s.buf in
      if s.len = cap then begin
        let cap' = min max_pairs (2 * cap) in
        let buf' = Array.make cap' (0., 0.) in
        let seq' = Array.make cap' 0 in
        Array.blit s.buf 0 buf' 0 s.len;
        Array.blit s.seq 0 seq' 0 s.len;
        s.buf <- buf';
        s.seq <- seq'
      end;
      s.buf.(s.len) <- (predicted, measured);
      s.seq.(s.len) <- idx;
      s.len <- s.len + 1
    end
    else begin
      (* reservoir: keep the new pair with probability max_pairs/n, in a
         uniformly random slot *)
      let j = rand_below s s.n in
      if j < max_pairs then begin
        s.buf.(j) <- (predicted, measured);
        s.seq.(j) <- idx
      end
    end

  (* Snapshot of the pairs currently held, ordered by recording index
     (oldest first). *)
  let held (s : series) =
    let ix = Array.init s.len (fun i -> i) in
    Array.sort (fun a b -> compare s.seq.(a) s.seq.(b)) ix;
    Array.to_list (Array.map (fun i -> s.buf.(i)) ix)

  let series_pairs (t : t) prim =
    match Hashtbl.find_opt t prim with None -> [] | Some s -> held s

  let prims (t : t) =
    Hashtbl.fold (fun prim _ acc -> prim :: acc) t [] |> List.sort compare

  type summary = {
    prim : string;
    n : int;                    (* recorded runs *)
    mean_abs_log_err : float;   (* mean |ln(predicted / measured)| *)
    rank_inversions : int;      (* discordant (predicted, measured) pairs *)
    pairs_compared : int;       (* pair count the inversions are out of *)
  }

  let summarize prim (s : series) =
    let pairs = List.filter (fun (p, m) -> p > 0. && m > 0.) (held s) in
    let k = List.length pairs in
    let mean_abs_log_err =
      if k = 0 then nan
      else
        List.fold_left (fun acc (p, m) -> acc +. Float.abs (log (p /. m))) 0. pairs
        /. float_of_int k
    in
    let arr = Array.of_list pairs in
    let inv = ref 0 and total = ref 0 in
    for i = 0 to Array.length arr - 1 do
      for j = i + 1 to Array.length arr - 1 do
        let pi, mi = arr.(i) and pj, mj = arr.(j) in
        if pi <> pj && mi <> mj then begin
          incr total;
          if (pi -. pj) *. (mi -. mj) < 0. then incr inv
        end
      done
    done;
    { prim;
      n = s.n;
      mean_abs_log_err;
      rank_inversions = !inv;
      pairs_compared = !total }

  let summaries (t : t) =
    Hashtbl.fold (fun prim s acc -> summarize prim s :: acc) t []
    |> List.sort (fun a b -> compare a.prim b.prim)

  let to_json (t : t) =
    let b = Buffer.create 512 in
    Buffer.add_string b "{";
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_string b ",";
        Buffer.add_string b
          (Printf.sprintf
             "\n  \"%s\": {\"n\": %d, \"mean_abs_log_err\": %s, \
              \"rank_inversions\": %d, \"pairs_compared\": %d}"
             (Trace.json_escape s.prim) s.n
             (Metrics.fnum s.mean_abs_log_err)
             s.rank_inversions s.pairs_compared))
      (summaries t);
    Buffer.add_string b "\n}\n";
    Buffer.contents b

  let pp ppf (t : t) =
    Format.fprintf ppf "%-16s %6s %14s %16s@." "primitive" "runs"
      "mean|log err|" "rank inversions";
    List.iter
      (fun s ->
        Format.fprintf ppf "%-16s %6d %14.3f %10d/%d@." s.prim s.n
          s.mean_abs_log_err s.rank_inversions s.pairs_compared)
      (summaries t)
end

(* ---- lock-free per-domain event journal ---- *)

module Journal = struct
  type kind =
    | Step
    | Request
    | Batch
    | Plan_cache_hit
    | Plan_cache_miss
    | Plan_cache_invalidate
    | Calibrate
    | Drift
    | Backpressure
    | Slo_breach
    | Mark

  let kinds =
    [| Step; Request; Batch; Plan_cache_hit; Plan_cache_miss;
       Plan_cache_invalidate; Calibrate; Drift; Backpressure; Slo_breach;
       Mark |]

  let kind_code = function
    | Step -> 0
    | Request -> 1
    | Batch -> 2
    | Plan_cache_hit -> 3
    | Plan_cache_miss -> 4
    | Plan_cache_invalidate -> 5
    | Calibrate -> 6
    | Drift -> 7
    | Backpressure -> 8
    | Slo_breach -> 9
    | Mark -> 10

  let kind_of_code c =
    if c >= 0 && c < Array.length kinds then kinds.(c) else Mark

  let kind_to_string = function
    | Step -> "step"
    | Request -> "request"
    | Batch -> "batch"
    | Plan_cache_hit -> "plan_cache_hit"
    | Plan_cache_miss -> "plan_cache_miss"
    | Plan_cache_invalidate -> "plan_cache_invalidate"
    | Calibrate -> "calibrate"
    | Drift -> "drift"
    | Backpressure -> "backpressure"
    | Slo_breach -> "slo_breach"
    | Mark -> "mark"

  type entry = {
    e_seq : int;     (* per-domain monotonic sequence number, from 0 *)
    e_domain : int;  (* writer domain id *)
    e_t : float;     (* Timer.wall at record time *)
    e_kind : kind;
    e_tag : string;
    e_v : float;
  }

  (* One bounded ring per writer domain, written WITHOUT any lock: the
     columns are parallel arrays of unboxed ints/floats plus a string
     column, so recording an event is four array stores and a counter bump —
     no allocation, no synchronization. [rseq] counts every event the
     domain ever recorded; slot (rseq mod capacity) is overwritten, oldest
     first, and (rseq - capacity) is exactly how many events were lost. *)
  type ring = {
    dom : int;
    mutable rseq : int;
    rk : int array;
    rt : float array;
    rv : float array;
    rtag : string array;
  }

  type t = {
    jcapacity : int;
    mutable rings : ring option array;  (* index = domain id *)
    mu : Mutex.t;  (* guards ring creation / array growth only (cold path) *)
  }

  let create ?(capacity = 1024) () =
    if capacity < 8 then invalid_arg "Journal.create: capacity must be >= 8";
    { jcapacity = capacity; rings = Array.make 8 None; mu = Mutex.create () }

  let capacity t = t.jcapacity

  (* Cold path: first event from this domain (or a domain id past the
     current array). The rings array only ever grows and growth copies
     every slot, so a writer racing with a grow still reaches its own ring
     through either array version. *)
  let install t dom =
    Mutex.lock t.mu;
    let rs = t.rings in
    let rs =
      if dom < Array.length rs then rs
      else begin
        let len = ref (Array.length rs) in
        while dom >= !len do
          len := 2 * !len
        done;
        let rs' = Array.make !len None in
        Array.blit rs 0 rs' 0 (Array.length rs);
        t.rings <- rs';
        rs'
      end
    in
    let r =
      match rs.(dom) with
      | Some r -> r
      | None ->
          let r =
            { dom;
              rseq = 0;
              rk = Array.make t.jcapacity 0;
              rt = Array.make t.jcapacity 0.;
              rv = Array.make t.jcapacity 0.;
              rtag = Array.make t.jcapacity "" }
          in
          rs.(dom) <- Some r;
          r
    in
    Mutex.unlock t.mu;
    r

  let record t kind ~tag ~v =
    let dom = (Domain.self () :> int) in
    let rs = t.rings in
    let r =
      if dom < Array.length rs then
        match Array.unsafe_get rs dom with
        | Some r -> r
        | None -> install t dom
      else install t dom
    in
    let i = r.rseq mod t.jcapacity in
    r.rk.(i) <- kind_code kind;
    r.rt.(i) <- Timer.wall ();
    r.rv.(i) <- v;
    r.rtag.(i) <- tag;
    r.rseq <- r.rseq + 1

  let fold_rings t f z =
    Mutex.lock t.mu;
    let acc =
      Array.fold_left
        (fun acc r -> match r with Some r -> f acc r | None -> acc)
        z t.rings
    in
    Mutex.unlock t.mu;
    acc

  let total t = fold_rings t (fun acc r -> acc + r.rseq) 0

  let dropped t =
    fold_rings t (fun acc r -> acc + max 0 (r.rseq - t.jcapacity)) 0

  (* Advisory snapshot of the currently-held entries, merged across domains
     by timestamp (ties broken by domain, then sequence). Concurrent
     writers may overwrite the oldest slots while the drain runs; drain
     after the writers quiesce when exact contents matter. *)
  let entries t =
    let acc =
      fold_rings t
        (fun acc r ->
          let seq = r.rseq in
          let len = min seq t.jcapacity in
          let out = ref acc in
          for i = seq - len to seq - 1 do
            let slot = i mod t.jcapacity in
            out :=
              { e_seq = i;
                e_domain = r.dom;
                e_t = r.rt.(slot);
                e_kind = kind_of_code r.rk.(slot);
                e_tag = r.rtag.(slot);
                e_v = r.rv.(slot) }
              :: !out
          done;
          !out)
        []
    in
    List.sort
      (fun a b ->
        match compare a.e_t b.e_t with
        | 0 -> (
            match compare a.e_domain b.e_domain with
            | 0 -> compare a.e_seq b.e_seq
            | c -> c)
        | c -> c)
      acc

  (* (kind, count) over the held entries, omitting zero kinds. *)
  let kind_counts t =
    let tbl = Array.make (Array.length kinds) 0 in
    List.iter
      (fun e ->
        let c = kind_code e.e_kind in
        tbl.(c) <- tbl.(c) + 1)
      (entries t);
    Array.to_list (Array.mapi (fun i c -> (kind_to_string kinds.(i), c)) tbl)
    |> List.filter (fun (_, c) -> c > 0)

  (* One JSON object per line (JSONL), entries in [entries] order. *)
  let to_jsonl t =
    let b = Buffer.create 4096 in
    List.iter
      (fun e ->
        Buffer.add_string b
          (Printf.sprintf
             "{\"seq\": %d, \"domain\": %d, \"t\": %s, \"kind\": \"%s\", \
              \"tag\": \"%s\", \"v\": %s}\n"
             e.e_seq e.e_domain (Metrics.fnum e.e_t)
             (kind_to_string e.e_kind)
             (Trace.json_escape e.e_tag)
             (Metrics.fnum e.e_v)))
      (entries t);
    Buffer.contents b

  let pp_entry ppf e =
    Format.fprintf ppf "[d%d:%06d] %-22s %-28s %s" e.e_domain e.e_seq
      (kind_to_string e.e_kind)
      (if e.e_tag = "" then "-" else e.e_tag)
      (Metrics.fnum e.e_v)
end

(* ---- streaming quantile sketches (P-squared, Jain & Chlamtac 1985) ---- *)

module Sketch = struct
  (* One five-marker P² estimator per tracked quantile: fixed memory
     (5 markers x 4 tracked quantiles), O(1) per observation, no stored
     samples. The error is not worst-case bounded, but is empirically a few
     percent relative on smooth unimodal distributions; the tests pin it
     within the tolerances documented in DESIGN.md §16. *)

  let tracked = [| 0.5; 0.9; 0.95; 0.99 |]

  type pq = {
    q : float array;    (* marker heights *)
    np : float array;   (* actual marker positions (1-based) *)
    dn : float array;   (* desired marker positions *)
    dnp : float array;  (* desired position increments *)
  }

  type t = {
    mutable count : int;
    head : float array;  (* first five observations, kept for exact start *)
    qs : pq array;       (* one estimator per tracked quantile *)
    mutable mn : float;
    mutable mx : float;
  }

  let create () =
    { count = 0;
      head = Array.make 5 0.;
      qs =
        Array.map
          (fun p ->
            { q = Array.make 5 0.;
              np = [| 1.; 2.; 3.; 4.; 5. |];
              dn = [| 1.; 1. +. (2. *. p); 1. +. (4. *. p); 3. +. (2. *. p); 5. |];
              dnp = [| 0.; p /. 2.; p; (1. +. p) /. 2.; 1. |] })
          tracked;
      mn = infinity;
      mx = neg_infinity }

  let count t = t.count
  let minimum t = if t.count = 0 then nan else t.mn
  let maximum t = if t.count = 0 then nan else t.mx

  let parabolic s d i =
    let q = s.q and n = s.np in
    q.(i)
    +. d /. (n.(i + 1) -. n.(i - 1))
       *. (((n.(i) -. n.(i - 1) +. d) *. (q.(i + 1) -. q.(i))
            /. (n.(i + 1) -. n.(i)))
           +. ((n.(i + 1) -. n.(i) -. d) *. (q.(i) -. q.(i - 1))
               /. (n.(i) -. n.(i - 1))))

  let linear s d i =
    let q = s.q and n = s.np in
    let j = i + int_of_float d in
    q.(i) +. (d *. (q.(j) -. q.(i)) /. (n.(j) -. n.(i)))

  let add_pq s x =
    let q = s.q and n = s.np in
    (* locate the marker cell, stretching the extremes when x escapes them *)
    let k =
      if x < q.(0) then begin
        q.(0) <- x;
        0
      end
      else if x >= q.(4) then begin
        if x > q.(4) then q.(4) <- x;
        3
      end
      else begin
        let k = ref 0 in
        for i = 1 to 3 do
          if x >= q.(i) then k := i
        done;
        !k
      end
    in
    for i = k + 1 to 4 do
      n.(i) <- n.(i) +. 1.
    done;
    for i = 0 to 4 do
      s.dn.(i) <- s.dn.(i) +. s.dnp.(i)
    done;
    (* nudge interior markers toward their desired positions *)
    for i = 1 to 3 do
      let d = s.dn.(i) -. n.(i) in
      if
        (d >= 1. && n.(i + 1) -. n.(i) > 1.)
        || (d <= -1. && n.(i - 1) -. n.(i) < -1.)
      then begin
        let d = if d >= 0. then 1. else -1. in
        let q' = parabolic s d i in
        let q' =
          if q.(i - 1) < q' && q' < q.(i + 1) then q' else linear s d i
        in
        q.(i) <- q';
        n.(i) <- n.(i) +. d
      end
    done

  let add t x =
    if Float.is_finite x then begin
      if x < t.mn then t.mn <- x;
      if x > t.mx then t.mx <- x;
      if t.count < 5 then begin
        t.head.(t.count) <- x;
        t.count <- t.count + 1;
        if t.count = 5 then begin
          let sorted = Array.copy t.head in
          Array.sort compare sorted;
          Array.iter (fun s -> Array.blit sorted 0 s.q 0 5) t.qs
        end
      end
      else begin
        t.count <- t.count + 1;
        Array.iter (fun s -> add_pq s x) t.qs
      end
    end

  (* Exact over the first five samples. Past that, a tracked quantile is
     its estimator's middle marker; any other probability interpolates
     piecewise-linearly between (0, min), the tracked estimates and
     (1, max), with the anchors forced monotone (P² markers of different
     estimators can cross by small amounts). *)
  let quantile t p =
    if t.count = 0 then nan
    else if t.count <= 5 then begin
      let sorted = Array.sub t.head 0 t.count in
      Array.sort compare sorted;
      let rank = int_of_float (Float.round (p *. float_of_int (t.count - 1))) in
      sorted.(max 0 (min (t.count - 1) rank))
    end
    else begin
      let anchors =
        Array.concat
          [ [| (0., t.mn) |];
            Array.mapi (fun i p' -> (p', t.qs.(i).q.(2))) tracked;
            [| (1., t.mx) |] ]
      in
      for i = 1 to Array.length anchors - 1 do
        let _, v0 = anchors.(i - 1) in
        let p1, v1 = anchors.(i) in
        if v1 < v0 then anchors.(i) <- (p1, v0)
      done;
      let p = Float.max 0. (Float.min 1. p) in
      let rec go i =
        if i >= Array.length anchors - 1 then snd anchors.(Array.length anchors - 1)
        else
          let p0, v0 = anchors.(i) and p1, v1 = anchors.(i + 1) in
          if p <= p1 then
            if p1 <= p0 then v1
            else v0 +. ((p -. p0) /. (p1 -. p0) *. (v1 -. v0))
          else go (i + 1)
      in
      go 0
    end

  (* Merged view of two sketches: a fresh sketch replayed with stratified
     synthetic samples drawn from each input's piecewise-linear inverse
     CDF, counts proportional to the inputs' true counts (at most 512
     total). An approximation — the tails are linearized — adequate for
     cross-tenant / cross-domain aggregate gauges; never mutates the
     inputs. *)
  let merge a b =
    let t = create () in
    let total = a.count + b.count in
    if total = 0 then t
    else begin
      let replay src =
        if src.count > 0 then begin
          (* never more synthetic samples than the input saw real ones, so
             a merge of small sketches keeps an honest count *)
          let k =
            max 1
              (min
                 (min 256 src.count)
                 (int_of_float
                    (Float.round
                       (512. *. float_of_int src.count /. float_of_int total))))
          in
          for j = 0 to k - 1 do
            let p = (float_of_int j +. 0.5) /. float_of_int k in
            add t (quantile src p)
          done
        end
      in
      replay a;
      replay b;
      t
    end

  let merge_all = function
    | [] -> create ()
    | [ t ] -> t
    | t :: rest -> List.fold_left merge t rest
end

(* ---- drift detectors ---- *)

module Drift = struct
  (* Two complementary tests over one scalar stream:

     - Page–Hinkley: fires when the cumulative deviation above the running
       mean (minus the insensitivity [delta]) exceeds [lambda] — catches
       sustained upward TRENDS against the stream's own history.
     - Sustained level: fires when the EWMA (smoothing [alpha]) stays above
       [level] for [patience] consecutive observations — catches streams
       that are wrong from the very start (e.g. a mis-anchored hardware
       profile), which present no trend for Page–Hinkley to see.

     Either test firing counts as drift; the detector then resets so it can
     re-arm against the post-correction stream. Nothing fires before
     [min_samples] observations. [level <= 0.] disables the level test;
     [lambda = infinity] disables Page–Hinkley. *)

  type t = {
    dname : string;
    delta : float;
    lambda : float;
    level : float;
    patience : int;
    min_samples : int;
    alpha : float;
    mutable n : int;
    mutable mean : float;
    mutable cum : float;      (* Page–Hinkley m_T *)
    mutable cum_min : float;  (* running min of m_T *)
    mutable ewma : float;
    mutable streak : int;
    mutable fires : int;      (* total firings over the detector's life *)
    mutable last_stat : float;  (* statistic value at the last firing *)
  }

  let create ?(delta = 0.005) ?(lambda = 25.) ?(level = 0.) ?(patience = 32)
      ?(min_samples = 32) ?(alpha = 0.1) name =
    if patience < 1 then invalid_arg "Drift.create: patience must be >= 1";
    if min_samples < 1 then
      invalid_arg "Drift.create: min_samples must be >= 1";
    if not (alpha > 0. && alpha <= 1.) then
      invalid_arg "Drift.create: alpha must be in (0, 1]";
    { dname = name;
      delta;
      lambda;
      level;
      patience;
      min_samples;
      alpha;
      n = 0;
      mean = 0.;
      cum = 0.;
      cum_min = 0.;
      ewma = 0.;
      streak = 0;
      fires = 0;
      last_stat = 0. }

  let name t = t.dname
  let fired t = t.fires
  let samples t = t.n
  let last_stat t = t.last_stat

  let reset t =
    t.n <- 0;
    t.mean <- 0.;
    t.cum <- 0.;
    t.cum_min <- 0.;
    t.ewma <- 0.;
    t.streak <- 0

  (* Feed one observation; [true] means drift fired (and the detector
     reset itself). *)
  let observe t x =
    if not (Float.is_finite x) then false
    else begin
      t.n <- t.n + 1;
      let n = float_of_int t.n in
      t.mean <- t.mean +. ((x -. t.mean) /. n);
      t.cum <- t.cum +. (x -. t.mean -. t.delta);
      if t.cum < t.cum_min then t.cum_min <- t.cum;
      t.ewma <-
        (if t.n = 1 then x else (t.alpha *. x) +. ((1. -. t.alpha) *. t.ewma));
      if t.level > 0. && t.ewma > t.level then t.streak <- t.streak + 1
      else t.streak <- 0;
      let ph = t.cum -. t.cum_min in
      let fire =
        t.n >= t.min_samples
        && (ph > t.lambda || (t.level > 0. && t.streak >= t.patience))
      in
      if fire then begin
        t.fires <- t.fires + 1;
        t.last_stat <- Float.max ph t.ewma;
        reset t
      end;
      fire
    end
end

(* ---- the sink threaded through the engine ---- *)

type t = {
  trace : Trace.t option;
  metrics : Metrics.t option;
  costmon : Cost_monitor.t option;
  journal : Journal.t option;
}

let disabled = { trace = None; metrics = None; costmon = None; journal = None }

let create ?(trace = true) ?(metrics = true) ?(costmon = true)
    ?(journal = true) ?journal_capacity () =
  { trace = (if trace then Some (Trace.create ()) else None);
    metrics = (if metrics then Some (Metrics.create ()) else None);
    costmon = (if costmon then Some (Cost_monitor.create ()) else None);
    journal =
      (if journal then Some (Journal.create ?capacity:journal_capacity ())
       else None) }

let enabled t =
  t.trace <> None || t.metrics <> None || t.costmon <> None
  || t.journal <> None

let tracing t = t.trace <> None

let span t ?cat ?attrs name f =
  match t.trace with
  | None -> f ()
  | Some tr -> Trace.with_span tr ?cat ?attrs name f

let count t name n =
  match t.metrics with None -> () | Some m -> Metrics.add m name n

let gauge t name v =
  match t.metrics with None -> () | Some m -> Metrics.set_gauge m name v

let observe t name v =
  match t.metrics with None -> () | Some m -> Metrics.observe m name v

let record_cost t ~prim ~predicted ~measured =
  match t.costmon with
  | None -> ()
  | Some cm -> Cost_monitor.record cm ~prim ~predicted ~measured

(* Journal an event. Cold-path convenience: hot paths should guard on
   [t.journal <> None] BEFORE computing the tag/value so a disabled sink
   costs nothing (see Executor.step_observe for the idiom). *)
let event t kind ~tag ~v =
  match t.journal with None -> () | Some j -> Journal.record j kind ~tag ~v

(* ---- minimal JSON well-formedness checker ----

   Used by the exporter tests and the CI telemetry checker; accepts exactly
   the JSON grammar (RFC 8259), reports the failing byte offset. *)

module Json = struct
  exception Bad of int * string

  let validate s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let bump () = incr pos in
    let fail msg = raise (Bad (!pos, msg)) in
    let rec ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          bump ();
          ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> bump ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal l =
      String.iter (fun c -> expect c) l
    in
    let string_ () =
      expect '"';
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> bump ()
        | Some '\\' -> (
            bump ();
            match peek () with
            | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
                bump ();
                go ()
            | Some 'u' ->
                bump ();
                for _ = 1 to 4 do
                  match peek () with
                  | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> bump ()
                  | _ -> fail "bad \\u escape"
                done;
                go ()
            | _ -> fail "bad escape")
        | Some c when Char.code c < 0x20 -> fail "control char in string"
        | Some _ ->
            bump ();
            go ()
      in
      go ()
    in
    let number () =
      (match peek () with Some '-' -> bump () | _ -> ());
      let digits () =
        let saw = ref false in
        let rec go () =
          match peek () with
          | Some '0' .. '9' ->
              saw := true;
              bump ();
              go ()
          | _ -> ()
        in
        go ();
        if not !saw then fail "expected digit"
      in
      digits ();
      (match peek () with
      | Some '.' ->
          bump ();
          digits ()
      | _ -> ());
      match peek () with
      | Some ('e' | 'E') ->
          bump ();
          (match peek () with Some ('+' | '-') -> bump () | _ -> ());
          digits ()
      | _ -> ()
    in
    let rec value () =
      ws ();
      match peek () with
      | Some '{' ->
          bump ();
          ws ();
          if peek () = Some '}' then bump ()
          else begin
            let rec members () =
              ws ();
              string_ ();
              ws ();
              expect ':';
              value ();
              ws ();
              match peek () with
              | Some ',' ->
                  bump ();
                  members ()
              | Some '}' -> bump ()
              | _ -> fail "expected , or }"
            in
            members ()
          end
      | Some '[' ->
          bump ();
          ws ();
          if peek () = Some ']' then bump ()
          else begin
            let rec elements () =
              value ();
              ws ();
              match peek () with
              | Some ',' ->
                  bump ();
                  elements ()
              | Some ']' -> bump ()
              | _ -> fail "expected , or ]"
            in
            elements ()
          end
      | Some '"' -> string_ ()
      | Some 't' -> literal "true"
      | Some 'f' -> literal "false"
      | Some 'n' -> literal "null"
      | Some ('-' | '0' .. '9') -> number ()
      | _ -> fail "expected a JSON value"
    in
    match
      value ();
      ws ();
      if !pos <> n then fail "trailing garbage"
    with
    | () -> Ok ()
    | exception Bad (at, msg) ->
        Error (Printf.sprintf "invalid JSON at byte %d: %s" at msg)

  (* ---- a small JSON reader on the same grammar ----

     Used by bin/bench_gate.ml to compare BENCH_*.json artifacts against
     their committed baselines. Numbers all land in [Num] (floats);
     \uXXXX escapes decode to UTF-8 without surrogate pairing. *)

  type value =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of value list
    | Obj of (string * value) list

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let bump () = incr pos in
    let fail msg = raise (Bad (!pos, msg)) in
    let rec ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          bump ();
          ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> bump ()
      | _ -> fail (Printf.sprintf "expected %c" c)
    in
    let literal l = String.iter (fun c -> expect c) l in
    let utf8 b cp =
      if cp < 0x80 then Buffer.add_char b (Char.chr cp)
      else if cp < 0x800 then begin
        Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
      end
      else begin
        Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
        Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
        Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
      end
    in
    let string_ () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> bump ()
        | Some '\\' -> (
            bump ();
            match peek () with
            | Some '"' -> bump (); Buffer.add_char b '"'; go ()
            | Some '\\' -> bump (); Buffer.add_char b '\\'; go ()
            | Some '/' -> bump (); Buffer.add_char b '/'; go ()
            | Some 'b' -> bump (); Buffer.add_char b '\b'; go ()
            | Some 'f' -> bump (); Buffer.add_char b '\012'; go ()
            | Some 'n' -> bump (); Buffer.add_char b '\n'; go ()
            | Some 'r' -> bump (); Buffer.add_char b '\r'; go ()
            | Some 't' -> bump (); Buffer.add_char b '\t'; go ()
            | Some 'u' ->
                bump ();
                let cp = ref 0 in
                for _ = 1 to 4 do
                  (match peek () with
                  | Some ('0' .. '9' as c) ->
                      cp := (!cp * 16) + (Char.code c - Char.code '0')
                  | Some ('a' .. 'f' as c) ->
                      cp := (!cp * 16) + (Char.code c - Char.code 'a' + 10)
                  | Some ('A' .. 'F' as c) ->
                      cp := (!cp * 16) + (Char.code c - Char.code 'A' + 10)
                  | _ -> fail "bad \\u escape");
                  bump ()
                done;
                utf8 b !cp;
                go ()
            | _ -> fail "bad escape")
        | Some c when Char.code c < 0x20 -> fail "control char in string"
        | Some c ->
            bump ();
            Buffer.add_char b c;
            go ()
      in
      go ();
      Buffer.contents b
    in
    let number () =
      let start = !pos in
      (match peek () with Some '-' -> bump () | _ -> ());
      let digits () =
        let saw = ref false in
        let rec go () =
          match peek () with
          | Some '0' .. '9' ->
              saw := true;
              bump ();
              go ()
          | _ -> ()
        in
        go ();
        if not !saw then fail "expected digit"
      in
      digits ();
      (match peek () with
      | Some '.' ->
          bump ();
          digits ()
      | _ -> ());
      (match peek () with
      | Some ('e' | 'E') ->
          bump ();
          (match peek () with Some ('+' | '-') -> bump () | _ -> ());
          digits ()
      | _ -> ());
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let rec value () =
      ws ();
      match peek () with
      | Some '{' ->
          bump ();
          ws ();
          if peek () = Some '}' then begin
            bump ();
            Obj []
          end
          else begin
            let rec members acc =
              ws ();
              let k = string_ () in
              ws ();
              expect ':';
              let v = value () in
              ws ();
              match peek () with
              | Some ',' ->
                  bump ();
                  members ((k, v) :: acc)
              | Some '}' ->
                  bump ();
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected , or }"
            in
            Obj (members [])
          end
      | Some '[' ->
          bump ();
          ws ();
          if peek () = Some ']' then begin
            bump ();
            List []
          end
          else begin
            let rec elements acc =
              let v = value () in
              ws ();
              match peek () with
              | Some ',' ->
                  bump ();
                  elements (v :: acc)
              | Some ']' ->
                  bump ();
                  List.rev (v :: acc)
              | _ -> fail "expected , or ]"
            in
            List (elements [])
          end
      | Some '"' -> Str (string_ ())
      | Some 't' ->
          literal "true";
          Bool true
      | Some 'f' ->
          literal "false";
          Bool false
      | Some 'n' ->
          literal "null";
          Null
      | Some ('-' | '0' .. '9') -> Num (number ())
      | _ -> fail "expected a JSON value"
    in
    match
      let v = value () in
      ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Bad (at, msg) ->
        Error (Printf.sprintf "invalid JSON at byte %d: %s" at msg)

  let member k = function
    | Obj fields -> List.assoc_opt k fields
    | _ -> None
end
