(* Liveness over straight-line plans.

   A plan is already in SSA-like form — step [i] defines value [t_i] exactly
   once and later steps read it by index — so liveness is a single backward
   scan: the last use of [t_i] is the largest step index whose args mention
   [Computed i]; the plan output lives forever. [dead_after j] inverts that
   relation into "the values whose last reader is step [j]", which is what
   an executor consults to recycle buffers the moment a step retires. *)

type t = {
  n : int;
  last_use : int array;
  dead_after : int list array;
  output : int option;
}

let analyze (p : Plan.t) =
  let n = List.length p.steps in
  let last_use = Array.make n (-1) in
  List.iter
    (fun (s : Plan.step) ->
      List.iter
        (function
          | Plan.Computed i -> if s.Plan.idx > last_use.(i) then last_use.(i) <- s.Plan.idx
          | Plan.Input _ -> ())
        s.Plan.args)
    p.Plan.steps;
  let output = match p.Plan.output with Plan.Computed i -> Some i | Plan.Input _ -> None in
  (match output with Some i -> last_use.(i) <- max_int | None -> ());
  let dead_after = Array.make n [] in
  Array.iteri
    (fun i lu ->
      if lu <> max_int then begin
        (* a value never read (and not the output) dies right after its own
           step; otherwise after its last reader *)
        let d = if lu < 0 then i else lu in
        dead_after.(d) <- i :: dead_after.(d)
      end)
    last_use;
  { n; last_use; dead_after; output }

let last_use t i =
  if i < 0 || i >= t.n then invalid_arg "Liveness.last_use: index out of range";
  t.last_use.(i)

let dead_after t j =
  if j < 0 || j >= t.n then invalid_arg "Liveness.dead_after: index out of range";
  t.dead_after.(j)

let output t = t.output

let max_live t =
  (* simulate the step sequence: value i is born at step i and dies after
     [last_use] — the high-water mark of simultaneously live values bounds
     the buffer count a recycling executor needs *)
  let live = ref 0 and peak = ref 0 in
  for i = 0 to t.n - 1 do
    incr live;
    if !live > !peak then peak := !live;
    live := !live - List.length t.dead_after.(i)
  done;
  !peak

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  for i = 0 to t.n - 1 do
    (match t.last_use.(i) with
    | u when u = max_int -> Format.fprintf ppf "t%d: output@," i
    | u when u < 0 -> Format.fprintf ppf "t%d: unused@," i
    | u -> Format.fprintf ppf "t%d: last use t%d@," i u)
  done;
  Format.fprintf ppf "max live: %d@]" (max_live t)
