(** Executable plans: a scheduled, CSE'd association tree.

    A plan is the straight-line step list obtained from an association tree
    in arguments-first order, with two phases:

    - [Setup]: steps whose transitive inputs are all graph-derived
      (adjacency, normalization diagonals). These are loop-invariant; GRANII
      hoists them so they run once, which is how the precomputation-based
      compositions amortize their SDDMM over the iterations (Sec. III-A).
    - [Per_iteration]: everything touching node features or weights.

    Baseline systems' straight-line model code does {e not} hoist — DGL and
    WiseGraph recompute normalization inside every [forward()] — which is
    modeled by building their plans with [hoist:false] (this is the source of
    the binning slowdowns of Sec. VI-C1).

    Normalization-vector leaves (e.g. {m \tilde D^{-1/2}}) are produced by an
    explicit [Degree] step whose kind (binned scatter-add vs row-pointer
    diff) is chosen by the executing system. *)

type degree_spec = { binned : bool; power : Primitive.degree_power }
(** How a normalization leaf is computed: which degree kernel, and which
    power of the degree ({m -1/2} for GCN, {m -1} for mean aggregation). *)

type phase = Setup | Per_iteration

type source =
  | Input of string   (** a leaf, bound at execution time *)
  | Computed of int   (** output of the step with this index *)

type step = {
  idx : int;
  prim : Primitive.t;
  args : source list;
  phase : phase;
  skey : string;
      (** Structural key of the subexpression this step computes — the
          association tree's CSE key, stable across every candidate plan of
          the same model, so executors can cache shared subtrees between
          plans (for [Degree] steps, derived from the primitive alone). *)
}

type t = {
  steps : step list;      (** in execution order; [Setup] steps first *)
  output : source;
  name : string;
}

val of_tree :
  ?hoist:bool -> ?degree_leaves:(string * degree_spec) list -> name:string ->
  Assoc_tree.t -> t
(** Schedules a tree. [hoist] (default [true]) moves graph-only steps into
    the [Setup] phase. [degree_leaves] lists leaf names that are
    normalization vectors derived from the graph; a [Degree] step is
    inserted for each such leaf that the tree actually uses. *)

val primitives : t -> Primitive.t list

val setup_steps : t -> step list

val iteration_steps : t -> step list

val input_names : t -> string list
(** Leaves the plan expects to be bound (degree leaves excluded — those are
    computed). *)

val pp : Format.formatter -> t -> unit
