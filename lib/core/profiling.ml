module K = Granii_hw.Kernel_model

type datasets = (string * Granii_ml.Ml_dataset.t) list

let templates =
  [ Primitive.Gemm { m = Dim.N; k = Dim.Kin; n = Dim.Kout };
    Primitive.Gemm { m = Dim.N; k = Dim.Kout; n = Dim.Kin };
    Primitive.Gemm { m = Dim.N; k = Dim.Kin; n = Dim.One };
    Primitive.Spmm { k = Dim.Kin; weighted = false };
    Primitive.Spmm { k = Dim.Kout; weighted = false };
    Primitive.Spmm { k = Dim.Kin; weighted = true };
    Primitive.Spmm { k = Dim.Kout; weighted = true };
    Primitive.Dense_sparse_mm { m = Dim.Kin };
    Primitive.Sddmm_rank1;
    Primitive.Diag_scale { side = `Left };
    Primitive.Diag_scale { side = `Right };
    Primitive.Row_broadcast { k = Dim.Kin };
    Primitive.Row_broadcast { k = Dim.Kout };
    Primitive.Col_broadcast { k = Dim.Kin };
    Primitive.Col_broadcast { k = Dim.Kout };
    Primitive.Diag_combine;
    Primitive.Sparse_add { diag = true };
    Primitive.Sparse_add { diag = false };
    Primitive.Dense_add { m = Dim.N; k = Dim.Kout };
    Primitive.Edge_score { k = Dim.Kout };
    Primitive.Edge_softmax;
    Primitive.Dense_map { kind = Matrix_ir.Relu; m = Dim.N; k = Dim.Kout };
    Primitive.Degree { binned = true; power = Primitive.Inv_sqrt };
    Primitive.Degree { binned = false; power = Primitive.Inv_sqrt } ]

let embedding_grid = [ 32; 64; 128; 256; 512; 1024; 2048 ]

let collect ?(seed = 0) ?graphs ?sizes ?(threads_grid = [ 1 ]) ~profile () =
  let graphs =
    match graphs with
    | Some gs -> gs
    | None -> Granii_graph.Datasets.training_pool ~seed:(seed + 1000) ()
  in
  let sizes = match sizes with Some s -> s | None -> embedding_grid in
  let threads_grid = match threads_grid with [] -> [ 1 ] | g -> g in
  let acc : (string, (float array * float) list ref) Hashtbl.t = Hashtbl.create 16 in
  let sample_idx = ref 0 in
  List.iter
    (fun graph ->
      let base_feats = Granii_graph.Graph_features.extract graph in
      let n = Granii_graph.Graph.n_nodes graph in
      let nnz = Granii_graph.Graph.n_edges graph + n in
      List.iter
        (fun threads ->
          let feats = Featurizer.of_features ~threads base_feats in
          List.iter
            (fun k_in ->
              List.iter
                (fun k_out ->
                  let env = { Dim.n; nnz; k_in; k_out } in
                  List.iter
                    (fun template ->
                      incr sample_idx;
                      let time =
                        List.fold_left
                          (fun t kernel ->
                            t
                            +. K.time_noisy ~threads profile
                                 ~seed:(seed + !sample_idx) kernel)
                          0.
                          (Primitive.to_kernels env template)
                      in
                      let input =
                        Featurizer.primitive_input feats
                          ~dims:(Primitive.instantiated_dims env template)
                      in
                      let name = Primitive.name template in
                      let bucket =
                        match Hashtbl.find_opt acc name with
                        | Some b -> b
                        | None ->
                            let b = ref [] in
                            Hashtbl.add acc name b;
                            b
                      in
                      bucket := (input, log time) :: !bucket)
                    templates)
                sizes)
            sizes)
        threads_grid)
    graphs;
  Hashtbl.fold
    (fun name bucket out ->
      let samples = Array.of_list !bucket in
      let features = Array.map fst samples and labels = Array.map snd samples in
      (name, Granii_ml.Ml_dataset.make features labels) :: out)
    acc []

(* Concrete operand values for one primitive instance, built from a real
   graph and random dense data of the right shapes. *)
let measured_args (env : Dim.env) graph template =
  let module Ex = Executor in
  let module Dense = Granii_tensor.Dense in
  let n = env.Dim.n in
  let i = Dim.instantiate env in
  let adj = Granii_graph.Graph.with_self_loops graph in
  let adj_w = Granii_sparse.Csr.map_values Fun.id adj in
  let diag = Granii_graph.Graph.norm_inv_sqrt graph in
  let dense ?(seed = 1) rows cols = Ex.Vdense (Dense.random ~seed rows cols) in
  match template with
  | Primitive.Gemm { m; k; n = cols } -> [ dense (i m) (i k); dense ~seed:2 (i k) (i cols) ]
  | Primitive.Spmm { k; weighted } ->
      [ (if weighted then Ex.Vsparse adj_w else Ex.Vsparse adj); dense n (i k) ]
  | Primitive.Dense_sparse_mm { m } -> [ dense (i m) n; Ex.Vsparse adj ]
  | Primitive.Sddmm_rank1 -> [ Ex.Vdiag diag; Ex.Vsparse adj; Ex.Vdiag diag ]
  | Primitive.Diag_scale { side = `Left } -> [ Ex.Vdiag diag; Ex.Vsparse adj ]
  | Primitive.Diag_scale { side = `Right } -> [ Ex.Vsparse adj; Ex.Vdiag diag ]
  | Primitive.Row_broadcast { k } -> [ Ex.Vdiag diag; dense n (i k) ]
  | Primitive.Col_broadcast { k } ->
      [ dense n (i k); Ex.Vdiag (Granii_tensor.Vector.ones (i k)) ]
  | Primitive.Diag_combine -> [ Ex.Vdiag diag; Ex.Vdiag diag ]
  | Primitive.Sparse_add { diag = true } -> [ Ex.Vdiag diag; Ex.Vsparse adj ]
  | Primitive.Sparse_add { diag = false } -> [ Ex.Vsparse adj_w; Ex.Vsparse adj_w ]
  | Primitive.Dense_add { m; k } -> [ dense (i m) (i k); dense ~seed:2 (i m) (i k) ]
  | Primitive.Edge_score { k } ->
      [ Ex.Vsparse adj; dense n (i k); dense ~seed:2 (i k) 1; dense ~seed:3 (i k) 1 ]
  | Primitive.Edge_softmax -> [ Ex.Vsparse adj_w ]
  | Primitive.Dense_map { m; k; _ } -> [ dense (i m) (i k) ]
  | Primitive.Degree _ -> [ Ex.Vsparse adj ]

let collect_measured ?(seed = 0) ?graphs ?sizes ?(runs = 3) () =
  let graphs =
    match graphs with
    | Some gs -> gs
    | None ->
        let s k = seed + 2000 + k in
        [ Granii_graph.Generators.erdos_renyi ~seed:(s 1) ~n:512 ~avg_degree:8. ();
          Granii_graph.Generators.barabasi_albert ~seed:(s 2) ~n:1024 ~m:4 ();
          Granii_graph.Generators.rmat ~seed:(s 3) ~scale:10 ~edge_factor:16 ();
          Granii_graph.Generators.grid2d ~seed:(s 4) ~rows:32 ~cols:32 ();
          Granii_graph.Generators.mycielskian ~levels:9 () ]
  in
  let sizes = match sizes with Some s -> s | None -> [ 8; 16; 32; 64 ] in
  let acc : (string, (float array * float) list ref) Hashtbl.t = Hashtbl.create 16 in
  (* one arena for the whole sweep: after the warmup run every repetition of
     a primitive reuses the previous repetition's output buffers, so the
     measured times are steady-state times, not allocator times *)
  let ws = Granii_tensor.Workspace.create () in
  List.iter
    (fun graph ->
      let feats =
        Featurizer.of_features (Granii_graph.Graph_features.extract graph)
      in
      let n = Granii_graph.Graph.n_nodes graph in
      let nnz = Granii_graph.Graph.n_edges graph + n in
      List.iter
        (fun k_in ->
          List.iter
            (fun k_out ->
              let env = { Dim.n; nnz; k_in; k_out } in
              List.iter
                (fun template ->
                  let args = measured_args env graph template in
                  let time =
                    Granii_hw.Timer.measure_n ~warmup:1 ~n:runs (fun () ->
                        Granii_tensor.Workspace.reclaim ws;
                        Executor.apply ~ws template graph args)
                  in
                  (* clamp below the clock resolution so log stays finite *)
                  let time = Float.max time 1e-9 in
                  let input =
                    Featurizer.primitive_input feats
                      ~dims:(Primitive.instantiated_dims env template)
                  in
                  let name = Primitive.name template in
                  let bucket =
                    match Hashtbl.find_opt acc name with
                    | Some b -> b
                    | None ->
                        let b = ref [] in
                        Hashtbl.add acc name b;
                        b
                  in
                  bucket := (input, log time) :: !bucket)
                templates)
            sizes)
        sizes)
    graphs;
  Hashtbl.fold
    (fun name bucket out ->
      let samples = Array.of_list !bucket in
      let features = Array.map fst samples and labels = Array.map snd samples in
      (name, Granii_ml.Ml_dataset.make features labels) :: out)
    acc []
