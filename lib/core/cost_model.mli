(** Per-primitive cost models (paper, Sec. IV-E) — the {e base predictor
    state} behind {!Cost_oracle}.

    The production configuration is [Learned]: one {!Granii_ml.Gbrt}
    regressor per primitive name per target hardware, trained on
    {!Profiling} data, predicting log-runtime from the featurized input.
    Two input-oblivious ablations are provided for the Table VI comparison:
    the raw analytic roofline ([Analytic]) and plain FLOP counting
    ([Flops]).

    This module only carries the trained state (and its persistence);
    {e all prediction entry points live on} {!Cost_oracle}, which wraps a
    base model with the online calibration loop. *)

type t

val train :
  ?gbrt_params:Granii_ml.Gbrt.params -> profile:Granii_hw.Hw_profile.t ->
  (string * Granii_ml.Ml_dataset.t) list -> t
(** Fits one GBRT per primitive dataset (the shape [Profiling.datasets]
    produces — spelled structurally here so the base model sits below the
    execution stack in the module order). Primitives without a dataset fall
    back to the analytic model of the same profile. *)

val analytic : Granii_hw.Hw_profile.t -> t
(** Ablation: predict with the noise-free roofline formulas directly. *)

val flops_only : t
(** Ablation: cost = FLOPs (a pure operation-count heuristic). *)

val kind : t -> [ `Learned | `Analytic | `Flops ]
(** Which base-predictor family this is — {!Cost_oracle} dispatches its
    prediction on this. *)

val find_model : t -> string -> Granii_ml.Gbrt.t option
(** The learned regressor for a primitive name; [None] on the ablations and
    on primitives that had no training dataset (the oracle then falls back
    to the analytic roofline of the same profile). *)

val name : t -> string

val profile : t -> Granii_hw.Hw_profile.t option
(** The hardware profile the model targets; [None] for {!flops_only}, which
    has no hardware terms (the locality adjustment is then zero and joint
    selection degenerates to the legacy per-primitive choice). *)

val models : t -> (string * Granii_ml.Gbrt.t) list
(** The underlying learned models ([[]] for ablations) — exposed for
    accuracy evaluation. *)

(** {1 Persistence}

    The paper's workflow trains the cost models once per target machine in
    an initialization script; production runs only load them. *)

val save : t -> string -> unit
(** [save t path] writes a [Learned] model to disk. Raises
    [Invalid_argument] on ablation models (they have no state) and
    [Sys_error] on I/O failure. *)

val load : string -> t
(** Reads a model written by {!save}. The hardware profile is resolved by
    name against {!Granii_hw.Hw_profile.all}. Raises
    [Granii_ml.Sexp_lite.Parse_error] on a malformed file and [Not_found]
    on an unknown profile name. *)
