(** Per-primitive cost models (paper, Sec. IV-E).

    The production configuration is [Learned]: one {!Granii_ml.Gbrt}
    regressor per primitive name per target hardware, trained on
    {!Profiling} data, predicting log-runtime from the featurized input.
    Two input-oblivious ablations are provided for the Table VI comparison:
    the raw analytic roofline ([Analytic]) and plain FLOP counting
    ([Flops]). *)

type t

val train :
  ?gbrt_params:Granii_ml.Gbrt.params -> profile:Granii_hw.Hw_profile.t ->
  Profiling.datasets -> t
(** Fits one GBRT per primitive dataset. Primitives without a dataset fall
    back to the analytic model of the same profile. *)

val analytic : Granii_hw.Hw_profile.t -> t
(** Ablation: predict with the noise-free roofline formulas directly. *)

val flops_only : t
(** Ablation: cost = FLOPs (a pure operation-count heuristic). *)

val predict :
  t -> Featurizer.t -> env:Dim.env -> Primitive.t -> float
(** Predicted runtime (seconds; arbitrary but consistent units for
    [flops_only]) of one primitive instance. *)

val predict_plan :
  t -> Featurizer.t -> env:Dim.env -> iterations:int -> Plan.t -> float
(** Predicted total plan cost: setup steps once, per-iteration steps
    [iterations] times. *)

val name : t -> string

val profile : t -> Granii_hw.Hw_profile.t option
(** The hardware profile the model targets; [None] for {!flops_only}, which
    has no hardware terms (the locality adjustment is then zero and joint
    selection degenerates to the legacy per-primitive choice). *)

val models : t -> (string * Granii_ml.Gbrt.t) list
(** The underlying learned models ([[]] for ablations) — exposed for
    accuracy evaluation. *)

(** {1 Persistence}

    The paper's workflow trains the cost models once per target machine in
    an initialization script; production runs only load them. *)

val save : t -> string -> unit
(** [save t path] writes a [Learned] model to disk. Raises
    [Invalid_argument] on ablation models (they have no state) and
    [Sys_error] on I/O failure. *)

val load : string -> t
(** Reads a model written by {!save}. The hardware profile is resolved by
    name against {!Granii_hw.Hw_profile.all}. Raises
    [Granii_ml.Sexp_lite.Parse_error] on a malformed file and [Not_found]
    on an unknown profile name. *)
