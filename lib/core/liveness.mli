(** Liveness analysis over a straight-line {!Plan.t}.

    Plans are SSA-like — step [i] defines value [t_i] once; later steps read
    it by index — so a single scan yields each value's last use. The
    executor uses {!dead_after} to return an intermediate's buffer to the
    {!Granii_tensor.Workspace.t} the moment its last reader retires,
    bounding live memory by {!max_live} values instead of one buffer per
    step. *)

type t

val analyze : Plan.t -> t

val last_use : t -> int -> int
(** [last_use l i] is the index of the last step reading [t_i]; [max_int]
    if [t_i] is the plan output (it never dies), [-1] if nothing reads it.
    Raises [Invalid_argument] out of range. *)

val dead_after : t -> int -> int list
(** [dead_after l j] lists the values whose last reader is step [j] (a
    value no step reads dies after its own step). The plan output appears
    in no list. *)

val output : t -> int option
(** The step index backing the plan output, if the output is computed. *)

val max_live : t -> int
(** High-water mark of simultaneously live values — the buffer count an
    executor recycling via {!dead_after} actually needs. *)

val pp : Format.formatter -> t -> unit
