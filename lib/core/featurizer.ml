module Gf = Granii_graph.Graph_features

type t = {
  graph_features : float array;
  stats : Gf.t;
  extraction_time : float;
  threads : int;
}

let extract ?(threads = 1) graph =
  let stats, extraction_time =
    Granii_hw.Timer.measure_wall (fun () -> Gf.extract graph)
  in
  { graph_features = Gf.to_array stats;
    stats;
    extraction_time;
    threads = max 1 threads }

let of_features ?(threads = 1) f =
  { graph_features = Gf.to_array f;
    stats = f;
    extraction_time = 0.;
    threads = max 1 threads }

let with_threads t threads = { t with threads = max 1 threads }

let log1 x = log (1. +. x)

let primitive_input t ~dims:(m, k, n) =
  Array.concat
    [ t.graph_features;
      [| log1 m; log1 k; log1 n; log1 (float_of_int t.threads) |] ]

let n_inputs = Array.length Gf.names + 4

let input_names =
  Array.concat
    [ Gf.names; [| "log_dim_m"; "log_dim_k"; "log_dim_n"; "log_threads" |] ]
