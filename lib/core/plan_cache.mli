(** The plan cache: selection runs once per distinct input shape.

    GRANII's online stage ({!Selector.select_localized}) is the per-input
    overhead the paper reports; at serving scale — and at mini-batch
    training rate, where every batch is a different small graph — it must
    be amortized across invocations, not repeated per call. The cache maps
    a {!key} — everything selection's answer depends on — to the
    {!Selector.localized_choice} it produced, so a stream of requests (or
    training batches) against the same (graph, model, K_in, K_out,
    hardware) pays selection exactly once.

    The cache lives in [lib/core] so the serving runtime
    ({!Granii_serve.Serve}) and the mini-batch trainer
    ({!Granii_gnn.Trainer.train_minibatch}) share one keying policy,
    {!key_of}. They differ only in the graph component of the key:

    - serving keys on the {e exact} structural fingerprint
      ({!Engine.graph_fingerprint}) — registered graphs are long-lived and
      a plan must never leak across structures;
    - the trainer keys on the {e bucketed} fingerprint
      ({!bucketed_fingerprint}) — sampled subgraphs are all different, so
      exact keying would trivially miss on every batch; bucketing by
      log-scale size, log-scale edge count and rounded average degree makes
      structurally similar batches hit while a different graph family still
      misses. Plans are graph-{e agnostic} (a candidate composition is
      legal on any input), so sharing a plan within a bucket is a quality
      approximation, never a correctness risk.

    Eviction is LRU over a fixed capacity; [capacity = 0] disables the
    cache entirely ({!find} always misses, {!add} is a no-op), which is the
    ablation arm of the serving and mini-batch benches. Hit/miss/eviction
    counts go to the optional metrics sink as [<prefix>.hits] /
    [.misses] / [.evictions] (prefix default ["serve.plan_cache"]).

    Not domain-safe: callers serialize access (the serving runtime under
    its scheduler lock, the trainer on the orchestrating domain). *)

type key = {
  graph_fp : string;
      (** {!Engine.graph_fingerprint} (exact, serving) or
          {!bucketed_fingerprint} (sampled mini-batches) *)
  model : string;
  k_in : int;
  k_out : int;
  hw : string;        (** {!Granii_hw.Hw_profile.t} / cost-model name *)
  threads : int;      (** selection is thread-count-aware *)
  layout : string;
      (** {!Locality.config_to_string} of the engine's locality axis — two
          engine configs that localize differently (ordering or sparse
          format) rank candidates differently, so they must never share a
          plan *)
}

type stats = { hits : int; misses : int; evictions : int }

type t

val create :
  ?obs:Granii_obs.Obs.t -> ?metric_prefix:string -> capacity:int -> unit -> t
(** Raises [Invalid_argument] when [capacity < 0]. [metric_prefix] names
    the counter family (default ["serve.plan_cache"]; the trainer uses
    ["train.plan_cache"]). *)

val capacity : t -> int

val length : t -> int

val find : t -> key -> Selector.localized_choice option
(** Counting lookup: every call is a hit or a miss. *)

val peek : t -> key -> Selector.localized_choice option
(** Non-counting lookup (diagnostics and oracle paths). *)

val add : t -> key -> Selector.localized_choice -> unit
(** Insert, evicting the least-recently-used entry when full. Replacing an
    existing key is not an eviction. No-op at capacity 0. *)

val stats : t -> stats

(** {2 The shared keying policy} *)

val key_of :
  graph_fp:string -> model:string -> k_in:int -> k_out:int -> hw:string ->
  threads:int -> locality:Locality.config -> key
(** The one place a cache key is assembled: lowercases the model name and
    stringifies the locality axis, so serve and trainer cannot drift. *)

val bucketed_fingerprint : Granii_graph.Graph.t -> string
(** O(1) bucketed structural fingerprint for sampled subgraphs:
    [floor(log2 n)], [floor(log2 nnz)] and average degree rounded to
    half-steps. Mini-batches drawn with the same batch size and fanout
    schedule typically land in the same bucket (and hit) — draws sitting
    on a bucket boundary may split, costing one extra selection; a graph
    from a different size or density family never matches. *)
