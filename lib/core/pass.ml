module Csr = Granii_sparse.Csr
module Hybrid = Granii_sparse.Hybrid
module Reorder = Granii_graph.Reorder
module Dense = Granii_tensor.Dense

type prepared = {
  plan : Plan.t;
  steps : Plan.step array;
  args : Plan.source array array option;
  live : Liveness.t option;
  locality : Locality.config;
  cache_keys : string array option;
  trace : string list;
}

let base (plan : Plan.t) =
  { plan;
    steps = Array.of_list plan.Plan.steps;
    args = None;
    live = None;
    locality = Locality.default;
    cache_keys = None;
    trace = [] }

type pass = {
  name : string;
  enabled : Engine.t -> bool;
  transform : Engine.t -> prepared -> prepared;
}

let lowering =
  { name = "lowering";
    enabled = (fun _ -> true);
    transform =
      (fun _ p ->
        { p with
          args =
            Some (Array.map (fun (s : Plan.step) -> Array.of_list s.Plan.args) p.steps)
        }) }

let liveness =
  { name = "liveness";
    enabled =
      (fun e -> (not (Engine.keep_intermediates e)) && Engine.workspace e <> None);
    transform = (fun _ p -> { p with live = Some (Liveness.analyze p.plan) }) }

let locality_layout =
  { name = "locality-layout";
    enabled = (fun e -> not (Locality.is_default (Engine.locality e)));
    transform = (fun e p -> { p with locality = Engine.locality e }) }

let cache_keying =
  { name = "cache-keying";
    enabled = (fun e -> Engine.cache e <> None);
    transform =
      (fun _ p ->
        { p with
          cache_keys = Some (Array.map (fun (s : Plan.step) -> s.Plan.skey) p.steps)
        }) }

let all = [ lowering; liveness; locality_layout; cache_keying ]

let apply engine pass p =
  if List.mem pass.name p.trace then p
  else if pass.enabled engine then
    { (pass.transform engine p) with trace = p.trace @ [ pass.name ] }
  else p

let prepare ?(disable = []) engine plan =
  List.fold_left
    (fun p pass -> if List.mem pass.name disable then p else apply engine pass p)
    (base plan) all

(* ---- locality boundary (runtime half of the locality-layout pass) ----

   Under a non-default [Locality.config] the run is bracketed: graph and
   bindings are permuted on entry, the plan executes entirely in the new id
   space (optionally from the hybrid format), and outputs are
   inverse-permuted on exit. Values are classified by shape — the rule the
   GNN binding convention establishes: an [n x _] dense matrix or length-[n]
   diagonal is node-indexed (permute rows), an [n x n] sparse matrix is
   graph-shaped (permute symmetrically), everything else (weight matrices)
   is id-free. All of it is timed into [layout_time], separate from
   setup/iteration so the bench can report amortization honestly. *)

module Layout = struct
  let permute_value r n = function
    | Dispatch.Vdense d when d.Dense.rows = n ->
        Dispatch.Vdense (Reorder.permute_dense_rows r d)
    | Dispatch.Vsparse s when s.Csr.n_rows = n && s.Csr.n_cols = n ->
        Dispatch.Vsparse (Reorder.permute_csr r s)
    | Dispatch.Vdiag v when Array.length v = n ->
        Dispatch.Vdiag (Reorder.permute_vector r v)
    | v -> v

  let inverse_value r inv_r n = function
    | Dispatch.Vdense d when d.Dense.rows = n ->
        Dispatch.Vdense (Reorder.inverse_dense_rows r d)
    | Dispatch.Vsparse s when s.Csr.n_rows = n && s.Csr.n_cols = n ->
        Dispatch.Vsparse (Reorder.permute_csr inv_r s)
    | Dispatch.Vdiag v when Array.length v = n ->
        Dispatch.Vdiag (Reorder.inverse_vector r v)
    | v -> v

  (* Mutable locality state for one run: the computed ordering (if any) and
     the memo of localized-format conversions, keyed by physical identity —
     only iteration-stable matrices (bindings, setup-step outputs) are
     registered, so per-iteration-fresh sparse values keep the Csr path and
     never pay a per-iteration conversion. *)
  type state = {
    config : Locality.config;
    reorder : Reorder.t option;
    inverse : Reorder.t option; (* the inverse ordering, for Csr outputs *)
    mutable forms : (Csr.t * Dispatch.form) list;
    mutable layout : float;
  }

  let enter ~locality ~graph ~bindings =
    if Locality.is_default locality then (None, graph, bindings)
    else begin
      let n = Granii_graph.Graph.n_nodes graph in
      let (st, graph', bindings'), t =
        Granii_hw.Timer.measure_wall (fun () ->
            match locality.Locality.strategy with
            | Granii_graph.Reorder.Identity ->
                ( { config = locality;
                    reorder = None;
                    inverse = None;
                    forms = [];
                    layout = 0. },
                  graph,
                  bindings )
            | strategy ->
                let r =
                  Reorder.compute strategy graph.Granii_graph.Graph.adj
                in
                let inv = Reorder.of_perm ~strategy r.Reorder.inv in
                ( { config = locality;
                    reorder = Some r;
                    inverse = Some inv;
                    forms = [];
                    layout = 0. },
                  Reorder.apply_graph r graph,
                  List.map (fun (name, v) -> (name, permute_value r n v)) bindings
                ))
      in
      st.layout <- t;
      (Some st, graph', bindings')
    end

  (* Register an iteration-stable sparse value for localized execution; the
     conversion cost is layout work, not kernel time. *)
  let convert_for fmt s =
    match fmt with
    | Locality.Csr -> None
    | Locality.Hybrid -> Some (Dispatch.Fhybrid (Hybrid.of_csr s))
    | Locality.Bsr -> Some (Dispatch.Fbsr (Granii_sparse.Bsr.of_csr s))
    | Locality.Cbm -> Some (Dispatch.Fcbm (Granii_sparse.Cbm.of_csr s))

  let register st v =
    match st with
    | None -> ()
    | Some st ->
        if st.config.Locality.format <> Locality.Csr then begin
          match v with
          | Dispatch.Vsparse s
            when s.Csr.n_rows = s.Csr.n_cols
                 && not (List.exists (fun (m, _) -> m == s) st.forms) -> (
              let frm, t =
                Granii_hw.Timer.measure_wall (fun () ->
                    convert_for st.config.Locality.format s)
              in
              match frm with
              | Some frm ->
                  st.layout <- st.layout +. t;
                  st.forms <- (s, frm) :: st.forms
              | None -> ())
          | _ -> ()
        end

  let form_of st =
    match st with
    | None -> None
    | Some st ->
        if st.config.Locality.format <> Locality.Csr then
          Some
            (fun m ->
              List.find_opt (fun (m', _) -> m' == m) st.forms
              |> Option.map snd)
        else None

  let exit_ st ~n output intermediates =
    match st with
    | None -> (output, intermediates, 0.)
    | Some st -> (
        match (st.reorder, st.inverse) with
        | Some r, Some inv_r ->
            let (o, ints), t =
              Granii_hw.Timer.measure_wall (fun () ->
                  ( inverse_value r inv_r n output,
                    List.map
                      (fun (i, v) -> (i, inverse_value r inv_r n v))
                      intermediates ))
            in
            st.layout <- st.layout +. t;
            (o, ints, st.layout)
        | _ -> (output, intermediates, st.layout))
end
