(** Plan preparation as an explicit pass pipeline.

    What used to be inlined in the executor's body is a sequence of
    named, individually testable transforms over a {!prepared} plan:

    - {!lowering} — pre-resolve each step's argument sources into arrays
      (the shape the dispatch loop consumes);
    - {!liveness} — attach the {!Liveness} analysis so the executor can
      recycle each intermediate's buffer at its last use (enabled only
      under a workspace with [keep_intermediates:false]);
    - {!locality_layout} — adopt the engine's {!Locality.config}, under
      which the run is bracketed by {!Layout.enter}/{!Layout.exit_};
    - {!cache_keying} — attach the per-step structural cache keys
      ({!Plan.step.skey}) consulted by the subtree cache.

    Each pass runs at most once ({!apply} is idempotent: a pass already in
    the trace is skipped) and only when its [enabled] predicate accepts the
    engine, so a pipeline over {!Engine.default_config} degenerates to
    lowering alone — the seed executor's behavior. The applied pass names
    are recorded in order in [trace] and surfaced in
    {!Executor.report.trace}. *)

type prepared = {
  plan : Plan.t;
  steps : Plan.step array;
  args : Plan.source array array option;
      (** per-step argument sources, pre-resolved by {!lowering};
          [None] means the executor falls back to the step's source list *)
  live : Liveness.t option;
  locality : Locality.config;
      (** layout the run executes under; {!Locality.default} until the
          {!locality_layout} pass adopts the engine's *)
  cache_keys : string array option;
  trace : string list;  (** applied pass names, in application order *)
}

type pass = {
  name : string;
  enabled : Engine.t -> bool;
  transform : Engine.t -> prepared -> prepared;
}

val base : Plan.t -> prepared
(** The un-prepared plan: steps as an array, no analyses, default layout,
    empty trace. *)

val lowering : pass
val liveness : pass
val locality_layout : pass
val cache_keying : pass

val all : pass list
(** The full pipeline, in order: lowering, liveness, locality-layout,
    cache-keying. *)

val apply : Engine.t -> pass -> prepared -> prepared
(** Run one pass: skipped when already in the trace (idempotence) or when
    [pass.enabled] rejects the engine; otherwise transforms and appends the
    pass name to the trace. *)

val prepare : ?disable:string list -> Engine.t -> Plan.t -> prepared
(** [apply] every pass of {!all} in order, skipping names in [disable]
    (a debugging/ablation knob: with every pass disabled the executor
    reproduces the seed path bitwise). *)

(** Runtime half of the locality-layout pass: the permutation bracket the
    executor wraps around a run under a non-default layout. Graph and
    bindings are permuted on entry, the plan executes entirely in the new
    id space (optionally from the hybrid format), and outputs are
    inverse-permuted on exit; values are classified by shape (n-row dense /
    n×n sparse / length-n diagonal are node-indexed, everything else is
    id-free). All of it is timed into the report's [layout_time]. *)
module Layout : sig
  type state

  val enter :
    locality:Locality.config -> graph:Granii_graph.Graph.t ->
    bindings:(string * Dispatch.value) list ->
    state option * Granii_graph.Graph.t * (string * Dispatch.value) list

  val register : state option -> Dispatch.value -> unit
  (** Memoize the localized form (hybrid / BSR / CBM, per the config) of an
      iteration-stable square sparse value (bindings and setup-phase
      outputs), by physical identity. *)

  val form_of :
    state option ->
    (Granii_sparse.Csr.t -> Dispatch.form option) option
  (** The lookup handed to {!Dispatch.ctx}. *)

  val exit_ :
    state option -> n:int -> Dispatch.value -> (int * Dispatch.value) list ->
    Dispatch.value * (int * Dispatch.value) list * float
  (** Inverse-permute the output and intermediates back to the original
      vertex order; returns the accumulated layout time. *)
end
