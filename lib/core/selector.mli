(** The online stage: input-aware candidate selection (paper, Sec. IV-D/E).

    Given the compiled dispatch structure, the runtime input (graph features
    + embedding sizes) and the cost oracle, picks the
    minimum-predicted-cost candidate. Selection time is measured — it is the
    second runtime overhead the paper reports. *)

type choice = {
  candidate : Codegen.ccand;
  predicted_cost : float;
      (** predicted total cost over the requested iterations *)
  selection_time : float;  (** wall-clock seconds spent deciding *)
  considered : int;        (** candidates inspected after the scenario guard *)
  used_cost_models : bool; (** [false] on the embedding-size fast path *)
}

type localized_choice = {
  lchoice : choice;          (** the winning candidate, scored jointly *)
  config : Locality.config;  (** the winning layout configuration *)
  base_cost : float;
      (** the same candidate's predicted cost under {!Locality.default} —
          [predicted_cost - base_cost] is the layout gain the model claims *)
}

val scenario_of : k_in:int -> k_out:int -> Dim.scenario

val select :
  ?obs:Granii_obs.Obs.t -> oracle:Cost_oracle.t -> feats:Featurizer.t ->
  env:Dim.env -> iterations:int -> Codegen.t -> choice
(** Raises [Invalid_argument] if the compiled model has no candidate for the
    input's scenario (cannot happen for {!Codegen.compile} output on a
    non-empty pruning result). A live [obs] records a ["select"] span whose
    duration is exactly [selection_time], plus the [select.runs] /
    [select.candidates.considered] counters and a [select.time]
    histogram sample. *)

val rank :
  oracle:Cost_oracle.t -> feats:Featurizer.t -> env:Dim.env ->
  iterations:int -> Codegen.t -> (Codegen.ccand * float) list
(** All scenario-compatible candidates with predicted costs, cheapest first
    (diagnostic view of the same decision). *)

val select_localized :
  ?obs:Granii_obs.Obs.t -> oracle:Cost_oracle.t -> feats:Featurizer.t ->
  env:Dim.env -> iterations:int -> ?configs:Locality.config list ->
  Codegen.t -> localized_choice
(** Joint {e {ordering × format × candidate}} selection: every candidate is
    scored under every configuration in [configs] (default:
    {!Locality.all_configs}), where a configuration's score is the base
    plan prediction scaled by the {e relative} analytic layout change
    ({!Cost_oracle.plan_adjustment} over the analytic plan cost — exactly
    [base + adjustment] for the analytic model, and scale-invariant for
    learned models whose predictions live on their own scale).
    Strict-minimum with the default configuration first, so the legacy
    path wins all ties; with a profile-less oracle every adjustment is
    zero and the result coincides with {!select}. Pass a singleton
    [configs] to force a configuration (the CLI's
    [--reorder]/[--format]). *)

val rank_localized :
  oracle:Cost_oracle.t -> feats:Featurizer.t -> env:Dim.env ->
  iterations:int -> ?configs:Locality.config list -> Codegen.t ->
  (Codegen.ccand * Locality.config * float * float) list
(** Every (candidate, config) pair as [(cand, config, base, adjusted)],
    cheapest adjusted cost first. *)

val measure :
  ?seed:int -> ?pool:Granii_tensor.Parallel.t -> ?obs:Granii_obs.Obs.t ->
  timing:Executor.timing -> graph:Granii_graph.Graph.t ->
  bindings:(string * Executor.value) list ->
  env:Dim.env -> iterations:int -> Codegen.t ->
  (Codegen.ccand * float) list * (int * int)
(** Ground-truth companion to {!rank}: {e executes} every
    scenario-compatible candidate on a concrete input and returns them
    sorted by measured (or simulated) total time at [iterations], cheapest
    first, plus the [(hits, misses)] of the shared-subtree cache — all
    candidates run on one cache-enabled {!Engine.t}, so each common
    subexpression executes once per input instead of once per plan. *)
