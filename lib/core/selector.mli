(** The online stage: input-aware candidate selection (paper, Sec. IV-D/E).

    Given the compiled dispatch structure, the runtime input (graph features
    + embedding sizes) and the per-primitive cost models, picks the
    minimum-predicted-cost candidate. Selection time is measured — it is the
    second runtime overhead the paper reports. *)

type choice = {
  candidate : Codegen.ccand;
  predicted_cost : float;
      (** predicted total cost over the requested iterations *)
  selection_time : float;  (** wall-clock seconds spent deciding *)
  considered : int;        (** candidates inspected after the scenario guard *)
  used_cost_models : bool; (** [false] on the embedding-size fast path *)
}

val scenario_of : k_in:int -> k_out:int -> Dim.scenario

val select :
  cost_model:Cost_model.t -> feats:Featurizer.t -> env:Dim.env ->
  iterations:int -> Codegen.t -> choice
(** Raises [Invalid_argument] if the compiled model has no candidate for the
    input's scenario (cannot happen for {!Codegen.compile} output on a
    non-empty pruning result). *)

val rank :
  cost_model:Cost_model.t -> feats:Featurizer.t -> env:Dim.env ->
  iterations:int -> Codegen.t -> (Codegen.ccand * float) list
(** All scenario-compatible candidates with predicted costs, cheapest first
    (diagnostic view of the same decision). *)

val measure :
  ?seed:int -> ?pool:Granii_tensor.Parallel.t -> timing:Executor.timing ->
  graph:Granii_graph.Graph.t -> bindings:(string * Executor.value) list ->
  env:Dim.env -> iterations:int -> Codegen.t ->
  (Codegen.ccand * float) list * (int * int)
(** Ground-truth companion to {!rank}: {e executes} every
    scenario-compatible candidate on a concrete input and returns them
    sorted by measured (or simulated) total time at [iterations], cheapest
    first, plus the [(hits, misses)] of the shared-subtree cache — all
    candidates share one {!Executor.cache}, so each common subexpression
    executes once per input instead of once per plan. *)
