let log_src = Logs.Src.create "granii" ~doc:"GRANII compile/optimize pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

type offline_stats = {
  n_variants : int;
  n_enumerated : int;
  n_pruned : int;
  n_promoted : int;
}

module Obs = Granii_obs.Obs

let compile ?(obs = Obs.disabled) ?max_trees ?degree_leaves ~name expr =
  Obs.span obs ~cat:"compile" ~attrs:[ ("model", name) ] "compile" @@ fun () ->
  let n_variants =
    Obs.span obs ~cat:"compile" "rewrite" @@ fun () ->
    List.length (Rewrite.variants expr)
  in
  let forest =
    Obs.span obs ~cat:"compile" "enumerate" @@ fun () ->
    Enumerate.forest ?max_trees expr
  in
  let pruned = Obs.span obs ~cat:"compile" "prune" @@ fun () -> Prune.run forest in
  let compiled =
    Obs.span obs ~cat:"compile" "codegen" @@ fun () ->
    Codegen.compile ?degree_leaves ~name pruned
  in
  Obs.count obs "offline.variants" n_variants;
  Obs.count obs "offline.enumerated" pruned.Prune.n_enumerated;
  Obs.count obs "offline.pruned" pruned.Prune.n_pruned;
  Obs.count obs "offline.promoted" (List.length pruned.Prune.promoted);
  Log.info (fun m ->
      m "compiled %s: %d variants, %d enumerated, %d pruned, %d promoted" name
        n_variants pruned.Prune.n_enumerated pruned.Prune.n_pruned
        (List.length pruned.Prune.promoted));
  ( compiled,
    { n_variants;
      n_enumerated = pruned.Prune.n_enumerated;
      n_pruned = pruned.Prune.n_pruned;
      n_promoted = List.length pruned.Prune.promoted } )

type decision = {
  choice : Selector.choice;
  feats : Featurizer.t;
  overhead : float;
}

let featurize ?(obs = Obs.disabled) ~threads graph =
  let feats = Featurizer.extract ~threads graph in
  (match obs.Obs.trace with
  | None -> ()
  | Some t ->
      let sp = Obs.Trace.enter t ~cat:"engine" "featurize" in
      Obs.Trace.exit_ t ~dur:feats.Featurizer.extraction_time sp);
  (match obs.Obs.metrics with
  | None -> ()
  | Some m -> Obs.Metrics.observe m "featurize.time" feats.Featurizer.extraction_time);
  feats

let optimize ?obs ~oracle ~graph ~k_in ~k_out ?(iterations = 100) ?(threads = 1) compiled =
  let feats = featurize ?obs ~threads graph in
  let env =
    { Dim.n = Granii_graph.Graph.n_nodes graph;
      nnz = Granii_graph.Graph.n_edges graph + Granii_graph.Graph.n_nodes graph;
      k_in;
      k_out }
  in
  let choice = Selector.select ?obs ~oracle ~feats ~env ~iterations compiled in
  Log.info (fun m ->
      m "selected %s for %s (n=%d nnz=%d %d->%d, %d iterations): %.3e s predicted, %s"
        choice.Selector.candidate.Codegen.plan.Plan.name compiled.Codegen.model_name
        env.Dim.n env.Dim.nnz k_in k_out iterations
        choice.Selector.predicted_cost
        (if choice.Selector.used_cost_models then "cost models"
         else "embedding-size guard"));
  { choice;
    feats;
    overhead = feats.Featurizer.extraction_time +. choice.Selector.selection_time }

type localized_decision = {
  ldecision : decision;
  config : Locality.config;
  base_cost : float;
}

let optimize_localized ?obs ~oracle ~graph ~k_in ~k_out ?(iterations = 100)
    ?(threads = 1) ?configs compiled =
  let feats = featurize ?obs ~threads graph in
  let env =
    { Dim.n = Granii_graph.Graph.n_nodes graph;
      nnz = Granii_graph.Graph.n_edges graph + Granii_graph.Graph.n_nodes graph;
      k_in;
      k_out }
  in
  let lc =
    Selector.select_localized ?obs ~oracle ~feats ~env ~iterations ?configs
      compiled
  in
  let choice = lc.Selector.lchoice in
  Log.info (fun m ->
      m
        "selected %s under %s for %s (n=%d nnz=%d %d->%d, %d iterations): \
         %.3e s predicted (%.3e s legacy)"
        choice.Selector.candidate.Codegen.plan.Plan.name
        (Locality.config_to_string lc.Selector.config)
        compiled.Codegen.model_name env.Dim.n env.Dim.nnz k_in k_out iterations
        choice.Selector.predicted_cost lc.Selector.base_cost);
  { ldecision =
      { choice;
        feats;
        overhead =
          feats.Featurizer.extraction_time +. choice.Selector.selection_time };
    config = lc.Selector.config;
    base_cost = lc.Selector.base_cost }

let execute_with ?seed ?disable ~engine ~timing ~graph ~bindings decision =
  Executor.exec ?seed ?disable ~engine ~timing ~graph ~bindings
    decision.choice.Selector.candidate.Codegen.plan

let engine_config ?(threads = 1) ?(workspace = false) ?(cache = false)
    ?(keep_intermediates = true) ?(telemetry = false)
    ?(calibration = Cost_oracle.Off) (localized : localized_decision) =
  { Engine.default_config with
    threads;
    workspace;
    cache;
    locality = localized.config;
    keep_intermediates;
    telemetry;
    calibration }

let simulated_overhead ~profile ~env =
  let featurize =
    Cost_oracle.kernel_time profile
      (Granii_hw.Kernel_model.Elementwise
         { n = env.Dim.nnz + env.Dim.n; k = 1; flops_per_elt = 4. })
  in
  let selection = 2e-5 in
  featurize +. selection
