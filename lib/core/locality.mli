(** Locality configurations: {e data layout} as a cost-modeled decision.

    A configuration pairs a vertex ordering ({!Granii_graph.Reorder.strategy})
    with a sparse format for the g-kernels. The selector ranks
    {m \{ordering\} \times \{format\} \times \{primitive composition\}}
    jointly per input: each configuration contributes a one-time layout cost
    ({!layout_kernels}) and a per-kernel gather discount
    ({!gather_discount}) derived from the input's layout statistics
    (packing efficiency, degree skew, bandwidth) and the hardware profile's
    per-format terms.

    Execution under a non-default configuration is bitwise-transparent: the
    executor permutes the graph and bindings on entry, runs stable-permuted /
    hybrid kernels, and inverse-permutes the output (see {!Executor.exec}
    on an engine with a non-default [locality] axis). *)

type format = Csr | Hybrid | Bsr | Cbm

type config = { strategy : Granii_graph.Reorder.strategy; format : format }

val default : config
(** [identity + csr] — the legacy path; always considered first. *)

val is_default : config -> bool

val legal : config -> bool
(** Whether the pair can honor the bitwise contract. [Bsr] tiles accumulate
    each row in ascending column order — the CSR kernel order only under the
    identity ordering, because reordered matrices keep {e source} entry
    order ({!Granii_graph.Reorder.permute_csr}). [Hybrid] and [Cbm]
    preserve per-row storage order and compose with any strategy. *)

val all_configs : config list
(** Every {!legal} strategy × format pair, {!default} first. *)

val all_formats : format list

val format_to_string : format -> string

val format_of_string : string -> format option
(** Accepts ["csr"], ["hybrid"]/["ell"], ["bsr"], ["cbm"]. *)

val config_to_string : config -> string
(** E.g. ["degree+hybrid"]. *)

val order_quality : Granii_graph.Graph_features.t -> Granii_graph.Reorder.strategy -> float
(** Input-statistics proxy in [[0, 1]] for how much an ordering can help:
    degree skew (Gini) for degree-sort, near-regular sparsity for BFS/RCM,
    [0.] for identity. *)

val gather_discount :
  Granii_hw.Hw_profile.t -> Granii_graph.Graph_features.t -> config -> float
(** Predicted fraction of g-kernel random-gather traffic removed, composing
    the format and ordering credits as independent survival probabilities. *)

val layout_kernels :
  n:int -> nnz:int -> config -> Granii_hw.Kernel_model.kernel list
(** The one-time counting-scatter passes the configuration requires. The
    timed counterparts ([layout_time], [kernel_delta], [plan_adjustment])
    live on {!Cost_oracle} — this module only describes the structure. *)

val pp : Format.formatter -> config -> unit
