module Workspace = Granii_tensor.Workspace
module K = Granii_hw.Kernel_model
module Timer = Granii_hw.Timer
module Obs = Granii_obs.Obs

type value = Dispatch.value =
  | Vdense of Granii_tensor.Dense.t
  | Vsparse of Granii_sparse.Csr.t
  | Vdiag of Granii_tensor.Vector.t

type timing = Measure | Simulate of Granii_hw.Hw_profile.t

type report = {
  output : value;
  setup_time : float;
  iteration_time : float;
  layout_time : float;
  per_step : (Primitive.t * Plan.phase * float) list;
  intermediates : (int * value) list;
  trace : string list;
}

exception Execution_error = Dispatch.Execution_error

let err fmt = Format.kasprintf (fun s -> raise (Execution_error s)) fmt

let shape_of = Dispatch.shape_of
let pp_value = Dispatch.pp_value

let apply ?pool ?ws prim graph args =
  Dispatch.exec { Dispatch.pool; ws; localize = None } prim graph
    (Array.of_list args)

(* Analytic time of one executed step: the kernel-model prediction for its
   instantiated kernels, with deterministic jitter seeded per step index. *)
let analytic_time ~threads ~seed profile (s : Plan.step) graph args v =
  List.fold_left
    (fun acc k ->
      acc +. K.time_noisy ~threads profile ~seed:(seed + s.Plan.idx) k)
    0.
    (Dispatch.kernels_of_step s.Plan.prim graph args v)

(* ---- telemetry helpers ----

   Everything below is guarded on the sink's components, so a disabled
   engine pays one option match per use and allocates nothing. *)

let phase_name = function
  | Plan.Setup -> "setup"
  | Plan.Per_iteration -> "iteration"

let step_attrs ~threads ~ctx (s : Plan.step) args v =
  let r, c = Dispatch.shape_of v in
  let attrs =
    [ ("prim", Primitive.name s.Plan.prim);
      ("phase", phase_name s.Plan.phase);
      ("format",
       Dispatch.fmt_to_string (Dispatch.format_of ctx s.Plan.prim args));
      ("shape", Printf.sprintf "%dx%d" r c);
      ("threads", string_of_int threads) ]
  in
  match v with
  | Vsparse m -> ("nnz", string_of_int (Granii_sparse.Csr.nnz m)) :: attrs
  | _ -> attrs

let step_span_enter tr (s : Plan.step) =
  match tr with
  | None -> None
  | Some t -> Some (Obs.Trace.enter t ~cat:"step" (Primitive.name s.Plan.prim))

let step_span_exit tr sp ~threads ~ctx (s : Plan.step) args v elapsed =
  match (tr, sp) with
  | Some t, Some sp ->
      Obs.Trace.exit_ t ~dur:elapsed ~attrs:(step_attrs ~threads ~ctx s args v)
        sp
  | _ -> ()

let step_observe (obs : Obs.t) (s : Plan.step) elapsed =
  (* guard-first on each component so a disabled sink costs one option
     match and allocates nothing *)
  (match obs.Obs.journal with
  | None -> ()
  | Some j ->
      Obs.Journal.record j Obs.Journal.Step
        ~tag:(Primitive.name s.Plan.prim) ~v:elapsed);
  match obs.Obs.metrics with
  | None -> ()
  | Some m ->
      Obs.Metrics.observe m ("step." ^ Primitive.name s.Plan.prim) elapsed

(* Predicted-vs-measured pair for the cost oracle and the cost-model
   monitor: the raw (uncorrected) analytic prediction under the oracle's
   base profile against the wall clock — only computed when the monitor is
   live or calibration is on, and only for genuinely measured steps. With
   calibration on, [Cost_oracle.observe] records into the oracle's pair
   store (physically the live monitor, when telemetry is on) and triggers
   the periodic fit; a live monitor that is {e not} the oracle's store is
   still fed directly, so report-only telemetry keeps working alongside a
   privately-calibrating injected oracle. *)
let costmon_record ~engine ~threads (s : Plan.step) graph args v measured =
  let obs = Engine.obs engine in
  let oracle = Engine.oracle engine in
  let calibrating = Cost_oracle.calibration oracle <> Cost_oracle.Off in
  if obs.Obs.costmon <> None || calibrating then begin
    let prim = Primitive.name s.Plan.prim in
    let predicted =
      Cost_oracle.predict_kernels oracle ~threads
        (Dispatch.kernels_of_step s.Plan.prim graph args v)
    in
    if calibrating then Cost_oracle.observe oracle ~prim ~predicted ~measured;
    match obs.Obs.costmon with
    | Some cm when (not calibrating) || not (cm == Cost_oracle.monitor oracle)
      ->
        Obs.Cost_monitor.record cm ~prim ~predicted ~measured
    | _ -> ()
  end

let bracket_span tr ~cat name =
  match tr with None -> None | Some t -> Some (Obs.Trace.enter t ~cat name)

let bracket_exit tr sp ?attrs () =
  match (tr, sp) with
  | Some t, Some sp -> Obs.Trace.exit_ t ?attrs sp
  | _ -> ()

(* Post-run metrics: workspace arena deltas plus a GC snapshot. *)
let run_metrics (obs : Obs.t) ws before =
  match obs.Obs.metrics with
  | None -> ()
  | Some m ->
      (match (ws, before) with
      | Some w, Some (b : Workspace.stats) ->
          let s = Workspace.stats w in
          Obs.Metrics.add m "workspace.alloc.hits"
            (s.Workspace.hits - b.Workspace.hits);
          Obs.Metrics.add m "workspace.alloc.misses"
            (s.Workspace.misses - b.Workspace.misses);
          Obs.Metrics.set_gauge m "workspace.bytes.held"
            (float_of_int (8 * s.Workspace.held_words));
          Obs.Metrics.set_gauge m "workspace.bytes.issued"
            (float_of_int (8 * s.Workspace.issued_words))
      | _ -> ());
      let g = Gc.quick_stat () in
      Obs.Metrics.set_gauge m "gc.major_words" g.Gc.major_words;
      Obs.Metrics.add m "engine.runs" 1

(* ---- the dispatch loop ----

   All policy lives elsewhere: the engine owns pool/workspace/cache/layout
   and was validated at construction; the pass pipeline decided what is
   wired in (argument lowering, liveness recycling, layout bracketing,
   cache keys). What remains here is: resolve arguments, dispatch each step
   through the kernel registry, time it, and recycle dead buffers. *)

let exec_prepared ~seed ~engine ~timing ~graph ~bindings (prep : Pass.prepared) =
  let pool = Engine.pool engine and ws = Engine.workspace engine in
  let obs = Engine.obs engine in
  let tr = obs.Obs.trace in
  let exec_span = bracket_span tr ~cat:"engine" "execute" in
  let cache =
    match (Engine.cache engine, prep.Pass.cache_keys) with
    | Some c, Some keys ->
        Engine.cache_bind_graph c graph;
        Some (c, keys)
    | _ -> None
  in
  let orig_n = Granii_graph.Graph.n_nodes graph in
  let layout_span = bracket_span tr ~cat:"engine" "layout" in
  let lstate, graph, bindings =
    Pass.Layout.enter ~locality:prep.Pass.locality ~graph ~bindings
  in
  List.iter (fun (_, v) -> Pass.Layout.register lstate v) bindings;
  bracket_exit tr layout_span ~attrs:[ ("stage", "enter") ] ();
  let ctx = { Dispatch.pool; ws; localize = Pass.Layout.form_of lstate } in
  (match ws with Some w -> Workspace.reclaim w | None -> ());
  let ws_before = Option.map Workspace.stats ws in
  let steps = prep.Pass.steps in
  let n = Array.length steps in
  let slots : value option array = Array.make n None in
  let lookup = function
    | Plan.Computed i -> (
        match slots.(i) with
        | Some v -> v
        | None -> err "step t%d used before being computed" i)
    | Plan.Input "__graph__" ->
        (* Token argument of Degree steps; its value is never inspected. *)
        Vsparse graph.Granii_graph.Graph.adj
    | Plan.Input name -> (
        match List.assoc_opt name bindings with
        | Some v -> v
        | None -> err "unbound input %s" name)
  in
  let arg_values i (s : Plan.step) =
    match prep.Pass.args with
    | Some srcs -> Array.map lookup srcs.(i)
    | None -> Array.of_list (List.map lookup s.Plan.args)
  in
  let free_dead_after i =
    match prep.Pass.live with
    | None -> ()
    | Some lv ->
        List.iter
          (fun d ->
            match slots.(d) with
            | None -> ()
            | Some v ->
                List.iter
                  (fun a ->
                    (* a fold that degenerates to the identity can make two
                       slots (or a slot and a binding) share one backing
                       array — never recycle an array a live slot still
                       reads. Bindings are safe automatically: the workspace
                       only takes back buffers it issued. *)
                    let shared = ref false in
                    Array.iteri
                      (fun j s ->
                        match s with
                        | Some sv when j <> d && Dispatch.shares_backing a sv ->
                            shared := true
                        | _ -> ())
                      slots;
                    if not !shared then Workspace.give_back ws a)
                  (Dispatch.backing_arrays v);
                slots.(d) <- None)
          (Liveness.dead_after lv i)
  in
  let threads = Engine.threads engine in
  let setup_time = ref 0. and iteration_time = ref 0. in
  let per_step = ref [] in
  Array.iteri
    (fun i (s : Plan.step) ->
      let args = arg_values i s in
      let sp = step_span_enter tr s in
      let cached =
        match cache with
        | None -> None
        | Some (c, keys) -> Engine.cache_find c keys.(i)
      in
      if cache <> None then
        Obs.count obs
          (match cached with Some _ -> "cache.hits" | None -> "cache.misses")
          1;
      let value, elapsed =
        match (cached, timing) with
        | Some (v, measured), Measure ->
            (* the work is genuinely skipped; charge what it cost when it ran *)
            (v, measured)
        | Some (v, _), Simulate profile ->
            (* simulated jitter is seeded per step index, which differs
               between plans — recompute the analytic time for THIS step so
               a cache hit is timing-transparent in Simulate mode *)
            (v, analytic_time ~threads ~seed profile s graph args v)
        | None, Measure ->
            let v, t =
              Timer.measure_wall (fun () ->
                  Dispatch.exec ctx s.Plan.prim graph args)
            in
            Engine.cache_insert engine s.Plan.skey v t;
            costmon_record ~engine ~threads s graph args v t;
            (v, t)
        | None, Simulate profile ->
            let v = Dispatch.exec ctx s.Plan.prim graph args in
            let t = analytic_time ~threads ~seed profile s graph args v in
            Engine.cache_insert engine s.Plan.skey v t;
            (v, t)
      in
      step_span_exit tr sp ~threads ~ctx s args value elapsed;
      step_observe obs s elapsed;
      slots.(s.Plan.idx) <- Some value;
      (* setup outputs are iteration-stable: candidates for the localized form *)
      if s.Plan.phase = Plan.Setup then Pass.Layout.register lstate value;
      (match s.Plan.phase with
      | Plan.Setup -> setup_time := !setup_time +. elapsed
      | Plan.Per_iteration -> iteration_time := !iteration_time +. elapsed);
      per_step := (s.Plan.prim, s.Plan.phase, elapsed) :: !per_step;
      free_dead_after s.Plan.idx)
    steps;
  let output = lookup prep.Pass.plan.Plan.output in
  let intermediates =
    if Engine.keep_intermediates engine then begin
      let acc = ref [] in
      for i = n - 1 downto 0 do
        match slots.(i) with Some v -> acc := (i, v) :: !acc | None -> ()
      done;
      !acc
    end
    else []
  in
  let exit_span = bracket_span tr ~cat:"engine" "layout" in
  let output, intermediates, layout_time =
    Pass.Layout.exit_ lstate ~n:orig_n output intermediates
  in
  bracket_exit tr exit_span ~attrs:[ ("stage", "exit") ] ();
  run_metrics obs ws ws_before;
  bracket_exit tr exec_span
    ~attrs:[ ("plan", prep.Pass.plan.Plan.name) ]
    ();
  { output;
    setup_time = !setup_time;
    iteration_time = !iteration_time;
    layout_time;
    per_step = List.rev !per_step;
    intermediates;
    trace = prep.Pass.trace }

let exec ?(seed = 0) ?disable ~engine ~timing ~graph ~bindings (plan : Plan.t) =
  exec_prepared ~seed ~engine ~timing ~graph ~bindings
    (Pass.prepare ?disable engine plan)

(* ---- steady-state iteration driver ----

   [exec] pays per-step bookkeeping (argument lists, timing closures) that
   is invisible for a single execution but IS the allocation profile of a
   trainer epoch loop or a profiling sweep. This driver hoists all of it:
   argument arrays are preallocated per step and input bindings resolved
   once, setup steps run once, and each iteration re-executes only the
   per-iteration steps after returning the previous iteration's buffers to
   the workspace arena — so with a workspace engine the loop body performs
   no per-step minor allocation beyond what the kernels themselves do. The
   subtree cache is {e not} consulted here: per-iteration steps recompute
   identical values by construction, so serving them from the cache would
   make the steady state it exists to measure meaningless. *)

let exec_iterations ?(seed = 0) ?disable ~engine ~timing ~graph ~bindings
    ~iterations (plan : Plan.t) =
  if iterations < 1 then invalid_arg "Executor.exec_iterations: iterations < 1";
  let prep = Pass.prepare ?disable engine plan in
  let pool = Engine.pool engine and ws = Engine.workspace engine in
  let obs = Engine.obs engine in
  let tr = obs.Obs.trace in
  let exec_span = bracket_span tr ~cat:"engine" "execute" in
  (match ws with Some w -> Workspace.reclaim w | None -> ());
  let ws_before = Option.map Workspace.stats ws in
  let orig_n = Granii_graph.Graph.n_nodes graph in
  let layout_span = bracket_span tr ~cat:"engine" "layout" in
  let lstate, graph, bindings =
    Pass.Layout.enter ~locality:prep.Pass.locality ~graph ~bindings
  in
  List.iter (fun (_, v) -> Pass.Layout.register lstate v) bindings;
  bracket_exit tr layout_span ~attrs:[ ("stage", "enter") ] ();
  let ctx = { Dispatch.pool; ws; localize = Pass.Layout.form_of lstate } in
  let steps = prep.Pass.steps in
  let n = Array.length steps in
  let slots : value option array = Array.make n None in
  let graph_token = Vsparse graph.Granii_graph.Graph.adj in
  let resolve name =
    if String.equal name "__graph__" then graph_token
    else
      match List.assoc_opt name bindings with
      | Some v -> v
      | None -> err "unbound input %s" name
  in
  let args_src =
    match prep.Pass.args with
    | Some srcs -> srcs
    | None -> Array.map (fun (s : Plan.step) -> Array.of_list s.Plan.args) steps
  in
  (* input operands never change across iterations: resolve them once; the
     placeholder in Computed positions is overwritten before first use *)
  let args_val =
    Array.map
      (fun src ->
        Array.map
          (function Plan.Input name -> resolve name | Plan.Computed _ -> graph_token)
          src)
      args_src
  in
  let refresh_args i =
    let src = args_src.(i) and dst = args_val.(i) in
    for j = 0 to Array.length src - 1 do
      match Array.unsafe_get src j with
      | Plan.Computed c -> (
          match slots.(c) with
          | Some v -> Array.unsafe_set dst j v
          | None -> err "step t%d used before being computed" c)
      | Plan.Input _ -> ()
    done;
    dst
  in
  let per_step_time = Array.make n 0. in
  let threads = Engine.threads engine in
  let exec_step (s : Plan.step) args =
    let sp = step_span_enter tr s in
    let v, t =
      match timing with
      | Measure ->
          let t0 = Timer.wall () in
          let v = Dispatch.exec ctx s.Plan.prim graph args in
          let t = Timer.wall () -. t0 in
          costmon_record ~engine ~threads s graph args v t;
          (v, t)
      | Simulate profile ->
          let v = Dispatch.exec ctx s.Plan.prim graph args in
          (v, analytic_time ~threads ~seed profile s graph args v)
    in
    step_span_exit tr sp ~threads ~ctx s args v t;
    step_observe obs s t;
    (v, t)
  in
  let is_iter =
    Array.map (fun (s : Plan.step) -> s.Plan.phase = Plan.Per_iteration) steps
  in
  let setup_time = ref 0. in
  Array.iteri
    (fun i (s : Plan.step) ->
      if not is_iter.(i) then begin
        let v, t = exec_step s (refresh_args i) in
        slots.(i) <- Some v;
        Pass.Layout.register lstate v;
        per_step_time.(i) <- t;
        setup_time := !setup_time +. t
      end)
    steps;
  (* arrays backing setup values must survive every iteration, even when a
     per-iteration step's value degenerates to sharing one of them *)
  let setup_backing =
    Array.to_list steps
    |> List.concat_map (fun (s : Plan.step) ->
           if is_iter.(s.Plan.idx) then []
           else
             match slots.(s.Plan.idx) with
             | Some v -> Dispatch.backing_arrays v
             | None -> [])
  in
  let release_iteration_slots () =
    for i = 0 to n - 1 do
      if is_iter.(i) then begin
        (match slots.(i) with
        | Some v ->
            List.iter
              (fun a ->
                if not (List.exists (fun sb -> sb == a) setup_backing) then
                  Workspace.give_back ws a)
              (Dispatch.backing_arrays v)
        | None -> ());
        slots.(i) <- None
      end
    done
  in
  let total_iter_time = ref 0. in
  for it = 1 to iterations do
    if it > 1 then release_iteration_slots ();
    let it_span =
      match tr with
      | None -> None
      | Some t ->
          let sp = Obs.Trace.enter t ~cat:"engine" "iteration" in
          Obs.Trace.add_attrs sp [ ("i", string_of_int it) ];
          Some sp
    in
    for i = 0 to n - 1 do
      if is_iter.(i) then begin
        let s = Array.unsafe_get steps i in
        let v, t = exec_step s (refresh_args i) in
        slots.(i) <- Some v;
        per_step_time.(i) <- t;
        total_iter_time := !total_iter_time +. t
      end
    done;
    bracket_exit tr it_span ()
  done;
  let output =
    match prep.Pass.plan.Plan.output with
    | Plan.Computed i -> (
        match slots.(i) with
        | Some v -> v
        | None -> err "plan output t%d missing" i)
    | Plan.Input name -> resolve name
  in
  let per_step =
    Array.to_list
      (Array.map
         (fun (s : Plan.step) ->
           (s.Plan.prim, s.Plan.phase, per_step_time.(s.Plan.idx)))
         steps)
  in
  let intermediates =
    if Engine.keep_intermediates engine then begin
      let acc = ref [] in
      for i = n - 1 downto 0 do
        match slots.(i) with Some v -> acc := (i, v) :: !acc | None -> ()
      done;
      !acc
    end
    else []
  in
  let exit_span = bracket_span tr ~cat:"engine" "layout" in
  let output, intermediates, layout_time =
    Pass.Layout.exit_ lstate ~n:orig_n output intermediates
  in
  bracket_exit tr exit_span ~attrs:[ ("stage", "exit") ] ();
  run_metrics obs ws ws_before;
  bracket_exit tr exec_span
    ~attrs:
      [ ("plan", prep.Pass.plan.Plan.name);
        ("iterations", string_of_int iterations) ]
    ();
  { output;
    setup_time = !setup_time;
    iteration_time = !total_iter_time /. float_of_int iterations;
    layout_time;
    per_step;
    intermediates;
    trace = prep.Pass.trace }

let estimate ?(seed = 0) ~profile ~env (plan : Plan.t) =
  let setup = ref 0. and iter = ref 0. in
  List.iter
    (fun (s : Plan.step) ->
      let t =
        List.fold_left
          (fun acc k -> acc +. K.time_noisy profile ~seed:(seed + s.Plan.idx) k)
          0.
          (Primitive.to_kernels env s.Plan.prim)
      in
      match s.Plan.phase with
      | Plan.Setup -> setup := !setup +. t
      | Plan.Per_iteration -> iter := !iter +. t)
    plan.Plan.steps;
  (!setup, !iter)

let total_time ~setup ~iteration ~iterations =
  setup +. (float_of_int iterations *. iteration)
