module Dense = Granii_tensor.Dense
module Vector = Granii_tensor.Vector
module Workspace = Granii_tensor.Workspace
module Csr = Granii_sparse.Csr
module Coo = Granii_sparse.Coo
module Spmm = Granii_sparse.Spmm
module Sddmm = Granii_sparse.Sddmm
module Sparse_ops = Granii_sparse.Sparse_ops
module Hybrid = Granii_sparse.Hybrid
module Reorder = Granii_graph.Reorder
module K = Granii_hw.Kernel_model

type value =
  | Vdense of Dense.t
  | Vsparse of Csr.t
  | Vdiag of Vector.t

type timing = Measure | Simulate of Granii_hw.Hw_profile.t

type report = {
  output : value;
  setup_time : float;
  iteration_time : float;
  layout_time : float;
  per_step : (Primitive.t * Plan.phase * float) list;
  intermediates : (int * value) list;
}

exception Execution_error of string

let err fmt = Format.kasprintf (fun s -> raise (Execution_error s)) fmt

let shape_of = function
  | Vdense d -> Dense.dims d
  | Vsparse s -> (s.Csr.n_rows, s.Csr.n_cols)
  | Vdiag v -> (Array.length v, Array.length v)

let pp_value ppf = function
  | Vdense d ->
      let r, c = Dense.dims d in
      Format.fprintf ppf "dense %dx%d" r c
  | Vsparse s -> Csr.pp ppf s
  | Vdiag v -> Format.fprintf ppf "diag n=%d" (Array.length v)

let dense = function Vdense d -> d | v -> err "expected dense, got %a" pp_value v
let sparse = function Vsparse s -> s | v -> err "expected sparse, got %a" pp_value v
let diag = function Vdiag d -> d | v -> err "expected diagonal, got %a" pp_value v

let diag_to_csr ?ws v =
  (* the diagonal's CSR structure is known in closed form: row i holds the
     single entry (i, i), so row_ptr is 0..n and col_idx the identity — no
     COO staging or sort needed *)
  let n = Array.length v in
  let row_ptr = Array.init (n + 1) (fun i -> i) in
  let col_idx = Array.init n (fun i -> i) in
  let values = Workspace.alloc_uninit ws n in
  Array.blit v 0 values 0 n;
  Csr.make ~n_rows:n ~n_cols:n ~row_ptr ~col_idx ~values:(Some values)

(* GAT's attention function: per stored edge (i, j),
   leaky_relu(a_src . feats_i + a_dst . feats_j). *)
let edge_score ?pool ?ws mask feats a_src a_dst =
  let s = Dense.matmul ?pool ?ws feats a_src and t = Dense.matmul ?pool ?ws feats a_dst in
  let count = Csr.nnz mask in
  let out = Workspace.alloc_uninit ws count in
  (* index the score columns directly ([s] and [t] are n x 1): a [Dense.get]
     call per edge would box its float result in the inner loop *)
  let sd = s.Dense.data and td = t.Dense.data in
  Granii_tensor.Parallel.rows_weighted ?pool ~prefix:mask.Csr.row_ptr (fun lo hi ->
      for i = lo to hi - 1 do
        let si = Array.unsafe_get sd i in
        for p = mask.Csr.row_ptr.(i) to mask.Csr.row_ptr.(i + 1) - 1 do
          let x = si +. Array.unsafe_get td (Array.unsafe_get mask.Csr.col_idx p) in
          out.(p) <- (if x > 0. then x else 0.2 *. x)
        done
      done);
  Workspace.give_back ws s.Dense.data;
  Workspace.give_back ws t.Dense.data;
  Csr.with_values mask out

let apply_nonlinear ?pool ?ws kind d =
  match kind with
  | Matrix_ir.Relu -> Dense.relu ?pool ?ws d
  | Matrix_ir.Leaky_relu -> Dense.leaky_relu ?pool ?ws d
  | Matrix_ir.Sigmoid -> Dense.sigmoid ?pool ?ws d
  | Matrix_ir.Log_softmax -> Dense.log_softmax_rows ?pool ?ws d
  | Matrix_ir.Edge_softmax -> err "edge_softmax reached dense map"

(* Dispatch on argument arrays so the steady-state loop can reuse one
   preallocated array per step instead of rebuilding argument lists.
   [?hybrid] is the locality engine's format lookup: when it returns a
   hybrid form for a sparse operand (iteration-stable matrices only — the
   run drivers register bindings and setup outputs), the g-kernels run from
   the slab+tail layout; the results are bitwise identical to the Csr
   kernels, so the switch is invisible to everything downstream. *)
let exec_prim ?pool ?ws ?hybrid (prim : Primitive.t) (graph : Granii_graph.Graph.t)
    (args : value array) =
  let hybrid_of m = match hybrid with None -> None | Some f -> f m in
  match (prim, args) with
  | Primitive.Gemm _, [| a; b |] -> Vdense (Dense.matmul ?pool ?ws (dense a) (dense b))
  | Primitive.Spmm _, [| a; b |] -> (
      let m = sparse a in
      match hybrid_of m with
      | Some h -> Vdense (Hybrid.spmm ?pool ?ws h (dense b))
      | None -> Vdense (Spmm.run ?pool ?ws m (dense b)))
  | Primitive.Dense_sparse_mm _, [| a; b |] ->
      Vdense (Spmm.run_transposed ?pool ?ws (dense a) (sparse b))
  | Primitive.Sddmm_rank1, [| dl; a; dr |] -> (
      let m = sparse a in
      match hybrid_of m with
      | Some h -> Vsparse (Hybrid.rank1 ?pool ?ws h (diag dl) (diag dr))
      | None -> Vsparse (Sddmm.rank1 ?pool ?ws m (diag dl) (diag dr)))
  | Primitive.Diag_scale { side = `Left }, [| d; a |] ->
      Vsparse (Sparse_ops.scale_rows ?pool ?ws (diag d) (sparse a))
  | Primitive.Diag_scale { side = `Right }, [| a; d |] ->
      Vsparse (Sparse_ops.scale_cols ?pool ?ws (sparse a) (diag d))
  | Primitive.Row_broadcast _, [| d; x |] ->
      Vdense (Dense.row_broadcast ?pool ?ws (diag d) (dense x))
  | Primitive.Col_broadcast _, [| x; d |] ->
      Vdense (Dense.col_broadcast ?pool ?ws (dense x) (diag d))
  | Primitive.Diag_combine, [| a; b |] ->
      let da = diag a and db = diag b in
      let n = Array.length da in
      if Array.length db <> n then err "diag_combine: dimension mismatch";
      let out = Workspace.alloc_uninit ws n in
      for i = 0 to n - 1 do
        out.(i) <- da.(i) *. db.(i)
      done;
      Vdiag out
  | Primitive.Sparse_add _, parts ->
      let as_csr = function
        | Vdiag d -> diag_to_csr ?ws d
        | Vsparse s -> s
        | Vdense _ -> err "sparse_add over a dense operand"
      in
      (match Array.length parts with
      | 0 -> err "sparse_add with no operands"
      | len ->
          let acc = ref (as_csr parts.(0)) in
          for i = 1 to len - 1 do
            acc := Sparse_ops.add !acc (as_csr parts.(i))
          done;
          Vsparse !acc)
  | Primitive.Dense_add _, parts -> (
      match Array.length parts with
      | 0 -> err "dense_add with no operands"
      | len ->
          let acc = ref (dense parts.(0)) in
          for i = 1 to len - 1 do
            let next = Dense.add ?pool ?ws !acc (dense parts.(i)) in
            (* fold temporaries (never the first operand, which a caller may
               still hold) go straight back to the arena *)
            if i > 1 then Workspace.give_back ws !acc.Dense.data;
            acc := next
          done;
          Vdense !acc)
  | Primitive.Edge_score _, [| mask; feats; a_src; a_dst |] ->
      Vsparse (edge_score ?pool ?ws (sparse mask) (dense feats) (dense a_src) (dense a_dst))
  | Primitive.Edge_softmax, [| a |] -> Vsparse (Sparse_ops.row_softmax ?pool ?ws (sparse a))
  | Primitive.Dense_map { kind; _ }, [| a |] ->
      Vdense (apply_nonlinear ?pool ?ws kind (dense a))
  | Primitive.Degree { power; _ }, [| _graph_token |] -> (
      match power with
      | Primitive.Inv_sqrt -> Vdiag (Granii_graph.Graph.norm_inv_sqrt graph)
      | Primitive.Inv ->
          Vdiag
            (Granii_tensor.Vector.pow (-1.)
               (Granii_graph.Graph.degrees_tilde graph)))
  | prim, args ->
      err "primitive %a applied to %d arguments" Primitive.pp prim (Array.length args)

let apply ?pool ?ws prim graph args = exec_prim ?pool ?ws prim graph (Array.of_list args)

(* Kernels of a step, sized from the actual operand values (so sampling or
   precomputed sparse intermediates are charged their true nnz). *)
let kernels_of_step (prim : Primitive.t) (graph : Granii_graph.Graph.t)
    (args : value array) result =
  let nnz_of v = Csr.nnz (sparse v) in
  let dense_dims v = Dense.dims (dense v) in
  match (prim, args) with
  | Primitive.Gemm _, [| a; b |] ->
      let m, k = dense_dims a and _, n = dense_dims b in
      [ K.Gemm { m; k; n } ]
  | Primitive.Spmm { weighted; _ }, [| a; b |] ->
      let rows = (sparse a).Csr.n_rows and _, k = dense_dims b in
      [ K.Spmm { rows; nnz = nnz_of a; k; weighted } ]
  | Primitive.Dense_sparse_mm _, [| a; b |] ->
      let rows, k = dense_dims a in
      [ K.Dense_sparse_mm { rows; nnz = nnz_of b; cols = (sparse b).Csr.n_cols; k } ]
  | Primitive.Sddmm_rank1, [| _; a; _ |] -> [ K.Sddmm { nnz = nnz_of a; k = 1 } ]
  | Primitive.Diag_scale _, [| a; b |] ->
      let nnz = match a with Vsparse s -> Csr.nnz s | _ -> nnz_of b in
      [ K.Diag_scale_sparse { nnz } ]
  | Primitive.Row_broadcast _, [| _; x |] ->
      let n, k = dense_dims x in
      [ K.Row_broadcast { n; k } ]
  | Primitive.Col_broadcast _, [| x; _ |] ->
      let n, k = dense_dims x in
      [ K.Col_broadcast { n; k } ]
  | Primitive.Diag_combine, [| a; _ |] -> [ K.Diag_combine { n = Array.length (diag a) } ]
  | Primitive.Sparse_add _, _ ->
      let nnz = match result with Vsparse s -> Csr.nnz s | _ -> 0 in
      [ K.Diag_scale_sparse { nnz } ]
  | Primitive.Dense_add _, parts when Array.length parts > 0 ->
      let n, k = dense_dims parts.(0) in
      [ K.Elementwise { n; k; flops_per_elt = float_of_int (Array.length parts - 1) } ]
  | Primitive.Edge_score _, [| mask; feats; _; _ |] ->
      let n, k = dense_dims feats in
      [ K.Gemm { m = n; k; n = 1 };
        K.Gemm { m = n; k; n = 1 };
        K.Sddmm { nnz = nnz_of mask; k = 1 } ]
  | Primitive.Edge_softmax, [| a |] -> [ K.Edge_softmax { nnz = nnz_of a } ]
  | Primitive.Dense_map { kind; _ }, [| a |] ->
      let n, k = dense_dims a in
      let flops_per_elt =
        match kind with
        | Matrix_ir.Relu -> 1.
        | Matrix_ir.Leaky_relu -> 2.
        | Matrix_ir.Sigmoid -> 10.
        | Matrix_ir.Log_softmax | Matrix_ir.Edge_softmax -> 12.
      in
      [ K.Elementwise { n; k; flops_per_elt } ]
  | Primitive.Degree { binned; _ }, _ ->
      let n = Granii_graph.Graph.n_nodes graph in
      let nnz = Granii_graph.Graph.n_edges graph + n in
      if binned then
        [ K.Degree_binning
            { n; nnz; avg_collisions = float_of_int nnz /. float_of_int (max n 1) } ]
      else [ K.Degree_rowptr { n } ]
  | prim, args ->
      err "kernels: primitive %a applied to %d arguments" Primitive.pp prim
        (Array.length args)

(* ---- shared-subtree execution cache ----

   Keyed by [Plan.step.skey], the association tree's structural CSE key, so
   a value computed while executing one candidate plan is recognized by
   every other candidate of the same model that contains the same subtree —
   the GAT reuse-vs-recompute structure. One cache is only valid for one
   (graph, bindings) pair; the caller owns that contract. *)

type cache = {
  tbl : (string, value * float) Hashtbl.t;
  mutable cache_hits : int;
  mutable cache_misses : int;
}

let cache_create () = { tbl = Hashtbl.create 64; cache_hits = 0; cache_misses = 0 }
let cache_stats c = (c.cache_hits, c.cache_misses)

(* Backing float arrays of a value — what the workspace pools. CSR structure
   arrays are ints and shared with the mask/graph, so only values move. *)
let backing_arrays = function
  | Vdense d -> [ d.Dense.data ]
  | Vsparse s -> ( match s.Csr.values with Some v -> [ v ] | None -> [] )
  | Vdiag v -> [ v ]

let shares_backing a v =
  List.exists (fun b -> b == a) (backing_arrays v)

let sim_threads pool =
  match pool with None -> 1 | Some p -> Granii_tensor.Parallel.threads p

(* ---- locality boundary ----

   Under a non-default [Locality.config] the run is bracketed: graph and
   bindings are permuted on entry, the plan executes entirely in the new id
   space (optionally from the hybrid format), and outputs are
   inverse-permuted on exit. Values are classified by shape — the rule the
   GNN binding convention establishes: an [n x _] dense matrix or length-[n]
   diagonal is node-indexed (permute rows), an [n x n] sparse matrix is
   graph-shaped (permute symmetrically), everything else (weight matrices)
   is id-free. All of it is timed into [layout_time], separate from
   setup/iteration so the bench can report amortization honestly. *)

let permute_value r n = function
  | Vdense d when d.Dense.rows = n -> Vdense (Reorder.permute_dense_rows r d)
  | Vsparse s when s.Csr.n_rows = n && s.Csr.n_cols = n ->
      Vsparse (Reorder.permute_csr r s)
  | Vdiag v when Array.length v = n -> Vdiag (Reorder.permute_vector r v)
  | v -> v

let inverse_value r inv_r n = function
  | Vdense d when d.Dense.rows = n -> Vdense (Reorder.inverse_dense_rows r d)
  | Vsparse s when s.Csr.n_rows = n && s.Csr.n_cols = n ->
      Vsparse (Reorder.permute_csr inv_r s)
  | Vdiag v when Array.length v = n -> Vdiag (Reorder.inverse_vector r v)
  | v -> v

(* Mutable locality state for one run: the computed ordering (if any) and the
   memo of hybrid conversions, keyed by physical identity — only
   iteration-stable matrices (bindings, setup-step outputs) are registered,
   so per-iteration-fresh sparse values keep the Csr path and never pay a
   per-iteration conversion. *)
type locality_state = {
  config : Locality.config;
  reorder : Reorder.t option;
  inverse : Reorder.t option; (* the inverse ordering, for Csr outputs *)
  mutable hybrids : (Csr.t * Hybrid.t) list;
  mutable layout : float;
}

let locality_enter ~locality ~graph ~bindings =
  if Locality.is_default locality then
    (None, graph, bindings)
  else begin
    let n = Granii_graph.Graph.n_nodes graph in
    let (st, graph', bindings'), t =
      Granii_hw.Timer.measure (fun () ->
          match locality.Locality.strategy with
          | Granii_graph.Reorder.Identity ->
              ( { config = locality;
                  reorder = None;
                  inverse = None;
                  hybrids = [];
                  layout = 0. },
                graph,
                bindings )
          | strategy ->
              let r =
                Reorder.compute strategy graph.Granii_graph.Graph.adj
              in
              let inv = Reorder.of_perm ~strategy r.Reorder.inv in
              ( { config = locality;
                  reorder = Some r;
                  inverse = Some inv;
                  hybrids = [];
                  layout = 0. },
                Reorder.apply_graph r graph,
                List.map (fun (name, v) -> (name, permute_value r n v)) bindings
              ))
    in
    st.layout <- t;
    (Some st, graph', bindings')
  end

(* Register an iteration-stable sparse value for hybrid execution; the
   conversion cost is layout work, not kernel time. *)
let locality_register st v =
  match st with
  | None -> ()
  | Some st ->
      if st.config.Locality.format = Locality.Hybrid then begin
        match v with
        | Vsparse s
          when s.Csr.n_rows = s.Csr.n_cols
               && not (List.exists (fun (m, _) -> m == s) st.hybrids) ->
            let h, t = Granii_hw.Timer.measure (fun () -> Hybrid.of_csr s) in
            st.layout <- st.layout +. t;
            st.hybrids <- (s, h) :: st.hybrids
        | _ -> ()
      end

let locality_lookup st =
  match st with
  | None -> None
  | Some st ->
      if st.config.Locality.format = Locality.Hybrid then
        Some
          (fun m ->
            List.find_opt (fun (m', _) -> m' == m) st.hybrids
            |> Option.map snd)
      else None

let locality_exit st ~n output intermediates =
  match st with
  | None -> (output, intermediates, 0.)
  | Some st -> (
      match (st.reorder, st.inverse) with
      | Some r, Some inv_r ->
          let (o, ints), t =
            Granii_hw.Timer.measure (fun () ->
                ( inverse_value r inv_r n output,
                  List.map (fun (i, v) -> (i, inverse_value r inv_r n v)) intermediates ))
          in
          st.layout <- st.layout +. t;
          (o, ints, st.layout)
      | _ -> (output, intermediates, st.layout))

let run ?(seed = 0) ?pool ?workspace ?cache ?(keep_intermediates = true)
    ?(locality = Locality.default) ~timing ~graph ~bindings (plan : Plan.t) =
  (match (workspace, cache) with
  | Some _, Some _ ->
      invalid_arg
        "Executor.run: ?workspace and ?cache cannot be combined (cached values \
         would alias arena buffers that the next reclaim recycles)"
  | _ -> ());
  (match cache with
  | Some _ when not (Locality.is_default locality) ->
      invalid_arg
        "Executor.run: ?cache and a non-default ?locality cannot be combined \
         (cached values live in a different vertex id space)"
  | _ -> ());
  let orig_n = Granii_graph.Graph.n_nodes graph in
  let lstate, graph, bindings = locality_enter ~locality ~graph ~bindings in
  List.iter (fun (_, v) -> locality_register lstate v) bindings;
  let hybrid = locality_lookup lstate in
  let ws = workspace in
  (match ws with Some w -> Workspace.reclaim w | None -> ());
  let steps = Array.of_list plan.Plan.steps in
  let n = Array.length steps in
  let slots : value option array = Array.make n None in
  let lookup = function
    | Plan.Computed i -> (
        match slots.(i) with
        | Some v -> v
        | None -> err "step t%d used before being computed" i)
    | Plan.Input "__graph__" ->
        (* Token argument of Degree steps; its value is never inspected. *)
        Vsparse graph.Granii_graph.Graph.adj
    | Plan.Input name -> (
        match List.assoc_opt name bindings with
        | Some v -> v
        | None -> err "unbound input %s" name)
  in
  (* Within-run recycling: only without [keep_intermediates] (autodiff needs
     every intermediate alive until the backward pass). *)
  let live =
    if (not keep_intermediates) && ws <> None then Some (Liveness.analyze plan)
    else None
  in
  let free_dead_after i =
    match live with
    | None -> ()
    | Some lv ->
        List.iter
          (fun d ->
            match slots.(d) with
            | None -> ()
            | Some v ->
                List.iter
                  (fun a ->
                    (* a fold that degenerates to the identity can make two
                       slots (or a slot and a binding) share one backing
                       array — never recycle an array a live slot still
                       reads. Bindings are safe automatically: the workspace
                       only takes back buffers it issued. *)
                    let shared = ref false in
                    Array.iteri
                      (fun j s ->
                        match s with
                        | Some sv when j <> d && shares_backing a sv -> shared := true
                        | _ -> ())
                      slots;
                    if not !shared then Workspace.give_back ws a)
                  (backing_arrays v);
                slots.(d) <- None)
          (Liveness.dead_after lv i)
  in
  let setup_time = ref 0. and iteration_time = ref 0. in
  let per_step = ref [] in
  Array.iter
    (fun (s : Plan.step) ->
      let args = Array.of_list (List.map lookup s.Plan.args) in
      let value, elapsed =
        let cached = match cache with None -> None | Some c -> Hashtbl.find_opt c.tbl s.Plan.skey in
        match (cached, timing) with
        | Some (v, measured), Measure ->
            (match cache with Some c -> c.cache_hits <- c.cache_hits + 1 | None -> ());
            (* the work is genuinely skipped; charge what it cost when it ran *)
            (v, measured)
        | Some (v, _), Simulate profile ->
            (match cache with Some c -> c.cache_hits <- c.cache_hits + 1 | None -> ());
            (* simulated jitter is seeded per step index, which differs
               between plans — recompute the analytic time for THIS step so
               a cache hit is timing-transparent in Simulate mode *)
            let kernels = kernels_of_step s.Plan.prim graph args v in
            let t =
              List.fold_left
                (fun acc k ->
                  acc
                  +. K.time_noisy ~threads:(sim_threads pool) profile
                       ~seed:(seed + s.Plan.idx) k)
                0. kernels
            in
            (v, t)
        | None, Measure ->
            let v, t =
              Granii_hw.Timer.measure (fun () ->
                  exec_prim ?pool ?ws ?hybrid s.Plan.prim graph args)
            in
            (match cache with
            | Some c ->
                c.cache_misses <- c.cache_misses + 1;
                Hashtbl.replace c.tbl s.Plan.skey (v, t)
            | None -> ());
            (v, t)
        | None, Simulate profile ->
            let v = exec_prim ?pool ?ws ?hybrid s.Plan.prim graph args in
            let kernels = kernels_of_step s.Plan.prim graph args v in
            let t =
              List.fold_left
                (fun acc k ->
                  acc
                  +. K.time_noisy ~threads:(sim_threads pool) profile
                       ~seed:(seed + s.Plan.idx) k)
                0. kernels
            in
            (match cache with
            | Some c ->
                c.cache_misses <- c.cache_misses + 1;
                Hashtbl.replace c.tbl s.Plan.skey (v, t)
            | None -> ());
            (v, t)
      in
      slots.(s.Plan.idx) <- Some value;
      (* setup outputs are iteration-stable: candidates for the hybrid form *)
      if s.Plan.phase = Plan.Setup then locality_register lstate value;
      (match s.Plan.phase with
      | Plan.Setup -> setup_time := !setup_time +. elapsed
      | Plan.Per_iteration -> iteration_time := !iteration_time +. elapsed);
      per_step := (s.Plan.prim, s.Plan.phase, elapsed) :: !per_step;
      free_dead_after s.Plan.idx)
    steps;
  let output = lookup plan.Plan.output in
  let intermediates =
    if keep_intermediates then begin
      let acc = ref [] in
      for i = n - 1 downto 0 do
        match slots.(i) with Some v -> acc := (i, v) :: !acc | None -> ()
      done;
      !acc
    end
    else []
  in
  let output, intermediates, layout_time =
    locality_exit lstate ~n:orig_n output intermediates
  in
  { output;
    setup_time = !setup_time;
    iteration_time = !iteration_time;
    layout_time;
    per_step = List.rev !per_step;
    intermediates }

(* ---- steady-state iteration driver ----

   [run] pays per-step bookkeeping (argument lists, timing closures) that is
   invisible for a single execution but IS the allocation profile of a
   trainer epoch loop or a profiling sweep. This driver hoists all of it:
   argument arrays are preallocated per step and input bindings resolved
   once, setup steps run once, and each iteration re-executes only the
   per-iteration steps after returning the previous iteration's buffers to
   the workspace arena — so with [?workspace] the loop body performs no
   per-step minor allocation beyond what the kernels themselves do. *)

let run_iterations ?(seed = 0) ?pool ?workspace ?(keep_intermediates = true)
    ?(locality = Locality.default) ~timing ~graph ~bindings ~iterations
    (plan : Plan.t) =
  if iterations < 1 then invalid_arg "Executor.run_iterations: iterations < 1";
  let ws = workspace in
  (match ws with Some w -> Workspace.reclaim w | None -> ());
  let orig_n = Granii_graph.Graph.n_nodes graph in
  let lstate, graph, bindings = locality_enter ~locality ~graph ~bindings in
  List.iter (fun (_, v) -> locality_register lstate v) bindings;
  let hybrid = locality_lookup lstate in
  let steps = Array.of_list plan.Plan.steps in
  let n = Array.length steps in
  let slots : value option array = Array.make n None in
  let graph_token = Vsparse graph.Granii_graph.Graph.adj in
  let resolve name =
    if String.equal name "__graph__" then graph_token
    else
      match List.assoc_opt name bindings with
      | Some v -> v
      | None -> err "unbound input %s" name
  in
  let args_src = Array.map (fun (s : Plan.step) -> Array.of_list s.Plan.args) steps in
  (* input operands never change across iterations: resolve them once; the
     placeholder in Computed positions is overwritten before first use *)
  let args_val =
    Array.map
      (fun src ->
        Array.map (function Plan.Input name -> resolve name | Plan.Computed _ -> graph_token) src)
      args_src
  in
  let refresh_args i =
    let src = args_src.(i) and dst = args_val.(i) in
    for j = 0 to Array.length src - 1 do
      match Array.unsafe_get src j with
      | Plan.Computed c -> (
          match slots.(c) with
          | Some v -> Array.unsafe_set dst j v
          | None -> err "step t%d used before being computed" c)
      | Plan.Input _ -> ()
    done;
    dst
  in
  let per_step_time = Array.make n 0. in
  let threads = sim_threads pool in
  let exec_step (s : Plan.step) args =
    match timing with
    | Measure ->
        let t0 = Granii_hw.Timer.now () in
        let v = exec_prim ?pool ?ws ?hybrid s.Plan.prim graph args in
        (v, Granii_hw.Timer.now () -. t0)
    | Simulate profile ->
        let v = exec_prim ?pool ?ws ?hybrid s.Plan.prim graph args in
        let t =
          List.fold_left
            (fun acc k -> acc +. K.time_noisy ~threads profile ~seed:(seed + s.Plan.idx) k)
            0.
            (kernels_of_step s.Plan.prim graph args v)
        in
        (v, t)
  in
  let is_iter = Array.map (fun (s : Plan.step) -> s.Plan.phase = Plan.Per_iteration) steps in
  let setup_time = ref 0. in
  Array.iteri
    (fun i (s : Plan.step) ->
      if not is_iter.(i) then begin
        let v, t = exec_step s (refresh_args i) in
        slots.(i) <- Some v;
        locality_register lstate v;
        per_step_time.(i) <- t;
        setup_time := !setup_time +. t
      end)
    steps;
  (* arrays backing setup values must survive every iteration, even when a
     per-iteration step's value degenerates to sharing one of them *)
  let setup_backing =
    Array.to_list steps
    |> List.concat_map (fun (s : Plan.step) ->
           if is_iter.(s.Plan.idx) then []
           else match slots.(s.Plan.idx) with Some v -> backing_arrays v | None -> [])
  in
  let release_iteration_slots () =
    for i = 0 to n - 1 do
      if is_iter.(i) then begin
        (match slots.(i) with
        | Some v ->
            List.iter
              (fun a ->
                if not (List.exists (fun sb -> sb == a) setup_backing) then
                  Workspace.give_back ws a)
              (backing_arrays v)
        | None -> ());
        slots.(i) <- None
      end
    done
  in
  let total_iter_time = ref 0. in
  for it = 1 to iterations do
    if it > 1 then release_iteration_slots ();
    for i = 0 to n - 1 do
      if is_iter.(i) then begin
        let s = Array.unsafe_get steps i in
        let v, t = exec_step s (refresh_args i) in
        slots.(i) <- Some v;
        per_step_time.(i) <- t;
        total_iter_time := !total_iter_time +. t
      end
    done
  done;
  let output =
    match plan.Plan.output with
    | Plan.Computed i -> (
        match slots.(i) with
        | Some v -> v
        | None -> err "plan output t%d missing" i)
    | Plan.Input name -> resolve name
  in
  let per_step =
    Array.to_list (Array.map (fun (s : Plan.step) -> (s.Plan.prim, s.Plan.phase, per_step_time.(s.Plan.idx))) steps)
  in
  let intermediates =
    if keep_intermediates then begin
      let acc = ref [] in
      for i = n - 1 downto 0 do
        match slots.(i) with Some v -> acc := (i, v) :: !acc | None -> ()
      done;
      !acc
    end
    else []
  in
  let output, intermediates, layout_time =
    locality_exit lstate ~n:orig_n output intermediates
  in
  { output;
    setup_time = !setup_time;
    iteration_time = !total_iter_time /. float_of_int iterations;
    layout_time;
    per_step;
    intermediates }

let estimate ?(seed = 0) ~profile ~env (plan : Plan.t) =
  let setup = ref 0. and iter = ref 0. in
  List.iter
    (fun (s : Plan.step) ->
      let t =
        List.fold_left
          (fun acc k -> acc +. K.time_noisy profile ~seed:(seed + s.Plan.idx) k)
          0.
          (Primitive.to_kernels env s.Plan.prim)
      in
      match s.Plan.phase with
      | Plan.Setup -> setup := !setup +. t
      | Plan.Per_iteration -> iter := !iter +. t)
    plan.Plan.steps;
  (!setup, !iter)

let total_time ~setup ~iteration ~iterations =
  setup +. (float_of_int iterations *. iteration)
