(** Plan execution, with real or simulated timing.

    The executor is the thin top of the execution stack
    ({!Dispatch} < {!Engine} < {!Pass} < [Executor]): {!exec} prepares the
    plan through the pass pipeline and then runs a dispatch loop that
    resolves arguments, routes each step through the kernel registry and
    accumulates times. Everything configurable — pool, workspace arena,
    subtree cache, locality layout, liveness policy — lives in the
    {!Engine.t} the caller constructs once.

    Every step is {e always} executed for real (so numerical results can be
    cross-checked between candidates); what differs is the clock:

    - [Measure]: host wall-clock per step — the "real CPU" mode;
    - [Simulate profile]: each step is charged the analytic
      {!Granii_hw.Kernel_model} time for its instantiated kernels on the
      given hardware profile, with deterministic jitter (at the engine's
      thread count). This is the substitute for the paper's A100/H100
      testbeds (see DESIGN.md).

    [estimate] skips execution entirely and just sums predicted kernel times
    — used by the large parameter sweeps of the benches.

    {2 Memory model}

    With a workspace engine, every kernel output comes from a
    {!Granii_tensor.Workspace.t} arena. {!exec} reclaims the arena on entry,
    so all values produced by the previous run on the same workspace are
    invalidated by the next one — copy anything you keep. Outputs are
    bitwise identical to the allocating path. With
    [keep_intermediates = false], the {!Pass.liveness} pass additionally
    recycles each intermediate's buffer the moment its last reader retires
    (the default keeps them alive — {!Granii_gnn.Autodiff} reads every
    intermediate in its backward pass).

    With a cache engine, steps whose {!Plan.step.skey} was already executed
    are served from the shared-subtree cache instead of re-executed, so a
    selection or profiling sweep executes each common subexpression once per
    input rather than once per candidate plan. The cache is fingerprinted
    against the first graph it runs on and raises
    [Engine.Error (Cache_graph_mismatch _)] on any other; keeping the
    bindings fixed remains the caller's contract. Workspace and cache
    {e can} be combined (entries are epoch-pinned: copied out of the arena
    on insert) — except under [keep_intermediates = false], which
    {!Engine.create} rejects as {!Engine.Workspace_cache_discard}.

    {2 Locality}

    With a non-default {!Locality.config}, the executor runs the plan under
    a graph layout chosen by the cost model: the graph (and every
    n-row/n-sized binding) is symmetrically permuted by the configured
    {!Granii_graph.Reorder} strategy before execution, square sparse
    operands are converted to the {!Granii_sparse.Hybrid} format when the
    configured format asks for it, and the output plus all intermediates are
    inverse-permuted back to the original vertex order before the report is
    built. The permutation is {e stable} (each row keeps its entry order),
    so for structure-preserving plans (every GCN/GAT composition) the
    returned values are bitwise identical to an unpermuted run; plans that
    re-sort sparse structure (e.g. GIN's [Sparse_add]) may differ in entry
    order but not in semantics. Bindings are classified by shape: n×_ dense
    values are row-permuted, n×n sparse values symmetrically permuted,
    length-n diagonals permuted, everything else passed through — a k×k
    weight matrix is only at risk when k = n, which the compositions never
    produce. Layout work (reordering, hybrid conversion, inverse
    permutation) is timed into [layout_time], never into setup or iteration
    time. Hybrid conversion is memoized per physical value and applied to
    bindings and setup-phase outputs only; per-iteration sparse values fall
    back to CSR. *)

type value = Dispatch.value =
  | Vdense of Granii_tensor.Dense.t
  | Vsparse of Granii_sparse.Csr.t
  | Vdiag of Granii_tensor.Vector.t

type timing = Measure | Simulate of Granii_hw.Hw_profile.t

type report = {
  output : value;
  setup_time : float;
  iteration_time : float;
  layout_time : float;
      (** time spent on locality work: graph reordering, binding
          permutation, hybrid-format conversion and the final inverse
          permutation; [0.] under {!Locality.default} *)
  per_step : (Primitive.t * Plan.phase * float) list;
  intermediates : (int * value) list;
      (** every step's output, by step index — consumed by the reverse pass
          of {!Granii_gnn.Autodiff}; empty when run with
          [keep_intermediates = false] *)
  trace : string list;
      (** names of the {!Pass} pipeline passes that prepared this run, in
          application order *)
}

exception Execution_error of string
(** Re-exported {!Dispatch.Execution_error}. *)

val apply :
  ?pool:Granii_tensor.Parallel.t -> ?ws:Granii_tensor.Workspace.t ->
  Primitive.t -> Granii_graph.Graph.t -> value list -> value
(** Execute one primitive against concrete operand values — the kernel
    dispatch used by {!exec}, exposed so measured profiling
    ({!Profiling.collect_measured}) can time individual primitives. Raises
    {!Execution_error} on an argument-kind mismatch. With [?pool], kernels
    run on the multicore engine ({!Granii_hw.Domain_pool}); with [?ws],
    outputs are drawn from the workspace arena. *)

val exec :
  ?seed:int -> ?disable:string list -> engine:Engine.t -> timing:timing ->
  graph:Granii_graph.Graph.t ->
  bindings:(string * value) list -> Plan.t -> report
(** Executes the plan once under the engine's configuration. Leaf names are
    resolved in [bindings]; the graph's {m \tilde A} and normalization
    vector are available to [Degree] steps. [disable] skips the named
    {!Pass} pipeline passes (ablation/debugging). Raises
    {!Execution_error} on an unbound input or an argument-kind mismatch
    (which would indicate an enumeration bug), and {!Engine.Error} on a
    cache/graph fingerprint mismatch. Bindings must not be backed by
    buffers issued from the engine's own workspace. *)

val exec_iterations :
  ?seed:int -> ?disable:string list -> engine:Engine.t -> timing:timing ->
  graph:Granii_graph.Graph.t ->
  bindings:(string * value) list -> iterations:int -> Plan.t -> report
(** Steady-state driver: setup steps run once, per-iteration steps run
    [iterations] times with fixed bindings, re-using preallocated argument
    arrays and (with a workspace engine) re-using the previous iteration's
    buffers — the loop the trainer, profiler and selection micro-benchmarks
    actually sit in. [iteration_time] is the {e mean} per-iteration time;
    [per_step] and [intermediates] reflect the last iteration. The
    engine's subtree cache is {e not} consulted (per-iteration steps
    recompute identical values by construction, so cache hits would fake
    the steady state this driver measures). Raises [Invalid_argument] when
    [iterations < 1]. *)

(** {2 Analytic estimation} *)

val estimate :
  ?seed:int -> profile:Granii_hw.Hw_profile.t -> env:Dim.env -> Plan.t ->
  float * float
(** [(setup_time, iteration_time)] predicted analytically from symbolic
    primitive shapes — no execution, no bindings. *)

val total_time : setup:float -> iteration:float -> iterations:int -> float
(** [setup + iterations * iteration]: the quantity compositions compete on
    (the paper evaluates at 100 iterations). *)

val shape_of : value -> int * int

val pp_value : Format.formatter -> value -> unit
