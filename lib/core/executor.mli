(** Plan execution, with real or simulated timing.

    Every step is {e always} executed for real (so numerical results can be
    cross-checked between candidates); what differs is the clock:

    - [Measure]: host wall-clock per step — the "real CPU" mode;
    - [Simulate profile]: each step is charged the analytic
      {!Granii_hw.Kernel_model} time for its instantiated kernels on the
      given hardware profile, with deterministic jitter (at the pool's
      thread count when a [?pool] is given). This is the substitute for the
      paper's A100/H100 testbeds (see DESIGN.md).

    [estimate] skips execution entirely and just sums predicted kernel times
    — used by the large parameter sweeps of the benches.

    {2 Memory model}

    With [?workspace], every kernel output comes from a
    {!Granii_tensor.Workspace.t} arena. {!run} reclaims the arena on entry,
    so all values produced by the previous run on the same workspace are
    invalidated by the next one — copy anything you keep. Outputs are
    bitwise identical to the allocating path. With
    [keep_intermediates:false], a {!Liveness} pass additionally recycles
    each intermediate's buffer the moment its last reader retires (the
    default keeps them alive — {!Granii_gnn.Autodiff} reads every
    intermediate in its backward pass).

    With [?cache], steps whose {!Plan.step.skey} was already executed are
    served from the shared-subtree cache instead of re-executed, so a
    selection or profiling sweep executes each common subexpression once per
    input rather than once per candidate plan. A cache is only valid for one
    (graph, bindings) pair. [?workspace] and [?cache] cannot be combined:
    cached values would alias arena buffers that the next reclaim recycles.

    {2 Locality}

    With [?locality] (a non-default {!Locality.config}), the executor runs
    the plan under a graph layout chosen by the cost model: the graph (and
    every n-row/n-sized binding) is symmetrically permuted by the configured
    {!Granii_graph.Reorder} strategy before execution, square sparse
    operands are converted to the {!Granii_sparse.Hybrid} format when the
    configured format asks for it, and the output plus all intermediates are
    inverse-permuted back to the original vertex order before the report is
    built. The permutation is {e stable} (each row keeps its entry order),
    so for structure-preserving plans (every GCN/GAT composition) the
    returned values are bitwise identical to an unpermuted run; plans that
    re-sort sparse structure (e.g. GIN's [Sparse_add]) may differ in entry
    order but not in semantics. Bindings are classified by shape: n×_ dense
    values are row-permuted, n×n sparse values symmetrically permuted,
    length-n diagonals permuted, everything else passed through — a k×k
    weight matrix is only at risk when k = n, which the compositions never
    produce. Layout work (reordering, hybrid conversion, inverse
    permutation) is timed into [layout_time], never into setup or iteration
    time. Hybrid conversion is memoized per physical value and applied to
    bindings and setup-phase outputs only; per-iteration sparse values fall
    back to CSR. [?cache] cannot be combined with a non-default [?locality]
    (cached values live in the permuted id space of their first run). *)

type value =
  | Vdense of Granii_tensor.Dense.t
  | Vsparse of Granii_sparse.Csr.t
  | Vdiag of Granii_tensor.Vector.t

type timing = Measure | Simulate of Granii_hw.Hw_profile.t

type report = {
  output : value;
  setup_time : float;
  iteration_time : float;
  layout_time : float;
      (** time spent on locality work: graph reordering, binding
          permutation, hybrid-format conversion and the final inverse
          permutation; [0.] under {!Locality.default} *)
  per_step : (Primitive.t * Plan.phase * float) list;
  intermediates : (int * value) list;
      (** every step's output, by step index — consumed by the reverse pass
          of {!Granii_gnn.Autodiff}; empty when run with
          [keep_intermediates:false] *)
}

exception Execution_error of string

type cache
(** Shared-subtree execution cache: structural key → (value, measured
    time). On a [Measure]-mode hit the stored time is charged (the work is
    genuinely skipped); on a [Simulate]-mode hit the analytic time is
    recomputed with the hitting step's own jitter seed, so caching is
    timing-transparent. *)

val cache_create : unit -> cache

val cache_stats : cache -> int * int
(** [(hits, misses)] since creation. *)

val apply :
  ?pool:Granii_tensor.Parallel.t -> ?ws:Granii_tensor.Workspace.t ->
  Primitive.t -> Granii_graph.Graph.t -> value list -> value
(** Execute one primitive against concrete operand values — the kernel
    dispatch used by {!run}, exposed so measured profiling
    ({!Profiling.collect_measured}) can time individual primitives. Raises
    {!Execution_error} on an argument-kind mismatch. With [?pool], kernels
    run on the multicore engine ({!Granii_hw.Domain_pool}); with [?ws],
    outputs are drawn from the workspace arena. *)

val run :
  ?seed:int -> ?pool:Granii_tensor.Parallel.t ->
  ?workspace:Granii_tensor.Workspace.t -> ?cache:cache ->
  ?keep_intermediates:bool -> ?locality:Locality.config -> timing:timing ->
  graph:Granii_graph.Graph.t ->
  bindings:(string * value) list -> Plan.t -> report
(** Executes the plan once. Leaf names are resolved in [bindings]; the
    graph's {m \tilde A} and normalization vector are available to [Degree]
    steps. [keep_intermediates] defaults to [true]. Raises
    {!Execution_error} on an unbound input or an argument-kind mismatch
    (which would indicate an enumeration bug), [Invalid_argument] when both
    [?workspace] and [?cache] are given. Bindings must not be backed by
    buffers issued from the same workspace. *)

val run_iterations :
  ?seed:int -> ?pool:Granii_tensor.Parallel.t ->
  ?workspace:Granii_tensor.Workspace.t -> ?keep_intermediates:bool ->
  ?locality:Locality.config -> timing:timing ->
  graph:Granii_graph.Graph.t ->
  bindings:(string * value) list -> iterations:int -> Plan.t -> report
(** Steady-state driver: setup steps run once, per-iteration steps run
    [iterations] times with fixed bindings, re-using preallocated argument
    arrays and (with [?workspace]) re-using the previous iteration's
    buffers — the loop the trainer, profiler and selection micro-benchmarks
    actually sit in. [iteration_time] is the {e mean} per-iteration time;
    [per_step] and [intermediates] reflect the last iteration. Raises
    [Invalid_argument] when [iterations < 1]. *)

val estimate :
  ?seed:int -> profile:Granii_hw.Hw_profile.t -> env:Dim.env -> Plan.t ->
  float * float
(** [(setup_time, iteration_time)] predicted analytically from symbolic
    primitive shapes — no execution, no bindings. *)

val total_time : setup:float -> iteration:float -> iterations:int -> float
(** [setup + iterations * iteration]: the quantity compositions compete on
    (the paper evaluates at 100 iterations). *)

val shape_of : value -> int * int

val pp_value : Format.formatter -> value -> unit
