(** End-to-end GRANII facade (paper, Sec. IV, Fig. 4/5).

    Offline: IR {m \to} enumerate {m \to} prune {m \to} compiled dispatch.
    Online: featurize the input {m \to} select {m \to} execute. The offline
    result is reusable across inputs; only {!optimize} (cheap) runs per
    input. *)

val log_src : Logs.src
(** The library's log source (["granii"]); install any [Logs] reporter to
    see compile and selection decisions at [Info] level. *)

type offline_stats = {
  n_variants : int;     (** rewrite variants enumerated *)
  n_enumerated : int;   (** association trees before pruning *)
  n_pruned : int;
  n_promoted : int;
}

val compile :
  ?obs:Granii_obs.Obs.t -> ?max_trees:int ->
  ?degree_leaves:(string * Plan.degree_spec) list ->
  name:string -> Matrix_ir.expr -> Codegen.t * offline_stats
(** The offline compilation stage. [degree_leaves] marks normalization
    leaves, with [true] selecting the binned degree kernel of the host
    system. A live [obs] records a ["compile"] span with
    rewrite/enumerate/prune/codegen children and the [offline.*]
    counters mirroring {!offline_stats}. *)

type decision = {
  choice : Selector.choice;
  feats : Featurizer.t;
  overhead : float;
      (** feature-extraction + selection wall-clock seconds — the paper's
          reported runtime overhead, incurred once per input *)
}

val optimize :
  ?obs:Granii_obs.Obs.t -> oracle:Cost_oracle.t ->
  graph:Granii_graph.Graph.t -> k_in:int ->
  k_out:int -> ?iterations:int -> ?threads:int -> Codegen.t -> decision
(** The online stage (default [iterations = 100], matching the paper's
    evaluation). [threads] (default [1]) is the multicore engine's width;
    it enters the cost-model features, so selection can rank compositions
    differently at different parallelism levels. *)

type localized_decision = {
  ldecision : decision;      (** the winning candidate, scored jointly *)
  config : Locality.config;  (** the winning {e ordering × format} layout *)
  base_cost : float;
      (** the winner's predicted cost under {!Locality.default}; the
          difference to [ldecision.choice.predicted_cost] is the layout gain
          the model claims *)
}

val optimize_localized :
  ?obs:Granii_obs.Obs.t -> oracle:Cost_oracle.t ->
  graph:Granii_graph.Graph.t -> k_in:int ->
  k_out:int -> ?iterations:int -> ?threads:int ->
  ?configs:Locality.config list -> Codegen.t -> localized_decision
(** {!optimize} with the layout axes in the argmin: every candidate is
    scored under every {!Locality.config} in [configs] (default: all of
    them) via {!Selector.select_localized}. Pass a singleton [configs] to
    force a layout, or restrict one axis (the CLI's [--reorder]/[--format]).
    With a profile-less oracle the layout adjustment is zero and the
    result coincides with {!optimize}. Feed [config] to {!engine_config}. *)

val execute_with :
  ?seed:int -> ?disable:string list -> engine:Engine.t ->
  timing:Executor.timing -> graph:Granii_graph.Graph.t ->
  bindings:(string * Executor.value) list -> decision -> Executor.report
(** Runs the selected plan under a validated {!Engine.t} (see
    {!Executor.exec}); [disable] skips named {!Pass} pipeline passes. *)

val engine_config :
  ?threads:int -> ?workspace:bool -> ?cache:bool ->
  ?keep_intermediates:bool -> ?telemetry:bool ->
  ?calibration:Cost_oracle.calibration -> localized_decision ->
  Engine.config
(** An engine configuration whose locality axis is the layout
    {!optimize_localized} picked — the canonical way to turn a localized
    decision into an engine: feed the result to {!Engine.create} and the
    engine to {!execute_with}. [calibration] (default
    {!Cost_oracle.Off}) sets the engine oracle's online-calibration
    policy. *)

val simulated_overhead :
  profile:Granii_hw.Hw_profile.t -> env:Dim.env -> float
(** GRANII's one-time runtime overhead {e as it would cost on the simulated
    hardware}: the featurizer's O(n + nnz) streaming pass plus a small
    fixed selection cost. Benches on simulated profiles charge this instead
    of the host wall-clock [overhead] (which belongs to the host CPU, not
    the modeled machine). *)
