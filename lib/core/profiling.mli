(** Training-data collection for the learned cost models (paper, Sec. V).

    Profiles every primitive over a pool of graphs and a grid of embedding
    sizes on a target hardware profile, producing one regression dataset per
    primitive name. Labels are log-runtimes from the simulated hardware
    (deterministic noisy roofline); the learned models never see the
    analytic formulas, only these samples. *)

type datasets = (string * Granii_ml.Ml_dataset.t) list
(** One dataset per primitive name. *)

val templates : Primitive.t list
(** The primitive instances profiled (every name in the vocabulary, with
    both embedding-size roles for the size-parametric ones). *)

val embedding_grid : int list
(** The profiled embedding sizes: powers of two from 32 to 2048 (paper,
    Sec. V). *)

val collect :
  ?seed:int -> ?graphs:Granii_graph.Graph.t list -> ?sizes:int list ->
  ?threads_grid:int list ->
  profile:Granii_hw.Hw_profile.t -> unit -> datasets
(** Runs the sweep. Defaults: the {!Granii_graph.Datasets.training_pool},
    {!embedding_grid} and [threads_grid = [1]] (sequential kernels only).
    Pass e.g. [~threads_grid:[1; 2; 4; 8]] to profile the multicore engine:
    each sample is featurized with its thread count so the learned models
    can rank compositions differently at different parallelism levels.
    Sample counts land in the paper's 700–8000 range per primitive. *)

val collect_measured :
  ?seed:int -> ?graphs:Granii_graph.Graph.t list -> ?sizes:int list ->
  ?runs:int -> unit -> datasets
(** Like {!collect}, but labels come from {e actually executing} every
    primitive on the host CPU and timing it ([runs] timed repetitions,
    default [3]) — the paper's real data-collection procedure applied to the
    one machine that physically exists here. Defaults to a smaller grid
    ([sizes = [8; 16; 32; 64]] and a scaled-down pool) so the sweep stays in
    seconds; a cost model trained on this data predicts host-CPU runtimes. *)
