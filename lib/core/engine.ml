module Parallel = Granii_tensor.Parallel
module Workspace = Granii_tensor.Workspace
module Dense = Granii_tensor.Dense
module Csr = Granii_sparse.Csr
module Reorder = Granii_graph.Reorder

module Obs = Granii_obs.Obs

type config = {
  threads : int;
  workspace : bool;
  cache : bool;
  locality : Locality.config;
  keep_intermediates : bool;
  telemetry : bool;
  queue_bound : int;
  batch_window : int;
  calibration : Cost_oracle.calibration;
  journal : bool;
}

let default_config =
  { threads = 1;
    workspace = false;
    cache = false;
    locality = Locality.default;
    keep_intermediates = true;
    telemetry = false;
    queue_bound = 64;
    batch_window = 0;
    calibration = Cost_oracle.Off;
    journal = false }

type error =
  | Invalid_threads of int
  | Cache_with_locality of Locality.config
  | Workspace_cache_discard
  | Cache_graph_mismatch of { expected : string; got : string }
  | Invalid_queue_bound of int
  | Invalid_batch_window of int
  | Invalid_format of string
  | Bsr_with_reorder of Locality.config

exception Error of error

let error_to_string = function
  | Invalid_threads t -> Printf.sprintf "engine: threads must be >= 1 (got %d)" t
  | Cache_with_locality c ->
      Printf.sprintf
        "engine: the subtree cache cannot be combined with locality %s \
         (cached values would live in a permuted vertex id space)"
        (Locality.config_to_string c)
  | Workspace_cache_discard ->
      "engine: workspace + cache requires keep_intermediates (with liveness \
       recycling the arena reclaims buffers mid-run, before cache insertion \
       can pin them)"
  | Cache_graph_mismatch { expected; got } ->
      Printf.sprintf
        "engine: the subtree cache is bound to graph %s but was used with \
         graph %s (cached values are only valid for one (graph, bindings) \
         pair)"
        expected got
  | Invalid_queue_bound q ->
      Printf.sprintf
        "engine: queue_bound must be >= 1 (got %d) — the serving runtime \
         needs at least one admission slot per tenant"
        q
  | Invalid_batch_window w ->
      Printf.sprintf
        "engine: batch_window must be >= 0 microseconds (got %d)" w
  | Invalid_format f ->
      Printf.sprintf
        "engine: unknown sparse format %s (expected csr, hybrid, bsr or cbm)"
        f
  | Bsr_with_reorder c ->
      Printf.sprintf
        "engine: the bsr format cannot be combined with ordering %s (tiles \
         accumulate in column-sorted order, but reordered matrices keep \
         source entry order — the bitwise contract would break)"
        (Granii_graph.Reorder.strategy_to_string c.Locality.strategy)

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Engine.Error: " ^ error_to_string e)
    | _ -> None)

(* ---- shared-subtree execution cache ----

   Keyed by [Plan.step.skey], the association tree's structural CSE key, so
   a value computed while executing one candidate plan is recognized by
   every other candidate of the same model that contains the same subtree —
   the GAT reuse-vs-recompute structure. The cache carries a fingerprint of
   the first graph it runs against and refuses any other (the bindings half
   of the (graph, bindings) validity contract remains the caller's). *)

type cache = {
  tbl : (string, Dispatch.value * float) Hashtbl.t;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable fingerprint : (string * string) option;
      (* (graph name for the error message, structural fingerprint) *)
}

let cache_create () =
  { tbl = Hashtbl.create 64; cache_hits = 0; cache_misses = 0; fingerprint = None }

let cache_stats c = (c.cache_hits, c.cache_misses)

(* Cheap structural fingerprint: exact counts plus a bounded hash of the
   adjacency arrays. [Hashtbl.hash_param] walks at most the given number of
   array elements, so this stays O(1) on huge graphs while still catching
   any realistic accidental graph swap. *)
let graph_fingerprint (g : Granii_graph.Graph.t) =
  let adj = g.Granii_graph.Graph.adj in
  Printf.sprintf "n=%d;nnz=%d;rp=%d;ci=%d"
    (Granii_graph.Graph.n_nodes g)
    (Granii_graph.Graph.n_edges g)
    (Hashtbl.hash_param 256 256 adj.Csr.row_ptr)
    (Hashtbl.hash_param 256 256 adj.Csr.col_idx)

let cache_bind_graph c (g : Granii_graph.Graph.t) =
  let fp = graph_fingerprint g in
  match c.fingerprint with
  | None -> c.fingerprint <- Some (g.Granii_graph.Graph.name, fp)
  | Some (name, fp0) ->
      if not (String.equal fp0 fp) then
        raise
          (Error
             (Cache_graph_mismatch
                { expected = name; got = g.Granii_graph.Graph.name }))

let cache_find c key =
  match Hashtbl.find_opt c.tbl key with
  | Some _ as hit ->
      c.cache_hits <- c.cache_hits + 1;
      hit
  | None ->
      c.cache_misses <- c.cache_misses + 1;
      None

(* Epoch-pinning: when the engine also has a workspace arena, a cached value
   must not alias an arena buffer — the next run's reclaim would recycle it
   underneath the cache. Inserting a copy (only of the float backing; int
   structure arrays are aliasing-safe) pins the entry across epochs. That
   copy is the documented cost of legalizing workspace x cache: one extra
   allocation per cache {e miss}, amortized across every later hit. *)
let pin_value v =
  match v with
  | Dispatch.Vdense d ->
      Dispatch.Vdense
        (Dense.of_flat ~rows:d.Dense.rows ~cols:d.Dense.cols (Array.copy d.Dense.data))
  | Dispatch.Vsparse s -> (
      match s.Csr.values with
      | None -> v
      | Some vals -> Dispatch.Vsparse (Csr.with_values s (Array.copy vals)))
  | Dispatch.Vdiag d -> Dispatch.Vdiag (Array.copy d)

(* ---- the engine ---- *)

type t = {
  cfg : config;
  pool : Parallel.t option;
  owns_pool : bool;
  ws : Workspace.t option;
  cache_ : cache option;
  obs : Obs.t;
  oracle : Cost_oracle.t;
}

let validate (cfg : config) =
  if cfg.threads < 1 then Some (Invalid_threads cfg.threads)
  else if cfg.cache && not (Locality.is_default cfg.locality) then
    Some (Cache_with_locality cfg.locality)
  else if not (Locality.legal cfg.locality) then
    Some (Bsr_with_reorder cfg.locality)
  else if cfg.workspace && cfg.cache && not cfg.keep_intermediates then
    Some Workspace_cache_discard
  else if cfg.queue_bound < 1 then Some (Invalid_queue_bound cfg.queue_bound)
  else if cfg.batch_window < 0 then Some (Invalid_batch_window cfg.batch_window)
  else None

let create ?pool ?workspace ?cache ?obs ?oracle (cfg : config) =
  (* normalize the config to the resources actually present, so [describe]
     is truthful when resources are injected *)
  let cfg =
    { cfg with
      threads = (match pool with Some p -> Parallel.threads p | None -> cfg.threads);
      workspace = cfg.workspace || workspace <> None;
      cache = cfg.cache || cache <> None;
      telemetry =
        (cfg.telemetry
        || match obs with Some o -> Obs.enabled o | None -> false);
      journal =
        (cfg.journal
        || match obs with Some o -> o.Obs.journal <> None | None -> false);
      calibration =
        (match oracle with
        | Some o -> Cost_oracle.calibration o
        | None -> cfg.calibration) }
  in
  match validate cfg with
  | Some e -> Result.error e
  | None ->
      let pool, owns_pool =
        match pool with
        | Some p -> (Some p, false)
        | None ->
            if cfg.threads > 1 then (Some (Parallel.create ~threads:cfg.threads ()), true)
            else (None, false)
      in
      let ws =
        match workspace with
        | Some _ as w -> w
        | None -> if cfg.workspace then Some (Workspace.create ()) else None
      in
      let cache_ =
        match cache with
        | Some _ as c -> c
        | None -> if cfg.cache then Some (cache_create ()) else None
      in
      let obs =
        match obs with
        | Some o -> o
        | None ->
            if cfg.telemetry then Obs.create ~journal:cfg.journal ()
            else if cfg.journal then
              (* journal-only sink: the always-on production journal does
                 not drag the full metrics/trace machinery along *)
              Obs.create ~trace:false ~metrics:false ~costmon:false
                ~journal:true ()
            else Obs.disabled
      in
      let oracle =
        match oracle with
        | Some o -> o
        | None ->
            (* the calibration feed is the live monitor when telemetry is
               on, so execution telemetry and the oracle see one pair store *)
            Cost_oracle.of_model ~calibration:cfg.calibration ~obs
              ?monitor:obs.Obs.costmon
              (Cost_model.analytic Granii_hw.Hw_profile.cpu)
      in
      Result.ok { cfg; pool; owns_pool; ws; cache_; obs; oracle }

let create_exn ?pool ?workspace ?cache ?obs ?oracle cfg =
  match create ?pool ?workspace ?cache ?obs ?oracle cfg with
  | Ok t -> t
  | Error e -> raise (Error e)

let default () = create_exn default_config

let config t = t.cfg
let threads t = t.cfg.threads
let pool t = t.pool
let workspace t = t.ws
let cache t = t.cache_
let locality t = t.cfg.locality
let keep_intermediates t = t.cfg.keep_intermediates
let obs t = t.obs
let oracle t = t.oracle
let calibration t = t.cfg.calibration

let shutdown t = if t.owns_pool then Option.iter Parallel.shutdown t.pool

let cache_insert t key v time =
  match t.cache_ with
  | None -> ()
  | Some c ->
      let v = if t.ws <> None then pin_value v else v in
      Hashtbl.replace c.tbl key (v, time)

(* ---- rendering / parsing (the CLI's --engine surface) ---- *)

let onoff = function true -> "on" | false -> "off"

let describe_config (cfg : config) =
  Printf.sprintf
    "threads=%d,workspace=%s,cache=%s,locality=%s,intermediates=%s,telemetry=%s,queue_bound=%d,batch_window=%d,calibration=%s,journal=%s"
    cfg.threads (onoff cfg.workspace) (onoff cfg.cache)
    (Locality.config_to_string cfg.locality)
    (if cfg.keep_intermediates then "keep" else "drop")
    (onoff cfg.telemetry) cfg.queue_bound cfg.batch_window
    (Cost_oracle.calibration_to_string cfg.calibration)
    (onoff cfg.journal)

let describe t = describe_config t.cfg

let parse_flag key v =
  match v with
  | "on" | "true" | "1" -> Ok true
  | "off" | "false" | "0" -> Ok false
  | _ -> Error (Printf.sprintf "engine spec: %s expects on|off (got %s)" key v)

let parse_locality v =
  match String.split_on_char '+' v with
  | [ s; f ] -> (
      match Reorder.strategy_of_string s with
      | None ->
          Result.Error
            (Printf.sprintf
               "engine spec: locality expects <identity|degree|bfs|rcm>+<csr|hybrid|bsr|cbm> (got %s)"
               v)
      | Some strategy -> (
          match Locality.format_of_string f with
          | Some format -> Ok { Locality.strategy; format }
          (* unknown format names get the typed error so callers can
             distinguish a bad format axis from general spec noise *)
          | None -> Error (error_to_string (Invalid_format f))))
  | _ ->
      Error
        (Printf.sprintf
           "engine spec: locality expects <strategy>+<format> (got %s)" v)

let config_of_string s =
  let ( let* ) = Result.bind in
  let fields =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun f -> f <> "")
  in
  List.fold_left
    (fun acc field ->
      let* cfg = acc in
      match String.index_opt field '=' with
      | None when field = "default" -> Ok cfg
      | None ->
          Error
            (Printf.sprintf "engine spec: expected key=value (got %s)" field)
      | Some i -> (
          let key = String.sub field 0 i in
          let v = String.sub field (i + 1) (String.length field - i - 1) in
          match key with
          | "threads" -> (
              match int_of_string_opt v with
              | Some t -> Ok { cfg with threads = t }
              | None ->
                  Error
                    (Printf.sprintf "engine spec: threads expects an integer (got %s)" v))
          | "workspace" ->
              let* b = parse_flag key v in
              Ok { cfg with workspace = b }
          | "cache" ->
              let* b = parse_flag key v in
              Ok { cfg with cache = b }
          | "locality" ->
              let* l = parse_locality v in
              Ok { cfg with locality = l }
          | "intermediates" -> (
              match v with
              | "keep" -> Ok { cfg with keep_intermediates = true }
              | "drop" -> Ok { cfg with keep_intermediates = false }
              | _ ->
                  Error
                    (Printf.sprintf
                       "engine spec: intermediates expects keep|drop (got %s)" v))
          | "telemetry" ->
              let* b = parse_flag key v in
              Ok { cfg with telemetry = b }
          | "queue_bound" -> (
              match int_of_string_opt v with
              | Some q -> Ok { cfg with queue_bound = q }
              | None ->
                  Error
                    (Printf.sprintf
                       "engine spec: queue_bound expects an integer (got %s)" v))
          | "batch_window" -> (
              match int_of_string_opt v with
              | Some w -> Ok { cfg with batch_window = w }
              | None ->
                  Error
                    (Printf.sprintf
                       "engine spec: batch_window expects an integer (got %s)" v))
          | "journal" ->
              let* b = parse_flag key v in
              Ok { cfg with journal = b }
          | "calibration" -> (
              match Cost_oracle.calibration_of_string v with
              | Some c -> Ok { cfg with calibration = c }
              | None ->
                  Error
                    (Printf.sprintf
                       "engine spec: calibration expects off|affine|refit (got %s)"
                       v))
          | _ -> Error (Printf.sprintf "engine spec: unknown key %s" key)))
    (Ok default_config) fields
