type degree_spec = { binned : bool; power : Primitive.degree_power }

type phase = Setup | Per_iteration

type source = Input of string | Computed of int

type step = {
  idx : int;
  prim : Primitive.t;
  args : source list;
  phase : phase;
  skey : string;
}

type t = {
  steps : step list;
  output : source;
  name : string;
}

let of_tree ?(hoist = true) ?(degree_leaves = []) ~name tree =
  let ops = Assoc_tree.ops tree in
  (* Assign indices leaving room for degree-producing steps in front. *)
  let used_degree_leaves =
    List.filter
      (fun (leaf_name, _) ->
        List.exists
          (fun (l : Matrix_ir.leaf) -> String.equal l.Matrix_ir.name leaf_name)
          (Assoc_tree.leaves tree))
      degree_leaves
  in
  let degree_steps =
    List.mapi
      (fun i (leaf_name, spec) ->
        ( leaf_name,
          let prim = Primitive.Degree { binned = spec.binned; power = spec.power } in
          { idx = i;
            prim;
            args = [ Input "__graph__" ];
            phase = (if hoist then Setup else Per_iteration);
            skey = Format.asprintf "%a(__graph__)" Primitive.pp prim } ))
      used_degree_leaves
  in
  let offset = List.length degree_steps in
  let index_of_key = Hashtbl.create 16 in
  List.iteri
    (fun i (o : Assoc_tree.op) -> Hashtbl.add index_of_key o.Assoc_tree.okey (i + offset))
    ops;
  let source_of_node node =
    match node with
    | Assoc_tree.Leaf l -> (
        let lname = l.Matrix_ir.name in
        match List.assoc_opt lname degree_steps with
        | Some s -> Computed s.idx
        | None -> Input lname)
    | Assoc_tree.Op o -> Computed (Hashtbl.find index_of_key o.Assoc_tree.okey)
  in
  let op_steps =
    List.mapi
      (fun i (o : Assoc_tree.op) ->
        let graph_only =
          Assoc_tree.is_graph_only (Assoc_tree.Op o)
        in
        { idx = i + offset;
          prim = o.Assoc_tree.prim;
          args = List.map source_of_node o.Assoc_tree.args;
          phase = (if hoist && graph_only then Setup else Per_iteration);
          skey = o.Assoc_tree.okey })
      ops
  in
  let steps = List.map snd degree_steps @ op_steps in
  let output = source_of_node tree.Assoc_tree.root in
  { steps; output; name }

let primitives p = List.map (fun s -> s.prim) p.steps

let setup_steps p = List.filter (fun s -> s.phase = Setup) p.steps

let iteration_steps p = List.filter (fun s -> s.phase = Per_iteration) p.steps

let input_names p =
  let names = ref [] in
  List.iter
    (fun s ->
      List.iter
        (function
          | Input n when (not (String.equal n "__graph__")) && not (List.mem n !names)
            ->
              names := n :: !names
          | Input _ | Computed _ -> ())
        s.args)
    p.steps;
  List.rev !names

let pp_source ppf = function
  | Input n -> Format.fprintf ppf "%s" n
  | Computed i -> Format.fprintf ppf "t%d" i

let pp ppf p =
  Format.fprintf ppf "@[<v>plan %s:@," p.name;
  List.iter
    (fun s ->
      Format.fprintf ppf "  t%d = %a(%a)%s@," s.idx Primitive.pp s.prim
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           pp_source)
        s.args
        (match s.phase with Setup -> "  [setup]" | Per_iteration -> ""))
    p.steps;
  Format.fprintf ppf "  return %a@]" pp_source p.output
