(** The execution engine: one validated, immutable context for running plans.

    An engine is built once from a {!config} and owns every runtime
    capability that used to travel as independent optional arguments
    through {!Executor}: the domain pool ([threads]), the workspace arena,
    the shared-subtree cache, the locality (layout) decision and the
    liveness policy ([keep_intermediates]). Illegal combinations are
    rejected at construction with a typed {!error} instead of a mid-run
    exception, so the legality matrix lives in exactly one place
    (see DESIGN.md §10):

    {v
    combination                          verdict
    ---------------------------------------------------------------------
    threads < 1                          Invalid_threads
    cache + non-default locality         Cache_with_locality
    workspace + cache + drop             Workspace_cache_discard
    bsr format + non-identity order      Bsr_with_reorder
    workspace + cache + keep             legal: entries are epoch-pinned
                                         (copied out of the arena on insert)
    everything else                      legal
    v}

    Every engine also carries a {!Cost_oracle.t} — the single
    cost-prediction layer — whose online-calibration policy is the
    [calibration] config axis. *)

type config = {
  threads : int;       (** multicore-engine width; 1 = sequential *)
  workspace : bool;    (** draw kernel outputs from a buffer-reuse arena *)
  cache : bool;        (** shared-subtree execution cache across runs *)
  locality : Locality.config;  (** graph layout the plans execute under *)
  keep_intermediates : bool;
      (** [false] lets the liveness pass recycle each intermediate's buffer
          the moment its last reader retires (requires the workspace) *)
  telemetry : bool;
      (** attach a live {!Granii_obs.Obs} sink (tracing + metrics +
          cost-model monitor); off = the zero-overhead {!Granii_obs.Obs.disabled}
          sink *)
  queue_bound : int;
      (** serving axis: per-tenant admission-queue capacity (requests); the
          serving runtime rejects with [Queue_full] beyond it. Must be
          >= 1. Ignored by direct (non-serving) execution. *)
  batch_window : int;
      (** serving axis: how long (microseconds) the batcher may hold an
          admitted request open waiting for coalescible peers; [0] batches
          only what is already queued. Must be >= 0. Ignored by direct
          (non-serving) execution. *)
  calibration : Cost_oracle.calibration;
      (** online cost-model calibration policy of the engine's oracle.
          {!Cost_oracle.Off} (the default) makes the oracle a pure reader of
          its base model — predictions bitwise identical to an uncalibrated
          engine. *)
  journal : bool;
      (** attach the always-on production event journal
          ({!Granii_obs.Obs.Journal}: lock-free per-domain rings recording
          step executions, plan-cache traffic, calibration swaps,
          backpressure) even when full [telemetry] is off. Never affects
          computed outputs. *)
}

val default_config : config
(** [threads=1], everything off, {!Locality.default}, keep intermediates,
    [calibration=Off], [journal=false] — the seed executor's behavior.
    Serving axes default to [queue_bound=64], [batch_window=0]. *)

type error =
  | Invalid_threads of int
  | Cache_with_locality of Locality.config
      (** cached values would live in a permuted vertex id space *)
  | Workspace_cache_discard
      (** workspace + cache under [keep_intermediates:false]: liveness
          recycling reclaims buffers mid-run, before insertion can pin them *)
  | Cache_graph_mismatch of { expected : string; got : string }
      (** the cache was bound to one graph and used with another *)
  | Invalid_queue_bound of int
      (** [queue_bound < 1]: the serving runtime needs at least one
          admission slot per tenant *)
  | Invalid_batch_window of int
      (** [batch_window < 0] microseconds *)
  | Invalid_format of string
      (** unknown sparse-format name on the locality axis (expected [csr],
          [hybrid], [bsr] or [cbm]) *)
  | Bsr_with_reorder of Locality.config
      (** [bsr] with a non-identity ordering: tiles accumulate in
          column-sorted order, but reordered matrices keep source entry
          order — see {!Locality.legal} *)

exception Error of error

val error_to_string : error -> string

type t
(** A validated engine. Immutable configuration; the owned resources
    (pool, arena, cache) are internally mutable as before. *)

type cache
(** Shared-subtree execution cache: {!Plan.step.skey} → (value, measured
    time). On a [Measure]-mode hit the stored time is charged (the work is
    genuinely skipped); on a [Simulate]-mode hit the analytic time is
    recomputed with the hitting step's own jitter seed, so caching is
    timing-transparent. The cache fingerprints the first graph it is used
    with and raises [Error (Cache_graph_mismatch _)] on any other; the
    bindings half of the (graph, bindings) validity contract remains the
    caller's. *)

val create :
  ?pool:Granii_tensor.Parallel.t -> ?workspace:Granii_tensor.Workspace.t ->
  ?cache:cache -> ?obs:Granii_obs.Obs.t -> ?oracle:Cost_oracle.t ->
  config -> (t, error) result
(** Validates and builds the context. A pool is spawned when
    [config.threads > 1]; the injection parameters let a caller hand in
    already-owned resources ({!Selector.measure} does) — an injected
    resource is never shut down by {!shutdown}, and the stored config is
    normalized to reflect it ([threads] from the injected pool's width,
    [workspace]/[cache] forced on, [telemetry] on when the injected sink is
    live, [calibration] from the injected oracle's policy).
    [config.telemetry = true] without an injected sink builds a fresh
    all-on {!Granii_obs.Obs.create}; an injected
    {!Granii_obs.Obs.disabled} keeps telemetry off. Without an injected
    [oracle], the engine builds one over the analytic host-CPU base model
    with the config's [calibration] policy, feeding off the live
    cost-monitor when telemetry is on. *)

val create_exn :
  ?pool:Granii_tensor.Parallel.t -> ?workspace:Granii_tensor.Workspace.t ->
  ?cache:cache -> ?obs:Granii_obs.Obs.t -> ?oracle:Cost_oracle.t ->
  config -> t
(** {!create}, raising {!Error} instead of returning it. *)

val default : unit -> t
(** [create_exn default_config] — allocates nothing, shuts down nothing. *)

val shutdown : t -> unit
(** Joins the pool's worker domains {e if the engine spawned them}; injected
    pools are left running. Idempotent. *)

(** {2 Accessors} *)

val config : t -> config
val threads : t -> int
val pool : t -> Granii_tensor.Parallel.t option
val workspace : t -> Granii_tensor.Workspace.t option
val cache : t -> cache option
val locality : t -> Locality.config
val keep_intermediates : t -> bool

val obs : t -> Granii_obs.Obs.t
(** The telemetry sink; {!Granii_obs.Obs.disabled} unless the config asked
    for telemetry or a live sink was injected. *)

val oracle : t -> Cost_oracle.t
(** The engine's cost-prediction layer. Executor telemetry feeds it the
    per-step (predicted, measured) pairs when calibration is on. *)

val calibration : t -> Cost_oracle.calibration

(** {2 Cache operations} (used by {!Executor}) *)

val cache_create : unit -> cache

val cache_stats : cache -> int * int
(** [(hits, misses)] since creation. *)

val cache_bind_graph : cache -> Granii_graph.Graph.t -> unit
(** Record the graph on first use; raise [Error (Cache_graph_mismatch _)]
    when the cache was already bound to a structurally different graph. *)

val cache_find : cache -> string -> (Dispatch.value * float) option
(** Look a structural key up, counting the hit or miss. *)

val cache_insert : t -> string -> Dispatch.value -> float -> unit
(** Store a computed value. When the engine also has a workspace arena the
    value's float backing is {e copied out} first (epoch-pinning), so the
    entry survives the arena reclaim of later runs — one extra copy per
    cache miss is the cost of the workspace x cache combination. No-op on a
    cache-less engine. *)

(** {2 Rendering and parsing} (the CLI's [--engine] surface) *)

val describe : t -> string

val describe_config : config -> string
(** E.g. ["threads=4,workspace=on,cache=off,locality=identity+csr,intermediates=keep,telemetry=off,queue_bound=64,batch_window=0,calibration=off,journal=off"].
    Round-trips exactly through {!config_of_string}. *)

val config_of_string : string -> (config, string) result
(** Parse a comma-separated [key=value] spec; omitted keys keep their
    {!default_config} values, [""] and ["default"] are the default config.
    Keys: [threads] (int), [workspace]/[cache]/[telemetry] (on|off),
    [locality] (<identity|degree|bfs|rcm>+<csr|hybrid|bsr|cbm>),
    [intermediates] (keep|drop), [queue_bound] (int), [batch_window]
    (int, microseconds), [calibration] (off|affine|refit), [journal]
    (on|off). An unknown format name reports the {!Invalid_format}
    message. *)

(** {2 Structural fingerprinting} (shared with the serving plan cache) *)

val graph_fingerprint : Granii_graph.Graph.t -> string
(** Cheap structural fingerprint of a graph: exact node/edge counts plus a
    bounded hash of the adjacency arrays ([Hashtbl.hash_param] walks at most
    256 elements, so this is O(1) on huge graphs). Used by the subtree
    cache's graph binding and as the graph component of the serving layer's
    plan-cache key. *)
