module K = Granii_hw.Kernel_model
module Hw = Granii_hw.Hw_profile
module Obs = Granii_obs.Obs
module Gbrt = Granii_ml.Gbrt

(* ---- calibration policy ---- *)

type calibration = Off | Affine | Refit

let calibration_to_string = function
  | Off -> "off"
  | Affine -> "affine"
  | Refit -> "refit"

let calibration_of_string = function
  | "off" -> Some Off
  | "affine" -> Some Affine
  | "refit" -> Some Refit
  | _ -> None

(* ---- state ---- *)

(* Refit sample: the featurized model input alongside the pair, so a GBRT
   can be re-fitted without replaying executions. *)
type sample = { s_input : float array; s_predicted : float; s_measured : float }

(* Newest-first list, truncated back to [sample_cap] whenever it doubles —
   amortized O(1) insertion without a second ring implementation. *)
type sample_series = { mutable items : sample list; mutable count : int }

let sample_cap = 512
let min_refit_samples = 24

type snapshot = {
  snap_version : int;
  snap_note : string;
  snap_corrections : (string * (float * float)) list;
  snap_overrides : (string * Gbrt.t) list;
}

type t = {
  base : Cost_model.t;
  calibration : calibration;
  fit_every : int;
  min_pairs : int;
  obs : Obs.t;
  monitor : Obs.Cost_monitor.t;
  samples : (string, sample_series) Hashtbl.t;
  corrections : (string, float * float) Hashtbl.t;  (* prim -> (a, b) *)
  overrides : (string, Gbrt.t) Hashtbl.t;
  mutable version : int;
  mutable history : snapshot list;  (* newest first, capped *)
  mutable observed : int;
  drift : Obs.Drift.t option;
}

let history_cap = 8

let of_model ?(calibration = Off) ?(fit_every = 64) ?(min_pairs = 8) ?obs
    ?monitor ?drift base =
  if fit_every < 1 then invalid_arg "Cost_oracle.of_model: fit_every < 1";
  if min_pairs < 4 then invalid_arg "Cost_oracle.of_model: min_pairs < 4";
  { base;
    calibration;
    fit_every;
    min_pairs;
    obs = (match obs with Some o -> o | None -> Obs.disabled);
    monitor =
      (match monitor with Some m -> m | None -> Obs.Cost_monitor.create ());
    samples = Hashtbl.create 16;
    corrections = Hashtbl.create 16;
    overrides = Hashtbl.create 16;
    version = 0;
    history = [];
    observed = 0;
    drift =
      (match drift with
      | Some _ as d -> d
      | None ->
          (* a calibrating oracle always watches its own (corrected)
             |log error| stream for drift; a pure reader has no
             calibration pass to trigger, so no detector *)
          if calibration <> Off then
            Some (Obs.Drift.create ~level:(log 2.) "oracle.logerr")
          else None) }

let analytic profile = of_model (Cost_model.analytic profile)
let flops_only () = of_model Cost_model.flops_only
let load path = of_model (Cost_model.load path)
let save t path = Cost_model.save t.base path

let base t = t.base
let calibration t = t.calibration
let profile t = Cost_model.profile t.base

let name t =
  let n = Cost_model.name t.base in
  if t.version = 0 then n else n ^ "#v" ^ string_of_int t.version

let version t = t.version
let monitor t = t.monitor
let observed t = t.observed
let drift t = t.drift
let correction t prim = Hashtbl.find_opt t.corrections prim

(* ---- prediction ----

   [corrected] applies the affine log-space correction only when an entry
   exists, so a calibration-off oracle (no entries can ever be installed)
   reproduces the base model bit for bit. *)

let corrected t ~prim p =
  match Hashtbl.find_opt t.corrections prim with
  | None -> p
  | Some (a, b) -> if p > 0. then exp (a +. (b *. log p)) else p

let analytic_prim ~threads profile ~env prim =
  List.fold_left
    (fun acc kernel -> acc +. K.time ~threads profile kernel)
    0.
    (Primitive.to_kernels env prim)

(* The base model's prediction, overrides included — exactly the old
   [Cost_model.predict] when no override is installed. *)
let raw_predict t feats ~env prim =
  let threads = feats.Featurizer.threads in
  let pname = Primitive.name prim in
  let learned_input () =
    Featurizer.primitive_input feats ~dims:(Primitive.instantiated_dims env prim)
  in
  match Hashtbl.find_opt t.overrides pname with
  | Some model -> exp (Gbrt.predict model (learned_input ()))
  | None -> (
      match Cost_model.kind t.base with
      | `Flops ->
          List.fold_left
            (fun acc kernel -> acc +. K.flops kernel)
            0.
            (Primitive.to_kernels env prim)
      | `Analytic ->
          let p = Option.get (Cost_model.profile t.base) in
          analytic_prim ~threads p ~env prim
      | `Learned -> (
          let p = Option.get (Cost_model.profile t.base) in
          match Cost_model.find_model t.base pname with
          | Some model -> exp (Gbrt.predict model (learned_input ()))
          | None -> analytic_prim ~threads p ~env prim))

let predict t feats ~env prim =
  corrected t ~prim:(Primitive.name prim) (raw_predict t feats ~env prim)

let predict_plan t feats ~env ~iterations (plan : Plan.t) =
  let total =
    List.fold_left
      (fun acc (s : Plan.step) ->
        let c = predict t feats ~env s.Plan.prim in
        match s.Plan.phase with
        | Plan.Setup -> acc +. c
        | Plan.Per_iteration -> acc +. (float_of_int iterations *. c))
      0. plan.Plan.steps
  in
  corrected t ~prim:("plan:" ^ plan.Plan.name) total

let analytic_plan ~threads profile ~env ~iterations (plan : Plan.t) =
  List.fold_left
    (fun acc (s : Plan.step) ->
      let c = analytic_prim ~threads profile ~env s.Plan.prim in
      match s.Plan.phase with
      | Plan.Setup -> acc +. c
      | Plan.Per_iteration -> acc +. (float_of_int iterations *. c))
    0. plan.Plan.steps

let predict_kernels t ~threads kernels =
  let p = match Cost_model.profile t.base with Some p -> p | None -> Hw.cpu in
  List.fold_left (fun acc k -> acc +. K.time ~threads p k) 0. kernels

let kernel_time ?threads ?gather_discount profile kernel =
  K.time ?threads ?gather_discount profile kernel

(* ---- layout adjustment (moved from Locality; the structural parts —
   layout_kernels, gather_discount — remain there) ---- *)

module Gf = Granii_graph.Graph_features

let layout_time ?threads (p : Hw.t) ~n ~nnz config =
  List.fold_left
    (fun acc k -> acc +. K.time ?threads p k)
    0.
    (Locality.layout_kernels ~n ~nnz config)

(* Per-kernel cost delta (localized minus baseline) a configuration induces.
   Only the gather-bound g-kernels respond to layout; everything else is
   unchanged. *)
let kernel_delta ?threads (p : Hw.t) (stats : Gf.t) (config : Locality.config)
    kernel =
  match kernel with
  | K.Spmm { rows; nnz; k; weighted } ->
      let d = Locality.gather_discount p stats config in
      let localized =
        match config.Locality.format with
        | Locality.Hybrid ->
            K.time ?threads ~gather_discount:d p
              (K.Spmm_hybrid
                 { rows; nnz; k; weighted; packing = stats.Gf.ell_packing })
        | Locality.Bsr ->
            K.time ?threads ~gather_discount:d p
              (K.Spmm_bsr
                 { rows; nnz; k; weighted; fill = stats.Gf.block_fill })
        | Locality.Cbm ->
            (* realized dedup: the graph's measured overlap scaled by how
               much of it this hardware can bank *)
            let overlap =
              stats.Gf.neighbor_overlap *. p.Hw.cbm_dedup_efficiency
            in
            K.time ?threads ~gather_discount:d p
              (K.Spmm_cbm { rows; nnz; k; weighted; overlap })
        | Locality.Csr -> K.time ?threads ~gather_discount:d p kernel
      in
      localized -. K.time ?threads p kernel
  | K.Sddmm _ ->
      (* the dot products gather rows of both dense operands: same locality
         credit, no format-dependent shape change (the hybrid SDDMM writes
         into the source CSR layout) *)
      let d = Locality.gather_discount p stats config in
      K.time ?threads ~gather_discount:d p kernel -. K.time ?threads p kernel
  | _ -> 0.

(* Total additive adjustment to the analytic plan cost for running [plan]
   under [config]: the one-time layout cost plus each step's kernel deltas,
   phase-weighted exactly like the base prediction. Zero for the default
   configuration. *)
let plan_adjustment ?threads (p : Hw.t) ~stats ~env ~iterations config
    (plan : Plan.t) =
  if Locality.is_default config then 0.
  else begin
    let setup = layout_time ?threads p ~n:env.Dim.n ~nnz:env.Dim.nnz config in
    List.fold_left
      (fun acc (s : Plan.step) ->
        let delta =
          List.fold_left
            (fun a k -> a +. kernel_delta ?threads p stats config k)
            0.
            (Primitive.to_kernels env s.Plan.prim)
        in
        match s.Plan.phase with
        | Plan.Setup -> acc +. delta
        | Plan.Per_iteration -> acc +. (float_of_int iterations *. delta))
      setup plan.Plan.steps
  end

(* ---- scoring: pooled Kendall inversions + mean |log error| ----

   Inversions are counted over pairs distinct on both axes — the same
   convention as [Obs.Cost_monitor.summarize] — but pooled across
   primitives, because cross-primitive ordering is what plan selection
   consumes (a per-primitive monotone correction cannot change
   within-primitive order, only how primitives rank against each other). *)

let inversions preds meas n =
  let inv = ref 0 and cmp = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let dp = compare preds.(i) preds.(j)
      and dm = compare meas.(i) meas.(j) in
      if dp <> 0 && dm <> 0 then begin
        incr cmp;
        if dp * dm < 0 then incr inv
      end
    done
  done;
  (!inv, !cmp)

let mean_abs_log_err preds meas n =
  if n = 0 then 0.
  else begin
    let s = ref 0. in
    for i = 0 to n - 1 do
      s := !s +. Float.abs (log (preds.(i) /. meas.(i)))
    done;
    !s /. float_of_int n
  end

(* Least-squares affine fit in log space over (ln p, ln m) pairs. A
   degenerate predictor axis (all train predictions equal) can only support
   a pure offset: b = 1, a = mean residual. The slope is clamped to keep
   the correction monotone and tame. *)
let fit_affine pairs =
  let n = List.length pairs in
  let fn = float_of_int n in
  let xs = List.map (fun (p, _) -> log p) pairs in
  let ys = List.map (fun (_, m) -> log m) pairs in
  let mx = List.fold_left ( +. ) 0. xs /. fn in
  let my = List.fold_left ( +. ) 0. ys /. fn in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. mx) *. (x -. mx))) 0. xs
  in
  let cov =
    List.fold_left2
      (fun acc x y -> acc +. ((x -. mx) *. (y -. my)))
      0. xs ys
  in
  let b = if var < 1e-12 then 1. else Float.max 0.1 (Float.min 10. (cov /. var)) in
  let a = my -. (b *. mx) in
  (a, b)

(* ---- the feedback loop ---- *)

type pass_outcome = {
  fitted_prims : string list;
  holdout_pairs : int;
  current_inversions : int;
  candidate_inversions : int;
  current_err : float;
  candidate_err : float;
  accepted : bool;
  refit_prims : string list;
  version_after : int;
}

let positive_pairs t prim =
  List.filter
    (fun (p, m) -> p > 0. && m > 0.)
    (Obs.Cost_monitor.series_pairs t.monitor prim)

(* Newest-third holdout, bounded so the pooled O(n^2) inversion count stays
   cheap even with full 4096-pair rings. [pairs] is oldest first. *)
let split_holdout pairs =
  let len = List.length pairs in
  let h = Int.max 2 (Int.min 64 (len / 3)) in
  let cut = len - h in
  (List.filteri (fun i _ -> i < cut) pairs,
   List.filteri (fun i _ -> i >= cut) pairs)

let snapshot_of t note =
  { snap_version = t.version;
    snap_note = note;
    snap_corrections =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.corrections []
      |> List.sort compare;
    snap_overrides =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.overrides []
      |> List.sort (fun (a, _) (b, _) -> compare a b) }

let push_snapshot t note =
  t.history <- snapshot_of t note :: t.history;
  if List.length t.history > history_cap then
    t.history <- List.filteri (fun i _ -> i < history_cap) t.history

let apply_correction corrections prim p =
  match Hashtbl.find_opt corrections prim with
  | None -> p
  | Some (a, b) -> if p > 0. then exp (a +. (b *. log p)) else p

(* Candidate per-primitive GBRT refits, guarded per primitive on the sample
   holdout: an override must strictly beat the current corrected prediction
   on inversions (ties broken by error) before it is adopted into the
   candidate state. *)
let refit_candidates t fitted =
  List.filter_map
    (fun prim ->
      match Hashtbl.find_opt t.samples prim with
      | None -> None
      | Some ss ->
          let items = List.rev ss.items (* oldest first *) in
          let items =
            List.filter (fun s -> s.s_measured > 0. && s.s_predicted > 0.) items
          in
          if List.length items < min_refit_samples then None
          else begin
            let train_s, hold_s = split_holdout items in
            if List.length train_s < 2 then None
            else begin
              let features =
                Array.of_list (List.map (fun s -> s.s_input) train_s)
              in
              let labels =
                Array.of_list (List.map (fun s -> log s.s_measured) train_s)
              in
              match Granii_ml.Ml_dataset.make features labels with
              | exception Invalid_argument _ -> None
              | ds ->
                  let params =
                    { Gbrt.default_params with Gbrt.n_trees = 40 }
                  in
                  let model = Gbrt.fit ~params ds in
                  let n = List.length hold_s in
                  let meas =
                    Array.of_list (List.map (fun s -> s.s_measured) hold_s)
                  in
                  let cur =
                    Array.of_list
                      (List.map
                         (fun s -> corrected t ~prim s.s_predicted)
                         hold_s)
                  in
                  let cand =
                    Array.of_list
                      (List.map
                         (fun s -> exp (Gbrt.predict model s.s_input))
                         hold_s)
                  in
                  let cur_inv, _ = inversions cur meas n in
                  let cand_inv, _ = inversions cand meas n in
                  let cur_err = mean_abs_log_err cur meas n in
                  let cand_err = mean_abs_log_err cand meas n in
                  if
                    cand_inv < cur_inv
                    || (cand_inv = cur_inv && cand_err < cur_err -. 1e-12)
                  then Some (prim, model)
                  else None
            end
          end)
    fitted

let calibrate_pass t =
  let prims = Obs.Cost_monitor.prims t.monitor in
  let per_prim =
    List.filter_map
      (fun prim ->
        let pairs = positive_pairs t prim in
        if List.length pairs < t.min_pairs then None
        else
          let train, hold = split_holdout pairs in
          if List.length train < 2 then None
          else Some (prim, fit_affine train, hold))
      prims
  in
  if per_prim = [] then None
  else begin
    let fitted = List.map (fun (p, _, _) -> p) per_prim in
    let candidate = Hashtbl.copy t.corrections in
    List.iter (fun (prim, c, _) -> Hashtbl.replace candidate prim c) per_prim;
    let refits =
      if t.calibration = Refit then refit_candidates t fitted else []
    in
    (* pooled holdout: (prim, raw predicted, measured) *)
    let pooled =
      List.concat_map
        (fun (prim, _, hold) -> List.map (fun (p, m) -> (prim, p, m)) hold)
        per_prim
    in
    let n = List.length pooled in
    let meas = Array.of_list (List.map (fun (_, _, m) -> m) pooled) in
    let cur =
      Array.of_list
        (List.map (fun (prim, p, _) -> corrected t ~prim p) pooled)
    in
    let cand =
      Array.of_list
        (List.map
           (fun (prim, p, _) ->
             match List.assoc_opt prim refits with
             (* an accepted refit replaces the correction for its primitive;
                scoring the pooled slice must reflect that. The override's
                holdout prediction needs the stored input, which the pooled
                pair lacks — approximate with the correction-free raw value,
                the conservative choice (refits were already guarded
                per-primitive on their own sample holdout). *)
             | Some _ -> p
             | None -> apply_correction candidate prim p)
           pooled)
    in
    let cur_inv, _ = inversions cur meas n in
    let cand_inv, _ = inversions cand meas n in
    let cur_err = mean_abs_log_err cur meas n in
    let cand_err = mean_abs_log_err cand meas n in
    let accepted =
      cand_inv < cur_inv || (cand_inv = cur_inv && cand_err < cur_err -. 1e-12)
    in
    if accepted then begin
      push_snapshot t
        (Printf.sprintf "pre-pass fit of %d primitive(s)"
           (List.length fitted));
      List.iter
        (fun (prim, c, _) -> Hashtbl.replace t.corrections prim c)
        per_prim;
      List.iter
        (fun (prim, model) ->
          Hashtbl.replace t.overrides prim model;
          Hashtbl.remove t.corrections prim)
        refits;
      t.version <- t.version + 1
    end;
    Some
      { fitted_prims = fitted;
        holdout_pairs = n;
        current_inversions = cur_inv;
        candidate_inversions = cand_inv;
        current_err = cur_err;
        candidate_err = cand_err;
        accepted;
        refit_prims = (if accepted then List.map fst refits else []);
        version_after = t.version }
  end

let calibrate t =
  Obs.span t.obs ~cat:"calibrate" "calibrate.pass" @@ fun () ->
  let outcome = calibrate_pass t in
  Obs.count t.obs "calibrate.passes" 1;
  (match outcome with
  | None ->
      Obs.event t.obs Obs.Journal.Calibrate ~tag:"skipped"
        ~v:(float_of_int t.version)
  | Some o ->
      Obs.count t.obs
        (if o.accepted then "calibrate.accepted" else "calibrate.rejected")
        1;
      if o.refit_prims <> [] then
        Obs.count t.obs "calibrate.refit.accepted" (List.length o.refit_prims);
      Obs.gauge t.obs "calibrate.version" (float_of_int t.version);
      Obs.event t.obs Obs.Journal.Calibrate
        ~tag:(if o.accepted then "accepted" else "rejected")
        ~v:(float_of_int o.version_after));
  outcome

let record_sample t ~prim sample =
  let ss =
    match Hashtbl.find_opt t.samples prim with
    | Some ss -> ss
    | None ->
        let ss = { items = []; count = 0 } in
        Hashtbl.replace t.samples prim ss;
        ss
  in
  ss.items <- sample :: ss.items;
  ss.count <- ss.count + 1;
  if ss.count > 2 * sample_cap then begin
    ss.items <- List.filteri (fun i _ -> i < sample_cap) ss.items;
    ss.count <- sample_cap
  end

let observe ?input t ~prim ~predicted ~measured =
  Obs.Cost_monitor.record t.monitor ~prim ~predicted ~measured;
  (match input with
  | Some s_input ->
      record_sample t ~prim
        { s_input; s_predicted = predicted; s_measured = measured }
  | None -> ());
  t.observed <- t.observed + 1;
  let cadence_due = t.calibration <> Off && t.observed mod t.fit_every = 0 in
  let drift_due =
    match t.drift with
    | Some d when t.calibration <> Off && predicted > 0. && measured > 0. ->
        (* the detector watches the CORRECTED error: once an accepted pass
           fixes the predictions the stream quiets and the detector re-arms
           against the new regime instead of firing forever on the raw
           misprediction *)
        let err = Float.abs (log (corrected t ~prim predicted /. measured)) in
        if Obs.Drift.observe d err then begin
          Obs.count t.obs "calibrate.drift.fired" 1;
          Obs.event t.obs Obs.Journal.Drift
            ~tag:(Obs.Drift.name d ^ ":" ^ prim)
            ~v:(Obs.Drift.last_stat d);
          true
        end
        else false
    | _ -> false
  in
  (* a drift firing triggers an immediate out-of-cadence pass instead of
     waiting for the next fit_every boundary *)
  if cadence_due || drift_due then ignore (calibrate t)

(* ---- snapshots ---- *)

let snapshots t = t.history

let rollback t =
  match t.history with
  | [] -> false
  | snap :: rest ->
      Hashtbl.reset t.corrections;
      Hashtbl.reset t.overrides;
      List.iter
        (fun (k, v) -> Hashtbl.replace t.corrections k v)
        snap.snap_corrections;
      List.iter
        (fun (k, v) -> Hashtbl.replace t.overrides k v)
        snap.snap_overrides;
      t.history <- rest;
      (* the version advances: a rolled-back oracle predicts differently
         from the state it replaced, so caches keyed by [name] must miss *)
      t.version <- t.version + 1;
      true

(* ---- reporting ---- *)

type prim_report = {
  rp_prim : string;
  rp_runs : int;
  rp_pairs : int;
  rp_base_err : float;
  rp_corrected_err : float;
  rp_base_inv : int;
  rp_corrected_inv : int;
  rp_inv_pairs : int;
  rp_corrected : bool;
}

type report = {
  per_prim : prim_report list;
  pooled_base_inv : int;
  pooled_corrected_inv : int;
  pooled_pairs : int;
  report_version : int;
}

let report t =
  let prims = Obs.Cost_monitor.prims t.monitor in
  let summaries = Obs.Cost_monitor.summaries t.monitor in
  let per_prim =
    List.map
      (fun prim ->
        let pairs = positive_pairs t prim in
        let n = List.length pairs in
        let meas = Array.of_list (List.map snd pairs) in
        let raw = Array.of_list (List.map fst pairs) in
        let corr = Array.map (fun p -> corrected t ~prim p) raw in
        let base_inv, inv_pairs = inversions raw meas n in
        let corr_inv, _ = inversions corr meas n in
        let runs =
          match
            List.find_opt
              (fun (s : Obs.Cost_monitor.summary) ->
                s.Obs.Cost_monitor.prim = prim)
              summaries
          with
          | Some s -> s.Obs.Cost_monitor.n
          | None -> n
        in
        { rp_prim = prim;
          rp_runs = runs;
          rp_pairs = n;
          rp_base_err = mean_abs_log_err raw meas n;
          rp_corrected_err = mean_abs_log_err corr meas n;
          rp_base_inv = base_inv;
          rp_corrected_inv = corr_inv;
          rp_inv_pairs = inv_pairs;
          rp_corrected =
            Hashtbl.mem t.corrections prim || Hashtbl.mem t.overrides prim })
      prims
  in
  let pooled =
    List.concat_map
      (fun prim -> List.map (fun (p, m) -> (prim, p, m)) (positive_pairs t prim))
      prims
  in
  let n = List.length pooled in
  let meas = Array.of_list (List.map (fun (_, _, m) -> m) pooled) in
  let raw = Array.of_list (List.map (fun (_, p, _) -> p) pooled) in
  let corr =
    Array.of_list (List.map (fun (prim, p, _) -> corrected t ~prim p) pooled)
  in
  let pooled_base_inv, _ = inversions raw meas n in
  let pooled_corrected_inv, _ = inversions corr meas n in
  { per_prim;
    pooled_base_inv;
    pooled_corrected_inv;
    pooled_pairs = n;
    report_version = t.version }

let pp_report ppf (r : report) =
  Format.fprintf ppf "calibration v%d@\n" r.report_version;
  Format.fprintf ppf "%-18s %6s %6s %10s %10s %6s %6s %5s@\n" "primitive"
    "runs" "pairs" "base|lnE|" "corr|lnE|" "b.inv" "c.inv" "fit";
  List.iter
    (fun p ->
      Format.fprintf ppf "%-18s %6d %6d %10.4f %10.4f %6d %6d %5s@\n"
        p.rp_prim p.rp_runs p.rp_pairs p.rp_base_err p.rp_corrected_err
        p.rp_base_inv p.rp_corrected_inv
        (if p.rp_corrected then "yes" else "no"))
    r.per_prim;
  Format.fprintf ppf "pooled: %d pairs, inversions %d -> %d@\n" r.pooled_pairs
    r.pooled_base_inv r.pooled_corrected_inv
