module Hw = Granii_hw.Hw_profile
module Gf = Granii_graph.Graph_features
module Reorder = Granii_graph.Reorder

type format = Csr | Hybrid | Bsr | Cbm

type config = { strategy : Reorder.strategy; format : format }

let default = { strategy = Reorder.Identity; format = Csr }

let is_default c = c.strategy = Reorder.Identity && c.format = Csr

let format_to_string = function
  | Csr -> "csr"
  | Hybrid -> "hybrid"
  | Bsr -> "bsr"
  | Cbm -> "cbm"

let format_of_string = function
  | "csr" -> Some Csr
  | "hybrid" | "ell" -> Some Hybrid
  | "bsr" -> Some Bsr
  | "cbm" -> Some Cbm
  | _ -> None

let all_formats = [ Csr; Hybrid; Bsr; Cbm ]

let config_to_string c =
  Reorder.strategy_to_string c.strategy ^ "+" ^ format_to_string c.format

(* Default config first, so a strict-minimum argmin keeps the legacy path
   whenever no configuration is predicted strictly cheaper. *)
(* BSR tiles accumulate each row in ascending block/column order — the CSR
   kernel order only when rows are column-sorted. Reordered matrices keep
   source entry order (Reorder.permute_csr), so a non-identity strategy
   combined with Bsr can never honor the bitwise contract. Hybrid and Cbm
   preserve per-row storage order and compose with any ordering. *)
let legal c = c.format <> Bsr || c.strategy = Reorder.Identity

let all_configs =
  default
  :: List.concat_map
       (fun s ->
         List.filter_map
           (fun f ->
             let c = { strategy = s; format = f } in
             if is_default c || not (legal c) then None else Some c)
           all_formats)
       Reorder.all_strategies

(* How much a configuration is predicted to shrink the random-gather traffic
   of the g-kernels, as a fraction in [0, 1). The two axes compose as
   independent survival probabilities: traffic that the format does not save
   can still be saved by the ordering.

   - Format: the slab recovers up to [hybrid_gather_discount], scaled by the
     packing efficiency it would achieve on this degree distribution (a
     badly-packed slab is just CSR with padding).
   - Ordering: up to [locality_order_discount], scaled by a per-strategy
     quality proxy computed from the input statistics alone — degree-sort
     pays off with degree skew (Gini), BFS/RCM on near-regular, sparse
     inputs where a bandwidth-reducing order exists at all. *)
let order_quality (stats : Gf.t) = function
  | Reorder.Identity -> 0.
  | Reorder.Degree_sort -> Float.max 0. (Float.min 1. stats.Gf.degree_gini)
  | Reorder.Bfs | Reorder.Rcm ->
      Float.max 0.
        (Float.min 1. ((1. -. stats.Gf.density) *. (1. -. stats.Gf.degree_gini)))

let gather_discount (p : Hw.t) (stats : Gf.t) config =
  let fmt =
    match config.format with
    | Csr -> 0.
    | Hybrid -> p.Hw.hybrid_gather_discount *. stats.Gf.ell_packing
    (* the SDDMM-side credit: dense tiles read their [c] B-rows once per
       block instead of once per entry, proportionally to how full the
       blocks are. (The SpMM-side saving is modeled structurally by
       [Spmm_bsr]/[Spmm_cbm], not by this discount.) *)
    | Bsr -> p.Hw.bsr_gather_discount *. stats.Gf.block_fill
    | Cbm -> 0.
  in
  let ord = p.Hw.locality_order_discount *. order_quality stats config.strategy in
  1. -. ((1. -. fmt) *. (1. -. ord))

(* One-time layout work a configuration must amortize: a counting-scatter
   pass for the permuted re-index, another for the format conversion. The
   CBM factoring sorts row signatures — charged as two passes. *)
let layout_kernels ~n ~nnz config =
  let pass = Granii_hw.Kernel_model.Layout_pass { n; nnz } in
  (if config.strategy = Reorder.Identity then [] else [ pass ])
  @ (match config.format with
    | Csr -> []
    | Hybrid | Bsr -> [ pass ]
    | Cbm -> [ pass; pass ])

let pp ppf c = Format.pp_print_string ppf (config_to_string c)
