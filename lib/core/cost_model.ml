type t =
  | Learned of {
      profile : Granii_hw.Hw_profile.t;
      table : (string, Granii_ml.Gbrt.t) Hashtbl.t;
    }
  | Analytic of Granii_hw.Hw_profile.t
  | Flops

let train ?gbrt_params ~profile datasets =
  let table = Hashtbl.create 16 in
  List.iter
    (fun (name, ds) ->
      let params =
        match gbrt_params with
        | Some p -> p
        | None -> Granii_ml.Gbrt.default_params
      in
      Hashtbl.replace table name (Granii_ml.Gbrt.fit ~params ds))
    datasets;
  Learned { profile; table }

let analytic profile = Analytic profile

let flops_only = Flops

let kind = function
  | Learned _ -> `Learned
  | Analytic _ -> `Analytic
  | Flops -> `Flops

let find_model t prim_name =
  match t with
  | Learned { table; _ } -> Hashtbl.find_opt table prim_name
  | Analytic _ | Flops -> None

let name = function
  | Learned { profile; _ } -> "learned-" ^ profile.Granii_hw.Hw_profile.name
  | Analytic profile -> "analytic-" ^ profile.Granii_hw.Hw_profile.name
  | Flops -> "flops"

let profile = function
  | Learned { profile; _ } | Analytic profile -> Some profile
  | Flops -> None

module Sexp = Granii_ml.Sexp_lite

let save t path =
  match t with
  | Analytic _ | Flops ->
      invalid_arg "Cost_model.save: only learned models carry state"
  | Learned { profile; table } ->
      let entries =
        Hashtbl.fold
          (fun prim_name model acc ->
            Sexp.List [ Sexp.Atom prim_name; Granii_ml.Gbrt.to_sexp model ] :: acc)
          table []
      in
      let doc =
        Sexp.List
          (Sexp.Atom "cost_model"
          :: Sexp.Atom profile.Granii_hw.Hw_profile.name
          :: List.sort compare entries)
      in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Sexp.to_string doc))

let load path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Sexp.tagged "cost_model" (Sexp.of_string content) with
  | profile_name :: entries ->
      let profile = Granii_hw.Hw_profile.find (Sexp.atom profile_name) in
      let table = Hashtbl.create 16 in
      List.iter
        (fun entry ->
          match Sexp.list entry with
          | [ Sexp.Atom prim_name; model ] ->
              Hashtbl.replace table prim_name (Granii_ml.Gbrt.of_sexp model)
          | _ -> raise (Sexp.Parse_error "malformed cost-model entry"))
        entries;
      Learned { profile; table }
  | [] -> raise (Sexp.Parse_error "empty cost-model file")

let models = function
  | Learned { table; _ } -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  | Analytic _ | Flops -> []
