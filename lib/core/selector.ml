type choice = {
  candidate : Codegen.ccand;
  predicted_cost : float;
  selection_time : float;
  considered : int;
  used_cost_models : bool;
}

let scenario_of ~k_in ~k_out = if k_in >= k_out then Dim.Shrinking else Dim.Growing

let rank ~cost_model ~feats ~env ~iterations (compiled : Codegen.t) =
  let scenario = scenario_of ~k_in:env.Dim.k_in ~k_out:env.Dim.k_out in
  let cands = Codegen.for_scenario compiled scenario in
  let scored =
    List.map
      (fun (c : Codegen.ccand) ->
        (c, Cost_model.predict_plan cost_model feats ~env ~iterations c.Codegen.plan))
      cands
  in
  List.sort (fun (_, a) (_, b) -> compare a b) scored

let measure ?seed ?pool ~timing ~graph ~bindings ~env ~iterations
    (compiled : Codegen.t) =
  let scenario = scenario_of ~k_in:env.Dim.k_in ~k_out:env.Dim.k_out in
  let cands = Codegen.for_scenario compiled scenario in
  (* One shared-subtree cache across every candidate: plans of the same
     model overlap heavily (the reuse-vs-recompute structure differs in a
     few steps), so each common subexpression executes once per input
     instead of once per plan. Valid because all candidates run on the same
     (graph, bindings). *)
  let cache = Executor.cache_create () in
  let timed =
    List.map
      (fun (c : Codegen.ccand) ->
        let report =
          Executor.run ?seed ?pool ~cache ~keep_intermediates:false ~timing
            ~graph ~bindings c.Codegen.plan
        in
        ( c,
          Executor.total_time ~setup:report.Executor.setup_time
            ~iteration:report.Executor.iteration_time ~iterations ))
      cands
  in
  (List.sort (fun (_, a) (_, b) -> compare a b) timed, Executor.cache_stats cache)

let select ~cost_model ~feats ~env ~iterations compiled =
  let result, selection_time =
    Granii_hw.Timer.measure (fun () ->
        let scenario = scenario_of ~k_in:env.Dim.k_in ~k_out:env.Dim.k_out in
        match Codegen.for_scenario compiled scenario with
        | [] ->
            invalid_arg
              (Printf.sprintf "Selector.select: no candidate for scenario in %s"
                 compiled.Codegen.model_name)
        | [ only ] ->
            (* Fig. 7 fast path: the embedding-size guard already decides. *)
            ( only,
              Cost_model.predict_plan cost_model feats ~env ~iterations
                only.Codegen.plan,
              1,
              false )
        | several ->
            let scored =
              List.map
                (fun (c : Codegen.ccand) ->
                  ( c,
                    Cost_model.predict_plan cost_model feats ~env ~iterations
                      c.Codegen.plan ))
                several
            in
            let best, best_cost =
              List.fold_left
                (fun ((_, bc) as best) ((_, c) as cand) ->
                  if c < bc then cand else best)
                (List.hd scored) (List.tl scored)
            in
            (best, best_cost, List.length several, true))
  in
  let candidate, predicted_cost, considered, used_cost_models = result in
  { candidate; predicted_cost; selection_time; considered; used_cost_models }
