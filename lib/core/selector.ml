module Obs = Granii_obs.Obs

type choice = {
  candidate : Codegen.ccand;
  predicted_cost : float;
  selection_time : float;
  considered : int;
  used_cost_models : bool;
}

let scenario_of ~k_in ~k_out = if k_in >= k_out then Dim.Shrinking else Dim.Growing

let rank ~oracle ~feats ~env ~iterations (compiled : Codegen.t) =
  let scenario = scenario_of ~k_in:env.Dim.k_in ~k_out:env.Dim.k_out in
  let cands = Codegen.for_scenario compiled scenario in
  let scored =
    List.map
      (fun (c : Codegen.ccand) ->
        (c, Cost_oracle.predict_plan oracle feats ~env ~iterations c.Codegen.plan))
      cands
  in
  List.sort (fun (_, a) (_, b) -> compare a b) scored

let measure ?seed ?pool ?obs ~timing ~graph ~bindings ~env ~iterations
    (compiled : Codegen.t) =
  let scenario = scenario_of ~k_in:env.Dim.k_in ~k_out:env.Dim.k_out in
  let cands = Codegen.for_scenario compiled scenario in
  (* One cache-enabled engine across every candidate: plans of the same
     model overlap heavily (the reuse-vs-recompute structure differs in a
     few steps), so each common subexpression executes once per input
     instead of once per plan. Valid because all candidates run on the same
     (graph, bindings) — the engine's cache fingerprints the graph. *)
  let engine =
    Engine.create_exn ?pool ?obs
      { Engine.default_config with cache = true; keep_intermediates = false }
  in
  let timed =
    List.map
      (fun (c : Codegen.ccand) ->
        let report =
          Executor.exec ?seed ~engine ~timing ~graph ~bindings c.Codegen.plan
        in
        ( c,
          Executor.total_time ~setup:report.Executor.setup_time
            ~iteration:report.Executor.iteration_time ~iterations ))
      cands
  in
  let stats =
    match Engine.cache engine with
    | Some c -> Engine.cache_stats c
    | None -> (0, 0)
  in
  (List.sort (fun (_, a) (_, b) -> compare a b) timed, stats)

type localized_choice = {
  lchoice : choice;
  config : Locality.config;
  base_cost : float;
      (* predicted cost of the same candidate under the default config *)
}

(* Joint {ordering × format × candidate} argmin. The base prediction only
   depends on the candidate; each configuration's analytic layout
   adjustment is applied as a {e relative} factor — the analytic model is
   consulted for how much the layout changes the plan, and that ratio
   scales the cost model's own base prediction. For the [Analytic] model
   the two scales coincide and this reduces to [base + adjustment]; for a
   [Learned] model (GBRT log-runtime scale) an absolute analytic delta
   could dwarf the base and go negative. The profile-less Flops model has
   no layout terms at all — the minimum is then the legacy choice. The
   comparison is a strict [<] with the default configuration enumerated
   first, so a configuration must be predicted strictly cheaper to
   displace the legacy path. *)
let rank_localized ~oracle ~feats ~env ~iterations ?(configs = Locality.all_configs)
    (compiled : Codegen.t) =
  let scenario = scenario_of ~k_in:env.Dim.k_in ~k_out:env.Dim.k_out in
  let cands = Codegen.for_scenario compiled scenario in
  let profile = Cost_oracle.profile oracle in
  let threads = feats.Featurizer.threads in
  let stats = feats.Featurizer.stats in
  let scored =
    List.concat_map
      (fun (c : Codegen.ccand) ->
        let base =
          Cost_oracle.predict_plan oracle feats ~env ~iterations
            c.Codegen.plan
        in
        let analytic_base =
          match profile with
          | None -> 0.
          | Some p ->
              Cost_oracle.analytic_plan ~threads p ~env ~iterations
                c.Codegen.plan
        in
        List.map
          (fun config ->
            let adjusted =
              match profile with
              | None -> base
              | Some p ->
                  let adj =
                    Cost_oracle.plan_adjustment ~threads p ~stats ~env
                      ~iterations config c.Codegen.plan
                  in
                  if adj = 0. then base
                  else if analytic_base > 0. then
                    (* layout effects never flip a cost's sign: floor the
                       relative change well above zero *)
                    base
                    *. Float.max 0.05
                         ((analytic_base +. adj) /. analytic_base)
                  else base +. adj
            in
            (c, config, base, adjusted))
          configs)
      cands
  in
  List.stable_sort (fun (_, _, _, a) (_, _, _, b) -> compare a b) scored

(* Selection telemetry: a retro-dated "select" span carrying the measured
   selection_time (so trace and [choice.selection_time] agree exactly) plus
   the candidates-considered counter. *)
let record_selection obs ~name ~plan ~considered ~selection_time =
  match obs with
  | None -> ()
  | Some o ->
      (match o.Obs.trace with
      | None -> ()
      | Some t ->
          let sp = Obs.Trace.enter t ~cat:"engine" name in
          Obs.Trace.exit_ t ~dur:selection_time
            ~attrs:[ ("plan", plan); ("considered", string_of_int considered) ]
            sp);
      Obs.count o "select.runs" 1;
      Obs.count o "select.candidates.considered" considered;
      (match o.Obs.metrics with
      | None -> ()
      | Some m -> Obs.Metrics.observe m "select.time" selection_time)

let select_localized ?obs ~oracle ~feats ~env ~iterations ?configs compiled =
  let result, selection_time =
    Granii_hw.Timer.measure_wall (fun () ->
        match
          rank_localized ~oracle ~feats ~env ~iterations ?configs compiled
        with
        | [] ->
            invalid_arg
              (Printf.sprintf
                 "Selector.select_localized: no candidate for scenario in %s"
                 compiled.Codegen.model_name)
        | (c0, cfg0, base0, cost0) :: rest ->
            let (c, cfg, base, cost), considered =
              (* stable sort + default-first enumeration already favors the
                 legacy path on ties; fold with strict < for clarity *)
              List.fold_left
                (fun (((_, _, _, bc) as best), n) ((_, _, _, cc) as cand) ->
                  ((if cc < bc then cand else best), n + 1))
                ((c0, cfg0, base0, cost0), 1)
                rest
            in
            (c, cfg, base, cost, considered))
  in
  let candidate, config, base_cost, predicted_cost, considered = result in
  record_selection obs ~name:"select_localized"
    ~plan:candidate.Codegen.plan.Plan.name ~considered ~selection_time;
  { lchoice =
      { candidate;
        predicted_cost;
        selection_time;
        considered;
        used_cost_models = considered > 1 };
    config;
    base_cost }

let select ?obs ~oracle ~feats ~env ~iterations compiled =
  let result, selection_time =
    Granii_hw.Timer.measure_wall (fun () ->
        let scenario = scenario_of ~k_in:env.Dim.k_in ~k_out:env.Dim.k_out in
        match Codegen.for_scenario compiled scenario with
        | [] ->
            invalid_arg
              (Printf.sprintf "Selector.select: no candidate for scenario in %s"
                 compiled.Codegen.model_name)
        | [ only ] ->
            (* Fig. 7 fast path: the embedding-size guard already decides. *)
            ( only,
              Cost_oracle.predict_plan oracle feats ~env ~iterations
                only.Codegen.plan,
              1,
              false )
        | several ->
            let scored =
              List.map
                (fun (c : Codegen.ccand) ->
                  ( c,
                    Cost_oracle.predict_plan oracle feats ~env ~iterations
                      c.Codegen.plan ))
                several
            in
            let best, best_cost =
              List.fold_left
                (fun ((_, bc) as best) ((_, c) as cand) ->
                  if c < bc then cand else best)
                (List.hd scored) (List.tl scored)
            in
            (best, best_cost, List.length several, true))
  in
  let candidate, predicted_cost, considered, used_cost_models = result in
  record_selection obs ~name:"select" ~plan:candidate.Codegen.plan.Plan.name
    ~considered ~selection_time;
  { candidate; predicted_cost; selection_time; considered; used_cost_models }
