(** Runtime input featurizer (paper, Sec. IV-E1).

    Inspects the input graph once, concatenates the resulting statistics with
    the embedding sizes of the primitive instance being costed {e and the
    thread count the kernels will run with}, and feeds the vector to the
    learned cost models. The extraction is timed — it is one of the two
    runtime overheads the paper reports (Sec. VI-C1). *)

type t = private {
  graph_features : float array;
  stats : Granii_graph.Graph_features.t;
      (** the raw statistics behind [graph_features] — the locality model
          reads packing/skew/bandwidth from here instead of re-inspecting
          the graph *)
  extraction_time : float;  (** seconds of wall-clock spent extracting *)
  threads : int;
      (** thread count of the execution engine the prediction targets; a
          hardware-configuration feature, so the learned models can rank
          compositions differently at different parallelism levels *)
}

val extract : ?threads:int -> Granii_graph.Graph.t -> t
(** One O(n + nnz) pass over the graph. [threads] defaults to [1]
    (sequential execution). *)

val of_features : ?threads:int -> Granii_graph.Graph_features.t -> t
(** Wraps precomputed statistics (extraction time 0) — used when profiling
    already has the statistics. *)

val with_threads : t -> int -> t
(** Re-targets an extracted feature vector at a different thread count
    without re-inspecting the graph. *)

val primitive_input : t -> dims:float * float * float -> float array
(** Final model input: graph features, the log-scaled size triple of the
    primitive instance, and the log-scaled thread count. *)

val n_inputs : int
(** Length of the vectors {!primitive_input} produces. *)

val input_names : string array
