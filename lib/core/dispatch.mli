(** Kernel dispatch: concrete values and the primitive → kernel registry.

    This is the lowest layer of the execution stack
    ([Dispatch] < {!Engine} < {!Pass} < {!Executor}): it knows how to apply
    one {!Primitive.t} to concrete operand {!value}s and nothing about
    plans, phases, caching or timing. Implementations are looked up in a
    registry keyed by {e (backend, primitive name, operand format)} — the
    seam future accelerator backends and batched/sharded kernels plug into.
    The CPU kernels for every primitive (and the hybrid-format variants of
    the gather-bound g-kernels) are registered at module initialization. *)

type value =
  | Vdense of Granii_tensor.Dense.t
  | Vsparse of Granii_sparse.Csr.t
  | Vdiag of Granii_tensor.Vector.t

exception Execution_error of string
(** Raised on an argument-kind or arity mismatch (which would indicate an
    enumeration bug), and on unregistered primitives. *)

val shape_of : value -> int * int

val pp_value : Format.formatter -> value -> unit

val backing_arrays : value -> float array list
(** The float arrays backing a value — what the workspace arena pools.
    CSR structure arrays are ints shared with the mask/graph, so only the
    values array moves. *)

val shares_backing : float array -> value -> bool

(** {2 Execution context}

    What a kernel may use while running: the domain pool, the workspace
    arena, and the locality engine's localized-form lookup
    (physical-identity memo over iteration-stable sparse matrices). Built by
    {!Executor} from an {!Engine.t}; {!plain} is the bare sequential
    context. *)

type form =
  | Fhybrid of Granii_sparse.Hybrid.t
  | Fbsr of Granii_sparse.Bsr.t
  | Fcbm of Granii_sparse.Cbm.t
      (** A localized physical form of a sparse operand — what the [Pass]
          layout bracket converted a graph matrix into under the engine's
          locality config. *)

type ctx = {
  pool : Granii_tensor.Parallel.t option;
  ws : Granii_tensor.Workspace.t option;
  localize : (Granii_sparse.Csr.t -> form option) option;
}

val plain : ctx

(** {2 Registry} *)

type backend = Cpu

type fmt = Fmt_csr | Fmt_hybrid | Fmt_bsr | Fmt_cbm

type impl = ctx -> Granii_graph.Graph.t -> Primitive.t -> value array -> value
(** One kernel implementation. The primitive is passed through so one entry
    can serve a whole family (e.g. both [Diag_scale] sides). *)

val register : ?backend:backend -> ?fmt:fmt -> string -> impl -> unit
(** [register name impl] binds [impl] for primitives whose
    {!Primitive.name} is [name] (defaults: [Cpu], [Fmt_csr]). Re-registering
    replaces the previous implementation. *)

val lookup : ?backend:backend -> fmt:fmt -> string -> impl option
(** Non-CSR formats fall back to the [Fmt_csr] entry when no format-specific
    kernel is registered, so only primitives with a genuine localized
    variant need extra registrations. *)

val registered : ?backend:backend -> unit -> string list
(** Registry keys for a backend, sorted — a diagnostic view. *)

val fmt_to_string : fmt -> string

val format_of : ctx -> Primitive.t -> value array -> fmt
(** The operand format {!exec} would dispatch a step under — exposed so the
    telemetry layer can attribute a span to the kernel that actually ran. *)

val exec :
  ?backend:backend -> ctx -> Primitive.t -> Granii_graph.Graph.t ->
  value array -> value
(** Execute one primitive: pick the operand format (non-CSR when the context
    has a registered localized form for the step's sparse operand), look the
    implementation up and run it. Raises {!Execution_error} when no
    implementation is registered. *)

val kernels_of_step :
  Primitive.t -> Granii_graph.Graph.t -> value array -> value ->
  Granii_hw.Kernel_model.kernel list
(** The analytic kernels of one executed step, sized from the actual operand
    values (so sampling or precomputed sparse intermediates are charged
    their true nnz) — the basis of [Simulate]-mode timing. *)

(**/**)

val diag_to_csr : ?ws:Granii_tensor.Workspace.t -> float array -> Granii_sparse.Csr.t
