(** The cost oracle: one self-correcting layer for every runtime cost
    prediction (DESIGN.md §15).

    Prediction used to be smeared across four modules — the analytic
    roofline ({!Granii_hw.Kernel_model}), the per-primitive GBRTs
    ({!Cost_model}), the layout adjustment (formerly in {!Locality}) and the
    report-only accuracy monitor ({!Granii_obs.Obs.Cost_monitor}). An oracle
    wraps a base predictor (analytic | learned | flops) and closes the loop:
    live (predicted, measured) pairs flow into its monitor via {!observe},
    and every [fit_every] observations a calibration pass fits a
    per-primitive affine correction in log space (and, under [Refit],
    incrementally refits per-primitive GBRTs from the stored inputs). A
    candidate model is swapped in only when it passes the A/B guard: it must
    strictly reduce Kendall rank inversions (ties broken by mean |log
    error|) on a held-out slice of the newest pairs — the quantity plan
    selection actually depends on. Every accepted swap pushes a versioned
    snapshot, so a regressing oracle can be rolled back.

    With calibration {!Off} — the default — an oracle is a pure reader of
    its base model: no correction entries exist and every prediction is
    bitwise identical to the pre-oracle [Cost_model] code paths. *)

(** {1 Calibration policy} *)

type calibration =
  | Off     (** never fit; predictions are exactly the base model's *)
  | Affine  (** per-primitive [exp (a + b ln p)] corrections only *)
  | Refit   (** affine corrections plus incremental per-primitive GBRT
                refits from stored featurized inputs *)

val calibration_to_string : calibration -> string
(** ["off"] | ["affine"] | ["refit"] — the engine config axis rendering. *)

val calibration_of_string : string -> calibration option

(** {1 Construction} *)

type t

val of_model :
  ?calibration:calibration -> ?fit_every:int -> ?min_pairs:int ->
  ?obs:Granii_obs.Obs.t -> ?monitor:Granii_obs.Obs.Cost_monitor.t ->
  ?drift:Granii_obs.Obs.Drift.t -> Cost_model.t -> t
(** Wrap a base predictor. [calibration] defaults to {!Off}; [fit_every]
    (default [64]) is how many {!observe} calls separate automatic
    calibration passes; [min_pairs] (default [8]) is the fewest positive
    pairs a primitive needs before it participates in a fit. [monitor] is
    the pair store — inject the engine's live
    {!Granii_obs.Obs.Cost_monitor} to calibrate from execution telemetry; a
    fresh private monitor is created otherwise. [obs] (default
    {!Granii_obs.Obs.disabled}) receives the [calibrate.*] spans and
    counters plus the journal's drift/calibrate events. [drift] overrides
    the drift detector watching the corrected |log error| stream; by
    default a calibrating oracle gets
    [Obs.Drift.create ~level:(log 2.) "oracle.logerr"] (sustained 2x
    average misprediction fires), and an oracle with [calibration = Off]
    gets none. A firing triggers an immediate out-of-cadence calibration
    pass (see {!observe}). Raises [Invalid_argument] when [fit_every < 1]
    or [min_pairs < 4]. *)

val analytic : Granii_hw.Hw_profile.t -> t
(** [of_model (Cost_model.analytic p)] — the noise-free roofline ablation. *)

val flops_only : unit -> t
(** [of_model Cost_model.flops_only] — the FLOP-count ablation. *)

val load : string -> t
(** [of_model (Cost_model.load path)]. *)

val save : t -> string -> unit
(** Persist the {e base} model ({!Cost_model.save}; raises
    [Invalid_argument] on ablation bases). Corrections and overrides are
    runtime state and are not persisted. *)

(** {1 Accessors} *)

val base : t -> Cost_model.t

val calibration : t -> calibration

val profile : t -> Granii_hw.Hw_profile.t option
(** The base model's hardware profile; [None] for the flops ablation. *)

val name : t -> string
(** The base model's name, suffixed ["#v<version>"] once a calibration pass
    has been accepted — so plan caches keyed by model name are naturally
    invalidated when the oracle's predictions change. *)

val version : t -> int
(** Accepted calibration passes so far; [0] = pristine base model. *)

val monitor : t -> Granii_obs.Obs.Cost_monitor.t
(** The pair store {!observe} feeds (physically the engine's live monitor
    when one was injected). *)

val observed : t -> int
(** Total {!observe} calls. *)

val drift : t -> Granii_obs.Obs.Drift.t option
(** The drift detector watching the corrected |log error| stream, when the
    oracle has one. *)

val correction : t -> string -> (float * float) option
(** The current [(a, b)] log-space correction for a primitive name, if a
    calibration pass installed one. *)

val corrected : t -> prim:string -> float -> float
(** Apply the current correction for [prim] to a raw base prediction:
    [exp (a +. b *. ln p)], or [p] unchanged when no correction exists (or
    [p <= 0]). *)

(** {1 Prediction} *)

val predict : t -> Featurizer.t -> env:Dim.env -> Primitive.t -> float
(** Predicted runtime of one primitive instance: the per-primitive GBRT
    override if a refit installed one, else the base model (learned GBRT,
    analytic roofline with the featurized thread count, or FLOP count),
    then the affine correction. With no correction and no override this is
    bit-for-bit the old [Cost_model.predict]. *)

val predict_plan :
  t -> Featurizer.t -> env:Dim.env -> iterations:int -> Plan.t -> float
(** Setup steps once, per-iteration steps [iterations] times, each through
    {!predict}; then the plan-level correction (keyed ["plan:<name>"], fed
    by the trainer's per-batch stream) if one exists. *)

val analytic_plan :
  threads:int -> Granii_hw.Hw_profile.t -> env:Dim.env -> iterations:int ->
  Plan.t -> float
(** The noise-free analytic plan cost, uncorrected — the reference scale the
    selector's relative layout adjustment is computed against. *)

val predict_kernels :
  t -> threads:int -> Granii_hw.Kernel_model.kernel list -> float
(** Analytic time of already-instantiated kernels under the base model's
    profile ({!Granii_hw.Hw_profile.cpu} for the flops ablation) —
    {e uncorrected}, because this produces the [predicted] half of the
    monitor pairs the corrections are fitted against (a corrected feed
    would chase its own tail). Used by the executor's cost monitor. *)

val kernel_time :
  ?threads:int -> ?gather_discount:float -> Granii_hw.Hw_profile.t ->
  Granii_hw.Kernel_model.kernel -> float
(** Direct passthrough to the analytic kernel model — the only sanctioned
    spelling outside [lib/hw] (CI bans direct [Kernel_model.time] calls
    elsewhere, so every analytic estimate is attributable to this layer). *)

(** {1 Layout adjustment} (moved from [Locality]; the structural parts —
    {!Locality.layout_kernels}, {!Locality.gather_discount} — remain there) *)

val layout_time :
  ?threads:int -> Granii_hw.Hw_profile.t -> n:int -> nnz:int ->
  Locality.config -> float
(** Analytic cost of the one-time {!Locality.layout_kernels} passes. *)

val kernel_delta :
  ?threads:int -> Granii_hw.Hw_profile.t -> Granii_graph.Graph_features.t ->
  Locality.config -> Granii_hw.Kernel_model.kernel -> float
(** Predicted cost change (localized minus baseline) for one kernel; nonzero
    only for the gather-bound g-kernels (SpMM, SDDMM). *)

val plan_adjustment :
  ?threads:int -> Granii_hw.Hw_profile.t ->
  stats:Granii_graph.Graph_features.t -> env:Dim.env -> iterations:int ->
  Locality.config -> Plan.t -> float
(** Additive adjustment to the analytic plan cost for running the plan under
    a locality configuration: layout setup plus phase-weighted kernel
    deltas. Exactly [0.] for {!Locality.default}. *)

(** {1 The feedback loop} *)

val observe :
  ?input:float array -> t -> prim:string -> predicted:float ->
  measured:float -> unit
(** Feed one (predicted, measured) pair — [predicted] must be the {e raw}
    (uncorrected) prediction. The pair lands in {!monitor}; [input] (the
    featurized model input) additionally lands in the refit sample store.
    Every [fit_every] calls, when calibration is not {!Off}, a calibration
    pass runs inline. Each positive pair also feeds the oracle's drift
    detector with the {e corrected} |log error|; when the detector fires,
    a [calibrate.drift.fired] counter and a journal [Drift] event are
    emitted and a calibration pass runs immediately, without waiting for
    the [fit_every] cadence. *)

type pass_outcome = {
  fitted_prims : string list;   (** primitives with enough pairs to fit *)
  holdout_pairs : int;          (** size of the pooled holdout slice *)
  current_inversions : int;     (** pooled Kendall inversions, current model *)
  candidate_inversions : int;   (** same, under the candidate corrections *)
  current_err : float;          (** pooled mean |ln (corrected/measured)| *)
  candidate_err : float;
  accepted : bool;              (** did the candidate pass the A/B guard *)
  refit_prims : string list;    (** primitives whose GBRT override was
                                    accepted this pass ([Refit] only) *)
  version_after : int;
}

val calibrate : t -> pass_outcome option
(** Run one calibration pass now (also called automatically by {!observe}).
    [None] when no primitive has [min_pairs] positive pairs yet. Holdout =
    the newest third of each participating primitive's pairs (at least 2,
    at most 64 per primitive), pooled across primitives; the candidate is
    installed only if [accepted]. Emits [calibrate.passes] /
    [calibrate.accepted] / [calibrate.rejected] counters, the
    [calibrate.version] gauge and a ["calibrate.pass"] span on the oracle's
    [obs] sink. *)

(** {1 Versioned snapshots} *)

type snapshot = {
  snap_version : int;  (** the version the snapshot captured *)
  snap_note : string;
  snap_corrections : (string * (float * float)) list;
  snap_overrides : (string * Granii_ml.Gbrt.t) list;
}

val snapshots : t -> snapshot list
(** Pre-swap states of every accepted pass, newest first (bounded: the 8
    most recent are kept). *)

val rollback : t -> bool
(** Restore the newest snapshot (the state before the last accepted pass),
    consuming it; the version still advances, so caches never confuse the
    rolled-back oracle with the state it replaced. [false] when there is no
    snapshot. *)

(** {1 Reporting} (the [granii stats] calibration table) *)

type prim_report = {
  rp_prim : string;
  rp_runs : int;          (** total runs recorded (beyond the ring) *)
  rp_pairs : int;         (** positive pairs currently held *)
  rp_base_err : float;    (** mean |ln (raw/measured)| *)
  rp_corrected_err : float;  (** same, after the current correction *)
  rp_base_inv : int;      (** within-primitive inversions, raw *)
  rp_corrected_inv : int;
  rp_inv_pairs : int;     (** comparable pairs behind the inversion counts *)
  rp_corrected : bool;    (** a correction or override is installed *)
}

type report = {
  per_prim : prim_report list;  (** sorted by primitive name *)
  pooled_base_inv : int;    (** cross-primitive inversions, raw — the
                                ranking signal selection depends on *)
  pooled_corrected_inv : int;
  pooled_pairs : int;
  report_version : int;
}

val report : t -> report

val pp_report : Format.formatter -> report -> unit
