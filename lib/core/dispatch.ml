module Dense = Granii_tensor.Dense
module Vector = Granii_tensor.Vector
module Workspace = Granii_tensor.Workspace
module Csr = Granii_sparse.Csr
module Spmm = Granii_sparse.Spmm
module Sddmm = Granii_sparse.Sddmm
module Sparse_ops = Granii_sparse.Sparse_ops
module Hybrid = Granii_sparse.Hybrid
module Bsr = Granii_sparse.Bsr
module Cbm = Granii_sparse.Cbm
module K = Granii_hw.Kernel_model

type value =
  | Vdense of Dense.t
  | Vsparse of Csr.t
  | Vdiag of Vector.t

exception Execution_error of string

let err fmt = Format.kasprintf (fun s -> raise (Execution_error s)) fmt

let shape_of = function
  | Vdense d -> Dense.dims d
  | Vsparse s -> (s.Csr.n_rows, s.Csr.n_cols)
  | Vdiag v -> (Array.length v, Array.length v)

let pp_value ppf = function
  | Vdense d ->
      let r, c = Dense.dims d in
      Format.fprintf ppf "dense %dx%d" r c
  | Vsparse s -> Csr.pp ppf s
  | Vdiag v -> Format.fprintf ppf "diag n=%d" (Array.length v)

let dense = function Vdense d -> d | v -> err "expected dense, got %a" pp_value v
let sparse = function Vsparse s -> s | v -> err "expected sparse, got %a" pp_value v
let diag = function Vdiag d -> d | v -> err "expected diagonal, got %a" pp_value v

(* Backing float arrays of a value — what the workspace pools. CSR structure
   arrays are ints and shared with the mask/graph, so only values move. *)
let backing_arrays = function
  | Vdense d -> [ d.Dense.data ]
  | Vsparse s -> ( match s.Csr.values with Some v -> [ v ] | None -> [] )
  | Vdiag v -> [ v ]

let shares_backing a v = List.exists (fun b -> b == a) (backing_arrays v)

(* ---- execution context ---- *)

(* A localized physical form of a sparse operand: what the Pass layout
   bracket converted the graph's matrix into for this engine config. *)
type form =
  | Fhybrid of Hybrid.t
  | Fbsr of Bsr.t
  | Fcbm of Cbm.t

type ctx = {
  pool : Granii_tensor.Parallel.t option;
  ws : Workspace.t option;
  localize : (Csr.t -> form option) option;
}

let plain = { pool = None; ws = None; localize = None }

let form_of ctx m =
  match ctx.localize with None -> None | Some f -> f m

(* ---- shared kernel helpers ---- *)

let diag_to_csr ?ws v =
  (* the diagonal's CSR structure is known in closed form: row i holds the
     single entry (i, i), so row_ptr is 0..n and col_idx the identity — no
     COO staging or sort needed *)
  let n = Array.length v in
  let row_ptr = Array.init (n + 1) (fun i -> i) in
  let col_idx = Array.init n (fun i -> i) in
  let values = Workspace.alloc_uninit ws n in
  Array.blit v 0 values 0 n;
  Csr.make ~n_rows:n ~n_cols:n ~row_ptr ~col_idx ~values:(Some values)

(* GAT's attention function: per stored edge (i, j),
   leaky_relu(a_src . feats_i + a_dst . feats_j). *)
let edge_score ?pool ?ws mask feats a_src a_dst =
  let s = Dense.matmul ?pool ?ws feats a_src and t = Dense.matmul ?pool ?ws feats a_dst in
  let count = Csr.nnz mask in
  let out = Workspace.alloc_uninit ws count in
  (* index the score columns directly ([s] and [t] are n x 1): a [Dense.get]
     call per edge would box its float result in the inner loop *)
  let sd = s.Dense.data and td = t.Dense.data in
  Granii_tensor.Parallel.rows_weighted ?pool ~prefix:mask.Csr.row_ptr (fun lo hi ->
      for i = lo to hi - 1 do
        let si = Array.unsafe_get sd i in
        for p = mask.Csr.row_ptr.(i) to mask.Csr.row_ptr.(i + 1) - 1 do
          let x = si +. Array.unsafe_get td (Array.unsafe_get mask.Csr.col_idx p) in
          out.(p) <- (if x > 0. then x else 0.2 *. x)
        done
      done);
  Workspace.give_back ws s.Dense.data;
  Workspace.give_back ws t.Dense.data;
  Csr.with_values mask out

let apply_nonlinear ?pool ?ws kind d =
  match kind with
  | Matrix_ir.Relu -> Dense.relu ?pool ?ws d
  | Matrix_ir.Leaky_relu -> Dense.leaky_relu ?pool ?ws d
  | Matrix_ir.Sigmoid -> Dense.sigmoid ?pool ?ws d
  | Matrix_ir.Log_softmax -> Dense.log_softmax_rows ?pool ?ws d
  | Matrix_ir.Edge_softmax -> err "edge_softmax reached dense map"

(* ---- kernel registry ----

   One implementation per (backend, primitive, operand format). The format
   axis is how the locality engine swaps the g-kernels to the hybrid
   slab+tail, block-sparse or neighbor-dedup layouts without the dispatch
   loop knowing; the backend axis is the seam future accelerator backends
   plug into. Non-CSR entries fall back to [Fmt_csr] when absent, so only
   the primitives that actually have a format-specific kernel need a second
   registration. *)

type backend = Cpu

type fmt = Fmt_csr | Fmt_hybrid | Fmt_bsr | Fmt_cbm

type impl = ctx -> Granii_graph.Graph.t -> Primitive.t -> value array -> value

let backend_to_string = function Cpu -> "cpu"

let fmt_to_string = function
  | Fmt_csr -> "csr"
  | Fmt_hybrid -> "hybrid"
  | Fmt_bsr -> "bsr"
  | Fmt_cbm -> "cbm"

let registry : (string, impl) Hashtbl.t = Hashtbl.create 64

let key backend fmt name =
  backend_to_string backend ^ "/" ^ fmt_to_string fmt ^ "/" ^ name

let register ?(backend = Cpu) ?(fmt = Fmt_csr) name impl =
  Hashtbl.replace registry (key backend fmt name) impl

let lookup ?(backend = Cpu) ~fmt name =
  match Hashtbl.find_opt registry (key backend fmt name) with
  | Some impl -> Some impl
  | None when fmt <> Fmt_csr ->
      Hashtbl.find_opt registry (key backend Fmt_csr name)
  | None -> None

let registered ?(backend = Cpu) () =
  Hashtbl.fold
    (fun k _ acc ->
      match String.index_opt k '/' with
      | Some i when String.sub k 0 i = backend_to_string backend -> k :: acc
      | _ -> acc)
    registry []
  |> List.sort_uniq compare

(* The format a step executes under: non-CSR only when the locality engine
   has a registered localized form for the step's sparse operand (the lookup
   is by physical identity, so per-iteration-fresh values fall back to
   CSR). *)
let fmt_of_form = function
  | Fhybrid _ -> Fmt_hybrid
  | Fbsr _ -> Fmt_bsr
  | Fcbm _ -> Fmt_cbm

let format_of ctx (prim : Primitive.t) (args : value array) =
  match ctx.localize with
  | None -> Fmt_csr
  | Some f -> (
      let form_fmt m =
        match f m with Some frm -> Some (fmt_of_form frm) | None -> None
      in
      match (prim, args) with
      | Primitive.Spmm _, [| Vsparse m; _ |] -> (
          match form_fmt m with Some fmt -> fmt | None -> Fmt_csr)
      | Primitive.Sddmm_rank1, [| _; Vsparse m; _ |] -> (
          match form_fmt m with Some fmt -> fmt | None -> Fmt_csr)
      | _ -> Fmt_csr)

let exec ?(backend = Cpu) ctx (prim : Primitive.t) graph (args : value array) =
  let fmt = format_of ctx prim args in
  match lookup ~backend ~fmt (Primitive.name prim) with
  | Some impl -> impl ctx graph prim args
  | None ->
      err "no %s kernel registered for %s" (backend_to_string backend)
        (Primitive.name prim)

(* ---- default CPU kernels ---- *)

let bad_arity prim args =
  err "primitive %a applied to %d arguments" Primitive.pp prim (Array.length args)

let () =
  let reg name f = register name f in
  reg "gemm" (fun { pool; ws; _ } _g prim args ->
      match args with
      | [| a; b |] -> Vdense (Dense.matmul ?pool ?ws (dense a) (dense b))
      | _ -> bad_arity prim args);
  let spmm_csr : impl = fun { pool; ws; _ } _g prim args ->
    match args with
    | [| a; b |] -> Vdense (Spmm.run ?pool ?ws (sparse a) (dense b))
    | _ -> bad_arity prim args
  in
  (* Localized SpMM: run the kernel of whatever form the layout bracket
     registered for this operand; CSR when the memo misses (per-iteration
     fresh values). *)
  let spmm_form : impl = fun ctx _g prim args ->
    match args with
    | [| a; b |] -> (
        let m = sparse a in
        match form_of ctx m with
        | Some (Fhybrid h) ->
            Vdense (Hybrid.spmm ?pool:ctx.pool ?ws:ctx.ws h (dense b))
        | Some (Fbsr bm) ->
            Vdense (Bsr.spmm ?pool:ctx.pool ?ws:ctx.ws bm (dense b))
        | Some (Fcbm cm) ->
            Vdense (Cbm.spmm ?pool:ctx.pool ?ws:ctx.ws cm (dense b))
        | None -> Vdense (Spmm.run ?pool:ctx.pool ?ws:ctx.ws m (dense b)))
    | _ -> bad_arity prim args
  in
  (* Primitive.name splits SpMM by weightedness; the CPU kernel serves both *)
  List.iter
    (fun name ->
      reg name spmm_csr;
      register ~fmt:Fmt_hybrid name spmm_form;
      register ~fmt:Fmt_bsr name spmm_form;
      register ~fmt:Fmt_cbm name spmm_form)
    [ "spmm_w"; "spmm_u" ];
  reg "dspmm" (fun { pool; ws; _ } _g prim args ->
      match args with
      | [| a; b |] -> Vdense (Spmm.run_transposed ?pool ?ws (dense a) (sparse b))
      | _ -> bad_arity prim args);
  reg "sddmm_rank1" (fun { pool; ws; _ } _g prim args ->
      match args with
      | [| dl; a; dr |] -> Vsparse (Sddmm.rank1 ?pool ?ws (sparse a) (diag dl) (diag dr))
      | _ -> bad_arity prim args);
  register ~fmt:Fmt_hybrid "sddmm_rank1" (fun ctx _g prim args ->
      match args with
      | [| dl; a; dr |] -> (
          let m = sparse a in
          match form_of ctx m with
          | Some (Fhybrid h) ->
              Vsparse (Hybrid.rank1 ?pool:ctx.pool ?ws:ctx.ws h (diag dl) (diag dr))
          | Some (Fbsr _) | Some (Fcbm _) | None ->
              (* rank-1 gains nothing from tiles or dedup: the k=1 dot is
                 the value read itself *)
              Vsparse (Sddmm.rank1 ?pool:ctx.pool ?ws:ctx.ws m (diag dl) (diag dr)))
      | _ -> bad_arity prim args);
  reg "diag_scale" (fun { pool; ws; _ } _g prim args ->
      match (prim, args) with
      | Primitive.Diag_scale { side = `Left }, [| d; a |] ->
          Vsparse (Sparse_ops.scale_rows ?pool ?ws (diag d) (sparse a))
      | Primitive.Diag_scale { side = `Right }, [| a; d |] ->
          Vsparse (Sparse_ops.scale_cols ?pool ?ws (sparse a) (diag d))
      | _ -> bad_arity prim args);
  reg "row_broadcast" (fun { pool; ws; _ } _g prim args ->
      match args with
      | [| d; x |] -> Vdense (Dense.row_broadcast ?pool ?ws (diag d) (dense x))
      | _ -> bad_arity prim args);
  reg "col_broadcast" (fun { pool; ws; _ } _g prim args ->
      match args with
      | [| x; d |] -> Vdense (Dense.col_broadcast ?pool ?ws (dense x) (diag d))
      | _ -> bad_arity prim args);
  reg "diag_combine" (fun { ws; _ } _g prim args ->
      match args with
      | [| a; b |] ->
          let da = diag a and db = diag b in
          let n = Array.length da in
          if Array.length db <> n then err "diag_combine: dimension mismatch";
          let out = Workspace.alloc_uninit ws n in
          for i = 0 to n - 1 do
            out.(i) <- da.(i) *. db.(i)
          done;
          Vdiag out
      | _ -> bad_arity prim args);
  reg "sparse_add" (fun { ws; _ } _g _prim parts ->
      let as_csr = function
        | Vdiag d -> diag_to_csr ?ws d
        | Vsparse s -> s
        | Vdense _ -> err "sparse_add over a dense operand"
      in
      match Array.length parts with
      | 0 -> err "sparse_add with no operands"
      | len ->
          let acc = ref (as_csr parts.(0)) in
          for i = 1 to len - 1 do
            acc := Sparse_ops.add !acc (as_csr parts.(i))
          done;
          Vsparse !acc);
  reg "dense_add" (fun { pool; ws; _ } _g _prim parts ->
      match Array.length parts with
      | 0 -> err "dense_add with no operands"
      | len ->
          let acc = ref (dense parts.(0)) in
          for i = 1 to len - 1 do
            let next = Dense.add ?pool ?ws !acc (dense parts.(i)) in
            (* fold temporaries (never the first operand, which a caller may
               still hold) go straight back to the arena *)
            if i > 1 then Workspace.give_back ws !acc.Dense.data;
            acc := next
          done;
          Vdense !acc);
  reg "edge_score" (fun { pool; ws; _ } _g prim args ->
      match args with
      | [| mask; feats; a_src; a_dst |] ->
          Vsparse
            (edge_score ?pool ?ws (sparse mask) (dense feats) (dense a_src)
               (dense a_dst))
      | _ -> bad_arity prim args);
  reg "edge_softmax" (fun { pool; ws; _ } _g prim args ->
      match args with
      | [| a |] -> Vsparse (Sparse_ops.row_softmax ?pool ?ws (sparse a))
      | _ -> bad_arity prim args);
  reg "dense_map" (fun { pool; ws; _ } _g prim args ->
      match (prim, args) with
      | Primitive.Dense_map { kind; _ }, [| a |] ->
          Vdense (apply_nonlinear ?pool ?ws kind (dense a))
      | _ -> bad_arity prim args);
  let degree : impl = fun _ctx graph prim args ->
    match (prim, args) with
    | Primitive.Degree { power; _ }, [| _graph_token |] -> (
        match power with
        | Primitive.Inv_sqrt -> Vdiag (Granii_graph.Graph.norm_inv_sqrt graph)
        | Primitive.Inv ->
            Vdiag
              (Granii_tensor.Vector.pow (-1.)
                 (Granii_graph.Graph.degrees_tilde graph)))
    | _ -> bad_arity prim args
  in
  (* binned vs rowptr is a cost-model distinction; one value-level kernel *)
  List.iter (fun name -> reg name degree) [ "degree_rowptr"; "degree_binned" ]

(* Kernels of a step, sized from the actual operand values (so sampling or
   precomputed sparse intermediates are charged their true nnz). *)
let kernels_of_step (prim : Primitive.t) (graph : Granii_graph.Graph.t)
    (args : value array) result =
  let nnz_of v = Csr.nnz (sparse v) in
  let dense_dims v = Dense.dims (dense v) in
  match (prim, args) with
  | Primitive.Gemm _, [| a; b |] ->
      let m, k = dense_dims a and _, n = dense_dims b in
      [ K.Gemm { m; k; n } ]
  | Primitive.Spmm { weighted; _ }, [| a; b |] ->
      let rows = (sparse a).Csr.n_rows and _, k = dense_dims b in
      [ K.Spmm { rows; nnz = nnz_of a; k; weighted } ]
  | Primitive.Dense_sparse_mm _, [| a; b |] ->
      let rows, k = dense_dims a in
      [ K.Dense_sparse_mm { rows; nnz = nnz_of b; cols = (sparse b).Csr.n_cols; k } ]
  | Primitive.Sddmm_rank1, [| _; a; _ |] -> [ K.Sddmm { nnz = nnz_of a; k = 1 } ]
  | Primitive.Diag_scale _, [| a; b |] ->
      let nnz = match a with Vsparse s -> Csr.nnz s | _ -> nnz_of b in
      [ K.Diag_scale_sparse { nnz } ]
  | Primitive.Row_broadcast _, [| _; x |] ->
      let n, k = dense_dims x in
      [ K.Row_broadcast { n; k } ]
  | Primitive.Col_broadcast _, [| x; _ |] ->
      let n, k = dense_dims x in
      [ K.Col_broadcast { n; k } ]
  | Primitive.Diag_combine, [| a; _ |] -> [ K.Diag_combine { n = Array.length (diag a) } ]
  | Primitive.Sparse_add _, _ ->
      let nnz = match result with Vsparse s -> Csr.nnz s | _ -> 0 in
      [ K.Diag_scale_sparse { nnz } ]
  | Primitive.Dense_add _, parts when Array.length parts > 0 ->
      let n, k = dense_dims parts.(0) in
      [ K.Elementwise { n; k; flops_per_elt = float_of_int (Array.length parts - 1) } ]
  | Primitive.Edge_score _, [| mask; feats; _; _ |] ->
      let n, k = dense_dims feats in
      [ K.Gemm { m = n; k; n = 1 };
        K.Gemm { m = n; k; n = 1 };
        K.Sddmm { nnz = nnz_of mask; k = 1 } ]
  | Primitive.Edge_softmax, [| a |] -> [ K.Edge_softmax { nnz = nnz_of a } ]
  | Primitive.Dense_map { kind; _ }, [| a |] ->
      let n, k = dense_dims a in
      let flops_per_elt =
        match kind with
        | Matrix_ir.Relu -> 1.
        | Matrix_ir.Leaky_relu -> 2.
        | Matrix_ir.Sigmoid -> 10.
        | Matrix_ir.Log_softmax | Matrix_ir.Edge_softmax -> 12.
      in
      [ K.Elementwise { n; k; flops_per_elt } ]
  | Primitive.Degree { binned; _ }, _ ->
      let n = Granii_graph.Graph.n_nodes graph in
      let nnz = Granii_graph.Graph.n_edges graph + n in
      if binned then
        [ K.Degree_binning
            { n; nnz; avg_collisions = float_of_int nnz /. float_of_int (max n 1) } ]
      else [ K.Degree_rowptr { n } ]
  | prim, args ->
      err "kernels: primitive %a applied to %d arguments" Primitive.pp prim
        (Array.length args)
