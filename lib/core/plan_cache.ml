module Obs = Granii_obs.Obs
module Graph = Granii_graph.Graph

type key = {
  graph_fp : string;
  model : string;
  k_in : int;
  k_out : int;
  hw : string;
  threads : int;
  layout : string;
}

type stats = { hits : int; misses : int; evictions : int }

type entry = {
  choice : Selector.localized_choice;
  mutable last_use : int;
}

type t = {
  capacity : int;
  tbl : (key, entry) Hashtbl.t;
  obs : Obs.t;
  prefix : string;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(obs = Obs.disabled) ?(metric_prefix = "serve.plan_cache")
    ~capacity () =
  if capacity < 0 then
    invalid_arg
      (Printf.sprintf "Plan_cache.create: capacity must be >= 0 (got %d)"
         capacity);
  { capacity;
    tbl = Hashtbl.create (max 16 capacity);
    obs;
    prefix = metric_prefix;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0 }

let capacity t = t.capacity

let length t = Hashtbl.length t.tbl

let find t key =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
      e.last_use <- t.tick;
      t.hits <- t.hits + 1;
      Obs.count t.obs (t.prefix ^ ".hits") 1;
      (match t.obs.Obs.journal with
      | None -> ()
      | Some j ->
          Obs.Journal.record j Obs.Journal.Plan_cache_hit ~tag:key.model ~v:0.);
      Some e.choice
  | None ->
      t.misses <- t.misses + 1;
      Obs.count t.obs (t.prefix ^ ".misses") 1;
      (match t.obs.Obs.journal with
      | None -> ()
      | Some j ->
          Obs.Journal.record j Obs.Journal.Plan_cache_miss ~tag:key.model ~v:0.);
      None

let peek t key =
  Option.map (fun e -> e.choice) (Hashtbl.find_opt t.tbl key)

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, age) when age <= e.last_use -> ()
      | _ -> victim := Some (k, e.last_use))
    t.tbl;
  match !victim with
  | None -> ()
  | Some (k, _) ->
      Hashtbl.remove t.tbl k;
      t.evictions <- t.evictions + 1;
      Obs.count t.obs (t.prefix ^ ".evictions") 1

let add t key choice =
  if t.capacity > 0 then begin
    t.tick <- t.tick + 1;
    if (not (Hashtbl.mem t.tbl key)) && Hashtbl.length t.tbl >= t.capacity
    then evict_lru t;
    Hashtbl.replace t.tbl key { choice; last_use = t.tick }
  end

let stats t = { hits = t.hits; misses = t.misses; evictions = t.evictions }

(* ---- the shared keying policy ---- *)

let key_of ~graph_fp ~model ~k_in ~k_out ~hw ~threads ~locality =
  { graph_fp;
    model = String.lowercase_ascii model;
    k_in;
    k_out;
    hw;
    threads;
    layout = Locality.config_to_string locality }

(* Floor of log2, with ilog2 0 = 0: the bucket index of a count. *)
let ilog2 v =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 (max v 1)

let bucketed_fingerprint g =
  let n = Graph.n_nodes g in
  let nnz = Graph.n_edges g in
  (* average degree in half-steps: sampled mini-batches with the same
     fanout schedule land on the same rung, a denser or sparser graph
     family does not *)
  let dbucket =
    if n = 0 then 0
    else int_of_float (Float.round (2. *. float_of_int nnz /. float_of_int n))
  in
  Printf.sprintf "bkt:n2^%d:e2^%d:d%d" (ilog2 n) (ilog2 nnz) dbucket
