module Dense = Granii_tensor.Dense
module Parallel = Granii_tensor.Parallel
module Workspace = Granii_tensor.Workspace

(* CBM-style compressed neighborhood-dedup format (Alves et al.,
   2409.02208): rows that share a neighbor set are factored against a
   reference row so the shared part of the SpMM is computed once and the
   delta rows only pay their suffix (an exact duplicate row becomes a pure
   k-float copy).

   The reference-row heuristic is prefix restricted, which is what keeps the
   result bitwise equal to the Csr oracle under floating-point
   non-associativity: rows are sorted lexicographically by their (column,
   value-bits) entry sequence, and a row may reference a base row only when
   the base's whole entry list — columns and value bits — is a prefix of its
   own. The Csr kernel's partial sum after those shared entries is then
   bit-for-bit the base row's finished output, so "copy the base's output
   row, accumulate the suffix in order" reproduces the oracle exactly.
   References are depth 1 (a base never references), so parallel execution
   is two phases: all bases, barrier, all deltas. *)

type t = {
  n_rows : int;
  n_cols : int;
  src : Csr.t;                  (* ground truth; SDDMM and rank1 run on it *)
  ref_of : int array;           (* per row: base row id, or -1 for a base *)
  shared : int array;           (* per row: shared prefix length (= the
                                   base's degree) *)
  bases : int array;            (* rows with ref_of = -1 *)
  deltas : int array;           (* rows with a reference *)
  base_prefix : int array;      (* cumulative degree over [bases] *)
  delta_prefix : int array;     (* cumulative (suffix length + 1) over
                                   [deltas]: the +1 charges the row copy *)
}

let nnz m = Csr.nnz m.src
let is_weighted m = Csr.is_weighted m.src

(* Stored entries saved by the factoring: each delta row skips its shared
   prefix. [dedup_ratio] is the fraction of SpMM multiply-adds removed. *)
let saved_nnz m = Array.fold_left ( + ) 0 (Array.map (fun d -> m.shared.(d)) m.deltas)

let dedup_ratio m =
  let z = nnz m in
  if z = 0 then 0. else float_of_int (saved_nnz m) /. float_of_int z

let value_bits (s : Csr.t) p =
  match s.Csr.values with
  | Some v -> Int64.bits_of_float v.(p)
  | None -> Int64.bits_of_float 1.

let of_csr (m : Csr.t) =
  let n = m.Csr.n_rows in
  let row_ptr = m.Csr.row_ptr and col_idx = m.Csr.col_idx in
  let deg i = row_ptr.(i + 1) - row_ptr.(i) in
  (* lexicographic order over (column, value-bits) entry sequences; ties
     break on row id so the order — and therefore the factoring — is
     deterministic *)
  let compare_rows a b =
    let da = deg a and db = deg b in
    let rec go s =
      if s >= da || s >= db then
        if da <> db then compare da db else compare a b
      else begin
        let pa = row_ptr.(a) + s and pb = row_ptr.(b) + s in
        let cc = compare col_idx.(pa) col_idx.(pb) in
        if cc <> 0 then cc
        else
          let vc = Int64.compare (value_bits m pa) (value_bits m pb) in
          if vc <> 0 then vc else go (s + 1)
      end
    in
    go 0
  in
  let order = Array.init n (fun i -> i) in
  Array.sort compare_rows order;
  let ref_of = Array.make n (-1) and shared = Array.make n 0 in
  (* walk the sorted rows keeping the current base; a row whose entry list
     extends the base's exactly becomes a delta against it *)
  let is_prefix base row =
    let db = deg base in
    db >= 1
    && db <= deg row
    && begin
         let ok = ref true and s = ref 0 in
         while !ok && !s < db do
           let pb = row_ptr.(base) + !s and pr = row_ptr.(row) + !s in
           if
             col_idx.(pb) <> col_idx.(pr)
             || not (Int64.equal (value_bits m pb) (value_bits m pr))
           then ok := false
           else incr s
         done;
         !ok
       end
  in
  let base = ref (-1) in
  Array.iter
    (fun row ->
      if !base >= 0 && is_prefix !base row then begin
        ref_of.(row) <- !base;
        shared.(row) <- deg !base
      end
      else base := row)
    order;
  let bases = ref [] and deltas = ref [] in
  for i = n - 1 downto 0 do
    if ref_of.(i) < 0 then bases := i :: !bases else deltas := i :: !deltas
  done;
  let bases = Array.of_list !bases and deltas = Array.of_list !deltas in
  let base_prefix = Array.make (Array.length bases + 1) 0 in
  Array.iteri
    (fun q i -> base_prefix.(q + 1) <- base_prefix.(q) + deg i)
    bases;
  let delta_prefix = Array.make (Array.length deltas + 1) 0 in
  Array.iteri
    (fun q i -> delta_prefix.(q + 1) <- delta_prefix.(q) + (deg i - shared.(i)) + 1)
    deltas;
  { n_rows = n;
    n_cols = m.Csr.n_cols;
    src = m;
    ref_of;
    shared;
    bases;
    deltas;
    base_prefix;
    delta_prefix }

(* Reconstructs the CSR matrix through the factoring — each delta row is
   rebuilt as (base's entries) ++ (own suffix) — so the round-trip test
   fails if a reference or shared count is wrong. *)
let to_csr m =
  let src = m.src in
  let row_ptr = src.Csr.row_ptr and col_idx = src.Csr.col_idx in
  let count = Csr.nnz src in
  let cols = Array.make count 0 in
  let values =
    if Csr.is_weighted src then Some (Array.make count 0.) else None
  in
  for i = 0 to m.n_rows - 1 do
    let base = row_ptr.(i) in
    let s = m.shared.(i) in
    let refbase = if m.ref_of.(i) < 0 then base else row_ptr.(m.ref_of.(i)) in
    for q = 0 to s - 1 do
      cols.(base + q) <- col_idx.(refbase + q)
    done;
    for p = base + s to row_ptr.(i + 1) - 1 do
      cols.(p) <- col_idx.(p)
    done;
    match (values, src.Csr.values) with
    | Some dst, Some sv ->
        for q = 0 to s - 1 do
          dst.(base + q) <- sv.(refbase + q)
        done;
        for p = base + s to row_ptr.(i + 1) - 1 do
          dst.(p) <- sv.(p)
        done
    | _ -> ()
  done;
  Csr.make ~n_rows:m.n_rows ~n_cols:m.n_cols ~row_ptr:(Array.copy row_ptr)
    ~col_idx:cols ~values

(* SpMM, plus-times, in two phases. Bases run the plain Csr accumulation
   (4-wide feature register blocking, entries in row order). Deltas seed
   their accumulators from the base row's finished output — bitwise the Csr
   partial sum over the shared prefix — and accumulate only the suffix.
   Writes are per-row disjoint and every reference points at a phase-1 row,
   so both phases parallelize over the domain pool. *)
let spmm ?pool ?ws (m : t) (b : Dense.t) =
  if m.n_cols <> b.Dense.rows then
    invalid_arg "Cbm.spmm: inner dimension mismatch";
  let n = m.n_rows and k = b.Dense.cols in
  let bd = b.Dense.data in
  let src = m.src in
  let row_ptr = src.Csr.row_ptr and col_idx = src.Csr.col_idx in
  let out = Workspace.alloc_uninit ws (n * k) in
  (* accumulate rows [from_of row .. row end) of the entry range into the
     output row, with the j-block seeded by [seed] *)
  let run_rows rows lo hi start_of =
    match src.Csr.values with
    | Some vals ->
        for q = lo to hi - 1 do
          let i = Array.unsafe_get rows q in
          let p0 = start_of i and p1 = Array.unsafe_get row_ptr (i + 1) in
          let sbase =
            let r = Array.unsafe_get m.ref_of i in
            if r < 0 then -1 else r * k
          in
          let obase = i * k in
          let j = ref 0 in
          while !j + 4 <= k do
            let j0 = !j in
            let acc0 = ref (if sbase < 0 then 0. else Array.unsafe_get out (sbase + j0))
            and acc1 = ref (if sbase < 0 then 0. else Array.unsafe_get out (sbase + j0 + 1))
            and acc2 = ref (if sbase < 0 then 0. else Array.unsafe_get out (sbase + j0 + 2))
            and acc3 = ref (if sbase < 0 then 0. else Array.unsafe_get out (sbase + j0 + 3)) in
            for p = p0 to p1 - 1 do
              let v = Array.unsafe_get vals p in
              let bb = (Array.unsafe_get col_idx p * k) + j0 in
              acc0 := !acc0 +. (v *. Array.unsafe_get bd bb);
              acc1 := !acc1 +. (v *. Array.unsafe_get bd (bb + 1));
              acc2 := !acc2 +. (v *. Array.unsafe_get bd (bb + 2));
              acc3 := !acc3 +. (v *. Array.unsafe_get bd (bb + 3))
            done;
            Array.unsafe_set out (obase + j0) !acc0;
            Array.unsafe_set out (obase + j0 + 1) !acc1;
            Array.unsafe_set out (obase + j0 + 2) !acc2;
            Array.unsafe_set out (obase + j0 + 3) !acc3;
            j := j0 + 4
          done;
          while !j < k do
            let j0 = !j in
            let acc = ref (if sbase < 0 then 0. else Array.unsafe_get out (sbase + j0)) in
            for p = p0 to p1 - 1 do
              acc :=
                !acc
                +. Array.unsafe_get vals p
                   *. Array.unsafe_get bd ((Array.unsafe_get col_idx p * k) + j0)
            done;
            Array.unsafe_set out (obase + j0) !acc;
            incr j
          done
        done
    | None ->
        (* unweighted: the edge value is never read *)
        for q = lo to hi - 1 do
          let i = Array.unsafe_get rows q in
          let p0 = start_of i and p1 = Array.unsafe_get row_ptr (i + 1) in
          let sbase =
            let r = Array.unsafe_get m.ref_of i in
            if r < 0 then -1 else r * k
          in
          let obase = i * k in
          let j = ref 0 in
          while !j + 4 <= k do
            let j0 = !j in
            let acc0 = ref (if sbase < 0 then 0. else Array.unsafe_get out (sbase + j0))
            and acc1 = ref (if sbase < 0 then 0. else Array.unsafe_get out (sbase + j0 + 1))
            and acc2 = ref (if sbase < 0 then 0. else Array.unsafe_get out (sbase + j0 + 2))
            and acc3 = ref (if sbase < 0 then 0. else Array.unsafe_get out (sbase + j0 + 3)) in
            for p = p0 to p1 - 1 do
              let bb = (Array.unsafe_get col_idx p * k) + j0 in
              acc0 := !acc0 +. Array.unsafe_get bd bb;
              acc1 := !acc1 +. Array.unsafe_get bd (bb + 1);
              acc2 := !acc2 +. Array.unsafe_get bd (bb + 2);
              acc3 := !acc3 +. Array.unsafe_get bd (bb + 3)
            done;
            Array.unsafe_set out (obase + j0) !acc0;
            Array.unsafe_set out (obase + j0 + 1) !acc1;
            Array.unsafe_set out (obase + j0 + 2) !acc2;
            Array.unsafe_set out (obase + j0 + 3) !acc3;
            j := j0 + 4
          done;
          while !j < k do
            let j0 = !j in
            let acc = ref (if sbase < 0 then 0. else Array.unsafe_get out (sbase + j0)) in
            for p = p0 to p1 - 1 do
              acc :=
                !acc
                +. Array.unsafe_get bd ((Array.unsafe_get col_idx p * k) + j0)
            done;
            Array.unsafe_set out (obase + j0) !acc;
            incr j
          done
        done
  in
  (* phase 1: bases pay their full row *)
  Parallel.rows_weighted ?pool ~prefix:m.base_prefix (fun lo hi ->
      run_rows m.bases lo hi (fun i -> row_ptr.(i)));
  (* phase 2: deltas seed from their base's output and pay the suffix *)
  Parallel.rows_weighted ?pool ~prefix:m.delta_prefix (fun lo hi ->
      run_rows m.deltas lo hi (fun i -> row_ptr.(i) + m.shared.(i)));
  Dense.of_flat ~rows:n ~cols:k out

(* SDDMM dots depend on the left operand's per-row features, so shared
   neighbor sets share nothing across rows: delegate to the Csr kernels on
   the stored source — trivially bitwise. *)
let sddmm ?pool ?ws (m : t) a b = Sddmm.run ?pool ?ws m.src a b

let rank1 ?pool ?ws (m : t) d_left d_right =
  Sddmm.rank1 ?pool ?ws m.src d_left d_right

let pp ppf m =
  Format.fprintf ppf "cbm %dx%d nnz=%d bases=%d deltas=%d dedup=%.2f"
    m.n_rows m.n_cols (nnz m) (Array.length m.bases) (Array.length m.deltas)
    (dedup_ratio m)
