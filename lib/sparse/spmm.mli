(** Generalized sparse-matrix dense-matrix multiplication (g-SpMM).

    Computes {m C_{i,:} = \bigoplus_{j \in N(i)} A_{ij} \otimes B_{j,:}} for a
    CSR matrix [A] and dense [B] over a {!Granii_tensor.Semiring.t}
    (paper, Sec. II-B and Appendix A). The node-feature aggregation of every
    GNN model lowers to this primitive. *)

val run : ?semiring:Granii_tensor.Semiring.t -> ?pool:Granii_tensor.Parallel.t ->
  ?ws:Granii_tensor.Workspace.t -> ?tile_k:int ->
  Csr.t -> Granii_tensor.Dense.t -> Granii_tensor.Dense.t
(** [run a b] is {m A \cdot B}. Defaults to {!Granii_tensor.Semiring.plus_times}.
    When [a] is unweighted and the semiring multiplication is [plus_times] or
    [plus_rhs], the kernel skips reading edge values entirely — the paper's
    cheaper unweighted aggregation. Raises [Invalid_argument] on an inner
    dimension mismatch. With [?pool], output rows are chunked with the
    nonzero-balanced partitioner and computed in parallel. Wide feature
    dimensions are processed in cache-resident strips ([?tile_k] overrides
    the strip width, mainly for testing). Tiled, untiled, and parallel
    kernels are all bitwise identical on every semiring. With [?ws], the
    output buffer comes from the workspace. *)

val run_transposed : ?pool:Granii_tensor.Parallel.t ->
  ?ws:Granii_tensor.Workspace.t -> Granii_tensor.Dense.t ->
  Csr.t -> Granii_tensor.Dense.t
(** [run_transposed b a] is the dense-times-sparse product {m B \cdot A} over
    the arithmetic semiring, evaluated without materializing [A]'s transpose
    (scatter along the stored entries). *)

val spmv : ?semiring:Granii_tensor.Semiring.t -> ?pool:Granii_tensor.Parallel.t ->
  Csr.t -> Granii_tensor.Vector.t -> Granii_tensor.Vector.t
(** Sparse matrix–vector product, the [k = 1] special case. *)
