(** Block-sparse rows (BSR): r x c dense tiles over the nonempty blocks.

    The locality engine's dense-hardware format (Balog et al., 1906.11786):
    SpMM and SDDMM lower to small dense GEMM tiles — the packed 4x2 register
    micro-kernel of [Dense.matmul] run per block row — so the sparse
    g-kernels ride the dense pipe instead of the gather pipe. Profitable
    when the graph has block structure ({!fill} close to 1); at low fill the
    tiles are mostly padding and the cost model keeps CSR.

    Bitwise contract: blocks sort by block column and tile columns ascend,
    so real entries accumulate in exactly the {!Csr} kernel order; padding
    slots contribute signed zeros (never observable in a finite running
    sum), and unweighted matrices store [1.] at entry slots ([1. *. b] is
    [b] exactly). Every kernel is bitwise identical to its Csr oracle. *)

type t = private {
  n_rows : int;
  n_cols : int;
  r : int;                      (** block height *)
  c : int;                      (** block width *)
  nb_rows : int;
  nb_cols : int;
  block_ptr : int array;        (** [nb_rows + 1]: stored blocks per block row *)
  block_col : int array;        (** per block, ascending within a block row *)
  values : float array;         (** [n_blocks * r * c], row-major per block;
                                    padding slots are [0.] *)
  src : Csr.t;                  (** source matrix: structural ground truth and
                                    the SDDMM output layout *)
}

val default_block : int
(** 8 — the tile edge the featurizer's block-density statistic and the cost
    model's [Spmm_bsr] term assume. *)

val of_csr : ?r:int -> ?c:int -> Csr.t -> t
(** Tiles a CSR matrix into [r x c] blocks (default {!default_block} both
    ways). Raises [Invalid_argument] when a block dimension is < 1. *)

val to_csr : t -> Csr.t
(** Reconstructs the CSR matrix, reading every entry's value back out of its
    tile slot. Exact round-trip: [to_csr (of_csr m)] equals [m] structurally
    and bitwise. *)

val nnz : t -> int

val n_blocks : t -> int

val fill : t -> float
(** Fraction of stored tile slots holding a real entry:
    [nnz / (n_blocks * r * c)]; [1.] for an empty matrix. *)

val is_weighted : t -> bool

val spmm :
  ?pool:Granii_tensor.Parallel.t -> ?ws:Granii_tensor.Workspace.t ->
  t -> Granii_tensor.Dense.t -> Granii_tensor.Dense.t
(** Plus-times g-SpMM over dense tiles, bitwise identical to
    [Spmm.run src b]. Block rows are chunked by stored-block count. *)

val sddmm :
  ?pool:Granii_tensor.Parallel.t -> ?ws:Granii_tensor.Workspace.t ->
  t -> Granii_tensor.Dense.t -> Granii_tensor.Dense.t -> Csr.t
(** Plus-times g-SDDMM: computes the dense dot tile per block and scatters
    the entry-backed slots into the source CSR value layout; bitwise
    identical to [Sddmm.run src a b]. *)

val rank1 :
  ?pool:Granii_tensor.Parallel.t -> ?ws:Granii_tensor.Workspace.t ->
  t -> float array -> float array -> Csr.t
(** Rank-1 SDDMM (k = 1 gains nothing from tiles): delegates to
    [Sddmm.rank1 src]. *)

val pp : Format.formatter -> t -> unit
