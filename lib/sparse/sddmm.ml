module Dense = Granii_tensor.Dense
module Semiring = Granii_tensor.Semiring
module Parallel = Granii_tensor.Parallel
module Workspace = Granii_tensor.Workspace

(* All kernels chunk mask rows with the nonzero-balanced partitioner; each
   stored position (and so each output slot) belongs to exactly one chunk,
   keeping the parallel result bitwise identical to the sequential one.

   Wide feature dimensions are processed in strips (see Spmm): the partial
   dot products accumulate term by term into the output slot across strips —
   the exact addition sequence of the single-pass kernel — and the mask value
   multiplies the finished dot once at the end, so the tiled kernel is
   bitwise identical to the untiled one. *)

let tile_threshold = 512
let default_tile = 256

let strip_width k = function
  | Some t when t > 0 -> min t k
  | Some _ | None -> if k >= tile_threshold then default_tile else k

let run ?(semiring = Semiring.plus_times) ?pool ?ws ?tile_k (mask : Csr.t)
    (a : Dense.t) (b : Dense.t) =
  if a.Dense.rows <> mask.Csr.n_rows then
    invalid_arg "Sddmm.run: A row count must match mask rows";
  if b.Dense.cols <> mask.Csr.n_cols then
    invalid_arg "Sddmm.run: B column count must match mask cols";
  if a.Dense.cols <> b.Dense.rows then invalid_arg "Sddmm.run: inner dimension mismatch";
  let k = a.Dense.cols in
  let tk = strip_width k tile_k in
  let count = Csr.nnz mask in
  let sr = semiring in
  let plus_times = Semiring.is_plus_times sr in
  let out =
    if plus_times then Workspace.alloc ws count
    else Workspace.alloc_fill ws sr.Semiring.zero count
  in
  let row_ptr = mask.Csr.row_ptr and col_idx = mask.Csr.col_idx in
  let ad = a.Dense.data and bd = b.Dense.data and bn = b.Dense.cols in
  Parallel.rows_weighted ?pool ~prefix:row_ptr (fun lo hi ->
      if tk >= k then
        for i = lo to hi - 1 do
          let abase = i * k in
          for p = row_ptr.(i) to row_ptr.(i + 1) - 1 do
            let j = col_idx.(p) in
            let dotv =
              if plus_times then begin
                let acc = ref 0. in
                for q = 0 to k - 1 do
                  acc := !acc +. (ad.(abase + q) *. bd.((q * bn) + j))
                done;
                !acc
              end
              else begin
                let acc = ref sr.Semiring.zero in
                for q = 0 to k - 1 do
                  acc :=
                    sr.Semiring.add !acc
                      (sr.Semiring.mul ad.(abase + q) bd.((q * bn) + j))
                done;
                !acc
              end
            in
            out.(p) <- (if plus_times then Csr.value mask p *. dotv
                        else sr.Semiring.mul (Csr.value mask p) dotv)
          done
        done
      else begin
        let q0 = ref 0 in
        while !q0 < k do
          let qhi = min k (!q0 + tk) in
          for i = lo to hi - 1 do
            let abase = i * k in
            for p = row_ptr.(i) to row_ptr.(i + 1) - 1 do
              let j = col_idx.(p) in
              if plus_times then begin
                let acc = ref out.(p) in
                for q = !q0 to qhi - 1 do
                  acc := !acc +. (ad.(abase + q) *. bd.((q * bn) + j))
                done;
                out.(p) <- !acc
              end
              else begin
                let acc = ref out.(p) in
                for q = !q0 to qhi - 1 do
                  acc :=
                    sr.Semiring.add !acc
                      (sr.Semiring.mul ad.(abase + q) bd.((q * bn) + j))
                done;
                out.(p) <- !acc
              end
            done
          done;
          q0 := qhi
        done;
        for i = lo to hi - 1 do
          for p = row_ptr.(i) to row_ptr.(i + 1) - 1 do
            out.(p) <- (if plus_times then Csr.value mask p *. out.(p)
                        else sr.Semiring.mul (Csr.value mask p) out.(p))
          done
        done
      end);
  Csr.with_values mask out

let rank1 ?pool ?ws (mask : Csr.t) d_left d_right =
  if Array.length d_left <> mask.Csr.n_rows then
    invalid_arg "Sddmm.rank1: left vector dimension mismatch";
  if Array.length d_right <> mask.Csr.n_cols then
    invalid_arg "Sddmm.rank1: right vector dimension mismatch";
  let count = Csr.nnz mask in
  let out = Workspace.alloc_uninit ws count in
  Parallel.rows_weighted ?pool ~prefix:mask.Csr.row_ptr (fun lo hi ->
      for i = lo to hi - 1 do
        let dl = d_left.(i) in
        for p = mask.Csr.row_ptr.(i) to mask.Csr.row_ptr.(i + 1) - 1 do
          out.(p) <- Csr.value mask p *. dl *. d_right.(mask.Csr.col_idx.(p))
        done
      done);
  Csr.with_values mask out

let dot_rows ?pool ?ws ?tile_k (mask : Csr.t) (x : Dense.t) (y : Dense.t) =
  if x.Dense.rows <> mask.Csr.n_rows then
    invalid_arg "Sddmm.dot_rows: X row count must match mask rows";
  if y.Dense.rows <> mask.Csr.n_cols then
    invalid_arg "Sddmm.dot_rows: Y row count must match mask cols";
  if x.Dense.cols <> y.Dense.cols then
    invalid_arg "Sddmm.dot_rows: feature dimension mismatch";
  let k = x.Dense.cols in
  let tk = strip_width k tile_k in
  let count = Csr.nnz mask in
  let out = Workspace.alloc ws count in
  let row_ptr = mask.Csr.row_ptr and col_idx = mask.Csr.col_idx in
  let xd = x.Dense.data and yd = y.Dense.data in
  Parallel.rows_weighted ?pool ~prefix:row_ptr (fun lo hi ->
      if tk >= k then
        for i = lo to hi - 1 do
          let xbase = i * k in
          for p = row_ptr.(i) to row_ptr.(i + 1) - 1 do
            let ybase = col_idx.(p) * k in
            let acc = ref 0. in
            for q = 0 to k - 1 do
              acc := !acc +. (xd.(xbase + q) *. yd.(ybase + q))
            done;
            out.(p) <- Csr.value mask p *. !acc
          done
        done
      else begin
        let q0 = ref 0 in
        while !q0 < k do
          let qhi = min k (!q0 + tk) in
          for i = lo to hi - 1 do
            let xbase = i * k in
            for p = row_ptr.(i) to row_ptr.(i + 1) - 1 do
              let ybase = col_idx.(p) * k in
              let acc = ref out.(p) in
              for q = !q0 to qhi - 1 do
                acc := !acc +. (xd.(xbase + q) *. yd.(ybase + q))
              done;
              out.(p) <- !acc
            done
          done;
          q0 := qhi
        done;
        for i = lo to hi - 1 do
          for p = row_ptr.(i) to row_ptr.(i + 1) - 1 do
            out.(p) <- Csr.value mask p *. out.(p)
          done
        done
      end);
  Csr.with_values mask out
