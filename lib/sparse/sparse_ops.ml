module Vector = Granii_tensor.Vector
module Parallel = Granii_tensor.Parallel
module Workspace = Granii_tensor.Workspace

let scale_rows ?pool ?ws d (a : Csr.t) =
  if Array.length d <> a.Csr.n_rows then
    invalid_arg "Sparse_ops.scale_rows: dimension mismatch";
  let count = Csr.nnz a in
  let out = Workspace.alloc_uninit ws count in
  Parallel.rows_weighted ?pool ~prefix:a.Csr.row_ptr (fun lo hi ->
      for i = lo to hi - 1 do
        for p = a.Csr.row_ptr.(i) to a.Csr.row_ptr.(i + 1) - 1 do
          out.(p) <- d.(i) *. Csr.value a p
        done
      done);
  Csr.with_values a out

let scale_cols ?pool ?ws (a : Csr.t) d =
  if Array.length d <> a.Csr.n_cols then
    invalid_arg "Sparse_ops.scale_cols: dimension mismatch";
  let count = Csr.nnz a in
  let out = Workspace.alloc_uninit ws count in
  (* value-parallel, not row-parallel: the entry stream is the only index *)
  Parallel.rows ?pool ~n:count (fun lo hi ->
      for p = lo to hi - 1 do
        out.(p) <- Csr.value a p *. d.(a.Csr.col_idx.(p))
      done);
  Csr.with_values a out

let scale_bilateral ?pool ?ws dl (a : Csr.t) dr = Sddmm.rank1 ?pool ?ws a dl dr

let add (a : Csr.t) (b : Csr.t) =
  if a.Csr.n_rows <> b.Csr.n_rows || a.Csr.n_cols <> b.Csr.n_cols then
    invalid_arg "Sparse_ops.add: shape mismatch";
  let entries = ref [] in
  Csr.iter (fun i j v -> entries := (i, j, v) :: !entries) a;
  Csr.iter (fun i j v -> entries := (i, j, v) :: !entries) b;
  Csr.of_coo
    (Coo.make ~n_rows:a.Csr.n_rows ~n_cols:a.Csr.n_cols (Array.of_list !entries))

let row_softmax ?pool ?ws (a : Csr.t) =
  let count = Csr.nnz a in
  let out = Workspace.alloc ws count in
  (* read the value array directly: a [Csr.value] call per entry would box
     its float result on every inner-loop read *)
  let vals = a.Csr.values in
  Parallel.rows_weighted ?pool ~prefix:a.Csr.row_ptr (fun rlo rhi ->
      for i = rlo to rhi - 1 do
        let lo = a.Csr.row_ptr.(i) and hi = a.Csr.row_ptr.(i + 1) - 1 in
        if hi >= lo then
          match vals with
          | None ->
              (* unweighted: softmax of equal scores is uniform over the row *)
              let u = 1. /. float_of_int (hi - lo + 1) in
              for p = lo to hi do
                out.(p) <- u
              done
          | Some v ->
              let mx = ref neg_infinity in
              for p = lo to hi do
                if Array.unsafe_get v p > !mx then mx := Array.unsafe_get v p
              done;
              let total = ref 0. in
              for p = lo to hi do
                let e = exp (Array.unsafe_get v p -. !mx) in
                out.(p) <- e;
                total := !total +. e
              done;
              for p = lo to hi do
                out.(p) <- out.(p) /. !total
              done
      done);
  Csr.with_values a out

let row_sums (a : Csr.t) =
  Vector.init a.Csr.n_rows (fun i ->
      let acc = ref 0. in
      for p = a.Csr.row_ptr.(i) to a.Csr.row_ptr.(i + 1) - 1 do
        acc := !acc +. Csr.value a p
      done;
      !acc)

let weighted_degrees = row_sums

let binned_degrees (a : Csr.t) =
  (* Semantically a scatter-add over destination bins, exactly what
     WiseGraph's binning function computes. Sequentially there is no atomic
     cost; the hardware model charges contention for it on GPUs. *)
  let bins = Vector.zeros a.Csr.n_rows in
  for i = 0 to a.Csr.n_rows - 1 do
    for p = a.Csr.row_ptr.(i) to a.Csr.row_ptr.(i + 1) - 1 do
      ignore p;
      bins.(i) <- bins.(i) +. 1.
    done
  done;
  bins
