(** Generalized sampled dense-dense matrix multiplication (g-SDDMM).

    Computes a dense-dense product only at the non-zero positions of a sparse
    mask: {m C_{ij} = M_{ij} \otimes (A \cdot B)_{ij}} for {m (i,j)} stored in
    [M] (paper, Sec. II-B and Appendix A). GAT's attention-score computation
    and GCN's pre-computed normalization {m \tilde D^{-1/2} \tilde A
    \tilde D^{-1/2}} (Eq. 3) are both SDDMM instances. *)

val run :
  ?semiring:Granii_tensor.Semiring.t -> ?pool:Granii_tensor.Parallel.t ->
  ?ws:Granii_tensor.Workspace.t -> ?tile_k:int ->
  Csr.t -> Granii_tensor.Dense.t -> Granii_tensor.Dense.t -> Csr.t
(** [run mask a b] evaluates {m (A \cdot B)} sampled at [mask]'s stored
    positions, each multiplied ({m \otimes}) by the mask value. [a] is
    [n_rows]x[k], [b] is [k]x[n_cols]. The result has [mask]'s structure and
    is weighted. Wide feature dimensions are accumulated in cache-resident
    strips ([?tile_k] overrides the strip width); tiled and untiled kernels
    are bitwise identical. Raises [Invalid_argument] on dimension
    mismatches. *)

val rank1 : ?pool:Granii_tensor.Parallel.t -> ?ws:Granii_tensor.Workspace.t ->
  Csr.t -> Granii_tensor.Vector.t -> Granii_tensor.Vector.t -> Csr.t
(** [rank1 mask d_left d_right] is the rank-1 SDDMM
    {m C_{ij} = M_{ij} \cdot d^{L}_i \cdot d^{R}_j}: the kernel behind GCN's
    precomputation-based composition, where both dense factors are diagonal
    normalization vectors. *)

val dot_rows : ?pool:Granii_tensor.Parallel.t -> ?ws:Granii_tensor.Workspace.t ->
  ?tile_k:int -> Csr.t -> Granii_tensor.Dense.t -> Granii_tensor.Dense.t -> Csr.t
(** [dot_rows mask x y] computes, at each stored position {m (i,j)}, the dot
    product {m \langle x_{i,:}, y_{j,:}\rangle} scaled by the mask value —
    i.e. [run mask x (transpose y)] without materializing the transpose.
    This is the edge-score pattern of attention models. *)
