(** CBM-style neighbor-dedup format: delta rows against a reference row.

    The locality engine's high-overlap format (Alves et al., 2409.02208):
    rows whose neighbor lists share a common part are factored so the shared
    part of an SpMM is computed once — the reference (base) row pays its
    full accumulation, and each delta row copies the base's finished output
    and accumulates only its suffix. An exact duplicate row costs a k-float
    copy instead of a degree * k accumulation.

    Bitwise contract: a row may reference a base only when the base's whole
    (column, value-bits) entry list is an exact prefix of its own, so the
    {!Csr} kernel's partial sum after the shared entries is bit-for-bit the
    base's finished output row, and "seed from base, accumulate suffix in
    order" reproduces the oracle exactly. References are depth 1; SpMM runs
    bases then deltas with a barrier between, each phase parallel. *)

type t = private {
  n_rows : int;
  n_cols : int;
  src : Csr.t;                  (** ground truth; SDDMM and rank1 run on it *)
  ref_of : int array;           (** per row: base row id, or [-1] for a base *)
  shared : int array;           (** per row: shared prefix length (the base's
                                    degree; [0] for bases) *)
  bases : int array;            (** rows with no reference *)
  deltas : int array;           (** rows with a reference *)
  base_prefix : int array;      (** cumulative degree over [bases] *)
  delta_prefix : int array;     (** cumulative (suffix length + 1) over
                                    [deltas] *)
}

val of_csr : Csr.t -> t
(** Factors a CSR matrix: rows are sorted lexicographically by their
    (column, value-bits) entry sequence and each row references the nearest
    preceding base whose entry list is an exact prefix of its own.
    Deterministic (ties break on row id). *)

val to_csr : t -> Csr.t
(** Reconstructs the CSR matrix through the factoring — each delta row is
    rebuilt from its base's entries plus its own suffix. Exact round-trip:
    [to_csr (of_csr m)] equals [m] structurally and bitwise. *)

val nnz : t -> int

val is_weighted : t -> bool

val saved_nnz : t -> int
(** Stored entries skipped by delta rows (the sum of shared prefix
    lengths). *)

val dedup_ratio : t -> float
(** [saved_nnz / nnz]: the fraction of SpMM multiply-adds the factoring
    removes. [0.] on an empty matrix. *)

val spmm :
  ?pool:Granii_tensor.Parallel.t -> ?ws:Granii_tensor.Workspace.t ->
  t -> Granii_tensor.Dense.t -> Granii_tensor.Dense.t
(** Plus-times g-SpMM, two-phase (bases, then deltas seeded from their
    base's output row); bitwise identical to [Spmm.run src b]. *)

val sddmm :
  ?pool:Granii_tensor.Parallel.t -> ?ws:Granii_tensor.Workspace.t ->
  t -> Granii_tensor.Dense.t -> Granii_tensor.Dense.t -> Csr.t
(** SDDMM dots depend on the left operand's row, so neighbor sharing saves
    nothing: delegates to [Sddmm.run src]. *)

val rank1 :
  ?pool:Granii_tensor.Parallel.t -> ?ws:Granii_tensor.Workspace.t ->
  t -> float array -> float array -> Csr.t
(** Delegates to [Sddmm.rank1 src]. *)

val pp : Format.formatter -> t -> unit
