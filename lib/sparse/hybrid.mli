(** Hybrid row-split sparse format (ELL slab + CSR tail, SELL-C-σ-lite).

    The locality engine's second format: each row's first [width] entries are
    packed into a dense row-major slab ([ell_cols]/[ell_vals]); the remainder
    spills into a CSR [tail]. Both halves preserve the source row's entry
    order, so every kernel here accumulates each output element over exactly
    the same term sequence as the {!Csr} kernels — results are bitwise
    identical, which is what lets the selector switch formats per input
    without perturbing the numerics (and what the differential tests pin).

    Profitable when the degree distribution is skewed: the bulk of the (short)
    rows become branch-light slab walks whose column indices pack densely,
    while only the hubs pay the irregular tail. {!packing} quantifies how well
    a given width fits — the featurizer feeds it to the cost model. *)

type t = private {
  n_rows : int;
  n_cols : int;
  width : int;                   (** ELL slab width (columns per row) *)
  ell_len : int array;           (** per-row packed count, [min(degree, width)] *)
  ell_cols : int array;          (** [n_rows * width] row-major; padding slots unread *)
  ell_vals : float array option; (** [None] = unweighted *)
  tail : Csr.t;                  (** spill rows (entries beyond [width]) *)
  src : Csr.t;                   (** source matrix ([row_ptr] reused for chunking) *)
}

val of_csr : ?width:int -> Csr.t -> t
(** Splits a CSR matrix. Default [width] is the mean degree rounded up
    ({!default_width}); [width] is clamped to at least 1. *)

val to_csr : t -> Csr.t
(** Reconstructs the CSR matrix from slab + tail. Exact round-trip:
    [to_csr (of_csr m)] equals [m] structurally and bitwise. *)

val default_width : Csr.t -> int

val nnz : t -> int

val ell_nnz : t -> int
(** Entries stored in the slab. *)

val tail_nnz : t -> int
(** Entries spilled to the CSR tail. *)

val packing : t -> float
(** Slab occupancy in [0, 1]: [ell_nnz / (n_rows * width)]. *)

val is_weighted : t -> bool

val spmm :
  ?pool:Granii_tensor.Parallel.t -> ?ws:Granii_tensor.Workspace.t ->
  t -> Granii_tensor.Dense.t -> Granii_tensor.Dense.t
(** Plus-times g-SpMM, bitwise identical to [Spmm.run src b]. Feature
    dimension register-blocked 4-wide; rows chunked nonzero-balanced. *)

val sddmm :
  ?pool:Granii_tensor.Parallel.t -> ?ws:Granii_tensor.Workspace.t ->
  t -> Granii_tensor.Dense.t -> Granii_tensor.Dense.t -> Csr.t
(** Plus-times g-SDDMM; the output values land in the source CSR layout, so
    the result is bitwise identical to [Sddmm.run src a b]. *)

val rank1 :
  ?pool:Granii_tensor.Parallel.t -> ?ws:Granii_tensor.Workspace.t ->
  t -> float array -> float array -> Csr.t
(** Rank-1 SDDMM (attention scores), bitwise identical to
    [Sddmm.rank1 src d_left d_right]. *)

val pp : Format.formatter -> t -> unit
