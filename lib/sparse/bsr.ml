module Dense = Granii_tensor.Dense
module Parallel = Granii_tensor.Parallel
module Workspace = Granii_tensor.Workspace

(* Block-sparse rows (BSR): the matrix is tiled into r x c blocks and only
   the nonempty blocks are stored, each as a small dense tile (row-major,
   zero-filled padding). SpMM then runs the dense-GEMM register tile per
   block row — the PR 2 packed micro-kernel shape, 4 output rows x 2 feature
   columns of accumulators — instead of a pointer-chase per entry, which is
   what makes the format profitable on dense-leaning hardware (Balog et al.,
   1906.11786).

   Bitwise contract with the Csr kernels: blocks are sorted by block column
   and tile columns ascend inside each block, so a row's real entries are
   visited in exactly the Csr entry order; the padding slots contribute
   [0. *. b] terms, and adding a signed zero to a finite accumulator never
   changes its bits (a running sum can only be +0.0 before its first nonzero
   term). Unweighted matrices store [1.] at entry slots — [1. *. b] is
   exactly [b] — so one kernel serves both weightednesses. *)

type t = {
  n_rows : int;
  n_cols : int;
  r : int;                      (* block height *)
  c : int;                      (* block width *)
  nb_rows : int;
  nb_cols : int;
  block_ptr : int array;        (* nb_rows + 1: blocks per block row *)
  block_col : int array;        (* per block, ascending within a block row *)
  values : float array;         (* nblocks * r * c, row-major per block *)
  src : Csr.t;                  (* structural ground truth: resolves stored
                                   zeros vs padding, provides the SDDMM
                                   output layout *)
}

let default_block = 8

let nnz b = Csr.nnz b.src
let n_blocks b = b.block_ptr.(b.nb_rows)
let is_weighted b = Csr.is_weighted b.src

(* Fraction of stored tile slots holding a real entry (1.0 = fully dense
   blocks, the regime where the dense lowering wins). *)
let fill b =
  let nb = n_blocks b in
  if nb = 0 then 1.
  else float_of_int (nnz b) /. float_of_int (nb * b.r * b.c)

let of_csr ?(r = default_block) ?(c = default_block) (m : Csr.t) =
  if r < 1 || c < 1 then invalid_arg "Bsr.of_csr: block dims must be >= 1";
  let n = m.Csr.n_rows in
  let row_ptr = m.Csr.row_ptr and col_idx = m.Csr.col_idx in
  let nb_rows = (n + r - 1) / r in
  let nb_cols = (m.Csr.n_cols + c - 1) / c in
  (* Pass 1: distinct block columns per block row, via a stamp array (stamp
     value = block row id, so no O(nb_cols) reset between block rows). *)
  let stamp = Array.make (max 1 nb_cols) (-1) in
  let counts = Array.make nb_rows 0 in
  for bi = 0 to nb_rows - 1 do
    for i = bi * r to min n (bi * r + r) - 1 do
      for p = row_ptr.(i) to row_ptr.(i + 1) - 1 do
        let bc = col_idx.(p) / c in
        if stamp.(bc) <> bi then begin
          stamp.(bc) <- bi;
          counts.(bi) <- counts.(bi) + 1
        end
      done
    done
  done;
  let block_ptr = Array.make (nb_rows + 1) 0 in
  for bi = 0 to nb_rows - 1 do
    block_ptr.(bi + 1) <- block_ptr.(bi) + counts.(bi)
  done;
  let nblocks = block_ptr.(nb_rows) in
  let block_col = Array.make nblocks 0 in
  (* Pass 2: collect each block row's block columns, sort them ascending
     (entries are only sorted within a row, not across the block row's r
     rows), then scatter the values through a position map. *)
  Array.fill stamp 0 (Array.length stamp) (-1);
  let pos = Array.make (max 1 nb_cols) 0 in
  let values = Array.make (nblocks * r * c) 0. in
  for bi = 0 to nb_rows - 1 do
    let base = block_ptr.(bi) in
    let fillp = ref base in
    for i = bi * r to min n (bi * r + r) - 1 do
      for p = row_ptr.(i) to row_ptr.(i + 1) - 1 do
        let bc = col_idx.(p) / c in
        if stamp.(bc) <> bi then begin
          stamp.(bc) <- bi;
          block_col.(!fillp) <- bc;
          incr fillp
        end
      done
    done;
    let len = block_ptr.(bi + 1) - base in
    let slice = Array.sub block_col base len in
    Array.sort compare slice;
    Array.blit slice 0 block_col base len;
    for q = 0 to len - 1 do
      pos.(block_col.(base + q)) <- base + q
    done;
    for i = bi * r to min n (bi * r + r) - 1 do
      let ii = i - (bi * r) in
      for p = row_ptr.(i) to row_ptr.(i + 1) - 1 do
        let col = col_idx.(p) in
        let blk = pos.(col / c) in
        let v = match m.Csr.values with Some sv -> sv.(p) | None -> 1. in
        values.((blk * r * c) + (ii * c) + (col - (col / c * c))) <- v
      done
    done
  done;
  { n_rows = n;
    n_cols = m.Csr.n_cols;
    r;
    c;
    nb_rows;
    nb_cols;
    block_ptr;
    block_col;
    values;
    src = m }

(* Reconstructs the CSR matrix by reading every source entry's value back out
   of its tile slot (structure comes from [src]; a tile cannot distinguish a
   stored zero from padding on its own). The round-trip test exercises the
   whole block layout: a misplaced value lands in the wrong slot and breaks
   the comparison. *)
let to_csr b =
  let src = b.src in
  match src.Csr.values with
  | None -> src
  | Some _ ->
      let row_ptr = src.Csr.row_ptr and col_idx = src.Csr.col_idx in
      let out = Array.make (Csr.nnz src) 0. in
      let r = b.r and c = b.c in
      for bi = 0 to b.nb_rows - 1 do
        let b0 = b.block_ptr.(bi) and b1 = b.block_ptr.(bi + 1) in
        for i = bi * r to min b.n_rows (bi * r + r) - 1 do
          let ii = i - (bi * r) in
          let cur = ref b0 in
          for p = row_ptr.(i) to row_ptr.(i + 1) - 1 do
            let bc = col_idx.(p) / c in
            while !cur < b1 && b.block_col.(!cur) < bc do
              incr cur
            done;
            out.(p) <-
              b.values.((!cur * r * c) + (ii * c) + (col_idx.(p) - (bc * c)))
          done
        done
      done;
      Csr.with_values src out

(* SpMM, plus-times, lowered to dense tiles. Within one block row the inner
   structure is the packed 4x2 GEMM micro-kernel (Dense.matmul's register
   tile): four output rows by two feature columns of accumulators, reduction
   running over (block, tile column) — i.e. ascending source column. Real
   entries hit in Csr order; padding adds signed zeros; see the module
   comment for why both leave the bits of [Spmm.run src bd] intact. *)
let spmm ?pool ?ws (m : t) (b : Dense.t) =
  if m.n_cols <> b.Dense.rows then
    invalid_arg "Bsr.spmm: inner dimension mismatch";
  let n = m.n_rows and k = b.Dense.cols in
  let bd = b.Dense.data in
  let r = m.r and c = m.c in
  let rc = r * c in
  let block_ptr = m.block_ptr and block_col = m.block_col and vals = m.values in
  let out = Workspace.alloc_uninit ws (n * k) in
  let body lo hi =
    for bi = lo to hi - 1 do
      let row0 = bi * r in
      let rmax = min r (n - row0) in
      let b0 = Array.unsafe_get block_ptr bi
      and b1 = Array.unsafe_get block_ptr (bi + 1) in
      let ii0 = ref 0 in
      (* full 4-row groups of the tile *)
      while !ii0 + 4 <= rmax do
        let i0 = !ii0 in
        let j = ref 0 in
        while !j + 2 <= k do
          let j0 = !j in
          let acc00 = ref 0. and acc01 = ref 0. in
          let acc10 = ref 0. and acc11 = ref 0. in
          let acc20 = ref 0. and acc21 = ref 0. in
          let acc30 = ref 0. and acc31 = ref 0. in
          for blk = b0 to b1 - 1 do
            let bc = Array.unsafe_get block_col blk in
            let cmax = min c (m.n_cols - (bc * c)) in
            let vbase = (blk * rc) + (i0 * c) in
            let bbase = bc * c * k in
            for cc = 0 to cmax - 1 do
              let bb = bbase + (cc * k) + j0 in
              let e0 = Array.unsafe_get bd bb
              and e1 = Array.unsafe_get bd (bb + 1) in
              let x0 = Array.unsafe_get vals (vbase + cc) in
              let x1 = Array.unsafe_get vals (vbase + c + cc) in
              let x2 = Array.unsafe_get vals (vbase + (2 * c) + cc) in
              let x3 = Array.unsafe_get vals (vbase + (3 * c) + cc) in
              acc00 := !acc00 +. (x0 *. e0);
              acc01 := !acc01 +. (x0 *. e1);
              acc10 := !acc10 +. (x1 *. e0);
              acc11 := !acc11 +. (x1 *. e1);
              acc20 := !acc20 +. (x2 *. e0);
              acc21 := !acc21 +. (x2 *. e1);
              acc30 := !acc30 +. (x3 *. e0);
              acc31 := !acc31 +. (x3 *. e1)
            done
          done;
          let ob = (row0 + i0) * k in
          Array.unsafe_set out (ob + j0) !acc00;
          Array.unsafe_set out (ob + j0 + 1) !acc01;
          Array.unsafe_set out (ob + k + j0) !acc10;
          Array.unsafe_set out (ob + k + j0 + 1) !acc11;
          Array.unsafe_set out (ob + (2 * k) + j0) !acc20;
          Array.unsafe_set out (ob + (2 * k) + j0 + 1) !acc21;
          Array.unsafe_set out (ob + (3 * k) + j0) !acc30;
          Array.unsafe_set out (ob + (3 * k) + j0 + 1) !acc31;
          j := j0 + 2
        done;
        (* odd trailing feature column *)
        while !j < k do
          let j0 = !j in
          let a0 = ref 0. and a1 = ref 0. and a2 = ref 0. and a3 = ref 0. in
          for blk = b0 to b1 - 1 do
            let bc = Array.unsafe_get block_col blk in
            let cmax = min c (m.n_cols - (bc * c)) in
            let vbase = (blk * rc) + (i0 * c) in
            let bbase = bc * c * k in
            for cc = 0 to cmax - 1 do
              let e = Array.unsafe_get bd (bbase + (cc * k) + j0) in
              a0 := !a0 +. (Array.unsafe_get vals (vbase + cc) *. e);
              a1 := !a1 +. (Array.unsafe_get vals (vbase + c + cc) *. e);
              a2 := !a2 +. (Array.unsafe_get vals (vbase + (2 * c) + cc) *. e);
              a3 := !a3 +. (Array.unsafe_get vals (vbase + (3 * c) + cc) *. e)
            done
          done;
          let ob = (row0 + i0) * k in
          Array.unsafe_set out (ob + j0) !a0;
          Array.unsafe_set out (ob + k + j0) !a1;
          Array.unsafe_set out (ob + (2 * k) + j0) !a2;
          Array.unsafe_set out (ob + (3 * k) + j0) !a3;
          incr j
        done;
        ii0 := i0 + 4
      done;
      (* edge rows of a partial tile group: generic one-row loop *)
      for i = !ii0 to rmax - 1 do
        let ob = (row0 + i) * k in
        for j0 = 0 to k - 1 do
          let acc = ref 0. in
          for blk = b0 to b1 - 1 do
            let bc = Array.unsafe_get block_col blk in
            let cmax = min c (m.n_cols - (bc * c)) in
            let vbase = (blk * rc) + (i * c) in
            let bbase = bc * c * k in
            for cc = 0 to cmax - 1 do
              acc :=
                !acc
                +. Array.unsafe_get vals (vbase + cc)
                   *. Array.unsafe_get bd (bbase + (cc * k) + j0)
            done
          done;
          Array.unsafe_set out (ob + j0) !acc
        done
      done
    done
  in
  (* chunk block rows by their stored-block count ([block_ptr] is exactly the
     work prefix: every block costs r*c*k multiply-adds) *)
  Parallel.rows_weighted ?pool ~prefix:block_ptr body;
  Dense.of_flat ~rows:n ~cols:k out

(* SDDMM, plus-times: per block, the full dense r x c tile of dot products
   is computed (each dot reduces over the feature dimension in ascending
   order, exactly like [Sddmm.run]), then only the slots backed by a source
   entry are scattered into the source CSR value layout — discarded padding
   dots cannot perturb the output. *)
let sddmm ?pool ?ws (m : t) (a : Dense.t) (b : Dense.t) =
  if a.Dense.rows <> m.n_rows then
    invalid_arg "Bsr.sddmm: A row count must match mask rows";
  if b.Dense.cols <> m.n_cols then
    invalid_arg "Bsr.sddmm: B column count must match mask cols";
  if a.Dense.cols <> b.Dense.rows then
    invalid_arg "Bsr.sddmm: inner dimension mismatch";
  let k = a.Dense.cols in
  let src = m.src in
  let row_ptr = src.Csr.row_ptr and col_idx = src.Csr.col_idx in
  let out = Workspace.alloc_uninit ws (Csr.nnz src) in
  let ad = a.Dense.data and bd = b.Dense.data and bn = b.Dense.cols in
  let r = m.r and c = m.c in
  let body lo hi =
    let tile = Array.make (r * c) 0. in
    let cursor = Array.make r 0 in
    for bi = lo to hi - 1 do
      let row0 = bi * r in
      let rmax = min r (m.n_rows - row0) in
      for ii = 0 to rmax - 1 do
        cursor.(ii) <- row_ptr.(row0 + ii)
      done;
      for blk = m.block_ptr.(bi) to m.block_ptr.(bi + 1) - 1 do
        let bc = m.block_col.(blk) in
        let cmax = min c (m.n_cols - (bc * c)) in
        (* dense tile of dot products, padding slots included *)
        for ii = 0 to rmax - 1 do
          let abase = (row0 + ii) * k in
          for cc = 0 to cmax - 1 do
            let col = (bc * c) + cc in
            let acc = ref 0. in
            for q = 0 to k - 1 do
              acc :=
                !acc
                +. (Array.unsafe_get ad (abase + q)
                    *. Array.unsafe_get bd ((q * bn) + col))
            done;
            tile.((ii * c) + cc) <- !acc
          done
        done;
        (* scatter the entry-backed slots into the source value layout *)
        let climit = (bc + 1) * c in
        for ii = 0 to rmax - 1 do
          let i = row0 + ii in
          let p = ref cursor.(ii) in
          while !p < row_ptr.(i + 1) && col_idx.(!p) < climit do
            out.(!p) <-
              Csr.value src !p *. tile.((ii * c) + (col_idx.(!p) - (bc * c)));
            incr p
          done;
          cursor.(ii) <- !p
        done
      done
    done
  in
  Parallel.rows_weighted ?pool ~prefix:m.block_ptr body;
  Csr.with_values src out

(* Rank-1 SDDMM gains nothing from tiles (k = 1): delegate to the Csr
   kernel on the stored source — trivially bitwise. *)
let rank1 ?pool ?ws (m : t) d_left d_right =
  Sddmm.rank1 ?pool ?ws m.src d_left d_right

let pp ppf b =
  Format.fprintf ppf "bsr %dx%d nnz=%d block=%dx%d blocks=%d fill=%.2f"
    b.n_rows b.n_cols (nnz b) b.r b.c (n_blocks b) (fill b)
