module Dense = Granii_tensor.Dense
module Parallel = Granii_tensor.Parallel
module Workspace = Granii_tensor.Workspace

(* Hybrid row-split format (SELL-C-sigma-lite): each row's first [width]
   entries live in a packed row-major ELL slab, the rest spill into a CSR
   tail. Both halves keep the source row's entry order, so walking slab then
   tail reproduces the CSR entry sequence exactly — the invariant every
   kernel here relies on for bitwise equality with the Csr kernels.

   The slab gives the kernels a branch-free inner structure with the column
   indices of consecutive short rows packed densely (one cache line of
   [ell_cols] covers several rows on low-degree graphs), while hub rows pay
   the pointer-chasing CSR cost only for their spill. *)

type t = {
  n_rows : int;
  n_cols : int;
  width : int;
  ell_len : int array;          (* per-row packed count = min(degree, width) *)
  ell_cols : int array;         (* n_rows * width, row-major; padding unread *)
  ell_vals : float array option;
  tail : Csr.t;                 (* spill entries, per-row order preserved *)
  src : Csr.t;                  (* source matrix: row_ptr reused for chunking
                                   and as the SDDMM output layout *)
}

let nnz h = Csr.nnz h.src
let is_weighted h = h.ell_vals <> None
let ell_nnz h = Array.fold_left ( + ) 0 h.ell_len
let tail_nnz h = Csr.nnz h.tail

(* Fraction of slab slots that hold a real entry (1.0 = no padding). *)
let packing h =
  if h.n_rows = 0 || h.width = 0 then 1.
  else float_of_int (ell_nnz h) /. float_of_int (h.n_rows * h.width)

(* Default slab width: the mean degree, rounded up. Short rows (the bulk of a
   power-law graph) fit entirely; hubs spill. *)
let default_width (m : Csr.t) =
  let n = max 1 m.Csr.n_rows in
  max 1 ((Csr.nnz m + n - 1) / n)

let of_csr ?width (m : Csr.t) =
  let n = m.Csr.n_rows in
  let row_ptr = m.Csr.row_ptr and col_idx = m.Csr.col_idx in
  let width = match width with Some w -> max 1 w | None -> default_width m in
  let deg i = row_ptr.(i + 1) - row_ptr.(i) in
  let ell_len = Array.init n (fun i -> min (deg i) width) in
  let ell_cols = Array.make (n * width) 0 in
  let weighted = Csr.is_weighted m in
  let ell_vals = if weighted then Some (Array.make (n * width) 0.) else None in
  let tail_ptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    tail_ptr.(i + 1) <- tail_ptr.(i) + (deg i - ell_len.(i))
  done;
  let spill = tail_ptr.(n) in
  let tail_cols = Array.make spill 0 in
  let tail_vals = if weighted then Some (Array.make spill 0.) else None in
  for i = 0 to n - 1 do
    let base = row_ptr.(i) and eb = i * width and tb = tail_ptr.(i) in
    let len = ell_len.(i) in
    for s = 0 to len - 1 do
      ell_cols.(eb + s) <- col_idx.(base + s)
    done;
    for s = len to deg i - 1 do
      tail_cols.(tb + s - len) <- col_idx.(base + s)
    done;
    match (ell_vals, tail_vals, m.Csr.values) with
    | Some ev, Some tv, Some sv ->
        for s = 0 to len - 1 do
          ev.(eb + s) <- sv.(base + s)
        done;
        for s = len to deg i - 1 do
          tv.(tb + s - len) <- sv.(base + s)
        done
    | _ -> ()
  done;
  let tail =
    Csr.make ~n_rows:n ~n_cols:m.Csr.n_cols ~row_ptr:tail_ptr
      ~col_idx:tail_cols ~values:tail_vals
  in
  { n_rows = n;
    n_cols = m.Csr.n_cols;
    width;
    ell_len;
    ell_cols;
    ell_vals;
    tail;
    src = m }

(* Reconstructs the CSR matrix from slab + tail (not just [h.src]), so the
   round-trip test exercises the split. *)
let to_csr h =
  let n = h.n_rows in
  let tail_ptr = h.tail.Csr.row_ptr in
  let row_ptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row_ptr.(i + 1) <-
      row_ptr.(i) + h.ell_len.(i) + (tail_ptr.(i + 1) - tail_ptr.(i))
  done;
  let count = row_ptr.(n) in
  let col_idx = Array.make count 0 in
  let values = if is_weighted h then Some (Array.make count 0.) else None in
  for i = 0 to n - 1 do
    let base = row_ptr.(i) and eb = i * h.width and len = h.ell_len.(i) in
    for s = 0 to len - 1 do
      col_idx.(base + s) <- h.ell_cols.(eb + s)
    done;
    for p = tail_ptr.(i) to tail_ptr.(i + 1) - 1 do
      col_idx.(base + len + p - tail_ptr.(i)) <- h.tail.Csr.col_idx.(p)
    done;
    match (values, h.ell_vals, h.tail.Csr.values) with
    | Some dst, Some ev, Some tv ->
        for s = 0 to len - 1 do
          dst.(base + s) <- ev.(eb + s)
        done;
        for p = tail_ptr.(i) to tail_ptr.(i + 1) - 1 do
          dst.(base + len + p - tail_ptr.(i)) <- tv.(p)
        done
    | _ -> ()
  done;
  Csr.make ~n_rows:n ~n_cols:h.n_cols ~row_ptr ~col_idx ~values

(* SpMM, plus-times. Per output element the terms are added in the row's
   entry order (slab first, then tail — i.e. CSR order), so the result is
   bitwise identical to [Spmm.run h.src b]. The feature dimension is
   register-blocked four wide: each block walks the row's entries once with
   four scalar accumulators, which keeps the output row out of the
   load-add-store loop the Csr kernel pays per entry. Blocking across j never
   reorders any element's additions. *)
let spmm ?pool ?ws (h : t) (b : Dense.t) =
  if h.n_cols <> b.Dense.rows then
    invalid_arg "Hybrid.spmm: inner dimension mismatch";
  let n = h.n_rows and k = b.Dense.cols in
  let bd = b.Dense.data in
  let ell_cols = h.ell_cols and ell_len = h.ell_len and width = h.width in
  let tail_ptr = h.tail.Csr.row_ptr and tail_cols = h.tail.Csr.col_idx in
  let out = Workspace.alloc_uninit ws (n * k) in
  let body lo hi =
    match (h.ell_vals, h.tail.Csr.values) with
    | Some ev, Some tv ->
        for i = lo to hi - 1 do
          let eb = i * width and len = Array.unsafe_get ell_len i in
          let t0 = Array.unsafe_get tail_ptr i
          and t1 = Array.unsafe_get tail_ptr (i + 1) in
          let obase = i * k in
          let j = ref 0 in
          while !j + 4 <= k do
            let j0 = !j in
            let acc0 = ref 0. and acc1 = ref 0. and acc2 = ref 0.
            and acc3 = ref 0. in
            for s = 0 to len - 1 do
              let v = Array.unsafe_get ev (eb + s) in
              let bb = (Array.unsafe_get ell_cols (eb + s) * k) + j0 in
              acc0 := !acc0 +. (v *. Array.unsafe_get bd bb);
              acc1 := !acc1 +. (v *. Array.unsafe_get bd (bb + 1));
              acc2 := !acc2 +. (v *. Array.unsafe_get bd (bb + 2));
              acc3 := !acc3 +. (v *. Array.unsafe_get bd (bb + 3))
            done;
            for p = t0 to t1 - 1 do
              let v = Array.unsafe_get tv p in
              let bb = (Array.unsafe_get tail_cols p * k) + j0 in
              acc0 := !acc0 +. (v *. Array.unsafe_get bd bb);
              acc1 := !acc1 +. (v *. Array.unsafe_get bd (bb + 1));
              acc2 := !acc2 +. (v *. Array.unsafe_get bd (bb + 2));
              acc3 := !acc3 +. (v *. Array.unsafe_get bd (bb + 3))
            done;
            Array.unsafe_set out (obase + j0) !acc0;
            Array.unsafe_set out (obase + j0 + 1) !acc1;
            Array.unsafe_set out (obase + j0 + 2) !acc2;
            Array.unsafe_set out (obase + j0 + 3) !acc3;
            j := j0 + 4
          done;
          while !j < k do
            let j0 = !j in
            let acc = ref 0. in
            for s = 0 to len - 1 do
              acc :=
                !acc
                +. Array.unsafe_get ev (eb + s)
                   *. Array.unsafe_get bd
                        ((Array.unsafe_get ell_cols (eb + s) * k) + j0)
            done;
            for p = t0 to t1 - 1 do
              acc :=
                !acc
                +. Array.unsafe_get tv p
                   *. Array.unsafe_get bd
                        ((Array.unsafe_get tail_cols p * k) + j0)
            done;
            Array.unsafe_set out (obase + j0) !acc;
            incr j
          done
        done
    | _ ->
        (* Unweighted: edge values are never read. *)
        for i = lo to hi - 1 do
          let eb = i * width and len = Array.unsafe_get ell_len i in
          let t0 = Array.unsafe_get tail_ptr i
          and t1 = Array.unsafe_get tail_ptr (i + 1) in
          let obase = i * k in
          let j = ref 0 in
          while !j + 4 <= k do
            let j0 = !j in
            let acc0 = ref 0. and acc1 = ref 0. and acc2 = ref 0.
            and acc3 = ref 0. in
            for s = 0 to len - 1 do
              let bb = (Array.unsafe_get ell_cols (eb + s) * k) + j0 in
              acc0 := !acc0 +. Array.unsafe_get bd bb;
              acc1 := !acc1 +. Array.unsafe_get bd (bb + 1);
              acc2 := !acc2 +. Array.unsafe_get bd (bb + 2);
              acc3 := !acc3 +. Array.unsafe_get bd (bb + 3)
            done;
            for p = t0 to t1 - 1 do
              let bb = (Array.unsafe_get tail_cols p * k) + j0 in
              acc0 := !acc0 +. Array.unsafe_get bd bb;
              acc1 := !acc1 +. Array.unsafe_get bd (bb + 1);
              acc2 := !acc2 +. Array.unsafe_get bd (bb + 2);
              acc3 := !acc3 +. Array.unsafe_get bd (bb + 3)
            done;
            Array.unsafe_set out (obase + j0) !acc0;
            Array.unsafe_set out (obase + j0 + 1) !acc1;
            Array.unsafe_set out (obase + j0 + 2) !acc2;
            Array.unsafe_set out (obase + j0 + 3) !acc3;
            j := j0 + 4
          done;
          while !j < k do
            let j0 = !j in
            let acc = ref 0. in
            for s = 0 to len - 1 do
              acc :=
                !acc
                +. Array.unsafe_get bd
                     ((Array.unsafe_get ell_cols (eb + s) * k) + j0)
            done;
            for p = t0 to t1 - 1 do
              acc :=
                !acc
                +. Array.unsafe_get bd
                     ((Array.unsafe_get tail_cols p * k) + j0)
            done;
            Array.unsafe_set out (obase + j0) !acc;
            incr j
          done
        done
  in
  Parallel.rows_weighted ?pool ~prefix:h.src.Csr.row_ptr body;
  Dense.of_flat ~rows:n ~cols:k out

(* SDDMM, plus-times: dot products land in the source CSR's value layout
   (slab entry [s] of row [i] is source position [row_ptr.(i) + s]; tail
   entry [p] is [row_ptr.(i) + ell_len.(i) + (p - tail_ptr.(i))]), so the
   result is [Csr.with_values h.src _] and bitwise matches
   [Sddmm.run h.src a b]. *)
let sddmm ?pool ?ws (h : t) (a : Dense.t) (b : Dense.t) =
  if a.Dense.rows <> h.n_rows then
    invalid_arg "Hybrid.sddmm: A row count must match mask rows";
  if b.Dense.cols <> h.n_cols then
    invalid_arg "Hybrid.sddmm: B column count must match mask cols";
  if a.Dense.cols <> b.Dense.rows then
    invalid_arg "Hybrid.sddmm: inner dimension mismatch";
  let k = a.Dense.cols in
  let src = h.src in
  let out = Workspace.alloc_uninit ws (Csr.nnz src) in
  let ad = a.Dense.data and bd = b.Dense.data and bn = b.Dense.cols in
  let ell_cols = h.ell_cols and ell_len = h.ell_len and width = h.width in
  let tail_ptr = h.tail.Csr.row_ptr and tail_cols = h.tail.Csr.col_idx in
  let row_ptr = src.Csr.row_ptr in
  let dot abase col v =
    let acc = ref 0. in
    for q = 0 to k - 1 do
      acc :=
        !acc
        +. (Array.unsafe_get ad (abase + q)
            *. Array.unsafe_get bd ((q * bn) + col))
    done;
    v *. !acc
  in
  Parallel.rows_weighted ?pool ~prefix:row_ptr (fun lo hi ->
      for i = lo to hi - 1 do
        let abase = i * k and eb = i * width and len = ell_len.(i) in
        let base = row_ptr.(i) in
        (match h.ell_vals with
        | Some ev ->
            for s = 0 to len - 1 do
              out.(base + s) <- dot abase ell_cols.(eb + s) ev.(eb + s)
            done
        | None ->
            for s = 0 to len - 1 do
              out.(base + s) <- dot abase ell_cols.(eb + s) 1.
            done);
        let t0 = tail_ptr.(i) in
        match h.tail.Csr.values with
        | Some tv ->
            for p = t0 to tail_ptr.(i + 1) - 1 do
              out.(base + len + p - t0) <- dot abase tail_cols.(p) tv.(p)
            done
        | None ->
            for p = t0 to tail_ptr.(i + 1) - 1 do
              out.(base + len + p - t0) <- dot abase tail_cols.(p) 1.
            done
      done);
  Csr.with_values src out

(* Rank-1 SDDMM (the attention-score shape): mirrors [Sddmm.rank1]. *)
let rank1 ?pool ?ws (h : t) d_left d_right =
  if Array.length d_left <> h.n_rows then
    invalid_arg "Hybrid.rank1: left vector dimension mismatch";
  if Array.length d_right <> h.n_cols then
    invalid_arg "Hybrid.rank1: right vector dimension mismatch";
  let src = h.src in
  let out = Workspace.alloc_uninit ws (Csr.nnz src) in
  let ell_cols = h.ell_cols and ell_len = h.ell_len and width = h.width in
  let tail_ptr = h.tail.Csr.row_ptr and tail_cols = h.tail.Csr.col_idx in
  let row_ptr = src.Csr.row_ptr in
  Parallel.rows_weighted ?pool ~prefix:row_ptr (fun lo hi ->
      for i = lo to hi - 1 do
        let dl = d_left.(i) in
        let eb = i * width and len = ell_len.(i) and base = row_ptr.(i) in
        (match h.ell_vals with
        | Some ev ->
            for s = 0 to len - 1 do
              out.(base + s) <- ev.(eb + s) *. dl *. d_right.(ell_cols.(eb + s))
            done
        | None ->
            for s = 0 to len - 1 do
              out.(base + s) <- 1. *. dl *. d_right.(ell_cols.(eb + s))
            done);
        let t0 = tail_ptr.(i) in
        match h.tail.Csr.values with
        | Some tv ->
            for p = t0 to tail_ptr.(i + 1) - 1 do
              out.(base + len + p - t0) <- tv.(p) *. dl *. d_right.(tail_cols.(p))
            done
        | None ->
            for p = t0 to tail_ptr.(i + 1) - 1 do
              out.(base + len + p - t0) <- 1. *. dl *. d_right.(tail_cols.(p))
            done
      done);
  Csr.with_values src out

let pp ppf h =
  Format.fprintf ppf "hybrid %dx%d nnz=%d width=%d packing=%.2f tail=%d"
    h.n_rows h.n_cols (nnz h) h.width (packing h) (tail_nnz h)
