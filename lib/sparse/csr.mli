(** Compressed-sparse-row matrices.

    The computation format for all sparse primitives. A CSR matrix is either
    {e weighted} ([values = Some _]) or {e unweighted} ([values = None],
    every stored entry implicitly [1.]) — the distinction matters because the
    paper's cheaper aggregation for unweighted graphs (Appendix B) never
    touches edge values, and the matrix-IR sub-attributes
    [weighted]/[unweighted] (Table I) are exactly this flag. *)

type t = private {
  n_rows : int;
  n_cols : int;
  row_ptr : int array;        (** length [n_rows + 1] *)
  col_idx : int array;        (** length [nnz], column indices, sorted per row *)
  values : float array option; (** [None] = unweighted (all entries 1.) *)
}

val of_coo : ?keep_values:bool -> Coo.t -> t
(** Converts from COO. With [keep_values:false] (default [true]) the values
    are dropped and the result is unweighted. *)

val make :
  n_rows:int -> n_cols:int -> row_ptr:int array -> col_idx:int array ->
  values:float array option -> t
(** Direct constructor; validates monotone [row_ptr], array lengths, and
    column bounds. *)

val nnz : t -> int

val is_weighted : t -> bool

val value : t -> int -> float
(** [value m p] is the value of the [p]-th stored entry ([1.] when
    unweighted). *)

val with_values : t -> float array -> t
(** Replaces the value array (same structure). Raises [Invalid_argument] on a
    length mismatch. *)

val drop_values : t -> t
(** Forgets values, yielding the unweighted structure. *)

val row_degrees : t -> int array
(** Number of stored entries per row (out-degree). *)

val col_degrees : t -> int array
(** Number of stored entries per column (in-degree). *)

val transpose : t -> t
(** Structure-and-value transpose in O(nnz). *)

val counting_scatter :
  n_buckets:int -> bucket:(int -> int -> int) -> t ->
  int array * int array * int array
(** [counting_scatter ~n_buckets ~bucket m] distributes the stored entries
    into stable buckets with one counting pass. [bucket row p] names the
    destination bucket of the [p]-th stored entry (which lives in [row]).
    Returns [(ptr, order, src_row)]: [ptr] is the bucket prefix (length
    [n_buckets + 1]), and for each destination slot [q],
    [order.(q)] is the source entry position and [src_row.(q)] its source
    row. Entries are scattered in row-major storage order, so each bucket
    preserves that order — {!Csc.of_csr} gets per-column sorted rows and the
    reorder engine gets permuted rows whose entry (and FP accumulation)
    order matches the source bit for bit. *)

val get : t -> int -> int -> float
(** [get m i j] is the entry at [(i, j)], [0.] if not stored. Binary search
    within the row. *)

val to_dense : t -> Granii_tensor.Dense.t

val of_dense : ?eps:float -> Granii_tensor.Dense.t -> t
(** Sparsifies a dense matrix, keeping entries with magnitude above [eps]
    (default: keep exact non-zeros). *)

val map_values : (float -> float) -> t -> t
(** Applies [f] to every stored value (an unweighted matrix is materialized
    as weighted first). *)

val equal_structure : t -> t -> bool
(** Same dimensions and sparsity pattern. *)

val equal_approx : ?eps:float -> t -> t -> bool
(** Same structure and approximately equal values. *)

val iter : (int -> int -> float -> unit) -> t -> unit
(** [iter f m] calls [f row col value] for every stored entry. *)

val pp : Format.formatter -> t -> unit
