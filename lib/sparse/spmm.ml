module Dense = Granii_tensor.Dense
module Semiring = Granii_tensor.Semiring
module Parallel = Granii_tensor.Parallel
module Workspace = Granii_tensor.Workspace

(* Feature-dimension tiling: above this width the dense operand's rows are
   processed in strips of [default_tile] columns so the slice of B touched by
   a chunk's neighborhoods stays cache-resident across consecutive output
   rows (SENSEi's observation that memory traffic, not flops, dominates
   SpMM). Strips re-walk the CSR structure once per strip, so tiling only
   pays off once rows of B outgrow the index-rewalk cost — narrow features
   keep the single-pass loop. Per output element the accumulation still runs
   over the row's nonzeros in ascending order, so tiled, untiled, and
   parallel kernels all agree bit for bit. *)
let tile_threshold = 512
let default_tile = 256

let strip_width k = function
  | Some t when t > 0 -> min t k
  | Some _ | None -> if k >= tile_threshold then default_tile else k

let run ?(semiring = Semiring.plus_times) ?pool ?ws ?tile_k (a : Csr.t) (b : Dense.t) =
  if a.Csr.n_cols <> b.Dense.rows then
    invalid_arg "Spmm.run: inner dimension mismatch";
  let n = a.Csr.n_rows and k = b.Dense.cols in
  let bd = b.Dense.data in
  let row_ptr = a.Csr.row_ptr and col_idx = a.Csr.col_idx in
  let tk = strip_width k tile_k in
  (* All branches chunk output rows with the nonzero-balanced partitioner:
     a row never spans chunks, so per-row accumulation order — and therefore
     the result, bit for bit — matches the sequential kernel. *)
  if Semiring.is_plus_times semiring || Semiring.equal_name semiring Semiring.plus_rhs
  then begin
    let out = Workspace.alloc ws (n * k) in
    (match a.Csr.values with
    | Some vals when Semiring.is_plus_times semiring ->
        Parallel.rows_weighted ?pool ~prefix:row_ptr (fun lo hi ->
            let j0 = ref 0 in
            while !j0 < k do
              let jhi = min k (!j0 + tk) in
              for i = lo to hi - 1 do
                let obase = i * k in
                for p = row_ptr.(i) to row_ptr.(i + 1) - 1 do
                  let v = vals.(p) in
                  let bbase = col_idx.(p) * k in
                  for j = !j0 to jhi - 1 do
                    out.(obase + j) <- out.(obase + j) +. (v *. bd.(bbase + j))
                  done
                done
              done;
              j0 := jhi
            done)
    | Some _ | None ->
        (* Unweighted fast path, and plus_rhs on any matrix: the edge value is
           never read (the paper's cheap aggregation for unweighted graphs). *)
        Parallel.rows_weighted ?pool ~prefix:row_ptr (fun lo hi ->
            let j0 = ref 0 in
            while !j0 < k do
              let jhi = min k (!j0 + tk) in
              for i = lo to hi - 1 do
                let obase = i * k in
                for p = row_ptr.(i) to row_ptr.(i + 1) - 1 do
                  let bbase = col_idx.(p) * k in
                  for j = !j0 to jhi - 1 do
                    out.(obase + j) <- out.(obase + j) +. bd.(bbase + j)
                  done
                done
              done;
              j0 := jhi
            done));
    Dense.of_flat ~rows:n ~cols:k out
  end
  else begin
    (* Generic-semiring path, in the same row-major accumulation structure as
       the fast path (one pass over each row's nonzeros, streaming over B's
       rows) instead of an element-at-a-time [Dense.init] that re-walked
       [row_ptr] bounds per (i, j). *)
    let sr = semiring in
    let out = Workspace.alloc_fill ws sr.Semiring.zero (n * k) in
    Parallel.rows_weighted ?pool ~prefix:row_ptr (fun lo hi ->
        let j0 = ref 0 in
        while !j0 < k do
          let jhi = min k (!j0 + tk) in
          for i = lo to hi - 1 do
            let obase = i * k in
            for p = row_ptr.(i) to row_ptr.(i + 1) - 1 do
              let v = Csr.value a p in
              let bbase = col_idx.(p) * k in
              for j = !j0 to jhi - 1 do
                out.(obase + j) <- sr.Semiring.add out.(obase + j) (sr.Semiring.mul v bd.(bbase + j))
              done
            done
          done;
          j0 := jhi
        done);
    Dense.of_flat ~rows:n ~cols:k out
  end

let run_transposed ?pool ?ws (b : Dense.t) (a : Csr.t) =
  if b.Dense.cols <> a.Csr.n_rows then
    invalid_arg "Spmm.run_transposed: inner dimension mismatch";
  let m = b.Dense.rows and n = a.Csr.n_cols in
  let out = Workspace.alloc ws (m * n) in
  let bd = b.Dense.data in
  let row_ptr = a.Csr.row_ptr and col_idx = a.Csr.col_idx in
  (* (B * A).(i, c) = sum over r of B.(i, r) * A.(r, c): iterate the sparse
     entries (r, c) and scatter into row i of the output, so writes stay in a
     single contiguous row per outer iteration — and each output row is owned
     by one chunk, so the parallel path scatters without conflicts. *)
  (match a.Csr.values with
  | Some vals ->
      Parallel.rows ?pool ~n:m (fun lo hi ->
          for i = lo to hi - 1 do
            let bbase = i * b.Dense.cols and obase = i * n in
            for r = 0 to a.Csr.n_rows - 1 do
              let biv = bd.(bbase + r) in
              if biv <> 0. then
                for p = row_ptr.(r) to row_ptr.(r + 1) - 1 do
                  let c = col_idx.(p) in
                  out.(obase + c) <- out.(obase + c) +. (biv *. vals.(p))
                done
            done
          done)
  | None ->
      Parallel.rows ?pool ~n:m (fun lo hi ->
          for i = lo to hi - 1 do
            let bbase = i * b.Dense.cols and obase = i * n in
            for r = 0 to a.Csr.n_rows - 1 do
              let biv = bd.(bbase + r) in
              if biv <> 0. then
                for p = row_ptr.(r) to row_ptr.(r + 1) - 1 do
                  let c = col_idx.(p) in
                  out.(obase + c) <- out.(obase + c) +. biv
                done
            done
          done));
  Dense.of_flat ~rows:m ~cols:n out

let spmv ?semiring ?pool (a : Csr.t) (v : Granii_tensor.Vector.t) =
  let b = Dense.of_flat ~rows:(Array.length v) ~cols:1 (Array.copy v) in
  let c = run ?semiring ?pool a b in
  c.Dense.data
