module Dense = Granii_tensor.Dense

type t = {
  n_rows : int;
  n_cols : int;
  col_ptr : int array;
  row_idx : int array;
  values : float array option;
}

let nnz m = m.col_ptr.(m.n_cols)
let is_weighted m = m.values <> None

let of_csr (csr : Csr.t) =
  (* One counting-sort pass bucketed by column — no transposed Csr.t
     intermediate. Scatter order is row-major, so each column's row indices
     come out sorted and values land next to their entry. *)
  let col_idx = csr.Csr.col_idx in
  let col_ptr, order, row_idx =
    Csr.counting_scatter ~n_buckets:csr.Csr.n_cols
      ~bucket:(fun _ p -> col_idx.(p))
      csr
  in
  let values =
    match csr.Csr.values with
    | None -> None
    | Some v -> Some (Array.map (fun p -> v.(p)) order)
  in
  { n_rows = csr.Csr.n_rows; n_cols = csr.Csr.n_cols; col_ptr; row_idx; values }

let to_csr m =
  Csr.transpose
    (Csr.make ~n_rows:m.n_cols ~n_cols:m.n_rows ~row_ptr:m.col_ptr
       ~col_idx:m.row_idx ~values:m.values)

let value m p = match m.values with None -> 1. | Some v -> v.(p)

let get m i j =
  let lo = ref m.col_ptr.(j) and hi = ref (m.col_ptr.(j + 1) - 1) in
  let found = ref 0. in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let r = m.row_idx.(mid) in
    if r = i then begin
      found := value m mid;
      lo := !hi + 1
    end
    else if r < i then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let to_dense m =
  let d = Dense.zeros m.n_rows m.n_cols in
  for j = 0 to m.n_cols - 1 do
    for p = m.col_ptr.(j) to m.col_ptr.(j + 1) - 1 do
      Dense.set d m.row_idx.(p) j (value m p)
    done
  done;
  d

let spmm (a : t) (b : Dense.t) =
  if a.n_cols <> b.Dense.rows then invalid_arg "Csc.spmm: inner dimension mismatch";
  let n = a.n_rows and k = b.Dense.cols in
  let out = Array.make (n * k) 0. in
  let bd = b.Dense.data in
  (* Column-driven: column j of A contributes A(., j) * B(j, .) — every
     stored entry scatters one scaled row of B into the output. *)
  (match a.values with
  | Some vals ->
      for j = 0 to a.n_cols - 1 do
        let bbase = j * k in
        for p = a.col_ptr.(j) to a.col_ptr.(j + 1) - 1 do
          let v = vals.(p) in
          let obase = a.row_idx.(p) * k in
          for c = 0 to k - 1 do
            out.(obase + c) <- out.(obase + c) +. (v *. bd.(bbase + c))
          done
        done
      done
  | None ->
      for j = 0 to a.n_cols - 1 do
        let bbase = j * k in
        for p = a.col_ptr.(j) to a.col_ptr.(j + 1) - 1 do
          let obase = a.row_idx.(p) * k in
          for c = 0 to k - 1 do
            out.(obase + c) <- out.(obase + c) +. bd.(bbase + c)
          done
        done
      done);
  Dense.of_flat ~rows:n ~cols:k out

let equal_approx ?eps a b = Csr.equal_approx ?eps (to_csr a) (to_csr b)
