module Dense = Granii_tensor.Dense

type t = {
  n_rows : int;
  n_cols : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array option;
}

let nnz m = m.row_ptr.(m.n_rows)
let is_weighted m = m.values <> None

let value m p = match m.values with None -> 1. | Some v -> v.(p)

let make ~n_rows ~n_cols ~row_ptr ~col_idx ~values =
  if Array.length row_ptr <> n_rows + 1 then
    invalid_arg "Csr.make: row_ptr must have length n_rows + 1";
  if row_ptr.(0) <> 0 then invalid_arg "Csr.make: row_ptr.(0) must be 0";
  for i = 0 to n_rows - 1 do
    if row_ptr.(i + 1) < row_ptr.(i) then
      invalid_arg "Csr.make: row_ptr must be monotone"
  done;
  let count = row_ptr.(n_rows) in
  if Array.length col_idx <> count then
    invalid_arg "Csr.make: col_idx length must equal row_ptr.(n_rows)";
  Array.iter
    (fun c -> if c < 0 || c >= n_cols then invalid_arg "Csr.make: column out of bounds")
    col_idx;
  (match values with
  | Some v when Array.length v <> count ->
      invalid_arg "Csr.make: values length must equal nnz"
  | Some _ | None -> ());
  { n_rows; n_cols; row_ptr; col_idx; values }

let of_coo ?(keep_values = true) (coo : Coo.t) =
  let n_rows = coo.Coo.n_rows and n_cols = coo.Coo.n_cols in
  let entries = coo.Coo.entries in
  let count = Array.length entries in
  let row_ptr = Array.make (n_rows + 1) 0 in
  Array.iter (fun (r, _, _) -> row_ptr.(r + 1) <- row_ptr.(r + 1) + 1) entries;
  for i = 0 to n_rows - 1 do
    row_ptr.(i + 1) <- row_ptr.(i + 1) + row_ptr.(i)
  done;
  let col_idx = Array.make count 0 in
  let vals = Array.make count 0. in
  (* COO entries are already sorted by (row, col), so a single pass fills
     each row's segment in column order. *)
  let cursor = Array.copy row_ptr in
  Array.iter
    (fun (r, c, v) ->
      let p = cursor.(r) in
      col_idx.(p) <- c;
      vals.(p) <- v;
      cursor.(r) <- p + 1)
    entries;
  { n_rows;
    n_cols;
    row_ptr;
    col_idx;
    values = (if keep_values then Some vals else None) }

let with_values m values =
  if Array.length values <> nnz m then invalid_arg "Csr.with_values: length mismatch";
  { m with values = Some values }

let drop_values m = { m with values = None }

let row_degrees m = Array.init m.n_rows (fun i -> m.row_ptr.(i + 1) - m.row_ptr.(i))

let col_degrees m =
  let deg = Array.make m.n_cols 0 in
  Array.iter (fun c -> deg.(c) <- deg.(c) + 1) m.col_idx;
  deg

let transpose m =
  let count = nnz m in
  let row_ptr' = Array.make (m.n_cols + 1) 0 in
  Array.iter (fun c -> row_ptr'.(c + 1) <- row_ptr'.(c + 1) + 1) m.col_idx;
  for i = 0 to m.n_cols - 1 do
    row_ptr'.(i + 1) <- row_ptr'.(i + 1) + row_ptr'.(i)
  done;
  let col_idx' = Array.make count 0 in
  let vals' = match m.values with None -> None | Some _ -> Some (Array.make count 0.) in
  let cursor = Array.copy row_ptr' in
  for i = 0 to m.n_rows - 1 do
    for p = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      let c = m.col_idx.(p) in
      let q = cursor.(c) in
      col_idx'.(q) <- i;
      (match (vals', m.values) with
      | Some dst, Some src -> dst.(q) <- src.(p)
      | None, None -> ()
      | Some _, None | None, Some _ -> assert false);
      cursor.(c) <- q + 1
    done
  done;
  { n_rows = m.n_cols; n_cols = m.n_rows; row_ptr = row_ptr'; col_idx = col_idx'; values = vals' }

(* Shared counting-sort pass: distribute the stored entries of [m] into
   [n_buckets] stable buckets. Entries are visited in row-major storage order,
   so within a bucket they keep that order — the property both consumers rely
   on: CSC construction gets row indices sorted per column, and the reorder
   engine gets a permuted matrix whose per-row entry order (and therefore
   per-element FP accumulation order) matches the source row exactly. *)
let counting_scatter ~n_buckets ~bucket m =
  let count = nnz m in
  let ptr = Array.make (n_buckets + 1) 0 in
  for i = 0 to m.n_rows - 1 do
    for p = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      let b = bucket i p in
      if b < 0 || b >= n_buckets then
        invalid_arg "Csr.counting_scatter: bucket out of range";
      ptr.(b + 1) <- ptr.(b + 1) + 1
    done
  done;
  for b = 0 to n_buckets - 1 do
    ptr.(b + 1) <- ptr.(b + 1) + ptr.(b)
  done;
  let order = Array.make count 0 in
  let src_row = Array.make count 0 in
  let cursor = Array.copy ptr in
  for i = 0 to m.n_rows - 1 do
    for p = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      let b = bucket i p in
      let q = cursor.(b) in
      order.(q) <- p;
      src_row.(q) <- i;
      cursor.(b) <- q + 1
    done
  done;
  (ptr, order, src_row)

let get m i j =
  let lo = ref m.row_ptr.(i) and hi = ref (m.row_ptr.(i + 1) - 1) in
  let found = ref 0. in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = m.col_idx.(mid) in
    if c = j then begin
      found := value m mid;
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let to_dense m =
  let d = Dense.zeros m.n_rows m.n_cols in
  for i = 0 to m.n_rows - 1 do
    for p = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      Dense.set d i m.col_idx.(p) (value m p)
    done
  done;
  d

let of_dense ?(eps = 0.) d =
  let rows, cols = Dense.dims d in
  let entries = ref [] in
  for i = rows - 1 downto 0 do
    for j = cols - 1 downto 0 do
      let v = Dense.get d i j in
      if Float.abs v > eps || (eps = 0. && v <> 0.) then entries := (i, j, v) :: !entries
    done
  done;
  of_coo (Coo.make ~n_rows:rows ~n_cols:cols (Array.of_list !entries))

let map_values f m =
  let count = nnz m in
  let src = match m.values with None -> Array.make count 1. | Some v -> v in
  { m with values = Some (Array.map f src) }

let equal_structure a b =
  a.n_rows = b.n_rows && a.n_cols = b.n_cols
  && a.row_ptr = b.row_ptr && a.col_idx = b.col_idx

let equal_approx ?(eps = 1e-9) a b =
  equal_structure a b
  && begin
       let ok = ref true in
       for p = 0 to nnz a - 1 do
         let va = value a p and vb = value b p in
         let bound = eps *. Float.max 1. (Float.max (Float.abs va) (Float.abs vb)) in
         if Float.abs (va -. vb) > bound then ok := false
       done;
       !ok
     end

let iter f m =
  for i = 0 to m.n_rows - 1 do
    for p = m.row_ptr.(i) to m.row_ptr.(i + 1) - 1 do
      f i m.col_idx.(p) (value m p)
    done
  done

let pp ppf m =
  Format.fprintf ppf "csr %dx%d nnz=%d%s" m.n_rows m.n_cols (nnz m)
    (if is_weighted m then " weighted" else " unweighted")
