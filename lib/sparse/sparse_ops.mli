(** Assorted sparse kernels used by GNN compositions. *)

val scale_rows : ?pool:Granii_tensor.Parallel.t -> ?ws:Granii_tensor.Workspace.t ->
  Granii_tensor.Vector.t -> Csr.t -> Csr.t
(** [scale_rows d a] is {m \mathrm{diag}(d) \cdot A}: stored entry
    {m (i, j)} becomes {m d_i \cdot A_{ij}}. The result is weighted. *)

val scale_cols : ?pool:Granii_tensor.Parallel.t -> ?ws:Granii_tensor.Workspace.t ->
  Csr.t -> Granii_tensor.Vector.t -> Csr.t
(** [scale_cols a d] is {m A \cdot \mathrm{diag}(d)}. *)

val scale_bilateral : ?pool:Granii_tensor.Parallel.t -> ?ws:Granii_tensor.Workspace.t ->
  Granii_tensor.Vector.t -> Csr.t -> Granii_tensor.Vector.t -> Csr.t
(** [scale_bilateral dl a dr] is {m \mathrm{diag}(d^L) \cdot A \cdot
    \mathrm{diag}(d^R)} in a single pass — the fused form of GCN's
    normalization precomputation (equals {!Sddmm.rank1}). *)

val add : Csr.t -> Csr.t -> Csr.t
(** Sparse-sparse addition; the result's structure is the union. Raises
    [Invalid_argument] on a shape mismatch. *)

val row_softmax : ?pool:Granii_tensor.Parallel.t -> ?ws:Granii_tensor.Workspace.t ->
  Csr.t -> Csr.t
(** Softmax over each row's stored values (numerically stabilized): the
    attention-normalization kernel of GAT. Rows with no entries are left
    empty. *)

val row_sums : Csr.t -> Granii_tensor.Vector.t
(** Sum of stored values per row; on an unweighted matrix this is the
    out-degree vector as floats. *)

val weighted_degrees : Csr.t -> Granii_tensor.Vector.t
(** Alias of {!row_sums}, under the name the GNN code uses. *)

val binned_degrees : Csr.t -> Granii_tensor.Vector.t
(** Degree computation in the style of WiseGraph's PyTorch binning function
    (paper, Sec. VI-C1): scatter-add of ones over destination bins. The
    result equals {!row_sums} on an unweighted matrix; the point of modeling
    it separately is its very different cost profile (atomic contention on
    dense graphs), which {!Granii_hw.Kernel_model} accounts for. *)
