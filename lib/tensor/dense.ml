type t = { rows : int; cols : int; data : float array }

let create rows cols x =
  if rows < 0 || cols < 0 then invalid_arg "Dense.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) x }

let init rows cols f =
  if rows < 0 || cols < 0 then invalid_arg "Dense.init: negative dimension";
  let data = Array.make (rows * cols) 0. in
  for i = 0 to rows - 1 do
    let base = i * cols in
    for j = 0 to cols - 1 do
      data.(base + j) <- f i j
    done
  done;
  { rows; cols; data }

let zeros rows cols = create rows cols 0.
let ones rows cols = create rows cols 1.
let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then invalid_arg "Dense.of_arrays: no rows";
  let cols = Array.length a.(0) in
  Array.iter
    (fun r -> if Array.length r <> cols then invalid_arg "Dense.of_arrays: ragged rows")
    a;
  init rows cols (fun i j -> a.(i).(j))

let of_flat ~rows ~cols data =
  if Array.length data <> rows * cols then invalid_arg "Dense.of_flat: size mismatch";
  { rows; cols; data }

(* SplitMix64-style deterministic generator so tests and benches reproduce
   across platforms regardless of the stdlib Random implementation. *)
let splitmix_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let uniform_of_state state =
  (* 53 random bits -> [0, 1) *)
  let bits = Int64.shift_right_logical (splitmix_next state) 11 in
  Int64.to_float bits /. 9007199254740992.

let random ?(seed = 0) ?(scale = 1.) rows cols =
  let state = ref (Int64.of_int (seed + 0x1234567)) in
  init rows cols (fun _ _ -> scale *. ((2. *. uniform_of_state state) -. 1.))

let glorot ?(seed = 0) rows cols =
  let bound = sqrt (6. /. float_of_int (rows + cols)) in
  random ~seed ~scale:bound rows cols

let copy m = { m with data = Array.copy m.data }

let get m i j = m.data.((i * m.cols) + j)
let set m i j x = m.data.((i * m.cols) + j) <- x
let dims m = (m.rows, m.cols)
let row m i = Array.sub m.data (i * m.cols) m.cols
let col m j = Array.init m.rows (fun i -> get m i j)
let to_arrays m = Array.init m.rows (fun i -> row m i)

let matmul_unblocked ?pool ?ws a b =
  if a.cols <> b.rows then invalid_arg "Dense.matmul: inner dimension mismatch";
  let m = a.rows and k = a.cols and n = b.cols in
  let out = Workspace.alloc ws (m * n) in
  let ad = a.data and bd = b.data in
  (* i-k-j loop order: the inner loop streams over contiguous rows of B and
     the output, which is the cache-friendly order for row-major storage.
     Parallel path: output rows are partitioned statically, each computed
     exactly as in the sequential loop, so results are bitwise identical. *)
  Parallel.rows ?pool ~n:m (fun lo hi ->
      for i = lo to hi - 1 do
        let arow = i * k and orow = i * n in
        for p = 0 to k - 1 do
          let av = ad.(arow + p) in
          if av <> 0. then begin
            let brow = p * n in
            for j = 0 to n - 1 do
              out.(orow + j) <- out.(orow + j) +. (av *. bd.(brow + j))
            done
          end
        done
      done);
  { rows = m; cols = n; data = out }

(* ---- cache-blocked GEMM ----

   GEBP structure: B is packed one column block at a time into an
   [nr]-interleaved panel (micro-panel mp holds columns [j0 + mp*nr ..) in
   k-major order, so the micro-kernel streams it contiguously), and a
   register-tiled [mr x nr] micro-kernel accumulates over the full K
   extent. Because every output element still accumulates its products in
   ascending-k order — registers instead of read-modify-write on [out],
   but the same additions in the same order — the result is bitwise
   identical to {!matmul_unblocked} on finite inputs, for any block sizes
   and any row partition (so the [?pool] path stays deterministic too).

   A's rows are already contiguous in row-major storage, so only B needs
   packing. The panel (at most [panel_words] floats, sized to sit in L2
   while each k-major micro-panel walks through L1) is the only scratch;
   with [?ws] it comes from the workspace, making steady-state GEMM
   allocation-free apart from the output itself. *)

let mr = 4
let nr = 2
let panel_words = 32_768 (* 256 KB of packed B per column block *)

(* Accumulation scratch: [mr * nr] floats reused across every micro-tile of
   a chunk (flat float arrays store doubles unboxed; a [float ref] would box
   on every store). *)
let micro_generic ~acc ~ad ~panel ~out ~k ~n ~i0 ~mb ~pb ~jbase ~cb =
  Array.fill acc 0 (mr * nr) 0.;
  for kk = 0 to k - 1 do
    let pk = pb + (kk * nr) in
    for r = 0 to mb - 1 do
      let av = Array.unsafe_get ad (((i0 + r) * k) + kk) in
      for c = 0 to cb - 1 do
        let idx = (r * nr) + c in
        Array.unsafe_set acc idx
          (Array.unsafe_get acc idx +. (av *. Array.unsafe_get panel (pk + c)))
      done
    done
  done;
  for r = 0 to mb - 1 do
    let orow = ((i0 + r) * n) + jbase in
    for c = 0 to cb - 1 do
      Array.unsafe_set out (orow + c) (Array.unsafe_get acc ((r * nr) + c))
    done
  done

(* Specialized full 4x2 tile: 8 accumulators, B loaded once per k and reused
   across the four rows. Same per-output accumulation order as the generic
   kernel. *)
let micro_4x2 ~acc ~ad ~panel ~out ~k ~n ~i0 ~pb ~jbase =
  Array.fill acc 0 8 0.;
  let a0 = i0 * k and a1 = (i0 + 1) * k and a2 = (i0 + 2) * k and a3 = (i0 + 3) * k in
  for kk = 0 to k - 1 do
    let pk = pb + (kk * nr) in
    let b0 = Array.unsafe_get panel pk and b1 = Array.unsafe_get panel (pk + 1) in
    let x0 = Array.unsafe_get ad (a0 + kk) in
    Array.unsafe_set acc 0 (Array.unsafe_get acc 0 +. (x0 *. b0));
    Array.unsafe_set acc 1 (Array.unsafe_get acc 1 +. (x0 *. b1));
    let x1 = Array.unsafe_get ad (a1 + kk) in
    Array.unsafe_set acc 2 (Array.unsafe_get acc 2 +. (x1 *. b0));
    Array.unsafe_set acc 3 (Array.unsafe_get acc 3 +. (x1 *. b1));
    let x2 = Array.unsafe_get ad (a2 + kk) in
    Array.unsafe_set acc 4 (Array.unsafe_get acc 4 +. (x2 *. b0));
    Array.unsafe_set acc 5 (Array.unsafe_get acc 5 +. (x2 *. b1));
    let x3 = Array.unsafe_get ad (a3 + kk) in
    Array.unsafe_set acc 6 (Array.unsafe_get acc 6 +. (x3 *. b0));
    Array.unsafe_set acc 7 (Array.unsafe_get acc 7 +. (x3 *. b1))
  done;
  for r = 0 to 3 do
    let orow = ((i0 + r) * n) + jbase in
    Array.unsafe_set out orow (Array.unsafe_get acc (r * nr));
    Array.unsafe_set out (orow + 1) (Array.unsafe_get acc ((r * nr) + 1))
  done

let blocked_rows ~ad ~bd ~out ~panel ~acc ~m:_ ~k ~n lo hi =
  let nc =
    let by_budget = panel_words / max 1 k in
    max nr (min n (by_budget - (by_budget mod nr)))
  in
  let j0 = ref 0 in
  while !j0 < n do
    let ncb = min nc (n - !j0) in
    let n_micro = (ncb + nr - 1) / nr in
    (* pack columns [j0, j0+ncb) of B; padding lanes are never read because
       the micro-kernels only touch [cb] real columns *)
    for mp = 0 to n_micro - 1 do
      let jb = !j0 + (mp * nr) in
      let cb = min nr (!j0 + ncb - jb) in
      let base = mp * k * nr in
      for kk = 0 to k - 1 do
        let brow = (kk * n) + jb in
        let pk = base + (kk * nr) in
        for c = 0 to cb - 1 do
          Array.unsafe_set panel (pk + c) (Array.unsafe_get bd (brow + c))
        done
      done
    done;
    let i0 = ref lo in
    while !i0 < hi do
      let mb = min mr (hi - !i0) in
      for mp = 0 to n_micro - 1 do
        let jbase = !j0 + (mp * nr) in
        let cb = min nr (!j0 + ncb - jbase) in
        let pb = mp * k * nr in
        if mb = mr && cb = nr then
          micro_4x2 ~acc ~ad ~panel ~out ~k ~n ~i0:!i0 ~pb ~jbase
        else micro_generic ~acc ~ad ~panel ~out ~k ~n ~i0:!i0 ~mb ~pb ~jbase ~cb
      done;
      i0 := !i0 + mb
    done;
    j0 := !j0 + ncb
  done

(* Below this flop count the packing overhead outweighs the locality win and
   the streaming kernel is used instead. *)
let blocked_flop_threshold = 32_768

let matmul ?pool ?ws a b =
  if a.cols <> b.rows then invalid_arg "Dense.matmul: inner dimension mismatch";
  let m = a.rows and k = a.cols and n = b.cols in
  if m * k * n < blocked_flop_threshold || n < nr || k < 8 then
    matmul_unblocked ?pool ?ws a b
  else begin
    let out = Workspace.alloc_uninit ws (m * n) in
    let ad = a.data and bd = b.data in
    let panel_len =
      let nc =
        let by_budget = panel_words / max 1 k in
        max nr (min n (by_budget - (by_budget mod nr)))
      in
      (* interleaved panels round the column block up to a multiple of nr *)
      k * (((min n nc + nr - 1) / nr) * nr)
    in
    (match pool with
    | None ->
        let panel = Workspace.alloc_uninit ws panel_len in
        let acc = Workspace.alloc_uninit ws (mr * nr) in
        blocked_rows ~ad ~bd ~out ~panel ~acc ~m ~k ~n 0 m;
        Workspace.give_back ws acc;
        Workspace.give_back ws panel
    | Some _ ->
        (* each chunk packs its own panel: the workspace is not domain-safe,
           so parallel scratch comes from the regular allocator *)
        Parallel.rows ?pool ~n:m (fun lo hi ->
            let panel = Array.create_float panel_len in
            let acc = Array.create_float (mr * nr) in
            blocked_rows ~ad ~bd ~out ~panel ~acc ~m ~k ~n lo hi));
    { rows = m; cols = n; data = out }
  end

let matmul_gen ?pool ?ws (sr : Semiring.t) a b =
  if Semiring.is_plus_times sr then matmul ?pool ?ws a b
  else begin
    if a.cols <> b.rows then invalid_arg "Dense.matmul_gen: inner dimension mismatch";
    let m = a.rows and k = a.cols and n = b.cols in
    let out = Workspace.alloc_fill ws sr.zero (m * n) in
    let ad = a.data and bd = b.data in
    Parallel.rows ?pool ~n:m (fun lo hi ->
        for i = lo to hi - 1 do
          let arow = i * k and orow = i * n in
          for p = 0 to k - 1 do
            let av = ad.(arow + p) in
            let brow = p * n in
            for j = 0 to n - 1 do
              out.(orow + j) <- sr.add out.(orow + j) (sr.mul av bd.(brow + j))
            done
          done
        done);
    { rows = m; cols = n; data = out }
  end

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let map2 ?pool ?ws f a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Dense.map2: shape mismatch";
  let len = Array.length a.data in
  let out = Workspace.alloc_uninit ws len in
  let ad = a.data and bd = b.data in
  Parallel.rows ?pool ~n:len (fun lo hi ->
      for i = lo to hi - 1 do
        out.(i) <- f ad.(i) bd.(i)
      done);
  { a with data = out }

let map ?pool ?ws f m =
  let len = Array.length m.data in
  let out = Workspace.alloc_uninit ws len in
  let src = m.data in
  Parallel.rows ?pool ~n:len (fun lo hi ->
      for i = lo to hi - 1 do
        out.(i) <- f src.(i)
      done);
  { m with data = out }

(* The arithmetic elementwise ops get direct loops rather than going through
   [map2 f]: calling an unknown closure boxes every float argument and
   result, which costs ~4 minor-heap words per element — the dominant
   per-iteration allocation once outputs come from a workspace. *)

let binop ?pool ?ws op a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Dense.map2: shape mismatch";
  let len = Array.length a.data in
  let out = Workspace.alloc_uninit ws len in
  let ad = a.data and bd = b.data in
  Parallel.rows ?pool ~n:len (fun lo hi ->
      match op with
      | `Add ->
          for i = lo to hi - 1 do
            Array.unsafe_set out i
              (Array.unsafe_get ad i +. Array.unsafe_get bd i)
          done
      | `Sub ->
          for i = lo to hi - 1 do
            Array.unsafe_set out i
              (Array.unsafe_get ad i -. Array.unsafe_get bd i)
          done
      | `Mul ->
          for i = lo to hi - 1 do
            Array.unsafe_set out i
              (Array.unsafe_get ad i *. Array.unsafe_get bd i)
          done);
  { a with data = out }

let add ?pool ?ws a b = binop ?pool ?ws `Add a b
let sub ?pool ?ws a b = binop ?pool ?ws `Sub a b
let mul_elementwise ?pool ?ws a b = binop ?pool ?ws `Mul a b

let scale ?pool ?ws s m =
  let len = Array.length m.data in
  let out = Workspace.alloc_uninit ws len in
  let src = m.data in
  Parallel.rows ?pool ~n:len (fun lo hi ->
      for i = lo to hi - 1 do
        Array.unsafe_set out i (s *. Array.unsafe_get src i)
      done);
  { m with data = out }

let add_row_vector m v =
  if Array.length v <> m.cols then invalid_arg "Dense.add_row_vector: dimension mismatch";
  init m.rows m.cols (fun i j -> get m i j +. v.(j))

let row_broadcast ?pool ?ws d m =
  if Array.length d <> m.rows then invalid_arg "Dense.row_broadcast: dimension mismatch";
  let k = m.cols in
  let out = Workspace.alloc_uninit ws (m.rows * k) in
  let src = m.data in
  Parallel.rows ?pool ~n:m.rows (fun lo hi ->
      for i = lo to hi - 1 do
        let base = i * k in
        let di = d.(i) in
        for j = 0 to k - 1 do
          out.(base + j) <- di *. src.(base + j)
        done
      done);
  { m with data = out }

let col_broadcast ?pool ?ws m d =
  if Array.length d <> m.cols then invalid_arg "Dense.col_broadcast: dimension mismatch";
  let k = m.cols in
  let out = Workspace.alloc_uninit ws (m.rows * k) in
  let src = m.data in
  Parallel.rows ?pool ~n:m.rows (fun lo hi ->
      for i = lo to hi - 1 do
        let base = i * k in
        for j = 0 to k - 1 do
          out.(base + j) <- src.(base + j) *. d.(j)
        done
      done);
  { m with data = out }

let concat_cols parts =
  match parts with
  | [] -> invalid_arg "Dense.concat_cols: empty list"
  | first :: _ ->
      let rows = first.rows in
      List.iter
        (fun m ->
          if m.rows <> rows then invalid_arg "Dense.concat_cols: row count mismatch")
        parts;
      let total = List.fold_left (fun acc m -> acc + m.cols) 0 parts in
      let out = create rows total 0. in
      let offset = ref 0 in
      List.iter
        (fun m ->
          for i = 0 to rows - 1 do
            Array.blit m.data (i * m.cols) out.data ((i * total) + !offset) m.cols
          done;
          offset := !offset + m.cols)
        parts;
      out

let split_cols m parts =
  if parts <= 0 || m.cols mod parts <> 0 then
    invalid_arg "Dense.split_cols: width not divisible by parts";
  let w = m.cols / parts in
  List.init parts (fun p -> init m.rows w (fun i j -> get m i ((p * w) + j)))

(* Direct loops for the same reason as [binop]: a closure call per element
   boxes its float argument and result. *)
let unop ?pool ?ws op m =
  let len = Array.length m.data in
  let out = Workspace.alloc_uninit ws len in
  let src = m.data in
  Parallel.rows ?pool ~n:len (fun lo hi ->
      match op with
      | `Relu ->
          for i = lo to hi - 1 do
            let x = Array.unsafe_get src i in
            Array.unsafe_set out i (if x > 0. then x else 0.)
          done
      | `Leaky slope ->
          for i = lo to hi - 1 do
            let x = Array.unsafe_get src i in
            Array.unsafe_set out i (if x > 0. then x else slope *. x)
          done
      | `Sigmoid ->
          for i = lo to hi - 1 do
            let x = Array.unsafe_get src i in
            Array.unsafe_set out i (1. /. (1. +. exp (-.x)))
          done);
  { m with data = out }

let relu ?pool ?ws m = unop ?pool ?ws `Relu m
let sigmoid ?pool ?ws m = unop ?pool ?ws `Sigmoid m
let leaky_relu ?pool ?ws ?(slope = 0.2) m = unop ?pool ?ws (`Leaky slope) m

let softmax_rows ?pool ?ws m =
  let src = m.data in
  let out = Workspace.alloc_uninit ws (Array.length src) in
  Parallel.rows ?pool ~n:m.rows (fun lo hi ->
      for i = lo to hi - 1 do
        let base = i * m.cols in
        let mx = ref neg_infinity in
        for j = 0 to m.cols - 1 do
          if src.(base + j) > !mx then mx := src.(base + j)
        done;
        let total = ref 0. in
        for j = 0 to m.cols - 1 do
          let e = exp (src.(base + j) -. !mx) in
          out.(base + j) <- e;
          total := !total +. e
        done;
        for j = 0 to m.cols - 1 do
          out.(base + j) <- out.(base + j) /. !total
        done
      done);
  { m with data = out }

let log_softmax_rows ?pool ?ws m =
  let src = m.data in
  let out = Workspace.alloc_uninit ws (Array.length src) in
  Parallel.rows ?pool ~n:m.rows (fun lo hi ->
      for i = lo to hi - 1 do
        let base = i * m.cols in
        let mx = ref neg_infinity in
        for j = 0 to m.cols - 1 do
          if src.(base + j) > !mx then mx := src.(base + j)
        done;
        let total = ref 0. in
        for j = 0 to m.cols - 1 do
          total := !total +. exp (src.(base + j) -. !mx)
        done;
        let log_z = !mx +. log !total in
        for j = 0 to m.cols - 1 do
          out.(base + j) <- src.(base + j) -. log_z
        done
      done);
  { m with data = out }

let sum m = Array.fold_left ( +. ) 0. m.data

let frobenius m =
  sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. m.data)

let row_sums m =
  Vector.init m.rows (fun i ->
      let acc = ref 0. in
      for j = 0 to m.cols - 1 do
        acc := !acc +. get m i j
      done;
      !acc)

let col_sums m =
  let acc = Vector.zeros m.cols in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      acc.(j) <- acc.(j) +. get m i j
    done
  done;
  acc

let argmax_rows m =
  Array.init m.rows (fun i ->
      let best = ref 0 in
      for j = 1 to m.cols - 1 do
        if get m i j > get m i !best then best := j
      done;
      !best)

let max_abs_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then infinity
  else begin
    let d = ref 0. in
    for i = 0 to Array.length a.data - 1 do
      let x = Float.abs (a.data.(i) -. b.data.(i)) in
      if x > !d then d := x
    done;
    !d
  end

let equal_approx ?(eps = 1e-8) a b =
  a.rows = b.rows && a.cols = b.cols
  && begin
       let ok = ref true in
       for i = 0 to Array.length a.data - 1 do
         let d = Float.abs (a.data.(i) -. b.data.(i)) in
         let bound =
           eps *. Float.max 1. (Float.max (Float.abs a.data.(i)) (Float.abs b.data.(i)))
         in
         if d > bound then ok := false
       done;
       !ok
     end

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to Stdlib.min (m.rows - 1) 9 do
    Format.fprintf ppf "|";
    for j = 0 to Stdlib.min (m.cols - 1) 9 do
      Format.fprintf ppf " %8.4f" (get m i j)
    done;
    if m.cols > 10 then Format.fprintf ppf " ...";
    Format.fprintf ppf " |@,"
  done;
  if m.rows > 10 then Format.fprintf ppf "... (%dx%d)@," m.rows m.cols;
  Format.fprintf ppf "@]"
