type t = {
  name : string;
  zero : float;
  add : float -> float -> float;
  mul : float -> float -> float;
}

let make ~name ~zero ~add ~mul = { name; zero; add; mul }

let plus_times = make ~name:"plus_times" ~zero:0. ~add:( +. ) ~mul:( *. )
let max_plus = make ~name:"max_plus" ~zero:neg_infinity ~add:Float.max ~mul:( +. )
let min_plus = make ~name:"min_plus" ~zero:infinity ~add:Float.min ~mul:( +. )
let max_times = make ~name:"max_times" ~zero:neg_infinity ~add:Float.max ~mul:( *. )
let plus_rhs = make ~name:"plus_rhs" ~zero:0. ~add:( +. ) ~mul:(fun _ y -> y)

let or_and =
  make ~name:"or_and" ~zero:0.
    ~add:(fun x y -> if x <> 0. || y <> 0. then 1. else 0.)
    ~mul:(fun x y -> if x <> 0. && y <> 0. then 1. else 0.)

let is_plus_times sr = sr == plus_times
let equal_name a b = String.equal a.name b.name
let pp ppf sr = Format.fprintf ppf "%s" sr.name
