(* A small reusable pool of OCaml 5 domains for data-parallel kernels.

   Design constraints (DESIGN.md, "Threading model"):

   - No work stealing and no atomics: every parallel region is a static
     partition of an index range into at most [threads] chunks, each chunk
     processed sequentially by one domain, writing to a disjoint slice of the
     output. The partition is a pure function of the problem shape and the
     pool width, so for a fixed pool the output is bitwise identical across
     runs — and because every kernel keeps whole rows inside one chunk, it is
     in fact bitwise identical to the sequential kernel.

   - Workers are long-lived and communicate through per-worker mailboxes
     (mutex + two condition variables), so a parallel region costs two
     synchronizations per worker and no allocation beyond the chunk
     closures. *)

type job = No_job | Job of (unit -> unit) | Quit
type outcome = Pending | Finished of exn option

type slot = {
  mutex : Mutex.t;
  work_ready : Condition.t;
  work_done : Condition.t;
  mutable job : job;
  mutable outcome : outcome;
}

type t = {
  n_threads : int;
  slots : slot array; (* length n_threads - 1; the caller is worker 0 *)
  domains : unit Domain.t array;
  mutable live : bool;
}

let make_slot () =
  { mutex = Mutex.create ();
    work_ready = Condition.create ();
    work_done = Condition.create ();
    job = No_job;
    outcome = Pending }

let rec worker_loop slot =
  Mutex.lock slot.mutex;
  while (match slot.job with No_job -> true | Job _ | Quit -> false) do
    Condition.wait slot.work_ready slot.mutex
  done;
  let job = slot.job in
  slot.job <- No_job;
  Mutex.unlock slot.mutex;
  match job with
  | Quit -> ()
  | No_job -> assert false
  | Job f ->
      let result = (try f (); None with e -> Some e) in
      Mutex.lock slot.mutex;
      slot.outcome <- Finished result;
      Condition.signal slot.work_done;
      Mutex.unlock slot.mutex;
      worker_loop slot

let submit slot f =
  Mutex.lock slot.mutex;
  slot.job <- Job f;
  slot.outcome <- Pending;
  Condition.signal slot.work_ready;
  Mutex.unlock slot.mutex

let join slot =
  Mutex.lock slot.mutex;
  while (match slot.outcome with Pending -> true | Finished _ -> false) do
    Condition.wait slot.work_done slot.mutex
  done;
  let result = match slot.outcome with Finished r -> r | Pending -> assert false in
  slot.outcome <- Pending;
  Mutex.unlock slot.mutex;
  result

let default_threads () =
  match Sys.getenv_opt "GRANII_THREADS" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 1)
  | None -> max 1 (Domain.recommended_domain_count ())

let create ?threads () =
  let n_threads =
    match threads with Some t -> max 1 t | None -> default_threads ()
  in
  let slots = Array.init (n_threads - 1) (fun _ -> make_slot ()) in
  let domains =
    Array.map (fun slot -> Domain.spawn (fun () -> worker_loop slot)) slots
  in
  { n_threads; slots; domains; live = true }

let threads t = t.n_threads

let shutdown t =
  if t.live then begin
    t.live <- false;
    Array.iter
      (fun slot ->
        Mutex.lock slot.mutex;
        slot.job <- Quit;
        Condition.signal slot.work_ready;
        Mutex.unlock slot.mutex)
      t.slots;
    Array.iter Domain.join t.domains
  end

(* ---- partitioners ---- *)

let chunks ~n ~parts =
  let parts = max 1 (min parts (max n 1)) in
  Array.init parts (fun c -> (c * n / parts, (c + 1) * n / parts))

let balanced_chunks ~prefix ~parts =
  let n = Array.length prefix - 1 in
  if n < 0 then invalid_arg "Parallel.balanced_chunks: empty prefix";
  let parts = max 1 (min parts (max n 1)) in
  let total = prefix.(n) in
  if total = 0 || parts = 1 then chunks ~n ~parts
  else begin
    (* Boundary [c] is the first row whose cumulative weight reaches
       [c/parts] of the total — rows with huge weight may leave some chunks
       empty, which is exactly the skew-balancing intent. *)
    let bounds = Array.make (parts + 1) n in
    bounds.(0) <- 0;
    let row = ref 0 in
    for c = 1 to parts - 1 do
      let target = c * total / parts in
      while !row < n && prefix.(!row) < target do
        incr row
      done;
      bounds.(c) <- !row
    done;
    Array.init parts (fun c -> (bounds.(c), bounds.(c + 1)))
  end

(* ---- parallel iteration ---- *)

let iter_chunks t chunk_array f =
  let n_chunks = Array.length chunk_array in
  if n_chunks = 0 then ()
  else if Array.length t.slots = 0 || n_chunks = 1 then
    Array.iter (fun (lo, hi) -> f lo hi) chunk_array
  else begin
    if not t.live then invalid_arg "Parallel.iter_chunks: pool was shut down";
    (* Waves of at most [threads] chunks: the caller takes the first chunk of
       each wave and the workers the rest. Chunk order (hence the partition a
       given domain runs) is fixed, keeping determinism. *)
    let next = ref 0 in
    let first_exn = ref None in
    let record = function
      | None -> ()
      | Some e -> if !first_exn = None then first_exn := Some e
    in
    while !next < n_chunks do
      let batch = min (Array.length t.slots + 1) (n_chunks - !next) in
      for j = 1 to batch - 1 do
        let lo, hi = chunk_array.(!next + j) in
        submit t.slots.(j - 1) (fun () -> f lo hi)
      done;
      (let lo, hi = chunk_array.(!next) in
       record (try f lo hi; None with e -> Some e));
      for j = 1 to batch - 1 do
        record (join t.slots.(j - 1))
      done;
      next := !next + batch
    done;
    match !first_exn with Some e -> raise e | None -> ()
  end

let rows ?pool ~n f =
  match pool with
  | None -> f 0 n
  | Some t ->
      if t.n_threads = 1 || n <= 1 then f 0 n
      else iter_chunks t (chunks ~n ~parts:t.n_threads) f

let rows_weighted ?pool ~prefix f =
  let n = Array.length prefix - 1 in
  match pool with
  | None -> f 0 n
  | Some t ->
      if t.n_threads = 1 || n <= 1 then f 0 n
      else iter_chunks t (balanced_chunks ~prefix ~parts:t.n_threads) f
