(* A size-classed pool of float buffers for steady-state plan execution.

   Kernels back their outputs with flat [float array]s whose length is
   load-bearing (Dense.of_flat and Csr.with_values reject padding), so a
   size class is an exact length: plans have a handful of distinct
   intermediate shapes, which keeps the class count tiny while still letting
   a GCN's [n*k_out] GEMM output be recycled into the SpMM output of the
   next iteration.

   Ownership model (DESIGN.md, "Memory model"):

   - [alloc]/[alloc_uninit] hand out a buffer and record it as issued.
   - [give_back] returns an issued buffer to its class's free list. It is
     keyed by physical identity and is a no-op on buffers the workspace did
     not issue (input bindings, caller-owned arrays), so callers may release
     conservatively.
   - [reclaim] returns {e every} issued buffer at once — the arena reset the
     executor performs when a new run begins. Anything produced by the
     previous run on the same workspace (report output, intermediates) is
     invalidated by the next run.

   The internal free lists and the issued set are flat grow-only vectors, so
   in steady state (every class warm) an alloc/give_back cycle allocates
   nothing. A workspace is NOT domain-safe: only the orchestrating thread
   may call it; worker domains of a {!Parallel} pool only ever write into
   buffers that were acquired before the parallel region started. *)

type vec = { mutable items : float array array; mutable len : int }

let vec_make () = { items = Array.make 8 [||]; len = 0 }

let vec_push v a =
  if v.len = Array.length v.items then begin
    let grown = Array.make (2 * Array.length v.items) [||] in
    Array.blit v.items 0 grown 0 v.len;
    v.items <- grown
  end;
  v.items.(v.len) <- a;
  v.len <- v.len + 1

let vec_pop v =
  if v.len = 0 then None
  else begin
    v.len <- v.len - 1;
    let a = v.items.(v.len) in
    v.items.(v.len) <- [||];
    Some a
  end

(* Physical-identity removal; swap with the last element so removal is O(1)
   after the scan. Returns [true] if the buffer was present. *)
let vec_remove v a =
  let found = ref false in
  let i = ref 0 in
  while (not !found) && !i < v.len do
    if v.items.(!i) == a then begin
      found := true;
      v.len <- v.len - 1;
      v.items.(!i) <- v.items.(v.len);
      v.items.(v.len) <- [||]
    end
    else incr i
  done;
  !found

type stats = {
  hits : int;            (* allocations served from a free list *)
  misses : int;          (* allocations that had to create a fresh buffer *)
  issued : int;          (* buffers currently handed out *)
  held_words : int;      (* words parked in free lists *)
  issued_words : int;    (* words currently handed out *)
}

type t = {
  classes : (int, vec) Hashtbl.t;
  out : vec;                       (* issued buffers, any class *)
  mutable hits : int;
  mutable misses : int;
  mutable held_words : int;
  mutable issued_words : int;
}

let create () =
  { classes = Hashtbl.create 16;
    out = vec_make ();
    hits = 0;
    misses = 0;
    held_words = 0;
    issued_words = 0 }

let class_of t len =
  match Hashtbl.find_opt t.classes len with
  | Some v -> v
  | None ->
      let v = vec_make () in
      Hashtbl.add t.classes len v;
      v

let acquire t len =
  let cls = class_of t len in
  let buf =
    match vec_pop cls with
    | Some a ->
        t.hits <- t.hits + 1;
        t.held_words <- t.held_words - len;
        a
    | None ->
        t.misses <- t.misses + 1;
        if len = 0 then [||] else Array.create_float len
  in
  vec_push t.out buf;
  t.issued_words <- t.issued_words + len;
  buf

(* Option-taking entry points so kernels can thread [?ws] straight through:
   without a workspace they behave exactly like [Array.make len 0.] /
   [Array.create_float len]. *)

let alloc ws len =
  match ws with
  | None -> Array.make len 0.
  | Some t ->
      let a = acquire t len in
      Array.fill a 0 len 0.;
      a

let alloc_uninit ws len =
  match ws with None -> Array.create_float len | Some t -> acquire t len

let alloc_fill ws x len =
  match ws with
  | None -> Array.make len x
  | Some t ->
      let a = acquire t len in
      Array.fill a 0 len x;
      a

let give_back ws a =
  match ws with
  | None -> ()
  | Some t ->
      if vec_remove t.out a then begin
        let len = Array.length a in
        t.issued_words <- t.issued_words - len;
        t.held_words <- t.held_words + len;
        vec_push (class_of t len) a
      end

let reclaim t =
  while t.out.len > 0 do
    match vec_pop t.out with
    | None -> ()
    | Some a ->
        let len = Array.length a in
        t.issued_words <- t.issued_words - len;
        t.held_words <- t.held_words + len;
        vec_push (class_of t len) a
  done

let clear t =
  reclaim t;
  Hashtbl.reset t.classes;
  t.held_words <- 0

let stats t =
  { hits = t.hits;
    misses = t.misses;
    issued = t.out.len;
    held_words = t.held_words;
    issued_words = t.issued_words }

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "hits=%d misses=%d issued=%d held=%dw out=%dw" s.hits
    s.misses s.issued s.held_words s.issued_words
