(** Size-classed float-buffer pool for allocation-free steady-state
    execution.

    Kernel output buffers must have exact lengths ([Dense.of_flat],
    [Csr.with_values] reject padding), so each size class is one exact
    length; plans only have a handful of distinct intermediate shapes, so
    the class count stays tiny.

    {2 Ownership rules}

    - A buffer obtained from {!alloc}/{!alloc_uninit} is {e issued} until it
      is returned by {!give_back} or the workspace is {!reclaim}ed.
    - {!give_back} is keyed by physical identity and ignores buffers this
      workspace did not issue, so callers may release conservatively (e.g.
      an executor freeing whatever backs a dead intermediate, bindings
      included).
    - {!reclaim} is the arena reset: {!Granii_core.Executor.exec} performs it
      on entry, so every value produced by the previous run on the same
      workspace (output and intermediates alike) is invalidated by the next
      run. Copy anything you need to keep.

    A workspace is {b not} domain-safe. Only the orchestrating thread may
    call into it; {!Parallel} worker domains merely write into buffers
    acquired before the parallel region. In steady state (all classes warm)
    an alloc/give_back cycle performs no allocation at all. *)

type t

type stats = {
  hits : int;          (** allocations served from a free list *)
  misses : int;        (** allocations that created a fresh buffer *)
  issued : int;        (** buffers currently handed out *)
  held_words : int;    (** words parked in free lists *)
  issued_words : int;  (** words currently handed out *)
}

val create : unit -> t

val alloc : t option -> int -> float array
(** [alloc ws len] is a zero-filled buffer of exactly [len] floats —
    behaviourally identical to [Array.make len 0.], pooled when
    [ws = Some _]. *)

val alloc_uninit : t option -> int -> float array
(** Like {!alloc} but the contents are unspecified — only for kernels that
    store to every slot before reading it. *)

val alloc_fill : t option -> float -> int -> float array
(** [alloc_fill ws x len] = [Array.make len x], pooled. *)

val give_back : t option -> float array -> unit
(** Return an issued buffer to its free list. No-op when [ws = None], when
    the buffer was not issued by this workspace, or when it was already
    given back. *)

val reclaim : t -> unit
(** Move every issued buffer back to the free lists (arena reset). *)

val clear : t -> unit
(** Drop all pooled buffers (free lists included), keeping counters. *)

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
