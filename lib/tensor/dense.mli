(** Dense row-major matrices of floats.

    This is the dense substrate for every dense primitive in the paper:
    GEMM (Sec. II-A), row-broadcast (Eq. 1), elementwise non-linearities, and
    the dense operands of SpMM / SDDMM. Storage is a single flat
    [float array] in row-major order, so row slices used by sparse kernels
    are contiguous. *)

type t = private { rows : int; cols : int; data : float array }

(** {1 Construction} *)

val create : int -> int -> float -> t
(** [create rows cols x] is a [rows]x[cols] matrix filled with [x]. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init rows cols f] has entry [f i j] at position [(i, j)]. *)

val zeros : int -> int -> t

val ones : int -> int -> t

val identity : int -> t

val of_arrays : float array array -> t
(** Copies a rectangular array-of-rows. Raises [Invalid_argument] if the rows
    are ragged or there are zero rows. *)

val of_flat : rows:int -> cols:int -> float array -> t
(** Wraps a flat row-major array without copying. Raises [Invalid_argument]
    on a size mismatch. *)

val random : ?seed:int -> ?scale:float -> int -> int -> t
(** [random rows cols] has entries uniform in [[-scale, scale]]
    (default [scale = 1.]), from a deterministic PRNG seeded by [seed]
    (default [0]). *)

val glorot : ?seed:int -> int -> int -> t
(** Glorot/Xavier-uniform initialization for weight matrices:
    entries uniform in {m [\pm \sqrt{6/(fan_{in}+fan_{out})}]}. *)

val copy : t -> t

(** {1 Access} *)

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val dims : t -> int * int

val row : t -> int -> float array
(** [row m i] copies row [i]. *)

val col : t -> int -> float array
(** [col m j] copies column [j]. *)

val to_arrays : t -> float array array

(** {1 Linear algebra} *)

val matmul : ?pool:Parallel.t -> ?ws:Workspace.t -> t -> t -> t
(** [matmul a b] is the GEMM {m A \cdot B}. Raises [Invalid_argument] on an
    inner-dimension mismatch. Large products go through a cache-blocked
    kernel (packed B panels, register-tiled micro-kernel) whose result is
    bitwise identical to {!matmul_unblocked} on finite inputs. With
    [?pool], output rows are computed in parallel chunks; the result is
    bitwise identical to the sequential kernel. With [?ws], the output
    (and, sequentially, the packing scratch) comes from the workspace. *)

val matmul_unblocked : ?pool:Parallel.t -> ?ws:Workspace.t -> t -> t -> t
(** The streaming i-k-j GEMM without cache blocking — the kernel {!matmul}
    falls back to below its size threshold, exposed for benchmarking the
    tiled kernel against. *)

val matmul_gen : ?pool:Parallel.t -> ?ws:Workspace.t -> Semiring.t -> t -> t -> t
(** GEMM over an arbitrary semiring. [matmul_gen Semiring.plus_times] is
    {!matmul}. *)

val transpose : t -> t

val add : ?pool:Parallel.t -> ?ws:Workspace.t -> t -> t -> t

val sub : ?pool:Parallel.t -> ?ws:Workspace.t -> t -> t -> t

val scale : ?pool:Parallel.t -> ?ws:Workspace.t -> float -> t -> t

val mul_elementwise : ?pool:Parallel.t -> ?ws:Workspace.t -> t -> t -> t
(** Hadamard product. *)

val add_row_vector : t -> Vector.t -> t
(** [add_row_vector m v] adds [v] to every row of [m] (bias addition). *)

val concat_cols : t list -> t
(** Horizontal concatenation (equal row counts) — multi-head attention
    outputs are concatenated along the feature dimension. Raises
    [Invalid_argument] on an empty list or mismatched row counts. *)

val split_cols : t -> int -> t list
(** [split_cols m parts] splits the columns into [parts] equal slices —
    the inverse of {!concat_cols} for equal widths. Raises
    [Invalid_argument] if the width is not divisible. *)

val row_broadcast : ?pool:Parallel.t -> ?ws:Workspace.t -> Vector.t -> t -> t
(** [row_broadcast d m] is the paper's row-broadcast primitive (Eq. 1):
    [c.(i).(j) = d.(i) *. m.(i).(j)], i.e. {m \mathrm{diag}(d) \cdot M}. *)

val col_broadcast : ?pool:Parallel.t -> ?ws:Workspace.t -> t -> Vector.t -> t
(** [col_broadcast m d] scales column [j] of [m] by [d.(j)],
    i.e. {m M \cdot \mathrm{diag}(d)}. *)

(** {1 Elementwise and reductions} *)

val map : ?pool:Parallel.t -> ?ws:Workspace.t -> (float -> float) -> t -> t

val map2 : ?pool:Parallel.t -> ?ws:Workspace.t -> (float -> float -> float) -> t -> t -> t

val relu : ?pool:Parallel.t -> ?ws:Workspace.t -> t -> t

val sigmoid : ?pool:Parallel.t -> ?ws:Workspace.t -> t -> t

val leaky_relu : ?pool:Parallel.t -> ?ws:Workspace.t -> ?slope:float -> t -> t
(** Leaky ReLU with negative [slope] (default [0.2], GAT's choice). *)

val softmax_rows : ?pool:Parallel.t -> ?ws:Workspace.t -> t -> t
(** Numerically-stable softmax applied to each row independently. *)

val log_softmax_rows : ?pool:Parallel.t -> ?ws:Workspace.t -> t -> t

val sum : t -> float

val frobenius : t -> float

val row_sums : t -> Vector.t

val col_sums : t -> Vector.t

val argmax_rows : t -> int array
(** Index of the maximum entry of each row (prediction extraction). *)

(** {1 Comparison and printing} *)

val equal_approx : ?eps:float -> t -> t -> bool
(** Entrywise comparison with mixed absolute/relative tolerance [eps]
    (default [1e-8]). *)

val max_abs_diff : t -> t -> float
(** Largest absolute entrywise difference; [infinity] if shapes differ. *)

val pp : Format.formatter -> t -> unit
