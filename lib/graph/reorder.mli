(** Vertex reordering for the locality engine.

    An ordering is a bijection on node ids chosen to improve the memory
    behavior of the sparse primitives: {!Degree_sort} clusters hub rows of
    the dense operand (power-law graphs), {!Bfs}/{!Rcm} (Cuthill–McKee and
    its reversal) shrink bandwidth so an edge's endpoints land close in
    memory (mesh-like graphs). {!Identity} is the no-op baseline.

    {!permute_csr} is a {e stable} symmetric permutation: each permuted row
    keeps its source row's entry order, so per-element FP accumulation in the
    sparse kernels sees the same term sequence and results stay bitwise equal
    to the unpermuted run once outputs are inverse-permuted. The price: the
    permuted matrix's rows are not sorted by column index, so it must not be
    fed to consumers that binary-search within rows ([Csr.get]) or merge
    sorted rows ([Sparse_ops.add]). The executor keeps permuted matrices
    internal to a run for exactly this reason. *)

type strategy = Identity | Degree_sort | Bfs | Rcm

type t = private {
  strategy : strategy;
  perm : int array; (** old id -> new id *)
  inv : int array;  (** new id -> old id *)
}

val strategy_to_string : strategy -> string

val strategy_of_string : string -> strategy option
(** Accepts ["identity"]/["none"], ["degree"]/["degree-sort"]/["degree_sort"],
    ["bfs"], ["rcm"]. *)

val all_strategies : strategy list

val compute : strategy -> Granii_sparse.Csr.t -> t
(** Computes an ordering from a square adjacency matrix. O(n log n + nnz). *)

val identity : int -> t

val of_perm : strategy:strategy -> int array -> t
(** Wraps an explicit old-to-new permutation; validates bijectivity. *)

val permute_csr : t -> Granii_sparse.Csr.t -> Granii_sparse.Csr.t
(** Stable symmetric permutation {m P A P^T} of a square matrix (values
    carried along). See the module header for the sortedness caveat. *)

val apply_graph : t -> Graph.t -> Graph.t
(** The permuted graph, renamed ["name+strategy"]. *)

val permute_dense_rows : t -> Granii_tensor.Dense.t -> Granii_tensor.Dense.t
(** Rows follow the nodes: new row [perm.(i)] is old row [i]. *)

val inverse_dense_rows : t -> Granii_tensor.Dense.t -> Granii_tensor.Dense.t
(** Inverse of {!permute_dense_rows} (recovers original row order). *)

val permute_vector : t -> float array -> float array

val inverse_vector : t -> float array -> float array

val bandwidth : ?order:t -> Granii_sparse.Csr.t -> float * int
(** [(average, maximum)] of [|i - j|] over stored entries, under [order] if
    given — the locality proxy the cost model consumes. *)

val pp : Format.formatter -> t -> unit
