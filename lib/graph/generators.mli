(** Synthetic graph generators.

    The paper evaluates on SuiteSparse / OGB / DGL graphs spanning road
    networks, power-law social graphs, co-purchase networks, and the very
    dense [mycielskian17]. Those datasets are not available offline, so these
    generators produce structural stand-ins from the same families; the
    mapping is in {!Datasets}. All generators are deterministic in [seed]. *)

val erdos_renyi : ?seed:int -> n:int -> avg_degree:float -> unit -> Graph.t
(** G(n, p) with [p] chosen so the expected (directed) degree is
    [avg_degree]; sampled by expected edge count for speed. *)

val barabasi_albert : ?seed:int -> n:int -> m:int -> unit -> Graph.t
(** Preferential attachment: each new node attaches to [m] existing nodes
    with probability proportional to degree. Produces the heavy-tailed degree
    distributions of co-purchase / co-authorship graphs. *)

val rmat : ?seed:int -> ?a:float -> ?b:float -> ?c:float -> scale:int ->
  edge_factor:int -> unit -> Graph.t
(** Recursive-matrix (Kronecker) generator with [2^scale] nodes and
    [edge_factor * 2^scale] sampled edges; the default quadrant probabilities
    [(a, b, c) = (0.57, 0.19, 0.19)] are the Graph500 power-law setting,
    matching social graphs like Reddit. *)

val grid2d : ?seed:int -> ?diagonal_fraction:float -> rows:int -> cols:int ->
  unit -> Graph.t
(** 4-neighbor lattice with a fraction of random diagonal shortcuts —
    a road-network stand-in (near-constant degree, huge diameter). *)

val mycielskian : ?levels:int -> unit -> Graph.t
(** Iterated Mycielski construction starting from {m K_2}; [levels] is the
    index [k] of {m M_k} (default [11]). Node count {m 3 \cdot 2^{k-2} - 1},
    edges roughly tripling per level — the same family as SuiteSparse's
    [mycielskian17], dense and highly regular. Raises [Invalid_argument] if
    [levels < 2]. *)

val blocked : ?seed:int -> ?block:int -> n:int -> blocks_per_row:int ->
  unit -> Graph.t
(** Block-structured graph: each aligned block row of size [block] (default
    [8], the BSR tile edge) picks [blocks_per_row] aligned block columns —
    always including its diagonal block — and densifies them fully, so the
    8x8 BSR tiling has fill close to 1. The dense-hardware best case for the
    block-sparse format. *)

val community_overlap : ?seed:int -> n:int -> groups:int -> degree:int ->
  unit -> Graph.t
(** High neighbor-overlap graph: nodes are split into [groups] contiguous
    communities and every member of a community connects to the same
    [degree] template neighbors drawn from its own community (sampled with
    replacement, so up to [degree] distinct), keeping symmetrized
    back-edges inside the template rows. Every non-template member row is
    an {e exact} duplicate of its community's template — the best case for
    the neighbor-dedup (CBM) format. *)

val star : n:int -> Graph.t
(** One hub connected to [n - 1] leaves: the extreme skew case for tests. *)

val ring : n:int -> Graph.t

val complete : n:int -> Graph.t
