module Csr = Granii_sparse.Csr
module Dense = Granii_tensor.Dense

(* Vertex reordering for the locality engine. An ordering is a bijection on
   node ids; running a plan on the permuted graph and inverse-permuting the
   output must reproduce the unpermuted run bit for bit. That holds because
   the symmetric permutation below is *stable*: each permuted row keeps its
   source row's entry order, so every per-element FP accumulation sees the
   same values in the same sequence — only memory addresses change. (The
   permuted matrix's rows are therefore NOT sorted by column index; consumers
   that binary-search rows must not be fed a permuted matrix.) *)

type strategy = Identity | Degree_sort | Bfs | Rcm

type t = {
  strategy : strategy;
  perm : int array; (* old id -> new id *)
  inv : int array;  (* new id -> old id *)
}

let strategy_to_string = function
  | Identity -> "identity"
  | Degree_sort -> "degree"
  | Bfs -> "bfs"
  | Rcm -> "rcm"

let strategy_of_string = function
  | "identity" | "none" -> Some Identity
  | "degree" | "degree-sort" | "degree_sort" -> Some Degree_sort
  | "bfs" -> Some Bfs
  | "rcm" -> Some Rcm
  | _ -> None

let all_strategies = [ Identity; Degree_sort; Bfs; Rcm ]

let invert perm =
  let inv = Array.make (Array.length perm) 0 in
  Array.iteri (fun old nw -> inv.(nw) <- old) perm;
  inv

let of_perm ~strategy perm =
  let n = Array.length perm in
  let seen = Array.make n false in
  Array.iter
    (fun p ->
      if p < 0 || p >= n || seen.(p) then
        invalid_arg "Reorder.of_perm: not a permutation";
      seen.(p) <- true)
    perm;
  { strategy; perm = Array.copy perm; inv = invert perm }

let identity n =
  { strategy = Identity; perm = Array.init n Fun.id; inv = Array.init n Fun.id }

(* Hubs first: new id ascends with descending degree (stable on ties), so
   high-degree rows of B — the ones most edges point at — cluster at the top
   of the dense operand and stay cache-resident. *)
let degree_sort (adj : Csr.t) =
  let n = adj.Csr.n_rows in
  let deg = Csr.row_degrees adj in
  let ids = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      if deg.(a) <> deg.(b) then compare deg.(b) deg.(a) else compare a b)
    ids;
  (* ids.(new) = old *)
  let perm = invert ids in
  { strategy = Degree_sort; perm; inv = ids }

(* Cuthill–McKee: BFS from a minimum-degree root of each component, visiting
   neighbors in ascending degree order. Numbers neighbors consecutively,
   shrinking bandwidth. [Rcm] reverses the visit order (the classic variant,
   usually a further profile reduction). *)
let cuthill_mckee ~reverse (adj : Csr.t) =
  let n = adj.Csr.n_rows in
  let deg = Csr.row_degrees adj in
  let visited = Array.make n false in
  let order = Array.make n 0 in
  let count = ref 0 in
  let queue = Queue.create () in
  let by_degree = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      if deg.(a) <> deg.(b) then compare deg.(a) deg.(b) else compare a b)
    by_degree;
  let nbrs = Array.make (Array.fold_left max 0 deg) 0 in
  Array.iter
    (fun root ->
      if not visited.(root) then begin
        visited.(root) <- true;
        Queue.push root queue;
        while not (Queue.is_empty queue) do
          let u = Queue.pop queue in
          order.(!count) <- u;
          incr count;
          let lo = adj.Csr.row_ptr.(u) and hi = adj.Csr.row_ptr.(u + 1) in
          let m = ref 0 in
          for p = lo to hi - 1 do
            let v = adj.Csr.col_idx.(p) in
            if not visited.(v) then begin
              visited.(v) <- true;
              nbrs.(!m) <- v;
              incr m
            end
          done;
          let frontier = Array.sub nbrs 0 !m in
          Array.sort
            (fun a b ->
              if deg.(a) <> deg.(b) then compare deg.(a) deg.(b)
              else compare a b)
            frontier;
          Array.iter (fun v -> Queue.push v queue) frontier
        done
      end)
    by_degree;
  let inv =
    if reverse then Array.init n (fun i -> order.(n - 1 - i)) else order
  in
  { strategy = (if reverse then Rcm else Bfs); perm = invert inv; inv }

let compute strategy (adj : Csr.t) =
  if adj.Csr.n_rows <> adj.Csr.n_cols then
    invalid_arg "Reorder.compute: adjacency must be square";
  match strategy with
  | Identity -> identity adj.Csr.n_rows
  | Degree_sort -> degree_sort adj
  | Bfs -> cuthill_mckee ~reverse:false adj
  | Rcm -> cuthill_mckee ~reverse:true adj

(* Symmetric permutation P A Pᵀ via the shared counting-scatter: row [i]
   lands in bucket [perm.(i)] whole and in source entry order (each bucket
   receives exactly one row), columns are remapped through [perm]. Stable in
   the sense documented at the top of this file. *)
let permute_csr r (m : Csr.t) =
  if m.Csr.n_rows <> m.Csr.n_cols then
    invalid_arg "Reorder.permute_csr: matrix must be square";
  if Array.length r.perm <> m.Csr.n_rows then
    invalid_arg "Reorder.permute_csr: size mismatch";
  let perm = r.perm in
  let row_ptr, order, _ =
    Csr.counting_scatter ~n_buckets:m.Csr.n_rows
      ~bucket:(fun i _ -> perm.(i))
      m
  in
  let src_cols = m.Csr.col_idx in
  let col_idx = Array.map (fun p -> perm.(src_cols.(p))) order in
  let values =
    match m.Csr.values with
    | None -> None
    | Some v -> Some (Array.map (fun p -> v.(p)) order)
  in
  Csr.make ~n_rows:m.Csr.n_rows ~n_cols:m.Csr.n_cols ~row_ptr ~col_idx ~values

let apply_graph r (g : Graph.t) =
  Graph.make
    ~name:(g.Graph.name ^ "+" ^ strategy_to_string r.strategy)
    (permute_csr r g.Graph.adj)

(* Row permutations of dense node-feature matrices: new row [perm.(i)] is old
   row [i]; the inverse gathers them back. Whole-row blits, values untouched. *)
let permute_dense_rows r (d : Dense.t) =
  if d.Dense.rows <> Array.length r.perm then
    invalid_arg "Reorder.permute_dense_rows: size mismatch";
  let k = d.Dense.cols in
  let out = Array.make (d.Dense.rows * k) 0. in
  Array.iteri
    (fun i nw -> Array.blit d.Dense.data (i * k) out (nw * k) k)
    r.perm;
  Dense.of_flat ~rows:d.Dense.rows ~cols:k out

let inverse_dense_rows r (d : Dense.t) =
  if d.Dense.rows <> Array.length r.perm then
    invalid_arg "Reorder.inverse_dense_rows: size mismatch";
  let k = d.Dense.cols in
  let out = Array.make (d.Dense.rows * k) 0. in
  Array.iteri
    (fun i nw -> Array.blit d.Dense.data (nw * k) out (i * k) k)
    r.perm;
  Dense.of_flat ~rows:d.Dense.rows ~cols:k out

let permute_vector r v =
  if Array.length v <> Array.length r.perm then
    invalid_arg "Reorder.permute_vector: size mismatch";
  let out = Array.make (Array.length v) 0. in
  Array.iteri (fun i nw -> out.(nw) <- v.(i)) r.perm;
  out

let inverse_vector r v =
  if Array.length v <> Array.length r.perm then
    invalid_arg "Reorder.inverse_vector: size mismatch";
  let out = Array.make (Array.length v) 0. in
  Array.iteri (fun i nw -> out.(i) <- v.(nw)) r.perm;
  out

(* (average, maximum) |i - j| over stored entries, optionally under an
   ordering — the quantity BFS/RCM minimize and the cost model's proxy for
   how far apart an edge's endpoints land in memory. *)
let bandwidth ?order (m : Csr.t) =
  let remap =
    match order with None -> Fun.id | Some r -> fun i -> r.perm.(i)
  in
  let sum = ref 0 and mx = ref 0 and count = ref 0 in
  Csr.iter
    (fun i j _ ->
      let b = abs (remap i - remap j) in
      sum := !sum + b;
      if b > !mx then mx := b;
      incr count)
    m;
  let avg = if !count = 0 then 0. else float_of_int !sum /. float_of_int !count in
  (avg, !mx)

let pp ppf r =
  Format.fprintf ppf "reorder %s (n=%d)" (strategy_to_string r.strategy)
    (Array.length r.perm)
