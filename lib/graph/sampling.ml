module Csr = Granii_sparse.Csr
module Coo = Granii_sparse.Coo
module Prng = Granii_tensor.Prng

let neighborhood ?(seed = 0) ~fanout (g : Graph.t) =
  if fanout <= 0 then invalid_arg "Sampling.neighborhood: fanout must be positive";
  let rng = Prng.create (seed + 909) in
  let adj = g.Graph.adj in
  let n = Graph.n_nodes g in
  let entries = ref [] in
  for i = 0 to n - 1 do
    let lo = adj.Csr.row_ptr.(i) in
    let deg = adj.Csr.row_ptr.(i + 1) - lo in
    if deg <= fanout then
      for p = lo to lo + deg - 1 do
        entries := (i, adj.Csr.col_idx.(p), 1.) :: !entries
      done
    else begin
      let picks = Prng.sample_without_replacement rng fanout deg in
      Array.iter (fun off -> entries := (i, adj.Csr.col_idx.(lo + off), 1.) :: !entries) picks
    end
  done;
  let coo = Coo.make ~n_rows:n ~n_cols:n (Array.of_list !entries) in
  Graph.make
    ~name:(Printf.sprintf "%s_fanout%d_seed%d" g.Graph.name fanout seed)
    (Csr.of_coo ~keep_values:false coo)

let induced_subgraph (g : Graph.t) nodes =
  let k = Array.length nodes in
  let index = Hashtbl.create k in
  Array.iteri
    (fun new_id old_id ->
      if Hashtbl.mem index old_id then
        invalid_arg "Sampling.induced_subgraph: duplicate node id";
      Hashtbl.add index old_id new_id)
    nodes;
  let entries = ref [] in
  Array.iteri
    (fun new_src old_src ->
      let adj = g.Graph.adj in
      for p = adj.Csr.row_ptr.(old_src) to adj.Csr.row_ptr.(old_src + 1) - 1 do
        match Hashtbl.find_opt index adj.Csr.col_idx.(p) with
        | Some new_dst -> entries := (new_src, new_dst, 1.) :: !entries
        | None -> ()
      done)
    nodes;
  let coo = Coo.make ~n_rows:k ~n_cols:k (Array.of_list !entries) in
  Graph.make ~name:(g.Graph.name ^ "_induced") (Csr.of_coo ~keep_values:false coo)

let random_nodes ?(seed = 0) (g : Graph.t) k =
  let rng = Prng.create (seed + 808) in
  Prng.sample_without_replacement rng k (Graph.n_nodes g)

(* Restore the sorted-column CSR invariant per row: a compact renumbering
   (seeds first) is not monotone in the original ids, so the scattered
   columns arrive unsorted. Rows are small; a per-row sort is cheap. *)
let sort_rows ~row_ptr col_idx =
  Array.iteri
    (fun r lo ->
      if r < Array.length row_ptr - 1 then begin
        let len = row_ptr.(r + 1) - lo in
        if len > 1 then begin
          let sub = Array.sub col_idx lo len in
          Array.sort compare sub;
          Array.blit sub 0 col_idx lo len
        end
      end)
    row_ptr

let induced_compact (g : Graph.t) nodes =
  let n = Graph.n_nodes g in
  let k = Array.length nodes in
  let newid = Array.make n (-1) in
  Array.iteri
    (fun ni oi ->
      if oi < 0 || oi >= n then
        invalid_arg "Sampling.induced_compact: node id out of range";
      if newid.(oi) >= 0 then
        invalid_arg "Sampling.induced_compact: duplicate node id";
      newid.(oi) <- ni)
    nodes;
  let adj = g.Graph.adj in
  (* one counting pass over the original adjacency: entries with both
     endpoints kept scatter to their new source row, everything else to the
     trash bucket [k] *)
  let bucket i p =
    let bi = newid.(i) in
    if bi < 0 || newid.(adj.Csr.col_idx.(p)) < 0 then k else bi
  in
  let ptr, order, _ = Csr.counting_scatter ~n_buckets:(k + 1) ~bucket adj in
  let m = ptr.(k) in
  let row_ptr = Array.sub ptr 0 (k + 1) in
  let col_idx = Array.make m 0 in
  for q = 0 to m - 1 do
    col_idx.(q) <- newid.(adj.Csr.col_idx.(order.(q)))
  done;
  sort_rows ~row_ptr col_idx;
  Graph.make
    ~name:(g.Graph.name ^ "_induced")
    (Csr.make ~n_rows:k ~n_cols:k ~row_ptr ~col_idx ~values:None)

type layered = {
  subgraph : Graph.t;
  nodes : int array;
  n_seeds : int;
}

let layered_fanout ?(seed = 0) ~fanouts ~seeds (g : Graph.t) =
  if fanouts = [] then
    invalid_arg "Sampling.layered_fanout: fanouts must be non-empty";
  List.iter
    (fun f ->
      if f <= 0 then
        invalid_arg "Sampling.layered_fanout: fanouts must be positive")
    fanouts;
  let n = Graph.n_nodes g in
  let n_seeds = Array.length seeds in
  if n_seeds = 0 then
    invalid_arg "Sampling.layered_fanout: seeds must be non-empty";
  let newid = Array.make n (-1) in
  let rev_order = ref [] in
  let count = ref 0 in
  let visit oi =
    if newid.(oi) >= 0 then newid.(oi)
    else begin
      let ni = !count in
      newid.(oi) <- ni;
      incr count;
      rev_order := oi :: !rev_order;
      ni
    end
  in
  Array.iter
    (fun oi ->
      if oi < 0 || oi >= n then
        invalid_arg "Sampling.layered_fanout: seed node out of range";
      if newid.(oi) >= 0 then
        invalid_arg "Sampling.layered_fanout: duplicate seed node";
      ignore (visit oi))
    seeds;
  let adj = g.Graph.adj in
  let rev_edges = ref [] in
  let n_edges = ref 0 in
  let frontier = ref (Array.to_list seeds) in
  List.iteri
    (fun layer fanout ->
      let next = ref [] in
      List.iter
        (fun u ->
          let nu = newid.(u) in
          let lo = adj.Csr.row_ptr.(u) in
          let deg = adj.Csr.row_ptr.(u + 1) - lo in
          let pick p =
            let v = adj.Csr.col_idx.(p) in
            let fresh = newid.(v) < 0 in
            let nv = visit v in
            if fresh then next := v :: !next;
            rev_edges := (nu, nv) :: !rev_edges;
            incr n_edges
          in
          if deg <= fanout then
            for p = lo to lo + deg - 1 do
              pick p
            done
          else begin
            (* one generator per (seed, layer, node): the draw is a pure
               function of those three, independent of frontier iteration
               order and of any thread count *)
            let rng =
              Prng.create
                (seed
                lxor (((layer + 1) * 0x9e3779b1) + (u * 0x85ebca6b) + 0x6d))
            in
            let picks = Prng.sample_without_replacement rng fanout deg in
            Array.sort compare picks;
            Array.iter (fun off -> pick (lo + off)) picks
          end)
        !frontier;
      frontier := List.rev !next)
    fanouts;
  (* each source samples exactly once (at first visit), and one sampling
     draws distinct positions, so the edge list has no duplicates *)
  let k = !count in
  let m = !n_edges in
  let row_ptr = Array.make (k + 1) 0 in
  List.iter (fun (s, _) -> row_ptr.(s + 1) <- row_ptr.(s + 1) + 1) !rev_edges;
  for i = 0 to k - 1 do
    row_ptr.(i + 1) <- row_ptr.(i + 1) + row_ptr.(i)
  done;
  let col_idx = Array.make m 0 in
  let cursor = Array.copy row_ptr in
  List.iter
    (fun (s, d) ->
      col_idx.(cursor.(s)) <- d;
      cursor.(s) <- cursor.(s) + 1)
    (List.rev !rev_edges);
  sort_rows ~row_ptr col_idx;
  let subgraph =
    Graph.make
      ~name:(Printf.sprintf "%s_layered_seed%d" g.Graph.name seed)
      (Csr.make ~n_rows:k ~n_cols:k ~row_ptr ~col_idx ~values:None)
  in
  { subgraph; nodes = Array.of_list (List.rev !rev_order); n_seeds }
