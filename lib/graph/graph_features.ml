module Csr = Granii_sparse.Csr

type t = {
  n_nodes : float;
  nnz : float;
  density : float;
  avg_degree : float;
  max_degree : float;
  min_degree : float;
  degree_cv : float;
  degree_gini : float;
  skew_fraction : float;
  empty_fraction : float;
  degree_variance : float;
  avg_bandwidth : float;
  max_bandwidth : float;
  ell_packing : float;
  block_fill : float;
  neighbor_overlap : float;
}

let gini sorted_degrees =
  (* Gini of a non-negative, ascending-sorted sample:
     G = (2 * sum_i i * x_i / (n * sum x)) - (n + 1) / n, with i starting
     at 1. Zero total degree yields 0 (perfect equality). *)
  let n = Array.length sorted_degrees in
  if n = 0 then 0.
  else begin
    let total = ref 0. and weighted = ref 0. in
    Array.iteri
      (fun i x ->
        total := !total +. x;
        weighted := !weighted +. (float_of_int (i + 1) *. x))
      sorted_degrees;
    if !total = 0. then 0.
    else begin
      let nf = float_of_int n in
      (2. *. !weighted /. (nf *. !total)) -. ((nf +. 1.) /. nf)
    end
  end

let extract (g : Graph.t) =
  let n = Graph.n_nodes g in
  let deg = Csr.row_degrees g.Graph.adj in
  let degf = Array.map float_of_int deg in
  let nnz = Graph.n_edges g in
  let nf = float_of_int n in
  let avg = if n = 0 then 0. else float_of_int nnz /. nf in
  let mx = Array.fold_left max 0 deg in
  let mn = Array.fold_left min max_int (if n = 0 then [| 0 |] else deg) in
  let std = Granii_tensor.Vector.std degf in
  let sorted = Array.copy degf in
  Array.sort compare sorted;
  let skew = Array.fold_left (fun acc d -> if d > 4. *. avg then acc + 1 else acc) 0 degf in
  let empty = Array.fold_left (fun acc d -> if d = 0 then acc + 1 else acc) 0 deg in
  (* Layout statistics for the locality model. Bandwidths are normalized by n
     so they read as "how far across the matrix an average/worst edge
     reaches" in [0, 1]; ell_packing is the slab occupancy a hybrid split at
     the default width (mean degree, rounded up) would achieve. *)
  let band_sum = ref 0 and band_max = ref 0 in
  Csr.iter
    (fun i j _ ->
      let b = abs (i - j) in
      band_sum := !band_sum + b;
      if b > !band_max then band_max := b)
    g.Graph.adj;
  let avg_bw =
    if nnz = 0 || n = 0 then 0.
    else float_of_int !band_sum /. float_of_int nnz /. nf
  in
  let max_bw = if n = 0 then 0. else float_of_int !band_max /. nf in
  let width = max 1 (int_of_float (Float.ceil avg)) in
  let packed = Array.fold_left (fun acc d -> acc + min d width) 0 deg in
  let ell_packing =
    if n = 0 then 1. else float_of_int packed /. float_of_int (n * width)
  in
  (* Block density under the BSR candidate shape: nnz over the stored slots
     of the nonempty [bs x bs] tiles. Counted with a stamp array (stamp =
     block row id, never reset) in O(n + nnz). *)
  let bs = 8 in
  let block_fill =
    if nnz = 0 then 0.
    else begin
      let nb_cols = (n + bs - 1) / bs in
      let stamp = Array.make (max 1 nb_cols) (-1) in
      let blocks = ref 0 in
      let row_ptr = g.Graph.adj.Csr.row_ptr
      and col_idx = g.Graph.adj.Csr.col_idx in
      for bi = 0 to ((n + bs - 1) / bs) - 1 do
        let rmax = min n ((bi + 1) * bs) in
        for i = bi * bs to rmax - 1 do
          for p = row_ptr.(i) to row_ptr.(i + 1) - 1 do
            let bc = col_idx.(p) / bs in
            if stamp.(bc) <> bi then begin
              stamp.(bc) <- bi;
              incr blocks
            end
          done
        done
      done;
      float_of_int nnz /. float_of_int (!blocks * bs * bs)
    end
  in
  (* Neighbor overlap for the CBM candidate: mean Jaccard similarity over up
     to 256 evenly spaced consecutive row pairs (i, i+1) — deterministic, no
     sampling noise, and aligned with the prefix factoring's reach (rows
     with identical neighbor sets sort adjacent, and generators emit
     communities contiguously). Pairs with an empty union are skipped. *)
  let neighbor_overlap =
    if n < 2 then 0.
    else begin
      let row_ptr = g.Graph.adj.Csr.row_ptr
      and col_idx = g.Graph.adj.Csr.col_idx in
      let pairs = min 256 (n - 1) in
      let stride = (n - 1) / pairs in
      let total = ref 0. and counted = ref 0 in
      for s = 0 to pairs - 1 do
        let i = s * stride in
        let a0 = row_ptr.(i) and a1 = row_ptr.(i + 1) in
        let b0 = row_ptr.(i + 1) and b1 = row_ptr.(i + 2) in
        let da = a1 - a0 and db = b1 - b0 in
        if da + db > 0 then begin
          let inter = ref 0 and pa = ref a0 and pb = ref b0 in
          while !pa < a1 && !pb < b1 do
            let ca = col_idx.(!pa) and cb = col_idx.(!pb) in
            if ca = cb then begin
              incr inter;
              incr pa;
              incr pb
            end
            else if ca < cb then incr pa
            else incr pb
          done;
          let union = da + db - !inter in
          total := !total +. (float_of_int !inter /. float_of_int union);
          incr counted
        end
      done;
      if !counted = 0 then 0. else !total /. float_of_int !counted
    end
  in
  { n_nodes = nf;
    nnz = float_of_int nnz;
    density = (if n = 0 then 0. else float_of_int nnz /. (nf *. nf));
    avg_degree = avg;
    max_degree = float_of_int mx;
    min_degree = float_of_int mn;
    degree_cv = (if avg = 0. then 0. else std /. avg);
    degree_gini = gini sorted;
    skew_fraction = (if n = 0 then 0. else float_of_int skew /. nf);
    empty_fraction = (if n = 0 then 0. else float_of_int empty /. nf);
    degree_variance = std *. std;
    avg_bandwidth = avg_bw;
    max_bandwidth = max_bw;
    ell_packing;
    block_fill;
    neighbor_overlap }

let log1 x = log (1. +. x)

let to_array f =
  [| log1 f.n_nodes;
     log1 f.nnz;
     f.density;
     log1 f.avg_degree;
     log1 f.max_degree;
     f.min_degree;
     f.degree_cv;
     f.degree_gini;
     f.skew_fraction;
     f.empty_fraction;
     log1 f.degree_variance;
     f.avg_bandwidth;
     f.max_bandwidth;
     f.ell_packing;
     f.block_fill;
     f.neighbor_overlap |]

let names =
  [| "log_n"; "log_nnz"; "density"; "log_avg_deg"; "log_max_deg"; "min_deg";
     "deg_cv"; "deg_gini"; "skew_frac"; "empty_frac"; "log_deg_var";
     "avg_bandwidth"; "max_bandwidth"; "ell_packing"; "block_fill";
     "neighbor_overlap" |]

let pp ppf f =
  Format.fprintf ppf
    "n=%.0f nnz=%.0f density=%.2e avg_deg=%.2f max_deg=%.0f cv=%.2f gini=%.2f"
    f.n_nodes f.nnz f.density f.avg_degree f.max_degree f.degree_cv f.degree_gini
