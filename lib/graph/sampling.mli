(** Neighborhood sampling (paper, Sec. VI-E; GraphSAGE, Hamilton et al.).

    Node-wise fanout sampling: every node keeps at most [fanout] of its
    neighbors, chosen uniformly without replacement. The sampled graph keeps
    the node set (so embedding matrices keep their shape) and is generally
    {e directed} — the sampling decision is per destination node. *)

val neighborhood : ?seed:int -> fanout:int -> Graph.t -> Graph.t
(** [neighborhood ~fanout g] keeps at most [fanout] in-edges per node.
    Deterministic in [seed] (default [0]). Raises [Invalid_argument] if
    [fanout <= 0]. *)

val induced_subgraph : Graph.t -> int array -> Graph.t
(** [induced_subgraph g nodes] restricts [g] to the given node subset,
    relabeling nodes to [0 .. Array.length nodes - 1]. Duplicate node ids are
    rejected with [Invalid_argument]. *)

val random_nodes : ?seed:int -> Graph.t -> int -> int array
(** [random_nodes g k] draws [k] distinct node ids uniformly. *)

val induced_compact : Graph.t -> int array -> Graph.t
(** {!induced_subgraph} on the {!Granii_sparse.Csr.counting_scatter}
    substrate: one counting pass over the original adjacency scatters the
    kept entries into their compactly renumbered rows (node [nodes.(i)]
    becomes node [i]), then each row's columns are re-sorted (the
    renumbering is not monotone). Structurally identical to
    {!induced_subgraph} — the hash-free fast path the mini-batch sampler
    builds on. *)

(** {1 Layered (GraphSAGE mini-batch) sampling}

    Per-layer fanout caps walked {e backward} from a seed-node batch: the
    seeds' aggregation (layer L) reads their sampled in-neighbors, which at
    layer L-1 read theirs, and so on — [fanouts] lists the per-hop caps
    outward from the seeds. Every node samples at most once (on first
    visit), so the sampled edge set is duplicate-free and the subgraph of a
    batch is a pure function of [(seed, seeds, fanouts)]: deterministic
    across runs, loader arms and thread counts. Nodes reached at the
    deepest layer keep empty rows (their aggregation sees only the
    self-loop {!Granii_gnn.Layer.bindings} adds) — the standard GraphSAGE
    truncation. *)

type layered = {
  subgraph : Graph.t;
      (** compactly renumbered sampled subgraph over the visited nodes,
          carrying only the sampled edges *)
  nodes : int array;
      (** the row-gather map: [nodes.(i)] is the original id of subgraph
          node [i] — gather features/labels rows through it. Seeds occupy
          [0 .. n_seeds - 1] in batch order. *)
  n_seeds : int;
}

val layered_fanout :
  ?seed:int -> fanouts:int list -> seeds:int array -> Graph.t -> layered
(** [layered_fanout ~fanouts ~seeds g] draws the layered neighborhood of
    the seed batch. A node of degree [<= fanout] keeps all its neighbors;
    larger rows draw [fanout] without replacement from a generator keyed on
    [(seed, layer, node)]. Raises [Invalid_argument] on an empty or
    non-positive [fanouts], an empty seed batch, an out-of-range or
    duplicate seed. *)
