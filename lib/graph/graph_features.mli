(** Input featurizer statistics (paper, Sec. IV-E1).

    Hand-crafted graph features extracted in a single O(n + nnz) pass at
    runtime; concatenated with the embedding sizes they form the input of the
    learned per-primitive cost models. The feature set follows the paper's
    description ("sparsity of the graph", Appendix E): size, density, and
    degree-distribution shape. *)

type t = {
  n_nodes : float;
  nnz : float;
  density : float;       (** nnz / n^2 *)
  avg_degree : float;
  max_degree : float;
  min_degree : float;
  degree_cv : float;     (** coefficient of variation of degrees *)
  degree_gini : float;   (** Gini coefficient of the degree distribution *)
  skew_fraction : float; (** fraction of nodes with degree > 4 x average *)
  empty_fraction : float;(** fraction of isolated nodes *)
  degree_variance : float; (** variance of the row-length distribution *)
  avg_bandwidth : float; (** mean [|i - j|] over stored entries, / n *)
  max_bandwidth : float; (** max [|i - j|] over stored entries, / n *)
  ell_packing : float;   (** hybrid slab occupancy at the default width *)
  block_fill : float;    (** nnz over the stored slots of the nonempty 8x8
                             tiles (the BSR candidate shape); [0.] when the
                             graph has no edges *)
  neighbor_overlap : float;
  (** mean Jaccard similarity of neighbor sets over up to 256 evenly spaced
      consecutive row pairs — a cheap deterministic estimator of how much a
      neighbor-dedup (CBM) format can factor out *)
}

val extract : Graph.t -> t
(** Computes all features. Deterministic and allocation-light; its cost is
    what the paper reports as the "feature extraction" overhead. *)

val to_array : t -> float array
(** Fixed-order encoding consumed by cost models; log-scaled where the raw
    quantity spans orders of magnitude. *)

val names : string array
(** Feature names, aligned with {!to_array}. *)

val pp : Format.formatter -> t -> unit
