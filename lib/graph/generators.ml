module Prng = Granii_tensor.Prng

let name_of fmt = Printf.sprintf fmt

let erdos_renyi ?(seed = 1) ~n ~avg_degree () =
  let rng = Prng.create (seed + 101) in
  let target = int_of_float (float_of_int n *. avg_degree /. 2.) in
  let edges = ref [] in
  for _ = 1 to target do
    let s = Prng.int rng n and d = Prng.int rng n in
    if s <> d then edges := (s, d) :: !edges
  done;
  Graph.of_edges ~name:(name_of "er_n%d_d%.0f" n avg_degree) ~n !edges

let barabasi_albert ?(seed = 1) ~n ~m () =
  if n < m + 1 then invalid_arg "Generators.barabasi_albert: n must exceed m";
  let rng = Prng.create (seed + 202) in
  (* [target_arr] records one endpoint per half-edge, so sampling an element
     uniformly is sampling a node proportionally to its degree. *)
  let target_arr = Array.make ((2 * m * n) + (m * (m + 1))) 0 in
  let fill = ref 0 in
  let push x =
    target_arr.(!fill) <- x;
    incr fill
  in
  let edges = ref [] in
  (* Seed clique over the first m+1 nodes. *)
  for i = 0 to m do
    for j = i + 1 to m do
      edges := (i, j) :: !edges;
      push i;
      push j
    done
  done;
  for v = m + 1 to n - 1 do
    let chosen = Hashtbl.create m in
    let attempts = ref 0 in
    while Hashtbl.length chosen < m && !attempts < 50 * m do
      incr attempts;
      let u = target_arr.(Prng.int rng !fill) in
      if u <> v && not (Hashtbl.mem chosen u) then Hashtbl.add chosen u ()
    done;
    Hashtbl.iter
      (fun u () ->
        edges := (v, u) :: !edges;
        push v;
        push u)
      chosen
  done;
  Graph.of_edges ~name:(name_of "ba_n%d_m%d" n m) ~n !edges

let rmat ?(seed = 1) ?(a = 0.57) ?(b = 0.19) ?(c = 0.19) ~scale ~edge_factor () =
  let rng = Prng.create (seed + 303) in
  let n = 1 lsl scale in
  let n_edges = edge_factor * n in
  let edges = ref [] in
  for _ = 1 to n_edges do
    let s = ref 0 and d = ref 0 in
    for level = scale - 1 downto 0 do
      let r = Prng.float rng in
      let bit = 1 lsl level in
      if r < a then ()
      else if r < a +. b then d := !d lor bit
      else if r < a +. b +. c then s := !s lor bit
      else begin
        s := !s lor bit;
        d := !d lor bit
      end
    done;
    if !s <> !d then edges := (!s, !d) :: !edges
  done;
  Graph.of_edges ~name:(name_of "rmat_s%d_e%d" scale edge_factor) ~n !edges

let grid2d ?(seed = 1) ?(diagonal_fraction = 0.05) ~rows ~cols () =
  let rng = Prng.create (seed + 404) in
  let n = rows * cols in
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges;
      if r + 1 < rows && c + 1 < cols && Prng.bool rng diagonal_fraction then
        edges := (id r c, id (r + 1) (c + 1)) :: !edges
    done
  done;
  Graph.of_edges ~name:(name_of "grid_%dx%d" rows cols) ~n !edges

let mycielskian ?(levels = 11) () =
  if levels < 2 then invalid_arg "Generators.mycielskian: levels must be >= 2";
  (* M_2 = K_2; the Mycielskian of G = (V, E) with |V| = n adds shadow nodes
     u_i (index n + i) and an apex w (index 2n): each edge (i, j) gains
     (u_i, j) and (i, u_j), and every u_i connects to w. *)
  let edges = ref [ (0, 1) ] in
  let n = ref 2 in
  for _ = 3 to levels do
    let old_n = !n in
    let shadow i = old_n + i in
    let apex = 2 * old_n in
    let extra =
      List.concat_map (fun (i, j) -> [ (shadow i, j); (i, shadow j) ]) !edges
    in
    let to_apex = List.init old_n (fun i -> (shadow i, apex)) in
    edges := !edges @ extra @ to_apex;
    n := (2 * old_n) + 1
  done;
  Graph.of_edges ~name:(name_of "mycielskian%d" levels) ~n:!n !edges

let blocked ?(seed = 1) ?(block = 8) ~n ~blocks_per_row () =
  if block < 1 then invalid_arg "Generators.blocked: block must be >= 1";
  let rng = Prng.create (seed + 505) in
  let nb = (n + block - 1) / block in
  let edges = ref [] in
  (* Each block row picks [blocks_per_row] aligned block columns (its own
     diagonal block always included) and densifies them fully, so the BSR
     tiling of the result has fill ~1. Symmetrization keeps tiles full:
     the transpose of a dense tile is a dense tile. *)
  for bi = 0 to nb - 1 do
    let chosen = Hashtbl.create blocks_per_row in
    Hashtbl.add chosen bi ();
    let attempts = ref 0 in
    while Hashtbl.length chosen < min blocks_per_row nb && !attempts < 50 * blocks_per_row do
      incr attempts;
      let bj = Prng.int rng nb in
      if not (Hashtbl.mem chosen bj) then Hashtbl.add chosen bj ()
    done;
    Hashtbl.iter
      (fun bj () ->
        for i = bi * block to min n ((bi + 1) * block) - 1 do
          for j = bj * block to min n ((bj + 1) * block) - 1 do
            if i <> j then edges := (i, j) :: !edges
          done
        done)
      chosen
  done;
  Graph.of_edges ~name:(name_of "blocked_n%d_b%d_r%d" n block blocks_per_row)
    ~n !edges

let community_overlap ?(seed = 1) ~n ~groups ~degree () =
  if groups < 1 then invalid_arg "Generators.community_overlap: groups must be >= 1";
  let rng = Prng.create (seed + 606) in
  let size = (n + groups - 1) / groups in
  let edges = ref [] in
  (* Every member of a contiguous group connects to the same template
     neighbor list, so member rows are exact duplicates (Jaccard 1) up to
     the symmetrized back-edges — the CBM factoring's best case. *)
  for g = 0 to groups - 1 do
    let lo = g * size in
    let hi = min n (lo + size) in
    if lo < hi then begin
      (* in-group targets: symmetrization only adds back-edges INTO the
         template rows, so every non-template member's row stays an exact
         duplicate of the template — the factoring's best case *)
      let template =
        Array.init degree (fun _ -> lo + Prng.int rng (hi - lo))
      in
      for i = lo to hi - 1 do
        Array.iter (fun t -> if i <> t then edges := (i, t) :: !edges) template
      done
    end
  done;
  Graph.of_edges
    ~name:(name_of "community_n%d_g%d_d%d" n groups degree)
    ~n !edges

let star ~n =
  Graph.of_edges ~name:(name_of "star_n%d" n) ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let ring ~n =
  Graph.of_edges ~name:(name_of "ring_n%d" n) ~n
    (List.init n (fun i -> (i, (i + 1) mod n)))

let complete ~n =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j) :: !edges
    done
  done;
  Graph.of_edges ~name:(name_of "complete_n%d" n) ~n !edges
