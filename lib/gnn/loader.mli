(** Mini-batch loader: layered neighbor sampling + featurization, optionally
    pipelined on a dedicated domain.

    The loader walks the masked node set in a seeded per-epoch shuffle,
    cutting it into seed batches of [batch_size]. Each batch draws its
    layered neighborhood ({!Granii_graph.Sampling.layered_fanout}), gathers
    feature/label rows through the sample's row-gather map and extracts the
    selection features of the sampled subgraph. Batch [k] is a pure function
    of [(seed, masked node set, fanouts, batch_size, k)] — both loader modes
    and any thread count produce bitwise-identical batches, which is what
    lets the trainer guarantee pipelined epoch losses equal sequential ones.

    In [Pipelined] mode a dedicated domain prepares batch [k+1] while the
    consumer trains on batch [k], handing results over through a one-deep
    slot (double buffering). The loader domain never touches the
    {!Granii_obs.Obs} sink
    (sinks are orchestrator-thread-only); instead each batch carries its own
    [sample_time]/[featurize_time] so the consumer can retro-date spans. *)

type batch = {
  epoch : int;
  index : int;  (** batch index within the epoch *)
  sample : Granii_graph.Sampling.layered;
  feats : Granii_core.Featurizer.t;  (** selection features of the subgraph *)
  features : Granii_tensor.Dense.t;  (** gathered node-feature rows *)
  labels : int array;  (** gathered labels, one per subgraph node *)
  mask : bool array;  (** [true] exactly on the seed rows [0..n_seeds-1] *)
  sample_time : float;  (** wall seconds spent in the sampler *)
  featurize_time : float;  (** wall seconds gathering rows + featurizing *)
}

type mode = Sequential | Pipelined

val mode_to_string : mode -> string

type t

val create :
  ?seed:int ->
  ?mask:bool array ->
  ?threads:int ->
  mode:mode ->
  fanouts:int list ->
  batch_size:int ->
  epochs:int ->
  graph:Granii_graph.Graph.t ->
  features:Granii_tensor.Dense.t ->
  labels:int array ->
  unit ->
  t
(** [create ~mode ~fanouts ~batch_size ~epochs ~graph ~features ~labels ()]
    plans [epochs] passes over the [mask]-selected nodes (default: all) and,
    in [Pipelined] mode, spawns the loader domain immediately. [threads]
    only parallelizes featurization (default [1]); it does not affect batch
    content. Raises [Invalid_argument] on a non-positive [batch_size] or
    [epochs], bad [fanouts], mismatched array lengths, or an all-[false]
    mask. *)

val next : t -> batch option
(** The next batch in epoch-major order, or [None] after the last one. In
    [Pipelined] mode, blocks until the loader domain fills the slot and
    accounts the wait in {!stall_time}. *)

val batches_per_epoch : t -> int

val total_batches : t -> int

val stall_time : t -> float
(** Cumulative wall seconds {!next} spent waiting on the loader domain
    ([0.] in [Sequential] mode) — the pipeline's stall-fraction numerator. *)

val shutdown : t -> unit
(** Joins the loader domain (no-op in [Sequential] mode, idempotent). Call
    it even after draining the loader; abandoning a [Pipelined] loader
    leaks the domain. *)
