(** Multi-head attention (the standard GAT extension; paper evaluates a
    single head, this is the "extension feature" of DESIGN.md §5).

    Heads are independent GAT instances whose outputs are concatenated
    along the feature dimension — exactly how non-fused frameworks execute
    them, so GRANII's per-head decision and timing multiply by the head
    count. All heads share the compiled dispatch; each gets its own
    parameters. *)

type t = private {
  heads : Layer.params list;
  plan : Granii_core.Plan.t;  (** the composition every head executes *)
  k_out_per_head : int;
}

val create :
  ?seed:int -> oracle:Granii_core.Cost_oracle.t ->
  graph:Granii_graph.Graph.t -> compiled:Granii_core.Codegen.t ->
  lowered:Granii_mp.Lower.lowered -> heads:int -> k_in:int ->
  k_out_per_head:int -> ?iterations:int -> unit -> t
(** Selects the composition once (the decision is shared by all heads, which
    see identical shapes) and initializes [heads] parameter sets. Raises
    [Invalid_argument] if [heads <= 0]. *)

val forward :
  ?engine:Granii_core.Engine.t ->
  graph:Granii_graph.Graph.t -> features:Granii_tensor.Dense.t -> t ->
  Granii_tensor.Dense.t
(** [N]x[heads * k_out_per_head] concatenated head outputs, executed under
    [?engine] when given (default {!Granii_core.Engine.default}). *)

val inference_time :
  profile:Granii_hw.Hw_profile.t -> graph:Granii_graph.Graph.t ->
  env:Granii_core.Dim.env -> ?iterations:int -> t -> float
(** Simulated time: head count times the per-head plan time. *)

val n_heads : t -> int
