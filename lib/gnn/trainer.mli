(** End-to-end training: optimized forward pass + default backward pass.

    Mirrors how GRANII improves training in the paper (Sec. VI-C): the
    forward pass executes whichever plan the caller provides (GRANII's
    selection or a baseline default), while gradients flow through the same
    plan's reverse pass. *)

type history = {
  losses : float array;         (** per epoch *)
  train_accuracy : float;       (** final, on the mask *)
  final_params : Layer.params;
}

val train :
  ?seed:int -> ?mask:bool array -> ?workspace:Granii_tensor.Workspace.t ->
  ?engine:Granii_core.Engine.t ->
  epochs:int -> optimizer:Optimizer.t ->
  plan:Granii_core.Plan.t -> graph:Granii_graph.Graph.t ->
  features:Granii_tensor.Dense.t -> labels:int array ->
  params:Layer.params -> unit -> history
(** Full-graph training for node classification. The plan's output must be
    dense [N]x[classes] logits. Losses are recorded per epoch; training is
    deterministic given [seed]. [?engine] runs every forward pass under a
    validated {!Granii_core.Engine.t}; it must keep intermediates
    ({!Granii_gnn.Autodiff} reads them in the backward pass — raises
    [Invalid_argument] otherwise). With a workspace (via the engine or the
    deprecated [?workspace], ignored when [?engine] is given), every
    epoch's forward pass reuses the previous epoch's buffers — numerically
    identical, allocation-free in steady state. *)

val inference_time :
  profile:Granii_hw.Hw_profile.t -> graph:Granii_graph.Graph.t ->
  env:Granii_core.Dim.env -> ?iterations:int -> ?seed:int ->
  Granii_core.Plan.t -> float
(** Simulated forward time over [iterations] (default 100): setup once plus
    per-iteration work (paper's inference mode). *)

val training_time :
  profile:Granii_hw.Hw_profile.t -> graph:Granii_graph.Graph.t ->
  env:Granii_core.Dim.env -> ?iterations:int -> ?seed:int ->
  Granii_core.Plan.t -> float
(** Simulated forward + backward time over [iterations] (paper's training
    mode: only the forward half is affected by composition choice). *)
