(** End-to-end training: optimized forward pass + default backward pass.

    Mirrors how GRANII improves training in the paper (Sec. VI-C): the
    forward pass executes whichever plan the caller provides (GRANII's
    selection or a baseline default), while gradients flow through the same
    plan's reverse pass. *)

type history = {
  losses : float array;         (** per epoch *)
  train_accuracy : float;       (** final, on the mask *)
  final_params : Layer.params;
}

val train :
  ?seed:int -> ?mask:bool array ->
  ?engine:Granii_core.Engine.t ->
  epochs:int -> optimizer:Optimizer.t ->
  plan:Granii_core.Plan.t -> graph:Granii_graph.Graph.t ->
  features:Granii_tensor.Dense.t -> labels:int array ->
  params:Layer.params -> unit -> history
(** Full-graph training for node classification. The plan's output must be
    dense [N]x[classes] logits. Losses are recorded per epoch; training is
    deterministic given [seed]. [?engine] runs every forward pass under a
    validated {!Granii_core.Engine.t} (default {!Granii_core.Engine.default});
    it must keep intermediates ({!Granii_gnn.Autodiff} reads them in the
    backward pass — raises [Invalid_argument] otherwise). With a workspace
    engine, every epoch's forward pass reuses the previous epoch's buffers —
    numerically identical, allocation-free in steady state. The deprecated
    [?workspace] argument is gone: pass a workspace through [?engine]. *)

(** {1 Mini-batch training} *)

type minibatch_history = {
  epoch_losses : float array;  (** mean of the epoch's batch losses *)
  batch_losses : float array array;  (** [epochs] x [batches_per_epoch] *)
  final_params : Layer.params;
  n_batches : int;
  cache_stats : Granii_core.Plan_cache.stats;
  sample_time : float;     (** total wall seconds in the layered sampler *)
  featurize_time : float;  (** total row gather + feature extraction *)
  selection_time : float;  (** total plan-cache lookup + selection *)
  exec_time : float;       (** total forward + loss + backward *)
  stall_time : float;      (** total consumer wait on the loader domain *)
  wall_time : float;       (** whole-run wall seconds *)
}

val train_minibatch :
  ?seed:int -> ?mask:bool array -> ?engine:Granii_core.Engine.t ->
  ?plan_cache:Granii_core.Plan_cache.t -> ?mode:Loader.mode ->
  ?classes:int ->
  fanouts:int list -> epochs:int -> batch_size:int ->
  optimizer:Optimizer.t -> oracle:Granii_core.Cost_oracle.t ->
  compiled:Granii_core.Codegen.t -> graph:Granii_graph.Graph.t ->
  features:Granii_tensor.Dense.t -> labels:int array ->
  params:Layer.params -> unit -> minibatch_history
(** Pipelined mini-batch training. Each epoch shuffles the [mask]-selected
    nodes (seeded), cuts them into seed batches of [batch_size], draws every
    batch's layered neighborhood ({!Granii_graph.Sampling.layered_fanout}
    with [fanouts]) and trains on the sampled subgraph: the loss masks
    everything but the seed rows, gradients accumulate per batch through
    {!Optimizer.step}. Per batch, the executed plan comes from selection
    over [compiled] through [plan_cache] (default: a fresh 16-entry cache),
    keyed on {!Granii_core.Plan_cache.bucketed_fingerprint} of the sampled
    subgraph — structurally similar batches reuse the selected plan, so
    selection amortizes to near zero. (The key includes
    {!Granii_core.Cost_oracle.name}, which changes on every accepted
    calibration pass — stale plans are never served from a recalibrated
    oracle.)

    When the oracle's calibration is not {!Granii_core.Cost_oracle.Off},
    every batch feeds one plan-level (predicted, measured) pair into the
    oracle via {!Granii_core.Cost_oracle.observe} — predicted is the raw
    analytic plan cost, measured the forward execution time — so mini-batch
    training {e is} the calibration loop's data stream.

    [mode] defaults to {!Loader.Pipelined}: a dedicated domain samples and
    featurizes batch [i+1] while batch [i] executes. Batches are pure
    functions of [(seed, mask, fanouts, batch_size, batch index)], so
    {!Loader.Sequential} produces bitwise-identical losses and parameters —
    the pipeline is a pure wall-clock optimization.

    Per-batch [train.sample] / [train.featurize] / [train.select] /
    [train.exec] / [train.stall] spans land in the engine's
    {!Granii_obs.Obs} trace
    (loader-side durations are retro-dated on the orchestrator thread).

    The engine must keep intermediates and must {e not} carry a subtree
    cache (it binds to a single graph; every batch is a fresh subgraph) —
    raises [Invalid_argument] otherwise. Raises [Invalid_argument] on bad
    [fanouts], [batch_size], [epochs] or an all-[false] mask. *)

val inference_time :
  profile:Granii_hw.Hw_profile.t -> graph:Granii_graph.Graph.t ->
  env:Granii_core.Dim.env -> ?iterations:int -> ?seed:int ->
  Granii_core.Plan.t -> float
(** Simulated forward time over [iterations] (default 100): setup once plus
    per-iteration work (paper's inference mode). *)

val training_time :
  profile:Granii_hw.Hw_profile.t -> graph:Granii_graph.Graph.t ->
  env:Granii_core.Dim.env -> ?iterations:int -> ?seed:int ->
  Granii_core.Plan.t -> float
(** Simulated forward + backward time over [iterations] (paper's training
    mode: only the forward half is affected by composition choice). *)
