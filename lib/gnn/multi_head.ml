module Dense = Granii_tensor.Dense
module Core = Granii_core

type t = {
  heads : Layer.params list;
  plan : Core.Plan.t;
  k_out_per_head : int;
}

let create ?(seed = 0) ~oracle ~graph ~compiled ~lowered ~heads ~k_in
    ~k_out_per_head ?(iterations = 100) () =
  if heads <= 0 then invalid_arg "Multi_head.create: heads must be positive";
  let n = Granii_graph.Graph.n_nodes graph in
  let env =
    { Core.Dim.n;
      nnz = Granii_graph.Graph.n_edges graph + n;
      k_in;
      k_out = k_out_per_head }
  in
  let choice =
    Core.Selector.select ~oracle
      ~feats:(Core.Featurizer.extract graph)
      ~env ~iterations compiled
  in
  { heads =
      List.init heads (fun h -> Layer.init_params ~seed:(seed + (101 * h)) ~env lowered);
    plan = choice.Core.Selector.candidate.Core.Codegen.plan;
    k_out_per_head }

let forward ?engine ~graph ~features t =
  let engine =
    match engine with Some e -> e | None -> Core.Engine.default ()
  in
  let outputs =
    List.map
      (fun params ->
        let bindings = Layer.bindings ~graph ~h:features params in
        match
          (Core.Executor.exec ~engine ~timing:Core.Executor.Measure ~graph
             ~bindings t.plan)
            .Core.Executor.output
        with
        | Core.Executor.Vdense d -> d
        | Core.Executor.Vsparse _ | Core.Executor.Vdiag _ ->
            invalid_arg "Multi_head.forward: head output is not dense")
      t.heads
  in
  Dense.concat_cols outputs

let inference_time ~profile ~graph ~env ?(iterations = 100) t =
  ignore graph;
  let setup, iter = Core.Executor.estimate ~profile ~env t.plan in
  float_of_int (List.length t.heads)
  *. Core.Executor.total_time ~setup ~iteration:iter ~iterations

let n_heads t = List.length t.heads
