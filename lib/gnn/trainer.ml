module Dense = Granii_tensor.Dense
module Core = Granii_core

type history = {
  losses : float array;
  train_accuracy : float;
  final_params : Layer.params;
}

let train ?(seed = 0) ?mask ?engine ~epochs ~optimizer ~plan ~graph
    ~features ~labels ~params () =
  if epochs <= 0 then invalid_arg "Trainer.train: epochs must be positive";
  let engine =
    match engine with
    | Some e ->
        (* the backward pass reads every forward intermediate *)
        if not (Core.Engine.keep_intermediates e) then
          invalid_arg
            "Trainer.train: the engine must keep intermediates (autodiff \
             reads them in the backward pass)";
        e
    | None -> Core.Engine.default ()
  in
  let losses = Array.make epochs 0. in
  let params = ref params in
  let last_logits = ref None in
  for epoch = 0 to epochs - 1 do
    let bindings = Layer.bindings ~graph ~h:features !params in
    (* With a workspace engine, each epoch's forward pass reuses the
       previous epoch's buffers (the arena is reclaimed on entry to
       [exec]). The epoch body — loss, backward, optimizer step — only
       reads this epoch's values, all of which stay valid until the next
       run. *)
    let forward =
      Core.Executor.exec ~seed:(seed + epoch) ~engine
        ~timing:(Core.Executor.Simulate Granii_hw.Hw_profile.cpu) ~graph ~bindings plan
    in
    let logits =
      match forward.Core.Executor.output with
      | Core.Executor.Vdense d -> d
      | Core.Executor.Vsparse _ | Core.Executor.Vdiag _ ->
          invalid_arg "Trainer.train: plan output is not dense logits"
    in
    last_logits := Some logits;
    let loss, dlogits = Loss.softmax_cross_entropy ?mask ~logits ~labels () in
    losses.(epoch) <- loss;
    let grads = Autodiff.backward ~plan ~graph ~bindings ~forward ~seed:dlogits in
    params := Optimizer.step optimizer !params grads
  done;
  let train_accuracy =
    match !last_logits with
    | Some logits -> Loss.accuracy ?mask ~logits ~labels ()
    | None -> 0.
  in
  { losses; train_accuracy; final_params = !params }

type minibatch_history = {
  epoch_losses : float array;
  batch_losses : float array array;
  final_params : Layer.params;
  n_batches : int;
  cache_stats : Core.Plan_cache.stats;
  sample_time : float;
  featurize_time : float;
  selection_time : float;
  exec_time : float;
  stall_time : float;
  wall_time : float;
}

module Obs = Granii_obs.Obs
module Timer = Granii_hw.Timer

(* The loader domain cannot touch the sink (sinks are orchestrator-thread
   only), so it reports durations and the orchestrator retro-dates the
   spans here. *)
let retro_span obs ?(attrs = []) name dur =
  match obs.Obs.trace with
  | None -> ()
  | Some tr ->
      let s = Obs.Trace.enter tr name in
      Obs.Trace.exit_ tr ~attrs ~dur s

let train_minibatch ?(seed = 0) ?mask ?engine ?plan_cache
    ?(mode = Loader.Pipelined) ?classes ~fanouts ~epochs ~batch_size
    ~optimizer ~oracle ~compiled ~graph ~features ~labels ~params () =
  let engine =
    match engine with
    | Some e ->
        if not (Core.Engine.keep_intermediates e) then
          invalid_arg
            "Trainer.train_minibatch: the engine must keep intermediates \
             (autodiff reads them in the backward pass)";
        if Core.Engine.cache e <> None then
          invalid_arg
            "Trainer.train_minibatch: the engine must not carry a subtree \
             cache (it binds to one graph; every batch is a fresh subgraph)";
        e
    | None -> Core.Engine.default ()
  in
  let obs = Core.Engine.obs engine in
  let cache =
    match plan_cache with
    | Some c -> c
    | None ->
        Core.Plan_cache.create ~obs ~metric_prefix:"train.plan_cache"
          ~capacity:16 ()
  in
  let classes =
    match classes with
    | Some c -> c
    | None -> 1 + Array.fold_left max 0 labels
  in
  let k_in = features.Dense.cols in
  let loader =
    Loader.create ~seed ?mask ~mode ~fanouts ~batch_size ~epochs ~graph
      ~features ~labels ()
  in
  let per_epoch = Loader.batches_per_epoch loader in
  let batch_losses = Array.init epochs (fun _ -> Array.make per_epoch 0.) in
  let params = ref params in
  let sample_time = ref 0. and featurize_time = ref 0. in
  let selection_time = ref 0. and exec_time = ref 0. in
  let last_stall = ref 0. in
  let result, wall_time =
    Timer.measure_wall (fun () ->
        Fun.protect
          ~finally:(fun () -> Loader.shutdown loader)
          (fun () ->
            let rec consume gidx =
              match Loader.next loader with
              | None -> ()
              | Some b ->
                  let stall = Loader.stall_time loader -. !last_stall in
                  last_stall := Loader.stall_time loader;
                  if stall > 0. then retro_span obs "train.stall" stall;
                  retro_span obs "train.sample"
                    ~attrs:
                      [ ("batch", string_of_int gidx);
                        ( "nodes",
                          string_of_int (Array.length b.Loader.labels) ) ]
                    b.Loader.sample_time;
                  retro_span obs "train.featurize" b.Loader.featurize_time;
                  sample_time := !sample_time +. b.Loader.sample_time;
                  featurize_time := !featurize_time +. b.Loader.featurize_time;
                  let sub = b.Loader.sample.Granii_graph.Sampling.subgraph in
                  let n_sub = Granii_graph.Graph.n_nodes sub in
                  let env =
                    { Core.Dim.n = n_sub;
                      nnz = Granii_graph.Graph.n_edges sub + n_sub;
                      k_in;
                      k_out = classes }
                  in
                  let key =
                    Core.Plan_cache.key_of
                      ~graph_fp:(Core.Plan_cache.bucketed_fingerprint sub)
                      ~model:compiled.Core.Codegen.model_name ~k_in
                      ~k_out:classes
                      ~hw:(Core.Cost_oracle.name oracle)
                      ~threads:(Core.Engine.threads engine)
                      ~locality:(Core.Engine.locality engine)
                  in
                  let lc, select_t =
                    Timer.measure_wall (fun () ->
                        match Core.Plan_cache.find cache key with
                        | Some lc -> lc
                        | None ->
                            let lc =
                              Core.Selector.select_localized ~oracle
                                ~feats:b.Loader.feats ~env ~iterations:1
                                ~configs:[ Core.Engine.locality engine ]
                                compiled
                            in
                            Core.Plan_cache.add cache key lc;
                            lc)
                  in
                  retro_span obs "train.select" select_t;
                  selection_time := !selection_time +. select_t;
                  let plan =
                    lc.Core.Selector.lchoice.Core.Selector.candidate
                      .Core.Codegen.plan
                  in
                  let bindings =
                    Layer.bindings ~graph:sub ~h:b.Loader.features !params
                  in
                  let (loss, grads, forward_t), exec_t =
                    Timer.measure_wall (fun () ->
                        let forward =
                          Core.Executor.exec ~seed:(seed + gidx) ~engine
                            ~timing:Core.Executor.Measure ~graph:sub ~bindings
                            plan
                        in
                        let logits =
                          match forward.Core.Executor.output with
                          | Core.Executor.Vdense d -> d
                          | Core.Executor.Vsparse _ | Core.Executor.Vdiag _ ->
                              invalid_arg
                                "Trainer.train_minibatch: plan output is not \
                                 dense logits"
                        in
                        let loss, dlogits =
                          Loss.softmax_cross_entropy ~mask:b.Loader.mask
                            ~logits ~labels:b.Loader.labels ()
                        in
                        let grads =
                          Autodiff.backward ~plan ~graph:sub ~bindings
                            ~forward ~seed:dlogits
                        in
                        ( loss,
                          grads,
                          forward.Core.Executor.setup_time
                          +. forward.Core.Executor.iteration_time ))
                  in
                  (* per-batch (predicted, measured) pair — the plan-level
                     training feed of the calibration loop. [predicted] is the
                     raw analytic plan cost (uncorrected, so the fit targets
                     base -> measured); [measured] is the forward execution
                     only, which is what the plan prediction models. *)
                  (if Core.Cost_oracle.calibration oracle <> Core.Cost_oracle.Off
                   then
                     let prof =
                       match Core.Cost_oracle.profile oracle with
                       | Some p -> p
                       | None -> Granii_hw.Hw_profile.cpu
                     in
                     let predicted =
                       Core.Cost_oracle.analytic_plan
                         ~threads:(Core.Engine.threads engine) prof ~env
                         ~iterations:1 plan
                     in
                     Core.Cost_oracle.observe oracle
                       ~prim:("plan:" ^ plan.Core.Plan.name) ~predicted
                       ~measured:forward_t);
                  retro_span obs "train.exec" exec_t;
                  exec_time := !exec_time +. exec_t;
                  Obs.count obs "train.batches" 1;
                  batch_losses.(b.Loader.epoch).(b.Loader.index) <- loss;
                  params := Optimizer.step optimizer !params grads;
                  consume (gidx + 1)
            in
            consume 0))
  in
  ignore result;
  let epoch_losses =
    Array.map
      (fun row ->
        Array.fold_left ( +. ) 0. row /. float_of_int (Array.length row))
      batch_losses
  in
  { epoch_losses;
    batch_losses;
    final_params = !params;
    n_batches = epochs * per_epoch;
    cache_stats = Core.Plan_cache.stats cache;
    sample_time = !sample_time;
    featurize_time = !featurize_time;
    selection_time = !selection_time;
    exec_time = !exec_time;
    stall_time = Loader.stall_time loader;
    wall_time }

let inference_time ~profile ~graph ~env ?(iterations = 100) ?(seed = 0) plan =
  ignore graph;
  let setup, iter = Core.Executor.estimate ~seed ~profile ~env plan in
  Core.Executor.total_time ~setup ~iteration:iter ~iterations

let training_time ~profile ~graph ~env ?(iterations = 100) ?(seed = 0) plan =
  let setup, iter = Core.Executor.estimate ~seed ~profile ~env plan in
  let bwd = Autodiff.backward_time ~profile ~graph ~env ~seed plan in
  Core.Executor.total_time ~setup ~iteration:(iter +. bwd) ~iterations
