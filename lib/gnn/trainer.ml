module Dense = Granii_tensor.Dense
module Core = Granii_core

type history = {
  losses : float array;
  train_accuracy : float;
  final_params : Layer.params;
}

let train ?(seed = 0) ?mask ?workspace ?engine ~epochs ~optimizer ~plan ~graph
    ~features ~labels ~params () =
  if epochs <= 0 then invalid_arg "Trainer.train: epochs must be positive";
  let engine =
    match engine with
    | Some e ->
        (* the backward pass reads every forward intermediate *)
        if not (Core.Engine.keep_intermediates e) then
          invalid_arg
            "Trainer.train: the engine must keep intermediates (autodiff \
             reads them in the backward pass)";
        e
    | None -> Core.Engine.of_legacy ?workspace ()
  in
  let losses = Array.make epochs 0. in
  let params = ref params in
  let last_logits = ref None in
  for epoch = 0 to epochs - 1 do
    let bindings = Layer.bindings ~graph ~h:features !params in
    (* With a workspace engine, each epoch's forward pass reuses the
       previous epoch's buffers (the arena is reclaimed on entry to
       [exec]). The epoch body — loss, backward, optimizer step — only
       reads this epoch's values, all of which stay valid until the next
       run. *)
    let forward =
      Core.Executor.exec ~seed:(seed + epoch) ~engine
        ~timing:(Core.Executor.Simulate Granii_hw.Hw_profile.cpu) ~graph ~bindings plan
    in
    let logits =
      match forward.Core.Executor.output with
      | Core.Executor.Vdense d -> d
      | Core.Executor.Vsparse _ | Core.Executor.Vdiag _ ->
          invalid_arg "Trainer.train: plan output is not dense logits"
    in
    last_logits := Some logits;
    let loss, dlogits = Loss.softmax_cross_entropy ?mask ~logits ~labels () in
    losses.(epoch) <- loss;
    let grads = Autodiff.backward ~plan ~graph ~bindings ~forward ~seed:dlogits in
    params := Optimizer.step optimizer !params grads
  done;
  let train_accuracy =
    match !last_logits with
    | Some logits -> Loss.accuracy ?mask ~logits ~labels ()
    | None -> 0.
  in
  { losses; train_accuracy; final_params = !params }

let inference_time ~profile ~graph ~env ?(iterations = 100) ?(seed = 0) plan =
  ignore graph;
  let setup, iter = Core.Executor.estimate ~seed ~profile ~env plan in
  Core.Executor.total_time ~setup ~iteration:iter ~iterations

let training_time ~profile ~graph ~env ?(iterations = 100) ?(seed = 0) plan =
  let setup, iter = Core.Executor.estimate ~seed ~profile ~env plan in
  let bwd = Autodiff.backward_time ~profile ~graph ~env ~seed plan in
  Core.Executor.total_time ~setup ~iteration:(iter +. bwd) ~iterations
