(** Reverse-mode differentiation of executable plans.

    GRANII optimizes only the forward pass; training still needs gradients,
    which the frameworks' autograd produces from the {e default}
    composition (paper, Sec. VI-C). This module provides both halves of
    that story:

    - {!backward}: a real vector-Jacobian reverse pass over any plan
      (including GAT's attention), yielding gradients for the dense
      parameter leaves — used by {!Trainer} and the training examples;
    - {!backward_kernels}: the kernel workload of that reverse pass, used to
      {e charge} backward time on simulated hardware without running it in
      the sweeps. *)

type grads = (string * Granii_tensor.Dense.t) list
(** Gradient per dense input leaf (parameters and features). *)

val backward :
  plan:Granii_core.Plan.t -> graph:Granii_graph.Graph.t ->
  bindings:(string * Granii_core.Executor.value) list ->
  forward:Granii_core.Executor.report -> seed:Granii_tensor.Dense.t -> grads
(** [backward ~plan ~forward ~seed] pulls the output cotangent [seed] back
    through the recorded forward execution. The forward report must carry
    every intermediate, so the forward run's engine must keep
    [keep_intermediates = true] (the {!Granii_core.Engine.default_config}
    setting). Gradients through the graph structure (adjacency,
    normalization diagonals) are not materialized. Raises
    [Granii_core.Executor.Execution_error] on malformed plans. *)

val backward_kernels :
  graph:Granii_graph.Graph.t -> env:Granii_core.Dim.env ->
  Granii_core.Plan.t -> Granii_hw.Kernel_model.kernel list
(** The kernels a framework's autograd would launch for the plan's
    per-iteration steps (setup steps are loop-invariant and carry no
    gradient). *)

val backward_time :
  profile:Granii_hw.Hw_profile.t -> graph:Granii_graph.Graph.t ->
  env:Granii_core.Dim.env -> ?seed:int -> Granii_core.Plan.t -> float
(** Simulated time of {!backward_kernels} on the profile. *)
