(** Multi-layer GNNs (paper, Sec. VI-F).

    A stack applies the same model architecture layer by layer; GRANII's
    composition decision is made {e per layer} (each layer has its own
    embedding-size pair, so a 2-layer GCN may run the update-first plan in
    layer 1 and aggregate-first in layer 2) and the decisions chain.
    Gradients flow through the whole stack: every layer's reverse pass
    exposes the gradient of its ["H"] input, which seeds the previous
    layer. *)

type layer = {
  l_plan : Granii_core.Plan.t;     (** the composition chosen for this layer *)
  l_params : Layer.params;
  l_k_in : int;
  l_k_out : int;
}

type t = private {
  lowered : Granii_mp.Lower.lowered;
  layers : layer list;  (** input side first *)
}

val build :
  ?seed:int -> oracle:Granii_core.Cost_oracle.t ->
  graph:Granii_graph.Graph.t -> compiled:Granii_core.Codegen.t ->
  lowered:Granii_mp.Lower.lowered -> dims:int list -> ?iterations:int ->
  unit -> t
(** [build ~dims:[d0; d1; ...; dn]] creates an (n)-layer stack with layer
    [i] mapping [d_i -> d_(i+1)], selecting each layer's plan with the cost
    models (paper: "chaining the decisions made for each separate layer").
    Raises [Invalid_argument] if [dims] has fewer than two entries. *)

val forward :
  ?engine:Granii_core.Engine.t -> ?keep_reports:bool ->
  graph:Granii_graph.Graph.t ->
  features:Granii_tensor.Dense.t -> t ->
  Granii_tensor.Dense.t * (Granii_core.Executor.report * (string * Granii_core.Executor.value) list) list
(** Runs all layers (real execution, under [?engine] when given — default
    {!Granii_core.Engine.default}); returns the final activations and,
    when [keep_reports] (default [true]), each layer's execution report and
    bindings for use by {!backward}. *)

type history = {
  losses : float array;
  train_accuracy : float;
  final : t;
}

val train :
  ?seed:int -> ?mask:bool array -> epochs:int -> optimizer:Optimizer.t ->
  graph:Granii_graph.Graph.t -> features:Granii_tensor.Dense.t ->
  labels:int array -> t -> history
(** Full-stack training: forward through every layer, softmax cross-entropy
    at the top, reverse through every layer (the ["H"] gradient of layer
    [i+1] seeds layer [i]), one optimizer step per epoch over all layers'
    parameters. *)

val plans : t -> Granii_core.Plan.t list
