module Dense = Granii_tensor.Dense
module Prng = Granii_tensor.Prng
module Timer = Granii_hw.Timer
module G = Granii_graph
module Core = Granii_core

type batch = {
  epoch : int;
  index : int;
  sample : G.Sampling.layered;
  feats : Core.Featurizer.t;
  features : Dense.t;
  labels : int array;
  mask : bool array;
  sample_time : float;
  featurize_time : float;
}

type mode = Sequential | Pipelined

let mode_to_string = function
  | Sequential -> "sequential"
  | Pipelined -> "pipelined"

type t = {
  mode : mode;
  total : int;
  per_epoch : int;
  prepare : int -> batch;
  mutable consumed : int;
  mutable stall : float;
  (* pipelined state: a one-deep (double-buffered) hand-off slot *)
  m : Mutex.t;
  cv : Condition.t;
  mutable slot : batch option;
  mutable stopping : bool;
  mutable worker : unit Domain.t option;
}

(* The content of batch [k] is a pure function of (seed, masked node set,
   fanouts, batch_size, k): both loader arms — and any thread count —
   produce bitwise-identical batches. *)
let make_prepare ~seed ~fanouts ~batch_size ~threads ~graph ~features ~labels
    ~seed_nodes ~per_epoch =
  let cached_epoch = ref (-1) in
  let cached_order = ref [||] in
  (* only the preparing domain calls [prepare], so the epoch-order cache is
     single-owner state *)
  let epoch_order epoch =
    if !cached_epoch <> epoch then begin
      let order = Array.copy seed_nodes in
      Prng.shuffle_in_place (Prng.create (seed + (7919 * (epoch + 1)))) order;
      cached_epoch := epoch;
      cached_order := order
    end;
    !cached_order
  in
  fun k ->
    let epoch = k / per_epoch and index = k mod per_epoch in
    let order = epoch_order epoch in
    let m = Array.length order in
    let lo = index * batch_size in
    let seeds = Array.sub order lo (min batch_size (m - lo)) in
    let batch_seed =
      seed lxor (((epoch + 1) * 0x3779fb) + ((index + 1) * 0x9e37))
    in
    let sample, sample_time =
      Timer.measure_wall (fun () ->
          G.Sampling.layered_fanout ~seed:batch_seed ~fanouts ~seeds graph)
    in
    let (feats, bfeatures, blabels, bmask), featurize_time =
      Timer.measure_wall (fun () ->
          let nodes = sample.G.Sampling.nodes in
          let n_sub = Array.length nodes in
          let bfeatures =
            Dense.init n_sub features.Dense.cols (fun i j ->
                Dense.get features nodes.(i) j)
          in
          let blabels = Array.map (fun oi -> labels.(oi)) nodes in
          let bmask =
            Array.init n_sub (fun i -> i < sample.G.Sampling.n_seeds)
          in
          let feats =
            Core.Featurizer.extract ~threads sample.G.Sampling.subgraph
          in
          (feats, bfeatures, blabels, bmask))
    in
    { epoch;
      index;
      sample;
      feats;
      features = bfeatures;
      labels = blabels;
      mask = bmask;
      sample_time;
      featurize_time }

let worker_loop t =
  let rec go k =
    if k < t.total then begin
      let b = t.prepare k in
      Mutex.lock t.m;
      while t.slot <> None && not t.stopping do
        Condition.wait t.cv t.m
      done;
      if t.stopping then Mutex.unlock t.m
      else begin
        t.slot <- Some b;
        Condition.broadcast t.cv;
        Mutex.unlock t.m;
        go (k + 1)
      end
    end
  in
  go 0

let create ?(seed = 0) ?mask ?(threads = 1) ~mode ~fanouts ~batch_size
    ~epochs ~graph ~features ~labels () =
  if batch_size < 1 then invalid_arg "Loader.create: batch_size must be >= 1";
  if epochs < 1 then invalid_arg "Loader.create: epochs must be >= 1";
  if fanouts = [] || List.exists (fun f -> f <= 0) fanouts then
    invalid_arg "Loader.create: fanouts must be non-empty and positive";
  let n = G.Graph.n_nodes graph in
  if features.Dense.rows <> n then
    invalid_arg "Loader.create: feature rows must match the graph";
  if Array.length labels <> n then
    invalid_arg "Loader.create: labels length must match the graph";
  let seed_nodes =
    match mask with
    | None -> Array.init n (fun i -> i)
    | Some m ->
        if Array.length m <> n then
          invalid_arg "Loader.create: mask length must match the graph";
        let ids = ref [] in
        for i = n - 1 downto 0 do
          if m.(i) then ids := i :: !ids
        done;
        Array.of_list !ids
  in
  if Array.length seed_nodes = 0 then
    invalid_arg "Loader.create: no seed nodes (all-false mask)";
  let per_epoch = (Array.length seed_nodes + batch_size - 1) / batch_size in
  let prepare =
    make_prepare ~seed ~fanouts ~batch_size ~threads ~graph ~features ~labels
      ~seed_nodes ~per_epoch
  in
  let t =
    { mode;
      total = epochs * per_epoch;
      per_epoch;
      prepare;
      consumed = 0;
      stall = 0.;
      m = Mutex.create ();
      cv = Condition.create ();
      slot = None;
      stopping = false;
      worker = None }
  in
  (match mode with
  | Sequential -> ()
  | Pipelined -> t.worker <- Some (Domain.spawn (fun () -> worker_loop t)));
  t

let batches_per_epoch t = t.per_epoch

let total_batches t = t.total

let stall_time t = t.stall

let next t =
  if t.consumed >= t.total then None
  else
    let b =
      match t.mode with
      | Sequential -> t.prepare t.consumed
      | Pipelined ->
          let t0 = Timer.wall () in
          Mutex.lock t.m;
          while t.slot = None do
            Condition.wait t.cv t.m
          done;
          let b = Option.get t.slot in
          t.slot <- None;
          Condition.broadcast t.cv;
          Mutex.unlock t.m;
          t.stall <- t.stall +. (Timer.wall () -. t0);
          b
    in
    t.consumed <- t.consumed + 1;
    Some b

let shutdown t =
  match t.worker with
  | None -> ()
  | Some d ->
      Mutex.lock t.m;
      t.stopping <- true;
      t.slot <- None;
      Condition.broadcast t.cv;
      Mutex.unlock t.m;
      Domain.join d;
      t.worker <- None
