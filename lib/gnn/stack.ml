module Dense = Granii_tensor.Dense
module Core = Granii_core

type layer = {
  l_plan : Core.Plan.t;
  l_params : Layer.params;
  l_k_in : int;
  l_k_out : int;
}

type t = {
  lowered : Granii_mp.Lower.lowered;
  layers : layer list;
}

let build ?(seed = 0) ~oracle ~graph ~compiled ~lowered ~dims ?(iterations = 100)
    () =
  if List.length dims < 2 then invalid_arg "Stack.build: need at least two dims";
  let n = Granii_graph.Graph.n_nodes graph in
  let nnz = Granii_graph.Graph.n_edges graph + n in
  let feats = Core.Featurizer.extract graph in
  let rec pairs = function
    | a :: (b :: _ as rest) -> (a, b) :: pairs rest
    | [ _ ] | [] -> []
  in
  let layers =
    List.mapi
      (fun i (k_in, k_out) ->
        let env = { Core.Dim.n; nnz; k_in; k_out } in
        let choice =
          Core.Selector.select ~oracle ~feats ~env ~iterations compiled
        in
        { l_plan = choice.Core.Selector.candidate.Core.Codegen.plan;
          l_params = Layer.init_params ~seed:(seed + (37 * i)) ~env lowered;
          l_k_in = k_in;
          l_k_out = k_out })
      (pairs dims)
  in
  { lowered; layers }

let dense_output (r : Core.Executor.report) =
  match r.Core.Executor.output with
  | Core.Executor.Vdense d -> d
  | Core.Executor.Vsparse _ | Core.Executor.Vdiag _ ->
      invalid_arg "Stack: layer output is not dense"

let forward ?engine ?(keep_reports = true) ~graph ~features stack =
  let engine =
    match engine with Some e -> e | None -> Core.Engine.default ()
  in
  let h = ref features in
  let reports = ref [] in
  List.iter
    (fun layer ->
      let bindings = Layer.bindings ~graph ~h:!h layer.l_params in
      let report =
        Core.Executor.exec ~engine ~timing:Core.Executor.Measure ~graph
          ~bindings layer.l_plan
      in
      h := dense_output report;
      if keep_reports then reports := (report, bindings) :: !reports)
    stack.layers;
  (!h, List.rev !reports)

type history = {
  losses : float array;
  train_accuracy : float;
  final : t;
}

let prefix_names i kvs = List.map (fun (k, v) -> (Printf.sprintf "l%d/%s" i k, v)) kvs
let unprefix_names i kvs =
  let p = Printf.sprintf "l%d/" i in
  let plen = String.length p in
  List.map (fun (k, v) -> (String.sub k plen (String.length k - plen), v)) kvs

let train ?(seed = 0) ?mask ~epochs ~optimizer ~graph ~features ~labels stack =
  if epochs <= 0 then invalid_arg "Stack.train: epochs must be positive";
  ignore seed;
  let losses = Array.make epochs 0. in
  let stack = ref stack in
  let last_logits = ref None in
  for epoch = 0 to epochs - 1 do
    let logits, reports = forward ~graph ~features !stack in
    last_logits := Some logits;
    let loss, dlogits = Loss.softmax_cross_entropy ?mask ~logits ~labels () in
    losses.(epoch) <- loss;
    (* reverse through the layers, threading the H gradient down *)
    let layer_arr = Array.of_list !stack.layers in
    let report_arr = Array.of_list reports in
    let n_layers = Array.length layer_arr in
    let grads_per_layer = Array.make n_layers [] in
    let seed_grad = ref dlogits in
    for i = n_layers - 1 downto 0 do
      let layer = layer_arr.(i) in
      let report, bindings = report_arr.(i) in
      let grads =
        Autodiff.backward ~plan:layer.l_plan ~graph ~bindings ~forward:report
          ~seed:!seed_grad
      in
      grads_per_layer.(i) <- grads;
      if i > 0 then
        match List.assoc_opt "H" grads with
        | Some g -> seed_grad := g
        | None ->
            invalid_arg "Stack.train: layer does not propagate a feature gradient"
    done;
    let new_layers =
      List.mapi
        (fun i layer ->
          let stepped =
            Optimizer.step optimizer
              (prefix_names i layer.l_params)
              (prefix_names i grads_per_layer.(i))
          in
          { layer with l_params = unprefix_names i stepped })
        (Array.to_list layer_arr)
    in
    stack := { !stack with layers = new_layers }
  done;
  let train_accuracy =
    match !last_logits with
    | Some logits -> Loss.accuracy ?mask ~logits ~labels ()
    | None -> 0.
  in
  { losses; train_accuracy; final = !stack }

let plans stack = List.map (fun l -> l.l_plan) stack.layers
