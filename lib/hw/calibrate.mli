(** Startup auto-calibration: bounded micro-probes that re-anchor the
    analytic {!Hw_profile} constants to the actual host.

    The four probes each measure one roofline axis (dense flops, sparse
    indirect flops, streaming bandwidth, random-gather bandwidth) inside a
    quarter of the total time budget, so the whole pass is bounded: with the
    default budget it costs ~0.2 s once at startup. Probe rates are
    single-core; {!reanchor} extrapolates machine-level constants with the
    base profile's core count and clamps them into sane ranges, so a noisy
    probe can never yield a degenerate profile. *)

type measurement = {
  dense_gflops : float;   (** cache-resident GEMM rate, single core *)
  sparse_gflops : float;  (** indirect multiply-accumulate rate, single core *)
  stream_gbps : float;    (** sequential-read bandwidth, single core *)
  random_gbps : float;    (** dependent random-gather bandwidth, single core *)
  elapsed_s : float;      (** wall time the whole pass actually took *)
}

val default_budget_s : float
(** [0.2] seconds. *)

val measure : ?budget_s:float -> unit -> measurement
(** Run the four probes, each bounded by [budget_s /. 4] (at least one
    repetition each, so the pass can overshoot a very small budget by one
    probe iteration). Raises [Invalid_argument] if [budget_s <= 0]. *)

val reanchor : ?base:Hw_profile.t -> measurement -> Hw_profile.t
(** [base] (default {!Hw_profile.cpu}) with its four rate constants replaced
    by machine-level extrapolations of the measured single-core rates,
    clamped to sane ranges; the name gains a ["-host"] suffix. All other
    fields (cache size, overheads, discounts, noise) are kept. *)

val profile : ?budget_s:float -> ?base:Hw_profile.t -> unit -> Hw_profile.t
(** [reanchor ?base (measure ?budget_s ())]. *)
