(** Analytic (roofline) cost model for sparse/dense kernels.

    Predicts the runtime of each kernel on a {!Hw_profile.t} as
    [max(compute, memory) + launch], with separate throughputs for dense and
    irregular FLOPs and for streamed vs. randomly-gathered bytes. This model
    plays two roles:

    - it {e is} the simulated hardware: `Executor` in simulate mode charges
      each primitive the time predicted here (plus deterministic jitter), and
      the profiling data that trains GRANII's learned cost models is generated
      from it — the learned models never see the formulas, only samples;
    - it serves as the input-oblivious "analytic" ablation baseline against
      the learned models in the Table VI bench. *)

type kernel =
  | Gemm of { m : int; k : int; n : int }
      (** dense {m (m \times k) \cdot (k \times n)} *)
  | Spmm of { rows : int; nnz : int; k : int; weighted : bool }
      (** sparse-times-dense; [weighted = false] skips the value stream *)
  | Spmm_hybrid of
      { rows : int; nnz : int; k : int; weighted : bool; packing : float }
      (** sparse-times-dense from the hybrid ELL+tail format: index traffic
          inflates by [1 / packing] (the slab streams its padding), while
          gather traffic earns the locality discount passed to {!time} *)
  | Spmm_bsr of
      { rows : int; nnz : int; k : int; weighted : bool; fill : float }
      (** sparse-times-dense from the block-sparse (BSR) format: FLOPs and
          the value stream inflate by [1 / fill] (the dense tiles compute
          their padding) but run on the dense pipe at
          [Hw_profile.bsr_dense_efficiency] of GEMM rate, and gather traffic
          shrinks by the block height (a block's [c] B-rows are shared by
          its [r] tile rows) *)
  | Spmm_cbm of
      { rows : int; nnz : int; k : int; weighted : bool; overlap : float }
      (** sparse-times-dense from the neighbor-dedup (CBM) format:
          [overlap] is the realized dedup fraction (the graph's measured
          neighbor overlap scaled by [Hw_profile.cbm_dedup_efficiency]) —
          that fraction of the multiply-adds and gathers disappears, at the
          cost of a k-wide base-row copy per deduplicated row *)
  | Dense_sparse_mm of { rows : int; nnz : int; cols : int; k : int }
      (** dense-times-sparse scatter form: {m (rows \times k)} dense by a
          sparse with [nnz] entries and [cols] columns *)
  | Sddmm of { nnz : int; k : int }
      (** sampled dense-dense with inner dimension [k]; [k = 1] is the
          rank-1 normalization SDDMM *)
  | Row_broadcast of { n : int; k : int }
  | Col_broadcast of { n : int; k : int }
  | Diag_scale_sparse of { nnz : int }
  | Diag_combine of { n : int }  (** pointwise product of two diagonals *)
  | Elementwise of { n : int; k : int; flops_per_elt : float }
      (** activations and similar maps over an {m n \times k} tensor *)
  | Edge_softmax of { nnz : int }
  | Degree_binning of { n : int; nnz : int; avg_collisions : float }
      (** WiseGraph-style scatter-add binning with atomic contention
          proportional to the average writers per bin (Sec. VI-C1) *)
  | Degree_rowptr of { n : int }
      (** degree from CSR row pointers: a cheap streaming diff *)
  | Layout_pass of { n : int; nnz : int }
      (** one-time layout work (ordering computation, permuted re-index, or
          hybrid split): counting-scatter passes over the structure — the
          setup cost reordering must amortize *)

val flops : kernel -> float
(** Floating-point operations the kernel performs. *)

val bytes_streamed : kernel -> float
(** Bytes moved with streaming (prefetchable) access, assuming 4-byte
    elements. *)

val bytes_random : kernel -> float
(** Bytes moved with data-dependent random access. *)

val random_working_set : kernel -> float
(** Distinct bytes the random-access stream touches (e.g. the gathered
    dense operand of an SpMM). When this fits in the profile's
    [cache_bytes], the gathers are cache hits after the first touch and are
    charged at streaming rate in {!time}; [0.] means the kernel has no
    random stream. *)

val is_dense_compute : kernel -> bool
(** Whether the kernel runs at dense ([Gemm]) or irregular throughput. *)

val time : ?threads:int -> ?gather_discount:float -> Hw_profile.t -> kernel -> float
(** Predicted runtime in seconds, noise-free. [?threads] (default [1])
    models the multicore engine: the compute term scales by
    [1 + 0.85 (t - 1)], the memory term by the much flatter
    [1 + 0.25 (t - 1)] (bandwidth is shared), atomics pay extra contention,
    and [t] is clamped to the profile's [cores]. Random traffic is split by
    cache residency: the fraction [min 1 (cache_bytes / working_set)] of
    {!bytes_random} is charged at streaming rate, the rest at random rate —
    this makes sparse kernel cost input-size-aware (small graphs keep their
    gathered operands cache-resident; large ones pay full gather cost).
    [?gather_discount] (default [0.], clamped to [[0, 1]]) scales
    {!bytes_random} down by [1 - d]: the locality engine's per-format /
    per-ordering credit (see [Granii_core.Locality]). *)

val time_noisy : ?threads:int -> Hw_profile.t -> seed:int -> kernel -> float
(** {!time} scaled by a deterministic jitter in
    [[1 - noise, 1 + noise]] derived from [seed] and the kernel. *)

val pp : Format.formatter -> kernel -> unit
