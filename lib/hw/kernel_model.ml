type kernel =
  | Gemm of { m : int; k : int; n : int }
  | Spmm of { rows : int; nnz : int; k : int; weighted : bool }
  | Spmm_hybrid of
      { rows : int; nnz : int; k : int; weighted : bool; packing : float }
  | Spmm_bsr of
      { rows : int; nnz : int; k : int; weighted : bool; fill : float }
  | Spmm_cbm of
      { rows : int; nnz : int; k : int; weighted : bool; overlap : float }
  | Dense_sparse_mm of { rows : int; nnz : int; cols : int; k : int }
  | Sddmm of { nnz : int; k : int }
  | Row_broadcast of { n : int; k : int }
  | Col_broadcast of { n : int; k : int }
  | Diag_scale_sparse of { nnz : int }
  | Diag_combine of { n : int }
  | Elementwise of { n : int; k : int; flops_per_elt : float }
  | Edge_softmax of { nnz : int }
  | Degree_binning of { n : int; nnz : int; avg_collisions : float }
  | Degree_rowptr of { n : int }
  | Layout_pass of { n : int; nnz : int }

let f = float_of_int
let elt_bytes = 4.

let flops = function
  | Gemm { m; k; n } -> 2. *. f m *. f k *. f n
  | Spmm { nnz; k; _ } | Spmm_hybrid { nnz; k; _ } -> 2. *. f nnz *. f k
  (* the dense tiles compute their padding too: FLOPs inflate by the
     reciprocal of the block fill *)
  | Spmm_bsr { nnz; k; fill; _ } ->
      2. *. f nnz *. f k /. Float.max 0.05 fill
  (* delta rows skip their shared prefix: the overlap fraction of the
     multiply-adds disappears *)
  | Spmm_cbm { nnz; k; overlap; _ } ->
      2. *. f nnz *. f k *. (1. -. Float.max 0. (Float.min 1. overlap))
  | Dense_sparse_mm { rows; nnz; _ } -> 2. *. f rows *. f nnz
  | Sddmm { nnz; k } -> 2. *. f nnz *. f k
  | Row_broadcast { n; k } | Col_broadcast { n; k } -> f n *. f k
  | Diag_scale_sparse { nnz } -> 2. *. f nnz
  | Diag_combine { n } -> f n
  | Elementwise { n; k; flops_per_elt } -> f n *. f k *. flops_per_elt
  (* exp + max + sum + divide per edge; exp counted as ~8 flops *)
  | Edge_softmax { nnz } -> 12. *. f nnz
  | Degree_binning { nnz; _ } -> f nnz
  | Degree_rowptr { n } -> f n
  (* counting passes: comparisons and index arithmetic, no FP *)
  | Layout_pass { nnz; _ } -> f nnz

let bytes_streamed = function
  | Gemm { m; k; n } -> elt_bytes *. ((f m *. f k) +. (f k *. f n) +. (2. *. f m *. f n))
  | Spmm { rows; nnz; k; weighted } ->
      (* indices, optional values, and the streamed output *)
      elt_bytes *. ((f nnz *. if weighted then 2. else 1.) +. (f rows *. f k))
  | Spmm_hybrid { rows; nnz; k; weighted; packing } ->
      (* the slab streams its padding too: index traffic inflates by the
         reciprocal of the packing efficiency *)
      let pad = 1. /. Float.max 0.05 packing in
      elt_bytes
      *. ((f nnz *. pad *. if weighted then 2. else 1.) +. (f rows *. f k))
  | Spmm_bsr { rows; nnz; k; fill; _ } ->
      (* tile values stream padding included; per-block metadata is one
         index per block (nnz * pad / (r*c) entries, folded into the value
         stream), plus the streamed output *)
      let pad = 1. /. Float.max 0.05 fill in
      elt_bytes *. ((f nnz *. pad) +. (f rows *. f k))
  | Spmm_cbm { rows; nnz; k; weighted; overlap } ->
      (* surviving entries stream as in CSR; every deduplicated row also
         streams a k-wide copy of its base's output *)
      let ov = Float.max 0. (Float.min 1. overlap) in
      elt_bytes
      *. ((f nnz *. (1. -. ov) *. if weighted then 2. else 1.)
          +. ((1. +. ov) *. f rows *. f k))
  | Dense_sparse_mm { rows; nnz; cols; k } ->
      elt_bytes *. ((f rows *. f k) +. (2. *. f nnz) +. (f rows *. f cols))
  | Sddmm { nnz; _ } -> elt_bytes *. 2. *. f nnz
  | Row_broadcast { n; k } | Col_broadcast { n; k } ->
      elt_bytes *. ((2. *. f n *. f k) +. f n)
  | Diag_scale_sparse { nnz } -> elt_bytes *. 3. *. f nnz
  | Diag_combine { n } -> elt_bytes *. 3. *. f n
  | Elementwise { n; k; _ } -> elt_bytes *. 2. *. f n *. f k
  | Edge_softmax { nnz } -> elt_bytes *. 4. *. f nnz
  | Degree_binning { n; nnz; _ } -> elt_bytes *. (f nnz +. f n)
  | Degree_rowptr { n } -> elt_bytes *. 2. *. f n
  (* read indices + values, write the re-indexed copy, plus the prefix *)
  | Layout_pass { n; nnz } -> elt_bytes *. ((4. *. f nnz) +. (2. *. f n))

let bytes_random = function
  | Gemm _ -> 0.
  | Spmm { nnz; k; _ } | Spmm_hybrid { nnz; k; _ } ->
      elt_bytes *. f nnz *. f k
  (* a block gathers [c] consecutive B rows shared by its [r] tile rows:
     the per-entry gather cost shrinks by the block height, and padding
     entries gather nothing new *)
  | Spmm_bsr { nnz; k; _ } -> elt_bytes *. f nnz *. f k /. 8.
  (* deduplicated entries never gather *)
  | Spmm_cbm { nnz; k; overlap; _ } ->
      elt_bytes *. f nnz *. f k *. (1. -. Float.max 0. (Float.min 1. overlap))
  | Dense_sparse_mm { nnz; k; _ } -> elt_bytes *. f nnz *. f k
  | Sddmm { nnz; k } -> elt_bytes *. 2. *. f nnz *. f k
  | Row_broadcast _ | Col_broadcast _ | Diag_combine _ | Elementwise _
  | Degree_rowptr _ ->
      0.
  | Diag_scale_sparse { nnz } -> elt_bytes *. f nnz
  | Edge_softmax _ -> 0.
  | Degree_binning { nnz; _ } -> elt_bytes *. f nnz
  (* the scatter of the counting pass *)
  | Layout_pass { nnz; _ } -> elt_bytes *. f nnz

(* Distinct bytes touched by the random-access stream: when this working
   set fits in the profile's last-level cache, the "random" gathers are
   really cache hits after the first touch and run at streaming rate. *)
let random_working_set = function
  | Gemm _ -> 0.
  (* the gathered operand is the full dense matrix B *)
  | Spmm { rows; k; _ }
  | Spmm_hybrid { rows; k; _ }
  | Spmm_bsr { rows; k; _ }
  | Spmm_cbm { rows; k; _ } ->
      elt_bytes *. f rows *. f k
  (* scatter targets are row-local: one output row resident at a time *)
  | Dense_sparse_mm { cols; _ } -> elt_bytes *. f cols
  (* distinct dense rows ~ nnz / avg_degree (~8), two operands of width k *)
  | Sddmm { nnz; k } -> elt_bytes *. f nnz *. f k /. 4.
  (* the gathered diagonal, one entry per distinct column *)
  | Diag_scale_sparse { nnz } -> elt_bytes *. f nnz /. 8.
  | Degree_binning { n; _ } -> elt_bytes *. f n
  (* scatter targets cover the whole re-indexed copy *)
  | Layout_pass { nnz; _ } -> elt_bytes *. f nnz
  | Row_broadcast _ | Col_broadcast _ | Diag_combine _ | Elementwise _
  | Edge_softmax _ | Degree_rowptr _ ->
      0.

let is_dense_compute = function
  | Gemm _ -> true
  (* BSR runs its tiles on the dense pipe, at the profile's
     [bsr_dense_efficiency] fraction of full GEMM rate (see {!time}) *)
  | Spmm_bsr _ -> true
  | Spmm _ | Spmm_hybrid _ | Spmm_cbm _ | Dense_sparse_mm _ | Sddmm _
  | Row_broadcast _
  | Col_broadcast _ | Diag_scale_sparse _ | Diag_combine _ | Elementwise _
  | Edge_softmax _ | Degree_binning _ | Degree_rowptr _ | Layout_pass _ ->
      false

(* Marginal efficiency of each extra thread on the compute-bound part:
   static row chunking leaves some imbalance and the domains share caches, so
   n threads deliver 1 + 0.85 (n - 1) rather than n. Bandwidth-bound work is
   shared across cores and gains much less per thread. *)
let compute_efficiency = 0.85
let memory_efficiency = 0.25

let time ?(threads = 1) ?(gather_discount = 0.) (p : Hw_profile.t) kernel =
  let t = max 1 (min threads p.Hw_profile.cores) in
  let compute_speedup = 1. +. (compute_efficiency *. float_of_int (t - 1)) in
  let memory_speedup = 1. +. (memory_efficiency *. float_of_int (t - 1)) in
  let compute_throughput =
    (match kernel with
    | Spmm_bsr _ ->
        (* dense tiles, but small and bandwidth-interleaved: a fraction of
           the full GEMM rate *)
        p.Hw_profile.dense_gflops *. p.Hw_profile.bsr_dense_efficiency
    | _ ->
        if is_dense_compute kernel then p.Hw_profile.dense_gflops
        else p.Hw_profile.sparse_gflops)
    *. 1e9
  in
  let compute_t = flops kernel /. compute_throughput /. compute_speedup in
  let random_t =
    (* locality credit: packing + ordering shrink the effective random
       traffic (they turn scattered gathers into near-neighbor reuse) *)
    let br =
      bytes_random kernel *. (1. -. Float.max 0. (Float.min 1. gather_discount))
    in
    if br = 0. then 0.
    else
      let ws = random_working_set kernel in
      (* fraction of random traffic served from cache: once the working set
         fits in the LLC the gathers hit after the first touch and run at
         streaming rate *)
      let hit = if ws <= 0. then 1. else Float.min 1. (p.Hw_profile.cache_bytes /. ws) in
      (hit *. br /. (p.Hw_profile.stream_gbps *. 1e9))
      +. ((1. -. hit) *. br /. (p.Hw_profile.random_gbps *. 1e9))
  in
  let memory_t =
    ((bytes_streamed kernel /. (p.Hw_profile.stream_gbps *. 1e9)) +. random_t)
    /. memory_speedup
  in
  let atomic_t =
    match kernel with
    | Degree_binning { nnz; avg_collisions; _ } ->
        (* contention grows with concurrent writers *)
        f nnz *. p.Hw_profile.atomic_ns *. 1e-9
        *. (1. +. (p.Hw_profile.atomic_contention_factor *. avg_collisions))
        *. (1. +. (p.Hw_profile.atomic_contention_factor *. float_of_int (t - 1)))
    | Gemm _ | Spmm _ | Spmm_hybrid _ | Spmm_bsr _ | Spmm_cbm _
    | Dense_sparse_mm _ | Sddmm _ | Row_broadcast _ | Col_broadcast _
    | Diag_scale_sparse _ | Diag_combine _ | Elementwise _ | Edge_softmax _
    | Degree_rowptr _ | Layout_pass _ ->
        0.
  in
  Float.max compute_t memory_t +. atomic_t +. p.Hw_profile.launch_overhead_s

let kernel_hash kernel =
  Hashtbl.hash kernel

let time_noisy ?threads (p : Hw_profile.t) ~seed kernel =
  let base = time ?threads p kernel in
  let rng = Granii_tensor.Prng.create (seed + (31 * kernel_hash kernel)) in
  let jitter = 1. +. (p.Hw_profile.noise *. ((2. *. Granii_tensor.Prng.float rng) -. 1.)) in
  base *. jitter

let pp ppf = function
  | Gemm { m; k; n } -> Format.fprintf ppf "gemm(%dx%dx%d)" m k n
  | Spmm { rows; nnz; k; weighted } ->
      Format.fprintf ppf "spmm(rows=%d,nnz=%d,k=%d%s)" rows nnz k
        (if weighted then ",w" else "")
  | Spmm_hybrid { rows; nnz; k; weighted; packing } ->
      Format.fprintf ppf "spmm_hyb(rows=%d,nnz=%d,k=%d%s,pack=%.2f)" rows nnz
        k
        (if weighted then ",w" else "")
        packing
  | Spmm_bsr { rows; nnz; k; weighted; fill } ->
      Format.fprintf ppf "spmm_bsr(rows=%d,nnz=%d,k=%d%s,fill=%.2f)" rows nnz
        k
        (if weighted then ",w" else "")
        fill
  | Spmm_cbm { rows; nnz; k; weighted; overlap } ->
      Format.fprintf ppf "spmm_cbm(rows=%d,nnz=%d,k=%d%s,ov=%.2f)" rows nnz k
        (if weighted then ",w" else "")
        overlap
  | Dense_sparse_mm { rows; nnz; cols; k } ->
      Format.fprintf ppf "dspmm(rows=%d,nnz=%d,cols=%d,k=%d)" rows nnz cols k
  | Sddmm { nnz; k } -> Format.fprintf ppf "sddmm(nnz=%d,k=%d)" nnz k
  | Row_broadcast { n; k } -> Format.fprintf ppf "row_bcast(%dx%d)" n k
  | Col_broadcast { n; k } -> Format.fprintf ppf "col_bcast(%dx%d)" n k
  | Diag_scale_sparse { nnz } -> Format.fprintf ppf "diag_sp_scale(nnz=%d)" nnz
  | Diag_combine { n } -> Format.fprintf ppf "diag_combine(n=%d)" n
  | Elementwise { n; k; _ } -> Format.fprintf ppf "elementwise(%dx%d)" n k
  | Edge_softmax { nnz } -> Format.fprintf ppf "edge_softmax(nnz=%d)" nnz
  | Degree_binning { n; nnz; _ } -> Format.fprintf ppf "degree_binning(n=%d,nnz=%d)" n nnz
  | Degree_rowptr { n } -> Format.fprintf ppf "degree_rowptr(n=%d)" n
  | Layout_pass { n; nnz } -> Format.fprintf ppf "layout_pass(n=%d,nnz=%d)" n nnz
