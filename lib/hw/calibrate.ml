(* Startup auto-calibration: a bounded micro-probe pass that re-anchors the
   analytic [Hw_profile] constants to the actual host (generalizing the
   original parallel micro-bench). Each probe is a tight loop over
   preallocated buffers, repeated until its slice of the time budget is
   spent, measuring one roofline axis:

   - dense:  a cache-resident 64x64x64 GEMM kernel   -> dense_gflops
   - sparse: an 8-per-row indirect multiply-accumulate -> sparse_gflops
   - stream: a sequential sum over a large array       -> stream_gbps
   - random: a gather-sum through a shuffled index map -> random_gbps

   The probes are single-core; machine-level profile constants are
   extrapolated with the base profile's core count and a fixed
   parallel-efficiency model (compute scales near-linearly, bandwidth
   saturates after a few cores). The result is clamped into sane ranges so
   a noisy probe on a loaded host can never produce a degenerate profile. *)

type measurement = {
  dense_gflops : float;
  sparse_gflops : float;
  stream_gbps : float;
  random_gbps : float;
  elapsed_s : float;
}

let default_budget_s = 0.2

(* Repeat [probe] (returning work units done per rep) until [slice] seconds
   elapse, at least once; the rate is total work / total elapsed. *)
let timed_rate ~slice probe =
  let t0 = Timer.wall () in
  let work = ref 0. in
  let reps = ref 0 in
  while !reps = 0 || Timer.wall () -. t0 < slice do
    work := !work +. probe ();
    incr reps
  done;
  let dt = Timer.wall () -. t0 in
  if dt > 0. then !work /. dt else !work /. 1e-9

let dense_probe () =
  let n = 64 in
  let a = Array.make (n * n) 1.000_1 in
  let b = Array.make (n * n) 0.999_9 in
  let c = Array.make (n * n) 0. in
  fun () ->
    for i = 0 to n - 1 do
      for k = 0 to n - 1 do
        let aik = Array.unsafe_get a ((i * n) + k) in
        for j = 0 to n - 1 do
          Array.unsafe_set c ((i * n) + j)
            (Array.unsafe_get c ((i * n) + j)
            +. (aik *. Array.unsafe_get b ((k * n) + j)))
        done
      done
    done;
    ignore (Sys.opaque_identity c.(0));
    (* flops *)
    2. *. float_of_int (n * n * n)

let stream_probe () =
  let n = 4 * 1024 * 1024 in
  let x = Array.init n (fun i -> float_of_int (i land 1023)) in
  fun () ->
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. Array.unsafe_get x i
    done;
    ignore (Sys.opaque_identity !acc);
    (* bytes streamed *)
    8. *. float_of_int n

(* LCG-shuffled indices: every load misses the prefetcher. *)
let lcg_indices n =
  let idx = Array.make n 0 in
  let state = ref 123_456_789 in
  for i = 0 to n - 1 do
    state := ((!state * 1_103_515_245) + 12_345) land 0x3FFFFFFF;
    idx.(i) <- !state mod n
  done;
  idx

let random_probe () =
  let n = 4 * 1024 * 1024 in
  let x = Array.init n (fun i -> float_of_int (i land 1023)) in
  let idx = lcg_indices n in
  fun () ->
    let acc = ref 0. in
    for i = 0 to n - 1 do
      acc := !acc +. Array.unsafe_get x (Array.unsafe_get idx i)
    done;
    ignore (Sys.opaque_identity !acc);
    (* randomly-touched bytes (the value loads; index traffic is streamed) *)
    8. *. float_of_int n

let sparse_probe () =
  let rows = 128 * 1024 and deg = 8 in
  let nnz = rows * deg in
  let x = Array.init rows (fun i -> float_of_int (i land 255)) in
  let vals = Array.make nnz 1.000_01 in
  let idx = lcg_indices nnz in
  let idx = Array.map (fun i -> i mod rows) idx in
  let y = Array.make rows 0. in
  fun () ->
    for r = 0 to rows - 1 do
      let acc = ref 0. in
      for j = r * deg to ((r + 1) * deg) - 1 do
        acc :=
          !acc
          +. (Array.unsafe_get vals j
             *. Array.unsafe_get x (Array.unsafe_get idx j))
      done;
      Array.unsafe_set y r !acc
    done;
    ignore (Sys.opaque_identity y.(0));
    (* flops *)
    2. *. float_of_int nnz

let measure ?(budget_s = default_budget_s) () =
  if budget_s <= 0. then invalid_arg "Calibrate.measure: budget_s must be > 0";
  let slice = budget_s /. 4. in
  let t0 = Timer.wall () in
  let dense = timed_rate ~slice (dense_probe ()) in
  let sparse = timed_rate ~slice (sparse_probe ()) in
  let stream = timed_rate ~slice (stream_probe ()) in
  let random = timed_rate ~slice (random_probe ()) in
  { dense_gflops = dense /. 1e9;
    sparse_gflops = sparse /. 1e9;
    stream_gbps = stream /. 1e9;
    random_gbps = random /. 1e9;
    elapsed_s = Timer.wall () -. t0 }

let clamp lo hi v = Float.max lo (Float.min hi v)

(* Single-core probe rates -> machine-level constants: compute axes scale
   with cores at 70% parallel efficiency; bandwidth axes saturate after a
   handful of cores (memory channels, not cores, are the limit). *)
let reanchor ?(base = Hw_profile.cpu) (m : measurement) =
  let cores = float_of_int base.Hw_profile.cores in
  let bw_scale = Float.min 4. cores in
  { base with
    Hw_profile.name = base.Hw_profile.name ^ "-host";
    dense_gflops = clamp 1. 1e5 (m.dense_gflops *. cores *. 0.7);
    sparse_gflops = clamp 0.1 1e4 (m.sparse_gflops *. cores *. 0.5);
    stream_gbps = clamp 1. 1e4 (m.stream_gbps *. bw_scale);
    random_gbps = clamp 0.05 1e3 (m.random_gbps *. bw_scale) }

let profile ?budget_s ?base () = reanchor ?base (measure ?budget_s ())
