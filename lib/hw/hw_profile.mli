(** Hardware profiles — the three testbed machines of the paper (Sec. V).

    The paper evaluates on a Xeon CPU, an A100 and an H100. In this sealed
    container GPUs are unavailable, so each machine is modeled by a small set
    of roofline parameters consumed by {!Kernel_model}. The parameters are
    calibrated to the published characteristics of each platform; what
    matters for reproducing the paper's phenomena is the {e relative}
    movement they induce (dense ops get progressively cheaper from CPU to
    A100 to H100 — Fig. 2 — and the A100 pays most for atomic-heavy binning —
    Sec. VI-C1). *)

type t = {
  name : string;
  cores : int;
  (** independent execution units (CPU cores / GPU SMs): the ceiling the
      kernel model clamps a requested thread count to *)
  dense_gflops : float;
  (** sustained dense-GEMM throughput, GFLOP/s *)
  sparse_gflops : float;
  (** sustained FLOP throughput for irregular sparse kernels, GFLOP/s *)
  stream_gbps : float;
  (** streaming memory bandwidth, GB/s *)
  random_gbps : float;
  (** effective bandwidth for random gathers (SpMM row fetches), GB/s *)
  cache_bytes : float;
  (** capacity of the last-level cache: random traffic whose working set
      fits here is served at streaming rate instead (see
      {!Kernel_model.time}) *)
  launch_overhead_s : float;
  (** fixed per-kernel cost (GPU launch latency; ~0 on CPU) *)
  atomic_ns : float;
  (** base cost of one atomic scatter-add update, nanoseconds *)
  atomic_contention_factor : float;
  (** multiplier growth per unit of average bin collision: an atomic update
      into a bin shared by [d] writers costs
      [atomic_ns * (1 + factor * d)] *)
  hybrid_gather_discount : float;
  (** fraction of a sparse kernel's random-gather traffic the hybrid
      (ELL + tail) format recovers at perfect slab packing; scaled down by
      the actual packing efficiency (see [Granii_core.Locality]) *)
  locality_order_discount : float;
  (** fraction of random-gather traffic a well-chosen vertex ordering
      recovers on a maximally reorderable input; scaled by the ordering's
      measured quality *)
  bsr_dense_efficiency : float;
  (** fraction of [dense_gflops] the BSR dense-tile SpMM sustains: the
      block-sparse format runs its (padded) FLOPs on the dense pipe at this
      rate instead of [sparse_gflops] (see [Kernel_model.Spmm_bsr]) *)
  bsr_gather_discount : float;
  (** fraction of an SDDMM's random traffic the BSR tiling recovers at
      perfect block fill; scaled by the actual fill ratio *)
  cbm_dedup_efficiency : float;
  (** fraction of the CBM format's deduplicated work that translates into
      saved time (delta-row dependencies cost more on wide machines);
      scales the graph's measured neighbor overlap in
      [Kernel_model.Spmm_cbm] *)
  noise : float;
  (** relative amplitude of the deterministic run-to-run jitter *)
}

val cpu : t
(** Intel Xeon Gold 6348-class CPU (the paper's CPU testbed). *)

val a100 : t
(** NVIDIA A100: high bandwidth, strong dense throughput, expensive
    contended atomics. *)

val h100 : t
(** NVIDIA H100: highest dense throughput and bandwidth, improved atomics. *)

val all : t list
(** [cpu; a100; h100]. *)

val find : string -> t
(** Case-insensitive lookup by name. Raises [Not_found]. *)

val pp : Format.formatter -> t -> unit
