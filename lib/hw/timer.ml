(* Two clocks, deliberately kept apart:

   - [now]/[measure]/[measure_n] read [Sys.time], i.e. process CPU time —
     right for single-threaded kernel microbenches (immune to scheduler
     noise), but it sums over every running domain, so a run on the
     multicore engine reports ~threads x the elapsed time;
   - [wall]/[measure_wall]/[measure_n_wall] read [Unix.gettimeofday], i.e.
     elapsed real time — what every parallel-path measurement, executor
     step timing and telemetry span must use. *)

let now () = Sys.time ()

let measure f =
  let t0 = now () in
  let x = f () in
  let t1 = now () in
  (x, t1 -. t0)

let measure_n ?(warmup = 1) ~n f =
  if n <= 0 then invalid_arg "Timer.measure_n: n must be positive";
  for _ = 1 to warmup do
    ignore (Sys.opaque_identity (f ()))
  done;
  let t0 = now () in
  for _ = 1 to n do
    ignore (Sys.opaque_identity (f ()))
  done;
  let t1 = now () in
  (t1 -. t0) /. float_of_int n

let wall () = Unix.gettimeofday ()

let measure_wall f =
  let t0 = wall () in
  let x = f () in
  let t1 = wall () in
  (x, t1 -. t0)

let measure_n_wall ?(warmup = 1) ~n f =
  if n <= 0 then invalid_arg "Timer.measure_n_wall: n must be positive";
  for _ = 1 to warmup do
    ignore (Sys.opaque_identity (f ()))
  done;
  let t0 = wall () in
  for _ = 1 to n do
    ignore (Sys.opaque_identity (f ()))
  done;
  let t1 = wall () in
  (t1 -. t0) /. float_of_int n
