(** Measurement helpers for real (host-CPU) execution: a CPU-time clock for
    single-threaded kernel microbenches and a wall clock for everything
    that may run on more than one domain.

    [Sys.time] is {e process CPU time}: it sums over every running domain,
    so timing a run on the multicore engine with it reports roughly
    [threads x] the elapsed time. All parallel-path measurements — executor
    step timing, telemetry spans, the parallel-speedup benches — use the
    [wall] family; the CPU family stays for sequential microbenches, where
    its immunity to scheduler noise is an asset. *)

val now : unit -> float
(** Process CPU seconds ([Sys.time]). *)

val measure : (unit -> 'a) -> 'a * float
(** [measure f] runs [f] once and returns its result with elapsed CPU
    seconds. *)

val measure_n : ?warmup:int -> n:int -> (unit -> 'a) -> float
(** [measure_n ~n f] runs [f] [warmup] times (default [1]) untimed, then [n]
    times timed, returning the {e average} CPU seconds per run. *)

val wall : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]); the clock for all parallel
    paths and telemetry spans. *)

val measure_wall : (unit -> 'a) -> 'a * float
(** {!measure} on the wall clock. *)

val measure_n_wall : ?warmup:int -> n:int -> (unit -> 'a) -> float
(** {!measure_n} on the wall clock. *)
