type t = {
  name : string;
  cores : int;
  dense_gflops : float;
  sparse_gflops : float;
  stream_gbps : float;
  random_gbps : float;
  cache_bytes : float;
  launch_overhead_s : float;
  atomic_ns : float;
  atomic_contention_factor : float;
  hybrid_gather_discount : float;
  locality_order_discount : float;
  bsr_dense_efficiency : float;
  bsr_gather_discount : float;
  cbm_dedup_efficiency : float;
  noise : float;
}

let cpu =
  { name = "CPU";
    (* Xeon Gold 6348: 28 cores; the multicore engine tops out there. *)
    cores = 28;
    dense_gflops = 150.;
    sparse_gflops = 12.;
    stream_gbps = 80.;
    random_gbps = 6.;
    (* 42 MB of shared L3 *)
    cache_bytes = 42e6;
    launch_overhead_s = 0.;
    (* Sequential scatter-adds have no contention at all. *)
    atomic_ns = 1.;
    atomic_contention_factor = 0.;
    (* Short out-of-order windows and scalar gathers leave the most on the
       table for layout: a packed slab and a hub-clustering order each
       recover a sizeable share of the random-gather cost. *)
    hybrid_gather_discount = 0.30;
    locality_order_discount = 0.40;
    (* Scalar FMA pipes don't widen much on 8x8 tiles: BSR's dense lowering
       reaches only a modest fraction of GEMM rate, so CSR usually wins on
       the CPU unless the blocks are nearly full. *)
    bsr_dense_efficiency = 0.30;
    bsr_gather_discount = 0.25;
    (* Delta rows are plain sequential adds on a CPU — nearly the full
       dedup saving is realized. *)
    cbm_dedup_efficiency = 0.9;
    noise = 0.08 }

let a100 =
  { name = "A100";
    cores = 108;
    dense_gflops = 18_000.;
    sparse_gflops = 900.;
    stream_gbps = 1_500.;
    random_gbps = 350.;
    (* 40 MB L2 *)
    cache_bytes = 40e6;
    launch_overhead_s = 6e-6;
    (* The paper attributes WiseGraph's dense-graph slowdowns to the atomic
       binning kernel; the A100 pays the most for contended atomics. *)
    atomic_ns = 2.2;
    atomic_contention_factor = 0.1;
    (* Warp-level coalescing already hides much of the irregularity, so
       layout buys less than on the CPU. *)
    hybrid_gather_discount = 0.20;
    locality_order_discount = 0.30;
    (* Tensor-core-shaped tiles: the dense pipes eat 8x8 blocks well
       (Balog et al., 1906.11786), so dense-leaning parts prefer BSR at
       moderate fill. *)
    bsr_dense_efficiency = 0.55;
    bsr_gather_discount = 0.20;
    (* The base-row broadcast serializes warps: only about half the dedup
       saving survives. *)
    cbm_dedup_efficiency = 0.5;
    noise = 0.04 }

let h100 =
  { name = "H100";
    cores = 132;
    dense_gflops = 55_000.;
    sparse_gflops = 1_800.;
    stream_gbps = 3_000.;
    random_gbps = 700.;
    (* 50 MB L2 *)
    cache_bytes = 50e6;
    launch_overhead_s = 5e-6;
    atomic_ns = 0.35;
    atomic_contention_factor = 0.012;
    hybrid_gather_discount = 0.15;
    locality_order_discount = 0.25;
    bsr_dense_efficiency = 0.6;
    bsr_gather_discount = 0.15;
    cbm_dedup_efficiency = 0.45;
    noise = 0.04 }

let all = [ cpu; a100; h100 ]

let find name =
  let n = String.uppercase_ascii name in
  List.find (fun p -> String.equal (String.uppercase_ascii p.name) n) all

let pp ppf p =
  Format.fprintf ppf "%s(dense=%.0fGF sparse=%.0fGF stream=%.0fGB/s)" p.name
    p.dense_gflops p.sparse_gflops p.stream_gbps
