(** The multicore execution engine's domain pool.

    A thin hardware-layer front door over {!Granii_tensor.Parallel} (where
    the pool itself lives so the dense kernels can use it): pool lifecycle
    helpers and the process-wide shared pool that the CLI / bench [--threads]
    flags and {!Granii_core.Executor} use. See DESIGN.md, "Threading
    model". *)

type t = Granii_tensor.Parallel.t

val create : ?threads:int -> unit -> t
(** Spawn a fresh pool; see {!Granii_tensor.Parallel.create}. *)

val threads : t -> int

val shutdown : t -> unit

val default_threads : unit -> int
(** [GRANII_THREADS] if set, else [Domain.recommended_domain_count ()]. *)

val with_pool : ?threads:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and always shuts it down. *)

val shared_pool : ?threads:int -> unit -> t
(** The lazily-created process-wide pool. Requesting a different width
    replaces (and shuts down) the previous shared pool. *)

val for_threads : int -> t option
(** [for_threads n] is [None] for [n <= 1] (sequential execution) and
    [Some (shared_pool ~threads:n ())] otherwise — the shape executors
    take. *)
