module Parallel = Granii_tensor.Parallel

type t = Parallel.t

let create = Parallel.create
let threads = Parallel.threads
let shutdown = Parallel.shutdown
let default_threads = Parallel.default_threads

let with_pool ?threads f =
  let pool = create ?threads () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* The shared pool backing `--threads N` style entry points: created on first
   use at the requested width, torn down only with the process. Re-requesting
   a different width replaces it (executors hold no reference across calls). *)
let shared : t option ref = ref None

let shared_pool ?threads () =
  let want =
    match threads with Some t -> max 1 t | None -> default_threads ()
  in
  match !shared with
  | Some pool when Parallel.threads pool = want -> pool
  | existing ->
      (match existing with Some pool -> shutdown pool | None -> ());
      let pool = create ~threads:want () in
      shared := Some pool;
      pool

let for_threads = function
  | n when n <= 1 -> None
  | n -> Some (shared_pool ~threads:n ())
