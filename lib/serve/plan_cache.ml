module Obs = Granii_obs.Obs

type key = {
  graph_fp : string;
  model : string;
  k_in : int;
  k_out : int;
  hw : string;
  threads : int;
  layout : string;
}

type stats = { hits : int; misses : int; evictions : int }

type entry = {
  choice : Granii_core.Selector.localized_choice;
  mutable last_use : int;
}

type t = {
  capacity : int;
  tbl : (key, entry) Hashtbl.t;
  obs : Obs.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?(obs = Obs.disabled) ~capacity () =
  if capacity < 0 then
    invalid_arg
      (Printf.sprintf "Plan_cache.create: capacity must be >= 0 (got %d)"
         capacity);
  { capacity;
    tbl = Hashtbl.create (max 16 capacity);
    obs;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0 }

let capacity t = t.capacity

let length t = Hashtbl.length t.tbl

let find t key =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
      e.last_use <- t.tick;
      t.hits <- t.hits + 1;
      Obs.count t.obs "serve.plan_cache.hits" 1;
      Some e.choice
  | None ->
      t.misses <- t.misses + 1;
      Obs.count t.obs "serve.plan_cache.misses" 1;
      None

let peek t key =
  Option.map (fun e -> e.choice) (Hashtbl.find_opt t.tbl key)

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, age) when age <= e.last_use -> ()
      | _ -> victim := Some (k, e.last_use))
    t.tbl;
  match !victim with
  | None -> ()
  | Some (k, _) ->
      Hashtbl.remove t.tbl k;
      t.evictions <- t.evictions + 1;
      Obs.count t.obs "serve.plan_cache.evictions" 1

let add t key choice =
  if t.capacity > 0 then begin
    t.tick <- t.tick + 1;
    if (not (Hashtbl.mem t.tbl key)) && Hashtbl.length t.tbl >= t.capacity
    then evict_lru t;
    Hashtbl.replace t.tbl key { choice; last_use = t.tick }
  end

let stats t = { hits = t.hits; misses = t.misses; evictions = t.evictions }
