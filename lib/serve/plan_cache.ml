(* The plan cache moved to lib/core (Granii_core.Plan_cache) so the
   mini-batch trainer and the serving runtime share one keying policy;
   this re-export keeps the Granii_serve.Plan_cache path working. *)
include Granii_core.Plan_cache
