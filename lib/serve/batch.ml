module Dense = Granii_tensor.Dense
module D = Granii_core.Dispatch
module Plan = Granii_core.Plan
module Primitive = Granii_core.Primitive
module Matrix_ir = Granii_core.Matrix_ir

type stats = {
  width : int;
  shared_steps : int;
  widened_steps : int;
  scattered_steps : int;
}

let err fmt =
  Format.kasprintf (fun s -> raise (Granii_core.Executor.Execution_error s)) fmt

(* A batch-dependent value: per-request column blocks, materialized lazily
   in whichever of the two representations a consumer asks for first. Both
   memos are kept so a wide producer feeding both a widened and a scattered
   consumer pays each conversion once. *)
type dep = {
  mutable wide : Dense.t option;   (** [n x (B*k)] concatenation *)
  mutable per : D.value array option;  (** request-order blocks *)
}

type repr = Shared of D.value | Dep of dep

(* Column-independent primitives: each output column is computed from the
   same column of the dependent operand(s) only, so executing once over
   concatenated per-request columns is bitwise identical to executing per
   request (the batching legality rule — see batch.mli). *)
let widenable (p : Primitive.t) =
  match p with
  | Primitive.Spmm _ | Primitive.Row_broadcast _ | Primitive.Dense_add _ ->
      true
  | Primitive.Dense_map
      { kind = Matrix_ir.Relu | Matrix_ir.Leaky_relu | Matrix_ir.Sigmoid; _ }
    ->
      true
  | _ -> false

let exec_batch ?pool ~graph ~bindings ~input ~features (plan : Plan.t) =
  let b = List.length features in
  if b = 0 then invalid_arg "Batch.exec_batch: empty batch";
  let n_nodes = Granii_graph.Graph.n_nodes graph in
  let k =
    match features with f :: _ -> f.Dense.cols | [] -> assert false
  in
  List.iter
    (fun (f : Dense.t) ->
      if f.Dense.rows <> n_nodes then
        invalid_arg
          (Printf.sprintf
             "Batch.exec_batch: feature rows %d do not match graph nodes %d"
             f.Dense.rows n_nodes);
      if f.Dense.cols <> k then
        invalid_arg "Batch.exec_batch: mixed feature widths in one batch")
    features;
  let ctx = { D.pool; ws = None; localize = None } in
  let steps = Array.of_list plan.Plan.steps in
  let n = Array.length steps in
  (* which steps transitively depend on the per-request input leaf *)
  let dep_step = Array.make n false in
  Array.iter
    (fun (s : Plan.step) ->
      dep_step.(s.Plan.idx) <-
        List.exists
          (function
            | Plan.Input name -> String.equal name input
            | Plan.Computed i -> dep_step.(i))
          s.Plan.args)
    steps;
  let input_dep =
    { wide = None;
      per = Some (Array.of_list (List.map (fun f -> D.Vdense f) features)) }
  in
  let slots : repr option array = Array.make n None in
  let resolve = function
    | Plan.Input name when String.equal name input -> Dep input_dep
    | Plan.Input "__graph__" ->
        Shared (D.Vsparse graph.Granii_graph.Graph.adj)
    | Plan.Input name -> (
        match List.assoc_opt name bindings with
        | Some v -> Shared v
        | None -> err "unbound input %s" name)
    | Plan.Computed i -> (
        match slots.(i) with
        | Some r -> r
        | None -> err "step t%d used before being computed" i)
  in
  (* request-order blocks of a dependent value, splitting the wide form on
     first demand *)
  let per_of (d : dep) =
    match d.per with
    | Some a -> a
    | None ->
        let wide = match d.wide with Some w -> w | None -> assert false in
        let a =
          Array.of_list
            (List.map (fun m -> D.Vdense m) (Dense.split_cols wide b))
        in
        d.per <- Some a;
        a
  in
  (* the wide form, when every per-request block is dense *)
  let wide_of (d : dep) =
    match d.wide with
    | Some w -> Some w
    | None ->
        let a = match d.per with Some a -> a | None -> assert false in
        let dense_blocks =
          Array.fold_right
            (fun v acc ->
              match (v, acc) with
              | D.Vdense m, Some l -> Some (m :: l)
              | _ -> None)
            a (Some [])
        in
        Option.map
          (fun blocks ->
            let w = Dense.concat_cols blocks in
            d.wide <- Some w;
            w)
          dense_blocks
  in
  (* a widened step needs: the operand pattern of a column-independent
     kernel (dependent operands dense, shared operands verbatim) *)
  let widen_args prim (args : repr array) =
    let ok_pattern =
      match prim with
      | Primitive.Spmm _ | Primitive.Row_broadcast _ -> (
          match args with [| Shared _; Dep _ |] -> true | _ -> false)
      | Primitive.Dense_add _
      | Primitive.Dense_map
          { kind = Matrix_ir.Relu | Matrix_ir.Leaky_relu | Matrix_ir.Sigmoid;
            _ } ->
          Array.length args > 0
          && Array.for_all (function Dep _ -> true | _ -> false) args
      | _ -> false
    in
    if not ok_pattern then None
    else
      let wides =
        Array.map
          (function
            | Shared v -> Some v
            | Dep d -> Option.map (fun w -> D.Vdense w) (wide_of d))
          args
      in
      if Array.for_all Option.is_some wides then
        Some (Array.map Option.get wides)
      else None
  in
  let shared_steps = ref 0
  and widened_steps = ref 0
  and scattered_steps = ref 0 in
  Array.iter
    (fun (s : Plan.step) ->
      let args = Array.of_list (List.map resolve s.Plan.args) in
      let repr =
        if not dep_step.(s.Plan.idx) then begin
          incr shared_steps;
          let vals =
            Array.map
              (function Shared v -> v | Dep _ -> assert false)
              args
          in
          Shared (D.exec ctx s.Plan.prim graph vals)
        end
        else
          match
            if widenable s.Plan.prim then widen_args s.Plan.prim args
            else None
          with
          | Some wide_args -> (
              incr widened_steps;
              match D.exec ctx s.Plan.prim graph wide_args with
              | D.Vdense w -> Dep { wide = Some w; per = None }
              | v ->
                  err "widened step %s produced a non-dense %a"
                    (Primitive.name s.Plan.prim) D.pp_value v)
          | None ->
              incr scattered_steps;
              let per_args =
                Array.map
                  (function
                    | Shared v -> `S v
                    | Dep d -> `P (per_of d))
                  args
              in
              let outs =
                Array.init b (fun i ->
                    let vals =
                      Array.map
                        (function `S v -> v | `P a -> a.(i))
                        per_args
                    in
                    D.exec ctx s.Plan.prim graph vals)
              in
              Dep { wide = None; per = Some outs }
      in
      slots.(s.Plan.idx) <- Some repr)
    steps;
  let outputs =
    match resolve plan.Plan.output with
    | Shared v -> List.init b (fun _ -> v)
    | Dep d -> Array.to_list (per_of d)
  in
  ( outputs,
    { width = b;
      shared_steps = !shared_steps;
      widened_steps = !widened_steps;
      scattered_steps = !scattered_steps } )
