module Dense = Granii_tensor.Dense
module Csr = Granii_sparse.Csr
module Parallel = Granii_tensor.Parallel
module Workspace = Granii_tensor.Workspace
module Graph = Granii_graph.Graph
module Timer = Granii_hw.Timer
module Obs = Granii_obs.Obs
module Engine = Granii_core.Engine
module Executor = Granii_core.Executor
module Selector = Granii_core.Selector
module Featurizer = Granii_core.Featurizer
module Cost_oracle = Granii_core.Cost_oracle
module Locality = Granii_core.Locality
module Plan = Granii_core.Plan
module Dim = Granii_core.Dim
module Codegen = Granii_core.Codegen
module Mp = Granii_mp
module Layer = Granii_gnn.Layer

type config = {
  workers : int;
  queue_bound : int;
  batch_window : int;
  max_batch : int;
  plan_cache : int;
  batching : bool;
  threads : int;
  profile : Granii_hw.Hw_profile.t;
  iterations : int;
  param_seed : int;
  locality : Locality.config;
  calibration : Cost_oracle.calibration;
  slo_ms : float option;
}

let default_config =
  { workers = 0;
    queue_bound = 64;
    batch_window = 0;
    max_batch = 8;
    plan_cache = 32;
    batching = true;
    threads = 1;
    profile = Granii_hw.Hw_profile.cpu;
    iterations = 1;
    param_seed = 11;
    locality = Locality.default;
    calibration = Cost_oracle.Off;
    slo_ms = None }

let with_engine_axes (ec : Engine.config) cfg =
  { cfg with
    queue_bound = ec.Engine.queue_bound;
    batch_window = ec.Engine.batch_window;
    threads = ec.Engine.threads;
    locality = ec.Engine.locality;
    calibration = ec.Engine.calibration }

type reject = Queue_full of { tenant : string; bound : int } | Shutdown

let reject_to_string = function
  | Queue_full { tenant; bound } ->
      Printf.sprintf "queue full for tenant %s (bound %d)" tenant bound
  | Shutdown -> "server shutting down"

type response = { value : Executor.value; latency : float; width : int }

type ticket = { mutable result : response option }

type stats = {
  submitted : int;
  completed : int;
  rejected : int;
  batches : int;
  max_width : int;
  sum_width : int;
  widened_steps : int;
  plan_cache : Plan_cache.stats;
  slo_breaches : int;
  first_breach : float option;
}

type graph_entry = {
  graph : Graph.t;
  fp : string;
  mutable feats : Featurizer.t option;
}

type tenant = {
  tname : string;
  mutable queue : pending list;  (* arrival order *)
  mutable busy : bool;  (* a width-1 job currently uses this arena *)
  ws : Workspace.t;
  sketch : Obs.Sketch.t;  (* rolling latency quantiles, fixed memory *)
  tdrift : Obs.Drift.t;  (* Page–Hinkley over the tenant's p99 stream *)
}

and pending = {
  id : int;
  powner : tenant;
  gentry : graph_entry;
  model : string;
  k_in : int;
  k_out : int;
  features : Dense.t;
  t_submit : float;
  ticket : ticket;
}

type job = {
  mutable reqs : pending list;  (* id order *)
  mutable use_arena : bool;     (* width-1 job holding [powner]'s arena *)
}

type t = {
  cfg : config;
  obs : Obs.t;
  clock : unit -> float;
  oracle : Cost_oracle.t;
  pool : Parallel.t option;  (* manual-mode kernel pool *)
  pc : Plan_cache.t;
  graphs : (string, graph_entry) Hashtbl.t;
  models : (string, Mp.Lower.lowered * Codegen.t) Hashtbl.t;
  params : (string * int * int, Layer.params) Hashtbl.t;
  tenants : (string, tenant) Hashtbl.t;
  m : Mutex.t;
  work_cv : Condition.t;
  done_cv : Condition.t;
  mutable domains : unit Domain.t list;
  mutable next_id : int;
  mutable shutting : bool;
  mutable shut_done : bool;
  mutable submitted : int;
  mutable completed : int;
  mutable rejected : int;
  mutable batches : int;
  mutable max_width : int;
  mutable sum_width : int;
  mutable widened_steps : int;
  mutable slo_breaches : int;
  mutable first_breach : float option;  (* clock time of the first breach *)
  mutable oracle_name : string;  (* last plan-cache key component used *)
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* ---- job selection (lock held) ---- *)

let jkey (p : pending) = (p.gentry.fp, p.model, p.k_in, p.k_out)

let depth_gauge t (ten : tenant) =
  Obs.gauge t.obs
    ("serve.queue.depth." ^ ten.tname)
    (float_of_int (List.length ten.queue))

let remove_from_queue t (p : pending) =
  p.powner.queue <- List.filter (fun q -> q.id <> p.id) p.powner.queue;
  depth_gauge t p.powner

(* Coalesce queued requests compatible with [p0] — same graph, model and
   widths, across all tenants — in global arrival order. *)
let collect_compatible t (p0 : pending) ~room =
  let key = jkey p0 in
  let matching = ref [] in
  Hashtbl.iter
    (fun _ ten ->
      List.iter
        (fun p -> if jkey p = key then matching := p :: !matching)
        ten.queue)
    t.tenants;
  let sorted = List.sort (fun a b -> compare a.id b.id) !matching in
  let taken = List.filteri (fun i _ -> i < room) sorted in
  List.iter (remove_from_queue t) taken;
  taken

let pick t =
  let oldest = ref None in
  Hashtbl.iter
    (fun _ ten ->
      match ten.queue with
      | [] -> ()
      | p :: _ -> (
          match !oldest with
          | Some o when o.id < p.id -> ()
          | _ -> oldest := Some p))
    t.tenants;
  match !oldest with
  | None -> None
  | Some p0 ->
      let reqs =
        if t.cfg.batching && t.cfg.max_batch > 1 then
          collect_compatible t p0 ~room:t.cfg.max_batch
        else begin
          remove_from_queue t p0;
          [ p0 ]
        end
      in
      let use_arena =
        match reqs with
        | [ p ] when not p.powner.busy ->
            p.powner.busy <- true;
            true
        | _ -> false
      in
      Some { reqs; use_arena }

(* Late widening through the batch window: the job's requests are already
   off the queues, so only newly arrived (or previously incompatible-head)
   requests are added. *)
let collect_more t (j : job) =
  match j.reqs with
  | [] -> ()
  | p0 :: _ ->
      let room = t.cfg.max_batch - List.length j.reqs in
      if room > 0 then begin
        let extra = collect_compatible t p0 ~room in
        if extra <> [] then begin
          j.reqs <-
            List.sort (fun a b -> compare a.id b.id) (j.reqs @ extra);
          if j.use_arena then begin
            (match j.reqs with
            | p :: _ -> p.powner.busy <- false
            | [] -> ());
            j.use_arena <- false
          end
        end
      end

(* ---- plan and parameter resolution (lock held) ---- *)

let model_entry t name =
  let key = String.lowercase_ascii name in
  match Hashtbl.find_opt t.models key with
  | Some e -> e
  | None ->
      let low = Mp.Lower.lower (Mp.Mp_models.find key) in
      let compiled, _ =
        Granii_core.Granii.compile ~name:key
          ~degree_leaves:(Mp.Lower.degree_leaves low ~binned:false)
          low.Mp.Lower.ir
      in
      Hashtbl.replace t.models key (low, compiled);
      (low, compiled)

let params_for t (ge : graph_entry) ~model ~k_in ~k_out =
  let key = (String.lowercase_ascii model, k_in, k_out) in
  match Hashtbl.find_opt t.params key with
  | Some p -> p
  | None ->
      let low, _ = model_entry t model in
      let n = Graph.n_nodes ge.graph in
      let env = { Dim.n; nnz = Graph.n_edges ge.graph + n; k_in; k_out } in
      let p = Layer.init_params ~seed:t.cfg.param_seed ~env low in
      Hashtbl.replace t.params key p;
      p

let feats_of (ge : graph_entry) =
  match ge.feats with
  | Some f -> f
  | None ->
      let f = Featurizer.extract ge.graph in
      ge.feats <- Some f;
      f

(* Selection, amortized through the plan cache: one counting lookup per
   executor invocation. The configured layout axis (default unless the
   caller opted in — per-request graph reordering rarely amortizes,
   DESIGN.md §12) is part of the cache key, so engines that localize
   differently never share a plan. *)
let select_plan t (ge : graph_entry) ~model ~k_in ~k_out =
  let oname = Cost_oracle.name t.oracle in
  if oname <> t.oracle_name then begin
    (* an accepted calibration pass renamed the oracle; every cached plan
       keyed on the old name is now unreachable — record the invalidation *)
    Obs.count t.obs "serve.plan_cache.invalidated" 1;
    Obs.event t.obs Obs.Journal.Plan_cache_invalidate ~tag:oname
      ~v:(float_of_int (Cost_oracle.version t.oracle));
    t.oracle_name <- oname
  end;
  let key =
    Plan_cache.key_of ~graph_fp:ge.fp ~model ~k_in ~k_out ~hw:oname
      ~threads:t.cfg.threads ~locality:t.cfg.locality
  in
  let lc =
    match Plan_cache.find t.pc key with
    | Some lc -> lc
    | None ->
        let _, compiled = model_entry t model in
        let feats = feats_of ge in
        let n = Graph.n_nodes ge.graph in
        let env = { Dim.n; nnz = Graph.n_edges ge.graph + n; k_in; k_out } in
        let lc =
          Obs.span t.obs "serve.select" (fun () ->
              Selector.select_localized ~obs:t.obs ~oracle:t.oracle
                ~feats ~env ~iterations:t.cfg.iterations
                ~configs:[ t.cfg.locality ] compiled)
        in
        Plan_cache.add t.pc key lc;
        lc
  in
  lc.Selector.lchoice.Selector.candidate.Codegen.plan

let resolve t (j : job) =
  match j.reqs with
  | [] -> assert false
  | p :: _ ->
      let plan =
        select_plan t p.gentry ~model:p.model ~k_in:p.k_in ~k_out:p.k_out
      in
      let params =
        params_for t p.gentry ~model:p.model ~k_in:p.k_in ~k_out:p.k_out
      in
      (plan, params)

(* ---- execution (no lock unless manual mode) ---- *)

(* Arena-backed outputs are invalidated by the tenant's next run: deep-copy
   before the ticket completes. *)
let copy_value = function
  | Executor.Vdense d ->
      Executor.Vdense
        (Dense.of_flat ~rows:d.Dense.rows ~cols:d.Dense.cols
           (Array.copy d.Dense.data))
  | Executor.Vsparse s -> (
      match s.Csr.values with
      | None -> Executor.Vsparse s
      | Some v -> Executor.Vsparse (Csr.with_values s (Array.copy v)))
  | Executor.Vdiag d -> Executor.Vdiag (Array.copy d)

let execute ?pool ~locality (j : job) (plan, params) =
  match j.reqs with
  | [] -> assert false
  | [ p ] ->
      let bindings =
        Layer.bindings ~graph:p.gentry.graph ~h:p.features params
      in
      (* the width-1 path runs under the configured layout (arena + locality
         is legal; the cache axis is off here). The batch path below stays
         on the default layout: widening happens in the original id space,
         and layout is bitwise-transparent, so any plan is correct there. *)
      let cfg = { Engine.default_config with locality } in
      let engine =
        if j.use_arena then
          Engine.create_exn ?pool ~workspace:p.powner.ws cfg
        else Engine.create_exn ?pool cfg
      in
      let r =
        Executor.exec ~engine ~timing:Executor.Measure ~graph:p.gentry.graph
          ~bindings plan
      in
      let out =
        if j.use_arena then copy_value r.Executor.output
        else r.Executor.output
      in
      ([ out ], 0)
  | p0 :: _ as reqs ->
      let shared =
        List.filter
          (fun (name, _) -> name <> "H")
          (Layer.bindings ~graph:p0.gentry.graph ~h:p0.features params)
      in
      let outs, bstats =
        Batch.exec_batch ?pool ~graph:p0.gentry.graph ~bindings:shared
          ~input:"H"
          ~features:(List.map (fun p -> p.features) reqs)
          plan
      in
      (outs, bstats.Batch.widened_steps)

(* ---- completion (lock held) ---- *)

(* The serving half of the calibration loop: a width-1 job is one clean
   (predicted, measured) pair at plan granularity, mirroring the trainer's
   per-batch feed (same raw analytic prediction, same ["plan:<name>"]
   correction key). Batched jobs are skipped — widening changes the work
   the prediction models. *)
let feed_oracle t (j : job) (plan : Plan.t) dt =
  match j.reqs with
  | [ p ] when t.cfg.calibration <> Cost_oracle.Off && dt > 0. ->
      let prof =
        match Cost_oracle.profile t.oracle with
        | Some pr -> pr
        | None -> Granii_hw.Hw_profile.cpu
      in
      let n = Graph.n_nodes p.gentry.graph in
      let env =
        { Dim.n;
          nnz = Graph.n_edges p.gentry.graph + n;
          k_in = p.k_in;
          k_out = p.k_out }
      in
      let predicted =
        Cost_oracle.analytic_plan ~threads:t.cfg.threads prof ~env
          ~iterations:1 plan
      in
      Cost_oracle.observe t.oracle ~prim:("plan:" ^ plan.Plan.name)
        ~predicted ~measured:dt
  | _ -> ()

(* Per-tenant rolling quantile gauges plus the p99 drift feed, once per
   distinct tenant in the job. *)
let tenant_gauges t (ten : tenant) =
  (match t.obs.Obs.metrics with
  | None -> ()
  | Some m ->
      let labels = [ ("tenant", ten.tname) ] in
      Obs.Metrics.set_gauge_labeled m "serve.latency.p50" ~labels
        (Obs.Sketch.quantile ten.sketch 0.5);
      Obs.Metrics.set_gauge_labeled m "serve.latency.p95" ~labels
        (Obs.Sketch.quantile ten.sketch 0.95);
      Obs.Metrics.set_gauge_labeled m "serve.latency.p99" ~labels
        (Obs.Sketch.quantile ten.sketch 0.99));
  if Obs.Sketch.count ten.sketch >= 16 then begin
    let p99 = Obs.Sketch.quantile ten.sketch 0.99 in
    if Float.is_finite p99 && Obs.Drift.observe ten.tdrift p99 then begin
      Obs.count t.obs "serve.drift.fired" 1;
      Obs.event t.obs Obs.Journal.Drift ~tag:(Obs.Drift.name ten.tdrift)
        ~v:(Obs.Drift.last_stat ten.tdrift)
    end
  end

let fulfill t (j : job) (plan : Plan.t) outs widened dt =
  let now = t.clock () in
  let width = List.length j.reqs in
  List.iter2
    (fun p v ->
      let latency = now -. p.t_submit in
      p.ticket.result <- Some { value = v; latency; width };
      t.completed <- t.completed + 1;
      Obs.count t.obs "serve.requests.completed" 1;
      Obs.observe t.obs "serve.latency" latency;
      Obs.event t.obs Obs.Journal.Request ~tag:p.powner.tname ~v:latency;
      Obs.Sketch.add p.powner.sketch latency;
      match t.cfg.slo_ms with
      | Some ms when latency *. 1000. > ms ->
          t.slo_breaches <- t.slo_breaches + 1;
          if t.first_breach = None then t.first_breach <- Some now;
          Obs.count t.obs "serve.slo.breaches" 1;
          Obs.event t.obs Obs.Journal.Slo_breach ~tag:p.powner.tname
            ~v:latency
      | _ -> ())
    j.reqs outs;
  let seen = Hashtbl.create 4 in
  List.iter
    (fun p ->
      if not (Hashtbl.mem seen p.powner.tname) then begin
        Hashtbl.replace seen p.powner.tname ();
        tenant_gauges t p.powner
      end)
    j.reqs;
  t.batches <- t.batches + 1;
  t.sum_width <- t.sum_width + width;
  if width > t.max_width then t.max_width <- width;
  t.widened_steps <- t.widened_steps + widened;
  Obs.count t.obs "serve.batches" 1;
  Obs.gauge t.obs "serve.batch.width" (float_of_int width);
  Obs.event t.obs Obs.Journal.Batch ~tag:plan.Plan.name
    ~v:(float_of_int width);
  feed_oracle t j plan dt;
  if j.use_arena then (
    match j.reqs with
    | p :: _ -> p.powner.busy <- false
    | [] -> ());
  Condition.broadcast t.done_cv

(* ---- worker loop (threaded mode) ---- *)

let worker_loop t =
  let rec next () =
    Mutex.lock t.m;
    let job = ref (pick t) in
    while !job = None && not t.shutting do
      Condition.wait t.work_cv t.m;
      job := pick t
    done;
    match !job with
    | None -> Mutex.unlock t.m (* shutting down with empty queues *)
    | Some j ->
        let resolved =
          if
            t.cfg.batching && t.cfg.batch_window > 0
            && List.length j.reqs < t.cfg.max_batch
            && not t.shutting
          then begin
            (* hold the job open for late-arriving coalescible requests *)
            Mutex.unlock t.m;
            Unix.sleepf (float_of_int t.cfg.batch_window *. 1e-6);
            Mutex.lock t.m;
            collect_more t j;
            resolve t j
          end
          else resolve t j
        in
        Mutex.unlock t.m;
        (* workers run kernels sequentially: the shared domain pool is not
           reentrant across domains *)
        let et0 = t.clock () in
        let outs, widened = execute ~locality:t.cfg.locality j resolved in
        let dt = t.clock () -. et0 in
        Mutex.lock t.m;
        fulfill t j (fst resolved) outs widened dt;
        Mutex.unlock t.m;
        next ()
  in
  next ()

(* ---- public API ---- *)

let create ?(obs = Obs.disabled) ?(clock = Timer.wall) ?oracle cfg =
  if cfg.queue_bound < 1 then
    invalid_arg "Serve.create: queue_bound must be >= 1";
  (match cfg.slo_ms with
  | Some s when not (Float.is_finite s && s > 0.) ->
      invalid_arg "Serve.create: slo_ms must be > 0"
  | _ -> ());
  if cfg.max_batch < 1 then invalid_arg "Serve.create: max_batch must be >= 1";
  if cfg.threads < 1 then invalid_arg "Serve.create: threads must be >= 1";
  if cfg.workers < 0 then invalid_arg "Serve.create: workers must be >= 0";
  if cfg.batch_window < 0 then
    invalid_arg "Serve.create: batch_window must be >= 0";
  if cfg.plan_cache < 0 then
    invalid_arg "Serve.create: plan_cache must be >= 0";
  if cfg.iterations < 1 then
    invalid_arg "Serve.create: iterations must be >= 1";
  if not (Locality.legal cfg.locality) then
    invalid_arg
      (Printf.sprintf "Serve.create: illegal locality %s (%s)"
         (Locality.config_to_string cfg.locality)
         (Engine.error_to_string (Engine.Bsr_with_reorder cfg.locality)));
  let pool =
    if cfg.workers = 0 && cfg.threads > 1 then
      Some (Parallel.create ~threads:cfg.threads ())
    else None
  in
  let oracle =
    match oracle with
    | Some o -> o
    | None ->
        Cost_oracle.of_model ~calibration:cfg.calibration ~obs
          (Granii_core.Cost_model.analytic cfg.profile)
  in
  (* normalize, as the engine does for injected resources: the stored config
     reflects the oracle actually in use *)
  let cfg = { cfg with calibration = Cost_oracle.calibration oracle } in
  let t =
    { cfg;
      obs;
      clock;
      oracle;
      pool;
      pc = Plan_cache.create ~obs ~capacity:cfg.plan_cache ();
      graphs = Hashtbl.create 8;
      models = Hashtbl.create 8;
      params = Hashtbl.create 16;
      tenants = Hashtbl.create 8;
      m = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      domains = [];
      next_id = 0;
      shutting = false;
      shut_done = false;
      submitted = 0;
      completed = 0;
      rejected = 0;
      batches = 0;
      max_width = 0;
      sum_width = 0;
      widened_steps = 0;
      slo_breaches = 0;
      first_breach = None;
      oracle_name = Cost_oracle.name oracle }
  in
  t.domains <-
    List.init cfg.workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let register_graph t ~name graph =
  locked t (fun () ->
      if Hashtbl.mem t.graphs name then
        invalid_arg
          (Printf.sprintf "Serve.register_graph: %s already registered" name);
      Hashtbl.replace t.graphs name
        { graph; fp = Engine.graph_fingerprint graph; feats = None })

let tenant_of t name =
  match Hashtbl.find_opt t.tenants name with
  | Some ten -> ten
  | None ->
      let ten =
        { tname = name;
          queue = [];
          busy = false;
          ws = Workspace.create ();
          sketch = Obs.Sketch.create ();
          tdrift = Obs.Drift.create ~min_samples:32 ("serve.p99:" ^ name) }
      in
      Hashtbl.replace t.tenants name ten;
      ten

let submit t ~tenant ~graph ~model ~k_out ~features =
  if k_out < 1 then invalid_arg "Serve.submit: k_out must be >= 1";
  (try ignore (Mp.Mp_models.find model)
   with Not_found ->
     invalid_arg (Printf.sprintf "Serve.submit: unknown model %s" model));
  locked t (fun () ->
      let ge =
        match Hashtbl.find_opt t.graphs graph with
        | Some ge -> ge
        | None ->
            invalid_arg
              (Printf.sprintf "Serve.submit: unregistered graph %s" graph)
      in
      if features.Dense.rows <> Graph.n_nodes ge.graph then
        invalid_arg
          (Printf.sprintf
             "Serve.submit: feature rows %d do not match graph %s (%d nodes)"
             features.Dense.rows graph (Graph.n_nodes ge.graph));
      if t.shutting then begin
        t.rejected <- t.rejected + 1;
        Obs.count t.obs "serve.requests.rejected" 1;
        Error Shutdown
      end
      else begin
        let ten = tenant_of t tenant in
        if List.length ten.queue >= t.cfg.queue_bound then begin
          t.rejected <- t.rejected + 1;
          Obs.count t.obs "serve.requests.rejected" 1;
          Obs.event t.obs Obs.Journal.Backpressure ~tag:tenant
            ~v:(float_of_int t.cfg.queue_bound);
          Error (Queue_full { tenant; bound = t.cfg.queue_bound })
        end
        else begin
          let id = t.next_id in
          t.next_id <- id + 1;
          let p =
            { id;
              powner = ten;
              gentry = ge;
              model;
              k_in = features.Dense.cols;
              k_out;
              features;
              t_submit = t.clock ();
              ticket = { result = None } }
          in
          ten.queue <- ten.queue @ [ p ];
          t.submitted <- t.submitted + 1;
          Obs.count t.obs "serve.requests.submitted" 1;
          depth_gauge t ten;
          Condition.signal t.work_cv;
          Ok p.ticket
        end
      end)

let poll t (ticket : ticket) = locked t (fun () -> ticket.result)

let pump t =
  if t.cfg.workers > 0 then
    invalid_arg "Serve.pump: manual mode only (workers = 0)";
  locked t (fun () ->
      match pick t with
      | None -> false
      | Some j ->
          let resolved = resolve t j in
          let et0 = t.clock () in
          let outs, widened =
            Obs.span t.obs "serve.exec" (fun () ->
                execute ?pool:t.pool ~locality:t.cfg.locality j resolved)
          in
          let dt = t.clock () -. et0 in
          fulfill t j (fst resolved) outs widened dt;
          true)

let drain t = while pump t do () done

let await t (ticket : ticket) =
  if t.cfg.workers = 0 then begin
    let rec go () =
      match poll t ticket with
      | Some r -> r
      | None ->
          if pump t then go ()
          else
            invalid_arg
              "Serve.await: pending ticket but every queue is empty"
    in
    go ()
  end
  else
    locked t (fun () ->
        while ticket.result = None do
          Condition.wait t.done_cv t.m
        done;
        Option.get ticket.result)

let queue_depth t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tenants name with
      | Some ten -> List.length ten.queue
      | None -> 0)

let shutdown t =
  let was_done =
    locked t (fun () ->
        if t.shut_done then true
        else begin
          t.shutting <- true;
          Condition.broadcast t.work_cv;
          false
        end)
  in
  if not was_done then begin
    if t.cfg.workers > 0 then begin
      List.iter Domain.join t.domains;
      t.domains <- []
    end
    else drain t;
    locked t (fun () -> t.shut_done <- true);
    Option.iter Parallel.shutdown t.pool
  end

let workers t = t.cfg.workers

let graph_nodes t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.graphs name with
      | Some ge -> Graph.n_nodes ge.graph
      | None ->
          invalid_arg
            (Printf.sprintf "Serve.graph_nodes: unregistered graph %s" name))

let stats t =
  locked t (fun () ->
      { submitted = t.submitted;
        completed = t.completed;
        rejected = t.rejected;
        batches = t.batches;
        max_width = t.max_width;
        sum_width = t.sum_width;
        widened_steps = t.widened_steps;
        plan_cache = Plan_cache.stats t.pc;
        slo_breaches = t.slo_breaches;
        first_breach = t.first_breach })

let obs t = t.obs

let serve_oracle t = t.oracle

let tenant_latency t name q =
  locked t (fun () ->
      match Hashtbl.find_opt t.tenants name with
      | Some ten -> Obs.Sketch.quantile ten.sketch q
      | None -> Float.nan)

let latency_sketch t =
  locked t (fun () ->
      Obs.Sketch.merge_all
        (Hashtbl.fold (fun _ ten acc -> ten.sketch :: acc) t.tenants []))

(* The single-threaded reference path: same parameters, same (deterministic)
   selection, a plain sequential engine, no queues and no counter traffic. *)
let oracle t ~graph ~model ~k_out ~features =
  let ge, plan, params =
    locked t (fun () ->
        let ge =
          match Hashtbl.find_opt t.graphs graph with
          | Some ge -> ge
          | None ->
              invalid_arg
                (Printf.sprintf "Serve.oracle: unregistered graph %s" graph)
        in
        let k_in = features.Dense.cols in
        let _, compiled = model_entry t model in
        let feats = feats_of ge in
        let n = Graph.n_nodes ge.graph in
        let env = { Dim.n; nnz = Graph.n_edges ge.graph + n; k_in; k_out } in
        let lc =
          Selector.select_localized ~oracle:t.oracle ~feats ~env
            ~iterations:t.cfg.iterations ~configs:[ t.cfg.locality ]
            compiled
        in
        ( ge,
          lc.Selector.lchoice.Selector.candidate.Codegen.plan,
          params_for t ge ~model ~k_in ~k_out ))
  in
  let bindings = Layer.bindings ~graph:ge.graph ~h:features params in
  let r =
    Executor.exec
      ~engine:(Engine.default ())
      ~timing:Executor.Measure ~graph:ge.graph ~bindings plan
  in
  r.Executor.output
