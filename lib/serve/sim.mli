(** Closed-loop load simulation against a {!Serve.t} — the engine behind
    [granii serve-sim] and the [@bench-serve] section.

    [clients] logical clients each keep exactly one request outstanding
    (closed loop: offered load rises with the client count and is throttled
    by server backpressure, never unbounded). Every client owns a fixed
    feature matrix (seeded per client) and submits under tenant
    [t<i mod tenants>]; a [Queue_full] rejection is retried on the next
    loop pass, so all [requests] completions are eventually collected. In
    manual mode ([workers = 0]) the loop pumps the scheduler itself;
    in threaded mode it only submits and polls. *)

type load = {
  clients : int;
  requests : int;   (** total completions to collect *)
  tenants : int;
  graph : string;   (** registered graph name *)
  model : string;
  k_in : int;
  k_out : int;
  seed : int;
}

val default_load : load
(** [clients=4], [requests=64], [tenants=2], graph ["g"], model ["gcn"],
    [k_in=16], [k_out=8], [seed=7]. *)

type result = {
  wall : float;            (** seconds for the whole run *)
  throughput : float;      (** completions per second *)
  p50 : float;             (** median latency, seconds *)
  p99 : float;
  mean_latency : float;
  mean_width : float;      (** mean executor-invocation batch width *)
  retries : int;           (** submissions rejected by backpressure *)
  stats : Serve.stats;
  breach_rate : float;
      (** SLO breaches per completion ([0.] without an [slo_ms] target) *)
  first_breach_s : float option;
      (** seconds from run start to the first SLO breach — meaningful when
          the server runs on the default wall clock, which the simulator's
          own timestamps share *)
}

val run : Serve.t -> load -> result
(** Raises [Invalid_argument] on a non-positive [clients]/[requests]/
    [tenants] or an unregistered graph. *)

val percentile : float list -> float -> float
(** [percentile xs p] for [p] in [0, 100] (nearest-rank); [nan] on []. *)
