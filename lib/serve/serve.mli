(** Multi-tenant inference serving over the GRANII engine (DESIGN.md §12).

    A server owns the shared model/parameter registries, a {!Plan_cache}
    (selection once per distinct input shape), and per-tenant bounded
    admission queues. Requests name a registered graph, a model and a
    feature matrix; the scheduler coalesces compatible queued requests —
    same graph, model and embedding widths, {e across} tenants — into one
    {!Batch.exec_batch} invocation and scatters the results back to each
    request's ticket.

    {2 Scheduler modes}

    - [workers = 0] ({b manual mode}): nothing runs until the caller pumps.
      {!submit} only enqueues; {!pump} synchronously picks, batches and
      executes one job; {!drain} pumps until every queue is empty. With an
      injected [?clock] this makes request interleavings fully scripted —
      the deterministic concurrency harness of [test/test_serve.ml].
    - [workers > 0] ({b threaded mode}): that many OCaml 5 domains run the
      same pick/execute loop concurrently, coordinated by one mutex and two
      condition variables. Kernels run sequentially inside each worker
      (the shared domain pool is not reentrant across domains); concurrency
      comes from overlapping independent jobs.

    {2 Admission control and backpressure}

    Each tenant has a bounded FIFO queue ([queue_bound] requests). A
    {!submit} beyond the bound returns [Error (Queue_full _)] — typed
    backpressure, never an exception; after {!shutdown} began it returns
    [Error Shutdown]. Everything admitted before shutdown is executed and
    answered (graceful drain). Malformed requests (unknown graph, feature
    shape mismatch) raise [Invalid_argument]: they are caller bugs, not
    load conditions.

    {2 Memory}

    Each tenant owns a private workspace arena, used only for single-request
    (width-1) executions and never shared across tenants; response values
    are copied out of the arena before the ticket completes, so a response
    is never invalidated by a later request. Batched executions allocate
    normally (no arena). Serving defaults to the default graph layout —
    per-request reordering rarely amortizes (DESIGN.md §12) — but a config
    may opt width-1 execution into a locality axis.

    {2 Telemetry}

    With a live sink: [serve.requests.submitted/completed/rejected],
    [serve.batches], [serve.batch.width] (gauge),
    [serve.plan_cache.hits/misses/evictions], [serve.queue.depth.<tenant>]
    (gauge) and a [serve.latency] log-bucketed histogram, plus
    [serve.select] / [serve.exec] spans (spans on the scheduler's
    orchestrating path only). All sink access is serialized under the
    scheduler lock.

    {2 Production observability} (DESIGN.md §16)

    Each tenant additionally carries a fixed-memory streaming quantile
    sketch ({!Granii_obs.Obs.Sketch}) of its completion latencies, exported
    as [serve.latency.p50/p95/p99] labeled gauges
    ([{tenant="<name>"}]), and a Page–Hinkley drift detector
    ({!Granii_obs.Obs.Drift}) over its rolling p99 — a sustained latency
    regression fires a [serve.drift.fired] counter and a journal [drift]
    event. When the sink has a journal, the server records [request],
    [batch], [backpressure], [slo_breach] and [plan_cache_invalidate]
    events (plan-cache hit/miss events come from {!Plan_cache} itself).
    An [slo_ms] target turns breach accounting on: per-request latency
    above the target bumps [serve.slo.breaches] and the {!stats} breach
    fields. A width-1 job also feeds the oracle one plan-level
    (predicted, measured) pair — the serving half of the calibration loop,
    mirroring the trainer's per-batch feed — so a calibrating server
    recalibrates (and, on drift, recalibrates {e out of cadence}) from its
    own live traffic. *)

type config = {
  workers : int;       (** worker domains; [0] = manual (pump-driven) mode *)
  queue_bound : int;   (** per-tenant admission-queue capacity, >= 1 *)
  batch_window : int;
      (** microseconds a threaded worker holds a sub-[max_batch] job open
          for late-arriving coalescible requests; [0] (and manual mode)
          batches only what is already queued *)
  max_batch : int;     (** widest coalesced batch, >= 1 *)
  plan_cache : int;    (** {!Plan_cache} capacity; [0] disables it *)
  batching : bool;     (** [false]: every job has width 1 (ablation arm) *)
  threads : int;
      (** domain-pool width for manual-mode kernel execution (threaded
          workers always run kernels sequentially); also part of the plan
          cache key — selection is thread-count-aware *)
  profile : Granii_hw.Hw_profile.t;
      (** hardware profile the selection cost model targets *)
  iterations : int;
      (** selection horizon: serving is single-shot inference, so the
          default [1] charges setup steps at full price *)
  param_seed : int;
      (** server-side parameters are Glorot-initialized per
          (model, K_in, K_out) from this seed and shared by every tenant —
          batches may span tenants because weights are server state *)
  locality : Granii_core.Locality.config;
      (** layout axis for selection and width-1 execution; part of the plan
          cache key, so engines that localize differently never share a
          plan. Default {!Granii_core.Locality.default} — per-request
          reordering rarely amortizes (DESIGN.md §12). Batched jobs always
          execute under the default layout (widening happens in the
          original id space; layout is bitwise-transparent, so any cached
          plan is correct there). *)
  calibration : Granii_core.Cost_oracle.calibration;
      (** calibration policy of the server's {!Granii_core.Cost_oracle}
          (default {!Granii_core.Cost_oracle.Off}). The plan cache is keyed
          on {!Granii_core.Cost_oracle.name}, which changes on every
          accepted calibration pass, so recalibrated oracles never serve a
          stale plan. *)
  slo_ms : float option;
      (** per-request latency objective in milliseconds; [Some ms] counts
          every completion slower than [ms] as a breach ([serve.slo.breaches]
          counter, [slo_breach] journal events, the {!stats} breach fields).
          [None] (the default) disables breach accounting. Must be positive
          and finite. *)
}

val default_config : config
(** [workers=0], [queue_bound=64], [batch_window=0], [max_batch=8],
    [plan_cache=32], [batching=true], [threads=1], host-CPU profile,
    [iterations=1], [param_seed=11], default locality, calibration off,
    no SLO. *)

val with_engine_axes : Granii_core.Engine.config -> config -> config
(** Copy the serving axes an {!Granii_core.Engine.config} carries
    ([queue_bound], [batch_window], [threads], [locality], [calibration])
    into a serving config — the bridge from the CLI's [--engine] spec. *)

type reject =
  | Queue_full of { tenant : string; bound : int }
  | Shutdown

val reject_to_string : reject -> string

type response = {
  value : Granii_core.Executor.value;  (** the plan output for this request *)
  latency : float;  (** seconds from {!submit} to completion *)
  width : int;      (** how many requests shared the executor invocation *)
}

type ticket
(** Handle to an admitted request; completed at most once. *)

type stats = {
  submitted : int;
  completed : int;
  rejected : int;
  batches : int;         (** executor invocations *)
  max_width : int;
  sum_width : int;       (** [sum_width / batches] = mean batch width *)
  widened_steps : int;   (** plan steps executed once over widened operands *)
  plan_cache : Plan_cache.stats;
  slo_breaches : int;    (** completions slower than [slo_ms]; [0] without
                             an SLO *)
  first_breach : float option;
      (** clock timestamp of the first breach (the server's [clock], the
          same scale as request submission times) *)
}

type t

val create :
  ?obs:Granii_obs.Obs.t -> ?clock:(unit -> float) ->
  ?oracle:Granii_core.Cost_oracle.t -> config -> t
(** [clock] (default {!Granii_hw.Timer.wall}) timestamps submissions and
    completions — inject a manual clock for scripted-latency tests.
    [oracle] injects the server's cost oracle (e.g. one with a custom drift
    detector); by default the server builds one over the analytic model of
    [cfg.profile] with [cfg.calibration]. With an injection the stored
    config's [calibration] is normalized to the oracle's actual policy.
    Raises [Invalid_argument] on a non-positive
    [queue_bound]/[max_batch]/[threads], negative
    [workers]/[batch_window]/[plan_cache], [iterations < 1], a non-positive
    [slo_ms] or an illegal [locality] (bsr with a non-identity ordering —
    see {!Granii_core.Locality.legal}). *)

val register_graph : t -> name:string -> Granii_graph.Graph.t -> unit
(** Graphs are server state, named at registration. Re-registering a name
    raises [Invalid_argument]. *)

val submit :
  t -> tenant:string -> graph:string -> model:string -> k_out:int ->
  features:Granii_tensor.Dense.t -> (ticket, reject) result
(** Enqueue one inference request ([K_in] is the feature width). The tenant
    is created on first use. In threaded mode execution starts immediately;
    in manual mode nothing happens until {!pump}/{!drain}. Raises
    [Invalid_argument] on an unregistered graph, unknown model, feature row
    count not matching the graph, or [k_out < 1]. *)

val poll : t -> ticket -> response option
(** Non-blocking completion check. *)

val await : t -> ticket -> response
(** Manual mode: pumps until the ticket completes. Threaded mode: blocks on
    the completion condition. *)

val pump : t -> bool
(** Manual mode only: pick the oldest queued request, coalesce its
    compatible peers (up to [max_batch], across tenants), execute, fulfill.
    Returns [false] when every queue was empty. Raises [Invalid_argument]
    in threaded mode. *)

val drain : t -> unit
(** {!pump} until empty (manual mode only). *)

val queue_depth : t -> string -> int
(** Currently queued requests of a tenant ([0] for an unknown tenant). *)

val shutdown : t -> unit
(** Graceful drain: stop admitting ([submit] returns [Error Shutdown]),
    execute everything already admitted, join the workers (threaded mode),
    release the domain pool. Idempotent. *)

val workers : t -> int
(** The configured worker-domain count ([0] = manual mode). *)

val graph_nodes : t -> string -> int
(** Node count of a registered graph — the feature row count a client must
    provide. Raises [Invalid_argument] on an unregistered name. *)

val stats : t -> stats

val obs : t -> Granii_obs.Obs.t

val serve_oracle : t -> Granii_core.Cost_oracle.t
(** The server's cost-prediction layer (injected or built at {!create}). *)

val tenant_latency : t -> string -> float -> float
(** [tenant_latency t name q] — the [q]-quantile (in [0,1]) of a tenant's
    completion-latency sketch, in seconds; [nan] for an unknown tenant or
    one with no completions yet. *)

val latency_sketch : t -> Granii_obs.Obs.Sketch.t
(** Merge of every tenant's latency sketch — the server-wide latency
    distribution (see {!Granii_obs.Obs.Sketch.merge_all}). *)

val oracle :
  t -> graph:string -> model:string -> k_out:int ->
  features:Granii_tensor.Dense.t -> Granii_core.Executor.value
(** The single-threaded reference: run this one request synchronously
    through {!Granii_core.Executor.exec} on a default engine with the
    server's own parameters and selection (bypassing queues, batching and
    the plan cache's counters). Differential tests compare every served
    response against this. *)
