module Dense = Granii_tensor.Dense

type load = {
  clients : int;
  requests : int;
  tenants : int;
  graph : string;
  model : string;
  k_in : int;
  k_out : int;
  seed : int;
}

let default_load =
  { clients = 4; requests = 64; tenants = 2; graph = "g"; model = "gcn";
    k_in = 16; k_out = 8; seed = 7 }

type result = {
  wall : float;
  throughput : float;
  p50 : float;
  p99 : float;
  mean_latency : float;
  mean_width : float;
  retries : int;
  stats : Serve.stats;
  breach_rate : float;
  first_breach_s : float option;
}

let percentile xs p =
  match xs with
  | [] -> nan
  | _ ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
      a.(max 0 (min (n - 1) (rank - 1)))

let run server load =
  if load.clients < 1 then invalid_arg "Sim.run: clients must be >= 1";
  if load.requests < 1 then invalid_arg "Sim.run: requests must be >= 1";
  if load.tenants < 1 then invalid_arg "Sim.run: tenants must be >= 1";
  let rows = Serve.graph_nodes server load.graph in
  let feats =
    Array.init load.clients (fun c ->
        Dense.random ~seed:(load.seed + c) rows load.k_in)
  in
  let tenant_of c = Printf.sprintf "t%d" (c mod load.tenants) in
  (* closed loop: each client keeps one request in flight *)
  let outstanding : (Serve.ticket * float) option array =
    Array.make load.clients None
  in
  let issued = ref 0 in
  let completed = ref 0 in
  let retries = ref 0 in
  let latencies = ref [] in
  let manual = Serve.workers server = 0 in
  let t0 = Granii_hw.Timer.wall () in
  while !completed < load.requests do
    let progressed = ref false in
    for c = 0 to load.clients - 1 do
      match outstanding.(c) with
      | Some (ticket, _) -> (
          match Serve.poll server ticket with
          | Some resp ->
              outstanding.(c) <- None;
              incr completed;
              latencies := resp.Serve.latency :: !latencies;
              progressed := true
          | None -> ())
      | None ->
          if !issued < load.requests then (
            match
              Serve.submit server ~tenant:(tenant_of c) ~graph:load.graph
                ~model:load.model ~k_out:load.k_out ~features:feats.(c)
            with
            | Ok ticket ->
                incr issued;
                outstanding.(c) <- Some (ticket, Granii_hw.Timer.wall ());
                progressed := true
            | Error (Serve.Queue_full _) -> incr retries
            | Error Serve.Shutdown ->
                invalid_arg "Sim.run: server shut down mid-run")
    done;
    if manual then ignore (Serve.pump server : bool)
    else if not !progressed then Unix.sleepf 50e-6
  done;
  let wall = Granii_hw.Timer.wall () -. t0 in
  let stats = Serve.stats server in
  let lat = !latencies in
  let mean_latency =
    List.fold_left ( +. ) 0. lat /. float_of_int (List.length lat)
  in
  let mean_width =
    if stats.Serve.batches = 0 then 0.
    else float_of_int stats.Serve.sum_width /. float_of_int stats.Serve.batches
  in
  let breach_rate =
    if stats.Serve.completed = 0 then 0.
    else
      float_of_int stats.Serve.slo_breaches
      /. float_of_int stats.Serve.completed
  in
  { wall;
    throughput = float_of_int !completed /. wall;
    p50 = percentile lat 50.;
    p99 = percentile lat 99.;
    mean_latency;
    mean_width;
    retries = !retries;
    stats;
    breach_rate;
    first_breach_s = Option.map (fun ts -> ts -. t0) stats.Serve.first_breach }
