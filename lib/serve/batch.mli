(** Batched plan execution: one dispatch-loop invocation for N requests.

    All requests in a batch execute the {e same} plan on the {e same} graph
    with the {e same} shared bindings (weights, adjacency, constants); only
    the designated input leaf (the feature matrix ["H"]) differs per
    request. The batch executor classifies each plan step once:

    - {b shared} — does not transitively depend on the input leaf
      (setup/precompute steps, weight-only algebra): executed {e once} for
      the whole batch instead of once per request;
    - {b widened} — depends on the input and is column-independent with
      exactly its dense operands per-request (SpMM, row-broadcast,
      elementwise maps, dense addition): the per-request operands are
      concatenated along the feature dimension and the kernel runs {e once}
      over the wide matrix — one SpMM over an [n x (B*k)] RHS instead of
      [B] SpMMs over [n x k];
    - {b scattered} — everything else (GEMM against a shared weight,
      attention scoring, softmax): executed per request on per-request
      slices.

    {2 The batching legality rule}

    A step may be widened only when (a) every input-dependent operand is a
    per-request dense matrix of identical shape across the batch, (b) every
    other operand is shared verbatim, and (c) the kernel computes each
    output column from the same column of the dependent operand(s) only —
    true for SpMM (per-output-element accumulation over a row's nonzeros,
    column-independent by construction, see [lib/sparse/spmm.ml]),
    row-broadcast, elementwise maps (relu/leaky-relu/sigmoid) and
    elementwise dense addition; false for GEMM (contraction mixes columns),
    column-broadcast (the scaling vector is indexed by column), and
    row-softmax (normalizes across columns). Consequently batched execution
    is {e bitwise identical} to executing the plan per request sequentially
    — the differential tests in [test/test_serve.ml] pin exactly that.

    Runs under the default graph layout with no workspace arena and no
    subtree cache (the serving runtime's execution restriction, DESIGN.md
    §12); the optional pool is the same bitwise-transparent multicore
    engine the sequential executor uses. *)

type stats = {
  width : int;           (** requests coalesced into this invocation *)
  shared_steps : int;    (** steps executed once for the whole batch *)
  widened_steps : int;   (** steps executed once over widened operands *)
  scattered_steps : int; (** steps executed once per request *)
}

val exec_batch :
  ?pool:Granii_tensor.Parallel.t ->
  graph:Granii_graph.Graph.t ->
  bindings:(string * Granii_core.Executor.value) list ->
  input:string ->
  features:Granii_tensor.Dense.t list ->
  Granii_core.Plan.t ->
  Granii_core.Executor.value list * stats
(** [exec_batch ~graph ~bindings ~input ~features plan] executes [plan]
    once per feature matrix and returns the outputs in request order.
    [bindings] must bind every plan input except [input]; every feature
    matrix must have the graph's row count and equal width. Raises
    [Invalid_argument] on an empty batch or mismatched feature shapes, and
    {!Granii_core.Executor.Execution_error} on unbound inputs. *)
