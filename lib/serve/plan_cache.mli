(** Re-export of {!Granii_core.Plan_cache} (the cache moved to [lib/core]
    so the serving runtime and {!Granii_gnn.Trainer.train_minibatch} share
    one keying policy — see that module for semantics). *)

include module type of struct
  include Granii_core.Plan_cache
end
