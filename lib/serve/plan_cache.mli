(** The serving plan cache: selection runs once per distinct input shape.

    GRANII's online stage ({!Granii_core.Selector.select_localized}) is the
    per-input overhead the paper reports; at serving scale it must be
    amortized across requests, not repeated per call. The cache maps a
    {!key} — everything selection's answer depends on — to the
    {!Granii_core.Selector.localized_choice} it produced, so a stream of
    requests against the same (graph, model, K_in, K_out, hardware) pays
    selection exactly once.

    Eviction is LRU over a fixed capacity; [capacity = 0] disables the
    cache entirely ({!find} always misses, {!add} is a no-op), which is the
    ablation arm of the serving bench. Hit/miss/eviction counts go to the
    optional metrics sink as [serve.plan_cache.hits] / [.misses] /
    [.evictions].

    Not domain-safe: the serving runtime serializes access under its
    scheduler lock. *)

type key = {
  graph_fp : string;  (** {!Granii_core.Engine.graph_fingerprint} *)
  model : string;
  k_in : int;
  k_out : int;
  hw : string;        (** {!Granii_hw.Hw_profile.t} name *)
  threads : int;      (** selection is thread-count-aware *)
  layout : string;
      (** {!Granii_core.Locality.config_to_string} of the engine's locality
          axis — two engine configs that localize differently (ordering or
          sparse format) rank candidates differently, so they must never
          share a plan *)
}

type stats = { hits : int; misses : int; evictions : int }

type t

val create : ?obs:Granii_obs.Obs.t -> capacity:int -> unit -> t
(** Raises [Invalid_argument] when [capacity < 0]. *)

val capacity : t -> int

val length : t -> int

val find : t -> key -> Granii_core.Selector.localized_choice option
(** Counting lookup: every call is a hit or a miss. *)

val peek : t -> key -> Granii_core.Selector.localized_choice option
(** Non-counting lookup (diagnostics and oracle paths). *)

val add : t -> key -> Granii_core.Selector.localized_choice -> unit
(** Insert, evicting the least-recently-used entry when full. Replacing an
    existing key is not an eviction. No-op at capacity 0. *)

val stats : t -> stats
