(* The continuous-observability layer (DESIGN.md §16): journal ring
   semantics (wrap-around accounting, concurrent multi-domain writers, the
   JSONL drain schema), P² sketch accuracy against exact quantiles on known
   distributions, drift-detector firing and silence, drift-triggered
   out-of-cadence oracle calibration, the full serving causal chain —
   drift -> accepted calibration -> version bump -> plan-cache
   invalidation — read back from one drained journal, and the differential
   proving an enabled journal never changes executor outputs. *)

open Granii_core
open Test_util
module Obs = Granii_obs.Obs
module Journal = Obs.Journal
module Sketch = Obs.Sketch
module Drift = Obs.Drift
module Metrics = Obs.Metrics
module Prng = Granii_tensor.Prng
module Dense = Granii_tensor.Dense
module G = Granii_graph
module Mp = Granii_mp
module Gnn = Granii_gnn
module Serve = Granii_serve.Serve

(* ---- the journal ring ---- *)

let test_journal_wraparound () =
  let j = Journal.create ~capacity:16 () in
  check_int "configured capacity" 16 (Journal.capacity j);
  for i = 0 to 39 do
    Journal.record j Journal.Mark ~tag:"m" ~v:(float_of_int i)
  done;
  check_int "every record counted" 40 (Journal.total j);
  check_int "overwritten records counted as dropped" 24 (Journal.dropped j);
  let es = Journal.entries j in
  check_int "the ring holds exactly its capacity" 16 (List.length es);
  (* survivors are the newest 16, sequence numbers contiguous — the drain
     shows exactly which records were lost *)
  List.iteri
    (fun i e ->
      check_int "monotonic contiguous sequence numbers" (24 + i)
        e.Journal.e_seq;
      check_float "payload rides along" ~eps:0.
        (float_of_int (24 + i))
        e.Journal.e_v;
      check_true "kind survives the ring" (e.Journal.e_kind = Journal.Mark))
    es;
  (match Journal.kind_counts j with
  | [ ("mark", 16) ] -> ()
  | l ->
      Alcotest.fail
        (Printf.sprintf "kind_counts: expected 16 marks, got %d families"
           (List.length l)));
  (* the drain format: one RFC 8259 object per line carrying the schema *)
  String.split_on_char '\n' (Journal.to_jsonl j)
  |> List.iter (fun line ->
         if String.trim line <> "" then
           match Obs.Json.parse line with
           | Error e -> Alcotest.fail ("journal line not JSON: " ^ e)
           | Ok v ->
               List.iter
                 (fun f ->
                   if Obs.Json.member f v = None then
                     Alcotest.fail ("journal line missing field " ^ f))
                 [ "seq"; "domain"; "t"; "kind"; "tag"; "v" ])

let test_journal_multidomain () =
  let j = Journal.create ~capacity:256 () in
  let per = 100 in
  let work () =
    for i = 0 to per - 1 do
      Journal.record j Journal.Step ~tag:"d" ~v:(float_of_int i)
    done
  in
  let ds = List.init 3 (fun _ -> Domain.spawn work) in
  work () (* the main domain writes concurrently with the spawned three *);
  List.iter Domain.join ds;
  check_int "no event lost below capacity" (4 * per) (Journal.total j);
  check_int "nothing dropped below capacity" 0 (Journal.dropped j);
  let es = Journal.entries j in
  check_int "every record drained" (4 * per) (List.length es);
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let prev =
        match Hashtbl.find_opt tbl e.Journal.e_domain with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace tbl e.Journal.e_domain (e.Journal.e_seq :: prev))
    es;
  check_int "four writer domains, one ring each" 4 (Hashtbl.length tbl);
  Hashtbl.iter
    (fun _ seqs ->
      check_true "per-domain sequences are 0..n-1 with no gaps"
        (List.sort compare seqs = List.init per (fun i -> i)))
    tbl

(* ---- P² quantile sketches ---- *)

(* Nearest-rank exact quantile over the full sample. *)
let exact_quantile xs q =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  let i = int_of_float (ceil (q *. float_of_int n)) - 1 in
  a.(max 0 (min (n - 1) i))

let test_sketch_exact_small () =
  let s = Sketch.create () in
  check_true "empty sketch reports nan" (Float.is_nan (Sketch.quantile s 0.5));
  List.iter (Sketch.add s) [ 3.; 1.; 2. ];
  check_int "count" 3 (Sketch.count s);
  check_float "exact below five samples" ~eps:1e-12 2. (Sketch.quantile s 0.5);
  check_float "minimum" ~eps:0. 1. (Sketch.minimum s);
  check_float "maximum" ~eps:0. 3. (Sketch.maximum s);
  Sketch.add s nan (* ignored *);
  check_int "non-finite samples are ignored" 3 (Sketch.count s)

(* The mli pins no worst-case bound; these tolerances are the documented
   empirical envelope (DESIGN.md §16) on two shapes — flat and heavy-
   tailed — with a deterministic stream, so they are regression pins, not
   statistical hopes. *)
let test_sketch_accuracy () =
  let n = 4000 in
  let rng = Prng.create 42 in
  let run dist rel_tol quantiles =
    let s = Sketch.create () in
    let samples = ref [] in
    for _ = 1 to n do
      let x = dist rng in
      samples := x :: !samples;
      Sketch.add s x
    done;
    check_int "all samples counted" n (Sketch.count s);
    List.iter
      (fun q ->
        let est = Sketch.quantile s q and exact = exact_quantile !samples q in
        let rel = Float.abs (est -. exact) /. Float.max exact 1e-9 in
        if rel > rel_tol then
          Alcotest.fail
            (Printf.sprintf "q=%.2f: sketch %.4f vs exact %.4f (%.1f%% off)" q
               est exact (100. *. rel)))
      quantiles
  in
  (* uniform [1, 2): smooth and flat, the friendly case *)
  run (fun rng -> Prng.uniform rng 1. 2.) 0.05 [ 0.5; 0.9; 0.95; 0.99 ];
  (* exponential: a heavy right tail, the serving-latency shape *)
  run
    (fun rng -> -.log (1. -. Prng.uniform rng 0. 0.999999))
    0.15 [ 0.5; 0.9; 0.95; 0.99 ]

let test_sketch_merge () =
  let rng = Prng.create 7 in
  let a = Sketch.create () and b = Sketch.create () in
  for _ = 1 to 1000 do
    Sketch.add a (Prng.uniform rng 0. 1.);
    Sketch.add b (Prng.uniform rng 1. 2.)
  done;
  let m = Sketch.merge a b in
  check_true "inputs are not mutated"
    (Sketch.count a = 1000 && Sketch.count b = 1000);
  check_true "merged median sits between the two populations"
    (let p50 = Sketch.quantile m 0.5 in
     p50 > 0.8 && p50 < 1.2);
  check_true "merged extremes span both inputs"
    (Sketch.minimum m < 0.1 && Sketch.maximum m > 1.9);
  (* merge_all: a singleton folds to itself *)
  check_true "singleton merge_all is the identity"
    (Sketch.quantile (Sketch.merge_all [ a ]) 0.5 = Sketch.quantile a 0.5);
  check_int "empty merge_all is an empty sketch" 0
    (Sketch.count (Sketch.merge_all []))

(* ---- drift detectors ---- *)

let test_drift_detector () =
  (* stationary noise must never fire the default detector *)
  let rng = Prng.create 9 in
  let d = Drift.create "noise" in
  for _ = 1 to 2000 do
    if Drift.observe d (0.1 +. Prng.uniform rng (-0.05) 0.05) then
      Alcotest.fail "Page-Hinkley fired on stationary noise"
  done;
  check_int "silent on stationary noise" 0 (Drift.fired d);
  (* a sustained upward trend must fire it *)
  let d2 = Drift.create "trend" in
  for i = 1 to 600 do
    ignore
      (Drift.observe d2
         (0.1
         +. (3. *. float_of_int i /. 600.)
         +. Prng.uniform rng (-0.05) 0.05))
  done;
  check_true "fires on a sustained trend" (Drift.fired d2 >= 1);
  (* the sustained-level test: wrong from the start, no trend at all *)
  let d3 =
    Drift.create ~level:0.5 ~patience:8 ~min_samples:8 ~lambda:infinity
      "level"
  in
  for _ = 1 to 100 do
    ignore (Drift.observe d3 1.0)
  done;
  check_true "level test fires on a constant-high stream" (Drift.fired d3 >= 1);
  let d4 =
    Drift.create ~level:0.5 ~patience:8 ~min_samples:8 ~lambda:infinity
      "quiet"
  in
  for _ = 1 to 100 do
    ignore (Drift.observe d4 0.2)
  done;
  check_int "level test silent below the level" 0 (Drift.fired d4);
  (* min_samples gates both tests *)
  let d5 =
    Drift.create ~level:0.1 ~patience:1 ~min_samples:50 ~lambda:infinity
      "gated"
  in
  for _ = 1 to 49 do
    if Drift.observe d5 10. then Alcotest.fail "fired before min_samples"
  done;
  check_int "no firing before min_samples" 0 (Drift.fired d5);
  check_true "samples are counted" (Drift.samples d5 = 49);
  check_true "non-finite observations are ignored"
    (not (Drift.observe d5 nan) && Drift.samples d5 = 49)

(* ---- drift-triggered out-of-cadence calibration (the oracle loop) ---- *)

let test_drift_triggered_calibration () =
  let obs = Obs.create ~trace:false ~costmon:false () in
  (* fit_every is effectively infinite: only the drift detector can start a
     calibration pass here *)
  let drift =
    Drift.create ~level:0.3 ~patience:4 ~min_samples:4 ~lambda:infinity
      "oracle.logerr"
  in
  let oracle =
    Cost_oracle.of_model ~calibration:Cost_oracle.Affine
      ~fit_every:1_000_000 ~obs ~drift
      (Cost_model.analytic Granii_hw.Hw_profile.cpu)
  in
  check_int "pristine oracle" 0 (Cost_oracle.version oracle);
  (* a consistent 8x misprediction: |log err| ~ 2.08, far above the level *)
  for i = 1 to 64 do
    let p = 1e-3 *. (1. +. (float_of_int i /. 64.)) in
    Cost_oracle.observe oracle ~prim:"spmm" ~predicted:p ~measured:(8. *. p)
  done;
  let m = match obs.Obs.metrics with Some m -> m | None -> assert false in
  check_true "the drift detector fired"
    (Metrics.counter_value m "calibrate.drift.fired" >= 1);
  check_true "a calibration pass ran without waiting for fit_every"
    (Metrics.counter_value m "calibrate.passes" >= 1);
  check_true "the pass was accepted: version bumped"
    (Cost_oracle.version oracle >= 1);
  check_true "the accepted correction quiets the stream"
    (Float.abs (log (Cost_oracle.corrected oracle ~prim:"spmm" 1e-3 /. 8e-3))
    < 0.3);
  (* journal ordering: drift precedes the accepted calibrate event *)
  let j = match obs.Obs.journal with Some j -> j | None -> assert false in
  let es = Journal.entries j in
  let index_of pred =
    let rec go i = function
      | [] -> None
      | e :: tl -> if pred e then Some i else go (i + 1) tl
    in
    go 0 es
  in
  match
    ( index_of (fun e -> e.Journal.e_kind = Journal.Drift),
      index_of (fun e ->
          e.Journal.e_kind = Journal.Calibrate && e.Journal.e_tag = "accepted")
    )
  with
  | Some di, Some ci ->
      check_true "drift event precedes the accepted calibrate event" (di < ci)
  | _ -> Alcotest.fail "journal must hold drift and accepted-calibrate events"

(* ---- the serving causal chain, end to end ---- *)

(* A server anchored to an H100 profile while executing on the host CPU:
   predictions are wrong from the first request, with no trend — exactly
   the case the sustained-level test exists for. The chain the issue
   demands must be readable from ONE drained journal: drift fires ->
   calibration pass accepted -> oracle version bump -> plan-cache
   invalidation on the next selection. *)
let test_serve_drift_chain () =
  let obs = Obs.create ~trace:false ~journal_capacity:4096 () in
  let drift =
    Drift.create ~level:0.3 ~patience:4 ~min_samples:4 ~lambda:infinity
      "oracle.logerr"
  in
  let oracle =
    Cost_oracle.of_model ~calibration:Cost_oracle.Affine
      ~fit_every:1_000_000 ~obs ~drift
      (Cost_model.analytic Granii_hw.Hw_profile.h100)
  in
  let cfg =
    { Serve.default_config with
      batching = false (* width-1 jobs feed the oracle *);
      profile = Granii_hw.Hw_profile.h100;
      slo_ms = Some 1e-4 (* sub-microsecond: every completion breaches *) }
  in
  let server = Serve.create ~obs ~oracle cfg in
  Fun.protect
    ~finally:(fun () -> Serve.shutdown server)
    (fun () ->
      let graph = G.Generators.erdos_renyi ~n:80 ~avg_degree:4. ~seed:2 () in
      Serve.register_graph server ~name:"g" graph;
      let n = G.Graph.n_nodes graph in
      let requests = 30 in
      for i = 0 to requests - 1 do
        let features = Dense.random ~seed:(100 + i) n 8 in
        match
          Serve.submit server ~tenant:"t0" ~graph:"g" ~model:"gcn" ~k_out:4
            ~features
        with
        | Ok ticket -> ignore (Serve.await server ticket)
        | Error r -> Alcotest.fail (Serve.reject_to_string r)
      done;
      let m = match obs.Obs.metrics with Some m -> m | None -> assert false in
      check_true "drift fired under the mis-anchored profile"
        (Metrics.counter_value m "calibrate.drift.fired" >= 1);
      check_true "the out-of-cadence calibration was accepted"
        (Cost_oracle.version (Serve.serve_oracle server) >= 1);
      (* the causal chain, in order, in one journal *)
      let j = match obs.Obs.journal with Some j -> j | None -> assert false in
      let es = Journal.entries j in
      let index_of pred =
        let rec go i = function
          | [] -> None
          | e :: tl -> if pred e then Some i else go (i + 1) tl
        in
        go 0 es
      in
      (match
         ( index_of (fun e -> e.Journal.e_kind = Journal.Drift),
           index_of (fun e ->
               e.Journal.e_kind = Journal.Calibrate
               && e.Journal.e_tag = "accepted"),
           index_of (fun e ->
               e.Journal.e_kind = Journal.Plan_cache_invalidate) )
       with
      | Some di, Some ci, Some ii ->
          check_true "drift -> calibrate" (di < ci);
          check_true "calibrate -> plan-cache invalidation" (ci < ii)
      | d, c, i ->
          Alcotest.fail
            (Printf.sprintf
               "chain incomplete: drift=%b calibrate.accepted=%b \
                invalidate=%b"
               (d <> None) (c <> None) (i <> None)));
      (* SLO accounting: the absurd target makes every completion a breach *)
      let s = Serve.stats server in
      check_int "every completion breached the SLO" requests
        s.Serve.slo_breaches;
      check_true "first breach timestamped" (s.Serve.first_breach <> None);
      check_int "breach counter agrees" requests
        (Metrics.counter_value m "serve.slo.breaches");
      check_true "breach events journaled"
        (List.exists (fun e -> e.Journal.e_kind = Journal.Slo_breach) es);
      (* streaming latency state is queryable per tenant and server-wide *)
      check_int "every completion in the merged sketch" requests
        (Sketch.count (Serve.latency_sketch server));
      check_true "tenant quantile answers"
        (Serve.tenant_latency server "t0" 0.5 > 0.);
      check_true "unknown tenant reports nan"
        (Float.is_nan (Serve.tenant_latency server "nobody" 0.5)))

(* ---- the journal is bitwise invisible ---- *)

let compiled_gcn =
  lazy
    (let m = Mp.Mp_models.find "GCN" in
     let low = Mp.Lower.lower m in
     let compiled, _ =
       Granii.compile ~name:"GCN"
         ~degree_leaves:(Mp.Lower.degree_leaves low ~binned:false)
         low.Mp.Lower.ir
     in
     (low, compiled))

let test_journal_bitwise_invisible () =
  let low, compiled = Lazy.force compiled_gcn in
  let graph = G.Generators.erdos_renyi ~n:150 ~avg_degree:6. ~seed:3 () in
  let n = G.Graph.n_nodes graph in
  let env = { Dim.n; nnz = G.Graph.n_edges graph + n; k_in = 9; k_out = 7 } in
  let params = Gnn.Layer.init_params ~seed:5 ~env low in
  let h = Dense.random ~seed:6 n 9 in
  let bindings = Gnn.Layer.bindings ~graph ~h params in
  let plan = (List.hd compiled.Codegen.candidates).Codegen.plan in
  let reference =
    Executor.exec ~engine:(Engine.default ()) ~timing:Executor.Measure ~graph
      ~bindings plan
  in
  let obs = Obs.create ~trace:false ~costmon:false () in
  let engine = Engine.create_exn ~obs Engine.default_config in
  let r =
    Executor.exec ~engine ~timing:Executor.Measure ~graph ~bindings plan
  in
  check_true "journal+metrics output is bitwise identical"
    (Test_engine.value_bits_equal reference.Executor.output r.Executor.output);
  (match obs.Obs.journal with
  | Some j -> check_true "the journal actually recorded" (Journal.total j > 0)
  | None -> Alcotest.fail "sink should carry a journal by default")

(* ---- exporter details the CI checker depends on ---- *)

let test_labeled_prometheus () =
  check_true "escape_label_value"
    (String.equal
       (Metrics.escape_label_value "a\"b\\c\nd")
       "a\\\"b\\\\c\\nd");
  let m = Metrics.create () in
  Metrics.set_gauge_labeled m "serve.latency.p50"
    ~labels:[ ("tenant", "a\"b\\c\nd") ]
    0.5;
  Metrics.add_labeled m "hits" ~labels:[ ("model", "gcn"); ("graph", "g") ] 3;
  Metrics.add m "plain" 1;
  let text = Metrics.to_prometheus m in
  check_true "HELP announced for the labeled family"
    (contains text "# HELP granii_serve_latency_p50");
  check_true "TYPE announced for the labeled family"
    (contains text "# TYPE granii_serve_latency_p50 gauge");
  check_true "TYPE announced for the plain counter"
    (contains text "# TYPE granii_plain counter");
  check_true "label values escaped per the exposition format"
    (contains text "tenant=\"a\\\"b\\\\c\\nd\"");
  check_true "labels render sorted regardless of call order"
    (contains text "granii_hits{graph=\"g\",model=\"gcn\"} 3");
  (* label order must not split the series *)
  Metrics.add_labeled m "hits" ~labels:[ ("graph", "g"); ("model", "gcn") ] 2;
  check_true "same label set in any order addresses one series"
    (contains (Metrics.to_prometheus m) "granii_hits{graph=\"g\",model=\"gcn\"} 5")

let test_json_parse () =
  (match Obs.Json.parse "{\"a\": [1, true, \"x\"], \"b\": null}" with
  | Error e -> Alcotest.fail e
  | Ok v ->
      (match Obs.Json.member "a" v with
      | Some (Obs.Json.List [ Obs.Json.Num 1.; Obs.Json.Bool true; Obs.Json.Str "x" ]) ->
          ()
      | _ -> Alcotest.fail "member a");
      check_true "null member" (Obs.Json.member "b" v = Some Obs.Json.Null);
      check_true "missing member" (Obs.Json.member "c" v = None));
  check_true "garbage rejected"
    (match Obs.Json.parse "{\"a\": }" with Error _ -> true | Ok _ -> false)

let suite =
  [ Alcotest.test_case "journal wrap-around accounting" `Quick
      test_journal_wraparound;
    Alcotest.test_case "journal multi-domain interleaving" `Quick
      test_journal_multidomain;
    Alcotest.test_case "sketch exact below five samples" `Quick
      test_sketch_exact_small;
    Alcotest.test_case "sketch accuracy on known distributions" `Quick
      test_sketch_accuracy;
    Alcotest.test_case "sketch merge" `Quick test_sketch_merge;
    Alcotest.test_case "drift detector firing and silence" `Quick
      test_drift_detector;
    Alcotest.test_case "drift triggers out-of-cadence calibration" `Quick
      test_drift_triggered_calibration;
    Alcotest.test_case "serving drift causal chain in one journal" `Slow
      test_serve_drift_chain;
    Alcotest.test_case "journal is bitwise invisible" `Quick
      test_journal_bitwise_invisible;
    Alcotest.test_case "prometheus labels, HELP and TYPE" `Quick
      test_labeled_prometheus;
    Alcotest.test_case "json reader" `Quick test_json_parse ]
