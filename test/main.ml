let () =
  Alcotest.run "granii"
    [ ("tensor", Test_tensor.suite);
      ("sparse", Test_sparse.suite);
      ("graph", Test_graph.suite);
      ("hw", Test_hw.suite);
      ("ml", Test_ml.suite);
      ("core-ir", Test_core_ir.suite);
      ("enumerate-prune", Test_enumerate.suite);
      ("plan-executor", Test_plan_exec.suite);
      ("selection", Test_selection.suite);
      ("mp-systems", Test_mp_systems.suite);
      ("gnn", Test_gnn.suite);
      ("persistence", Test_persistence.suite);
      ("stack-multihead", Test_stack_multihead.suite);
      ("parallel", Test_parallel.suite);
      ("engine", Test_engine.suite);
      ("obs", Test_obs.suite);
      ("observability", Test_observability.suite);
      ("memory", Test_memory.suite);
      ("locality", Test_locality.suite);
      ("formats", Test_formats.suite);
      ("serve", Test_serve.suite);
      ("minibatch", Test_minibatch.suite);
      ("calibration", Test_calibration.suite);
      ("integration", Test_integration.suite) ]
