open Granii_ml
open Granii_core
open Test_util
module Sexp = Sexp_lite

let test_sexp_roundtrip () =
  let v =
    Sexp.List
      [ Sexp.Atom "a";
        Sexp.List [ Sexp.Atom "b"; Sexp.Atom "1.5" ];
        Sexp.Atom "c" ]
  in
  let s = Sexp.to_string v in
  Alcotest.(check string) "rendering" "(a (b 1.5) c)" s;
  check_true "roundtrip" (Sexp.of_string s = v)

let test_sexp_comments_and_whitespace () =
  let v = Sexp.of_string "  ( x ; a comment\n  ( y ) )  " in
  check_true "comments stripped" (v = Sexp.List [ Sexp.Atom "x"; Sexp.List [ Sexp.Atom "y" ] ])

let test_sexp_errors () =
  let fails s =
    try
      ignore (Sexp.of_string s);
      false
    with Sexp.Parse_error _ -> true
  in
  check_true "unclosed paren" (fails "(a (b)");
  check_true "stray close" (fails ")");
  check_true "trailing garbage" (fails "(a) b");
  check_true "empty input" (fails "   ");
  check_true "typed accessor on wrong shape"
    (try ignore (Sexp.int_atom (Sexp.Atom "xyz")); false
     with Sexp.Parse_error _ -> true)

let test_float_precision () =
  List.iter
    (fun x ->
      check_float "float atom roundtrips exactly" x
        (Sexp.float_atom (Sexp.of_float x)))
    [ 0.1; -1e-300; 3.141592653589793; 1e18; -0.; 42. ]

let fitted_gbrt =
  lazy
    (let rng = Granii_tensor.Prng.create 5 in
     let features =
       Array.init 200 (fun _ ->
           [| Granii_tensor.Prng.uniform rng 0. 1.;
              Granii_tensor.Prng.uniform rng 0. 1. |])
     in
     let labels = Array.map (fun x -> (2. *. x.(0)) -. x.(1)) features in
     (Gbrt.fit (Ml_dataset.make features labels), features))

let test_gbrt_roundtrip () =
  let model, features = Lazy.force fitted_gbrt in
  let encoded = Sexp.to_string (Gbrt.to_sexp model) in
  let decoded = Gbrt.of_sexp (Sexp.of_string encoded) in
  Array.iter
    (fun x -> check_float "same predictions" (Gbrt.predict model x) (Gbrt.predict decoded x))
    features

let test_tree_roundtrip =
  qtest ~count:20 "regression trees roundtrip through sexp"
    QCheck2.Gen.(int_range 0 500)
    (fun seed ->
      let rng = Granii_tensor.Prng.create seed in
      let features = Array.init 40 (fun _ -> [| Granii_tensor.Prng.uniform rng 0. 1. |]) in
      let labels = Array.map (fun x -> x.(0) *. x.(0)) features in
      let tree = Regression_tree.fit (Ml_dataset.make features labels) in
      let decoded = Regression_tree.of_sexp (Regression_tree.to_sexp tree) in
      Array.for_all
        (fun x -> Regression_tree.predict tree x = Regression_tree.predict decoded x)
        features)

let small_graphs =
  lazy
    [ Granii_graph.Generators.erdos_renyi ~seed:3 ~n:128 ~avg_degree:6. ();
      Granii_graph.Generators.grid2d ~seed:4 ~rows:12 ~cols:12 () ]

let test_cost_model_save_load () =
  let profile = Granii_hw.Hw_profile.h100 in
  let data =
    Profiling.collect ~profile ~graphs:(Lazy.force small_graphs) ~sizes:[ 16; 64 ] ()
  in
  let gbrt_params = { Gbrt.default_params with Gbrt.n_trees = 15 } in
  let cm = Cost_model.train ~gbrt_params ~profile data in
  let path = Filename.temp_file "granii" ".gcm" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Cost_model.save cm path;
      let loaded = Cost_model.load path in
      check_true "profile preserved"
        (String.equal (Cost_model.name loaded) (Cost_model.name cm));
      let g = List.hd (Lazy.force small_graphs) in
      let feats = Featurizer.extract g in
      let env = { Dim.n = 128; nnz = 800; k_in = 32; k_out = 16 } in
      List.iter
        (fun prim ->
          check_float "same predictions after reload"
            (Cost_oracle.predict (Cost_oracle.of_model cm) feats ~env prim)
            (Cost_oracle.predict (Cost_oracle.of_model loaded) feats ~env prim))
        [ Primitive.Gemm { m = Dim.N; k = Dim.Kin; n = Dim.Kout };
          Primitive.Spmm { k = Dim.Kin; weighted = false };
          Primitive.Sddmm_rank1 ])

let test_save_rejects_ablations () =
  check_true "analytic model has no state to save"
    (try
       Cost_model.save (Cost_model.analytic Granii_hw.Hw_profile.cpu) "/tmp/x";
       false
     with Invalid_argument _ -> true)

let test_load_rejects_garbage () =
  let path = Filename.temp_file "granii" ".gcm" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "(not_a_cost_model)";
      close_out oc;
      check_true "parse error surfaced"
        (try ignore (Cost_model.load path); false
         with Sexp.Parse_error _ -> true))

let test_collect_measured () =
  let data =
    Profiling.collect_measured
      ~graphs:[ Granii_graph.Generators.erdos_renyi ~seed:8 ~n:96 ~avg_degree:5. () ]
      ~sizes:[ 4; 8 ] ~runs:1 ()
  in
  check_true "all primitives measured" (List.length data >= 14);
  List.iter
    (fun (_, ds) ->
      check_true "log-labels finite"
        (Array.for_all Float.is_finite ds.Ml_dataset.labels))
    data;
  (* a model trained on measured data predicts a positive time *)
  let gbrt_params = { Gbrt.default_params with Gbrt.n_trees = 10 } in
  let cm = Cost_model.train ~gbrt_params ~profile:Granii_hw.Hw_profile.cpu data in
  let g = List.hd (Lazy.force small_graphs) in
  let feats = Featurizer.extract g in
  let env = { Dim.n = 128; nnz = 800; k_in = 8; k_out = 8 } in
  check_true "positive predicted runtime"
    (Cost_oracle.predict (Cost_oracle.of_model cm) feats ~env
       (Primitive.Spmm { k = Dim.Kin; weighted = false })
    > 0.)

let suite =
  [ Alcotest.test_case "sexp roundtrip" `Quick test_sexp_roundtrip;
    Alcotest.test_case "sexp comments" `Quick test_sexp_comments_and_whitespace;
    Alcotest.test_case "sexp errors" `Quick test_sexp_errors;
    Alcotest.test_case "float precision" `Quick test_float_precision;
    Alcotest.test_case "gbrt roundtrip" `Quick test_gbrt_roundtrip;
    test_tree_roundtrip;
    Alcotest.test_case "cost model save/load" `Quick test_cost_model_save_load;
    Alcotest.test_case "save rejects ablations" `Quick test_save_rejects_ablations;
    Alcotest.test_case "load rejects garbage" `Quick test_load_rejects_garbage;
    Alcotest.test_case "measured profiling" `Quick test_collect_measured ]
