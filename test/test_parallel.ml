(* Differential tests for the multicore kernel engine: every parallel path
   is checked against the sequential kernel as oracle, at several pool
   widths. Static row chunking keeps whole rows inside one chunk and the
   per-row accumulation order equal to the sequential loop, so the parallel
   outputs must be {e bitwise} identical — the checks below use exact
   equality, not epsilons, wherever that guarantee applies.

   GRANII_STRESS=<k> multiplies the randomized case counts by k (the
   @parallel-stress dune alias sets it). *)

open Test_util
module Parallel = Granii_tensor.Parallel
module Pool = Granii_hw.Domain_pool
module Dense = Granii_tensor.Dense
module Semiring = Granii_tensor.Semiring
module Csr = Granii_sparse.Csr
module Coo = Granii_sparse.Coo
module Spmm = Granii_sparse.Spmm
module Sddmm = Granii_sparse.Sddmm
module Sparse_ops = Granii_sparse.Sparse_ops
module G = Granii_graph
module Mp = Granii_mp
module Gnn = Granii_gnn
open Granii_core

let stress n =
  match Sys.getenv_opt "GRANII_STRESS" with
  | Some s -> (match int_of_string_opt s with Some k when k > 0 -> n * k | _ -> n)
  | None -> n

(* The widths the differential suite sweeps. Width 1 exercises the inline
   (pool-less) shortcut inside [Parallel.rows]. *)
let widths = [ 1; 2; 4; 8 ]

let with_pool_of_width w f =
  if w <= 1 then f None
  else
    let pool = Pool.create ~threads:w () in
    Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f (Some pool))

let at_every_width name f =
  List.iter
    (fun w ->
      with_pool_of_width w (fun pool -> f (Printf.sprintf "%s@%d" name w) pool))
    widths

let check_dense_exact msg seq par =
  check_true (msg ^ " (bitwise)") (Dense.dims seq = Dense.dims par
                                   && Dense.max_abs_diff seq par = 0.)

let check_csr_exact msg seq par =
  check_true (msg ^ " (bitwise)")
    (Csr.equal_structure seq par && Csr.equal_approx ~eps:0. seq par)

let check_vec_exact msg (seq : float array) (par : float array) =
  check_true (msg ^ " (bitwise)") (seq = par)

(* ---- fixture matrices: the shapes the issue calls out ---- *)

let csr_of_entries ~n_rows ~n_cols entries =
  Csr.of_coo (Coo.make ~n_rows ~n_cols (Array.of_list entries))

let with_random_values seed m =
  let rng = Granii_tensor.Prng.create seed in
  Csr.with_values m
    (Array.init (Csr.nnz m) (fun _ -> Granii_tensor.Prng.uniform rng (-2.) 2.))

let fixtures =
  lazy
    (let adj g = G.Graph.with_self_loops g in
     let er = adj (G.Generators.erdos_renyi ~seed:1 ~n:150 ~avg_degree:6. ()) in
     let ba = adj (G.Generators.barabasi_albert ~seed:2 ~n:200 ~m:4 ()) in
     let star = adj (G.Generators.star ~n:64) in
     [ ("er-unweighted", er);
       ("er-weighted", with_random_values 11 er);
       ("ba-powerlaw", ba);
       ("ba-weighted", with_random_values 12 ba);
       (* extreme skew: the hub row holds half the nonzeros *)
       ("star-hub", with_random_values 13 star);
       ("empty-rows",
        csr_of_entries ~n_rows:10 ~n_cols:8
          [ (1, 0, 1.5); (1, 7, -0.5); (3, 2, 2.); (4, 4, 1.) ]);
       ("one-by-n",
        csr_of_entries ~n_rows:1 ~n_cols:50 [ (0, 0, 1.); (0, 7, 2.); (0, 49, -1.) ]);
       ("n-by-one",
        csr_of_entries ~n_rows:50 ~n_cols:1 [ (0, 0, 1.); (17, 0, -2.); (49, 0, 0.5) ]);
       (* fewer rows than the widest pool *)
       ("tiny-rows", csr_of_entries ~n_rows:3 ~n_cols:5 [ (0, 1, 1.); (2, 4, 2.) ]) ])

(* 0/1-valued copy for the boolean semiring *)
let boolean m = Csr.map_values (fun _ -> 1.) m

let semirings =
  [ Semiring.plus_times; Semiring.plus_rhs; Semiring.max_plus;
    Semiring.min_plus; Semiring.max_times; Semiring.or_and ]

(* ---- chunker unit tests ---- *)

let covers_exactly ~n chunks =
  let seen = Array.make (max n 1) 0 in
  Array.iter
    (fun (lo, hi) ->
      check_true "chunk bounds sane" (0 <= lo && lo <= hi && hi <= n);
      for i = lo to hi - 1 do
        seen.(i) <- seen.(i) + 1
      done)
    chunks;
  if n > 0 then
    Array.iteri (fun i c -> check_int (Printf.sprintf "row %d covered once" i) 1 c) seen

let test_chunks_cover () =
  List.iter
    (fun (n, parts) -> covers_exactly ~n (Parallel.chunks ~n ~parts))
    [ (0, 4); (1, 4); (3, 8); (8, 3); (100, 7); (64, 64); (5, 1) ]

let test_balanced_chunks_cover () =
  let prefix_of_degrees degs =
    let p = Array.make (Array.length degs + 1) 0 in
    Array.iteri (fun i d -> p.(i + 1) <- p.(i) + d) degs;
    p
  in
  let cases =
    [ [| 1000; 0; 0; 0; 1; 1; 1; 1 |];  (* one giant row first *)
      [| 0; 0; 0; 0 |];                  (* all empty *)
      [| 1; 1; 1; 1; 1; 1; 1; 1 |];
      [| 0; 5; 0; 900; 0; 5; 0; 90 |];
      [| 7 |] ]
  in
  List.iter
    (fun degs ->
      List.iter
        (fun parts ->
          let chunks =
            Parallel.balanced_chunks ~prefix:(prefix_of_degrees degs) ~parts
          in
          covers_exactly ~n:(Array.length degs) chunks)
        [ 1; 2; 4; 8 ])
    cases

let test_balanced_chunks_balance () =
  (* on a skewed distribution the heavy row must not drag its whole
     neighborhood into one chunk: the row after the hub starts a new chunk *)
  let prefix = [| 0; 1000; 1001; 1002; 1003; 1004 |] in
  let chunks = Parallel.balanced_chunks ~prefix ~parts:4 in
  covers_exactly ~n:5 chunks;
  let hub_chunk = Array.to_list chunks |> List.find (fun (lo, hi) -> lo <= 0 && 0 < hi) in
  check_true "hub row isolated" (hub_chunk = (0, 1))

(* ---- SpMM family differentials ---- *)

let test_spmm_differential () =
  List.iter
    (fun (name, m) ->
      List.iter
        (fun k ->
          let b = Dense.random ~seed:(17 + k) m.Csr.n_cols k in
          let b01 = Dense.map (fun x -> if x > 0. then 1. else 0.) b in
          at_every_width name (fun tag pool ->
              check_dense_exact (tag ^ " spmm default")
                (Spmm.run m b) (Spmm.run ?pool m b);
              List.iter
                (fun sr ->
                  let mb, bb =
                    if Semiring.equal_name sr Semiring.or_and then (boolean m, b01)
                    else (m, b)
                  in
                  check_dense_exact
                    (Printf.sprintf "%s spmm %s" tag sr.Semiring.name)
                    (Spmm.run ~semiring:sr mb bb)
                    (Spmm.run ~semiring:sr ?pool mb bb))
                semirings))
        [ 1; 7 ])
    (Lazy.force fixtures)

let test_spmm_transposed_differential () =
  List.iter
    (fun (name, m) ->
      let b = Dense.random ~seed:23 4 m.Csr.n_rows in
      at_every_width name (fun tag pool ->
          check_dense_exact (tag ^ " dense*sparse")
            (Spmm.run_transposed b m) (Spmm.run_transposed ?pool b m)))
    (Lazy.force fixtures)

let test_spmv_differential () =
  List.iter
    (fun (name, m) ->
      let rng = Granii_tensor.Prng.create 31 in
      let v = Array.init m.Csr.n_cols (fun _ -> Granii_tensor.Prng.uniform rng (-1.) 1.) in
      at_every_width name (fun tag pool ->
          check_vec_exact (tag ^ " spmv") (Spmm.spmv m v) (Spmm.spmv ?pool m v);
          check_vec_exact (tag ^ " spmv max_plus")
            (Spmm.spmv ~semiring:Semiring.max_plus m v)
            (Spmm.spmv ~semiring:Semiring.max_plus ?pool m v)))
    (Lazy.force fixtures)

(* ---- SDDMM family differentials ---- *)

let test_sddmm_differential () =
  List.iter
    (fun (name, m) ->
      let k = 6 in
      let a = Dense.random ~seed:41 m.Csr.n_rows k in
      let b = Dense.random ~seed:42 k m.Csr.n_cols in
      let x = Dense.random ~seed:43 m.Csr.n_rows k in
      let y = Dense.random ~seed:44 m.Csr.n_cols k in
      let rng = Granii_tensor.Prng.create 45 in
      let dl = Array.init m.Csr.n_rows (fun _ -> Granii_tensor.Prng.uniform rng 0.1 2.) in
      let dr = Array.init m.Csr.n_cols (fun _ -> Granii_tensor.Prng.uniform rng 0.1 2.) in
      at_every_width name (fun tag pool ->
          check_csr_exact (tag ^ " sddmm") (Sddmm.run m a b) (Sddmm.run ?pool m a b);
          check_csr_exact (tag ^ " sddmm max_times")
            (Sddmm.run ~semiring:Semiring.max_times m a b)
            (Sddmm.run ~semiring:Semiring.max_times ?pool m a b);
          check_csr_exact (tag ^ " rank1")
            (Sddmm.rank1 m dl dr) (Sddmm.rank1 ?pool m dl dr);
          check_csr_exact (tag ^ " dot_rows")
            (Sddmm.dot_rows m x y) (Sddmm.dot_rows ?pool m x y)))
    (Lazy.force fixtures)

(* ---- dense kernel differentials ---- *)

let test_dense_differential () =
  let h = Dense.random ~seed:51 37 19 in
  let h' = Dense.random ~seed:52 37 19 in
  let w = Dense.random ~seed:53 19 11 in
  let rng = Granii_tensor.Prng.create 54 in
  let row_v = Array.init 37 (fun _ -> Granii_tensor.Prng.uniform rng (-1.) 1.) in
  let col_v = Array.init 19 (fun _ -> Granii_tensor.Prng.uniform rng (-1.) 1.) in
  at_every_width "dense" (fun tag pool ->
      check_dense_exact (tag ^ " matmul") (Dense.matmul h w) (Dense.matmul ?pool h w);
      check_dense_exact (tag ^ " matmul_gen max_plus")
        (Dense.matmul_gen Semiring.max_plus h w)
        (Dense.matmul_gen ?pool Semiring.max_plus h w);
      check_dense_exact (tag ^ " map")
        (Dense.map (fun x -> (x *. x) -. 1.) h)
        (Dense.map ?pool (fun x -> (x *. x) -. 1.) h);
      check_dense_exact (tag ^ " map2")
        (Dense.map2 ( +. ) h h') (Dense.map2 ?pool ( +. ) h h');
      check_dense_exact (tag ^ " add") (Dense.add h h') (Dense.add ?pool h h');
      check_dense_exact (tag ^ " mul_elementwise")
        (Dense.mul_elementwise h h') (Dense.mul_elementwise ?pool h h');
      check_dense_exact (tag ^ " scale") (Dense.scale 1.7 h) (Dense.scale ?pool 1.7 h);
      check_dense_exact (tag ^ " row_broadcast")
        (Dense.row_broadcast row_v h) (Dense.row_broadcast ?pool row_v h);
      check_dense_exact (tag ^ " col_broadcast")
        (Dense.col_broadcast h col_v) (Dense.col_broadcast ?pool h col_v);
      check_dense_exact (tag ^ " relu") (Dense.relu h) (Dense.relu ?pool h);
      check_dense_exact (tag ^ " sigmoid") (Dense.sigmoid h) (Dense.sigmoid ?pool h);
      check_dense_exact (tag ^ " leaky_relu")
        (Dense.leaky_relu h) (Dense.leaky_relu ?pool h);
      check_dense_exact (tag ^ " softmax_rows")
        (Dense.softmax_rows h) (Dense.softmax_rows ?pool h);
      check_dense_exact (tag ^ " log_softmax_rows")
        (Dense.log_softmax_rows h) (Dense.log_softmax_rows ?pool h))

let test_sparse_ops_differential () =
  List.iter
    (fun (name, m) ->
      let rng = Granii_tensor.Prng.create 61 in
      let dl = Array.init m.Csr.n_rows (fun _ -> Granii_tensor.Prng.uniform rng 0.1 2.) in
      let dr = Array.init m.Csr.n_cols (fun _ -> Granii_tensor.Prng.uniform rng 0.1 2.) in
      at_every_width name (fun tag pool ->
          check_csr_exact (tag ^ " scale_rows")
            (Sparse_ops.scale_rows dl m) (Sparse_ops.scale_rows ?pool dl m);
          check_csr_exact (tag ^ " scale_cols")
            (Sparse_ops.scale_cols m dr) (Sparse_ops.scale_cols ?pool m dr);
          check_csr_exact (tag ^ " scale_bilateral")
            (Sparse_ops.scale_bilateral dl m dr)
            (Sparse_ops.scale_bilateral ?pool dl m dr);
          check_csr_exact (tag ^ " row_softmax")
            (Sparse_ops.row_softmax m) (Sparse_ops.row_softmax ?pool m)))
    (Lazy.force fixtures)

(* randomized sweep over small CSR shapes at width 4 (scaled by GRANII_STRESS) *)
let test_random_spmm =
  qtest ~count:(stress 60) "random csr: parallel spmm = sequential"
    QCheck2.Gen.(pair csr_gen (int_range 1 9))
    (fun (m, k) ->
      let b = Dense.random ~seed:(k * 7) m.Csr.n_cols k in
      with_pool_of_width 4 (fun pool ->
          List.for_all
            (fun sr ->
              let mb, bb =
                if Semiring.equal_name sr Semiring.or_and then
                  (boolean m, Dense.map (fun x -> if x > 0. then 1. else 0.) b)
                else (m, b)
              in
              Dense.max_abs_diff
                (Spmm.run ~semiring:sr mb bb)
                (Spmm.run ~semiring:sr ?pool mb bb)
              = 0.)
            semirings))

(* ---- oracle tests: the generic SpMM branch vs a naive reference ---- *)

(* Naive per-(i,j) semiring fold, written against the mathematical
   definition: C(i,:) = fold_add over stored (i,j) of mul a_ij b(j,:). *)
let spmm_reference sr (m : Csr.t) b =
  let _, k = Dense.dims b in
  let rows = Array.make m.Csr.n_rows [] in
  Csr.iter (fun i j v -> rows.(i) <- (j, v) :: rows.(i)) m;
  let rows = Array.map List.rev rows in
  Dense.init m.Csr.n_rows k (fun i jo ->
      List.fold_left
        (fun acc (j, v) -> sr.Semiring.add acc (sr.Semiring.mul v (Dense.get b j jo)))
        sr.Semiring.zero rows.(i))

let test_spmm_oracle_nonarithmetic () =
  List.iter
    (fun (name, m) ->
      let b = Dense.random ~seed:71 m.Csr.n_cols 5 in
      List.iter
        (fun sr ->
          let mb, bb =
            if Semiring.equal_name sr Semiring.or_and then
              (boolean m, Dense.map (fun x -> if x > 0. then 1. else 0.) b)
            else (m, b)
          in
          let expected = spmm_reference sr mb bb in
          check_dense_exact
            (Printf.sprintf "%s %s vs naive reference" name sr.Semiring.name)
            expected
            (Spmm.run ~semiring:sr mb bb);
          with_pool_of_width 4 (fun pool ->
              check_dense_exact
                (Printf.sprintf "%s %s parallel vs naive reference" name
                   sr.Semiring.name)
                expected
                (Spmm.run ~semiring:sr ?pool mb bb)))
        [ Semiring.max_plus; Semiring.min_plus; Semiring.max_times;
          Semiring.or_and ])
    (Lazy.force fixtures)

(* ---- regression: generic branch vs the plus-times fast path ---- *)

(* A physically distinct clone of plus-times is NOT pointer-equal to
   [Semiring.plus_times], so it routes down the generic row-major branch;
   its accumulation order matches the fast path, so results are bitwise
   equal. This pins the fix for the old generic branch that re-walked
   [row_ptr] per output element. *)
let plus_times_clone =
  Semiring.make ~name:"plus_times_clone" ~zero:0. ~add:( +. ) ~mul:( *. )

let test_generic_branch_matches_fast_path () =
  check_true "clone dodges the fast path"
    (not (Semiring.is_plus_times plus_times_clone));
  List.iter
    (fun (name, m) ->
      let b = Dense.random ~seed:81 m.Csr.n_cols 6 in
      check_dense_exact (name ^ " generic = fast path")
        (Spmm.run m b)
        (Spmm.run ~semiring:plus_times_clone m b);
      with_pool_of_width 4 (fun pool ->
          check_dense_exact (name ^ " generic = fast path (parallel)")
            (Spmm.run ?pool m b)
            (Spmm.run ~semiring:plus_times_clone ?pool m b)))
    (Lazy.force fixtures)

(* ---- pool robustness ---- *)

let test_pool_reusable_after_exception () =
  with_pool_of_width 4 (function
    | None -> Alcotest.fail "expected a pool"
    | Some pool ->
        let h = Dense.random ~seed:91 16 4 in
        check_true "user exception propagates"
          (try
             ignore (Dense.map ~pool (fun _ -> failwith "boom") h);
             false
           with Failure _ -> true);
        (* the pool must survive the failed wave *)
        check_dense_exact "pool still works" (Dense.relu h) (Dense.relu ~pool h))

let test_for_threads_shape () =
  check_true "width 1 is sequential" (Pool.for_threads 1 = None);
  check_true "width 0 is sequential" (Pool.for_threads 0 = None);
  match Pool.for_threads 3 with
  | None -> Alcotest.fail "expected a shared pool"
  | Some p -> check_int "shared pool width" 3 (Pool.threads p)

(* ---- property-based end-to-end: every surviving plan, 1 vs 4 threads ---- *)

let compile_model (m : Mp.Mp_ast.model) =
  let low = Mp.Lower.lower m in
  let compiled, _ =
    Granii.compile ~name:m.Mp.Mp_ast.name
      ~degree_leaves:(Mp.Lower.degree_leaves low ~binned:false)
      low.Mp.Lower.ir
  in
  (low, compiled)

let dense_of_output (r : Executor.report) =
  match r.Executor.output with
  | Executor.Vdense d -> d
  | Executor.Vsparse _ | Executor.Vdiag _ -> Alcotest.fail "expected dense output"

let e2e_gen =
  QCheck2.Gen.(pair graph_gen (int_range 0 (List.length Mp.Mp_models.all - 1)))

let test_e2e_plans_agree =
  qtest ~count:(stress 8) "every surviving plan: 1 thread = 4 threads"
    e2e_gen
    (fun (graph, mi) ->
      let m = List.nth Mp.Mp_models.all mi in
      let low, compiled = compile_model m in
      let n = G.Graph.n_nodes graph in
      let k_in = 6 in
      let env = { Dim.n; nnz = G.Graph.n_edges graph + n; k_in; k_out = 5 } in
      let params = Gnn.Layer.init_params ~seed:7 ~env low in
      let h = Dense.random ~seed:8 n k_in in
      let bindings = Gnn.Layer.bindings ~graph ~h params in
      let run ?pool c =
        dense_of_output
          (Executor.exec
             ~engine:(Engine.create_exn ?pool Engine.default_config)
             ~timing:(Executor.Simulate Granii_hw.Hw_profile.a100)
             ~graph ~bindings c.Codegen.plan)
      in
      with_pool_of_width 4 (fun pool ->
          List.for_all
            (fun c -> Dense.max_abs_diff (run c) (run ?pool c) <= 1e-9)
            compiled.Codegen.candidates))

let suite =
  [ Alcotest.test_case "static chunks cover" `Quick test_chunks_cover;
    Alcotest.test_case "balanced chunks cover" `Quick test_balanced_chunks_cover;
    Alcotest.test_case "balanced chunks isolate hubs" `Quick
      test_balanced_chunks_balance;
    Alcotest.test_case "spmm differential" `Quick test_spmm_differential;
    Alcotest.test_case "dense*sparse differential" `Quick
      test_spmm_transposed_differential;
    Alcotest.test_case "spmv differential" `Quick test_spmv_differential;
    Alcotest.test_case "sddmm differential" `Quick test_sddmm_differential;
    Alcotest.test_case "dense kernels differential" `Quick test_dense_differential;
    Alcotest.test_case "sparse ops differential" `Quick
      test_sparse_ops_differential;
    test_random_spmm;
    Alcotest.test_case "non-arithmetic semiring oracles" `Quick
      test_spmm_oracle_nonarithmetic;
    Alcotest.test_case "generic branch = fast path" `Quick
      test_generic_branch_matches_fast_path;
    Alcotest.test_case "pool survives exceptions" `Quick
      test_pool_reusable_after_exception;
    Alcotest.test_case "for_threads shape" `Quick test_for_threads_shape;
    test_e2e_plans_agree ]
