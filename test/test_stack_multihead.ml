open Granii_core
open Test_util
module Dense = Granii_tensor.Dense
module G = Granii_graph
module Mp = Granii_mp
module Gnn = Granii_gnn

let graph = lazy (G.Generators.erdos_renyi ~seed:31 ~n:50 ~avg_degree:4. ())

let compiled_of model =
  let low = Mp.Lower.lower model in
  let compiled, _ =
    Granii.compile ~name:model.Mp.Mp_ast.name
      ~degree_leaves:(Mp.Lower.degree_leaves low ~binned:false)
      low.Mp.Lower.ir
  in
  (low, compiled)

let cm = Cost_oracle.analytic Granii_hw.Hw_profile.a100

let test_concat_split () =
  let a = Dense.random ~seed:1 4 3 and b = Dense.random ~seed:2 4 5 in
  let c = Dense.concat_cols [ a; b ] in
  check_int "width adds up" 8 (snd (Dense.dims c));
  check_float "left block preserved" (Dense.get a 2 1) (Dense.get c 2 1);
  check_float "right block preserved" (Dense.get b 3 4) (Dense.get c 3 7);
  let halves = Dense.split_cols (Dense.concat_cols [ a; Dense.random ~seed:3 4 3 ]) 2 in
  check_true "split inverts concat for equal widths"
    (Dense.equal_approx a (List.hd halves));
  Alcotest.check_raises "ragged concat rejected"
    (Invalid_argument "Dense.concat_cols: row count mismatch") (fun () ->
      ignore (Dense.concat_cols [ a; Dense.zeros 3 1 ]))

let test_stack_builds_per_layer_plans () =
  let graph = Lazy.force graph in
  let low, compiled = compiled_of Mp.Mp_models.gcn in
  let stack =
    Gnn.Stack.build ~oracle:cm ~graph ~compiled ~lowered:low
      ~dims:[ 64; 8; 4 ] ()
  in
  check_int "two layers" 2 (List.length (Gnn.Stack.plans stack));
  (* layer 1 shrinks 64->8 (update-first scenario), layer 2 shrinks 8->4 *)
  List.iter
    (fun plan ->
      check_true "plan selected" (List.length plan.Plan.steps > 0))
    (Gnn.Stack.plans stack)

let test_stack_forward_shapes () =
  let graph = Lazy.force graph in
  let n = G.Graph.n_nodes graph in
  let low, compiled = compiled_of Mp.Mp_models.gcn in
  let stack =
    Gnn.Stack.build ~oracle:cm ~graph ~compiled ~lowered:low ~dims:[ 6; 5; 3 ] ()
  in
  let features = Dense.random ~seed:7 n 6 in
  let out, reports = Gnn.Stack.forward ~graph ~features stack in
  check_int "rows preserved" n (fst (Dense.dims out));
  check_int "final width is last dim" 3 (snd (Dense.dims out));
  check_int "one report per layer" 2 (List.length reports)

let test_stack_matches_manual_two_layer () =
  (* stacking two layers must equal manually feeding layer 1's output into
     layer 2 *)
  let graph = Lazy.force graph in
  let n = G.Graph.n_nodes graph in
  let low, compiled = compiled_of Mp.Mp_models.gcn in
  let stack =
    Gnn.Stack.build ~seed:5 ~oracle:cm ~graph ~compiled ~lowered:low
      ~dims:[ 6; 5; 3 ] ()
  in
  let features = Dense.random ~seed:8 n 6 in
  let out, _ = Gnn.Stack.forward ~graph ~features stack in
  let manual =
    List.fold_left
      (fun h (layer : Gnn.Stack.layer) ->
        let bindings = Gnn.Layer.bindings ~graph ~h layer.Gnn.Stack.l_params in
        match
          (Executor.exec ~engine:(Engine.default ())
             ~timing:Executor.Measure ~graph ~bindings layer.Gnn.Stack.l_plan)
            .Executor.output
        with
        | Executor.Vdense d -> d
        | _ -> Alcotest.fail "dense expected")
      features stack.Gnn.Stack.layers
  in
  check_true "stack = manual composition" (Dense.equal_approx out manual)

let test_stack_training_converges () =
  let graph = Lazy.force graph in
  let n = G.Graph.n_nodes graph in
  let low, compiled = compiled_of Mp.Mp_models.gcn in
  let classes = 3 in
  let stack =
    Gnn.Stack.build ~seed:2 ~oracle:cm ~graph ~compiled ~lowered:low
      ~dims:[ 8; 6; classes ] ()
  in
  let rng = Granii_tensor.Prng.create 17 in
  let labels = Array.init n (fun _ -> Granii_tensor.Prng.int rng classes) in
  let features =
    Dense.init n 8 (fun i j ->
        Granii_tensor.Prng.normal rng +. if j = labels.(i) then 2. else 0.)
  in
  let history =
    Gnn.Stack.train ~epochs:30
      ~optimizer:(Gnn.Optimizer.adam ~lr:0.03 ())
      ~graph ~features ~labels stack
  in
  let first = history.Gnn.Stack.losses.(0) and last = history.Gnn.Stack.losses.(29) in
  check_true
    (Printf.sprintf "2-layer loss decreases (%.4f -> %.4f)" first last)
    (last < first -. 0.05);
  check_true "learns the planted signal" (history.Gnn.Stack.train_accuracy > 0.5)

let test_stack_gat_training () =
  (* gradients must flow through the attention layers of a 2-layer GAT *)
  let graph = Lazy.force graph in
  let n = G.Graph.n_nodes graph in
  let low, compiled = compiled_of Mp.Mp_models.gat in
  let classes = 2 in
  let stack =
    Gnn.Stack.build ~seed:3 ~oracle:cm ~graph ~compiled ~lowered:low
      ~dims:[ 5; 4; classes ] ()
  in
  let rng = Granii_tensor.Prng.create 23 in
  let labels = Array.init n (fun _ -> Granii_tensor.Prng.int rng classes) in
  let features =
    Dense.init n 5 (fun i j ->
        Granii_tensor.Prng.normal rng +. if j = labels.(i) then 2. else 0.)
  in
  let history =
    Gnn.Stack.train ~epochs:25
      ~optimizer:(Gnn.Optimizer.adam ~lr:0.03 ())
      ~graph ~features ~labels stack
  in
  check_true "2-layer GAT loss decreases"
    (history.Gnn.Stack.losses.(24) < history.Gnn.Stack.losses.(0) -. 0.02)

let test_multihead_shapes () =
  let graph = Lazy.force graph in
  let n = G.Graph.n_nodes graph in
  let low, compiled = compiled_of Mp.Mp_models.gat in
  let mh =
    Gnn.Multi_head.create ~oracle:cm ~graph ~compiled ~lowered:low ~heads:4
      ~k_in:6 ~k_out_per_head:3 ()
  in
  check_int "head count" 4 (Gnn.Multi_head.n_heads mh);
  let out = Gnn.Multi_head.forward ~graph ~features:(Dense.random ~seed:9 n 6) mh in
  check_int "concatenated width" 12 (snd (Dense.dims out))

let test_multihead_single_equals_plain () =
  let graph = Lazy.force graph in
  let n = G.Graph.n_nodes graph in
  let low, compiled = compiled_of Mp.Mp_models.gat in
  let mh =
    Gnn.Multi_head.create ~seed:0 ~oracle:cm ~graph ~compiled ~lowered:low
      ~heads:1 ~k_in:6 ~k_out_per_head:3 ()
  in
  let features = Dense.random ~seed:10 n 6 in
  let via_mh = Gnn.Multi_head.forward ~graph ~features mh in
  let params = List.hd mh.Gnn.Multi_head.heads in
  let bindings = Gnn.Layer.bindings ~graph ~h:features params in
  let direct =
    match
      (Executor.exec ~engine:(Engine.default ()) ~timing:Executor.Measure
         ~graph ~bindings mh.Gnn.Multi_head.plan)
        .Executor.output
    with
    | Executor.Vdense d -> d
    | _ -> Alcotest.fail "dense expected"
  in
  check_true "1 head = plain GAT" (Dense.equal_approx via_mh direct)

let test_multihead_time_scales () =
  let graph = Lazy.force graph in
  let n = G.Graph.n_nodes graph in
  let low, compiled = compiled_of Mp.Mp_models.gat in
  let env = { Dim.n; nnz = G.Graph.n_edges graph + n; k_in = 6; k_out = 3 } in
  let time heads =
    let mh =
      Gnn.Multi_head.create ~oracle:cm ~graph ~compiled ~lowered:low ~heads
        ~k_in:6 ~k_out_per_head:3 ()
    in
    Gnn.Multi_head.inference_time ~profile:Granii_hw.Hw_profile.a100 ~graph ~env mh
  in
  check_float ~eps:1e-9 "8 heads = 8x 1 head" (8. *. time 1) (time 8)

let suite =
  [ Alcotest.test_case "concat/split cols" `Quick test_concat_split;
    Alcotest.test_case "stack builds per-layer plans" `Quick
      test_stack_builds_per_layer_plans;
    Alcotest.test_case "stack forward shapes" `Quick test_stack_forward_shapes;
    Alcotest.test_case "stack = manual composition" `Quick
      test_stack_matches_manual_two_layer;
    Alcotest.test_case "2-layer GCN training converges" `Quick
      test_stack_training_converges;
    Alcotest.test_case "2-layer GAT training converges" `Quick test_stack_gat_training;
    Alcotest.test_case "multi-head shapes" `Quick test_multihead_shapes;
    Alcotest.test_case "1 head = plain GAT" `Quick test_multihead_single_equals_plain;
    Alcotest.test_case "multi-head time scales" `Quick test_multihead_time_scales ]
