(* The cost-oracle calibration loop: the A/B guard accepts only candidates
   that strictly improve the pooled ranking, Off is bitwise inert, accepted
   passes are versioned and rollback-able, and the startup micro-probe
   re-anchors profiles inside its budget and clamp ranges. *)

open Granii_core
open Test_util
module Hw = Granii_hw
module G = Granii_graph

let approx_rel ?(tol = 1e-6) a b =
  Float.abs (a -. b) <= tol *. Float.max (Float.abs a) (Float.abs b)

(* Two primitives whose raw predictions interleave while their measured
   times are scaled apart: the pooled ranking is wrong until per-primitive
   corrections pull each scale back. Exact log-affine relations, so the fit
   recovers them and the holdout slice is predicted perfectly. *)
let feed_crossed oracle =
  for i = 1 to 12 do
    let p = float_of_int i *. 1e-3 in
    Cost_oracle.observe oracle ~prim:"spmm" ~predicted:p
      ~measured:(20. *. p)
  done;
  for i = 1 to 12 do
    let p = (float_of_int i +. 0.5) *. 1e-3 in
    Cost_oracle.observe oracle ~prim:"gemm" ~predicted:p
      ~measured:(0.01 *. p)
  done

let test_guard_accepts_improvement () =
  let oracle =
    Cost_oracle.of_model ~calibration:Cost_oracle.Affine ~fit_every:1000
      (Cost_model.analytic Hw.Hw_profile.cpu)
  in
  check_true "pristine oracle has the base name"
    (Cost_oracle.name oracle = (Cost_oracle.base oracle |> Cost_model.name));
  feed_crossed oracle;
  check_true "observations counted" (Cost_oracle.observed oracle = 24);
  match Cost_oracle.calibrate oracle with
  | None -> Alcotest.fail "calibration pass found no primitive to fit"
  | Some o ->
      check_true "both primitives participated"
        (List.sort compare o.Cost_oracle.fitted_prims = [ "gemm"; "spmm" ]);
      check_true "the mis-anchored ranking had pooled inversions"
        (o.Cost_oracle.current_inversions > 0);
      check_true "the candidate strictly reduced them"
        (o.Cost_oracle.candidate_inversions < o.Cost_oracle.current_inversions);
      check_true "the guard accepted" o.Cost_oracle.accepted;
      check_true "version advanced" (Cost_oracle.version oracle = 1);
      check_true "name is version-suffixed (plan caches must miss)"
        (Cost_oracle.name oracle
        = (Cost_oracle.base oracle |> Cost_model.name) ^ "#v1");
      (match Cost_oracle.correction oracle "spmm" with
      | None -> Alcotest.fail "no correction installed for spmm"
      | Some _ -> ());
      check_true "the correction recovers the true scale"
        (approx_rel (Cost_oracle.corrected oracle ~prim:"spmm" 1e-3) 0.02);
      check_true "the other primitive's scale too"
        (approx_rel (Cost_oracle.corrected oracle ~prim:"gemm" 2e-3) 2e-5);
      let r = Cost_oracle.report oracle in
      check_true "the report shows the pooled ranking repaired"
        (r.Cost_oracle.pooled_corrected_inv < r.Cost_oracle.pooled_base_inv);
      check_true "report version matches"
        (r.Cost_oracle.report_version = 1)

let test_guard_rejects_no_improvement () =
  (* a base model that is already perfect: the affine candidate cannot
     strictly beat zero inversions / zero error, so the guard must hold the
     current model *)
  let oracle =
    Cost_oracle.of_model ~calibration:Cost_oracle.Affine ~fit_every:1000
      (Cost_model.analytic Hw.Hw_profile.cpu)
  in
  for i = 1 to 12 do
    let p = float_of_int i *. 1e-3 in
    Cost_oracle.observe oracle ~prim:"spmm" ~predicted:p ~measured:p
  done;
  (match Cost_oracle.calibrate oracle with
  | None -> Alcotest.fail "calibration pass found no primitive to fit"
  | Some o ->
      check_true "a perfect model leaves nothing to win"
        (not o.Cost_oracle.accepted);
      check_true "no refits on a rejected pass"
        (o.Cost_oracle.refit_prims = []));
  check_true "version unchanged" (Cost_oracle.version oracle = 0);
  check_true "no correction installed"
    (Cost_oracle.correction oracle "spmm" = None);
  check_true "name unchanged"
    (Cost_oracle.name oracle = (Cost_oracle.base oracle |> Cost_model.name));
  check_true "predictions untouched"
    (Cost_oracle.corrected oracle ~prim:"spmm" 5e-3 = 5e-3)

let test_off_is_inert () =
  (* with calibration Off the oracle is a pure reader of its base model:
     observations accumulate in the monitor but never change a prediction *)
  let graph = G.Generators.erdos_renyi ~seed:3 ~n:40 ~avg_degree:4. () in
  let feats = Featurizer.extract ~threads:1 graph in
  let env =
    { Dim.n = G.Graph.n_nodes graph;
      nnz = G.Graph.n_edges graph + G.Graph.n_nodes graph;
      k_in = 16;
      k_out = 8 }
  in
  let prims =
    [ Primitive.Spmm { k = Dim.Kin; weighted = true };
      Primitive.Row_broadcast { k = Dim.Kin };
      Primitive.Gemm { m = Dim.N; k = Dim.Kin; n = Dim.Kout } ]
  in
  let fresh = Cost_oracle.analytic Hw.Hw_profile.cpu in
  let oracle =
    (* fit_every 8: were Off not gating the loop, the pass would fire *)
    Cost_oracle.of_model ~fit_every:8 (Cost_model.analytic Hw.Hw_profile.cpu)
  in
  check_true "of_model defaults to Off"
    (Cost_oracle.calibration oracle = Cost_oracle.Off);
  feed_crossed oracle;
  check_true "no pass auto-fired" (Cost_oracle.version oracle = 0);
  check_true "no correction exists"
    (Cost_oracle.correction oracle "spmm" = None);
  List.iter
    (fun p ->
      let a = Cost_oracle.predict oracle feats ~env p in
      let b = Cost_oracle.predict fresh feats ~env p in
      check_true
        (Primitive.name p ^ ": Off prediction bitwise equals the base model")
        (Int64.bits_of_float a = Int64.bits_of_float b))
    prims

let test_rollback () =
  let oracle =
    Cost_oracle.of_model ~calibration:Cost_oracle.Affine ~fit_every:1000
      (Cost_model.analytic Hw.Hw_profile.cpu)
  in
  feed_crossed oracle;
  (match Cost_oracle.calibrate oracle with
  | Some o when o.Cost_oracle.accepted -> ()
  | _ -> Alcotest.fail "setup: the crossed feed must be accepted");
  check_true "one snapshot pushed"
    (List.length (Cost_oracle.snapshots oracle) = 1);
  check_true "the snapshot captured the pre-swap (pristine) state"
    ((List.hd (Cost_oracle.snapshots oracle)).Cost_oracle.snap_corrections
    = []);
  check_true "rollback restores it" (Cost_oracle.rollback oracle);
  check_true "corrections gone"
    (Cost_oracle.correction oracle "spmm" = None);
  check_true "version still advances (caches must not confuse states)"
    (Cost_oracle.version oracle = 2);
  check_true "no second snapshot to restore"
    (not (Cost_oracle.rollback oracle))

let test_refit_policy () =
  (* Refit = affine corrections plus guarded per-primitive GBRT overrides
     fitted from stored inputs; the pass-level guard semantics are
     unchanged, and any adopted override is for a fitted primitive. The
     32-observation feed is a sustained misprediction, exactly what the
     default drift detector exists to catch — it would recalibrate
     mid-feed (that loop has its own tests in test_observability.ml), so
     a never-firing detector keeps the explicit pass below the first. *)
  let quiet = Granii_obs.Obs.Drift.create ~lambda:infinity "off" in
  let oracle =
    Cost_oracle.of_model ~calibration:Cost_oracle.Refit ~fit_every:1000
      ~drift:quiet (Cost_model.analytic Hw.Hw_profile.cpu)
  in
  for i = 1 to 16 do
    let p = float_of_int i *. 1e-3 in
    Cost_oracle.observe ~input:[| p; 1. |] oracle ~prim:"spmm" ~predicted:p
      ~measured:(20. *. p)
  done;
  for i = 1 to 16 do
    let p = (float_of_int i +. 0.5) *. 1e-3 in
    Cost_oracle.observe ~input:[| p; 2. |] oracle ~prim:"gemm" ~predicted:p
      ~measured:(0.01 *. p)
  done;
  match Cost_oracle.calibrate oracle with
  | None -> Alcotest.fail "calibration pass found no primitive to fit"
  | Some o ->
      check_true "the crossed feed is accepted under Refit too"
        o.Cost_oracle.accepted;
      check_true "refits only for fitted primitives"
        (List.for_all
           (fun p -> List.mem p o.Cost_oracle.fitted_prims)
           o.Cost_oracle.refit_prims);
      check_true "predictions stay positive and finite"
        (let c = Cost_oracle.corrected oracle ~prim:"spmm" 5e-3 in
         Float.is_finite c && c > 0.)

let test_construction_validation () =
  let base = Cost_model.analytic Hw.Hw_profile.cpu in
  List.iter
    (fun fit_every ->
      check_true
        (Printf.sprintf "fit_every=%d rejected" fit_every)
        (match Cost_oracle.of_model ~fit_every base with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [ 0; -3 ];
  check_true "min_pairs < 4 rejected"
    (match Cost_oracle.of_model ~min_pairs:3 base with
    | exception Invalid_argument _ -> true
    | _ -> false);
  List.iter
    (fun (s, expect) ->
      check_true
        (Printf.sprintf "calibration_of_string %S" s)
        (Cost_oracle.calibration_of_string s = expect))
    [ ("off", Some Cost_oracle.Off);
      ("affine", Some Cost_oracle.Affine);
      ("refit", Some Cost_oracle.Refit);
      ("sometimes", None) ];
  List.iter
    (fun c ->
      check_true "calibration strings round-trip"
        (Cost_oracle.calibration_of_string
           (Cost_oracle.calibration_to_string c)
        = Some c))
    [ Cost_oracle.Off; Cost_oracle.Affine; Cost_oracle.Refit ]

let test_engine_threads_oracle () =
  (* the engine owns an oracle configured by the calibration axis, and an
     injected oracle normalizes the stored config instead *)
  let e =
    Engine.create_exn
      { Engine.default_config with calibration = Cost_oracle.Affine }
  in
  check_true "engine oracle carries the config's policy"
    (Cost_oracle.calibration (Engine.oracle e) = Cost_oracle.Affine);
  Engine.shutdown e;
  let injected =
    Cost_oracle.of_model ~calibration:Cost_oracle.Refit
      (Cost_model.analytic Hw.Hw_profile.cpu)
  in
  let e = Engine.create_exn ~oracle:injected Engine.default_config in
  check_true "injected oracle is the one stored"
    (Engine.oracle e == injected);
  check_true "config normalized from the injected oracle"
    ((Engine.config e).Engine.calibration = Cost_oracle.Refit);
  Engine.shutdown e

let test_micro_probe () =
  check_true "non-positive budget rejected"
    (match Hw.Calibrate.measure ~budget_s:0. () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let m = Hw.Calibrate.measure ~budget_s:0.02 () in
  List.iter
    (fun (label, v) ->
      check_true (label ^ " is positive and finite")
        (Float.is_finite v && v > 0.))
    [ ("dense_gflops", m.Hw.Calibrate.dense_gflops);
      ("sparse_gflops", m.Hw.Calibrate.sparse_gflops);
      ("stream_gbps", m.Hw.Calibrate.stream_gbps);
      ("random_gbps", m.Hw.Calibrate.random_gbps) ];
  (* bounded: four probes in a 20 ms budget may overshoot by one repetition
     each, but never run away *)
  check_true "the pass is bounded"
    (m.Hw.Calibrate.elapsed_s >= 0. && m.Hw.Calibrate.elapsed_s < 5.);
  let base = Hw.Hw_profile.cpu in
  let p = Hw.Calibrate.reanchor ~base m in
  check_true "re-anchored profile is host-suffixed"
    (p.Hw.Hw_profile.name = base.Hw.Hw_profile.name ^ "-host");
  check_true "core count preserved"
    (p.Hw.Hw_profile.cores = base.Hw.Hw_profile.cores);
  check_true "dense rate clamped into range"
    (p.Hw.Hw_profile.dense_gflops >= 1.
    && p.Hw.Hw_profile.dense_gflops <= 1e5);
  check_true "sparse rate clamped into range"
    (p.Hw.Hw_profile.sparse_gflops >= 0.1
    && p.Hw.Hw_profile.sparse_gflops <= 1e4);
  check_true "stream bandwidth clamped into range"
    (p.Hw.Hw_profile.stream_gbps >= 1. && p.Hw.Hw_profile.stream_gbps <= 1e4);
  check_true "random bandwidth clamped into range"
    (p.Hw.Hw_profile.random_gbps >= 0.05
    && p.Hw.Hw_profile.random_gbps <= 1e3);
  (* the re-anchored profile drives the analytic model like any other *)
  let t =
    Cost_oracle.kernel_time p
      (Hw.Kernel_model.Elementwise { n = 1000; k = 8; flops_per_elt = 2. })
  in
  check_true "re-anchored profile prices kernels"
    (Float.is_finite t && t > 0.)

let suite =
  [ Alcotest.test_case "A/B guard accepts a strict ranking improvement"
      `Quick test_guard_accepts_improvement;
    Alcotest.test_case "A/B guard rejects a non-improvement" `Quick
      test_guard_rejects_no_improvement;
    Alcotest.test_case "calibration Off is bitwise inert" `Quick
      test_off_is_inert;
    Alcotest.test_case "rollback restores the pre-swap state" `Quick
      test_rollback;
    Alcotest.test_case "Refit policy keeps the guard semantics" `Quick
      test_refit_policy;
    Alcotest.test_case "construction and policy-string validation" `Quick
      test_construction_validation;
    Alcotest.test_case "engine threads the calibration axis" `Quick
      test_engine_threads_oracle;
    Alcotest.test_case "micro-probe is bounded and clamped" `Quick
      test_micro_probe ]
