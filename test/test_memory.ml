(* The memory system: workspace arena semantics, liveness analysis, bitwise
   equality of workspace-backed execution against the allocating path, and
   the shared-subtree execution cache. *)

open Granii_core
open Test_util
module Dense = Granii_tensor.Dense
module Vector = Granii_tensor.Vector
module Workspace = Granii_tensor.Workspace
module Csr = Granii_sparse.Csr
module G = Granii_graph
module Mp = Granii_mp
module Gnn = Granii_gnn

(* ---- helpers ---- *)

let small_graph ?(seed = 3) ?(n = 60) () =
  G.Generators.erdos_renyi ~seed ~n ~avg_degree:5. ()

let compile_model (m : Mp.Mp_ast.model) =
  let low = Mp.Lower.lower m in
  let compiled, _ =
    Granii.compile ~name:m.Mp.Mp_ast.name
      ~degree_leaves:(Mp.Lower.degree_leaves low ~binned:false)
      low.Mp.Lower.ir
  in
  (low, compiled)

let setup_bindings ?(seed = 11) ~k_in low graph =
  let n = G.Graph.n_nodes graph in
  let env = { Dim.n; nnz = G.Graph.n_edges graph + n; k_in; k_out = 7 } in
  let params = Gnn.Layer.init_params ~seed ~env low in
  let h = Dense.random ~seed:(seed + 1) n k_in in
  (env, Gnn.Layer.bindings ~graph ~h params)

let bits_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun i x ->
          if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then ok := false)
        a;
      !ok)

(* Strict bitwise equality — workspace execution must not change a single
   ulp, and must preserve even the signs of zeros. *)
let value_bits_equal (a : Executor.value) (b : Executor.value) =
  match (a, b) with
  | Executor.Vdense x, Executor.Vdense y ->
      x.Dense.rows = y.Dense.rows && x.Dense.cols = y.Dense.cols
      && bits_equal x.Dense.data y.Dense.data
  | Executor.Vdiag x, Executor.Vdiag y -> bits_equal x y
  | Executor.Vsparse x, Executor.Vsparse y -> (
      x.Csr.row_ptr = y.Csr.row_ptr
      && x.Csr.col_idx = y.Csr.col_idx
      &&
      match (x.Csr.values, y.Csr.values) with
      | None, None -> true
      | Some v, Some w -> bits_equal v w
      | _ -> false)
  | _ -> false

let timing = Executor.Simulate Granii_hw.Hw_profile.a100

(* ---- workspace unit tests ---- *)

let test_workspace_reuse () =
  let ws = Workspace.create () in
  let some = Some ws in
  let a = Workspace.alloc some 100 in
  check_true "alloc zero-fills" (Array.for_all (( = ) 0.) a);
  a.(0) <- 42.;
  Workspace.give_back some a;
  let b = Workspace.alloc some 100 in
  check_true "same buffer reused after give_back" (a == b);
  check_true "reused buffer zero-filled again" (b.(0) = 0.);
  let c = Workspace.alloc_uninit some 100 in
  check_true "distinct buffer while first is issued" (not (c == b));
  Workspace.reclaim ws;
  let d = Workspace.alloc_uninit some 100 in
  let e = Workspace.alloc_uninit some 100 in
  check_true "reclaim returns every issued buffer"
    ((d == b || d == c) && (e == b || e == c) && not (d == e));
  let s = Workspace.stats ws in
  check_int "issued tracked" 2 s.Workspace.issued;
  check_int "issued words tracked" 200 s.Workspace.issued_words

let test_workspace_exact_classes () =
  let ws = Workspace.create () in
  let some = Some ws in
  let a = Workspace.alloc_uninit some 64 in
  Workspace.give_back some a;
  let b = Workspace.alloc_uninit some 65 in
  check_true "a 65-word ask never returns a 64-word buffer" (not (a == b));
  check_int "65-word buffer has exact length" 65 (Array.length b)

let test_workspace_foreign_buffer () =
  let ws = Workspace.create () in
  let some = Some ws in
  let foreign = Array.make 32 1. in
  Workspace.give_back some foreign;
  let a = Workspace.alloc_uninit some 32 in
  check_true "give_back is a no-op on buffers the ws did not issue"
    (not (a == foreign));
  (* None workspace: plain allocation, give_back is a no-op *)
  let plain = Workspace.alloc None 8 in
  Workspace.give_back None plain;
  check_true "None path allocates fresh zeroed arrays"
    (Array.for_all (( = ) 0.) plain)

let test_workspace_alloc_fill () =
  let ws = Workspace.create () in
  let some = Some ws in
  let a = Workspace.alloc_fill some 3.5 10 in
  check_true "alloc_fill fills" (Array.for_all (( = ) 3.5) a);
  Workspace.give_back some a;
  let b = Workspace.alloc_fill some (-1.) 10 in
  check_true "refilled on reuse" (b == a && Array.for_all (( = ) (-1.)) b)

(* ---- liveness unit tests ---- *)

let test_liveness_gcn () =
  let _, compiled = compile_model Mp.Mp_models.gcn in
  List.iter
    (fun (c : Codegen.ccand) ->
      let plan = c.Codegen.plan in
      let l = Liveness.analyze plan in
      let n = List.length plan.Plan.steps in
      (match Liveness.output l with
      | Some o ->
          check_true "output index in range" (o >= 0 && o < n);
          check_int "output never dies" max_int (Liveness.last_use l o)
      | None -> Alcotest.fail "computed plan must have a computed output");
      (* every non-output value's last use is a later step (or itself when
         unread), and it appears in exactly that step's dead list *)
      let seen = Array.make n 0 in
      for j = 0 to n - 1 do
        List.iter
          (fun i ->
            seen.(i) <- seen.(i) + 1;
            check_true "dead value's last_use is the freeing step"
              (Liveness.last_use l i = j || (Liveness.last_use l i = -1 && i = j)))
          (Liveness.dead_after l j)
      done;
      let dead_total = Array.fold_left ( + ) 0 seen in
      check_int "every non-output value dies exactly once" (n - 1) dead_total;
      check_true "max_live is positive and bounded"
        (Liveness.max_live l >= 1 && Liveness.max_live l <= n))
    compiled.Codegen.candidates

(* ---- differential: workspace vs allocating execution ---- *)

let test_workspace_bitwise (m : Mp.Mp_ast.model) () =
  let graph = small_graph () in
  let low, compiled = compile_model m in
  let _, bindings = setup_bindings ~k_in:9 low graph in
  let ws = Workspace.create () in
  List.iter
    (fun (c : Codegen.ccand) ->
      let plan = c.Codegen.plan in
      let reference = Executor.exec ~engine:(Engine.default ()) ~timing ~graph ~bindings plan in
      let with_ws = Executor.exec
          ~engine:(Engine.create_exn ~workspace:ws Engine.default_config)
          ~timing ~graph ~bindings plan in
      check_true
        (Printf.sprintf "%s: workspace output bitwise equal" plan.Plan.name)
        (value_bits_equal reference.Executor.output with_ws.Executor.output);
      (* liveness recycling drops intermediates but must not change the
         output *)
      let recycled =
        Executor.exec
          ~engine:
            (Engine.create_exn ~workspace:ws
               { Engine.default_config with keep_intermediates = false })
          ~timing ~graph ~bindings plan
      in
      check_true
        (Printf.sprintf "%s: recycled output bitwise equal" plan.Plan.name)
        (value_bits_equal reference.Executor.output recycled.Executor.output);
      check_true "recycling drops intermediates"
        (recycled.Executor.intermediates = []);
      (* steady-state driver, fresh and warm arena *)
      let iterated =
        Executor.exec_iterations
          ~engine:(Engine.create_exn ~workspace:ws Engine.default_config)
          ~timing ~graph ~bindings ~iterations:3 plan
      in
      check_true
        (Printf.sprintf "%s: exec_iterations output bitwise equal" plan.Plan.name)
        (value_bits_equal reference.Executor.output iterated.Executor.output))
    compiled.Codegen.candidates

let test_run_iterations_no_ws () =
  let graph = small_graph () in
  let low, compiled = compile_model Mp.Mp_models.gcn in
  let _, bindings = setup_bindings ~k_in:9 low graph in
  let c = List.hd compiled.Codegen.candidates in
  let reference = Executor.exec ~engine:(Engine.default ()) ~timing ~graph ~bindings
      c.Codegen.plan in
  let iterated =
    Executor.exec_iterations ~engine:(Engine.default ()) ~timing ~graph
      ~bindings ~iterations:2 c.Codegen.plan
  in
  check_true "exec_iterations without workspace matches exec"
    (value_bits_equal reference.Executor.output iterated.Executor.output);
  check_true "iterations must be positive"
    (try
       ignore
         (Executor.exec_iterations ~engine:(Engine.default ()) ~timing ~graph
            ~bindings ~iterations:0 c.Codegen.plan);
       false
     with Invalid_argument _ -> true)

(* A reused buffer must never leak one run's data into the next: execute
   with two different inputs alternately on one arena and check each result
   against the allocating path. *)
let test_no_stale_aliasing () =
  let graph = small_graph ~seed:7 () in
  let low, compiled = compile_model Mp.Mp_models.gcn in
  let _, bindings1 = setup_bindings ~seed:11 ~k_in:9 low graph in
  let _, bindings2 = setup_bindings ~seed:23 ~k_in:9 low graph in
  let ws = Workspace.create () in
  let c = List.hd compiled.Codegen.candidates in
  let plan = c.Codegen.plan in
  let ref1 =
    Executor.exec ~engine:(Engine.default ()) ~timing ~graph
      ~bindings:bindings1 plan
  in
  let ref2 =
    Executor.exec ~engine:(Engine.default ()) ~timing ~graph
      ~bindings:bindings2 plan
  in
  for _ = 1 to 3 do
    let ews () = Engine.create_exn ~workspace:ws Engine.default_config in
    let r1 =
      Executor.exec ~engine:(ews ()) ~timing ~graph ~bindings:bindings1 plan
    in
    check_true "input 1 result uncontaminated"
      (value_bits_equal ref1.Executor.output r1.Executor.output);
    let r2 =
      Executor.exec ~engine:(ews ()) ~timing ~graph ~bindings:bindings2 plan
    in
    check_true "input 2 result uncontaminated"
      (value_bits_equal ref2.Executor.output r2.Executor.output)
  done;
  let s = Workspace.stats ws in
  check_true "arena was actually reused (hits observed)" (s.Workspace.hits > 0)

(* The previous run's output physically lives in the arena: the next run on
   the same workspace recycles it. This documents the invalidation contract
   (copy anything you keep). *)
let test_reclaim_invalidates () =
  let graph = small_graph () in
  let low, compiled = compile_model Mp.Mp_models.gcn in
  let _, bindings = setup_bindings ~k_in:9 low graph in
  let ws = Workspace.create () in
  let c = List.hd compiled.Codegen.candidates in
  let ews () = Engine.create_exn ~workspace:ws Engine.default_config in
  let r1 = Executor.exec ~engine:(ews ()) ~timing ~graph ~bindings c.Codegen.plan in
  let d1 = match r1.Executor.output with
    | Executor.Vdense d -> d
    | _ -> Alcotest.fail "dense expected"
  in
  let r2 = Executor.exec ~engine:(ews ()) ~timing ~graph ~bindings c.Codegen.plan in
  let d2 = match r2.Executor.output with
    | Executor.Vdense d -> d
    | _ -> Alcotest.fail "dense expected"
  in
  check_true "second run reuses the first run's output buffer"
    (d1.Dense.data == d2.Dense.data)

(* ---- shared-subtree cache ---- *)

let test_cache_hits_and_equality () =
  let graph = small_graph () in
  let low, compiled = compile_model Mp.Mp_models.gcn in
  let _, bindings = setup_bindings ~k_in:9 low graph in
  let cache = Engine.cache_create () in
  List.iter
    (fun (c : Codegen.ccand) ->
      let plan = c.Codegen.plan in
      let reference = Executor.exec ~engine:(Engine.default ()) ~timing ~graph ~bindings plan in
      let cached =
        Executor.exec ~engine:(Engine.create_exn ~cache Engine.default_config)
          ~timing ~graph ~bindings plan
      in
      check_true
        (Printf.sprintf "%s: cached output bitwise equal" plan.Plan.name)
        (value_bits_equal reference.Executor.output cached.Executor.output))
    compiled.Codegen.candidates;
  let hits, misses = Engine.cache_stats cache in
  check_true "shared subtrees were actually served from the cache" (hits > 0);
  check_true "distinct subtrees were computed once each" (misses > 0)

let test_cache_timing_transparent () =
  (* In simulate mode a cache hit must charge the same deterministic time
     the step would have been charged uncached. *)
  let graph = small_graph () in
  let low, compiled = compile_model Mp.Mp_models.gcn in
  let _, bindings = setup_bindings ~k_in:9 low graph in
  let cache = Engine.cache_create () in
  List.iter
    (fun (c : Codegen.ccand) ->
      let plan = c.Codegen.plan in
      let plain =
        Executor.exec ~seed:5 ~engine:(Engine.default ()) ~timing ~graph
          ~bindings plan
      in
      let cached =
        Executor.exec ~seed:5
          ~engine:(Engine.create_exn ~cache Engine.default_config)
          ~timing ~graph ~bindings plan
      in
      check_float ~eps:1e-12
        (Printf.sprintf "%s: setup time unchanged by caching" plan.Plan.name)
        plain.Executor.setup_time cached.Executor.setup_time;
      check_float ~eps:1e-12
        (Printf.sprintf "%s: iteration time unchanged by caching" plan.Plan.name)
        plain.Executor.iteration_time cached.Executor.iteration_time)
    compiled.Codegen.candidates

let test_cache_workspace_legal () =
  (* workspace + cache is legal when intermediates are kept: cache entries
     are epoch-pinned (copied out of the arena on insert), so arena reuse
     across runs cannot corrupt them. *)
  let graph = small_graph () in
  let low, compiled = compile_model Mp.Mp_models.gcn in
  let _, bindings = setup_bindings ~k_in:9 low graph in
  let c = List.hd compiled.Codegen.candidates in
  let plan = c.Codegen.plan in
  let reference = Executor.exec ~engine:(Engine.default ()) ~timing ~graph ~bindings plan in
  let engine =
    Engine.create_exn
      { Engine.default_config with workspace = true; cache = true }
  in
  ignore (Executor.exec ~engine ~timing ~graph ~bindings plan);
  let second = Executor.exec ~engine ~timing ~graph ~bindings plan in
  let hits, _ =
    match Engine.cache engine with
    | Some cc -> Engine.cache_stats cc
    | None -> (0, 0)
  in
  check_true "second run is served from the cache" (hits > 0);
  check_true "workspace+cache output bitwise equal to the plain run"
    (value_bits_equal reference.Executor.output second.Executor.output)

let test_cache_workspace_discard_rejected () =
  (* the one still-illegal corner: dropping intermediates while both a
     workspace and a cache are on (reclaimed buffers could alias pinned
     entries' producers mid-run) is rejected with a typed error. *)
  check_true "workspace + cache + drop is rejected with a typed error"
    (match
       Engine.create
         { Engine.default_config with
           workspace = true;
           cache = true;
           keep_intermediates = false }
     with
    | Error Engine.Workspace_cache_discard -> true
    | Ok _ | Error _ -> false)

let test_selector_measure () =
  let graph = small_graph () in
  let low, compiled = compile_model Mp.Mp_models.gcn in
  let env, bindings = setup_bindings ~k_in:9 low graph in
  let ranked, (hits, misses) =
    Selector.measure ~timing ~graph ~bindings ~env ~iterations:100 compiled
  in
  check_true "at least one candidate measured" (ranked <> []);
  let costs = List.map snd ranked in
  check_true "sorted cheapest first"
    (List.for_all2 ( <= )
       (List.filteri (fun i _ -> i < List.length costs - 1) costs)
       (List.tl costs));
  check_true "sweep shares subtrees across candidates" (hits > 0 && misses > 0)

(* ---- dense kernel paths exercised with a workspace ---- *)

let test_tiled_gemm_bitwise () =
  (* shapes straddling the blocking threshold and panel boundaries *)
  List.iter
    (fun (m, k, n) ->
      let a = Dense.random ~seed:(m + k) m k and b = Dense.random ~seed:n k n in
      let plain = Dense.matmul_unblocked a b in
      let tiled = Dense.matmul a b in
      check_true
        (Printf.sprintf "gemm %dx%dx%d tiled = untiled bitwise" m k n)
        (bits_equal plain.Dense.data tiled.Dense.data);
      let ws = Workspace.create () in
      let with_ws = Dense.matmul ~ws a b in
      check_true
        (Printf.sprintf "gemm %dx%dx%d ws path bitwise" m k n)
        (bits_equal plain.Dense.data with_ws.Dense.data))
    [ (5, 7, 3); (37, 41, 53); (64, 64, 64); (130, 17, 64); (96, 200, 99) ]

let test_tiled_sparse_bitwise () =
  let graph = G.Generators.erdos_renyi ~seed:9 ~n:120 ~avg_degree:6. () in
  let a = G.Graph.with_self_loops graph in
  let aw = Granii_sparse.Sparse_ops.scale_rows (G.Graph.norm_inv_sqrt graph) a in
  let n = G.Graph.n_nodes graph in
  List.iter
    (fun k ->
      let h = Dense.random ~seed:k n k in
      let spmm_ref = Granii_sparse.Spmm.run a h in
      let spmm_tiled = Granii_sparse.Spmm.run ~tile_k:7 a h in
      check_true
        (Printf.sprintf "spmm k=%d tiled bitwise" k)
        (bits_equal spmm_ref.Dense.data spmm_tiled.Dense.data);
      let sddmm_ref = Granii_sparse.Sddmm.dot_rows aw h h in
      let sddmm_tiled = Granii_sparse.Sddmm.dot_rows ~tile_k:7 aw h h in
      check_true
        (Printf.sprintf "sddmm k=%d tiled bitwise" k)
        (match (sddmm_ref.Csr.values, sddmm_tiled.Csr.values) with
        | Some v, Some w -> bits_equal v w
        | _ -> false))
    [ 4; 13; 32 ]

let model_case m =
  Alcotest.test_case
    (Printf.sprintf "%s workspace bitwise" m.Mp.Mp_ast.name)
    `Quick (test_workspace_bitwise m)

let suite =
  [ Alcotest.test_case "workspace reuse & reclaim" `Quick test_workspace_reuse;
    Alcotest.test_case "workspace exact size classes" `Quick test_workspace_exact_classes;
    Alcotest.test_case "workspace foreign buffers" `Quick test_workspace_foreign_buffer;
    Alcotest.test_case "workspace alloc_fill" `Quick test_workspace_alloc_fill;
    Alcotest.test_case "liveness on GCN candidates" `Quick test_liveness_gcn ]
  @ List.map model_case Mp.Mp_models.all
  @ [ Alcotest.test_case "run_iterations without workspace" `Quick test_run_iterations_no_ws;
      Alcotest.test_case "no stale aliasing across runs" `Quick test_no_stale_aliasing;
      Alcotest.test_case "reclaim invalidates previous output" `Quick test_reclaim_invalidates;
      Alcotest.test_case "subtree cache hits & equality" `Quick test_cache_hits_and_equality;
      Alcotest.test_case "subtree cache timing-transparent" `Quick test_cache_timing_transparent;
      Alcotest.test_case "workspace + cache legal (epoch-pinned)" `Quick
        test_cache_workspace_legal;
      Alcotest.test_case "workspace + cache + drop rejected" `Quick
        test_cache_workspace_discard_rejected;
      Alcotest.test_case "selector measure sweep" `Quick test_selector_measure;
      Alcotest.test_case "tiled gemm bitwise" `Quick test_tiled_gemm_bitwise;
      Alcotest.test_case "tiled sparse kernels bitwise" `Quick test_tiled_sparse_bitwise ]
