(* The engine layer: config legality as typed errors, describe/parse
   round-trips, pass-pipeline idempotence and tracing, and the differential
   guarantee — every legal engine configuration executes every model
   bitwise-identically to the seed (plain) path. *)

open Granii_core
open Test_util
module Dense = Granii_tensor.Dense
module Csr = Granii_sparse.Csr
module G = Granii_graph
module Reorder = G.Reorder
module Mp = Granii_mp
module Gnn = Granii_gnn

let bits_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun i x ->
          if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then ok := false)
        a;
      !ok)

let value_bits_equal (a : Executor.value) (b : Executor.value) =
  match (a, b) with
  | Executor.Vdense x, Executor.Vdense y ->
      x.Dense.rows = y.Dense.rows && x.Dense.cols = y.Dense.cols
      && bits_equal x.Dense.data y.Dense.data
  | Executor.Vdiag x, Executor.Vdiag y -> bits_equal x y
  | Executor.Vsparse x, Executor.Vsparse y -> (
      x.Csr.row_ptr = y.Csr.row_ptr && x.Csr.col_idx = y.Csr.col_idx
      &&
      match (x.Csr.values, y.Csr.values) with
      | None, None -> true
      | Some v, Some w -> bits_equal v w
      | _ -> false)
  | _ -> false

let compile_model (m : Mp.Mp_ast.model) =
  let low = Mp.Lower.lower m in
  let compiled, _ =
    Granii.compile ~name:m.Mp.Mp_ast.name
      ~degree_leaves:(Mp.Lower.degree_leaves low ~binned:false)
      low.Mp.Lower.ir
  in
  (low, compiled)

let setup_bindings ?(seed = 11) ~k_in ~k_out low graph =
  let n = G.Graph.n_nodes graph in
  let env = { Dim.n; nnz = G.Graph.n_edges graph + n; k_in; k_out } in
  let params = Gnn.Layer.init_params ~seed ~env low in
  let h = Dense.random ~seed:(seed + 1) n k_in in
  (env, Gnn.Layer.bindings ~graph ~h params)

let non_default_localities =
  List.filter (fun c -> not (Locality.is_default c)) Locality.all_configs

(* ---- legality: every illegal config is a typed error ---- *)

let test_illegal_typed () =
  let expect name cfg pred =
    match Engine.create cfg with
    | Ok e ->
        Engine.shutdown e;
        Alcotest.fail (name ^ ": expected a typed error, got Ok")
    | Error e ->
        check_true (name ^ ": the right error constructor") (pred e);
        check_true
          (name ^ ": error_to_string is meaningful")
          (String.length (Engine.error_to_string e) > 0)
    | exception exn ->
        Alcotest.fail
          (Printf.sprintf "%s: create leaked exception %s instead of Error"
             name (Printexc.to_string exn))
  in
  List.iter
    (fun t ->
      expect
        (Printf.sprintf "threads=%d" t)
        { Engine.default_config with threads = t }
        (function Engine.Invalid_threads n -> n = t | _ -> false))
    [ 0; -1; -8 ];
  List.iter
    (fun q ->
      expect
        (Printf.sprintf "queue_bound=%d" q)
        { Engine.default_config with queue_bound = q }
        (function Engine.Invalid_queue_bound n -> n = q | _ -> false))
    [ 0; -1 ];
  List.iter
    (fun w ->
      expect
        (Printf.sprintf "batch_window=%d" w)
        { Engine.default_config with batch_window = w }
        (function Engine.Invalid_batch_window n -> n = w | _ -> false))
    [ -1; -250 ];
  List.iter
    (fun locality ->
      expect
        ("cache + " ^ Locality.config_to_string locality)
        { Engine.default_config with cache = true; locality }
        (function Engine.Cache_with_locality c -> c = locality | _ -> false))
    non_default_localities;
  expect "workspace + cache + drop"
    { Engine.default_config with
      workspace = true;
      cache = true;
      keep_intermediates = false }
    (function Engine.Workspace_cache_discard -> true | _ -> false)

(* ---- every legal config round-trips through describe ---- *)

let legal_grid =
  List.concat_map
    (fun (queue_bound, batch_window) ->
      List.concat_map
        (fun threads ->
          List.concat_map
            (fun workspace ->
              List.concat_map
                (fun cache ->
                  List.concat_map
                    (fun keep_intermediates ->
                      List.concat_map
                        (fun locality ->
                          List.filter_map
                            (fun calibration ->
                              let cfg =
                                { Engine.default_config with
                                  threads;
                                  workspace;
                                  cache;
                                  locality;
                                  keep_intermediates;
                                  queue_bound;
                                  batch_window;
                                  calibration }
                              in
                              match Engine.create cfg with
                              | Ok e ->
                                  Engine.shutdown e;
                                  Some cfg
                              | Error _ -> None)
                            [ Cost_oracle.Off; Cost_oracle.Affine;
                              Cost_oracle.Refit ])
                        Locality.all_configs)
                    [ true; false ])
                [ false; true ])
            [ false; true ])
        [ 1; 2 ])
    (* the serving axes (PR 6): admission-queue bound and batch window *)
    [ (64, 0); (1, 250); (512, 5000) ]

let test_describe_roundtrip () =
  check_true "the legal grid is non-trivial" (List.length legal_grid > 10);
  List.iter
    (fun cfg ->
      let s = Engine.describe_config cfg in
      match Engine.config_of_string s with
      | Ok cfg' ->
          check_true (s ^ " round-trips exactly") (cfg = cfg')
      | Error msg -> Alcotest.fail (s ^ " failed to parse back: " ^ msg))
    legal_grid;
  (* the empty / "default" specs mean the default config *)
  check_true "empty spec is the default"
    (Engine.config_of_string "" = Ok Engine.default_config);
  check_true "'default' spec is the default"
    (Engine.config_of_string "default" = Ok Engine.default_config);
  check_true "junk keys are a parse error"
    (match Engine.config_of_string "turbo=yes" with
    | Error _ -> true
    | Ok _ -> false);
  (* the serving axes parse, and reject non-integers *)
  check_true "serving axes parse"
    (match Engine.config_of_string "queue_bound=128,batch_window=500" with
    | Ok cfg ->
        cfg.Engine.queue_bound = 128 && cfg.Engine.batch_window = 500
    | Error _ -> false);
  List.iter
    (fun spec ->
      check_true (spec ^ " is a parse error")
        (match Engine.config_of_string spec with
        | Error _ -> true
        | Ok _ -> false))
    [ "queue_bound=lots"; "batch_window=soon" ];
  (* the calibration axis (PR 9): the oracle's online-correction policy *)
  check_true "calibration=affine parses"
    (match Engine.config_of_string "calibration=affine" with
    | Ok cfg -> cfg.Engine.calibration = Cost_oracle.Affine
    | Error _ -> false);
  check_true "calibration=refit parses"
    (match Engine.config_of_string "calibration=refit" with
    | Ok cfg -> cfg.Engine.calibration = Cost_oracle.Refit
    | Error _ -> false);
  check_true "unknown calibration policy is a parse error"
    (match Engine.config_of_string "calibration=sometimes" with
    | Error msg ->
        let has_sub sub s =
          let n = String.length sub and m = String.length s in
          let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
          go 0
        in
        has_sub "off|affine|refit" msg
    | Ok _ -> false);
  (* the format axis (PR 7): the grid auto-widened over bsr/cbm, the new
     names parse, and an unknown format gets the typed Invalid_format
     message rather than generic spec noise *)
  List.iter
    (fun format ->
      check_true
        (Locality.format_to_string format ^ " configs are in the legal grid")
        (List.exists
           (fun c -> c.Engine.locality.Locality.format = format)
           legal_grid))
    Locality.all_formats;
  check_true "locality=degree+bsr parses"
    (match Engine.config_of_string "locality=degree+bsr" with
    | Ok cfg ->
        cfg.Engine.locality
        = { Locality.strategy = Reorder.Degree_sort; format = Locality.Bsr }
    | Error _ -> false);
  check_true "unknown format is the typed Invalid_format error"
    (match Engine.config_of_string "locality=identity+xyz" with
    | Error msg ->
        contains msg "unknown sparse format"
        && String.equal msg
             (Engine.error_to_string (Engine.Invalid_format "xyz"))
    | Ok _ -> false)

(* ---- pass pipeline: idempotence and ordering ---- *)

let prepared_plan () =
  let _, compiled = compile_model (Mp.Mp_models.find "gcn") in
  (List.hd compiled.Codegen.candidates).Codegen.plan

let engines_with_distinct_passes () =
  [ ("default", Engine.default ());
    ( "cache",
      Engine.create_exn { Engine.default_config with cache = true } );
    ( "locality",
      Engine.create_exn
        { Engine.default_config with
          locality = List.hd non_default_localities } );
    ( "ws+drop",
      Engine.create_exn
        { Engine.default_config with
          workspace = true;
          keep_intermediates = false } ) ]

let test_pass_idempotent () =
  let plan = prepared_plan () in
  List.iter
    (fun (ename, engine) ->
      List.iter
        (fun (pass : Pass.pass) ->
          let once = Pass.apply engine pass (Pass.base plan) in
          let twice = Pass.apply engine pass once in
          check_true
            (Printf.sprintf "%s under %s engine is idempotent" pass.Pass.name
               ename)
            (once = twice))
        Pass.all;
      (* the full pipeline is idempotent too: re-applying every pass to a
         prepared plan changes nothing *)
      let prep = Pass.prepare engine plan in
      let again =
        List.fold_left (fun p pass -> Pass.apply engine pass p) prep Pass.all
      in
      check_true
        (Printf.sprintf "full pipeline under %s engine is idempotent" ename)
        (prep = again))
    (engines_with_distinct_passes ())

let test_pass_trace () =
  let plan = prepared_plan () in
  let expected = function
    | "default" -> [ "lowering" ]
    | "cache" -> [ "lowering"; "cache-keying" ]
    | "locality" -> [ "lowering"; "locality-layout" ]
    | "ws+drop" -> [ "lowering"; "liveness" ]
    | _ -> assert false
  in
  List.iter
    (fun (ename, engine) ->
      let prep = Pass.prepare engine plan in
      check_true
        (Printf.sprintf "%s engine: trace is %s" ename
           (String.concat "," (expected ename)))
        (prep.Pass.trace = expected ename))
    (engines_with_distinct_passes ())

let test_trace_in_report () =
  let graph = G.Generators.erdos_renyi ~seed:3 ~n:40 ~avg_degree:4. () in
  let model = Mp.Mp_models.find "gcn" in
  let low, compiled = compile_model model in
  let _, bindings = setup_bindings ~k_in:9 ~k_out:7 low graph in
  let plan = (List.hd compiled.Codegen.candidates).Codegen.plan in
  let engine =
    Engine.create_exn { Engine.default_config with cache = true }
  in
  let r =
    Executor.exec ~engine ~timing:Executor.Measure ~graph ~bindings plan
  in
  check_true "report records the applied passes in order"
    (r.Executor.trace = [ "lowering"; "cache-keying" ])

let test_all_disabled_is_seed () =
  (* with every pass disabled the executor degenerates to the seed path:
     bitwise-identical outputs on all three models *)
  let graph = G.Generators.barabasi_albert ~seed:5 ~n:60 ~m:3 () in
  let disable = List.map (fun (p : Pass.pass) -> p.Pass.name) Pass.all in
  List.iter
    (fun name ->
      let model = Mp.Mp_models.find name in
      let low, compiled = compile_model model in
      let _, bindings = setup_bindings ~k_in:9 ~k_out:7 low graph in
      List.iter
        (fun (c : Codegen.ccand) ->
          let reference =
            Executor.exec ~engine:(Engine.default ()) ~timing:Executor.Measure
              ~graph ~bindings c.Codegen.plan
          in
          let bare =
            Executor.exec ~engine:(Engine.default ()) ~disable
              ~timing:Executor.Measure ~graph ~bindings c.Codegen.plan
          in
          check_true
            (Printf.sprintf "%s/%s: all-passes-disabled is the seed path"
               name c.Codegen.plan.Plan.name)
            (value_bits_equal reference.Executor.output bare.Executor.output);
          check_true "no pass in the trace" (bare.Executor.trace = []))
        compiled.Codegen.candidates)
    [ "gcn"; "gat"; "gin" ]

(* ---- the differential acceptance grid ----

   Every legal engine configuration must execute GCN, GAT and GIN
   bitwise-identically to the pre-refactor (plain, optionless) path.
   GIN's Sparse_add makes entry order part of the output, so a permuted
   layout legitimately produces a structurally different (equal-as-math)
   sparse sum — non-default localities are skipped for it, exactly as the
   locality suite always has. *)

let test_differential_grid () =
  let graph = G.Generators.erdos_renyi ~seed:17 ~n:50 ~avg_degree:5. () in
  List.iter
    (fun name ->
      let model = Mp.Mp_models.find name in
      let low, compiled = compile_model model in
      let _, bindings = setup_bindings ~k_in:9 ~k_out:7 low graph in
      let grid =
        List.filter
          (fun cfg ->
            cfg.Engine.threads = 1
            (* the serving axes are admission parameters with no effect on
               execution — one representative point keeps the grid fast *)
            && cfg.Engine.queue_bound = Engine.default_config.Engine.queue_bound
            && cfg.Engine.batch_window
               = Engine.default_config.Engine.batch_window
            (* calibration shapes prediction, never execution; the grid pins
               the acceptance-gated [Off] arm and stays fast *)
            && cfg.Engine.calibration = Cost_oracle.Off
            && (name <> "gin" || Locality.is_default cfg.Engine.locality))
          legal_grid
      in
      List.iter
        (fun (c : Codegen.ccand) ->
          let reference =
            Executor.exec ~engine:(Engine.default ()) ~timing:Executor.Measure
              ~graph ~bindings c.Codegen.plan
          in
          List.iter
            (fun cfg ->
              let engine = Engine.create_exn cfg in
              (* two runs so a cache-enabled engine also serves hits *)
              ignore
                (Executor.exec ~engine ~timing:Executor.Measure ~graph
                   ~bindings c.Codegen.plan);
              let r =
                Executor.exec ~engine ~timing:Executor.Measure ~graph
                  ~bindings c.Codegen.plan
              in
              check_true
                (Printf.sprintf "%s/%s under %s bitwise" name
                   c.Codegen.plan.Plan.name
                   (Engine.describe_config cfg))
                (value_bits_equal reference.Executor.output r.Executor.output);
              Engine.shutdown engine)
            grid)
        compiled.Codegen.candidates)
    [ "gcn"; "gat"; "gin" ]

let test_multicore_engine_bitwise () =
  (* one spawned-pool configuration, exercised separately so the grid above
     stays single-threaded and fast *)
  let graph = G.Generators.erdos_renyi ~seed:21 ~n:64 ~avg_degree:6. () in
  let model = Mp.Mp_models.find "gcn" in
  let low, compiled = compile_model model in
  let _, bindings = setup_bindings ~k_in:8 ~k_out:8 low graph in
  let plan = (List.hd compiled.Codegen.candidates).Codegen.plan in
  let reference =
    Executor.exec ~engine:(Engine.default ()) ~timing:Executor.Measure ~graph
      ~bindings plan
  in
  let engine = Engine.create_exn { Engine.default_config with threads = 2 } in
  let r =
    Executor.exec ~engine ~timing:Executor.Measure ~graph ~bindings plan
  in
  Engine.shutdown engine;
  check_true "threads=2 engine output bitwise"
    (value_bits_equal reference.Executor.output r.Executor.output)

(* ---- cache graph fingerprint ---- *)

let test_cache_graph_mismatch () =
  let model = Mp.Mp_models.find "gcn" in
  let low, compiled = compile_model model in
  let plan = (List.hd compiled.Codegen.candidates).Codegen.plan in
  let g1 = G.Generators.erdos_renyi ~seed:1 ~n:30 ~avg_degree:4. () in
  let g2 = G.Generators.erdos_renyi ~seed:2 ~n:31 ~avg_degree:4. () in
  let _, b1 = setup_bindings ~k_in:9 ~k_out:7 low g1 in
  let _, b2 = setup_bindings ~k_in:9 ~k_out:7 low g2 in
  let engine =
    Engine.create_exn { Engine.default_config with cache = true }
  in
  ignore
    (Executor.exec ~engine ~timing:Executor.Measure ~graph:g1 ~bindings:b1
       plan);
  check_true "reusing a bound cache on a different graph is a typed error"
    (try
       ignore
         (Executor.exec ~engine ~timing:Executor.Measure ~graph:g2
            ~bindings:b2 plan);
       false
     with Engine.Error (Engine.Cache_graph_mismatch _ as e) ->
       String.length (Engine.error_to_string e) > 0);
  (* the same graph keeps working afterwards *)
  ignore
    (Executor.exec ~engine ~timing:Executor.Measure ~graph:g1 ~bindings:b1
       plan);
  (* equal node counts with different structure still mismatch — the
     fingerprint hashes the adjacency arrays, not just the dimensions *)
  let g3 = G.Generators.erdos_renyi ~seed:9 ~n:30 ~avg_degree:4. () in
  let _, b3 = setup_bindings ~k_in:9 ~k_out:7 low g3 in
  check_true "same-size different-structure graph is still a mismatch"
    (try
       ignore
         (Executor.exec ~engine ~timing:Executor.Measure ~graph:g3
            ~bindings:b3 plan);
       false
     with Engine.Error (Engine.Cache_graph_mismatch _) -> true)

(* ---- injected resources normalize the stored config ---- *)

let test_injected_resources_normalize () =
  let e = Engine.default () in
  check_true "bare default engine is the default config"
    (Engine.config e = Engine.default_config);
  let ws = Granii_tensor.Workspace.create () in
  let e =
    Engine.create_exn ~workspace:ws
      { Engine.default_config with keep_intermediates = false }
  in
  check_true "injected workspace forces the axis on"
    (Engine.config e).Engine.workspace;
  check_true "liveness policy reflected"
    (not (Engine.config e).Engine.keep_intermediates);
  check_true "injected workspace is the one stored"
    (match Engine.workspace e with Some w -> w == ws | None -> false)

let suite =
  [ Alcotest.test_case "illegal configs are typed errors" `Quick
      test_illegal_typed;
    Alcotest.test_case "legal configs round-trip describe" `Quick
      test_describe_roundtrip;
    Alcotest.test_case "passes idempotent" `Quick test_pass_idempotent;
    Alcotest.test_case "pass trace per engine" `Quick test_pass_trace;
    Alcotest.test_case "trace surfaces in the report" `Quick
      test_trace_in_report;
    Alcotest.test_case "all passes disabled = seed path" `Quick
      test_all_disabled_is_seed;
    Alcotest.test_case "differential grid vs seed path" `Quick
      test_differential_grid;
    Alcotest.test_case "multicore engine bitwise" `Quick
      test_multicore_engine_bitwise;
    Alcotest.test_case "cache graph fingerprint" `Quick
      test_cache_graph_mismatch;
    Alcotest.test_case "injected resources normalize config" `Quick
      test_injected_resources_normalize ]
