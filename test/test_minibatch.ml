(* Mini-batch training (lib/graph Sampling.layered_fanout, lib/gnn Loader +
   Trainer.train_minibatch).

   The load-bearing property is the pipelining contract: batch content is a
   pure function of (seed, masked node set, fanouts, batch_size, batch
   index), so the pipelined loader arm must reproduce the sequential arm
   bitwise — checked here as a differential over engine configurations
   (threads 1/2, workspace on/off). The sampler is pinned separately
   (determinism in seed, compact renumbering against the Hashtbl-based
   induced_subgraph oracle, fanout >= degree and isolated-seed edges), and
   the bucketed plan-cache keying gets its regression: two structurally
   similar mini-batches share a key, a different size family does not. *)

open Granii_core
open Test_util
module Dense = Granii_tensor.Dense
module Prng = Granii_tensor.Prng
module Csr = Granii_sparse.Csr
module G = Granii_graph
module Mp = Granii_mp
module Gnn = Granii_gnn

let graph () = G.Generators.rmat ~seed:3 ~scale:8 ~edge_factor:8 ()

let adj (g : G.Graph.t) = g.G.Graph.adj

let graph_bits_equal (a : G.Graph.t) (b : G.Graph.t) =
  (adj a).Csr.row_ptr = (adj b).Csr.row_ptr
  && (adj a).Csr.col_idx = (adj b).Csr.col_idx

(* ---- sampler: determinism and seed sensitivity ---- *)

let test_layered_deterministic () =
  let g = graph () in
  let seeds = G.Sampling.random_nodes ~seed:4 g 40 in
  let s1 = G.Sampling.layered_fanout ~seed:9 ~fanouts:[ 5; 3 ] ~seeds g in
  let s2 = G.Sampling.layered_fanout ~seed:9 ~fanouts:[ 5; 3 ] ~seeds g in
  check_true "same seed: same subgraph"
    (graph_bits_equal s1.G.Sampling.subgraph s2.G.Sampling.subgraph);
  check_true "same seed: same node map"
    (s1.G.Sampling.nodes = s2.G.Sampling.nodes);
  check_int "seeds first" 40 s1.G.Sampling.n_seeds;
  Array.iteri
    (fun i oi -> check_int "seed order preserved" seeds.(i) oi)
    (Array.sub s1.G.Sampling.nodes 0 40);
  let s3 = G.Sampling.layered_fanout ~seed:10 ~fanouts:[ 5; 3 ] ~seeds g in
  check_true "different seed: different draw"
    (not (graph_bits_equal s1.G.Sampling.subgraph s3.G.Sampling.subgraph)
    || s1.G.Sampling.nodes <> s3.G.Sampling.nodes);
  (* CSR invariants of the sampled subgraph *)
  let sub = adj s1.G.Sampling.subgraph in
  let sorted = ref true and in_range = ref true in
  let k = Array.length s1.G.Sampling.nodes in
  for r = 0 to k - 1 do
    for p = sub.Csr.row_ptr.(r) to sub.Csr.row_ptr.(r + 1) - 1 do
      if p > sub.Csr.row_ptr.(r) && sub.Csr.col_idx.(p - 1) >= sub.Csr.col_idx.(p)
      then sorted := false;
      if sub.Csr.col_idx.(p) < 0 || sub.Csr.col_idx.(p) >= k then
        in_range := false
    done
  done;
  check_true "columns sorted strictly (no duplicate edges)" !sorted;
  check_true "columns in compact range" !in_range;
  (* every sampled edge exists in the original graph *)
  let orig = adj g in
  let all_real = ref true in
  for r = 0 to k - 1 do
    let u = s1.G.Sampling.nodes.(r) in
    for p = sub.Csr.row_ptr.(r) to sub.Csr.row_ptr.(r + 1) - 1 do
      let v = s1.G.Sampling.nodes.(sub.Csr.col_idx.(p)) in
      let found = ref false in
      for q = orig.Csr.row_ptr.(u) to orig.Csr.row_ptr.(u + 1) - 1 do
        if orig.Csr.col_idx.(q) = v then found := true
      done;
      if not !found then all_real := false
    done
  done;
  check_true "every sampled edge is an original edge" !all_real

let test_layered_validation () =
  let g = graph () in
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  in
  expect_invalid "empty fanouts" (fun () ->
      G.Sampling.layered_fanout ~fanouts:[] ~seeds:[| 0 |] g);
  expect_invalid "non-positive fanout" (fun () ->
      G.Sampling.layered_fanout ~fanouts:[ 5; 0 ] ~seeds:[| 0 |] g);
  expect_invalid "empty seeds" (fun () ->
      G.Sampling.layered_fanout ~fanouts:[ 5 ] ~seeds:[||] g);
  expect_invalid "out-of-range seed" (fun () ->
      G.Sampling.layered_fanout ~fanouts:[ 5 ]
        ~seeds:[| G.Graph.n_nodes g |] g);
  expect_invalid "duplicate seed" (fun () ->
      G.Sampling.layered_fanout ~fanouts:[ 5 ] ~seeds:[| 1; 1 |] g)

(* fanout >= degree keeps the full frontier neighborhood; isolated seeds
   produce an edge-free subgraph over exactly the seed set *)
let test_layered_edge_cases () =
  let g = graph () in
  let orig = adj g in
  let seeds = [| 0; 7; 19 |] in
  let huge = G.Sampling.layered_fanout ~seed:1 ~fanouts:[ 100000 ] ~seeds g in
  let sub = adj huge.G.Sampling.subgraph in
  Array.iteri
    (fun i u ->
      let deg = orig.Csr.row_ptr.(u + 1) - orig.Csr.row_ptr.(u) in
      check_int "fanout >= degree keeps every in-edge" deg
        (sub.Csr.row_ptr.(i + 1) - sub.Csr.row_ptr.(i)))
    seeds;
  (* an isolated graph: no edges anywhere *)
  let iso =
    G.Graph.make ~name:"iso"
      (Csr.make ~n_rows:6 ~n_cols:6 ~row_ptr:(Array.make 7 0) ~col_idx:[||]
         ~values:None)
  in
  let s =
    G.Sampling.layered_fanout ~seed:1 ~fanouts:[ 4; 4 ] ~seeds:[| 2; 5 |] iso
  in
  check_int "isolated seeds: only the seeds"
    2 (Array.length s.G.Sampling.nodes);
  check_int "isolated seeds: no edges"
    0 (G.Graph.n_edges s.G.Sampling.subgraph)

(* ---- compact renumbering vs the Hashtbl oracle ---- *)

let test_induced_compact_roundtrip () =
  let g = graph () in
  let rng = Prng.create 17 in
  for trial = 0 to 9 do
    let k = 1 + Prng.int rng 100 in
    let nodes = Prng.sample_without_replacement rng k (G.Graph.n_nodes g) in
    if trial mod 2 = 0 then Prng.shuffle_in_place rng nodes;
    let fast = G.Sampling.induced_compact g nodes in
    let oracle = G.Sampling.induced_subgraph g nodes in
    check_true "induced_compact == induced_subgraph"
      (graph_bits_equal fast oracle)
  done;
  (match G.Sampling.induced_compact g [| 0; 0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate node accepted");
  match G.Sampling.induced_compact g [| -1 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range node accepted"

(* ---- loader: arm- and thread-independence of batch content ---- *)

let batch_bits_equal (a : Gnn.Loader.batch) (b : Gnn.Loader.batch) =
  a.Gnn.Loader.epoch = b.Gnn.Loader.epoch
  && a.Gnn.Loader.index = b.Gnn.Loader.index
  && graph_bits_equal a.Gnn.Loader.sample.G.Sampling.subgraph
       b.Gnn.Loader.sample.G.Sampling.subgraph
  && a.Gnn.Loader.sample.G.Sampling.nodes = b.Gnn.Loader.sample.G.Sampling.nodes
  && a.Gnn.Loader.labels = b.Gnn.Loader.labels
  && a.Gnn.Loader.mask = b.Gnn.Loader.mask
  && Array.for_all2
       (fun p q -> Int64.bits_of_float p = Int64.bits_of_float q)
       a.Gnn.Loader.features.Dense.data b.Gnn.Loader.features.Dense.data

let drain loader =
  let rec go acc =
    match Gnn.Loader.next loader with
    | None -> List.rev acc
    | Some b -> go (b :: acc)
  in
  Fun.protect ~finally:(fun () -> Gnn.Loader.shutdown loader) (fun () -> go [])

let test_loader_arms_identical () =
  let g = graph () in
  let n = G.Graph.n_nodes g in
  let rng = Prng.create 5 in
  let labels = Array.init n (fun _ -> Prng.int rng 4) in
  let features = Dense.random ~seed:6 n 8 in
  let mask = Array.init n (fun i -> i mod 3 <> 0) in
  let make ~mode ~threads =
    Gnn.Loader.create ~seed:2 ~mask ~threads ~mode ~fanouts:[ 6; 3 ]
      ~batch_size:50 ~epochs:2 ~graph:g ~features ~labels ()
  in
  let seq = drain (make ~mode:Gnn.Loader.Sequential ~threads:1) in
  let pipe = drain (make ~mode:Gnn.Loader.Pipelined ~threads:1) in
  let pipe2 = drain (make ~mode:Gnn.Loader.Pipelined ~threads:2) in
  check_int "same batch count" (List.length seq) (List.length pipe);
  List.iter2
    (fun a b -> check_true "pipelined batch == sequential batch"
        (batch_bits_equal a b))
    seq pipe;
  List.iter2
    (fun a b -> check_true "featurizer threads don't change content"
        (batch_bits_equal a b))
    seq pipe2;
  (* epochs reshuffle: the same seed set in a different order *)
  let e0 = List.filter (fun b -> b.Gnn.Loader.epoch = 0) seq in
  let e1 = List.filter (fun b -> b.Gnn.Loader.epoch = 1) seq in
  let seeds_of bs =
    List.concat_map
      (fun (b : Gnn.Loader.batch) ->
        Array.to_list
          (Array.sub b.Gnn.Loader.sample.G.Sampling.nodes 0
             b.Gnn.Loader.sample.G.Sampling.n_seeds))
      bs
  in
  let s0 = seeds_of e0 and s1 = seeds_of e1 in
  check_true "epochs cover the same masked set"
    (List.sort compare s0 = List.sort compare s1);
  check_true "epochs are reshuffled" (s0 <> s1);
  check_true "only masked nodes are seeds"
    (List.for_all (fun i -> mask.(i)) s0)

(* a shutdown mid-stream must not hang or leak the loader domain *)
let test_loader_early_shutdown () =
  let g = graph () in
  let n = G.Graph.n_nodes g in
  let labels = Array.make n 0 in
  let features = Dense.random ~seed:1 n 4 in
  let loader =
    Gnn.Loader.create ~mode:Gnn.Loader.Pipelined ~fanouts:[ 4 ]
      ~batch_size:16 ~epochs:3 ~graph:g ~features ~labels ()
  in
  check_true "first batch arrives" (Gnn.Loader.next loader <> None);
  Gnn.Loader.shutdown loader;
  Gnn.Loader.shutdown loader (* idempotent *)

(* ---- the tentpole guarantee: pipelined training == sequential ---- *)

let test_minibatch_bitwise_differential () =
  let g = graph () in
  let n = G.Graph.n_nodes g in
  let classes = 4 and k_in = 8 in
  let rng = Prng.create 7 in
  let labels = Array.init n (fun _ -> Prng.int rng classes) in
  let features = Dense.random ~seed:8 n k_in in
  let low, compiled = Test_engine.compile_model (Mp.Mp_models.find "gcn") in
  let env = { Dim.n; nnz = G.Graph.n_edges g + n; k_in; k_out = classes } in
  let params = Gnn.Layer.init_params ~seed:3 ~env low in
  let cm = Cost_oracle.analytic Granii_hw.Hw_profile.cpu in
  let run ~mode ~threads ~workspace =
    let engine =
      Engine.create_exn { Engine.default_config with threads; workspace }
    in
    Fun.protect ~finally:(fun () -> Engine.shutdown engine) (fun () ->
        Gnn.Trainer.train_minibatch ~seed:1 ~engine ~mode ~classes
          ~fanouts:[ 5; 3 ] ~epochs:2 ~batch_size:64
          ~optimizer:(Gnn.Optimizer.adam ~lr:0.02 ())
          ~oracle:cm ~compiled ~graph:g ~features ~labels ~params ())
  in
  List.iter
    (fun (threads, workspace) ->
      let seq = run ~mode:Gnn.Loader.Sequential ~threads ~workspace in
      let pipe = run ~mode:Gnn.Loader.Pipelined ~threads ~workspace in
      let tag = Printf.sprintf "t=%d ws=%b" threads workspace in
      Array.iteri
        (fun e l ->
          check_true (Printf.sprintf "%s epoch %d loss bitwise" tag e)
            (Int64.bits_of_float l
            = Int64.bits_of_float pipe.Gnn.Trainer.epoch_losses.(e)))
        seq.Gnn.Trainer.epoch_losses;
      Array.iteri
        (fun e row ->
          Array.iteri
            (fun i l ->
              check_true (Printf.sprintf "%s batch %d.%d loss bitwise" tag e i)
                (Int64.bits_of_float l
                = Int64.bits_of_float pipe.Gnn.Trainer.batch_losses.(e).(i)))
            row)
        seq.Gnn.Trainer.batch_losses;
      check_true (tag ^ " losses actually move")
        (seq.Gnn.Trainer.epoch_losses.(0)
        <> seq.Gnn.Trainer.epoch_losses.(1));
      check_true (tag ^ " no stall in sequential mode")
        (seq.Gnn.Trainer.stall_time = 0.))
    [ (1, false); (2, false); (1, true); (2, true) ]

(* the trainer rejects engines autodiff or per-batch graphs cannot use *)
let test_minibatch_engine_legality () =
  let g = graph () in
  let n = G.Graph.n_nodes g in
  let labels = Array.make n 0 in
  let features = Dense.random ~seed:1 n 4 in
  let _, compiled = Test_engine.compile_model (Mp.Mp_models.find "gcn") in
  let low = Mp.Lower.lower (Mp.Mp_models.find "gcn") in
  let env = { Dim.n; nnz = G.Graph.n_edges g + n; k_in = 4; k_out = 2 } in
  let params = Gnn.Layer.init_params ~seed:3 ~env low in
  let attempt engine =
    Gnn.Trainer.train_minibatch ~engine ~fanouts:[ 4 ] ~epochs:1
      ~batch_size:32
      ~optimizer:(Gnn.Optimizer.sgd ~lr:0.1 ())
      ~oracle:(Cost_oracle.analytic Granii_hw.Hw_profile.cpu)
      ~compiled ~graph:g ~features ~labels ~params ()
  in
  let dropping =
    Engine.create_exn
      { Engine.default_config with workspace = true; keep_intermediates = false }
  in
  (match attempt dropping with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted an intermediate-dropping engine");
  let cached = Engine.create_exn { Engine.default_config with cache = true } in
  match attempt cached with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted a cache-carrying engine"

(* ---- the shared keying policy: bucketed fingerprints ---- *)

let test_bucketed_cache_keys () =
  let g = graph () in
  let sample i =
    let seeds = G.Sampling.random_nodes ~seed:i g 48 in
    (G.Sampling.layered_fanout ~seed:i ~fanouts:[ 6; 3 ] ~seeds g)
      .G.Sampling.subgraph
  in
  (* bucketing is coarse, not exact: same-shape draws near a bucket
     boundary may split, so assert that most of a batch-shape family
     coincides and take one coinciding pair for the hit check *)
  let draws = List.init 6 (fun i -> sample (i + 1)) in
  let fps = List.map Plan_cache.bucketed_fingerprint draws in
  let majority =
    List.fold_left
      (fun best fp ->
        let c = List.length (List.filter (String.equal fp) fps) in
        if c > snd best then (fp, c) else best)
      ("", 0) fps
  in
  check_true "most same-shape mini-batches share a bucket"
    (snd majority >= 4);
  let a, b =
    match
      List.filter
        (fun g_ ->
          String.equal (Plan_cache.bucketed_fingerprint g_) (fst majority))
        draws
    with
    | a :: b :: _ -> (a, b)
    | _ -> Alcotest.fail "unreachable: majority bucket has >= 4 members"
  in
  check_true "the pair shares a bucket"
    (String.equal
       (Plan_cache.bucketed_fingerprint a)
       (Plan_cache.bucketed_fingerprint b));
  (* a structurally different graph (another size family) must miss *)
  let other = G.Generators.grid2d ~rows:60 ~cols:60 () in
  check_true "a different size family lands in another bucket"
    (not
       (String.equal
          (Plan_cache.bucketed_fingerprint a)
          (Plan_cache.bucketed_fingerprint other)));
  (* the policy drives real hits/misses through the one key constructor *)
  let _, compiled = Test_engine.compile_model (Mp.Mp_models.find "gcn") in
  let env g_ =
    { Dim.n = G.Graph.n_nodes g_;
      nnz = G.Graph.n_edges g_ + G.Graph.n_nodes g_;
      k_in = 8; k_out = 4 }
  in
  let lc g_ =
    Selector.select_localized
      ~oracle:(Cost_oracle.analytic Granii_hw.Hw_profile.cpu)
      ~feats:(Featurizer.extract g_) ~env:(env g_) ~iterations:1
      ~configs:[ Locality.default ] compiled
  in
  let key g_ =
    Plan_cache.key_of ~graph_fp:(Plan_cache.bucketed_fingerprint g_)
      ~model:"GCN" ~k_in:8 ~k_out:4 ~hw:"cpu" ~threads:1
      ~locality:Locality.default
  in
  let pc = Plan_cache.create ~capacity:4 () in
  check_true "cold miss" (Plan_cache.find pc (key a) = None);
  Plan_cache.add pc (key a) (lc a);
  check_true "same-bucket batch hits" (Plan_cache.find pc (key b) <> None);
  check_true "different family misses" (Plan_cache.find pc (key other) = None);
  let s = Plan_cache.stats pc in
  check_int "hits" 1 s.Plan_cache.hits;
  check_int "misses" 2 s.Plan_cache.misses;
  (* key_of normalizes the model-name case: serve lowercases, the trainer
     passes Codegen's name verbatim — both must land on one key *)
  check_true "model name is case-normalized"
    ((key a).Plan_cache.model = "gcn")

(* Boundary values of the bucket formula itself: node/edge buckets are
   floor-log2, the degree bucket is 2*avg_degree rounded half away from
   zero — each boundary is pinned by an exact expected string. *)
let test_bucketed_fingerprint_boundaries () =
  let path n_nodes n_edges =
    (* a path with [n_edges] undirected edges -> 2*n_edges CSR entries *)
    G.Graph.of_edges ~name:"fp" ~n:n_nodes
      (List.init n_edges (fun i -> (i, i + 1)))
  in
  let expect name g s =
    check_true
      (Printf.sprintf "%s: n=%d nnz=%d -> %s" name (G.Graph.n_nodes g)
         (G.Graph.n_edges g) s)
      (String.equal (Plan_cache.bucketed_fingerprint g) s)
  in
  (* half-step degree rounding: 2*10/8 = 2.5 rounds away to d3, while
     2*8/8 = 2.0 stays d2 — the boundary between the two degree rungs *)
  expect "degree boundary above" (path 8 5) "bkt:n2^3:e2^3:d3";
  expect "degree boundary below" (path 8 4) "bkt:n2^3:e2^3:d2";
  (* edge-bucket boundary: nnz 8 -> e2^3, nnz 6 -> e2^2 *)
  expect "edge bucket below the power of two" (path 8 3) "bkt:n2^3:e2^2:d2";
  (* node-bucket boundary: n=8 -> n2^3, n=7 -> n2^2 (floor log2) *)
  expect "node bucket below the power of two" (path 7 3) "bkt:n2^2:e2^2:d2";
  (* degenerate graphs take the zero buckets rather than raising *)
  expect "single node, no edges" (path 1 0) "bkt:n2^0:e2^0:d0";
  expect "nodes but no edges" (path 4 0) "bkt:n2^2:e2^0:d0"

let suite =
  [ Alcotest.test_case "layered sampler: deterministic in seed" `Quick
      test_layered_deterministic;
    Alcotest.test_case "layered sampler: input validation" `Quick
      test_layered_validation;
    Alcotest.test_case "layered sampler: fanout >= degree, isolated seeds"
      `Quick test_layered_edge_cases;
    Alcotest.test_case "induced_compact == induced_subgraph oracle" `Quick
      test_induced_compact_roundtrip;
    Alcotest.test_case "loader: pipelined == sequential == threaded" `Quick
      test_loader_arms_identical;
    Alcotest.test_case "loader: early shutdown joins the domain" `Quick
      test_loader_early_shutdown;
    Alcotest.test_case
      "train_minibatch: pipelined bitwise == sequential (engine grid)" `Quick
      test_minibatch_bitwise_differential;
    Alcotest.test_case "train_minibatch: engine legality" `Quick
      test_minibatch_engine_legality;
    Alcotest.test_case "plan cache: bucketed fingerprint keying" `Quick
      test_bucketed_cache_keys;
    Alcotest.test_case "plan cache: fingerprint bucket boundaries" `Quick
      test_bucketed_fingerprint_boundaries ]
