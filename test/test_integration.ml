(* Cross-module integration and end-to-end invariants. *)

open Granii_core
open Test_util
module G = Granii_graph
module Mp = Granii_mp
module Sys_ = Granii_systems
module Gnn = Granii_gnn

let compiled_of ?(binned = false) model =
  let low = Mp.Lower.lower model in
  let compiled, stats =
    Granii.compile ~name:model.Mp.Mp_ast.name
      ~degree_leaves:(Mp.Lower.degree_leaves low ~binned)
      low.Mp.Lower.ir
  in
  (low, compiled, stats)

let test_parametric_hops () =
  check_true "sgc_k 2 = sgc"
    (Matrix_ir.equal
       (Mp.Lower.lower (Mp.Mp_models.sgc_k 2)).Mp.Lower.ir
       (Mp.Lower.lower Mp.Mp_models.sgc).Mp.Lower.ir);
  let sgc1 = Mp.Lower.lower (Mp.Mp_models.sgc_k 1) in
  let sgc3 = Mp.Lower.lower (Mp.Mp_models.sgc_k 3) in
  check_int "1-hop SGC chain has 5 leaves" 5 (List.length (Matrix_ir.leaves sgc1.Mp.Lower.ir));
  check_int "3-hop SGC chain has 11 leaves" 11
    (List.length (Matrix_ir.leaves sgc3.Mp.Lower.ir));
  check_true "k < 1 rejected"
    (try ignore (Mp.Mp_models.sgc_k 0); false with Invalid_argument _ -> true);
  (* deep chains stay tractable thanks to local dominance filtering *)
  let _, _, stats =
    compiled_of (Mp.Mp_models.sgc_k 3)
  in
  check_true "3-hop SGC enumerates without explosion"
    (stats.Granii.n_promoted > 0 && stats.Granii.n_promoted < 200);
  let _, _, stats3 = compiled_of (Mp.Mp_models.tagcn_k 3) in
  check_true "3-hop TAGCN enumerates without explosion"
    (stats3.Granii.n_promoted > 0 && stats3.Granii.n_promoted < 500);
  let t0 = Sys.time () in
  let _, _, stats4 = compiled_of (Mp.Mp_models.tagcn_k 4) in
  check_true "4-hop TAGCN compiles in seconds"
    (stats4.Granii.n_promoted > 0 && Sys.time () -. t0 < 30.)

let test_parametric_hops_execute () =
  (* all promoted candidates of a 3-hop SGC still agree numerically *)
  let graph = G.Generators.erdos_renyi ~seed:41 ~n:40 ~avg_degree:4. () in
  let low, compiled, _ = compiled_of (Mp.Mp_models.sgc_k 3) in
  let n = G.Graph.n_nodes graph in
  let env = { Dim.n; nnz = G.Graph.n_edges graph + n; k_in = 5; k_out = 4 } in
  let params = Gnn.Layer.init_params ~seed:1 ~env low in
  let h = Granii_tensor.Dense.random ~seed:2 n 5 in
  let bindings = Gnn.Layer.bindings ~graph ~h params in
  let outputs =
    List.map
      (fun (c : Codegen.ccand) ->
        match
          (Executor.exec ~engine:(Engine.default ()) ~timing:Executor.Measure
             ~graph ~bindings c.Codegen.plan)
            .Executor.output
        with
        | Executor.Vdense d -> d
        | _ -> Alcotest.fail "dense expected")
      compiled.Codegen.candidates
  in
  let reference = List.hd outputs in
  List.iter
    (fun out ->
      check_true "3-hop candidates agree"
        (Granii_tensor.Dense.equal_approx ~eps:1e-7 reference out))
    (List.tl outputs)

(* Pruning near-optimality: the best tree of the FULL forest is never much
   better than the best promoted tree, for random inputs and any profile. *)
let test_prune_near_optimal =
  qtest ~count:15 "pruning keeps a near-optimal candidate"
    QCheck2.Gen.(triple (int_range 0 1000) (int_range 0 2) (int_range 0 3))
    (fun (seed, profile_idx, pair_idx) ->
      let profile = List.nth Granii_hw.Hw_profile.all profile_idx in
      let k_in, k_out = List.nth [ (32, 32); (256, 64); (64, 256); (512, 512) ] pair_idx in
      let graph =
        G.Generators.rmat ~seed ~scale:9 ~edge_factor:(8 + (seed mod 32)) ()
      in
      let low = Mp.Lower.lower Mp.Mp_models.gcn in
      let forest = Enumerate.forest low.Mp.Lower.ir in
      let pruned = Prune.run forest in
      let n = G.Graph.n_nodes graph in
      let env = { Dim.n; nnz = G.Graph.n_edges graph + n; k_in; k_out } in
      let time tree =
        let plan =
          Plan.of_tree ~degree_leaves:(Mp.Lower.degree_leaves low ~binned:false)
            ~name:"t" tree
        in
        let setup, iter = Executor.estimate ~profile ~env plan in
        Executor.total_time ~setup ~iteration:iter ~iterations:100
      in
      let best_all = List.fold_left (fun acc t -> Float.min acc (time t)) infinity forest in
      let best_promoted =
        List.fold_left
          (fun acc (c : Prune.candidate) -> Float.min acc (time c.Prune.tree))
          infinity pruned.Prune.promoted
      in
      best_promoted <= best_all *. 1.10)

(* The headline claim as an integration test: on a small grid, GRANII with
   the analytic cost model is never slower than either baseline system by
   more than noise, and is faster overall. *)
let test_headline_speedup () =
  let cm_of = Cost_oracle.analytic in
  let graphs =
    [ G.Generators.rmat ~seed:51 ~scale:10 ~edge_factor:48 ();
      G.Generators.grid2d ~seed:52 ~rows:48 ~cols:48 () ]
  in
  let speedups = ref [] in
  List.iter
    (fun sys ->
      List.iter
        (fun (model : Mp.Mp_ast.model) ->
          let low, compiled, _ =
            compiled_of ~binned:sys.Sys_.System.binned_degrees model
          in
          ignore low;
          let b = Sys_.Baseline.make sys model in
          List.iter
            (fun profile ->
              List.iter
                (fun graph ->
                  List.iter
                    (fun (k_in, k_out) ->
                      if not (model.Mp.Mp_ast.attention && k_in >= k_out) then begin
                        let n = G.Graph.n_nodes graph in
                        let env =
                          { Dim.n; nnz = G.Graph.n_edges graph + n; k_in; k_out }
                        in
                        let feats = Featurizer.extract graph in
                        let choice =
                          Selector.select ~oracle:(cm_of profile) ~feats ~env
                            ~iterations:100 compiled
                        in
                        let t plan =
                          let setup, iter = Executor.estimate ~profile ~env plan in
                          Executor.total_time ~setup ~iteration:iter ~iterations:100
                        in
                        let tg = t choice.Selector.candidate.Codegen.plan in
                        let tb = t (Sys_.Baseline.plan b ~k_in ~k_out) in
                        speedups := (tb /. tg) :: !speedups
                      end)
                    [ (64, 64); (512, 64); (64, 512) ])
                graphs)
            [ Granii_hw.Hw_profile.a100; Granii_hw.Hw_profile.h100 ])
        [ Mp.Mp_models.gcn; Mp.Mp_models.gat ])
    Sys_.System.all;
  let geomean =
    exp
      (List.fold_left (fun a x -> a +. log x) 0. !speedups
      /. float_of_int (List.length !speedups))
  in
  check_true
    (Printf.sprintf "geomean speedup > 1.05 (got %.3f)" geomean)
    (geomean > 1.05);
  check_true "never catastrophically slower"
    (List.for_all (fun s -> s > 0.5) !speedups)

let test_cli_graph_shorthand () =
  (* generator shorthands must cover the spectrum used by the CLI docs *)
  let er = G.Generators.erdos_renyi ~n:100 ~avg_degree:4. () in
  check_int "er shorthand size" 100 (G.Graph.n_nodes er)

let suite =
  [ Alcotest.test_case "parametric hop counts" `Quick test_parametric_hops;
    Alcotest.test_case "3-hop candidates agree" `Quick test_parametric_hops_execute;
    test_prune_near_optimal;
    Alcotest.test_case "headline speedup holds" `Slow test_headline_speedup;
    Alcotest.test_case "generator shorthand" `Quick test_cli_graph_shorthand ]
