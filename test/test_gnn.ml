open Granii_core
open Test_util
module Dense = Granii_tensor.Dense
module G = Granii_graph
module Gnn = Granii_gnn
module Mp = Granii_mp

let graph = lazy (G.Generators.erdos_renyi ~seed:13 ~n:40 ~avg_degree:4. ())

let compiled_of model =
  let low = Mp.Lower.lower model in
  let compiled, _ =
    Granii.compile ~name:model.Mp.Mp_ast.name
      ~degree_leaves:(Mp.Lower.degree_leaves low ~binned:false)
      low.Mp.Lower.ir
  in
  (low, compiled)

let test_loss_values () =
  (* Uniform logits over c classes: loss = log c, and gradient sums to 0. *)
  let logits = Dense.zeros 4 3 in
  let labels = [| 0; 1; 2; 0 |] in
  let loss, grad = Gnn.Loss.softmax_cross_entropy ~logits ~labels () in
  check_float ~eps:1e-9 "uniform loss = log 3" (log 3.) loss;
  check_float ~eps:1e-9 "gradient sums to zero" 0. (Dense.sum grad)

let test_loss_mask () =
  let logits = Dense.of_arrays [| [| 10.; 0. |]; [| 0.; 10. |] |] in
  let labels = [| 0; 0 |] in
  let mask = [| true; false |] in
  let loss_masked, grad = Gnn.Loss.softmax_cross_entropy ~mask ~logits ~labels () in
  check_true "masked node ignored" (loss_masked < 0.01);
  check_float "masked row has zero grad" 0. (Dense.get grad 1 0);
  check_float "accuracy on mask" 1. (Gnn.Loss.accuracy ~mask ~logits ~labels ())

let test_loss_validation () =
  check_true "label range checked"
    (try
       ignore (Gnn.Loss.softmax_cross_entropy ~logits:(Dense.zeros 1 2) ~labels:[| 5 |] ());
       false
     with Invalid_argument _ -> true)

(* Finite-difference gradient check on GCN weights through the full plan. *)
let test_autodiff_finite_difference () =
  let graph = Lazy.force graph in
  let n = G.Graph.n_nodes graph in
  let k_in = 5 and k_out = 3 in
  let low, compiled = compiled_of Mp.Mp_models.gcn in
  let plan = (List.hd compiled.Codegen.candidates).Codegen.plan in
  let env = { Dim.n; nnz = G.Graph.n_edges graph + n; k_in; k_out } in
  let params = Gnn.Layer.init_params ~seed:7 ~env low in
  let h = Dense.random ~seed:8 n k_in in
  let labels = Array.init n (fun i -> i mod k_out) in
  let loss_of params =
    let bindings = Gnn.Layer.bindings ~graph ~h params in
    let fwd =
      Executor.exec ~engine:(Engine.default ()) ~timing:Executor.Measure
        ~graph ~bindings plan
    in
    match fwd.Executor.output with
    | Executor.Vdense logits ->
        let loss, dlogits = Gnn.Loss.softmax_cross_entropy ~logits ~labels () in
        (loss, dlogits, fwd, bindings)
    | _ -> Alcotest.fail "dense output expected"
  in
  let _, dlogits, fwd, bindings = loss_of params in
  let grads = Gnn.Autodiff.backward ~plan ~graph ~bindings ~forward:fwd ~seed:dlogits in
  let gw = List.assoc "W" grads in
  let w = List.assoc "W" params in
  let eps = 1e-5 in
  List.iter
    (fun (i, j) ->
      let perturb delta =
        let w' = Dense.copy w in
        Dense.set w' i j (Dense.get w i j +. delta);
        let params' = List.map (fun (nm, v) -> if nm = "W" then (nm, w') else (nm, v)) params in
        let l, _, _, _ = loss_of params' in
        l
      in
      let numeric = (perturb eps -. perturb (-.eps)) /. (2. *. eps) in
      let analytic = Dense.get gw i j in
      check_true
        (Printf.sprintf "dW[%d,%d]: numeric %.6f vs analytic %.6f" i j numeric analytic)
        (Float.abs (numeric -. analytic) < 1e-4 *. Float.max 1. (Float.abs numeric)))
    [ (0, 0); (1, 2); (4, 1) ]

let test_autodiff_gat_finite_difference () =
  let graph = Lazy.force graph in
  let n = G.Graph.n_nodes graph in
  let k_in = 4 and k_out = 3 in
  let low, compiled = compiled_of Mp.Mp_models.gat in
  let plan = (List.hd compiled.Codegen.candidates).Codegen.plan in
  let env = { Dim.n; nnz = G.Graph.n_edges graph + n; k_in; k_out } in
  let params = Gnn.Layer.init_params ~seed:17 ~env low in
  let h = Dense.random ~seed:18 n k_in in
  let labels = Array.init n (fun i -> i mod k_out) in
  let loss_of params =
    let bindings = Gnn.Layer.bindings ~graph ~h params in
    let fwd =
      Executor.exec ~engine:(Engine.default ()) ~timing:Executor.Measure
        ~graph ~bindings plan
    in
    match fwd.Executor.output with
    | Executor.Vdense logits ->
        let loss, dlogits = Gnn.Loss.softmax_cross_entropy ~logits ~labels () in
        (loss, dlogits, fwd, bindings)
    | _ -> Alcotest.fail "dense output expected"
  in
  let _, dlogits, fwd, bindings = loss_of params in
  let grads = Gnn.Autodiff.backward ~plan ~graph ~bindings ~forward:fwd ~seed:dlogits in
  List.iter
    (fun pname ->
      let gp = List.assoc pname grads in
      let p = List.assoc pname params in
      let eps = 1e-5 in
      let i, j = (0, 0) in
      let perturb delta =
        let p' = Dense.copy p in
        Dense.set p' i j (Dense.get p i j +. delta);
        let params' = List.map (fun (nm, v) -> if nm = pname then (nm, p') else (nm, v)) params in
        let l, _, _, _ = loss_of params' in
        l
      in
      let numeric = (perturb eps -. perturb (-.eps)) /. (2. *. eps) in
      let analytic = Dense.get gp i j in
      check_true
        (Printf.sprintf "GAT d%s: numeric %.6f vs analytic %.6f" pname numeric analytic)
        (Float.abs (numeric -. analytic) < 1e-3 *. Float.max 1. (Float.abs numeric)))
    [ "W"; "Asrc"; "Adst" ]

let test_optimizer_sgd () =
  let params = [ ("w", Dense.ones 1 1) ] in
  let grads = [ ("w", Dense.ones 1 1) ] in
  let opt = Gnn.Optimizer.sgd ~lr:0.5 () in
  let params' = Gnn.Optimizer.step opt params grads in
  check_float "sgd step" 0.5 (Dense.get (List.assoc "w" params') 0 0);
  check_true "name" (String.equal (Gnn.Optimizer.name opt) "sgd")

let test_optimizer_adam_direction () =
  let params = [ ("w", Dense.ones 1 1) ] in
  let grads = [ ("w", Dense.ones 1 1) ] in
  let opt = Gnn.Optimizer.adam ~lr:0.1 () in
  let params' = Gnn.Optimizer.step opt params grads in
  check_true "adam moves against the gradient"
    (Dense.get (List.assoc "w" params') 0 0 < 1.)

let test_training_reduces_loss model () =
  let graph = Lazy.force graph in
  let n = G.Graph.n_nodes graph in
  let classes = 3 in
  let low, compiled = compiled_of model in
  let plan = (List.hd compiled.Codegen.candidates).Codegen.plan in
  let env = { Dim.n; nnz = G.Graph.n_edges graph + n; k_in = 6; k_out = classes } in
  let params = Gnn.Layer.init_params ~seed:23 ~env low in
  let features = Dense.random ~seed:24 n 6 in
  let labels = Array.init n (fun i -> i mod classes) in
  let hist =
    Gnn.Trainer.train ~epochs:25 ~optimizer:(Gnn.Optimizer.adam ~lr:0.05 ()) ~plan
      ~graph ~features ~labels ~params ()
  in
  let first = hist.Gnn.Trainer.losses.(0) in
  let last = hist.Gnn.Trainer.losses.(24) in
  check_true
    (Printf.sprintf "%s loss decreases (%.4f -> %.4f)" model.Mp.Mp_ast.name first last)
    (last < first -. 0.01)

let test_timing_modes () =
  let graph = Lazy.force graph in
  let n = G.Graph.n_nodes graph in
  let _, compiled = compiled_of Mp.Mp_models.gcn in
  let plan = (List.hd compiled.Codegen.candidates).Codegen.plan in
  let env = { Dim.n; nnz = G.Graph.n_edges graph + n; k_in = 64; k_out = 64 } in
  let profile = Granii_hw.Hw_profile.a100 in
  let inf = Gnn.Trainer.inference_time ~profile ~graph ~env plan in
  let tr = Gnn.Trainer.training_time ~profile ~graph ~env plan in
  check_true "training costs more than inference" (tr > inf);
  check_true "100 iterations cost ~100x of 1"
    (Gnn.Trainer.inference_time ~profile ~graph ~env ~iterations:100 plan
    > 50. *. Gnn.Trainer.inference_time ~profile ~graph ~env ~iterations:1 plan)

let test_backward_kernels_nonempty () =
  let graph = Lazy.force graph in
  let n = G.Graph.n_nodes graph in
  let _, compiled = compiled_of Mp.Mp_models.gat in
  let plan = (List.hd compiled.Codegen.candidates).Codegen.plan in
  let env = { Dim.n; nnz = G.Graph.n_edges graph + n; k_in = 16; k_out = 16 } in
  let kernels = Gnn.Autodiff.backward_kernels ~graph ~env plan in
  check_true "backward workload present" (List.length kernels >= 4)

let suite =
  [ Alcotest.test_case "loss values" `Quick test_loss_values;
    Alcotest.test_case "loss mask" `Quick test_loss_mask;
    Alcotest.test_case "loss validation" `Quick test_loss_validation;
    Alcotest.test_case "GCN finite-difference gradients" `Quick
      test_autodiff_finite_difference;
    Alcotest.test_case "GAT finite-difference gradients" `Quick
      test_autodiff_gat_finite_difference;
    Alcotest.test_case "sgd" `Quick test_optimizer_sgd;
    Alcotest.test_case "adam" `Quick test_optimizer_adam_direction;
    Alcotest.test_case "GCN training converges" `Quick
      (test_training_reduces_loss Mp.Mp_models.gcn);
    Alcotest.test_case "GIN training converges" `Quick
      (test_training_reduces_loss Mp.Mp_models.gin);
    Alcotest.test_case "GAT training converges" `Quick
      (test_training_reduces_loss Mp.Mp_models.gat);
    Alcotest.test_case "timing modes" `Quick test_timing_modes;
    Alcotest.test_case "backward kernels" `Quick test_backward_kernels_nonempty ]
