(* The BSR / CBM layout formats: exact round-trips, bitwise kernel
   equality against the CSR oracles (sequential and pooled), degenerate
   matrices, counting-scatter coverage, the new featurizer statistics, and
   the joint selector picking each format on the graph family it targets —
   and never under the FLOPs-only ablation. *)

open Granii_core
open Test_util
module Dense = Granii_tensor.Dense
module Parallel = Granii_tensor.Parallel
module Workspace = Granii_tensor.Workspace
module Csr = Granii_sparse.Csr
module Coo = Granii_sparse.Coo
module Bsr = Granii_sparse.Bsr
module Cbm = Granii_sparse.Cbm
module Spmm = Granii_sparse.Spmm
module Sddmm = Granii_sparse.Sddmm
module G = Granii_graph
module Gf = G.Graph_features
module Mp = Granii_mp
module Gnn = Granii_gnn

let bits_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun i x ->
          if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then ok := false)
        a;
      !ok)

(* Structure and values must match exactly — same entry order, same bits. *)
let csr_bits_equal (a : Csr.t) (b : Csr.t) =
  a.Csr.n_rows = b.Csr.n_rows && a.Csr.n_cols = b.Csr.n_cols
  && a.Csr.row_ptr = b.Csr.row_ptr && a.Csr.col_idx = b.Csr.col_idx
  &&
  match (a.Csr.values, b.Csr.values) with
  | None, None -> true
  | Some v, Some w -> bits_equal v w
  | _ -> false

let dense_bits_equal (a : Dense.t) (b : Dense.t) =
  a.Dense.rows = b.Dense.rows && a.Dense.cols = b.Dense.cols
  && bits_equal a.Dense.data b.Dense.data

let value_bits_equal (a : Executor.value) (b : Executor.value) =
  match (a, b) with
  | Executor.Vdense x, Executor.Vdense y -> dense_bits_equal x y
  | Executor.Vdiag x, Executor.Vdiag y -> bits_equal x y
  | Executor.Vsparse x, Executor.Vsparse y -> csr_bits_equal x y
  | _ -> false

let square_weighted_gen =
  let open QCheck2.Gen in
  let* g = graph_gen in
  let* seed = int_range 0 10_000 in
  let adj = g.G.Graph.adj in
  let rng = Granii_tensor.Prng.create seed in
  let values =
    Array.init (Csr.nnz adj) (fun _ -> Granii_tensor.Prng.uniform rng (-2.) 2.)
  in
  return (Csr.with_values adj values)

(* ---- round-trips: CSR <-> BSR <-> CSR and CSR <-> CBM <-> CSR ---- *)

let test_bsr_roundtrip =
  qtest "bsr: of_csr/to_csr round-trip is exact" csr_gen (fun m ->
      csr_bits_equal (Bsr.to_csr (Bsr.of_csr m)) m)

let test_bsr_roundtrip_weighted =
  qtest "bsr: weighted round-trip is exact" square_weighted_gen (fun m ->
      csr_bits_equal (Bsr.to_csr (Bsr.of_csr m)) m)

let test_bsr_shapes =
  qtest "bsr: round-trip and accounting hold at every block shape"
    QCheck2.Gen.(triple (int_range 1 5) (int_range 1 5) csr_gen)
    (fun (r, c, m) ->
      let b = Bsr.of_csr ~r ~c m in
      csr_bits_equal (Bsr.to_csr b) m
      && Bsr.nnz b = Csr.nnz m
      && Bsr.fill b > 0. && Bsr.fill b <= 1.)

let test_cbm_roundtrip =
  qtest "cbm: of_csr/to_csr round-trip is exact" csr_gen (fun m ->
      csr_bits_equal (Cbm.to_csr (Cbm.of_csr m)) m)

let test_cbm_roundtrip_weighted =
  qtest "cbm: weighted round-trip and dedup accounting" square_weighted_gen
    (fun m ->
      let d = Cbm.of_csr m in
      csr_bits_equal (Cbm.to_csr d) m
      && Cbm.nnz d = Csr.nnz m
      && Cbm.saved_nnz d >= 0
      && Cbm.dedup_ratio d >= 0. && Cbm.dedup_ratio d <= 1.)

(* ---- kernels: bitwise against the CSR oracles ---- *)

let test_bsr_spmm =
  qtest "bsr: spmm bitwise equals csr spmm"
    QCheck2.Gen.(pair csr_gen (int_range 1 9))
    (fun (m, k) ->
      let b = Dense.random ~seed:3 m.Csr.n_cols k in
      dense_bits_equal (Bsr.spmm (Bsr.of_csr m) b) (Spmm.run m b))

let test_bsr_spmm_weighted =
  qtest "bsr: weighted spmm bitwise equals csr spmm"
    QCheck2.Gen.(pair square_weighted_gen (int_range 1 9))
    (fun (m, k) ->
      let b = Dense.random ~seed:4 m.Csr.n_cols k in
      dense_bits_equal (Bsr.spmm (Bsr.of_csr m) b) (Spmm.run m b))

let test_bsr_spmm_shapes =
  qtest "bsr: spmm bitwise at every block shape"
    QCheck2.Gen.(quad (int_range 1 5) (int_range 1 5) csr_gen (int_range 1 9))
    (fun (r, c, m, k) ->
      let b = Dense.random ~seed:5 m.Csr.n_cols k in
      dense_bits_equal (Bsr.spmm (Bsr.of_csr ~r ~c m) b) (Spmm.run m b))

let test_bsr_sddmm =
  qtest "bsr: sddmm bitwise equals csr sddmm"
    QCheck2.Gen.(pair square_weighted_gen (int_range 1 9))
    (fun (m, k) ->
      let a = Dense.random ~seed:6 m.Csr.n_rows k in
      let b = Dense.random ~seed:7 k m.Csr.n_cols in
      csr_bits_equal (Bsr.sddmm (Bsr.of_csr m) a b) (Sddmm.run m a b))

let test_bsr_rank1 =
  qtest "bsr: rank1 sddmm bitwise equals csr rank1" square_weighted_gen
    (fun m ->
      let rng = Granii_tensor.Prng.create 9 in
      let dl =
        Array.init m.Csr.n_rows (fun _ -> Granii_tensor.Prng.uniform rng 0.1 2.)
      in
      let dr =
        Array.init m.Csr.n_cols (fun _ -> Granii_tensor.Prng.uniform rng 0.1 2.)
      in
      csr_bits_equal (Bsr.rank1 (Bsr.of_csr m) dl dr) (Sddmm.rank1 m dl dr))

let test_cbm_spmm =
  qtest "cbm: spmm bitwise equals csr spmm"
    QCheck2.Gen.(pair csr_gen (int_range 1 9))
    (fun (m, k) ->
      let b = Dense.random ~seed:13 m.Csr.n_cols k in
      dense_bits_equal (Cbm.spmm (Cbm.of_csr m) b) (Spmm.run m b))

let test_cbm_spmm_weighted =
  qtest "cbm: weighted spmm bitwise equals csr spmm"
    QCheck2.Gen.(pair square_weighted_gen (int_range 1 9))
    (fun (m, k) ->
      let b = Dense.random ~seed:14 m.Csr.n_cols k in
      dense_bits_equal (Cbm.spmm (Cbm.of_csr m) b) (Spmm.run m b))

let test_cbm_sddmm =
  qtest "cbm: sddmm bitwise equals csr sddmm"
    QCheck2.Gen.(pair square_weighted_gen (int_range 1 9))
    (fun (m, k) ->
      let a = Dense.random ~seed:15 m.Csr.n_rows k in
      let b = Dense.random ~seed:16 k m.Csr.n_cols in
      csr_bits_equal (Cbm.sddmm (Cbm.of_csr m) a b) (Sddmm.run m a b))

let test_pooled_kernels () =
  (* a dedicated pool and arena: the parallel chunked paths must stay
     bitwise because every row's accumulation order is unchanged *)
  let g = G.Generators.community_overlap ~seed:2 ~n:96 ~groups:8 ~degree:10 () in
  let m = g.G.Graph.adj in
  let k = 16 in
  let b = Dense.random ~seed:21 m.Csr.n_cols k in
  let oracle = Spmm.run m b in
  let pool = Parallel.create ~threads:4 () in
  let ws = Workspace.create () in
  check_true "bsr pooled spmm bitwise"
    (dense_bits_equal (Bsr.spmm ~pool ~ws (Bsr.of_csr m) b) oracle);
  check_true "cbm pooled spmm bitwise"
    (dense_bits_equal (Cbm.spmm ~pool ~ws (Cbm.of_csr m) b) oracle);
  Parallel.shutdown pool

(* ---- degenerate matrices ---- *)

let degenerates =
  let mk n_rows n_cols entries =
    Csr.of_coo (Coo.make ~n_rows ~n_cols (Array.of_list entries))
  in
  [ ("empty 6x6", mk 6 6 []);
    ("1x1 empty", mk 1 1 []);
    ("1x1 entry", mk 1 1 [ (0, 0, 1.5) ]);
    ( "single dense row",
      mk 7 7 (List.init 7 (fun j -> (2, j, float_of_int (j + 1)))) );
    ("isolated vertices", mk 9 9 [ (3, 2, -1.25); (7, 7, 0.5) ]);
    ( "duplicate-heavy rows",
      (* four identical rows, one superset row, one empty row *)
      mk 6 6
        (List.concat_map
           (fun i -> [ (i, 1, 2.0); (i, 4, -3.0) ])
           [ 0; 1; 2; 3 ]
        @ [ (4, 1, 2.0); (4, 4, -3.0); (4, 5, 1.0) ]) ) ]

let test_degenerate_matrices () =
  List.iter
    (fun (name, m) ->
      let k = 3 in
      let b = Dense.random ~seed:31 m.Csr.n_cols k in
      let bsr = Bsr.of_csr m and cbm = Cbm.of_csr m in
      check_true (name ^ ": bsr round-trip") (csr_bits_equal (Bsr.to_csr bsr) m);
      check_true (name ^ ": cbm round-trip") (csr_bits_equal (Cbm.to_csr cbm) m);
      let oracle = Spmm.run m b in
      check_true (name ^ ": bsr spmm") (dense_bits_equal (Bsr.spmm bsr b) oracle);
      check_true (name ^ ": cbm spmm") (dense_bits_equal (Cbm.spmm cbm b) oracle);
      let a = Dense.random ~seed:32 m.Csr.n_rows k in
      let c = Dense.random ~seed:33 k m.Csr.n_cols in
      check_true (name ^ ": bsr sddmm")
        (csr_bits_equal (Bsr.sddmm bsr a c) (Sddmm.run m a c));
      check_true (name ^ ": cbm sddmm")
        (csr_bits_equal (Cbm.sddmm cbm a c) (Sddmm.run m a c)))
    degenerates

let test_cbm_dedup_on_duplicates () =
  let m = List.assoc "duplicate-heavy rows" degenerates in
  let d = Cbm.of_csr m in
  (* rows 1..3 and 4 can all share row 0's entry list as a prefix *)
  check_true "duplicate rows dedup" (Cbm.saved_nnz d >= 6);
  check_true "dedup ratio reflects the sharing" (Cbm.dedup_ratio d > 0.4)

(* ---- counting scatter ---- *)

let test_counting_scatter_csc =
  (* bucket by column = the CSC construction: per-bucket entries must keep
     row-major source order (stability), with exact prefix accounting *)
  qtest "counting_scatter: column buckets are stable and exact" csr_gen
    (fun m ->
      let nnz = Csr.nnz m in
      let ptr, order, src_row =
        Csr.counting_scatter ~n_buckets:m.Csr.n_cols
          ~bucket:(fun _ p -> m.Csr.col_idx.(p))
          m
      in
      Array.length ptr = m.Csr.n_cols + 1
      && ptr.(m.Csr.n_cols) = nnz
      && Array.length order = nnz
      && Array.length src_row = nnz
      && (let ok = ref true in
          for j = 0 to m.Csr.n_cols - 1 do
            if ptr.(j) > ptr.(j + 1) then ok := false;
            for q = ptr.(j) to ptr.(j + 1) - 1 do
              if m.Csr.col_idx.(order.(q)) <> j then ok := false;
              (* stability: source positions ascend within a bucket *)
              if q > ptr.(j) && order.(q - 1) >= order.(q) then ok := false;
              (* src_row really is the row the entry lives in *)
              let i = src_row.(q) in
              if
                order.(q) < m.Csr.row_ptr.(i)
                || order.(q) >= m.Csr.row_ptr.(i + 1)
              then ok := false
            done
          done;
          !ok))

let test_counting_scatter_degenerate () =
  let empty = Csr.of_coo (Coo.make ~n_rows:4 ~n_cols:4 [||]) in
  let ptr, order, src_row =
    Csr.counting_scatter ~n_buckets:3 ~bucket:(fun _ _ -> 0) empty
  in
  check_true "empty matrix: all prefixes zero"
    (ptr = [| 0; 0; 0; 0 |] && order = [||] && src_row = [||]);
  let m = List.assoc "single dense row" degenerates in
  let ptr1, order1, _ =
    Csr.counting_scatter ~n_buckets:1 ~bucket:(fun _ _ -> 0) m
  in
  check_true "one bucket: identity order"
    (ptr1 = [| 0; Csr.nnz m |]
    && order1 = Array.init (Csr.nnz m) Fun.id);
  check_true "out-of-range bucket rejected"
    (try
       ignore (Csr.counting_scatter ~n_buckets:1 ~bucket:(fun _ _ -> 1) m);
       false
     with Invalid_argument _ -> true)

(* ---- featurizer statistics ---- *)

let test_block_fill_stat () =
  let blocked = G.Generators.blocked ~seed:1 ~n:128 ~blocks_per_row:3 () in
  let sparse = G.Generators.erdos_renyi ~seed:1 ~n:128 ~avg_degree:4. () in
  let sb = Gf.extract blocked and ss = Gf.extract sparse in
  check_true "blocked graph has high block fill" (sb.Gf.block_fill > 0.5);
  check_true "er graph has low block fill" (ss.Gf.block_fill < 0.3);
  check_true "bsr fill statistic agrees with the format"
    (abs_float (Bsr.fill (Bsr.of_csr blocked.G.Graph.adj) -. sb.Gf.block_fill)
    < 1e-9)

let test_neighbor_overlap_stat () =
  let over = G.Generators.community_overlap ~seed:3 ~n:256 ~groups:8 ~degree:8 () in
  let sparse = G.Generators.erdos_renyi ~seed:3 ~n:256 ~avg_degree:6. () in
  let so = Gf.extract over and ss = Gf.extract sparse in
  check_true "community graph has high neighbor overlap"
    (so.Gf.neighbor_overlap > 0.3);
  check_true "er graph has low neighbor overlap"
    (ss.Gf.neighbor_overlap < so.Gf.neighbor_overlap);
  check_true "cbm dedups the community graph"
    (Cbm.dedup_ratio (Cbm.of_csr over.G.Graph.adj) > 0.3)

(* ---- executor: the legal engine grid under the new formats ---- *)

let compile_model (m : Mp.Mp_ast.model) =
  let low = Mp.Lower.lower m in
  let compiled, _ =
    Granii.compile ~name:m.Mp.Mp_ast.name
      ~degree_leaves:(Mp.Lower.degree_leaves low ~binned:false)
      low.Mp.Lower.ir
  in
  (low, compiled)

let setup_bindings ?(seed = 11) ~k_in ~k_out low graph =
  let n = G.Graph.n_nodes graph in
  let env = { Dim.n; nnz = G.Graph.n_edges graph + n; k_in; k_out } in
  let params = Gnn.Layer.init_params ~seed ~env low in
  let h = Dense.random ~seed:(seed + 1) n k_in in
  (env, Gnn.Layer.bindings ~graph ~h params)

let format_localities =
  List.filter
    (fun c ->
      c.Locality.format = Locality.Bsr || c.Locality.format = Locality.Cbm)
    Locality.all_configs

let test_engine_grid_bitwise () =
  (* every legal engine configuration over the new formats — threads 1/2/4,
     workspace on/off, liveness on/off — executes gcn and gat bitwise
     identically to the plain path (cache + locality stays illegal and is
     checked below) *)
  check_true "both formats appear on the layout axis"
    (List.exists (fun c -> c.Locality.format = Locality.Bsr) format_localities
    && List.exists (fun c -> c.Locality.format = Locality.Cbm) format_localities);
  let graph = G.Generators.community_overlap ~seed:7 ~n:48 ~groups:6 ~degree:7 () in
  let grid =
    List.concat_map
      (fun locality ->
        List.concat_map
          (fun threads ->
            List.concat_map
              (fun workspace ->
                List.filter_map
                  (fun keep_intermediates ->
                    let cfg =
                      { Engine.default_config with
                        threads;
                        workspace;
                        keep_intermediates;
                        locality }
                    in
                    match Engine.create cfg with
                    | Ok e ->
                        Engine.shutdown e;
                        Some cfg
                    | Error _ -> None)
                  [ true; false ])
              [ false; true ])
          [ 1; 2; 4 ])
      format_localities
  in
  check_true "the format grid is non-trivial" (List.length grid > 20);
  List.iter
    (fun name ->
      let model = Mp.Mp_models.find name in
      let low, compiled = compile_model model in
      let _, bindings = setup_bindings ~k_in:9 ~k_out:7 low graph in
      List.iter
        (fun (c : Codegen.ccand) ->
          let reference =
            Executor.exec ~engine:(Engine.default ())
              ~timing:Executor.Measure ~graph ~bindings c.Codegen.plan
          in
          List.iter
            (fun cfg ->
              let engine = Engine.create_exn cfg in
              let r =
                Executor.exec ~engine ~timing:Executor.Measure ~graph
                  ~bindings c.Codegen.plan
              in
              check_true
                (Printf.sprintf "%s/%s under %s bitwise" name
                   c.Codegen.plan.Plan.name
                   (Engine.describe_config cfg))
                (value_bits_equal reference.Executor.output r.Executor.output);
              Engine.shutdown engine)
            grid)
        compiled.Codegen.candidates)
    [ "gcn"; "gat" ]

let test_bsr_reorder_rejected () =
  (* bsr tiles accumulate in column-sorted order; a reordered matrix keeps
     source entry order, so the pair is illegal — never enumerated by the
     selector and a typed error at engine construction *)
  List.iter
    (fun strategy ->
      let locality = { Locality.strategy; format = Locality.Bsr } in
      check_true
        (Locality.config_to_string locality ^ " is not enumerated")
        (not (List.mem locality Locality.all_configs));
      match Engine.create { Engine.default_config with locality } with
      | Error (Engine.Bsr_with_reorder c) ->
          check_true "error carries the layout" (c = locality)
      | Ok _ | Error _ ->
          Alcotest.fail
            (Locality.config_to_string locality ^ " must be rejected"))
    [ G.Reorder.Degree_sort; G.Reorder.Bfs; G.Reorder.Rcm ];
  check_true "identity+bsr stays legal"
    (Locality.legal { Locality.strategy = G.Reorder.Identity; format = Locality.Bsr })

let test_cache_with_formats_rejected () =
  List.iter
    (fun locality ->
      match
        Engine.create { Engine.default_config with cache = true; locality }
      with
      | Error (Engine.Cache_with_locality c) ->
          check_true "error carries the offending layout" (c = locality)
      | Ok _ | Error _ ->
          Alcotest.fail
            ("cache + " ^ Locality.config_to_string locality
           ^ " must be rejected"))
    format_localities

(* ---- joint selection ---- *)

let test_selector_picks_bsr () =
  (* a block-structured graph under a dense-leaning profile: the tiles run
     near dense-GEMM throughput and the model must route SpMM to BSR *)
  let graph = G.Generators.blocked ~seed:5 ~n:4096 ~blocks_per_row:6 () in
  let _, compiled = compile_model (Mp.Mp_models.find "gcn") in
  let cm = Cost_oracle.analytic Granii_hw.Hw_profile.a100 in
  let ld =
    Granii.optimize_localized ~oracle:cm ~graph ~k_in:256 ~k_out:256
      ~iterations:100 compiled
  in
  check_true "bsr format selected"
    (ld.Granii.config.Locality.format = Locality.Bsr);
  check_true "layout strictly cheaper than legacy"
    (ld.Granii.ldecision.Granii.choice.Selector.predicted_cost
    < ld.Granii.base_cost)

let test_selector_picks_cbm () =
  (* high neighborhood overlap: shared prefixes erase most of the gather
     traffic and the model must route SpMM to CBM *)
  let graph =
    G.Generators.community_overlap ~seed:5 ~n:4096 ~groups:64 ~degree:16 ()
  in
  let _, compiled = compile_model (Mp.Mp_models.find "gcn") in
  let cm = Cost_oracle.analytic Granii_hw.Hw_profile.cpu in
  let ld =
    Granii.optimize_localized ~oracle:cm ~graph ~k_in:256 ~k_out:256
      ~iterations:100 compiled
  in
  check_true "cbm format selected"
    (ld.Granii.config.Locality.format = Locality.Cbm);
  check_true "layout strictly cheaper than legacy"
    (ld.Granii.ldecision.Granii.choice.Selector.predicted_cost
    < ld.Granii.base_cost)

let test_selector_flops_never_picks_formats () =
  (* the profile-less ablation has no hardware terms: the layout adjustment
     vanishes and the default config must win on both graph families *)
  List.iter
    (fun graph ->
      let _, compiled = compile_model (Mp.Mp_models.find "gcn") in
      let feats = Featurizer.extract graph in
      let env =
        { Dim.n = G.Graph.n_nodes graph;
          nnz = G.Graph.n_edges graph + G.Graph.n_nodes graph;
          k_in = 256;
          k_out = 256 }
      in
      let lc =
        Selector.select_localized ~oracle:(Cost_oracle.flops_only ()) ~feats
          ~env ~iterations:100 compiled
      in
      check_true "flops model keeps the legacy layout"
        (Locality.is_default lc.Selector.config))
    [ G.Generators.blocked ~seed:6 ~n:512 ~blocks_per_row:4 ();
      G.Generators.community_overlap ~seed:6 ~n:512 ~groups:16 ~degree:24 () ]

let suite =
  [ test_bsr_roundtrip;
    test_bsr_roundtrip_weighted;
    test_bsr_shapes;
    test_cbm_roundtrip;
    test_cbm_roundtrip_weighted;
    test_bsr_spmm;
    test_bsr_spmm_weighted;
    test_bsr_spmm_shapes;
    test_bsr_sddmm;
    test_bsr_rank1;
    test_cbm_spmm;
    test_cbm_spmm_weighted;
    test_cbm_sddmm;
    Alcotest.test_case "pooled kernels bitwise" `Quick test_pooled_kernels;
    Alcotest.test_case "degenerate matrices" `Quick test_degenerate_matrices;
    Alcotest.test_case "cbm dedups duplicate rows" `Quick
      test_cbm_dedup_on_duplicates;
    test_counting_scatter_csc;
    Alcotest.test_case "counting scatter degenerate" `Quick
      test_counting_scatter_degenerate;
    Alcotest.test_case "block fill statistic" `Quick test_block_fill_stat;
    Alcotest.test_case "neighbor overlap statistic" `Quick
      test_neighbor_overlap_stat;
    Alcotest.test_case "engine grid bitwise" `Quick test_engine_grid_bitwise;
    Alcotest.test_case "bsr + reorder rejected" `Quick
      test_bsr_reorder_rejected;
    Alcotest.test_case "cache + formats rejected" `Quick
      test_cache_with_formats_rejected;
    Alcotest.test_case "selector picks bsr" `Quick test_selector_picks_bsr;
    Alcotest.test_case "selector picks cbm" `Quick test_selector_picks_cbm;
    Alcotest.test_case "selector flops never picks formats" `Quick
      test_selector_flops_never_picks_formats ]
