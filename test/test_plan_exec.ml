open Granii_core
open Test_util
module Dense = Granii_tensor.Dense
module G = Granii_graph
module Mp = Granii_mp
module Gnn = Granii_gnn

let small_graph ?(seed = 3) ?(n = 60) () =
  G.Generators.erdos_renyi ~seed ~n ~avg_degree:5. ()

let compile_model ?(binned = false) (m : Mp.Mp_ast.model) =
  let low = Mp.Lower.lower m in
  let compiled, stats =
    Granii.compile ~name:m.Mp.Mp_ast.name
      ~degree_leaves:(Mp.Lower.degree_leaves low ~binned)
      low.Mp.Lower.ir
  in
  (low, compiled, stats)

let run_candidate ~graph ~bindings (c : Codegen.ccand) =
  Executor.exec ~engine:(Engine.default ())
    ~timing:(Executor.Simulate Granii_hw.Hw_profile.a100) ~graph ~bindings
    c.Codegen.plan

let dense_of_output (r : Executor.report) =
  match r.Executor.output with
  | Executor.Vdense d -> d
  | Executor.Vsparse _ | Executor.Vdiag _ -> Alcotest.fail "expected dense output"

let setup_bindings ?(seed = 11) ~k_in low graph =
  let n = G.Graph.n_nodes graph in
  let env =
    { Dim.n; nnz = G.Graph.n_edges graph + n; k_in; k_out = 7 }
  in
  let params = Gnn.Layer.init_params ~seed ~env low in
  let h = Dense.random ~seed:(seed + 1) n k_in in
  (env, Gnn.Layer.bindings ~graph ~h params, h, params)

(* Every promoted candidate of every model must compute the same function. *)
let test_candidates_agree (m : Mp.Mp_ast.model) () =
  let graph = small_graph () in
  let low, compiled, _ = compile_model m in
  let _, bindings, _, _ = setup_bindings ~k_in:9 low graph in
  match compiled.Codegen.candidates with
  | [] -> Alcotest.fail "no candidates"
  | first :: rest ->
      let reference = dense_of_output (run_candidate ~graph ~bindings first) in
      List.iter
        (fun c ->
          let out = dense_of_output (run_candidate ~graph ~bindings c) in
          let diff = Dense.max_abs_diff reference out in
          check_true
            (Printf.sprintf "%s agrees with reference (diff %.2e)"
               c.Codegen.plan.Plan.name diff)
            (diff < 1e-8))
        rest

(* Hand-written dense reference for GCN: relu(D~ A~ D~ H W). *)
let test_gcn_against_dense_reference () =
  let graph = small_graph ~seed:5 ~n:40 () in
  let low, compiled, _ = compile_model Mp.Mp_models.gcn in
  let _, bindings, h, params = setup_bindings ~k_in:6 low graph in
  let a_dense = Granii_sparse.Csr.to_dense (G.Graph.with_self_loops graph) in
  let d = G.Graph.norm_inv_sqrt graph in
  let w = List.assoc "W" params in
  let expected =
    Dense.relu
      (Dense.row_broadcast d
         (Dense.matmul a_dense (Dense.row_broadcast d (Dense.matmul h w))))
  in
  List.iter
    (fun c ->
      let out = dense_of_output (run_candidate ~graph ~bindings c) in
      check_true
        (Printf.sprintf "%s matches dense math" c.Codegen.plan.Plan.name)
        (Dense.equal_approx ~eps:1e-8 expected out))
    compiled.Codegen.candidates

(* Hand-written reference for GAT. *)
let test_gat_against_dense_reference () =
  let graph = small_graph ~seed:6 ~n:30 () in
  let low, compiled, _ = compile_model Mp.Mp_models.gat in
  let _, bindings, h, params = setup_bindings ~k_in:5 low graph in
  let w = List.assoc "W" params in
  let a_src = List.assoc "Asrc" params and a_dst = List.assoc "Adst" params in
  let a_tilde = G.Graph.with_self_loops graph in
  let theta = Dense.matmul h w in
  let s = Dense.matmul theta a_src and t = Dense.matmul theta a_dst in
  let scores =
    Granii_sparse.Csr.map_values Fun.id a_tilde |> fun m ->
    let out = Array.make (Granii_sparse.Csr.nnz m) 0. in
    let idx = ref 0 in
    Granii_sparse.Csr.iter
      (fun i j _ ->
        let x = Dense.get s i 0 +. Dense.get t j 0 in
        out.(!idx) <- (if x > 0. then x else 0.2 *. x);
        incr idx)
      m;
    Granii_sparse.Csr.with_values m out
  in
  let alpha = Granii_sparse.Sparse_ops.row_softmax scores in
  let expected = Dense.relu (Granii_sparse.Spmm.run alpha theta) in
  List.iter
    (fun c ->
      let out = dense_of_output (run_candidate ~graph ~bindings c) in
      check_true
        (Printf.sprintf "%s matches attention math" c.Codegen.plan.Plan.name)
        (Dense.equal_approx ~eps:1e-8 expected out))
    compiled.Codegen.candidates

let test_phases () =
  let graph = small_graph () in
  let low, compiled, _ = compile_model Mp.Mp_models.gcn in
  let _, bindings, _, _ = setup_bindings ~k_in:9 low graph in
  (* the SDDMM-precompute candidate must hoist all graph-only work *)
  let precompute =
    List.find
      (fun c ->
        List.exists (( = ) Primitive.Sddmm_rank1) (Plan.primitives c.Codegen.plan))
      compiled.Codegen.candidates
  in
  let setup = Plan.setup_steps precompute.Codegen.plan in
  check_true "degree and SDDMM hoisted to setup" (List.length setup >= 2);
  List.iter
    (fun (s : Plan.step) ->
      match s.Plan.prim with
      | Primitive.Gemm _ | Primitive.Spmm _ ->
          Alcotest.fail "data-dependent step wrongly hoisted"
      | _ -> ())
    setup;
  let r = run_candidate ~graph ~bindings precompute in
  check_true "setup time accounted separately" (r.Executor.setup_time > 0.)

let test_no_hoist_baseline () =
  let low = Mp.Lower.lower Mp.Mp_models.gcn in
  let forest = Enumerate.forest low.Mp.Lower.ir in
  let plan =
    Plan.of_tree ~hoist:false
      ~degree_leaves:(Mp.Lower.degree_leaves low ~binned:true)
      ~name:"baseline" (List.hd forest)
  in
  check_int "nothing in setup without hoisting" 0 (List.length (Plan.setup_steps plan));
  check_true "degree step present"
    (List.exists
       (fun (s : Plan.step) ->
         match s.Plan.prim with Primitive.Degree { binned = true; _ } -> true | _ -> false)
       plan.Plan.steps)

let test_input_names () =
  let low = Mp.Lower.lower Mp.Mp_models.gcn in
  let forest = Enumerate.forest low.Mp.Lower.ir in
  let plan =
    Plan.of_tree ~degree_leaves:(Mp.Lower.degree_leaves low ~binned:false)
      ~name:"x" (List.hd forest)
  in
  let names = Plan.input_names plan in
  check_true "H and A and W required, D computed"
    (List.mem "H" names && List.mem "A" names && List.mem "W" names
    && not (List.mem "D" names))

let test_unbound_input_error () =
  let graph = small_graph () in
  let _, compiled, _ = compile_model Mp.Mp_models.gcn in
  let plan = (List.hd compiled.Codegen.candidates).Codegen.plan in
  check_true "unbound input raises Execution_error"
    (try
       ignore
         (Executor.exec ~engine:(Engine.default ()) ~timing:Executor.Measure
            ~graph ~bindings:[] plan);
       false
     with Executor.Execution_error _ -> true)

let test_measure_mode () =
  let graph = small_graph () in
  let low, compiled, _ = compile_model Mp.Mp_models.gcn in
  let _, bindings, _, _ = setup_bindings ~k_in:9 low graph in
  let c = List.hd compiled.Codegen.candidates in
  let r =
    Executor.exec ~engine:(Engine.default ()) ~timing:Executor.Measure ~graph
      ~bindings c.Codegen.plan
  in
  check_true "measured times are non-negative"
    (r.Executor.setup_time >= 0. && r.Executor.iteration_time >= 0.)

let test_estimate_consistent_with_simulation () =
  (* estimate (symbolic) and simulated execution should agree on ordering
     of two very different candidates. *)
  let graph = G.Generators.rmat ~seed:4 ~scale:9 ~edge_factor:32 () in
  let _, compiled, _ = compile_model Mp.Mp_models.gcn in
  let n = G.Graph.n_nodes graph in
  let env = { Dim.n; nnz = G.Graph.n_edges graph + n; k_in = 64; k_out = 8 } in
  let profile = Granii_hw.Hw_profile.a100 in
  List.iter
    (fun (c : Codegen.ccand) ->
      let setup, iter = Executor.estimate ~profile ~env c.Codegen.plan in
      check_true "estimates are positive and finite"
        (setup >= 0. && iter > 0. && Float.is_finite (setup +. iter)))
    compiled.Codegen.candidates

let test_sampled_graph_costs_less () =
  (* executing on a sampled graph must charge fewer SpMM bytes *)
  let graph = G.Generators.rmat ~seed:8 ~scale:9 ~edge_factor:16 () in
  let sampled = G.Sampling.neighborhood ~seed:1 ~fanout:2 graph in
  let low, compiled, _ = compile_model Mp.Mp_models.gcn in
  let c = List.hd compiled.Codegen.candidates in
  let time g =
    let _, bindings, _, _ = setup_bindings ~k_in:16 low g in
    let r = run_candidate ~graph:g ~bindings c in
    r.Executor.setup_time +. r.Executor.iteration_time
  in
  check_true "sampled graph simulates faster" (time sampled < time graph)

let test_kind_mismatch_errors () =
  let graph = small_graph () in
  let h = Dense.random ~seed:1 (G.Graph.n_nodes graph) 4 in
  let raises f =
    try ignore (f ()); false with Executor.Execution_error _ -> true
  in
  check_true "gemm on sparse operand rejected"
    (raises (fun () ->
         Executor.apply
           (Primitive.Gemm { m = Dim.N; k = Dim.Kin; n = Dim.Kout })
           graph
           [ Executor.Vsparse graph.G.Graph.adj; Executor.Vdense h ]));
  check_true "spmm on dense first operand rejected"
    (raises (fun () ->
         Executor.apply
           (Primitive.Spmm { k = Dim.Kin; weighted = false })
           graph
           [ Executor.Vdense h; Executor.Vdense h ]));
  check_true "wrong arity rejected"
    (raises (fun () ->
         Executor.apply Primitive.Diag_combine graph [ Executor.Vdense h ]));
  check_true "edge_softmax needs sparse"
    (raises (fun () ->
         Executor.apply Primitive.Edge_softmax graph [ Executor.Vdense h ]))

let test_apply_matches_plan_step () =
  (* Executor.apply is the same dispatch plans use: a GEMM applied directly
     equals Dense.matmul. *)
  let a = Dense.random ~seed:3 5 4 and b = Dense.random ~seed:4 4 6 in
  let graph = small_graph () in
  match
    Executor.apply
      (Primitive.Gemm { m = Dim.N; k = Dim.Kin; n = Dim.Kout })
      graph
      [ Executor.Vdense a; Executor.Vdense b ]
  with
  | Executor.Vdense c -> check_true "apply = matmul" (Dense.equal_approx c (Dense.matmul a b))
  | _ -> Alcotest.fail "dense expected"

let model_case m =
  Alcotest.test_case
    (Printf.sprintf "%s candidates agree" m.Mp.Mp_ast.name)
    `Quick (test_candidates_agree m)

let suite =
  List.map model_case Mp.Mp_models.all
  @ [ Alcotest.test_case "GCN dense reference" `Quick test_gcn_against_dense_reference;
      Alcotest.test_case "GAT dense reference" `Quick test_gat_against_dense_reference;
      Alcotest.test_case "setup/iteration phases" `Quick test_phases;
      Alcotest.test_case "baseline does not hoist" `Quick test_no_hoist_baseline;
      Alcotest.test_case "plan input names" `Quick test_input_names;
      Alcotest.test_case "unbound input error" `Quick test_unbound_input_error;
      Alcotest.test_case "measure mode" `Quick test_measure_mode;
      Alcotest.test_case "estimates finite" `Quick test_estimate_consistent_with_simulation;
      Alcotest.test_case "sampling reduces simulated cost" `Quick
        test_sampled_graph_costs_less;
      Alcotest.test_case "kind mismatches rejected" `Quick test_kind_mismatch_errors;
      Alcotest.test_case "apply = plan dispatch" `Quick test_apply_matches_plan_step ]
