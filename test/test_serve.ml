(* The serving runtime (lib/serve): deterministic concurrency harness.

   Manual mode (workers = 0) makes every interleaving scripted — nothing
   executes until the test pumps the scheduler — so batch coalescing,
   plan-cache counters, backpressure at the exact queue bound, arena
   isolation and graceful shutdown are all checked against hand counts.
   The batching legality rule is pinned differentially: a coalesced batch
   must be bitwise identical to executing each request sequentially. The
   threaded scheduler is covered by a randomized stress test (2-4 worker
   domains, mixed graphs/widths/tenants) where every response is compared
   against the single-threaded oracle; GRANII_STRESS multiplies the trial
   count (the @serve-stress alias). *)

open Granii_core
open Test_util
module Dense = Granii_tensor.Dense
module G = Granii_graph
module Mp = Granii_mp
module Gnn = Granii_gnn
module Serve = Granii_serve.Serve
module Batch = Granii_serve.Batch
module Plan_cache = Granii_serve.Plan_cache
module Obs = Granii_obs.Obs

let stress n =
  match Sys.getenv_opt "GRANII_STRESS" with
  | Some s -> (match int_of_string_opt s with Some k when k > 0 -> n * k | _ -> n)
  | None -> n

let small_graph () = G.Generators.erdos_renyi ~n:60 ~avg_degree:4. ()

(* A manual-mode server with one registered graph, shut down after [f]. *)
let with_server ?obs ?clock ?(cfg = Serve.default_config) f =
  let graph = small_graph () in
  let t = Serve.create ?obs ?clock cfg in
  Fun.protect ~finally:(fun () -> Serve.shutdown t) (fun () ->
      Serve.register_graph t ~name:"g" graph;
      f t graph)

let submit_exn t ~tenant ~k_out ~features =
  match Serve.submit t ~tenant ~graph:"g" ~model:"gcn" ~k_out ~features with
  | Ok ticket -> ticket
  | Error r -> Alcotest.fail ("unexpected rejection: " ^ Serve.reject_to_string r)

(* ---- plan cache: counters, LRU, the disabled arm ---- *)

let test_plan_cache_unit () =
  (* any localized_choice works as a stored value; produce one real one *)
  let graph = small_graph () in
  let _, compiled = Test_engine.compile_model (Mp.Mp_models.find "gcn") in
  let feats = Featurizer.extract graph in
  let env =
    { Dim.n = G.Graph.n_nodes graph;
      nnz = G.Graph.n_edges graph + G.Graph.n_nodes graph;
      k_in = 8;
      k_out = 4 }
  in
  let lc =
    Selector.select_localized
      ~oracle:(Cost_oracle.analytic Granii_hw.Hw_profile.cpu)
      ~feats ~env ~iterations:1 ~configs:[ Locality.default ] compiled
  in
  let key i =
    { Plan_cache.graph_fp = "fp"; model = "gcn"; k_in = 8; k_out = i;
      hw = "cpu"; threads = 1; layout = "identity+csr" }
  in
  (match Plan_cache.create ~capacity:(-1) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative capacity accepted");
  let pc = Plan_cache.create ~capacity:2 () in
  check_int "capacity" 2 (Plan_cache.capacity pc);
  check_true "miss on empty" (Plan_cache.find pc (key 1) = None);
  Plan_cache.add pc (key 1) lc;
  Plan_cache.add pc (key 2) lc;
  check_int "two entries" 2 (Plan_cache.length pc);
  check_true "hit" (Plan_cache.find pc (key 1) <> None);
  (* key 1 was just touched, so inserting key 3 must evict key 2 (LRU) *)
  Plan_cache.add pc (key 3) lc;
  check_true "lru survivor" (Plan_cache.peek pc (key 1) <> None);
  check_true "lru victim" (Plan_cache.peek pc (key 2) = None);
  (* peek is non-counting, replace is not an eviction *)
  Plan_cache.add pc (key 3) lc;
  let s = Plan_cache.stats pc in
  check_int "hits" 1 s.Plan_cache.hits;
  check_int "misses" 1 s.Plan_cache.misses;
  check_int "evictions" 1 s.Plan_cache.evictions;
  (* the disabled arm: capacity 0 stores nothing, every find is a miss *)
  let off = Plan_cache.create ~capacity:0 () in
  Plan_cache.add off (key 1) lc;
  check_true "disabled: no store" (Plan_cache.find off (key 1) = None);
  check_int "disabled: empty" 0 (Plan_cache.length off);
  check_int "disabled: misses counted" 1 (Plan_cache.stats off).Plan_cache.misses

(* ---- the batching legality rule, pinned differentially ---- *)

(* For every model: a direct Batch.exec_batch over B feature matrices must
   be bitwise identical to B sequential Executor.exec calls on the same
   plan — the widened steps (SpMM over a [n x B*k] RHS, elementwise maps)
   may not perturb a single bit. *)
let test_batch_differential () =
  let graph = small_graph () in
  let feats = Featurizer.extract graph in
  let b = 3 in
  List.iter
    (fun model_name ->
      let model = Mp.Mp_models.find model_name in
      let low, compiled = Test_engine.compile_model model in
      let k_in = 8 and k_out = 4 in
      let env, bindings =
        Test_engine.setup_bindings ~k_in ~k_out low graph
      in
      let lc =
        Selector.select_localized
          ~oracle:(Cost_oracle.analytic Granii_hw.Hw_profile.cpu)
          ~feats ~env ~iterations:1 ~configs:[ Locality.default ] compiled
      in
      let plan = lc.Selector.lchoice.Selector.candidate.Codegen.plan in
      let shared = List.filter (fun (name, _) -> name <> "H") bindings in
      let features =
        List.init b (fun i ->
            Dense.random ~seed:(100 + i) (G.Graph.n_nodes graph) k_in)
      in
      let outs, bstats =
        Batch.exec_batch ~graph ~bindings:shared ~input:"H" ~features plan
      in
      check_int (model_name ^ ": batch width") b bstats.Batch.width;
      check_int (model_name ^ ": one output per request") b (List.length outs);
      List.iteri
        (fun i (f, out) ->
          let r =
            Executor.exec
              ~engine:(Engine.default ())
              ~timing:Executor.Measure ~graph
              ~bindings:(("H", Executor.Vdense f) :: shared)
              plan
          in
          check_true
            (Printf.sprintf "%s: request %d bitwise equal to sequential"
               model_name i)
            (Test_engine.value_bits_equal r.Executor.output out))
        (List.combine features outs);
      (* plans with batch-dependent steps must actually widen or scatter;
         the step classes partition the plan *)
      check_int
        (model_name ^ ": step classes partition the plan")
        (List.length plan.Plan.steps)
        (bstats.Batch.shared_steps + bstats.Batch.widened_steps
        + bstats.Batch.scattered_steps))
    [ "gcn"; "gin"; "sgc"; "tagcn"; "gat"; "sage" ]

(* ---- coalescing: N queued requests, one executor invocation ---- *)

let test_coalescing () =
  with_server
    ~cfg:{ Serve.default_config with max_batch = 8 }
    (fun t graph ->
      let n = G.Graph.n_nodes graph in
      let k_in = 8 and k_out = 4 in
      let features =
        List.init 4 (fun i -> Dense.random ~seed:(10 + i) n k_in)
      in
      let tickets =
        List.mapi
          (fun i f ->
            submit_exn t ~tenant:(Printf.sprintf "t%d" (i mod 2)) ~k_out
              ~features:f)
          features
      in
      List.iter
        (fun tk -> check_true "pending before pump" (Serve.poll t tk = None))
        tickets;
      check_true "one pump serves the whole batch" (Serve.pump t);
      check_true "queues empty after the batch" (not (Serve.pump t));
      let s = Serve.stats t in
      check_int "one executor invocation" 1 s.Serve.batches;
      check_int "batch width 4" 4 s.Serve.max_width;
      check_int "all completed" 4 s.Serve.completed;
      check_true "widened steps executed" (s.Serve.widened_steps > 0);
      (* every response is bitwise the sequential oracle's answer *)
      List.iter2
        (fun tk f ->
          match Serve.poll t tk with
          | None -> Alcotest.fail "ticket not completed"
          | Some r ->
              check_int "response width" 4 r.Serve.width;
              check_true "bitwise equal to the oracle"
                (Test_engine.value_bits_equal r.Serve.value
                   (Serve.oracle t ~graph:"g" ~model:"gcn" ~k_out ~features:f)))
        tickets features;
      (* incompatible requests (different k_out) never share a batch *)
      let f = Dense.random ~seed:50 n k_in in
      let _ = submit_exn t ~tenant:"t0" ~k_out:4 ~features:f in
      let _ = submit_exn t ~tenant:"t1" ~k_out:6 ~features:f in
      Serve.drain t;
      let s = Serve.stats t in
      check_int "incompatible widths stay separate" 3 s.Serve.batches)

(* ---- plan cache through the server: hand-counted hits/misses ---- *)

let test_plan_cache_counts () =
  with_server
    ~cfg:{ Serve.default_config with batching = false; plan_cache = 8 }
    (fun t graph ->
      let n = G.Graph.n_nodes graph in
      let submit k_out seed =
        ignore
          (submit_exn t ~tenant:"a" ~k_out
             ~features:(Dense.random ~seed n 8)
            : Serve.ticket)
      in
      (* 5 same-shape requests: selection runs once, then 4 hits *)
      for i = 1 to 5 do submit 4 i done;
      Serve.drain t;
      let pc = (Serve.stats t).Serve.plan_cache in
      check_int "one miss for the first shape" 1 pc.Plan_cache.misses;
      check_int "hits for the rest" 4 pc.Plan_cache.hits;
      (* a new output width is a new shape: exactly one more miss *)
      submit 6 9;
      Serve.drain t;
      let pc = (Serve.stats t).Serve.plan_cache in
      check_int "second shape misses once" 2 pc.Plan_cache.misses;
      check_int "hits unchanged" 4 pc.Plan_cache.hits)

(* ---- plan cache: the layout axis is part of the key (regression) ---- *)

let test_plan_cache_layout_key () =
  (* regression: two engine configs that localize differently (ordering or
     sparse format) must never share a plan — keys identical except for
     [layout] are distinct entries, not hits *)
  let graph = small_graph () in
  let _, compiled = Test_engine.compile_model (Mp.Mp_models.find "gcn") in
  let feats = Featurizer.extract graph in
  let env =
    { Dim.n = G.Graph.n_nodes graph;
      nnz = G.Graph.n_edges graph + G.Graph.n_nodes graph;
      k_in = 8;
      k_out = 4 }
  in
  let lc =
    Selector.select_localized
      ~oracle:(Cost_oracle.analytic Granii_hw.Hw_profile.cpu)
      ~feats ~env ~iterations:1 ~configs:[ Locality.default ] compiled
  in
  let key layout =
    { Plan_cache.graph_fp = "fp"; model = "gcn"; k_in = 8; k_out = 4;
      hw = "cpu"; threads = 1; layout }
  in
  let layouts = [ "identity+csr"; "identity+bsr"; "degree+cbm"; "rcm+hybrid" ] in
  let pc = Plan_cache.create ~capacity:8 () in
  Plan_cache.add pc (key "identity+csr") lc;
  List.iter
    (fun l ->
      check_true (l ^ " does not hit another layout's plan")
        (Plan_cache.find pc (key l) = None))
    (List.tl layouts);
  List.iter (fun l -> Plan_cache.add pc (key l) lc) (List.tl layouts);
  check_int "each layout is its own entry" (List.length layouts)
    (Plan_cache.length pc);
  (* the engine bridge carries the locality axis into the serving config,
     and a locality-configured server still answers bitwise like the oracle *)
  let locality =
    { Locality.strategy = G.Reorder.Degree_sort; format = Locality.Cbm }
  in
  let ec = { Engine.default_config with locality } in
  let sc = Serve.with_engine_axes ec Serve.default_config in
  check_true "locality carried" (sc.Serve.locality = locality);
  with_server
    ~cfg:{ Serve.default_config with batching = false; plan_cache = 8; locality }
    (fun t graph ->
      let n = G.Graph.n_nodes graph in
      let f = Dense.random ~seed:61 n 8 in
      let tk = submit_exn t ~tenant:"a" ~k_out:4 ~features:f in
      Serve.drain t;
      match Serve.poll t tk with
      | None -> Alcotest.fail "ticket not completed"
      | Some r ->
          check_true "localized serving bitwise equals the oracle"
            (Test_engine.value_bits_equal r.Serve.value
               (Serve.oracle t ~graph:"g" ~model:"gcn" ~k_out:4 ~features:f)))

(* ---- backpressure: typed rejection at the exact bound ---- *)

let test_backpressure () =
  with_server
    ~cfg:{ Serve.default_config with queue_bound = 2 }
    (fun t graph ->
      let f = Dense.random ~seed:1 (G.Graph.n_nodes graph) 8 in
      let ok tenant =
        match Serve.submit t ~tenant ~graph:"g" ~model:"gcn" ~k_out:4
                ~features:f with
        | Ok _ -> ()
        | Error r -> Alcotest.fail (Serve.reject_to_string r)
      in
      ok "a";
      ok "a";
      check_int "queue at the bound" 2 (Serve.queue_depth t "a");
      (match Serve.submit t ~tenant:"a" ~graph:"g" ~model:"gcn" ~k_out:4
               ~features:f with
      | Error (Serve.Queue_full { tenant; bound }) ->
          check_true "rejection names the tenant" (tenant = "a");
          check_int "rejection carries the bound" 2 bound
      | Ok _ -> Alcotest.fail "admission beyond the bound"
      | Error Serve.Shutdown -> Alcotest.fail "wrong rejection");
      (* bounds are per tenant: another tenant still has room *)
      ok "b";
      let s = Serve.stats t in
      check_int "rejected counted" 1 s.Serve.rejected;
      check_int "admitted counted" 3 s.Serve.submitted;
      (* draining frees the slots *)
      Serve.drain t;
      check_int "queue drained" 0 (Serve.queue_depth t "a");
      ok "a")

(* ---- arena isolation: a response survives later requests ---- *)

let test_arena_isolation () =
  (* batching off so every execution is width 1 and uses its tenant's
     arena — the path where a stale response would be overwritten if the
     runtime skipped the copy-out *)
  with_server
    ~cfg:{ Serve.default_config with batching = false }
    (fun t graph ->
      let n = G.Graph.n_nodes graph in
      let f1 = Dense.random ~seed:1 n 8 and f2 = Dense.random ~seed:2 n 8 in
      let tk1 = submit_exn t ~tenant:"a" ~k_out:4 ~features:f1 in
      let r1 = Serve.await t tk1 in
      let expect1 =
        Serve.oracle t ~graph:"g" ~model:"gcn" ~k_out:4 ~features:f1
      in
      check_true "first response correct"
        (Test_engine.value_bits_equal r1.Serve.value expect1);
      (* run more requests through the same tenant's arena, and another
         tenant's, then re-check the first response bit for bit *)
      for i = 0 to 3 do
        let tenant = if i mod 2 = 0 then "a" else "b" in
        ignore
          (Serve.await t (submit_exn t ~tenant ~k_out:4 ~features:f2)
            : Serve.response)
      done;
      check_true "first response still intact after later requests"
        (Test_engine.value_bits_equal r1.Serve.value expect1))

(* ---- graceful shutdown ---- *)

let test_shutdown () =
  let graph = small_graph () in
  let t = Serve.create Serve.default_config in
  Serve.register_graph t ~name:"g" graph;
  let f = Dense.random ~seed:1 (G.Graph.n_nodes graph) 8 in
  let tickets =
    List.init 3 (fun i ->
        submit_exn t ~tenant:(Printf.sprintf "t%d" i) ~k_out:4 ~features:f)
  in
  (* nothing pumped yet: all three are still queued when shutdown begins *)
  Serve.shutdown t;
  List.iter
    (fun tk ->
      check_true "admitted request answered during drain"
        (Serve.poll t tk <> None))
    tickets;
  (match Serve.submit t ~tenant:"t0" ~graph:"g" ~model:"gcn" ~k_out:4
           ~features:f with
  | Error Serve.Shutdown -> ()
  | Ok _ | Error (Serve.Queue_full _) ->
      Alcotest.fail "submit after shutdown must reject with Shutdown");
  Serve.shutdown t;
  (* idempotent *)
  let s = Serve.stats t in
  check_int "drained everything" 3 s.Serve.completed;
  check_int "post-shutdown submit rejected" 1 s.Serve.rejected

(* ---- scripted latency via the injected clock ---- *)

let test_manual_clock () =
  let now = ref 0. in
  with_server ~clock:(fun () -> !now) (fun t graph ->
      let f = Dense.random ~seed:1 (G.Graph.n_nodes graph) 8 in
      let tk = submit_exn t ~tenant:"a" ~k_out:4 ~features:f in
      now := 0.25;
      let tk2 = submit_exn t ~tenant:"b" ~k_out:4 ~features:f in
      now := 1.0;
      check_true "pump" (Serve.pump t);
      let r = Option.get (Serve.poll t tk) in
      let r2 = Option.get (Serve.poll t tk2) in
      check_float "latency measured on the injected clock" 1.0 r.Serve.latency;
      check_float "second submission's scripted latency" 0.75 r2.Serve.latency)

(* ---- config plumbing and argument validation ---- *)

let test_config () =
  let bad name cfg =
    match Serve.create cfg with
    | exception Invalid_argument _ -> ()
    | t ->
        Serve.shutdown t;
        Alcotest.fail (name ^ ": invalid config accepted")
  in
  bad "queue_bound" { Serve.default_config with queue_bound = 0 };
  bad "max_batch" { Serve.default_config with max_batch = 0 };
  bad "workers" { Serve.default_config with workers = -1 };
  bad "batch_window" { Serve.default_config with batch_window = -1 };
  bad "plan_cache" { Serve.default_config with plan_cache = -1 };
  bad "threads" { Serve.default_config with threads = 0 };
  bad "iterations" { Serve.default_config with iterations = 0 };
  (* the engine's serving axes carry over verbatim *)
  let ec = { Engine.default_config with queue_bound = 7; batch_window = 13;
             threads = 2 } in
  let sc = Serve.with_engine_axes ec Serve.default_config in
  check_int "queue_bound carried" 7 sc.Serve.queue_bound;
  check_int "batch_window carried" 13 sc.Serve.batch_window;
  check_int "threads carried" 2 sc.Serve.threads;
  with_server (fun t graph ->
      let n = G.Graph.n_nodes graph in
      let f = Dense.random ~seed:1 n 8 in
      let expect_invalid name fn =
        match fn () with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
      in
      expect_invalid "duplicate graph" (fun () ->
          Serve.register_graph t ~name:"g" graph);
      expect_invalid "unknown graph" (fun () ->
          Serve.submit t ~tenant:"a" ~graph:"nope" ~model:"gcn" ~k_out:4
            ~features:f);
      expect_invalid "unknown model" (fun () ->
          Serve.submit t ~tenant:"a" ~graph:"g" ~model:"nope" ~k_out:4
            ~features:f);
      expect_invalid "feature row mismatch" (fun () ->
          Serve.submit t ~tenant:"a" ~graph:"g" ~model:"gcn" ~k_out:4
            ~features:(Dense.random ~seed:1 (n + 1) 8));
      expect_invalid "k_out < 1" (fun () ->
          Serve.submit t ~tenant:"a" ~graph:"g" ~model:"gcn" ~k_out:0
            ~features:f);
      expect_invalid "pump in threaded mode" (fun () ->
          let tt = Serve.create { Serve.default_config with workers = 1 } in
          Fun.protect ~finally:(fun () -> Serve.shutdown tt) (fun () ->
              ignore (Serve.pump tt : bool))))

(* ---- serving metrics reach the registry ---- *)

let test_metrics () =
  let obs = Obs.create () in
  with_server ~obs
    ~cfg:{ Serve.default_config with queue_bound = 1 }
    (fun t graph ->
      let f = Dense.random ~seed:1 (G.Graph.n_nodes graph) 8 in
      ignore (submit_exn t ~tenant:"a" ~k_out:4 ~features:f : Serve.ticket);
      ignore
        (Serve.submit t ~tenant:"a" ~graph:"g" ~model:"gcn" ~k_out:4
           ~features:f
          : (Serve.ticket, Serve.reject) result);
      Serve.drain t;
      let m = Option.get obs.Obs.metrics in
      let counter name =
        match List.assoc_opt name (Obs.Metrics.counters m) with
        | Some v -> v
        | None -> Alcotest.fail ("missing counter " ^ name)
      in
      check_int "submitted counter" 1 (counter "serve.requests.submitted");
      check_int "completed counter" 1 (counter "serve.requests.completed");
      check_int "rejected counter" 1 (counter "serve.requests.rejected");
      check_int "batches counter" 1 (counter "serve.batches");
      check_int "plan-cache miss counter" 1 (counter "serve.plan_cache.misses");
      check_true "latency histogram populated"
        (List.mem_assoc "serve.latency" (Obs.Metrics.histograms m));
      check_true "queue-depth gauge present"
        (List.mem_assoc "serve.queue.depth.a" (Obs.Metrics.gauges m));
      check_true "prometheus export carries the serving metrics"
        (contains (Obs.Metrics.to_prometheus m) "serve_requests_submitted"))

(* ---- threaded stress: random streams vs the single-threaded oracle ---- *)

let test_threaded_stress () =
  let rng = Random.State.make [| 0x5e47e |] in
  let trials = stress 2 in
  for trial = 1 to trials do
    let workers = 2 + Random.State.int rng 3 in
    let cfg =
      { Serve.default_config with
        workers;
        queue_bound = 8;
        max_batch = 4;
        batch_window = (if trial mod 2 = 0 then 100 else 0);
        plan_cache = 8 }
    in
    let t = Serve.create cfg in
    let g1 = small_graph () in
    let g2 = G.Generators.grid2d ~rows:6 ~cols:8 () in
    Serve.register_graph t ~name:"g1" g1;
    Serve.register_graph t ~name:"g2" g2;
    let k_in = 8 in
    let pool g = Array.init 3 (fun i -> Dense.random ~seed:i (G.Graph.n_nodes g) k_in) in
    let feats = [| ("g1", pool g1); ("g2", pool g2) |] in
    let models = [| "gcn"; "sgc" |] in
    let n_req = stress 24 in
    let requests =
      List.init n_req (fun i ->
          let graph, fpool = feats.(Random.State.int rng 2) in
          let fidx = Random.State.int rng 3 in
          ( i,
            Printf.sprintf "t%d" (Random.State.int rng 3),
            graph,
            fpool.(fidx),
            models.(Random.State.int rng 2),
            4 + (2 * Random.State.int rng 2) ))
    in
    let retries = ref 0 in
    let tickets =
      List.map
        (fun (_, tenant, graph, f, model, k_out) ->
          let rec go () =
            match Serve.submit t ~tenant ~graph ~model ~k_out ~features:f with
            | Ok tk -> tk
            | Error (Serve.Queue_full _) ->
                incr retries;
                Unix.sleepf 200e-6;
                go ()
            | Error Serve.Shutdown -> Alcotest.fail "spurious shutdown"
          in
          (go (), graph, f, model, k_out))
        requests
    in
    let responses =
      List.map
        (fun (tk, graph, f, model, k_out) ->
          let r = Serve.await t tk in
          (tk, r, graph, f, model, k_out))
        tickets
    in
    let s = Serve.stats t in
    Serve.shutdown t;
    check_int
      (Printf.sprintf "trial %d: every admitted request completed" trial)
      n_req s.Serve.completed;
    check_int
      (Printf.sprintf "trial %d: admissions equal requests" trial)
      n_req s.Serve.submitted;
    check_int
      (Printf.sprintf "trial %d: rejections equal observed retries" trial)
      !retries s.Serve.rejected;
    check_true
      (Printf.sprintf "trial %d: batches cover completions" trial)
      (s.Serve.sum_width = n_req);
    (* no request lost or double-answered: polling again returns the same
       completed response object *)
    let expected = Hashtbl.create 32 in
    List.iter
      (fun (tk, (r : Serve.response), graph, f, model, k_out) ->
        (match Serve.poll t tk with
        | Some r' -> check_true "stable completion" (r' == r)
        | None -> Alcotest.fail "completed ticket lost its response");
        let key = (graph, f.Dense.data.(0), model, k_out) in
        let reference =
          match Hashtbl.find_opt expected key with
          | Some v -> v
          | None ->
              let v = Serve.oracle t ~graph ~model ~k_out ~features:f in
              Hashtbl.replace expected key v;
              v
        in
        check_true
          (Printf.sprintf "trial %d: response matches the oracle" trial)
          (Test_engine.value_bits_equal r.Serve.value reference))
      responses
  done

let suite =
  [ Alcotest.test_case "plan cache: counters, LRU, disabled arm" `Quick
      test_plan_cache_unit;
    Alcotest.test_case "batching legality: batch bitwise = sequential" `Quick
      test_batch_differential;
    Alcotest.test_case "coalescing: N requests, one invocation" `Quick
      test_coalescing;
    Alcotest.test_case "plan cache: served hits/misses vs hand count" `Quick
      test_plan_cache_counts;
    Alcotest.test_case "plan cache: layout axis keys plans" `Quick
      test_plan_cache_layout_key;
    Alcotest.test_case "backpressure: typed rejection at the bound" `Quick
      test_backpressure;
    Alcotest.test_case "arena isolation across requests" `Quick
      test_arena_isolation;
    Alcotest.test_case "graceful shutdown drains admitted work" `Quick
      test_shutdown;
    Alcotest.test_case "injected clock scripts latencies" `Quick
      test_manual_clock;
    Alcotest.test_case "config validation and engine-axis bridge" `Quick
      test_config;
    Alcotest.test_case "serving metrics reach the registry" `Quick
      test_metrics;
    Alcotest.test_case "threaded stress vs single-threaded oracle" `Slow
      test_threaded_stress ]
