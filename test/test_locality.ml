(* The locality engine: stable reordering, the hybrid (ELL + CSR tail)
   format, the CSC counting-sort construction, joint layout selection, and
   the executor's bitwise round-trip guarantee under a non-default layout. *)

open Granii_core
open Test_util
module Dense = Granii_tensor.Dense
module Csr = Granii_sparse.Csr
module Csc = Granii_sparse.Csc
module Coo = Granii_sparse.Coo
module Hybrid = Granii_sparse.Hybrid
module Spmm = Granii_sparse.Spmm
module Sddmm = Granii_sparse.Sddmm
module G = Granii_graph
module Reorder = G.Reorder
module Mp = Granii_mp
module Gnn = Granii_gnn

let bits_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun i x ->
          if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then ok := false)
        a;
      !ok)

(* Structure and values must match exactly — same entry order, same bits. *)
let csr_bits_equal (a : Csr.t) (b : Csr.t) =
  a.Csr.n_rows = b.Csr.n_rows && a.Csr.n_cols = b.Csr.n_cols
  && a.Csr.row_ptr = b.Csr.row_ptr && a.Csr.col_idx = b.Csr.col_idx
  &&
  match (a.Csr.values, b.Csr.values) with
  | None, None -> true
  | Some v, Some w -> bits_equal v w
  | _ -> false

let dense_bits_equal (a : Dense.t) (b : Dense.t) =
  a.Dense.rows = b.Dense.rows && a.Dense.cols = b.Dense.cols
  && bits_equal a.Dense.data b.Dense.data

let value_bits_equal (a : Executor.value) (b : Executor.value) =
  match (a, b) with
  | Executor.Vdense x, Executor.Vdense y -> dense_bits_equal x y
  | Executor.Vdiag x, Executor.Vdiag y -> bits_equal x y
  | Executor.Vsparse x, Executor.Vsparse y -> csr_bits_equal x y
  | _ -> false

(* Random square weighted matrix: a random graph's adjacency with random
   values attached (graphs themselves are structural). *)
let square_weighted_gen =
  let open QCheck2.Gen in
  let* g = graph_gen in
  let* seed = int_range 0 10_000 in
  let adj = g.G.Graph.adj in
  let rng = Granii_tensor.Prng.create seed in
  let values =
    Array.init (Csr.nnz adj) (fun _ -> Granii_tensor.Prng.uniform rng (-2.) 2.)
  in
  return (Csr.with_values adj values)

let strategy_gen =
  QCheck2.Gen.oneofl
    [ Reorder.Identity; Reorder.Degree_sort; Reorder.Bfs; Reorder.Rcm ]

(* ---- reordering ---- *)

let test_perm_bijection =
  qtest "reorder: perm and inv are inverse bijections"
    QCheck2.Gen.(pair strategy_gen graph_gen)
    (fun (strategy, g) ->
      let r = Reorder.compute strategy g.G.Graph.adj in
      let n = Array.length r.Reorder.perm in
      n = G.Graph.n_nodes g
      && Array.for_all
           (fun i -> r.Reorder.inv.(r.Reorder.perm.(i)) = i)
           (Array.init n Fun.id))

let test_permute_roundtrip =
  qtest "reorder: inverse permutation restores the matrix bitwise"
    QCheck2.Gen.(pair strategy_gen square_weighted_gen)
    (fun (strategy, m) ->
      let r = Reorder.compute strategy m in
      let inv = Reorder.of_perm ~strategy r.Reorder.inv in
      csr_bits_equal (Reorder.permute_csr inv (Reorder.permute_csr r m)) m)

let test_permute_semantics () =
  (* P A P^T really relabels: entry (i, j) moves to (perm i, perm j). *)
  let g = G.Generators.erdos_renyi ~seed:5 ~n:30 ~avg_degree:4. () in
  let m = g.G.Graph.adj in
  let r = Reorder.compute Reorder.Degree_sort m in
  let pm = Reorder.permute_csr r m in
  let d = Csr.to_dense m and pd = Csr.to_dense pm in
  for i = 0 to 29 do
    for j = 0 to 29 do
      check_float
        (Printf.sprintf "entry (%d,%d)" i j)
        (Dense.get d i j)
        (Dense.get pd r.Reorder.perm.(i) r.Reorder.perm.(j))
    done
  done

let test_dense_vector_roundtrip =
  qtest "reorder: dense-row and vector permutations invert"
    QCheck2.Gen.(pair strategy_gen graph_gen)
    (fun (strategy, g) ->
      let n = G.Graph.n_nodes g in
      let r = Reorder.compute strategy g.G.Graph.adj in
      let d = Dense.random ~seed:7 n 5 in
      let v = Array.init n (fun i -> float_of_int i) in
      dense_bits_equal (Reorder.inverse_dense_rows r (Reorder.permute_dense_rows r d)) d
      && Reorder.inverse_vector r (Reorder.permute_vector r v) = v)

let test_rcm_bandwidth () =
  (* The classic RCM result: on a mesh whose natural order is shuffled, the
     reordering restores a small bandwidth. *)
  let g = G.Generators.grid2d ~rows:16 ~cols:16 () in
  let m = g.G.Graph.adj in
  let shuffle =
    let rng = Granii_tensor.Prng.create 42 in
    let a = Array.init 256 Fun.id in
    for i = 255 downto 1 do
      let j = Granii_tensor.Prng.int rng (i + 1) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done;
    a
  in
  let shuffled =
    Reorder.permute_csr (Reorder.of_perm ~strategy:Reorder.Identity shuffle) m
  in
  let r = Reorder.compute Reorder.Rcm shuffled in
  let _, before = Reorder.bandwidth shuffled in
  let _, after = Reorder.bandwidth ~order:r shuffled in
  check_true
    (Printf.sprintf "rcm shrinks max bandwidth (%d -> %d)" before after)
    (after < before / 2)

let test_strategy_strings () =
  List.iter
    (fun s ->
      check_true
        (Reorder.strategy_to_string s)
        (Reorder.strategy_of_string (Reorder.strategy_to_string s) = Some s))
    Reorder.all_strategies;
  check_true "none aliases identity"
    (Reorder.strategy_of_string "none" = Some Reorder.Identity);
  check_true "unknown rejected" (Reorder.strategy_of_string "sorted" = None)

(* ---- conversions: CSC and hybrid round-trips ---- *)

let test_csc_roundtrip =
  qtest "csc: of_csr/to_csr round-trip is exact" csr_gen (fun m ->
      csr_bits_equal (Csc.to_csr (Csc.of_csr m)) m)

let test_csc_columns_sorted =
  (* The counting-scatter construction must emit sorted row ids per column
     even when fed unsorted (permuted) rows. *)
  qtest "csc: per-column row ids ascend even from permuted input"
    QCheck2.Gen.(pair strategy_gen square_weighted_gen)
    (fun (strategy, m) ->
      let r = Reorder.compute strategy m in
      let c = Csc.of_csr (Reorder.permute_csr r m) in
      let ok = ref true in
      for j = 0 to c.Csc.n_cols - 1 do
        for p = c.Csc.col_ptr.(j) to c.Csc.col_ptr.(j + 1) - 2 do
          if c.Csc.row_idx.(p) >= c.Csc.row_idx.(p + 1) then ok := false
        done
      done;
      !ok)

let test_hybrid_roundtrip =
  qtest "hybrid: of_csr/to_csr round-trip is exact" csr_gen (fun m ->
      csr_bits_equal (Hybrid.to_csr (Hybrid.of_csr m)) m)

let test_hybrid_widths =
  qtest "hybrid: round-trip and accounting hold at every width"
    QCheck2.Gen.(pair (int_range 1 8) csr_gen)
    (fun (width, m) ->
      let h = Hybrid.of_csr ~width m in
      csr_bits_equal (Hybrid.to_csr h) m
      && Hybrid.ell_nnz h + Hybrid.tail_nnz h = Csr.nnz m
      && Hybrid.packing h >= 0. && Hybrid.packing h <= 1.)

(* ---- hybrid kernels: bitwise against the CSR kernels ---- *)

let test_hybrid_spmm =
  qtest "hybrid: spmm bitwise equals csr spmm"
    QCheck2.Gen.(pair csr_gen (int_range 1 9))
    (fun (m, k) ->
      let b = Dense.random ~seed:3 m.Csr.n_cols k in
      dense_bits_equal (Hybrid.spmm (Hybrid.of_csr m) b) (Spmm.run m b))

let test_hybrid_spmm_weighted =
  qtest "hybrid: weighted spmm bitwise equals csr spmm"
    QCheck2.Gen.(pair square_weighted_gen (int_range 1 9))
    (fun (m, k) ->
      let b = Dense.random ~seed:4 m.Csr.n_cols k in
      dense_bits_equal (Hybrid.spmm (Hybrid.of_csr m) b) (Spmm.run m b))

let test_hybrid_sddmm =
  qtest "hybrid: sddmm bitwise equals csr sddmm"
    QCheck2.Gen.(pair square_weighted_gen (int_range 1 9))
    (fun (m, k) ->
      let a = Dense.random ~seed:5 m.Csr.n_rows k in
      let b = Dense.random ~seed:6 k m.Csr.n_cols in
      csr_bits_equal (Hybrid.sddmm (Hybrid.of_csr m) a b) (Sddmm.run m a b))

let test_hybrid_rank1 =
  qtest "hybrid: rank1 sddmm bitwise equals csr rank1" square_weighted_gen
    (fun m ->
      let rng = Granii_tensor.Prng.create 9 in
      let dl =
        Array.init m.Csr.n_rows (fun _ -> Granii_tensor.Prng.uniform rng 0.1 2.)
      in
      let dr =
        Array.init m.Csr.n_cols (fun _ -> Granii_tensor.Prng.uniform rng 0.1 2.)
      in
      csr_bits_equal (Hybrid.rank1 (Hybrid.of_csr m) dl dr) (Sddmm.rank1 m dl dr))

(* ---- executor: localized run equals the legacy run bitwise ---- *)

let compile_model (m : Mp.Mp_ast.model) =
  let low = Mp.Lower.lower m in
  let compiled, _ =
    Granii.compile ~name:m.Mp.Mp_ast.name
      ~degree_leaves:(Mp.Lower.degree_leaves low ~binned:false)
      low.Mp.Lower.ir
  in
  (low, compiled)

let setup_bindings ?(seed = 11) ~k_in ~k_out low graph =
  let n = G.Graph.n_nodes graph in
  let env = { Dim.n; nnz = G.Graph.n_edges graph + n; k_in; k_out } in
  let params = Gnn.Layer.init_params ~seed ~env low in
  let h = Dense.random ~seed:(seed + 1) n k_in in
  (env, Gnn.Layer.bindings ~graph ~h params)

let all_localities =
  List.filter (fun c -> not (Locality.is_default c)) Locality.all_configs

let check_model_roundtrip name graph =
  let model = Mp.Mp_models.find name in
  let low, compiled = compile_model model in
  let _, bindings = setup_bindings ~k_in:9 ~k_out:7 low graph in
  List.iter
    (fun (c : Codegen.ccand) ->
      let reference =
        Executor.exec ~engine:(Engine.default ()) ~timing:Executor.Measure
          ~graph ~bindings c.Codegen.plan
      in
      List.iter
        (fun locality ->
          let localized =
            Executor.exec
              ~engine:(Engine.create_exn { Engine.default_config with locality })
              ~timing:Executor.Measure ~graph ~bindings c.Codegen.plan
          in
          check_true
            (Printf.sprintf "%s/%s under %s bitwise" name c.Codegen.plan.Plan.name
               (Locality.config_to_string locality))
            (value_bits_equal reference.Executor.output localized.Executor.output))
        all_localities)
    compiled.Codegen.candidates

let test_executor_roundtrip_gcn () =
  check_model_roundtrip "gcn" (G.Generators.barabasi_albert ~seed:2 ~n:70 ~m:4 ())

let test_executor_roundtrip_gat () =
  check_model_roundtrip "gat" (G.Generators.erdos_renyi ~seed:8 ~n:50 ~avg_degree:5. ())

let test_run_iterations_localized () =
  let model = Mp.Mp_models.find "gcn" in
  let low, compiled = compile_model model in
  let graph = G.Generators.barabasi_albert ~seed:4 ~n:60 ~m:3 () in
  let _, bindings = setup_bindings ~k_in:9 ~k_out:7 low graph in
  let plan = (List.hd compiled.Codegen.candidates).Codegen.plan in
  let run locality =
    Executor.exec_iterations
      ~engine:(Engine.create_exn { Engine.default_config with locality })
      ~timing:Executor.Measure ~graph ~bindings ~iterations:3 plan
  in
  let reference = run Locality.default in
  check_float "no layout work by default" 0. reference.Executor.layout_time;
  List.iter
    (fun locality ->
      let r = run locality in
      check_true
        (Printf.sprintf "iterated output under %s bitwise"
           (Locality.config_to_string locality))
        (value_bits_equal reference.Executor.output r.Executor.output);
      check_true "layout work is accounted" (r.Executor.layout_time > 0.))
    all_localities

let test_cache_locality_rejected () =
  (* the legality matrix lives in Engine.create: a cache combined with a
     non-default layout is a typed error (cached values would live in a
     permuted vertex id space), also when the cache arrives by injection. *)
  let locality =
    { Locality.strategy = Reorder.Degree_sort; format = Locality.Hybrid }
  in
  (match Engine.create { Engine.default_config with cache = true; locality } with
  | Error (Engine.Cache_with_locality c) ->
      check_true "error carries the offending layout" (c = locality)
  | Ok _ | Error _ -> Alcotest.fail "cache + locality must be rejected");
  check_true "an injected cache raises the same typed error"
    (try
       ignore
         (Engine.create_exn ~cache:(Engine.cache_create ())
            { Engine.default_config with locality });
       false
     with Engine.Error (Engine.Cache_with_locality _) -> true)

(* ---- featurizer layout statistics ---- *)

let test_layout_features () =
  let g = G.Generators.barabasi_albert ~seed:1 ~n:200 ~m:5 () in
  let f = Featurizer.extract g in
  let s = f.Featurizer.stats in
  check_true "packing in (0, 1]"
    (s.G.Graph_features.ell_packing > 0. && s.G.Graph_features.ell_packing <= 1.);
  check_true "bandwidth normalized"
    (s.G.Graph_features.avg_bandwidth >= 0.
    && s.G.Graph_features.avg_bandwidth <= s.G.Graph_features.max_bandwidth
    && s.G.Graph_features.max_bandwidth <= 1.);
  check_true "degree variance positive on a power-law graph"
    (s.G.Graph_features.degree_variance > 0.);
  check_int "feature vector matches names"
    (Array.length G.Graph_features.names)
    (Array.length (G.Graph_features.to_array s))

(* ---- joint selection ---- *)

let skewed_graph = lazy (G.Generators.rmat ~scale:14 ~edge_factor:16 ())

let test_selector_picks_hybrid () =
  (* A large skewed-degree graph with a big dense operand: the gathers miss
     cache and the analytic model credits the hybrid layout. *)
  let graph = Lazy.force skewed_graph in
  let _, compiled = compile_model (Mp.Mp_models.find "gcn") in
  let cm = Cost_oracle.analytic Granii_hw.Hw_profile.cpu in
  let ld =
    Granii.optimize_localized ~oracle:cm ~graph ~k_in:1024 ~k_out:1024
      ~iterations:100 compiled
  in
  check_true "hybrid format selected" (ld.Granii.config.Locality.format = Locality.Hybrid);
  check_true "layout strictly cheaper than legacy"
    (ld.Granii.ldecision.Granii.choice.Selector.predicted_cost < ld.Granii.base_cost)

let test_selector_forced_csr () =
  (* --format csr: restricting the configs to the CSR column must keep the
     legacy path and reproduce plain Selector.select exactly. *)
  let graph = Lazy.force skewed_graph in
  let _, compiled = compile_model (Mp.Mp_models.find "gcn") in
  let cm = Cost_oracle.analytic Granii_hw.Hw_profile.cpu in
  let feats = Featurizer.extract graph in
  let env =
    { Dim.n = G.Graph.n_nodes graph;
      nnz = G.Graph.n_edges graph + G.Graph.n_nodes graph;
      k_in = 1024;
      k_out = 1024 }
  in
  let lc =
    Selector.select_localized ~oracle:cm ~feats ~env ~iterations:100
      ~configs:[ Locality.default ] compiled
  in
  let plain = Selector.select ~oracle:cm ~feats ~env ~iterations:100 compiled in
  check_true "legacy config" (Locality.is_default lc.Selector.config);
  check_true "same candidate"
    (lc.Selector.lchoice.Selector.candidate.Codegen.plan.Plan.name
    = plain.Selector.candidate.Codegen.plan.Plan.name);
  check_float "same predicted cost" plain.Selector.predicted_cost
    lc.Selector.lchoice.Selector.predicted_cost

let test_selector_flops_degenerates () =
  (* The profile-less model has no hardware terms: every layout adjustment
     is zero and the default config must win all ties. *)
  let graph = G.Generators.barabasi_albert ~seed:6 ~n:80 ~m:4 () in
  let _, compiled = compile_model (Mp.Mp_models.find "gcn") in
  let feats = Featurizer.extract graph in
  let env =
    { Dim.n = G.Graph.n_nodes graph;
      nnz = G.Graph.n_edges graph + G.Graph.n_nodes graph;
      k_in = 16;
      k_out = 16 }
  in
  let lc =
    Selector.select_localized ~oracle:(Cost_oracle.flops_only ()) ~feats ~env
      ~iterations:100 compiled
  in
  check_true "flops model keeps the legacy layout"
    (Locality.is_default lc.Selector.config)

let suite =
  [ test_perm_bijection;
    test_permute_roundtrip;
    Alcotest.test_case "permute semantics" `Quick test_permute_semantics;
    test_dense_vector_roundtrip;
    Alcotest.test_case "rcm bandwidth" `Quick test_rcm_bandwidth;
    Alcotest.test_case "strategy strings" `Quick test_strategy_strings;
    test_csc_roundtrip;
    test_csc_columns_sorted;
    test_hybrid_roundtrip;
    test_hybrid_widths;
    test_hybrid_spmm;
    test_hybrid_spmm_weighted;
    test_hybrid_sddmm;
    test_hybrid_rank1;
    Alcotest.test_case "executor roundtrip gcn" `Quick test_executor_roundtrip_gcn;
    Alcotest.test_case "executor roundtrip gat" `Quick test_executor_roundtrip_gat;
    Alcotest.test_case "run_iterations localized" `Quick test_run_iterations_localized;
    Alcotest.test_case "cache + locality rejected" `Quick test_cache_locality_rejected;
    Alcotest.test_case "layout features" `Quick test_layout_features;
    Alcotest.test_case "selector picks hybrid" `Quick test_selector_picks_hybrid;
    Alcotest.test_case "selector forced csr" `Quick test_selector_forced_csr;
    Alcotest.test_case "selector flops degenerates" `Quick test_selector_flops_degenerates ]
