open Granii_core
open Test_util
module G = Granii_graph
module Hw = Granii_hw
module Mp = Granii_mp

(* A small, cached learned cost model so the suite stays fast. *)
let small_cost_model =
  lazy
    (let graphs =
       [ G.Generators.erdos_renyi ~seed:21 ~n:512 ~avg_degree:6. ();
         G.Generators.rmat ~seed:22 ~scale:9 ~edge_factor:32 ();
         G.Generators.grid2d ~seed:23 ~rows:32 ~cols:32 ();
         G.Generators.barabasi_albert ~seed:24 ~n:512 ~m:4 () ]
     in
     let data =
       Profiling.collect ~profile:Hw.Hw_profile.a100 ~graphs
         ~sizes:[ 32; 128; 512 ] ()
     in
     let gbrt_params =
       { Granii_ml.Gbrt.default_params with Granii_ml.Gbrt.n_trees = 40 }
     in
     Cost_model.train ~gbrt_params ~profile:Hw.Hw_profile.a100 data)

let test_featurizer () =
  let g = G.Generators.erdos_renyi ~seed:2 ~n:200 ~avg_degree:6. () in
  let f = Featurizer.extract g in
  check_int "graph feature width"
    (Array.length G.Graph_features.names)
    (Array.length f.Featurizer.graph_features);
  check_true "extraction time recorded" (f.Featurizer.extraction_time >= 0.);
  let input = Featurizer.primitive_input f ~dims:(10., 20., 30.) in
  check_int "total input width" Featurizer.n_inputs (Array.length input);
  check_int "names aligned" Featurizer.n_inputs (Array.length Featurizer.input_names)

let test_profiling_counts () =
  let graphs = [ G.Generators.erdos_renyi ~seed:31 ~n:256 ~avg_degree:4. () ] in
  let data =
    Profiling.collect ~profile:Hw.Hw_profile.h100 ~graphs ~sizes:[ 32; 64 ] ()
  in
  check_true "every primitive name has a dataset" (List.length data >= 14);
  List.iter
    (fun (_, ds) -> check_true "non-empty" (Granii_ml.Ml_dataset.n_samples ds >= 4))
    data

let test_learned_model_accuracy () =
  (* Held-out ranking quality: the learned model must order GEMM instances
     of very different sizes correctly. *)
  let cm = Lazy.force small_cost_model in
  let g = G.Generators.erdos_renyi ~seed:41 ~n:1024 ~avg_degree:8. () in
  let feats = Featurizer.extract g in
  let env k = { Dim.n = 1024; nnz = 9000; k_in = k; k_out = k } in
  let oracle = Cost_oracle.of_model cm in
  let cost k =
    Cost_oracle.predict oracle feats ~env:(env k)
      (Primitive.Gemm { m = Dim.N; k = Dim.Kin; n = Dim.Kout })
  in
  check_true "bigger GEMM predicted more expensive" (cost 512 > cost 32)

let test_analytic_vs_learned_agree_on_ranking () =
  let cm = Lazy.force small_cost_model in
  let analytic = Cost_model.analytic Hw.Hw_profile.a100 in
  let oracle_of = Cost_oracle.of_model in
  let g = G.Generators.rmat ~seed:51 ~scale:10 ~edge_factor:48 () in
  let feats = Featurizer.extract g in
  let env = { Dim.n = 1024; nnz = 50_000; k_in = 256; k_out = 256 } in
  let prims =
    [ Primitive.Spmm { k = Dim.Kin; weighted = true };
      Primitive.Row_broadcast { k = Dim.Kin };
      Primitive.Gemm { m = Dim.N; k = Dim.Kin; n = Dim.Kout } ]
  in
  let rank cmodel =
    List.sort compare
      (List.map
         (fun p ->
           (Cost_oracle.predict (oracle_of cmodel) feats ~env p, Primitive.name p))
         prims)
    |> List.map snd
  in
  Alcotest.(check (list string)) "same cost ordering" (rank analytic) (rank cm)

let test_flops_model () =
  let feats = Featurizer.extract (G.Generators.ring ~n:64) in
  let env = { Dim.n = 64; nnz = 192; k_in = 8; k_out = 4 } in
  let c =
    Cost_oracle.predict (Cost_oracle.flops_only ()) feats ~env
      (Primitive.Gemm { m = Dim.N; k = Dim.Kin; n = Dim.Kout })
  in
  check_float "flops model counts flops" (2. *. 64. *. 8. *. 4.) c

let compiled_gcn =
  lazy
    (let low = Mp.Lower.lower Mp.Mp_models.gcn in
     fst
       (Granii.compile ~name:"GCN"
          ~degree_leaves:(Mp.Lower.degree_leaves low ~binned:false)
          low.Mp.Lower.ir))

let test_selector_scenario_guard () =
  check_true "shrinking" (Selector.scenario_of ~k_in:8 ~k_out:8 = Dim.Shrinking);
  check_true "growing" (Selector.scenario_of ~k_in:8 ~k_out:9 = Dim.Growing)

let test_selector_picks_minimum () =
  let compiled = Lazy.force compiled_gcn in
  let cm = Cost_oracle.analytic Hw.Hw_profile.a100 in
  let g = G.Generators.rmat ~seed:61 ~scale:10 ~edge_factor:64 () in
  let feats = Featurizer.extract g in
  let env =
    { Dim.n = G.Graph.n_nodes g; nnz = G.Graph.n_edges g; k_in = 128; k_out = 128 }
  in
  let ranked = Selector.rank ~oracle:cm ~feats ~env ~iterations:100 compiled in
  let choice = Selector.select ~oracle:cm ~feats ~env ~iterations:100 compiled in
  check_true "select returns the cheapest ranked candidate"
    (String.equal
       (fst (List.hd ranked)).Codegen.plan.Plan.name
       choice.Selector.candidate.Codegen.plan.Plan.name);
  check_true "rank is sorted"
    (let costs = List.map snd ranked in
     List.sort compare costs = costs);
  check_true "cost models were consulted" choice.Selector.used_cost_models

let test_selector_respects_scenario () =
  let compiled = Lazy.force compiled_gcn in
  let cm = Cost_oracle.analytic Hw.Hw_profile.a100 in
  let g = G.Generators.erdos_renyi ~seed:71 ~n:256 ~avg_degree:6. () in
  let feats = Featurizer.extract g in
  let env = { Dim.n = 256; nnz = 1600; k_in = 32; k_out = 512 } in
  let choice = Selector.select ~oracle:cm ~feats ~env ~iterations:100 compiled in
  check_true "selected candidate allows the growing scenario"
    (List.mem Dim.Growing choice.Selector.candidate.Codegen.scenarios)

let test_selection_iterations_matter () =
  (* With one iteration, precompute setup cannot amortize; with many it can.
     The predicted cost gap between iteration counts must reflect setup. *)
  let compiled = Lazy.force compiled_gcn in
  let cm = Cost_oracle.analytic Hw.Hw_profile.a100 in
  let g = G.Generators.rmat ~seed:81 ~scale:11 ~edge_factor:64 () in
  let feats = Featurizer.extract g in
  let env =
    { Dim.n = G.Graph.n_nodes g;
      nnz = G.Graph.n_edges g + G.Graph.n_nodes g;
      k_in = 64;
      k_out = 64 }
  in
  let cost iters =
    (Selector.select ~oracle:cm ~feats ~env ~iterations:iters compiled)
      .Selector.predicted_cost
  in
  check_true "100 iterations cost more than 1" (cost 100 > cost 1)

let test_codegen_pp_mentions_candidates () =
  let compiled = Lazy.force compiled_gcn in
  let text = Format.asprintf "%a" Codegen.pp compiled in
  check_true "pseudocode shows both guards"
    (contains text "k_in >= k_out" && contains text "k_in < k_out")

let test_granii_optimize_end_to_end () =
  let compiled = Lazy.force compiled_gcn in
  let cm = Lazy.force small_cost_model in
  let g = G.Generators.rmat ~seed:91 ~scale:10 ~edge_factor:32 () in
  let decision =
    Granii.optimize ~oracle:(Cost_oracle.of_model cm) ~graph:g ~k_in:128
      ~k_out:32 compiled
  in
  check_true "overhead recorded" (decision.Granii.overhead >= 0.);
  check_true "simulated overhead positive"
    (Granii.simulated_overhead ~profile:Hw.Hw_profile.a100
       ~env:{ Dim.n = 1024; nnz = 32_000; k_in = 128; k_out = 32 }
    > 0.)

let suite =
  [ Alcotest.test_case "featurizer" `Quick test_featurizer;
    Alcotest.test_case "profiling datasets" `Quick test_profiling_counts;
    Alcotest.test_case "learned model size ordering" `Slow test_learned_model_accuracy;
    Alcotest.test_case "analytic vs learned ranking" `Slow
      test_analytic_vs_learned_agree_on_ranking;
    Alcotest.test_case "flops ablation model" `Quick test_flops_model;
    Alcotest.test_case "scenario guard" `Quick test_selector_scenario_guard;
    Alcotest.test_case "selector picks minimum" `Quick test_selector_picks_minimum;
    Alcotest.test_case "selector respects scenario" `Quick test_selector_respects_scenario;
    Alcotest.test_case "iterations affect cost" `Quick test_selection_iterations_matter;
    Alcotest.test_case "codegen pseudocode" `Quick test_codegen_pp_mentions_candidates;
    Alcotest.test_case "granii optimize e2e" `Slow test_granii_optimize_end_to_end ]
