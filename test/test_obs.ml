(* The observability subsystem: span recorder semantics (nesting, balance
   under exceptions, retro-dated durations), exporter well-formedness,
   metrics bookkeeping, the cost-monitor statistics, the two-clock timer,
   and the engine-level guarantees — a disabled sink is bitwise invisible,
   a live one reconciles its spans with the executor's report. *)

open Granii_core
open Test_util
module Obs = Granii_obs.Obs
module Trace = Obs.Trace
module Metrics = Obs.Metrics
module Cm = Obs.Cost_monitor
module Timer = Granii_hw.Timer
module G = Granii_graph
module Mp = Granii_mp
module Gnn = Granii_gnn
module Dense = Granii_tensor.Dense

let graph () = G.Generators.erdos_renyi ~n:150 ~avg_degree:6. ~seed:3 ()

let compiled_gcn =
  lazy
    (let m = Mp.Mp_models.find "GCN" in
     let low = Mp.Lower.lower m in
     let compiled, _ =
       Granii.compile ~name:"GCN"
         ~degree_leaves:(Mp.Lower.degree_leaves low ~binned:false)
         low.Mp.Lower.ir
     in
     (low, compiled))

let setup ~k_in ~k_out =
  let low, compiled = Lazy.force compiled_gcn in
  let graph = graph () in
  let n = G.Graph.n_nodes graph in
  let env = { Dim.n; nnz = G.Graph.n_edges graph + n; k_in; k_out } in
  let params = Gnn.Layer.init_params ~seed:5 ~env low in
  let h = Dense.random ~seed:6 n k_in in
  let bindings = Gnn.Layer.bindings ~graph ~h params in
  let plan = (List.hd compiled.Codegen.candidates).Codegen.plan in
  (graph, bindings, plan)

(* ---- span recorder ---- *)

let test_span_nesting () =
  let t = Trace.create () in
  let a = Trace.enter t "a" in
  let b = Trace.enter t ~cat:"inner" "b" in
  let c = Trace.enter t "c" in
  check_int "three open spans" 3 (Trace.open_spans t);
  (* closing b must close the still-open descendant c first *)
  Trace.exit_ t b;
  check_int "b's exit closed c too" 1 (Trace.open_spans t);
  Trace.exit_ t a;
  check_int "balanced" 0 (Trace.open_spans t);
  check_int "three spans recorded" 3 (Trace.count t);
  (* double-exit is a no-op *)
  Trace.exit_ t c;
  Trace.exit_ t a;
  check_int "double exit records nothing" 3 (Trace.count t);
  check_int "double exit opens nothing" 0 (Trace.open_spans t)

let test_span_exception_balance () =
  let t = Trace.create () in
  (try
     Trace.with_span t "outer" (fun () ->
         Trace.with_span t "inner" (fun () -> failwith "boom"))
   with Failure _ -> ());
  check_int "balanced after exception" 0 (Trace.open_spans t);
  check_int "both spans recorded" 2 (Trace.count t);
  check_true "the error is attributed"
    (let json = Trace.to_chrome_json t in
     let rec contains i =
       i + 5 <= String.length json
       && (String.sub json i 5 = "error" || contains (i + 1))
     in
     contains 0)

let test_span_dur_override () =
  let t = Trace.create () in
  let sp = Trace.enter t "work" in
  Trace.exit_ t ~dur:0.25 sp;
  match Trace.aggregate t with
  | [ ("work", 1, total) ] ->
      check_float "retro-dated duration" ~eps:1e-12 0.25 total
  | _ -> Alcotest.fail "aggregate shape"

let test_exporters_wellformed () =
  let t = Trace.create () in
  Trace.with_span t ~attrs:[ ("weird", "a\"b\\c\nd") ] "root" (fun () ->
      Trace.with_span t "child" (fun () -> ());
      Trace.with_span t "child" (fun () -> ()));
  (match Obs.Json.validate (Trace.to_chrome_json t) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("chrome trace JSON: " ^ e));
  let folded = Trace.to_folded t in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' folded)
  in
  check_int "two distinct stacks" 2 (List.length lines);
  List.iter
    (fun line ->
      match String.rindex_opt line ' ' with
      | None -> Alcotest.fail ("folded line without self time: " ^ line)
      | Some sp ->
          let self = String.sub line (sp + 1) (String.length line - sp - 1) in
          check_true "self time is a non-negative integer"
            (match int_of_string_opt self with Some n -> n >= 0 | None -> false))
    lines;
  check_true "the child stack is root;child"
    (List.exists
       (fun l -> String.length l > 10 && String.sub l 0 10 = "root;child")
       lines)

(* ---- metrics registry ---- *)

let test_metrics_bookkeeping () =
  let m = Metrics.create () in
  Metrics.add m "c" 2;
  Metrics.add m "c" 3;
  Metrics.set_gauge m "g" 1.5;
  Metrics.set_gauge m "g" 2.5;
  Metrics.observe m "h" 0.5e-3;
  Metrics.observe m "h" 2e-3;
  check_int "counter accumulates" 5 (Metrics.counter_value m "c");
  check_int "unknown counter is 0" 0 (Metrics.counter_value m "nope");
  (match Metrics.gauge_value m "g" with
  | Some v -> check_float "gauge keeps the last value" ~eps:0. 2.5 v
  | None -> Alcotest.fail "gauge missing");
  (match Metrics.hist_stats m "h" with
  | Some (count, sum, min_, max_) ->
      check_int "histogram count" 2 count;
      check_float "histogram sum" ~eps:1e-12 2.5e-3 sum;
      check_float "histogram min" ~eps:1e-12 0.5e-3 min_;
      check_float "histogram max" ~eps:1e-12 2e-3 max_
  | None -> Alcotest.fail "histogram missing");
  match Obs.Json.validate (Metrics.to_json m) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("metrics JSON: " ^ e)

let test_metrics_prometheus () =
  let m = Metrics.create () in
  Metrics.add m "cache.hits" 7;
  Metrics.set_gauge m "workspace.bytes.held" 4096.;
  Metrics.observe m "step.spmm" 3e-4;
  Metrics.observe m "step.spmm" 3e-2;
  let text = Metrics.to_prometheus m in
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  check_true "sanitized counter line"
    (List.mem "granii_cache_hits 7" lines);
  check_true "gauge line" (List.mem "granii_workspace_bytes_held 4096" lines);
  check_true "histogram count line" (List.mem "granii_step_spmm_count 2" lines);
  check_true "+Inf bucket present"
    (List.exists
       (fun l ->
         String.length l > 0
         &&
         let rec find i =
           i + 4 <= String.length l
           && (String.sub l i 4 = "+Inf" || find (i + 1))
         in
         find 0)
       lines);
  (* cumulative bucket counts are monotone and end at the total count *)
  let bucket_counts =
    List.filter_map
      (fun l ->
        if String.length l > 24 && String.sub l 0 24 = "granii_step_spmm_bucket{"
        then
          match String.rindex_opt l ' ' with
          | Some sp ->
              int_of_string_opt
                (String.sub l (sp + 1) (String.length l - sp - 1))
          | None -> None
        else None)
      lines
  in
  check_true "buckets are cumulative"
    (List.for_all2 ( <= )
       (List.filteri (fun i _ -> i < List.length bucket_counts - 1) bucket_counts)
       (List.tl bucket_counts));
  check_int "last bucket equals count" 2
    (List.nth bucket_counts (List.length bucket_counts - 1))

(* ---- cost monitor ---- *)

let test_costmon_statistics () =
  let cm = Cm.create () in
  (* perfectly ranked but biased 2x: log error ln 2, no inversions *)
  Cm.record cm ~prim:"spmm" ~predicted:1. ~measured:2.;
  Cm.record cm ~prim:"spmm" ~predicted:2. ~measured:4.;
  Cm.record cm ~prim:"spmm" ~predicted:4. ~measured:8.;
  (* one clean inversion *)
  Cm.record cm ~prim:"gemm" ~predicted:1. ~measured:2.;
  Cm.record cm ~prim:"gemm" ~predicted:2. ~measured:1.;
  (* non-positive pairs are excluded from the summary *)
  Cm.record cm ~prim:"degree" ~predicted:0. ~measured:1.;
  match Cm.summaries cm with
  | [ d; g; s ] ->
      check_true "sorted by primitive"
        (d.Cm.prim = "degree" && g.Cm.prim = "gemm" && s.Cm.prim = "spmm");
      check_int "spmm runs" 3 s.Cm.n;
      check_float "spmm mean |log err| is ln 2" ~eps:1e-12 (log 2.)
        s.Cm.mean_abs_log_err;
      check_int "spmm has no inversions" 0 s.Cm.rank_inversions;
      check_int "spmm compares all pairs" 3 s.Cm.pairs_compared;
      check_int "gemm inversion counted" 1 g.Cm.rank_inversions;
      check_int "gemm one comparable pair" 1 g.Cm.pairs_compared;
      check_int "degree pair is recorded" 1 d.Cm.n;
      check_true "degree summary holds no statistics"
        (Float.is_nan d.Cm.mean_abs_log_err && d.Cm.pairs_compared = 0);
      (match Obs.Json.validate (Cm.to_json cm) with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("cost monitor JSON: " ^ e))
  | l -> Alcotest.fail (Printf.sprintf "expected 3 summaries, got %d" (List.length l))

(* The 4096-pair cap is a uniform reservoir (Algorithm R): below the cap
   every pair is held exactly and in recording order; past it, each later
   pair displaces a uniformly random held slot with probability cap/i, so
   the held set stays an unbiased subsample of the {e whole} stream rather
   than a sliding window. [n] still counts every recorded run. *)
let test_costmon_cap () =
  let cm = Cm.create () in
  for i = 1 to 4096 do
    Cm.record cm ~prim:"spmm" ~predicted:(float_of_int i)
      ~measured:(float_of_int i)
  done;
  check_int "exact below the cap" 4096
    (List.length (Cm.series_pairs cm "spmm"));
  Cm.record cm ~prim:"spmm" ~predicted:5000. ~measured:5000.;
  Cm.record cm ~prim:"spmm" ~predicted:6000. ~measured:6000.;
  let pairs = Cm.series_pairs cm "spmm" in
  check_int "the reservoir never exceeds the cap" 4096 (List.length pairs);
  check_true "held pairs are a subset of the stream"
    (List.for_all
       (fun (p, m) ->
         p = m && ((p >= 1. && p <= 4096.) || p = 5000. || p = 6000.))
       pairs);
  (* recording order is preserved (oldest first): the calibration holdout
     slice (newest third) depends on it. With a strictly increasing stream
     that means strictly increasing values. *)
  let rec increasing = function
    | (a, _) :: ((b, _) :: _ as tl) -> a < b && increasing tl
    | _ -> true
  in
  check_true "held pairs stay in recording order" (increasing pairs);
  (match Cm.summaries cm with
  | [ s ] ->
      check_int "every run counted, sampled or not" 4098 s.Cm.n;
      check_float "identity predictions have zero error" ~eps:1e-12 0.
        s.Cm.mean_abs_log_err;
      check_int "perfect ranking has no inversions" 0 s.Cm.rank_inversions;
      (match Obs.Json.validate (Cm.to_json cm) with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("capped monitor JSON: " ^ e))
  | l ->
      Alcotest.fail (Printf.sprintf "expected 1 summary, got %d" (List.length l)));
  check_true "prims lists the primitive" (Cm.prims cm = [ "spmm" ])

(* ---- the JSON checker's rejection paths ---- *)

let test_json_validate_rejects () =
  let ok s =
    match Obs.Json.validate s with Ok () -> true | Error _ -> false
  in
  List.iter
    (fun s -> check_true ("accepts " ^ s) (ok s))
    [ "{}"; "[]"; "[1, -2.5e3, true, false, null]"; "{\"a\": [\"b\\n\"]}" ];
  List.iter
    (fun (name, s) ->
      match Obs.Json.validate s with
      | Ok () -> Alcotest.fail (name ^ ": accepted invalid JSON")
      | Error e ->
          check_true (name ^ ": error names the byte offset")
            (contains e "invalid JSON at byte"))
    [ ("empty input", "");
      ("bare garbage", "granii");
      ("unterminated object", "{\"a\": 1");
      ("trailing comma", "[1, 2,]");
      ("missing colon", "{\"a\" 1}");
      ("unquoted key", "{a: 1}");
      ("unterminated string", "\"abc");
      ("bad escape", "\"\\x41\"");
      ("bare minus", "[-]");
      ("single quotes", "['a']");
      ("trailing garbage", "{} extra");
      ("nan literal", "[NaN]") ]

(* ---- the two clocks ---- *)

let test_wall_vs_cpu_clock () =
  let (), wall = Timer.measure_wall (fun () -> Unix.sleepf 0.02) in
  let _, cpu = Timer.measure (fun () -> Unix.sleepf 0.02) in
  check_true "wall clock sees the sleep" (wall >= 0.015);
  check_true "CPU clock does not" (cpu < 0.015)

(* ---- engine integration ---- *)

let test_disabled_sink_bitwise_identical () =
  let graph, bindings, plan = setup ~k_in:9 ~k_out:7 in
  let seed_engine = Engine.default () in
  let reference =
    Executor.exec ~engine:seed_engine ~timing:Executor.Measure ~graph ~bindings
      plan
  in
  let live =
    Engine.create_exn { Engine.default_config with telemetry = true }
  in
  let r =
    Executor.exec ~engine:live ~timing:Executor.Measure ~graph ~bindings plan
  in
  check_true "telemetered output is bitwise identical"
    (Test_engine.value_bits_equal reference.Executor.output r.Executor.output);
  let explicit_disabled =
    Engine.create_exn ~obs:Obs.disabled Engine.default_config
  in
  check_true "injected disabled sink keeps telemetry off"
    (not (Obs.enabled (Engine.obs explicit_disabled)));
  let r2 =
    Executor.exec ~engine:explicit_disabled ~timing:Executor.Measure ~graph
      ~bindings plan
  in
  check_true "disabled-sink output is bitwise identical"
    (Test_engine.value_bits_equal reference.Executor.output r2.Executor.output)

let test_cache_counters_ground_truth () =
  let graph, bindings, plan = setup ~k_in:9 ~k_out:7 in
  let obs = Obs.create ~trace:false ~costmon:false () in
  let engine =
    Engine.create_exn ~obs { Engine.default_config with cache = true }
  in
  let n_steps = List.length plan.Plan.steps in
  ignore (Executor.exec ~engine ~timing:Executor.Measure ~graph ~bindings plan);
  let m = match obs.Obs.metrics with Some m -> m | None -> assert false in
  check_int "first run misses every step" n_steps
    (Metrics.counter_value m "cache.misses");
  check_int "first run hits nothing" 0 (Metrics.counter_value m "cache.hits");
  ignore (Executor.exec ~engine ~timing:Executor.Measure ~graph ~bindings plan);
  check_int "second run hits every step" n_steps
    (Metrics.counter_value m "cache.hits");
  (* the sink's counters agree with the cache's own ledger *)
  (match Engine.cache engine with
  | Some c ->
      let hits, misses = Engine.cache_stats c in
      check_int "hits agree with cache_stats" hits
        (Metrics.counter_value m "cache.hits");
      check_int "misses agree with cache_stats" misses
        (Metrics.counter_value m "cache.misses")
  | None -> Alcotest.fail "engine lost its cache");
  check_int "two engine runs counted" 2 (Metrics.counter_value m "engine.runs")

(* The invariant granii's traces promise: per-step spans carry exactly the
   measured durations of the report, so their sum reconciles with
   setup_time/iteration_time. *)
let prim_span_total trace plan =
  let names =
    List.map (fun (s : Plan.step) -> Primitive.name s.Plan.prim) plan.Plan.steps
  in
  List.fold_left
    (fun acc (name, _, total) ->
      if List.mem name names then acc +. total else acc)
    0. (Trace.aggregate trace)

let test_span_sum_matches_report_exec () =
  let graph, bindings, plan = setup ~k_in:8 ~k_out:8 in
  let obs = Obs.create () in
  let engine = Engine.create_exn ~obs Engine.default_config in
  let r = Executor.exec ~engine ~timing:Executor.Measure ~graph ~bindings plan in
  let t = match obs.Obs.trace with Some t -> t | None -> assert false in
  check_int "trace is balanced" 0 (Trace.open_spans t);
  let expected = r.Executor.setup_time +. r.Executor.iteration_time in
  let got = prim_span_total t plan in
  check_true "per-step spans sum to the report total"
    (Float.abs (got -. expected) <= 1e-9 +. (1e-6 *. Float.abs expected))

let test_span_sum_matches_report_iterations () =
  let graph, bindings, plan = setup ~k_in:8 ~k_out:8 in
  let iterations = 4 in
  let obs = Obs.create () in
  let engine = Engine.create_exn ~obs Engine.default_config in
  let r =
    Executor.exec_iterations ~engine ~timing:Executor.Measure ~graph ~bindings
      ~iterations plan
  in
  let t = match obs.Obs.trace with Some t -> t | None -> assert false in
  check_int "trace is balanced" 0 (Trace.open_spans t);
  let expected =
    r.Executor.setup_time
    +. (float_of_int iterations *. r.Executor.iteration_time)
  in
  let got = prim_span_total t plan in
  check_true "per-step spans sum across iterations"
    (Float.abs (got -. expected) <= 1e-9 +. (1e-6 *. Float.abs expected));
  check_true "one iteration span per iteration"
    (List.exists
       (fun (name, count, _) -> name = "iteration" && count = iterations)
       (Trace.aggregate t))

let test_telemetry_describe_roundtrip () =
  let cfg = { Engine.default_config with telemetry = true } in
  let s = Engine.describe_config cfg in
  match Engine.config_of_string s with
  | Ok cfg' -> check_true "telemetry=on round-trips" (cfg' = cfg)
  | Error e -> Alcotest.fail e

let suite =
  [ Alcotest.test_case "span nesting and balance" `Quick test_span_nesting;
    Alcotest.test_case "span balance under exceptions" `Quick
      test_span_exception_balance;
    Alcotest.test_case "retro-dated span durations" `Quick
      test_span_dur_override;
    Alcotest.test_case "trace exporters are well-formed" `Quick
      test_exporters_wellformed;
    Alcotest.test_case "metrics bookkeeping + JSON" `Quick
      test_metrics_bookkeeping;
    Alcotest.test_case "prometheus exposition format" `Quick
      test_metrics_prometheus;
    Alcotest.test_case "cost monitor statistics" `Quick
      test_costmon_statistics;
    Alcotest.test_case "cost monitor at the 4096-pair cap" `Quick
      test_costmon_cap;
    Alcotest.test_case "json checker rejection paths" `Quick
      test_json_validate_rejects;
    Alcotest.test_case "wall vs cpu clock" `Quick test_wall_vs_cpu_clock;
    Alcotest.test_case "disabled sink is bitwise invisible" `Quick
      test_disabled_sink_bitwise_identical;
    Alcotest.test_case "cache counters match ground truth" `Quick
      test_cache_counters_ground_truth;
    Alcotest.test_case "span sum reconciles with exec report" `Quick
      test_span_sum_matches_report_exec;
    Alcotest.test_case "span sum reconciles across iterations" `Quick
      test_span_sum_matches_report_iterations;
    Alcotest.test_case "telemetry describe round-trip" `Quick
      test_telemetry_describe_roundtrip ]
