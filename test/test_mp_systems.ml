open Granii_core
open Test_util
module Mp = Granii_mp
module Sys_ = Granii_systems

let test_validate () =
  let bad =
    { Mp.Mp_ast.name = "BAD";
      program = Mp.Mp_ast.Linear ("Wmissing", Mp.Mp_ast.Input);
      weights = [];
      attention = false }
  in
  check_true "missing weight spec rejected"
    (try Mp.Mp_ast.validate bad; false with Invalid_argument _ -> true);
  List.iter Mp.Mp_ast.validate Mp.Mp_models.all

let test_gcn_lowering () =
  let low = Mp.Lower.lower Mp.Mp_models.gcn in
  (* After flattening, GCN is relu over a row-broadcast chain. *)
  check_true "GCN IR mentions all leaves"
    (let names =
       List.map (fun (l : Matrix_ir.leaf) -> l.Matrix_ir.name)
         (Matrix_ir.leaves low.Mp.Lower.ir)
     in
     List.mem "A" names && List.mem "H" names && List.mem "W" names
     && List.mem "D" names);
  Alcotest.(check (list string)) "one norm leaf" [ "D" ] low.Mp.Lower.norm_leaves

let test_sage_lowering () =
  let low = Mp.Lower.lower Mp.Mp_models.sage in
  Alcotest.(check (list string)) "sage uses mean normalization" [ "Dinv" ]
    low.Mp.Lower.norm_leaves;
  let specs = Mp.Lower.degree_leaves low ~binned:false in
  match specs with
  | [ ("Dinv", spec) ] ->
      check_true "mean normalization uses D^-1" (spec.Plan.power = Primitive.Inv)
  | _ -> Alcotest.fail "expected a single Dinv degree leaf"

let test_gat_lowering_shares_theta () =
  let low = Mp.Lower.lower Mp.Mp_models.gat in
  match low.Mp.Lower.ir with
  | Matrix_ir.Nonlinear (Matrix_ir.Relu, Matrix_ir.Mult (alpha :: rest)) ->
      check_int "theta spliced into the chain" 2 (List.length rest);
      (match alpha with
      | Matrix_ir.Nonlinear (Matrix_ir.Edge_softmax, Matrix_ir.Edge_score _) -> ()
      | _ -> Alcotest.fail "alpha structure unexpected")
  | _ -> Alcotest.fail "GAT IR shape unexpected"

let test_param_leaves () =
  let low = Mp.Lower.lower Mp.Mp_models.gat in
  let names = List.map (fun (l : Matrix_ir.leaf) -> l.Matrix_ir.name) low.Mp.Lower.param_leaves in
  Alcotest.(check (list string)) "weights and attention vectors"
    [ "W"; "Asrc"; "Adst" ] names

let test_models_find () =
  check_true "find by lowercase name"
    (String.equal (Mp.Mp_models.find "gcn").Mp.Mp_ast.name "GCN");
  check_int "paper set has five models" 5 (List.length Mp.Mp_models.paper_five)

let baseline_plan sys model ~k_in ~k_out =
  Sys_.Baseline.plan (Sys_.Baseline.make sys model) ~k_in ~k_out

let spmm_dims_of_plan plan =
  List.filter_map
    (function Primitive.Spmm { k; _ } -> Some k | _ -> None)
    (Plan.primitives plan)

let test_dgl_gcn_reorders () =
  let shrink = baseline_plan Sys_.System.dgl Mp.Mp_models.gcn ~k_in:512 ~k_out:32 in
  let grow = baseline_plan Sys_.System.dgl Mp.Mp_models.gcn ~k_in:32 ~k_out:512 in
  check_true "update-first when shrinking"
    (List.for_all (Dim.equal Dim.Kout) (spmm_dims_of_plan shrink));
  check_true "aggregate-first when growing"
    (List.for_all (Dim.equal Dim.Kin) (spmm_dims_of_plan grow))

let test_dgl_gin_never_reorders () =
  let shrink = baseline_plan Sys_.System.dgl Mp.Mp_models.gin ~k_in:512 ~k_out:32 in
  check_true "DGL GIN aggregates first even when shrinking (Sec VI-C1)"
    (List.for_all (Dim.equal Dim.Kin) (spmm_dims_of_plan shrink))

let test_wisegraph_gin_reorders () =
  let shrink = baseline_plan Sys_.System.wisegraph Mp.Mp_models.gin ~k_in:512 ~k_out:32 in
  check_true "WiseGraph GIN updates first when shrinking"
    (List.for_all (Dim.equal Dim.Kout) (spmm_dims_of_plan shrink))

let gemm_count plan =
  List.length
    (List.filter (function Primitive.Gemm _ -> true | _ -> false) (Plan.primitives plan))

let test_gat_policies () =
  let dgl_grow = baseline_plan Sys_.System.dgl Mp.Mp_models.gat ~k_in:32 ~k_out:512 in
  check_int "DGL always reuses (1 GEMM)" 1 (gemm_count dgl_grow);
  let wise_grow = baseline_plan Sys_.System.wisegraph Mp.Mp_models.gat ~k_in:32 ~k_out:512 in
  check_int "WiseGraph recomputes when growing (2 GEMMs)" 2 (gemm_count wise_grow);
  let wise_shrink = baseline_plan Sys_.System.wisegraph Mp.Mp_models.gat ~k_in:512 ~k_out:32 in
  check_int "WiseGraph reuses when shrinking" 1 (gemm_count wise_shrink)

let test_degree_kernels_per_system () =
  let has_binned plan =
    List.exists
      (function Primitive.Degree { binned; _ } -> binned | _ -> false)
      (Plan.primitives plan)
  in
  let wise = baseline_plan Sys_.System.wisegraph Mp.Mp_models.gcn ~k_in:64 ~k_out:64 in
  let dgl = baseline_plan Sys_.System.dgl Mp.Mp_models.gcn ~k_in:64 ~k_out:64 in
  check_true "WiseGraph bins degrees" (has_binned wise);
  check_true "DGL does not" (not (has_binned dgl))

let test_baselines_never_hoist () =
  List.iter
    (fun sys ->
      List.iter
        (fun m ->
          let plan = baseline_plan sys m ~k_in:64 ~k_out:64 in
          check_int
            (Printf.sprintf "%s/%s has no setup phase" sys.Sys_.System.sys_name
               m.Mp.Mp_ast.name)
            0
            (List.length (Plan.setup_steps plan)))
        Mp.Mp_models.all)
    Sys_.System.all

let test_baselines_are_dynamic () =
  List.iter
    (fun m ->
      let plan = baseline_plan Sys_.System.dgl m ~k_in:64 ~k_out:64 in
      check_true
        (m.Mp.Mp_ast.name ^ " default avoids precomputed sparse intermediates")
        (List.for_all
           (function
             | Primitive.Sddmm_rank1 | Primitive.Sparse_add _ -> false
             | _ -> true)
           (Plan.primitives plan)))
    Mp.Mp_models.all

let test_baseline_matches_enumeration () =
  (* Baseline compositions must be drawn from GRANII's own search space:
     execute the DGL GCN default and a GRANII candidate and compare. *)
  let graph = Granii_graph.Generators.erdos_renyi ~seed:9 ~n:50 ~avg_degree:4. () in
  let low = Mp.Lower.lower Mp.Mp_models.gcn in
  let compiled, _ =
    Granii.compile ~name:"GCN"
      ~degree_leaves:(Mp.Lower.degree_leaves low ~binned:false)
      low.Mp.Lower.ir
  in
  let n = Granii_graph.Graph.n_nodes graph in
  let env = { Dim.n; nnz = Granii_graph.Graph.n_edges graph + n; k_in = 6; k_out = 4 } in
  let params = Granii_gnn.Layer.init_params ~seed:3 ~env low in
  let h = Granii_tensor.Dense.random ~seed:4 n 6 in
  let bindings = Granii_gnn.Layer.bindings ~graph ~h params in
  let run plan =
    match
      (Executor.exec ~engine:(Engine.default ()) ~timing:Executor.Measure
         ~graph ~bindings plan)
        .Executor.output
    with
    | Executor.Vdense d -> d
    | _ -> Alcotest.fail "dense expected"
  in
  let baseline = run (baseline_plan Sys_.System.dgl Mp.Mp_models.gcn ~k_in:6 ~k_out:4) in
  let granii = run (List.hd compiled.Codegen.candidates).Codegen.plan in
  check_true "baseline computes the same function"
    (Granii_tensor.Dense.equal_approx ~eps:1e-8 baseline granii)

let suite =
  [ Alcotest.test_case "model validation" `Quick test_validate;
    Alcotest.test_case "GCN lowering" `Quick test_gcn_lowering;
    Alcotest.test_case "SAGE lowering" `Quick test_sage_lowering;
    Alcotest.test_case "GAT lowering shares theta" `Quick test_gat_lowering_shares_theta;
    Alcotest.test_case "param leaves" `Quick test_param_leaves;
    Alcotest.test_case "model lookup" `Quick test_models_find;
    Alcotest.test_case "DGL GCN reorders by config" `Quick test_dgl_gcn_reorders;
    Alcotest.test_case "DGL GIN fixed order" `Quick test_dgl_gin_never_reorders;
    Alcotest.test_case "WiseGraph GIN reorders" `Quick test_wisegraph_gin_reorders;
    Alcotest.test_case "GAT policies" `Quick test_gat_policies;
    Alcotest.test_case "degree kernels per system" `Quick test_degree_kernels_per_system;
    Alcotest.test_case "baselines never hoist" `Quick test_baselines_never_hoist;
    Alcotest.test_case "baselines are dynamic" `Quick test_baselines_are_dynamic;
    Alcotest.test_case "baseline semantics = GRANII semantics" `Quick
      test_baseline_matches_enumeration ]
