(* Supporting validation: execute two GCN compositions for real on the host
   CPU and check that the simulator predicts the same winner. This ties the
   simulated hardware substitution (DESIGN.md) back to measurable ground
   truth on the one machine we actually have. *)

open Bench_common
open Granii_core
module Dense = Granii_tensor.Dense
module G = Granii_graph
module Gnn = Granii_gnn

let run () =
  section "Real-execution validation: simulator vs measured host CPU (GCN)";
  Printf.printf "%-22s %-12s | %12s %12s | %10s %10s | %5s\n" "graph" "(kin,kout)"
    "dyn (ms)" "pre (ms)" "sim dyn" "sim pre" "agree";
  hr ();
  let model = Granii_mp.Mp_models.gcn in
  let low, comp, _ = compiled model ~binned:false in
  let dynamic =
    List.find
      (fun (c : Codegen.ccand) ->
        List.for_all
          (function
            | Primitive.Sddmm_rank1 | Primitive.Diag_scale _ -> false
            | _ -> true)
          (Plan.primitives c.Codegen.plan)
        && List.mem Dim.Growing c.Codegen.scenarios)
      comp.Codegen.candidates
  in
  let precompute =
    List.find
      (fun (c : Codegen.ccand) ->
        List.mem Primitive.Sddmm_rank1 (Plan.primitives c.Codegen.plan)
        && List.mem Dim.Growing c.Codegen.scenarios)
      comp.Codegen.candidates
  in
  let graphs =
    [ G.Generators.rmat ~seed:5 ~scale:11 ~edge_factor:48 ();
      G.Generators.grid2d ~seed:6 ~rows:48 ~cols:48 () ]
  in
  let agreements = ref 0 and total = ref 0 in
  List.iter
    (fun graph ->
      List.iter
        (fun (k_in, k_out) ->
          let n = G.Graph.n_nodes graph in
          let env = env_of graph ~k_in ~k_out in
          let params = Gnn.Layer.init_params ~seed:9 ~env low in
          let h = Dense.random ~seed:10 n k_in in
          let bindings = Gnn.Layer.bindings ~graph ~h params in
          let measure (c : Codegen.ccand) =
            (* one warm-up, then a timed run of the per-iteration steps via
               total report times *)
            let engine = Engine.default () in
            let exec () =
              Executor.exec ~engine ~timing:Executor.Measure ~graph ~bindings
                c.Codegen.plan
            in
            ignore (exec ());
            let r = exec () in
            r.Executor.setup_time +. (3. *. r.Executor.iteration_time)
          in
          let simulate (c : Codegen.ccand) =
            Gnn.Trainer.inference_time ~profile:Granii_hw.Hw_profile.cpu ~graph
              ~env ~iterations:3 c.Codegen.plan
          in
          let m_dyn = measure dynamic and m_pre = measure precompute in
          let s_dyn = simulate dynamic and s_pre = simulate precompute in
          let agree = m_dyn < m_pre = (s_dyn < s_pre) in
          incr total;
          if agree then incr agreements;
          Printf.printf "%-22s (%4d,%4d) | %12.2f %12.2f | %10.2f %10.2f | %5s\n"
            graph.G.Graph.name k_in k_out (ms m_dyn) (ms m_pre) (ms s_dyn)
            (ms s_pre)
            (if agree then "yes" else "NO"))
        [ (8, 32); (32, 32); (64, 16) ])
    graphs;
  hr ();
  Printf.printf "winner agreement (measured vs simulated): %d/%d\n" !agreements !total
