(* Mini-batch training: what the pipelined loader and the bucketed plan
   cache buy (lib/gnn Loader + Trainer.train_minibatch). Real host-CPU
   measurements on one generated graph: a full-graph training baseline,
   then the sequential and pipelined mini-batch arms on identical batch
   streams. The pipelined arm must reproduce the sequential epoch losses
   bitwise (batches are pure functions of the batch index), so the JSON
   rows carry both the speedups and the equivalence check, plus the
   overlap/stall split from the loader and the per-batch selection
   overhead the plan cache amortizes. *)

open Bench_common
open Granii_core
module Dense = Granii_tensor.Dense
module Timer = Granii_hw.Timer

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun p q -> Int64.bits_of_float p = Int64.bits_of_float q)
       a b

let run () =
  section "Mini-batch training: pipelined loader vs sequential vs full graph";
  let graph =
    if !smoke then G.Generators.rmat ~seed:5 ~scale:10 ~edge_factor:16 ()
    else G.Generators.rmat ~seed:5 ~scale:13 ~edge_factor:24 ()
  in
  let n = G.Graph.n_nodes graph in
  let k_in = 32 and classes = 5 in
  let epochs = if !smoke then 3 else 5 in
  let batch_size = if !smoke then 128 else 512 in
  let fanouts = [ 10; 5 ] in
  let rng = Granii_tensor.Prng.create 3 in
  let labels = Array.init n (fun _ -> Granii_tensor.Prng.int rng classes) in
  let features =
    Dense.init n k_in (fun i j ->
        Granii_tensor.Prng.normal rng +. if j = labels.(i) then 1.5 else 0.)
  in
  let model = Mp.Mp_models.gcn in
  let low, compiled, _ = Bench_common.compiled model ~binned:false in
  let cm = oracle Hw.Hw_profile.cpu in
  Printf.printf
    "%s on %s (n=%d nnz=%d), fanouts=%s batch=%d epochs=%d\n\n"
    model.Mp.Mp_ast.name graph.G.Graph.name n (G.Graph.n_edges graph)
    (String.concat "," (List.map string_of_int fanouts))
    batch_size epochs;

  (* full-graph baseline: one selection, every epoch touches all n nodes *)
  let env = env_of graph ~k_in ~k_out:classes in
  let lc =
    Selector.select_localized ~oracle:cm
      ~feats:(Featurizer.extract graph) ~env ~iterations:1 compiled
  in
  let plan = lc.Selector.lchoice.Selector.candidate.Codegen.plan in
  let params = Gnn.Layer.init_params ~seed:5 ~env low in
  let optimizer () = Gnn.Optimizer.adam ~lr:0.01 () in
  let full, full_t =
    Timer.measure_wall (fun () ->
        Gnn.Trainer.train ~seed:1 ~epochs ~optimizer:(optimizer ()) ~plan
          ~graph ~features ~labels ~params ())
  in
  Printf.printf "  full graph    : %8.1f ms/epoch  loss %.4f -> %.4f\n"
    (1000. *. full_t /. float_of_int epochs)
    full.Gnn.Trainer.losses.(0)
    full.Gnn.Trainer.losses.(epochs - 1);

  let arm mode =
    Gnn.Trainer.train_minibatch ~seed:1 ~mode ~fanouts ~epochs ~batch_size
      ~optimizer:(optimizer ()) ~oracle:cm ~compiled ~graph ~features
      ~labels ~params ()
  in
  let seq = arm Gnn.Loader.Sequential in
  let pipe = arm Gnn.Loader.Pipelined in
  let report tag (h : Gnn.Trainer.minibatch_history) =
    Printf.printf
      "  %-14s: %8.1f ms/epoch  loss %.4f -> %.4f  (sample %4.0f ms, \
       featurize %4.0f ms, select %4.0f ms, exec %4.0f ms, stall %4.0f ms)\n"
      tag
      (1000. *. h.Gnn.Trainer.wall_time /. float_of_int epochs)
      h.Gnn.Trainer.epoch_losses.(0)
      h.Gnn.Trainer.epoch_losses.(epochs - 1)
      (1000. *. h.Gnn.Trainer.sample_time)
      (1000. *. h.Gnn.Trainer.featurize_time)
      (1000. *. h.Gnn.Trainer.selection_time)
      (1000. *. h.Gnn.Trainer.exec_time)
      (1000. *. h.Gnn.Trainer.stall_time)
  in
  report "sequential" seq;
  report "pipelined" pipe;
  let bitwise =
    bits_equal seq.Gnn.Trainer.epoch_losses pipe.Gnn.Trainer.epoch_losses
    && Array.for_all2
         (fun a b -> bits_equal a b)
         seq.Gnn.Trainer.batch_losses pipe.Gnn.Trainer.batch_losses
  in
  let speedup = seq.Gnn.Trainer.wall_time /. pipe.Gnn.Trainer.wall_time in
  (* the loader work the pipeline manages to hide behind execution *)
  let prep =
    pipe.Gnn.Trainer.sample_time +. pipe.Gnn.Trainer.featurize_time
  in
  let stall_frac = pipe.Gnn.Trainer.stall_time /. pipe.Gnn.Trainer.wall_time in
  let overlap_efficiency =
    if prep > 0. then 1. -. (pipe.Gnn.Trainer.stall_time /. prep) else 1.
  in
  let pc = pipe.Gnn.Trainer.cache_stats in
  let lookups = pc.Plan_cache.hits + pc.Plan_cache.misses in
  let hit_rate =
    if lookups = 0 then 0.
    else float_of_int pc.Plan_cache.hits /. float_of_int lookups
  in
  let select_frac =
    pipe.Gnn.Trainer.selection_time /. pipe.Gnn.Trainer.wall_time
  in
  Printf.printf
    "\n  pipelined vs sequential: %.2fx  stall %.1f%%  overlap %.1f%%  plan \
     cache %d/%d hits (%.0f%%)  selection %.2f%% of wall  %s\n"
    speedup (100. *. stall_frac)
    (100. *. overlap_efficiency)
    pc.Plan_cache.hits lookups (100. *. hit_rate) (100. *. select_frac)
    (if bitwise then "[bitwise ok]" else "[MISMATCH]");
  json_add ~bench:"minibatch"
    [ ("kind", S "epoch_time");
      ("graph", S graph.G.Graph.name);
      ("model", S model.Mp.Mp_ast.name);
      ("n", I n);
      ("nnz", I (G.Graph.n_edges graph));
      ("fanouts", S (String.concat "," (List.map string_of_int fanouts)));
      ("batch_size", I batch_size);
      ("epochs", I epochs);
      ("batches_per_epoch", I (seq.Gnn.Trainer.n_batches / epochs));
      ("full_epoch_s", F (full_t /. float_of_int epochs));
      ("seq_epoch_s", F (seq.Gnn.Trainer.wall_time /. float_of_int epochs));
      ("pipe_epoch_s", F (pipe.Gnn.Trainer.wall_time /. float_of_int epochs));
      ("pipe_speedup", F speedup);
      (* a pipelined speedup below 1 on a 1-core host is expected: the
         loader domain timeshares with the executor *)
      ("host_cores", I (Domain.recommended_domain_count ()));
      ("bitwise_equal", B bitwise) ];
  json_add ~bench:"minibatch"
    [ ("kind", S "overlap");
      ("stall_s", F pipe.Gnn.Trainer.stall_time);
      ("stall_frac", F stall_frac);
      ("overlap_efficiency", F overlap_efficiency);
      ("sample_s", F pipe.Gnn.Trainer.sample_time);
      ("featurize_s", F pipe.Gnn.Trainer.featurize_time);
      ("exec_s", F pipe.Gnn.Trainer.exec_time) ];
  json_add ~bench:"minibatch"
    [ ("kind", S "selection");
      ("cache_hits", I pc.Plan_cache.hits);
      ("cache_misses", I pc.Plan_cache.misses);
      ("cache_evictions", I pc.Plan_cache.evictions);
      ("cache_hit_rate", F hit_rate);
      ("selection_s", F pipe.Gnn.Trainer.selection_time);
      ("selection_frac", F select_frac);
      ("selection_per_batch_s",
       F
         (pipe.Gnn.Trainer.selection_time
         /. float_of_int (max 1 pipe.Gnn.Trainer.n_batches))) ]
