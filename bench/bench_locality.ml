(* Locality engine: what graph reordering and the hybrid (ELL slab + CSR
   tail) format buy on the host CPU, and how many iterations the one-time
   layout work takes to amortize. All numbers here are real measurements;
   every localized result is checked bitwise against the legacy CSR path
   after inverse permutation (the engine's correctness contract). *)

open Bench_common
open Granii_core
module Csr = Granii_sparse.Csr
module Hybrid = Granii_sparse.Hybrid
module Spmm = Granii_sparse.Spmm
module Sddmm = Granii_sparse.Sddmm
module Dense = Granii_tensor.Dense
module G = Granii_graph
module Reorder = G.Reorder
module Gnn = Granii_gnn

let bits_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun i x ->
          if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then ok := false)
        a;
      !ok)

let dense_bits_equal (a : Dense.t) (b : Dense.t) =
  a.Dense.rows = b.Dense.rows && a.Dense.cols = b.Dense.cols
  && bits_equal a.Dense.data b.Dense.data

(* Best-of-[reps] wall time (first call additionally warms the caches). *)
let time_best ?(reps = 3) f =
  ignore (f ());
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let r, t = Granii_hw.Timer.measure f in
    if t < !best then best := t;
    result := Some r
  done;
  (Option.get !result, !best)

(* ---- kernel-level: SpMM / SDDMM under each layout ---- *)

let kernel_section (graph : G.Graph.t) ~k =
  let m = G.Graph.with_self_loops graph in
  let n = m.Csr.n_rows in
  let nnz = Csr.nnz m in
  let b = Dense.random ~seed:1 n k in
  let reference, t_csr = time_best (fun () -> Spmm.run m b) in
  Printf.printf "%s (n=%d nnz=%d) k=%d: CSR SpMM %8.3f ms\n" graph.G.Graph.name
    n nnz k (ms t_csr);
  let report strategy =
    let r, reorder_s =
      Granii_hw.Timer.measure (fun () -> Reorder.compute strategy m)
    in
    let pm, permute_s =
      match strategy with
      | Reorder.Identity -> (m, 0.)
      | _ -> Granii_hw.Timer.measure (fun () -> Reorder.permute_csr r m)
    in
    let h, build_s = Granii_hw.Timer.measure (fun () -> Hybrid.of_csr pm) in
    let pb =
      match strategy with
      | Reorder.Identity -> b
      | _ -> Reorder.permute_dense_rows r b
    in
    let out, t_hyb = time_best (fun () -> Hybrid.spmm h pb) in
    let out =
      match strategy with
      | Reorder.Identity -> out
      | _ -> Reorder.inverse_dense_rows r out
    in
    let bitwise = dense_bits_equal out reference in
    let layout_s = reorder_s +. permute_s +. build_s in
    let gain = t_csr -. t_hyb in
    let amortize = if gain > 0. then layout_s /. gain else infinity in
    Printf.printf
      "  %-8s+hybrid %8.3f ms  (%.2fx, pack %.2f)  layout %6.3f ms -> \
       amortized after %s iterations  %s\n"
      (Reorder.strategy_to_string strategy)
      (ms t_hyb) (t_csr /. t_hyb) (Hybrid.packing h) (ms layout_s)
      (if Float.is_finite amortize then Printf.sprintf "%.1f" amortize
       else "inf")
      (if bitwise then "[bitwise ok]" else "[MISMATCH]");
    json_add ~bench:"locality"
      [ ("kind", S "spmm");
        ("graph", S graph.G.Graph.name);
        ("n", I n);
        ("nnz", I nnz);
        ("k", I k);
        ("strategy", S (Reorder.strategy_to_string strategy));
        ("format", S "hybrid");
        ("packing", F (Hybrid.packing h));
        ("t_csr_s", F t_csr);
        ("t_hybrid_s", F t_hyb);
        ("speedup", F (t_csr /. t_hyb));
        ("reorder_s", F reorder_s);
        ("permute_s", F permute_s);
        ("build_s", F build_s);
        ("layout_s", F layout_s);
        ("gain_per_iteration_s", F gain);
        ("amortize_iterations",
         F (if Float.is_finite amortize then amortize else -1.));
        ("bitwise", B bitwise) ]
  in
  List.iter report [ Reorder.Identity; Reorder.Degree_sort; Reorder.Rcm ];
  (* SDDMM under the winning layout: values land back in CSR order, so the
     comparison needs no inverse permutation of the structure — we gather
     the permuted result's values through the entry permutation implied by
     running on the unpermuted matrix instead (identity ordering only). *)
  let a = Dense.random ~seed:2 n k and b2 = Dense.random ~seed:3 k n in
  let sd_ref, t_sddmm_csr = time_best (fun () -> Sddmm.run m a b2) in
  let h0 = Hybrid.of_csr m in
  let sd_hyb, t_sddmm_hyb = time_best (fun () -> Hybrid.sddmm h0 a b2) in
  let sd_ok =
    match (sd_ref.Csr.values, sd_hyb.Csr.values) with
    | Some v, Some w -> bits_equal v w
    | _ -> false
  in
  Printf.printf "  SDDMM: csr %8.3f ms, hybrid %8.3f ms (%.2fx)  %s\n"
    (ms t_sddmm_csr) (ms t_sddmm_hyb)
    (t_sddmm_csr /. t_sddmm_hyb)
    (if sd_ok then "[bitwise ok]" else "[MISMATCH]");
  json_add ~bench:"locality"
    [ ("kind", S "sddmm");
      ("graph", S graph.G.Graph.name);
      ("n", I n);
      ("nnz", I nnz);
      ("k", I k);
      ("t_csr_s", F t_sddmm_csr);
      ("t_hybrid_s", F t_sddmm_hyb);
      ("speedup", F (t_sddmm_csr /. t_sddmm_hyb));
      ("bitwise", B sd_ok) ]

(* ---- executor-level: a full GCN layer under the selected layout ---- *)

let executor_section (graph : G.Graph.t) ~k ~iterations =
  let model = Granii_mp.Mp_models.find "gcn" in
  let low, comp, _ = compiled model ~binned:false in
  let cm = Cost_oracle.analytic Granii_hw.Hw_profile.cpu in
  let localized =
    Granii.optimize_localized ~oracle:cm ~graph ~k_in:k ~k_out:k
      ~iterations comp
  in
  let plan =
    localized.Granii.ldecision.Granii.choice.Selector.candidate.Codegen.plan
  in
  let env = env_of graph ~k_in:k ~k_out:k in
  let params = Gnn.Layer.init_params ~seed:0 ~env low in
  let h = Dense.random ~seed:1 (G.Graph.n_nodes graph) k in
  let bindings = Gnn.Layer.bindings ~graph ~h params in
  let run locality =
    let engine =
      Engine.create_exn ~obs:!Bench_common.obs
        { Engine.default_config with locality }
    in
    Executor.exec_iterations ~engine ~timing:Executor.Measure ~graph ~bindings
      ~iterations plan
  in
  let base = run Locality.default in
  let config =
    (* measure a non-default layout even when selection keeps the legacy
       path (small inputs are compute-bound in the model) *)
    if Locality.is_default localized.Granii.config then
      { Locality.strategy = Reorder.Degree_sort; format = Locality.Hybrid }
    else localized.Granii.config
  in
  let loc = run config in
  let bitwise =
    match (base.Executor.output, loc.Executor.output) with
    | Executor.Vdense x, Executor.Vdense y -> dense_bits_equal x y
    | _ -> false
  in
  let gain = base.Executor.iteration_time -. loc.Executor.iteration_time in
  let amortize =
    if gain > 0. then loc.Executor.layout_time /. gain else infinity
  in
  Printf.printf
    "GCN %s on %s (k=%d): %8.3f -> %8.3f ms/iteration, layout %6.3f ms \
     (amortized after %s iterations)  %s\n"
    plan.Plan.name graph.G.Graph.name k
    (ms base.Executor.iteration_time)
    (ms loc.Executor.iteration_time)
    (ms loc.Executor.layout_time)
    (if Float.is_finite amortize then Printf.sprintf "%.1f" amortize else "inf")
    (if bitwise then "[bitwise ok]" else "[MISMATCH]");
  json_add ~bench:"locality"
    [ ("kind", S "executor");
      ("graph", S graph.G.Graph.name);
      ("k", I k);
      ("plan", S plan.Plan.name);
      ("config", S (Locality.config_to_string config));
      ("selected", S (Locality.config_to_string localized.Granii.config));
      ("iteration_csr_s", F base.Executor.iteration_time);
      ("iteration_localized_s", F loc.Executor.iteration_time);
      ("speedup",
       F (base.Executor.iteration_time /. loc.Executor.iteration_time));
      ("layout_s", F loc.Executor.layout_time);
      ("amortize_iterations",
       F (if Float.is_finite amortize then amortize else -1.));
      ("bitwise", B bitwise) ]

let run () =
  section
    "Locality: reordering + hybrid format (host CPU, single thread, k=32)";
  let scale = if !smoke then 11 else 14 in
  let skewed = G.Generators.rmat ~scale ~edge_factor:16 () in
  let mesh =
    if !smoke then G.Generators.grid2d ~rows:48 ~cols:48 ()
    else G.Generators.grid2d ~rows:192 ~cols:192 ()
  in
  let k = 32 in
  kernel_section skewed ~k;
  kernel_section mesh ~k;
  print_newline ();
  executor_section skewed ~k ~iterations:(if !smoke then 5 else 20)
