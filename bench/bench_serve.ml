(* Serving runtime: what the plan cache and request batching buy under
   closed-loop load (lib/serve). Real host-CPU measurements: each arm runs
   the same request stream against a fresh server with the feature toggled,
   so the JSON rows carry the ablation the tentpole promises — selection
   amortized to one miss per shape, batching raising throughput. Every arm
   additionally checks one served response bitwise against the
   single-threaded oracle. *)

open Bench_common
module Dense = Granii_tensor.Dense
module G = Granii_graph
module Executor = Granii_core.Executor
module Serve = Granii_serve.Serve
module Ssim = Granii_serve.Sim
module Plan_cache = Granii_serve.Plan_cache

let value_bits_equal a b =
  match (a, b) with
  | Executor.Vdense x, Executor.Vdense y ->
      x.Dense.rows = y.Dense.rows
      && x.Dense.cols = y.Dense.cols
      && Array.for_all2
           (fun p q -> Int64.bits_of_float p = Int64.bits_of_float q)
           x.Dense.data y.Dense.data
  | _ -> false

let arm_name ~batching ~cache =
  Printf.sprintf "batch=%s cache=%s"
    (if batching then "on" else "off")
    (if cache then "on" else "off")

let run_arm ?obs (graph : G.Graph.t) ~model ~k_in ~k_out ~clients ~requests
    ~batching ~cache ~workers ~window =
  let obs = match obs with Some o -> o | None -> !Bench_common.obs in
  let cfg =
    { Serve.default_config with
      workers;
      batching;
      batch_window = window;
      plan_cache = (if cache then Serve.default_config.Serve.plan_cache else 0) }
  in
  let server = Serve.create ~obs cfg in
  Serve.register_graph server ~name:graph.G.Graph.name graph;
  let load =
    { Ssim.clients;
      requests;
      tenants = 2;
      graph = graph.G.Graph.name;
      model;
      k_in;
      k_out;
      seed = 7 }
  in
  let res = Ssim.run server load in
  (* one extra request, checked bitwise against the sequential oracle *)
  let probe = Dense.random ~seed:99 (G.Graph.n_nodes graph) k_in in
  let served =
    match
      Serve.submit server ~tenant:"probe" ~graph:graph.G.Graph.name ~model
        ~k_out ~features:probe
    with
    | Ok ticket -> (Serve.await server ticket).Serve.value
    | Error r -> failwith (Serve.reject_to_string r)
  in
  let reference =
    Serve.oracle server ~graph:graph.G.Graph.name ~model ~k_out ~features:probe
  in
  let bitwise = value_bits_equal served reference in
  Serve.shutdown server;
  (res, bitwise)

let run () =
  section "Serving: plan-cache amortization + request batching (host CPU)";
  let graph =
    if !smoke then G.Generators.erdos_renyi ~n:400 ~avg_degree:6. ()
    else G.Generators.erdos_renyi ~n:3000 ~avg_degree:8. ()
  in
  let requests = if !smoke then 48 else 192 in
  let client_grid = if !smoke then [ 1; 4 ] else [ 1; 4; 8 ] in
  let model = "gcn" and k_in = 32 and k_out = 16 in
  Printf.printf "%s on %s (n=%d nnz=%d) %d->%d, %d requests per arm\n\n" model
    graph.G.Graph.name (G.Graph.n_nodes graph) (G.Graph.n_edges graph) k_in
    k_out requests;
  Printf.printf "  %-8s %-22s %9s %9s %9s %6s %9s  %s\n" "clients" "arm"
    "req/s" "p50 ms" "p99 ms" "width" "cache h/m" "oracle";
  List.iter
    (fun clients ->
      let baseline = ref None in
      List.iter
        (fun (batching, cache) ->
          let res, bitwise =
            run_arm graph ~model ~k_in ~k_out ~clients ~requests ~batching
              ~cache ~workers:0 ~window:0
          in
          if (not batching) && not cache then baseline := Some res.Ssim.throughput;
          let s = res.Ssim.stats in
          let pc = s.Serve.plan_cache in
          Printf.printf "  %-8d %-22s %9.1f %9.3f %9.3f %6.2f %6d/%-3d  %s\n"
            clients
            (arm_name ~batching ~cache)
            res.Ssim.throughput (1000. *. res.Ssim.p50) (1000. *. res.Ssim.p99)
            res.Ssim.mean_width pc.Plan_cache.hits pc.Plan_cache.misses
            (if bitwise then "[bitwise ok]" else "[MISMATCH]");
          json_add ~bench:"serve"
            [ ("kind", S "sweep");
              ("graph", S graph.G.Graph.name);
              ("model", S model);
              ("workers", I 0);
              ("clients", I clients);
              ("requests", I requests);
              ("batching", B batching);
              ("plan_cache", B cache);
              ("throughput_rps", F res.Ssim.throughput);
              ("p50_s", F res.Ssim.p50);
              ("p99_s", F res.Ssim.p99);
              ("mean_latency_s", F res.Ssim.mean_latency);
              ("mean_width", F res.Ssim.mean_width);
              ("max_width", I s.Serve.max_width);
              ("batches", I s.Serve.batches);
              ("widened_steps", I s.Serve.widened_steps);
              ("cache_hits", I pc.Plan_cache.hits);
              ("cache_misses", I pc.Plan_cache.misses);
              ("cache_evictions", I pc.Plan_cache.evictions);
              ("retries", I res.Ssim.retries);
              ("speedup_vs_baseline",
               F
                 (match !baseline with
                 | Some b when b > 0. -> res.Ssim.throughput /. b
                 | _ -> 1.));
              ("bitwise", B bitwise) ])
        [ (false, false); (false, true); (true, false); (true, true) ])
    client_grid;
  (* one threaded-mode row: worker domains with a batch window, checking the
     concurrent scheduler end-to-end under load *)
  let clients = List.fold_left max 1 client_grid in
  let res, bitwise =
    run_arm graph ~model ~k_in ~k_out ~clients ~requests ~batching:true
      ~cache:true ~workers:2 ~window:200
  in
  let s = res.Ssim.stats in
  let pc = s.Serve.plan_cache in
  Printf.printf "  %-8d %-22s %9.1f %9.3f %9.3f %6.2f %6d/%-3d  %s\n" clients
    "workers=2 window=200us" res.Ssim.throughput (1000. *. res.Ssim.p50)
    (1000. *. res.Ssim.p99) res.Ssim.mean_width pc.Plan_cache.hits
    pc.Plan_cache.misses
    (if bitwise then "[bitwise ok]" else "[MISMATCH]");
  json_add ~bench:"serve"
    [ ("kind", S "threaded");
      ("graph", S graph.G.Graph.name);
      ("model", S model);
      ("workers", I 2);
      ("window_us", I 200);
      ("clients", I clients);
      ("requests", I requests);
      ("throughput_rps", F res.Ssim.throughput);
      ("p50_s", F res.Ssim.p50);
      ("p99_s", F res.Ssim.p99);
      ("mean_width", F res.Ssim.mean_width);
      ("batches", I s.Serve.batches);
      ("cache_hits", I pc.Plan_cache.hits);
      ("cache_misses", I pc.Plan_cache.misses);
      ("bitwise", B bitwise) ];
  (* observability overhead: the same stream against a telemetry-off server
     and one carrying the journal + metrics sink. The p50 delta is the
     tentpole's acceptance bar (<5%); the gate tracks it in absolute
     points (overhead_frac). *)
  let module Obs = Granii_obs.Obs in
  let obs_clients = 4 in
  let run_obs obs =
    fst
      (run_arm ~obs graph ~model ~k_in ~k_out ~clients:obs_clients ~requests
         ~batching:true ~cache:true ~workers:0 ~window:0)
  in
  (* throwaway warm-up so neither arm pays one-time compilation; then the
     arms alternate three times and each keeps its best p50/p99 — a single
     draw at these request counts is dominated by scheduler noise *)
  ignore (run_obs Obs.disabled);
  let journal_events = ref 0 in
  let best (p50, p99) r =
    (Float.min p50 r.Ssim.p50, Float.min p99 r.Ssim.p99)
  in
  let rec arms k acc_off acc_on =
    if k = 0 then (acc_off, acc_on)
    else begin
      let off = run_obs Obs.disabled in
      let on_obs = Obs.create ~trace:false ~costmon:false () in
      let on = run_obs on_obs in
      (match on_obs.Obs.journal with
      | Some j -> journal_events := !journal_events + Obs.Journal.total j
      | None -> ());
      arms (k - 1) (best acc_off off) (best acc_on on)
    end
  in
  let (p50_off, p99_off), (p50_on, p99_on) =
    arms 3 (infinity, infinity) (infinity, infinity)
  in
  let journal_events = !journal_events in
  let overhead = if p50_off > 0. then (p50_on -. p50_off) /. p50_off else 0. in
  Printf.printf
    "\n  observability overhead (journal + metrics vs disabled sink, \
     clients=%d, best of 3):\n\
    \  p50 %.3f ms -> %.3f ms  (%+.1f%%), %d journal events recorded\n"
    obs_clients (1000. *. p50_off) (1000. *. p50_on) (100. *. overhead)
    journal_events;
  json_add ~bench:"serve"
    [ ("kind", S "overhead");
      ("graph", S graph.G.Graph.name);
      ("model", S model);
      ("clients", I obs_clients);
      ("requests", I requests);
      ("p50_off_s", F p50_off);
      ("p50_on_s", F p50_on);
      ("p99_off_s", F p99_off);
      ("p99_on_s", F p99_on);
      ("overhead_frac", F overhead);
      ("journal_events", I journal_events) ]
