(* Figure 9: sensitivity of GRANII's decision to neighborhood sampling.
   Both discovered compositions of GCN and GAT are run on 10 random
   neighborhood samples of the mycielskian stand-in at fanouts 1000/100/10
   (H100, DGL). The paper's finding: samples of the same size barely move
   the runtimes, so one GRANII decision covers all samples. *)

open Bench_common
open Granii_core
module G = Granii_graph
module Mp = Granii_mp

let profile = Granii_hw.Hw_profile.h100
let fanouts = [ 1000; 100; 10 ]
let n_samples = 10

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  a.(Array.length a / 2)

let run_model (model : Mp.Mp_ast.model) ~k_in ~k_out =
  Printf.printf "\n%s (%d, %d): per-sample inference time (ms), 100 iterations\n"
    model.Mp.Mp_ast.name k_in k_out;
  let full = G.Datasets.load (G.Datasets.find "MC") in
  let _, comp, _ = compiled model ~binned:false in
  Printf.printf "%-8s" "fanout";
  List.iteri
    (fun i (c : Codegen.ccand) ->
      ignore c;
      Printf.printf "   comp%d(med)  comp%d(spread)" i i)
    comp.Codegen.candidates;
  Printf.printf "   agree\n";
  List.iter
    (fun fanout ->
      let samples =
        List.init n_samples (fun s -> G.Sampling.neighborhood ~seed:s ~fanout full)
      in
      let times_per_candidate =
        List.map
          (fun (c : Codegen.ccand) ->
            List.map
              (fun g ->
                let env = env_of g ~k_in ~k_out in
                Granii_gnn.Trainer.inference_time ~profile ~graph:g ~env
                  ~seed:(Hashtbl.hash g.G.Graph.name) c.Codegen.plan)
              samples)
          comp.Codegen.candidates
      in
      (* does the per-sample winner match the full-graph GRANII decision? *)
      let cm = oracle profile in
      let full_choice =
        Selector.select ~oracle:cm ~feats:(feats full)
          ~env:(env_of full ~k_in ~k_out) ~iterations:100 comp
      in
      let full_idx =
        let rec idx i = function
          | [] -> -1
          | (c : Codegen.ccand) :: rest ->
              if c.Codegen.plan.Plan.name
                 = full_choice.Selector.candidate.Codegen.plan.Plan.name
              then i
              else idx (i + 1) rest
        in
        idx 0 comp.Codegen.candidates
      in
      let agreements =
        List.init n_samples (fun s ->
            let costs =
              List.map (fun times -> List.nth times s) times_per_candidate
            in
            let best = List.fold_left min infinity costs in
            List.nth costs full_idx <= best *. 1.05)
      in
      Printf.printf "%-8d" fanout;
      List.iter
        (fun times ->
          let med = median times in
          let spread =
            (List.fold_left Float.max 0. times -. List.fold_left Float.min infinity times)
            /. med
          in
          Printf.printf "   %9.3f    %9.1f%%" (ms med) (100. *. spread))
        times_per_candidate;
      Printf.printf "   %d/%d\n"
        (List.length (List.filter Fun.id agreements))
        n_samples)
    fanouts

let run () =
  section
    "Figure 9: sampling sensitivity (MC stand-in, H100, DGL)\n\
     'agree' = samples where the full-graph GRANII decision is within 5%% of\n\
     the per-sample optimum";
  run_model Mp.Mp_models.gcn ~k_in:32 ~k_out:256;
  run_model Mp.Mp_models.gat ~k_in:1024 ~k_out:2048
