(* GRANII benchmark harness: regenerates every table and figure of the
   paper's evaluation (Sec. VI). Run everything with

     dune exec bench/main.exe

   or a single artifact with `--only <id>`; `--list` shows the ids. Shapes
   (who wins, rough factors, crossovers) are expected to match the paper;
   absolute numbers come from the simulated hardware profiles (DESIGN.md). *)

let benches =
  [ ("fig1", "Fig. 1: static vs config vs input-aware ordering (GCN)", Bench_fig1.run);
    ("fig2", "Fig. 2: %runtime sparse vs dense across graphs/sizes/hw", Bench_fig2.run);
    ("fig3", "Fig. 3: discovered compositions with complexities", Bench_fig3.run);
    ("tab3", "Table III: geomean speedups (systems x hw x mode x model)", Bench_table3.run);
    ("fig8", "Fig. 8: per-graph speedup series", Bench_fig8.run);
    ("tab4", "Table IV: end-to-end 2-layer forward times (H100)", Bench_table4.run);
    ("fig9", "Fig. 9: sampling sensitivity (MC, H100)", Bench_fig9.run);
    ("tab5", "Table V: multi-layer speedups vs WiseGraph", Bench_table5.run);
    ("tab6", "Table VI: GRANII vs oracles + cost-model ablations", Bench_table6.run);
    ("ovh", "Sec. VI-C1: runtime overheads (+ pruning ablation)", Bench_overheads.run);
    ("acc", "Sec. VI-G: cost-model accuracy on held-out graphs", Bench_costmodel.run);
    ("real", "Validation: measured host CPU vs simulator", Bench_real.run);
    ("micro", "Bechamel microbenchmarks of the real kernels", Bench_micro.run);
    ("mem", "Memory: workspace reuse, tiled GEMM, subtree cache", Bench_memory.run);
    ("locality", "Locality: reordering + hybrid format speedups and amortization", Bench_locality.run);
    ("formats", "Formats: BSR tiles and CBM dedup vs CSR", Bench_formats.run);
    ("ext", "Extensions: multi-head GAT, executed stacks, deep hops", Bench_ext.run);
    ("serve", "Serving: plan-cache amortization + request batching", Bench_serve.run);
    ("minibatch", "Mini-batch training: pipelined loader vs sequential vs full graph", Bench_minibatch.run);
    ("calibration", "Calibration: selection regret on a mis-anchored profile, A/B guard", Bench_calibration.run) ]

let usage () =
  print_endline
    "usage: main.exe [--list | --smoke | --threads <n> | --json <file> | \
     --trace <file> | --metrics <file> | --only <id> [--only <id> ...]]";
  print_endline "available benches:";
  List.iter (fun (id, descr, _) -> Printf.printf "  %-6s %s\n" id descr) benches

module Obs = Granii_obs.Obs

let json_out = ref None
let trace_out = ref None
let metrics_out = ref None

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

(* The telemetry block of BENCH_*.json: per-bench wall time (already
   recorded as the sections ran) plus the sink's counters/gauges and the
   span aggregate, flattened into rows tagged bench="telemetry". *)
let telemetry_rows obs =
  (match obs.Obs.metrics with
  | None -> ()
  | Some m ->
      List.iter
        (fun (name, v) ->
          Bench_common.(
            json_add ~bench:"telemetry"
              [ ("kind", S "counter"); ("name", S name); ("value", I v) ]))
        (Obs.Metrics.counters m);
      List.iter
        (fun (name, v) ->
          Bench_common.(
            json_add ~bench:"telemetry"
              [ ("kind", S "gauge"); ("name", S name); ("value", F v) ]))
        (Obs.Metrics.gauges m);
      List.iter
        (fun (name, (count, sum, min_, max_)) ->
          Bench_common.(
            json_add ~bench:"telemetry"
              [ ("kind", S "histogram"); ("name", S name); ("count", I count);
                ("sum_s", F sum); ("min_s", F min_); ("max_s", F max_) ]))
        (Obs.Metrics.histograms m));
  match obs.Obs.trace with
  | None -> ()
  | Some t ->
      List.iter
        (fun (name, count, total) ->
          Bench_common.(
            json_add ~bench:"telemetry"
              [ ("kind", S "span"); ("name", S name); ("count", I count);
                ("total_s", F total) ]))
        (Obs.Trace.aggregate t)

let () =
  let args = Array.to_list Sys.argv in
  let rec selected = function
    | [] -> []
    | "--only" :: id :: rest -> id :: selected rest
    | "--threads" :: n :: rest ->
        (match int_of_string_opt n with
        | Some t when t >= 1 -> Bench_common.threads := t
        | Some _ | None ->
            Printf.eprintf "--threads expects a positive integer, got %s\n" n;
            exit 1);
        selected rest
    | [ "--threads" ] ->
        Printf.eprintf "--threads expects a positive integer\n";
        exit 1
    | "--smoke" :: rest ->
        Bench_common.smoke := true;
        selected rest
    | "--json" :: file :: rest ->
        json_out := Some file;
        selected rest
    | [ "--json" ] ->
        Printf.eprintf "--json expects a file name\n";
        exit 1
    | "--trace" :: file :: rest ->
        trace_out := Some file;
        selected rest
    | [ "--trace" ] ->
        Printf.eprintf "--trace expects a file name\n";
        exit 1
    | "--metrics" :: file :: rest ->
        metrics_out := Some file;
        selected rest
    | [ "--metrics" ] ->
        Printf.eprintf "--metrics expects a file name\n";
        exit 1
    | "--list" :: _ ->
        usage ();
        exit 0
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | _ :: rest -> selected rest
  in
  let only = selected (List.tl args) in
  let to_run =
    match only with
    | [] -> benches
    | ids ->
        List.iter
          (fun id ->
            if not (List.exists (fun (i, _, _) -> String.equal i id) benches) then begin
              Printf.eprintf "unknown bench id: %s\n" id;
              usage ();
              exit 1
            end)
          ids;
        List.filter (fun (id, _, _) -> List.mem id ids) benches
  in
  if !trace_out <> None || !metrics_out <> None then
    Bench_common.obs := Obs.create ~trace:(!trace_out <> None) ();
  let obs = !Bench_common.obs in
  let t0 = Sys.time () in
  List.iter
    (fun (id, _, run) ->
      let t = Sys.time () in
      Obs.span obs ~cat:"bench" id run;
      let dt = Sys.time () -. t in
      Bench_common.(json_add ~bench:id [ ("kind", S "timing"); ("cpu_s", F dt) ]);
      Printf.printf "\n[%s finished in %.1fs cpu]\n%!" id dt)
    to_run;
  Printf.printf "\nAll benches finished in %.1fs cpu.\n" (Sys.time () -. t0);
  (match (!trace_out, obs.Obs.trace) with
  | Some file, Some t ->
      write_file file
        (if Filename.check_suffix file ".folded" then Obs.Trace.to_folded t
         else Obs.Trace.to_chrome_json t);
      Printf.printf "wrote %d spans to %s\n" (Obs.Trace.count t) file
  | _ -> ());
  (match (!metrics_out, obs.Obs.metrics) with
  | Some file, Some m ->
      write_file file
        (if Filename.check_suffix file ".prom" then Obs.Metrics.to_prometheus m
         else Obs.Metrics.to_json m);
      Printf.printf "wrote metrics to %s\n" file
  | _ -> ());
  match !json_out with
  | None -> ()
  | Some file ->
      telemetry_rows obs;
      Bench_common.json_write file;
      Printf.printf "wrote %d JSON rows to %s\n" (List.length !Bench_common.json_rows) file
