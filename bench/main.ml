(* GRANII benchmark harness: regenerates every table and figure of the
   paper's evaluation (Sec. VI). Run everything with

     dune exec bench/main.exe

   or a single artifact with `--only <id>`; `--list` shows the ids. Shapes
   (who wins, rough factors, crossovers) are expected to match the paper;
   absolute numbers come from the simulated hardware profiles (DESIGN.md). *)

let benches =
  [ ("fig1", "Fig. 1: static vs config vs input-aware ordering (GCN)", Bench_fig1.run);
    ("fig2", "Fig. 2: %runtime sparse vs dense across graphs/sizes/hw", Bench_fig2.run);
    ("fig3", "Fig. 3: discovered compositions with complexities", Bench_fig3.run);
    ("tab3", "Table III: geomean speedups (systems x hw x mode x model)", Bench_table3.run);
    ("fig8", "Fig. 8: per-graph speedup series", Bench_fig8.run);
    ("tab4", "Table IV: end-to-end 2-layer forward times (H100)", Bench_table4.run);
    ("fig9", "Fig. 9: sampling sensitivity (MC, H100)", Bench_fig9.run);
    ("tab5", "Table V: multi-layer speedups vs WiseGraph", Bench_table5.run);
    ("tab6", "Table VI: GRANII vs oracles + cost-model ablations", Bench_table6.run);
    ("ovh", "Sec. VI-C1: runtime overheads (+ pruning ablation)", Bench_overheads.run);
    ("acc", "Sec. VI-G: cost-model accuracy on held-out graphs", Bench_costmodel.run);
    ("real", "Validation: measured host CPU vs simulator", Bench_real.run);
    ("micro", "Bechamel microbenchmarks of the real kernels", Bench_micro.run);
    ("mem", "Memory: workspace reuse, tiled GEMM, subtree cache", Bench_memory.run);
    ("locality", "Locality: reordering + hybrid format speedups and amortization", Bench_locality.run);
    ("ext", "Extensions: multi-head GAT, executed stacks, deep hops", Bench_ext.run) ]

let usage () =
  print_endline
    "usage: main.exe [--list | --smoke | --threads <n> | --json <file> | --only <id> [--only <id> ...]]";
  print_endline "available benches:";
  List.iter (fun (id, descr, _) -> Printf.printf "  %-6s %s\n" id descr) benches

let json_out = ref None

let () =
  let args = Array.to_list Sys.argv in
  let rec selected = function
    | [] -> []
    | "--only" :: id :: rest -> id :: selected rest
    | "--threads" :: n :: rest ->
        (match int_of_string_opt n with
        | Some t when t >= 1 -> Bench_common.threads := t
        | Some _ | None ->
            Printf.eprintf "--threads expects a positive integer, got %s\n" n;
            exit 1);
        selected rest
    | [ "--threads" ] ->
        Printf.eprintf "--threads expects a positive integer\n";
        exit 1
    | "--smoke" :: rest ->
        Bench_common.smoke := true;
        selected rest
    | "--json" :: file :: rest ->
        json_out := Some file;
        selected rest
    | [ "--json" ] ->
        Printf.eprintf "--json expects a file name\n";
        exit 1
    | "--list" :: _ ->
        usage ();
        exit 0
    | ("--help" | "-h") :: _ ->
        usage ();
        exit 0
    | _ :: rest -> selected rest
  in
  let only = selected (List.tl args) in
  let to_run =
    match only with
    | [] -> benches
    | ids ->
        List.iter
          (fun id ->
            if not (List.exists (fun (i, _, _) -> String.equal i id) benches) then begin
              Printf.eprintf "unknown bench id: %s\n" id;
              usage ();
              exit 1
            end)
          ids;
        List.filter (fun (id, _, _) -> List.mem id ids) benches
  in
  let t0 = Sys.time () in
  List.iter
    (fun (id, _, run) ->
      let t = Sys.time () in
      run ();
      let dt = Sys.time () -. t in
      Bench_common.(json_add ~bench:id [ ("kind", S "timing"); ("cpu_s", F dt) ]);
      Printf.printf "\n[%s finished in %.1fs cpu]\n%!" id dt)
    to_run;
  Printf.printf "\nAll benches finished in %.1fs cpu.\n" (Sys.time () -. t0);
  match !json_out with
  | None -> ()
  | Some file ->
      Bench_common.json_write file;
      Printf.printf "wrote %d JSON rows to %s\n" (List.length !Bench_common.json_rows) file
