(* Bechamel microbenchmarks of the real (host-CPU) kernels backing every
   primitive — the measured substrate behind the CPU rows. *)

open Bechamel
open Toolkit
module Dense = Granii_tensor.Dense
module Csr = Granii_sparse.Csr
module G = Granii_graph

let tests () =
  let graph = G.Generators.rmat ~seed:3 ~scale:10 ~edge_factor:16 () in
  let a = G.Graph.with_self_loops graph in
  let n = G.Graph.n_nodes graph in
  let k = 32 in
  let h = Dense.random ~seed:1 n k in
  let w = Dense.random ~seed:2 k k in
  let d = G.Graph.norm_inv_sqrt graph in
  let aw = Granii_sparse.Sparse_ops.scale_rows d a in
  Test.make_grouped ~name:"kernels"
    [ Test.make ~name:"gemm_n_k_k" (Staged.stage (fun () -> Dense.matmul h w));
      Test.make ~name:"spmm_unweighted" (Staged.stage (fun () -> Granii_sparse.Spmm.run a h));
      Test.make ~name:"spmm_weighted" (Staged.stage (fun () -> Granii_sparse.Spmm.run aw h));
      Test.make ~name:"sddmm_rank1" (Staged.stage (fun () -> Granii_sparse.Sddmm.rank1 a d d));
      Test.make ~name:"row_broadcast" (Staged.stage (fun () -> Dense.row_broadcast d h));
      Test.make ~name:"edge_softmax" (Staged.stage (fun () -> Granii_sparse.Sparse_ops.row_softmax aw));
      Test.make ~name:"degree" (Staged.stage (fun () -> G.Graph.norm_inv_sqrt graph));
      Test.make ~name:"featurize" (Staged.stage (fun () -> G.Graph_features.extract graph)) ]

(* Multicore engine speedups: sequential kernels vs the domain pool on a
   ~100k-edge power-law graph at K=64 (the acceptance setting). Wall-clock,
   so the numbers only separate when the machine actually has the cores. *)
let run_parallel () =
  let threads = !Bench_common.threads in
  Bench_common.section
    (Printf.sprintf
       "Parallel engine: sequential vs %d-thread pool (rmat scale=13 ef=12, k=64)"
       threads);
  let graph = G.Generators.rmat ~seed:5 ~scale:13 ~edge_factor:12 () in
  let a = G.Graph.with_self_loops graph in
  let n = G.Graph.n_nodes graph in
  let k = 64 in
  let h = Dense.random ~seed:1 n k in
  let w = Dense.random ~seed:2 k k in
  let aw = Granii_sparse.Sparse_ops.scale_rows (G.Graph.norm_inv_sqrt graph) a in
  Printf.printf "graph: n=%d nnz=%d, host cores available: %d\n" n (Csr.nnz a)
    (Domain.recommended_domain_count ());
  let pool = Granii_hw.Domain_pool.for_threads threads in
  let cases =
    [ ("spmm_unweighted",
       (fun () -> ignore (Granii_sparse.Spmm.run a h)),
       (fun () -> ignore (Granii_sparse.Spmm.run ?pool a h)));
      ("spmm_weighted",
       (fun () -> ignore (Granii_sparse.Spmm.run aw h)),
       (fun () -> ignore (Granii_sparse.Spmm.run ?pool aw h)));
      ("gemm_n_k_k",
       (fun () -> ignore (Dense.matmul h w)),
       (fun () -> ignore (Dense.matmul ?pool h w))) ]
  in
  Printf.printf "%-20s %12s %12s %9s\n" "kernel" "seq/run" "pool/run" "speedup";
  Bench_common.hr ();
  List.iter
    (fun (name, seq, par) ->
      let t_seq = Granii_hw.Timer.measure_n_wall ~warmup:1 ~n:5 seq in
      let t_par = Granii_hw.Timer.measure_n_wall ~warmup:1 ~n:5 par in
      Printf.printf "%-20s %9.3f ms %9.3f ms %8.2fx\n" name (1000. *. t_seq)
        (1000. *. t_par) (t_seq /. t_par))
    cases

let run () =
  run_parallel ();
  Bench_common.section
    "Microbenchmarks: real host-CPU kernels (rmat scale=10, k=32, bechamel)";
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) () in
  let raw = Benchmark.all cfg [ instance ] (tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  Printf.printf "%-28s %14s\n" "kernel" "time/run";
  Bench_common.hr ();
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ est ] -> Printf.printf "%-28s %11.3f us\n" name (est /. 1e3)
      | Some _ | None -> Printf.printf "%-28s %14s\n" name "n/a")
    (List.sort compare rows)
