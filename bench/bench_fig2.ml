(* Figure 2: percentage of GCN runtime spent in sparse vs dense primitives,
   across graphs, embedding sizes, and hardware. The paper uses this to show
   that no single factor predicts the split. *)

open Bench_common
open Granii_core

let run () =
  section "Figure 2: %% runtime sparse/dense for GCN (default composition)";
  Printf.printf "%-4s %-12s %-5s | %8s %8s\n" "G" "(kin,kout)" "hw" "sparse%" "dense%";
  hr ();
  let model = Granii_mp.Mp_models.gcn in
  let sys = Granii_systems.System.dgl in
  let b = baseline sys model in
  List.iter
    (fun (info, graph) ->
      List.iter
        (fun (k_in, k_out) ->
          List.iter
            (fun profile ->
              let env = env_of graph ~k_in ~k_out in
              let plan = Granii_systems.Baseline.plan b ~k_in ~k_out in
              let sparse_t = ref 0. and dense_t = ref 0. in
              List.iter
                (fun (s : Plan.step) ->
                  let t =
                    List.fold_left
                      (fun acc k -> acc +. Cost_oracle.kernel_time profile k)
                      0.
                      (Primitive.to_kernels env s.Plan.prim)
                  in
                  if Primitive.is_sparse_primitive s.Plan.prim then
                    sparse_t := !sparse_t +. t
                  else dense_t := !dense_t +. t)
                plan.Plan.steps;
              let total = !sparse_t +. !dense_t in
              Printf.printf "%-4s (%4d,%4d) %-5s | %7.1f%% %7.1f%%\n"
                info.Granii_graph.Datasets.key k_in k_out
                profile.Granii_hw.Hw_profile.name
                (100. *. !sparse_t /. total)
                (100. *. !dense_t /. total))
            profiles)
        [ (32, 32); (256, 256); (1024, 1024) ])
    (datasets ());
  hr ();
  print_endline
    "Expected shape: the sparse share grows from CPU to A100 to H100 and from\n\
     sparse to dense graphs - no single factor determines the split."
