(* Shared infrastructure for the paper-reproduction benches. *)

open Granii_core
module Hw = Granii_hw
module Mp = Granii_mp
module Sys_ = Granii_systems
module G = Granii_graph
module Gnn = Granii_gnn

let profiles = [ Hw.Hw_profile.h100; Hw.Hw_profile.a100; Hw.Hw_profile.cpu ]
let gpu_profiles = [ Hw.Hw_profile.h100; Hw.Hw_profile.a100 ]
let systems = [ Sys_.System.wisegraph; Sys_.System.dgl ]

(* Embedding-size grid: square sizes plus shrinking and growing pairs, the
   paper's 32..2048 span (Sec. VI-B). *)
let square_pairs = [ (32, 32); (256, 256); (1024, 1024) ]
let shrinking_pairs = [ (512, 64); (2048, 256) ]
let growing_pairs = [ (64, 512); (256, 2048); (1024, 2048) ]
let all_pairs = square_pairs @ shrinking_pairs @ growing_pairs

(* Smoke mode (driver's [--smoke], the @bench-smoke alias): every section
   runs one tiny configuration — first dataset, one embedding pair, analytic
   cost models instead of the GBRT fit — so the perf plumbing is exercised
   without the full sweeps. *)
let smoke = ref false

(* GAT is evaluated only on increasing sizes (Sec. VI-B). *)
let pairs_for (m : Mp.Mp_ast.model) =
  let pairs = if m.Mp.Mp_ast.attention then growing_pairs else all_pairs in
  if !smoke then [ List.hd pairs ] else pairs

let geomean = function
  | [] -> nan
  | xs ->
      exp (List.fold_left (fun a x -> a +. log x) 0. xs /. float_of_int (List.length xs))

let env_of graph ~k_in ~k_out =
  let n = G.Graph.n_nodes graph in
  { Dim.n; nnz = G.Graph.n_edges graph + n; k_in; k_out }

(* Thread count for the real-execution benches ([micro], [real]); set by the
   driver's [--threads N] flag. The simulated-profile benches are unaffected
   except where they featurize with it explicitly. *)
let threads = ref 1

(* Telemetry sink for the real-execution sections; [Obs.disabled] unless the
   driver's [--trace]/[--metrics] flags enabled it, so passing
   [~obs:!Bench_common.obs] into an engine is always safe. *)
let obs = ref Granii_obs.Obs.disabled

(* [None] while [!threads <= 1]; otherwise the shared process-wide pool. *)
let pool () = Hw.Domain_pool.for_threads !threads

(* ---- caches: everything below is built once per bench process ---- *)

let cost_model_cache : (string, Cost_model.t) Hashtbl.t = Hashtbl.create 4

let cost_model profile =
  if !smoke then Cost_model.analytic profile
  else
    let key = profile.Hw.Hw_profile.name in
    match Hashtbl.find_opt cost_model_cache key with
    | Some cm -> cm
    | None ->
        let data = Profiling.collect ~profile () in
        let cm = Cost_model.train ~profile data in
        Hashtbl.add cost_model_cache key cm;
        cm

(* Oracle wrappers over the cached base models: calibration off, so bench
   predictions are exactly the base model's. *)
let oracle_cache : (string, Cost_oracle.t) Hashtbl.t = Hashtbl.create 4

let oracle profile =
  let key = profile.Hw.Hw_profile.name in
  match Hashtbl.find_opt oracle_cache key with
  | Some o -> o
  | None ->
      let o = Cost_oracle.of_model (cost_model profile) in
      Hashtbl.add oracle_cache key o;
      o

let compiled_cache : (string, Mp.Lower.lowered * Codegen.t * Granii.offline_stats) Hashtbl.t =
  Hashtbl.create 16

let compiled (m : Mp.Mp_ast.model) ~binned =
  let key = Printf.sprintf "%s/%b" m.Mp.Mp_ast.name binned in
  match Hashtbl.find_opt compiled_cache key with
  | Some c -> c
  | None ->
      let low = Mp.Lower.lower m in
      let c, stats =
        Granii.compile ~name:m.Mp.Mp_ast.name
          ~degree_leaves:(Mp.Lower.degree_leaves low ~binned)
          low.Mp.Lower.ir
      in
      Hashtbl.add compiled_cache key (low, c, stats);
      (low, c, stats)

let baseline_cache : (string, Sys_.Baseline.t) Hashtbl.t = Hashtbl.create 16

let baseline sys (m : Mp.Mp_ast.model) =
  let key = sys.Sys_.System.sys_name ^ "/" ^ m.Mp.Mp_ast.name in
  match Hashtbl.find_opt baseline_cache key with
  | Some b -> b
  | None ->
      let b = Sys_.Baseline.make sys m in
      Hashtbl.add baseline_cache key b;
      b

let feats_cache : (string, Featurizer.t) Hashtbl.t = Hashtbl.create 8

let feats graph =
  let key = graph.G.Graph.name in
  match Hashtbl.find_opt feats_cache key with
  | Some f -> f
  | None ->
      let f = Featurizer.extract graph in
      Hashtbl.add feats_cache key f;
      f

let datasets () =
  let all = if !smoke then [ List.hd G.Datasets.all ] else G.Datasets.all in
  List.map (fun d -> (d, G.Datasets.load d)) all

type mode = Inference | Training

let mode_name = function Inference -> "I" | Training -> "T"

(* Total simulated time of a plan on a profile: inference or training
   (training adds the default backward, which GRANII does not optimize). *)
let plan_time ~mode ~profile ~graph ~env ?(iterations = 100) plan =
  match mode with
  | Inference -> Gnn.Trainer.inference_time ~profile ~graph ~env ~iterations plan
  | Training -> Gnn.Trainer.training_time ~profile ~graph ~env ~iterations plan

(* GRANII's end-to-end time for one setting: select with the learned cost
   models, run the chosen plan, charge the simulated one-time overhead. *)
let granii_time ~mode ~profile ~sys ~(model : Mp.Mp_ast.model) ~graph ~k_in ~k_out
    ?(iterations = 100) () =
  let _, comp, _ = compiled model ~binned:sys.Sys_.System.binned_degrees in
  let env = env_of graph ~k_in ~k_out in
  let choice =
    Selector.select ~oracle:(oracle profile) ~feats:(feats graph) ~env
      ~iterations comp
  in
  let plan = choice.Selector.candidate.Codegen.plan in
  plan_time ~mode ~profile ~graph ~env ~iterations plan
  +. Granii.simulated_overhead ~profile ~env

let baseline_time ~mode ~profile ~sys ~model ~graph ~k_in ~k_out ?(iterations = 100) () =
  let b = baseline sys model in
  let env = env_of graph ~k_in ~k_out in
  plan_time ~mode ~profile ~graph ~env ~iterations (Sys_.Baseline.plan b ~k_in ~k_out)

let speedup ~mode ~profile ~sys ~model ~graph ~k_in ~k_out ?(iterations = 100) () =
  baseline_time ~mode ~profile ~sys ~model ~graph ~k_in ~k_out ~iterations ()
  /. granii_time ~mode ~profile ~sys ~model ~graph ~k_in ~k_out ~iterations ()

(* ---- machine-readable output ---- *)

(* Rows for the driver's [--json FILE] dump: each bench can record flat
   records (numbers, strings, bools); the memory section uses this to emit
   per-iteration Gc allocation stats next to the time numbers, so future
   changes can track an allocation trajectory alongside the time one. *)
type json_value = F of float | I of int | S of string | B of bool

let json_rows : (string * (string * json_value) list) list ref = ref []

let json_add ~bench fields = json_rows := (bench, fields) :: !json_rows

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_write path =
  let oc = open_out path in
  let pv = function
    | F x ->
        if Float.is_finite x then Printf.sprintf "%.9g" x
        else Printf.sprintf "\"%s\"" (string_of_float x)
    | I i -> string_of_int i
    | S s -> Printf.sprintf "\"%s\"" (json_escape s)
    | B b -> string_of_bool b
  in
  let row (bench, fields) =
    let fields = ("bench", S bench) :: fields in
    "  {"
    ^ String.concat ", "
        (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" (json_escape k) (pv v)) fields)
    ^ "}"
  in
  output_string oc "[\n";
  output_string oc (String.concat ",\n" (List.rev_map row !json_rows));
  output_string oc "\n]\n";
  close_out oc

(* ---- formatting ---- *)

let hr () = print_endline (String.make 78 '-')

let section title =
  print_newline ();
  print_endline (String.make 78 '=');
  Printf.printf "%s\n" title;
  print_endline (String.make 78 '=')

let ms t = t *. 1000.
