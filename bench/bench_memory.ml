(* Memory-system behavior of the executor: per-iteration Gc allocation with
   and without a workspace arena (must be bitwise identical), the cache-tiled
   GEMM vs the untiled kernel, and the shared-subtree cache's hit rate over a
   full selection sweep. All numbers here are real host-CPU measurements. *)

open Bench_common
open Granii_core
module Dense = Granii_tensor.Dense
module G = Granii_graph
module Gnn = Granii_gnn

let bits_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun i x ->
          if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then ok := false)
        a;
      !ok)

let value_equal (a : Executor.value) (b : Executor.value) =
  match (a, b) with
  | Executor.Vdense x, Executor.Vdense y ->
      x.Dense.rows = y.Dense.rows && x.Dense.cols = y.Dense.cols
      && bits_equal x.Dense.data y.Dense.data
  | Executor.Vdiag x, Executor.Vdiag y -> bits_equal x y
  | Executor.Vsparse x, Executor.Vsparse y -> (
      x.Granii_sparse.Csr.row_ptr = y.Granii_sparse.Csr.row_ptr
      && x.Granii_sparse.Csr.col_idx = y.Granii_sparse.Csr.col_idx
      &&
      match (x.Granii_sparse.Csr.values, y.Granii_sparse.Csr.values) with
      | None, None -> true
      | Some v, Some w -> bits_equal v w
      | _ -> false)
  | _ -> false

(* Gc words allocated by [f ()], split minor / major (major includes
   promotions, so "fresh words seen by the collector" on both heaps). *)
let alloc_words f =
  let g0 = Gc.quick_stat () in
  let r = f () in
  let g1 = Gc.quick_stat () in
  ( r,
    g1.Gc.minor_words -. g0.Gc.minor_words,
    g1.Gc.major_words -. g0.Gc.major_words )

let candidate_for comp ~k_in ~k_out =
  let scen = Selector.scenario_of ~k_in ~k_out in
  List.find
    (fun (c : Codegen.ccand) -> List.mem scen c.Codegen.scenarios)
    comp.Codegen.candidates

let run_model (model : Granii_mp.Mp_ast.model) ~k_in ~k_out ~iters graph =
  let low, comp, _ = compiled model ~binned:false in
  let n = G.Graph.n_nodes graph in
  let env = env_of graph ~k_in ~k_out in
  let cand = candidate_for comp ~k_in ~k_out in
  let params = Gnn.Layer.init_params ~seed:9 ~env low in
  let h = Dense.random ~seed:10 n k_in in
  let bindings = Gnn.Layer.bindings ~graph ~h params in
  let plan = cand.Codegen.plan in
  let plain = Engine.default () in
  let run () = Executor.exec ~engine:plain ~timing:Executor.Measure ~graph ~bindings plan in
  (* warm up (fills caches, first-touch pages) before any Gc accounting *)
  let baseline = run () in
  let _, alloc_minor, alloc_major =
    alloc_words (fun () ->
        for _ = 1 to iters do
          ignore (run ())
        done)
  in
  let ws_engine =
    Engine.create_exn ~obs:!Bench_common.obs
      { Engine.default_config with workspace = true }
  in
  let run_ws () =
    Executor.exec_iterations ~engine:ws_engine ~timing:Executor.Measure ~graph
      ~bindings ~iterations:iters plan
  in
  ignore (run_ws ());
  let reused, ws_minor, ws_major = alloc_words run_ws in
  let identical = value_equal baseline.Executor.output reused.Executor.output in
  let per x = x /. float_of_int iters in
  let cut =
    if alloc_minor <= 0. then 0.
    else 100. *. (1. -. (ws_minor /. alloc_minor))
  in
  Printf.printf "%-8s %-22s %12.0f %12.0f %7.1f%% %12.0f %12.0f %6s\n"
    model.Granii_mp.Mp_ast.name plan.Plan.name (per alloc_minor) (per ws_minor)
    cut (per alloc_major) (per ws_major)
    (if identical then "yes" else "NO");
  json_add ~bench:"mem"
    [ ("kind", S "workspace");
      ("model", S model.Granii_mp.Mp_ast.name);
      ("plan", S plan.Plan.name);
      ("iterations", I iters);
      ("minor_words_per_iter_alloc", F (per alloc_minor));
      ("minor_words_per_iter_ws", F (per ws_minor));
      ("minor_cut_pct", F cut);
      ("major_words_per_iter_alloc", F (per alloc_major));
      ("major_words_per_iter_ws", F (per ws_major));
      ("bitwise_identical", B identical) ]

let run_gemm () =
  let s = if !smoke then 128 else 512 in
  let a = Dense.random ~seed:1 s s and b = Dense.random ~seed:2 s s in
  let n = if !smoke then 2 else 3 in
  let t_u =
    Granii_hw.Timer.measure_n ~warmup:1 ~n (fun () ->
        ignore (Dense.matmul_unblocked a b))
  in
  let t_t =
    Granii_hw.Timer.measure_n ~warmup:1 ~n (fun () -> ignore (Dense.matmul a b))
  in
  Printf.printf "gemm %dx%dx%d (1 thread): untiled %.2f ms, tiled %.2f ms -> %.2fx\n"
    s s s (ms t_u) (ms t_t) (t_u /. t_t);
  json_add ~bench:"mem"
    [ ("kind", S "gemm_tiling");
      ("size", I s);
      ("untiled_ms", F (ms t_u));
      ("tiled_ms", F (ms t_t));
      ("speedup", F (t_u /. t_t)) ]

let run_cache graph =
  let model = Granii_mp.Mp_models.gcn in
  let _, comp, _ = compiled model ~binned:false in
  let k_in, k_out = (32, 32) in
  let n = G.Graph.n_nodes graph in
  let env = env_of graph ~k_in ~k_out in
  let low, _, _ = compiled model ~binned:false in
  let params = Gnn.Layer.init_params ~seed:9 ~env low in
  let h = Dense.random ~seed:10 n k_in in
  let bindings = Gnn.Layer.bindings ~graph ~h params in
  let (ranked, (hits, misses)), t =
    let t0 = Granii_hw.Timer.now () in
    let r =
      Selector.measure ~timing:Executor.Measure ~graph ~bindings ~env
        ~iterations:100 comp
    in
    (r, Granii_hw.Timer.now () -. t0)
  in
  let steps =
    List.fold_left
      (fun acc ((c : Codegen.ccand), _) -> acc + List.length c.Codegen.plan.Plan.steps)
      0 ranked
  in
  Printf.printf
    "subtree cache over %d gcn candidates (%d steps total): %d hits / %d misses (%.0f%% skipped), sweep %.1f ms\n"
    (List.length ranked) steps hits misses
    (100. *. float_of_int hits /. float_of_int (max 1 (hits + misses)))
    (ms t);
  json_add ~bench:"mem"
    [ ("kind", S "subtree_cache");
      ("candidates", I (List.length ranked));
      ("cache_hits", I hits);
      ("cache_misses", I misses);
      ("sweep_ms", F (ms t)) ]

(* workspace + cache is a legal engine combination (entries are epoch-pinned:
   copied out of the arena on insert, so arena reclaim cannot corrupt them);
   show the hit rate a repeated run gets and that the output stays bitwise
   identical to the plain engine's. *)
let run_ws_cache graph =
  let model = Granii_mp.Mp_models.gcn in
  let low, comp, _ = compiled model ~binned:false in
  let k_in, k_out = (32, 32) in
  let n = G.Graph.n_nodes graph in
  let env = env_of graph ~k_in ~k_out in
  let cand = candidate_for comp ~k_in ~k_out in
  let params = Gnn.Layer.init_params ~seed:9 ~env low in
  let h = Dense.random ~seed:10 n k_in in
  let bindings = Gnn.Layer.bindings ~graph ~h params in
  let plan = cand.Codegen.plan in
  let reference =
    Executor.exec ~engine:(Engine.default ()) ~timing:Executor.Measure ~graph
      ~bindings plan
  in
  let engine =
    Engine.create_exn ~obs:!Bench_common.obs
      { Engine.default_config with workspace = true; cache = true }
  in
  ignore (Executor.exec ~engine ~timing:Executor.Measure ~graph ~bindings plan);
  let r = Executor.exec ~engine ~timing:Executor.Measure ~graph ~bindings plan in
  let hits, misses =
    match Engine.cache engine with
    | Some c -> Engine.cache_stats c
    | None -> (0, 0)
  in
  let identical = value_equal reference.Executor.output r.Executor.output in
  Printf.printf
    "workspace+cache engine (epoch-pinned entries): %d hits / %d misses over \
     two runs, bitwise %s\n"
    hits misses
    (if identical then "yes" else "NO");
  json_add ~bench:"mem"
    [ ("kind", S "workspace_cache");
      ("cache_hits", I hits);
      ("cache_misses", I misses);
      ("bitwise_identical", B identical) ]

let run () =
  section "Memory: workspace reuse, tiled GEMM, shared-subtree cache (host CPU)";
  let graph =
    if !smoke then G.Generators.erdos_renyi ~seed:7 ~n:512 ~avg_degree:8. ()
    else G.Generators.rmat ~seed:7 ~scale:11 ~edge_factor:8 ()
  in
  let iters = if !smoke then 3 else 20 in
  Printf.printf "graph: %s (n=%d nnz=%d), %d iterations/case\n"
    graph.G.Graph.name (G.Graph.n_nodes graph)
    (Granii_sparse.Csr.nnz (G.Graph.with_self_loops graph))
    iters;
  Printf.printf "%-8s %-22s %12s %12s %8s %12s %12s %6s\n" "model" "plan"
    "minor/it" "minor/it ws" "cut" "major/it" "major/it ws" "same";
  hr ();
  run_model Granii_mp.Mp_models.gcn ~k_in:32 ~k_out:32 ~iters graph;
  run_model Granii_mp.Mp_models.gat ~k_in:16 ~k_out:64 ~iters graph;
  hr ();
  run_gemm ();
  run_cache graph;
  run_ws_cache graph
