(* Sparse-format benches: what the BSR tiling and the CBM neighbor-dedup
   factoring buy over CSR on the graph family each one targets — and what
   they cost on an unfavorable skewed graph, which is exactly the trade the
   cost model's fill/overlap terms encode. Kernel sweeps run on the raw
   adjacency (no self-loops): diagonal insertion breaks CBM's exact-prefix
   sharing, so {m \tilde A} workloads see the smaller gains the overlap
   statistic predicts. Conversion amortization is reported like
   BENCH_locality.json; every measured output is checked bitwise against
   the CSR oracle. *)

open Bench_common
module Csr = Granii_sparse.Csr
module Bsr = Granii_sparse.Bsr
module Cbm = Granii_sparse.Cbm
module Spmm = Granii_sparse.Spmm
module Sddmm = Granii_sparse.Sddmm
module Dense = Granii_tensor.Dense
module Parallel = Granii_tensor.Parallel
module G = Granii_graph

let bits_equal a b =
  Array.length a = Array.length b
  && (let ok = ref true in
      Array.iteri
        (fun i x ->
          if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then ok := false)
        a;
      !ok)

let dense_bits_equal (a : Dense.t) (b : Dense.t) =
  a.Dense.rows = b.Dense.rows && a.Dense.cols = b.Dense.cols
  && bits_equal a.Dense.data b.Dense.data

(* Best-of-[reps] wall time (first call additionally warms the caches). *)
let time_best ?(reps = 3) f =
  ignore (f ());
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let r, t = Granii_hw.Timer.measure f in
    if t < !best then best := t;
    result := Some r
  done;
  (Option.get !result, !best)

let format_name = function `Bsr -> "bsr" | `Cbm -> "cbm"

(* ---- SpMM: {format x graph family x k x threads} ---- *)

let spmm_point (graph : G.Graph.t) ~family ~fmt ~k ~threads =
  let m = graph.G.Graph.adj in
  let n = m.Csr.n_rows in
  let nnz = Csr.nnz m in
  let pool = if threads > 1 then Some (Parallel.create ~threads ()) else None in
  let b = Dense.random ~seed:1 n k in
  let reference, t_csr = time_best (fun () -> Spmm.run ?pool m b) in
  let convert_s, stat_name, stat, run =
    match fmt with
    | `Bsr ->
        let f, s = Granii_hw.Timer.measure (fun () -> Bsr.of_csr m) in
        (s, "fill", Bsr.fill f, fun () -> Bsr.spmm ?pool f b)
    | `Cbm ->
        let d, s = Granii_hw.Timer.measure (fun () -> Cbm.of_csr m) in
        (s, "dedup", Cbm.dedup_ratio d, fun () -> Cbm.spmm ?pool d b)
  in
  let out, t_fmt = time_best run in
  (match pool with Some p -> Parallel.shutdown p | None -> ());
  let bitwise = dense_bits_equal out reference in
  let gain = t_csr -. t_fmt in
  let amortize = if gain > 0. then convert_s /. gain else infinity in
  Printf.printf
    "  %-9s %-4s t=%d k=%-4d: csr %8.3f ms, %s %8.3f ms (%.2fx, %s %.2f)  \
     convert %6.3f ms -> amortized after %s iterations  %s\n"
    family (format_name fmt) threads k (ms t_csr) (format_name fmt) (ms t_fmt)
    (t_csr /. t_fmt) stat_name stat (ms convert_s)
    (if Float.is_finite amortize then Printf.sprintf "%.1f" amortize else "inf")
    (if bitwise then "[bitwise ok]" else "[MISMATCH]");
  json_add ~bench:"formats"
    [ ("kind", S "spmm");
      ("graph", S graph.G.Graph.name);
      ("family", S family);
      ("format", S (format_name fmt));
      ("n", I n);
      ("nnz", I nnz);
      ("k", I k);
      ("threads", I threads);
      (stat_name, F stat);
      ("t_csr_s", F t_csr);
      ("t_format_s", F t_fmt);
      ("speedup", F (t_csr /. t_fmt));
      ("convert_s", F convert_s);
      ("gain_per_iteration_s", F gain);
      ("amortize_iterations",
       F (if Float.is_finite amortize then amortize else -1.));
      ("bitwise", B bitwise) ]

(* ---- SDDMM: each format on its favorable family, single thread ---- *)

let sddmm_point (graph : G.Graph.t) ~family ~fmt ~k =
  let m = graph.G.Graph.adj in
  let n = m.Csr.n_rows in
  let a = Dense.random ~seed:2 n k and b = Dense.random ~seed:3 k n in
  let reference, t_csr = time_best (fun () -> Sddmm.run m a b) in
  let run =
    match fmt with
    | `Bsr ->
        let f = Bsr.of_csr m in
        fun () -> Bsr.sddmm f a b
    | `Cbm ->
        (* CBM's sharing is an SpMM property; SDDMM recomputes every entry
           and must cost CSR time — this row pins the fallback *)
        let d = Cbm.of_csr m in
        fun () -> Cbm.sddmm d a b
  in
  let out, t_fmt = time_best run in
  let bitwise =
    match (reference.Csr.values, out.Csr.values) with
    | Some v, Some w ->
        out.Csr.row_ptr = reference.Csr.row_ptr
        && out.Csr.col_idx = reference.Csr.col_idx
        && bits_equal v w
    | _ -> false
  in
  Printf.printf "  %-9s %-4s sddmm k=%d: csr %8.3f ms, %s %8.3f ms (%.2fx)  %s\n"
    family (format_name fmt) k (ms t_csr) (format_name fmt) (ms t_fmt)
    (t_csr /. t_fmt)
    (if bitwise then "[bitwise ok]" else "[MISMATCH]");
  json_add ~bench:"formats"
    [ ("kind", S "sddmm");
      ("graph", S graph.G.Graph.name);
      ("family", S family);
      ("format", S (format_name fmt));
      ("n", I n);
      ("nnz", I (Csr.nnz m));
      ("k", I k);
      ("t_csr_s", F t_csr);
      ("t_format_s", F t_fmt);
      ("speedup", F (t_csr /. t_fmt));
      ("bitwise", B bitwise) ]

let run () =
  section "Formats: BSR tiles and CBM dedup vs CSR (raw adjacency)";
  let n = if !smoke then 2048 else 8192 in
  let families =
    [ ("blocked", G.Generators.blocked ~seed:1 ~n ~blocks_per_row:6 ());
      ( "overlap",
        G.Generators.community_overlap ~seed:1 ~n ~groups:(n / 64) ~degree:16 () );
      ( "skewed",
        G.Generators.rmat ~scale:(if !smoke then 11 else 13) ~edge_factor:8 () )
    ]
  in
  let ks = if !smoke then [ 32 ] else [ 32; 128 ] in
  let threads_list = if !smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  List.iter
    (fun (family, graph) ->
      List.iter
        (fun fmt ->
          List.iter
            (fun k ->
              List.iter
                (fun threads -> spmm_point graph ~family ~fmt ~k ~threads)
                threads_list)
            ks)
        [ `Bsr; `Cbm ])
    families;
  print_newline ();
  let k = 32 in
  sddmm_point (List.assoc "blocked" families) ~family:"blocked" ~fmt:`Bsr ~k;
  sddmm_point (List.assoc "overlap" families) ~family:"overlap" ~fmt:`Cbm ~k
