(* Extensions beyond the paper's evaluation (DESIGN.md §5): multi-head GAT
   and real (executed, not estimated) multi-layer stacks with per-layer
   GRANII decisions, plus deeper SGC/TAGCN hop counts. *)

open Bench_common
open Granii_core
module G = Granii_graph
module Mp = Granii_mp
module Gnn = Granii_gnn

let profile = Granii_hw.Hw_profile.h100

let multi_head_section () =
  print_endline "\nMulti-head GAT (heads concatenated, per-head selection):";
  let graph = G.Datasets.load (G.Datasets.find "CA") in
  let cm = oracle profile in
  let low, comp, _ = compiled Mp.Mp_models.gat ~binned:false in
  Printf.printf "%-6s %14s %16s\n" "heads" "time (ms)" "vs single head";
  List.iter
    (fun heads ->
      let mh =
        Gnn.Multi_head.create ~oracle:cm ~graph ~compiled:comp ~lowered:low
          ~heads ~k_in:64 ~k_out_per_head:32 ()
      in
      let env = env_of graph ~k_in:64 ~k_out:32 in
      let t = Gnn.Multi_head.inference_time ~profile ~graph ~env mh in
      Printf.printf "%-6d %11.3f ms %15.2fx\n" heads (ms t)
        (t
        /. Gnn.Multi_head.inference_time ~profile ~graph ~env
             (Gnn.Multi_head.create ~oracle:cm ~graph ~compiled:comp
                ~lowered:low ~heads:1 ~k_in:64 ~k_out_per_head:32 ())))
    [ 1; 2; 4; 8 ]

let stack_section () =
  print_endline
    "\nReal executed 2-layer stacks (per-layer decisions, Sec. VI-F), host CPU:";
  let graph = G.Generators.rmat ~seed:77 ~scale:9 ~edge_factor:12 () in
  let n = G.Graph.n_nodes graph in
  let cm = oracle profile in
  List.iter
    (fun (model : Mp.Mp_ast.model) ->
      let low, comp, _ = compiled model ~binned:false in
      let stack =
        Gnn.Stack.build ~oracle:cm ~graph ~compiled:comp ~lowered:low
          ~dims:[ 32; 16; 4 ] ()
      in
      let plans = Gnn.Stack.plans stack in
      let rng = Granii_tensor.Prng.create 5 in
      let labels = Array.init n (fun _ -> Granii_tensor.Prng.int rng 4) in
      let features =
        Granii_tensor.Dense.init n 32 (fun i j ->
            Granii_tensor.Prng.normal rng +. if j = labels.(i) then 1.5 else 0.)
      in
      let history =
        Gnn.Stack.train ~epochs:15
          ~optimizer:(Gnn.Optimizer.adam ~lr:0.03 ())
          ~graph ~features ~labels stack
      in
      Printf.printf
        "  %-5s layers: %-14s | %-14s  loss %.3f -> %.3f  acc %.0f%%\n"
        model.Mp.Mp_ast.name
        (List.nth plans 0).Plan.name
        (List.nth plans 1).Plan.name
        history.Gnn.Stack.losses.(0)
        history.Gnn.Stack.losses.(14)
        (100. *. history.Gnn.Stack.train_accuracy))
    [ Mp.Mp_models.gcn; Mp.Mp_models.gat ]

let hops_section () =
  print_endline "\nDeeper hop counts (generalized SGC/TAGCN), offline stage:";
  Printf.printf "%-8s %12s %10s %10s\n" "model" "enumerated" "promoted" "compile s";
  List.iter
    (fun model ->
      let t0 = Sys.time () in
      let low = Mp.Lower.lower model in
      let _, stats =
        Granii.compile
          ~name:model.Mp.Mp_ast.name
          ~degree_leaves:(Mp.Lower.degree_leaves low ~binned:false)
          low.Mp.Lower.ir
      in
      Printf.printf "%-8s %12d %10d %10.2f\n" model.Mp.Mp_ast.name
        stats.Granii.n_enumerated stats.Granii.n_promoted (Sys.time () -. t0))
    [ Mp.Mp_models.sgc_k 1; Mp.Mp_models.sgc_k 2; Mp.Mp_models.sgc_k 3;
      Mp.Mp_models.sgc_k 4; Mp.Mp_models.tagcn_k 2; Mp.Mp_models.tagcn_k 3 ]

let run () =
  section "Extensions: multi-head GAT, executed stacks, deeper hop counts";
  multi_head_section ();
  stack_section ();
  hops_section ()
