(* Calibration: selection-quality regret before/after closing the
   Cost_monitor -> calibration -> A/B-guard loop (DESIGN.md §15) on a
   deliberately mis-anchored hardware profile.

   The base oracle prices the host with roofline constants wrenched out of
   place (sparse compute 20x too optimistic, random gather 30x too
   optimistic, dense compute 20x too pessimistic), so it misranks
   sparse-heavy vs dense-heavy compositions. Feeding the oracle the
   (raw predicted, true) pairs an instrumented run would produce and
   running one calibration pass must (a) be accepted by the A/B guard and
   (b) shrink the selection regret — chosen plan's true cost over the best
   candidate's true cost. A control arm feeds self-consistent pairs
   (measured == predicted): there is nothing to win, and the guard must
   hold the current model. *)

open Bench_common
open Granii_core
module Hw = Granii_hw
module Mp = Granii_mp

let mis_profile =
  let cpu = Hw.Hw_profile.cpu in
  { cpu with
    Hw.Hw_profile.name = "cpu-misanchored";
    sparse_gflops = cpu.Hw.Hw_profile.sparse_gflops *. 20.;
    random_gbps = cpu.Hw.Hw_profile.random_gbps *. 30.;
    dense_gflops = cpu.Hw.Hw_profile.dense_gflops /. 20. }

(* The noise-free truth the regret is scored against. *)
let truth = Cost_oracle.analytic Hw.Hw_profile.cpu

(* A pristine (never-corrected) reader of the mis-anchored model: its
   predictions are the raw half of every observed pair. *)
let raw_mis = Cost_oracle.analytic mis_profile

let iterations = 100

let true_cost ~feats ~env plan =
  Cost_oracle.predict_plan truth feats ~env ~iterations plan

let regret ~oracle ~feats ~env comp =
  let choice = Selector.select ~oracle ~feats ~env ~iterations comp in
  let chosen = true_cost ~feats ~env choice.Selector.candidate.Codegen.plan in
  let best =
    List.fold_left
      (fun acc (c : Codegen.ccand) ->
        Float.min acc (true_cost ~feats ~env c.Codegen.plan))
      infinity comp.Codegen.candidates
  in
  chosen /. best

(* One (raw predicted, true) pair per plan step, over every candidate —
   the per-kernel stream a telemetered engine's cost monitor records. The
   mis-anchoring is a cross-primitive scale error (sparse vs dense), so the
   per-primitive corrections are exactly the right knob. *)
let feed oracle ~feats ~env comp =
  List.iter
    (fun (c : Codegen.ccand) ->
      List.iter
        (fun (s : Plan.step) ->
          let p = Cost_oracle.predict raw_mis feats ~env s.Plan.prim in
          let m = Cost_oracle.predict truth feats ~env s.Plan.prim in
          if p > 0. && m > 0. then
            Cost_oracle.observe oracle
              ~prim:(Primitive.name s.Plan.prim)
              ~predicted:p ~measured:m)
        c.Codegen.plan.Plan.steps)
    comp.Codegen.candidates

let run () =
  section
    "Calibration: selection regret on a mis-anchored profile, before/after \
     one accepted pass";
  let models = [ Mp.Mp_models.gcn; Mp.Mp_models.gat; Mp.Mp_models.gin ] in
  let pairs = [ (8, 8); (32, 32); (256, 256); (512, 64); (64, 512) ] in
  let settings =
    List.concat_map
      (fun (info, graph) ->
        List.concat_map
          (fun m ->
            List.map (fun (k_in, k_out) -> (info, graph, m, k_in, k_out)) pairs)
          models)
      (datasets ())
  in
  let oracle =
    Cost_oracle.of_model ~calibration:Cost_oracle.Affine ~fit_every:1_000_000
      ~min_pairs:4
      (Cost_model.analytic mis_profile)
  in
  let before =
    List.map
      (fun (_, graph, m, k_in, k_out) ->
        let _, comp, _ = compiled m ~binned:false in
        let env = env_of graph ~k_in ~k_out in
        let r = regret ~oracle ~feats:(feats graph) ~env comp in
        feed oracle ~feats:(feats graph) ~env comp;
        r)
      settings
  in
  let outcome =
    match Cost_oracle.calibrate oracle with
    | Some o -> o
    | None -> failwith "calibration pass found no primitive to fit"
  in
  Printf.printf
    "pass: fitted %d primitive(s), holdout %d pairs, inversions %d -> %d, %s \
     (oracle now %s)\n"
    (List.length outcome.Cost_oracle.fitted_prims)
    outcome.Cost_oracle.holdout_pairs outcome.Cost_oracle.current_inversions
    outcome.Cost_oracle.candidate_inversions
    (if outcome.Cost_oracle.accepted then "ACCEPTED" else "REJECTED")
    (Cost_oracle.name oracle);
  hr ();
  Printf.printf "%-6s %-5s %-12s | %14s %14s\n" "G" "model" "(kin,kout)"
    "regret before" "regret after";
  hr ();
  let after =
    List.map2
      (fun (info, graph, m, k_in, k_out) r_before ->
        let _, comp, _ = compiled m ~binned:false in
        let env = env_of graph ~k_in ~k_out in
        let r_after = regret ~oracle ~feats:(feats graph) ~env comp in
        Printf.printf "%-6s %-5s (%4d,%4d)  | %14.3f %14.3f\n"
          info.Granii_graph.Datasets.key m.Mp.Mp_ast.name k_in k_out r_before
          r_after;
        json_add ~bench:"calibration"
          [ ("kind", S "regret");
            ("dataset", S info.Granii_graph.Datasets.key);
            ("model", S m.Mp.Mp_ast.name);
            ("k_in", I k_in);
            ("k_out", I k_out);
            ("regret_before", F r_before);
            ("regret_after", F r_after) ];
        r_after)
      settings before
  in
  hr ();
  Printf.printf "geomean regret: %.3f -> %.3f  (1.0 = oracle-optimal)\n"
    (geomean before) (geomean after);
  json_add ~bench:"calibration"
    [ ("kind", S "pass");
      ("accepted", B outcome.Cost_oracle.accepted);
      ("fitted_prims", I (List.length outcome.Cost_oracle.fitted_prims));
      ("holdout_pairs", I outcome.Cost_oracle.holdout_pairs);
      ("inversions_before", I outcome.Cost_oracle.current_inversions);
      ("inversions_after", I outcome.Cost_oracle.candidate_inversions);
      ("version", I (Cost_oracle.version oracle));
      ("geomean_regret_before", F (geomean before));
      ("geomean_regret_after", F (geomean after)) ];
  (* control arm: a self-consistent feed gives the candidate nothing to
     win, so the A/B guard must hold the current model *)
  let control =
    Cost_oracle.of_model ~calibration:Cost_oracle.Affine ~fit_every:1_000_000
      ~min_pairs:4
      (Cost_model.analytic mis_profile)
  in
  List.iter
    (fun (_, graph, m, k_in, k_out) ->
      let _, comp, _ = compiled m ~binned:false in
      let env = env_of graph ~k_in ~k_out in
      List.iter
        (fun (c : Codegen.ccand) ->
          List.iter
            (fun (s : Plan.step) ->
              let p =
                Cost_oracle.predict raw_mis (feats graph) ~env s.Plan.prim
              in
              if p > 0. then
                Cost_oracle.observe control
                  ~prim:(Primitive.name s.Plan.prim)
                  ~predicted:p ~measured:p)
            c.Codegen.plan.Plan.steps)
        comp.Codegen.candidates)
    settings;
  let guard_held, guard_version =
    match Cost_oracle.calibrate control with
    | Some o -> (not o.Cost_oracle.accepted, o.Cost_oracle.version_after)
    | None -> (false, -1)
  in
  Printf.printf "guard control (self-consistent feed): %s\n"
    (if guard_held then "held (candidate rejected)"
     else "FAILED - candidate accepted with nothing to win");
  json_add ~bench:"calibration"
    [ ("kind", S "guard");
      ("held", B guard_held);
      ("version", I guard_version) ];
  hr ();
  print_endline
    "Expected shape: the pass is accepted, pooled inversions drop, the\n\
     geomean regret falls toward 1.0, and the control arm's candidate is\n\
     rejected."
