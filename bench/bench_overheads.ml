(* Section VI-C1 "Overheads": GRANII's one-time runtime costs — graph
   feature extraction (measured on the host) and composition selection —
   compared against a single GNN iteration, plus the effect of offline
   pruning on selection work (ablation from DESIGN.md). *)

open Bench_common
open Granii_core
module Mp = Granii_mp

let run () =
  section "Overheads: feature extraction + composition selection (one-time)";
  Printf.printf "%-4s | %12s %12s | %16s | %14s\n" "G" "featurize" "selection"
    "vs 1 iter (A100)" "cands (full)";
  hr ();
  let model = Mp.Mp_models.gcn in
  let low, comp, _ = compiled model ~binned:false in
  let forest = Enumerate.forest low.Mp.Lower.ir in
  let all_candidates =
    Codegen.compile
      ~degree_leaves:(Mp.Lower.degree_leaves low ~binned:false)
      ~name:"GCN_noprune"
      { Prune.promoted =
          List.map (fun t -> { Prune.tree = t; scenarios = Dim.all_scenarios }) forest;
        n_enumerated = List.length forest;
        n_pruned = 0 }
  in
  let profile = Granii_hw.Hw_profile.a100 in
  let cm = oracle profile in
  List.iter
    (fun (info, graph) ->
      (* measure real host overheads *)
      let f, t_feat = Granii_hw.Timer.measure (fun () -> Featurizer.extract graph) in
      let k_in = 256 and k_out = 256 in
      let env = env_of graph ~k_in ~k_out in
      let choice = Selector.select ~oracle:cm ~feats:f ~env ~iterations:100 comp in
      let t_sel = choice.Selector.selection_time in
      let choice_full =
        Selector.select ~oracle:cm ~feats:f ~env ~iterations:100 all_candidates
      in
      let iter_t =
        Granii_gnn.Trainer.inference_time ~profile ~graph ~env ~iterations:1
          choice.Selector.candidate.Codegen.plan
      in
      Printf.printf "%-4s | %9.3f ms %9.3f ms | %13.2f it | %8.3f ms (%d)\n"
        info.Granii_graph.Datasets.key (ms t_feat) (ms t_sel)
        ((t_feat +. t_sel) /. iter_t)
        (ms choice_full.Selector.selection_time)
        choice_full.Selector.considered)
    (datasets ());
  hr ();
  Printf.printf
    "Both overheads are incurred once per input (paper: <= 7 ms GPU, 0.42 s CPU;\n\
     <= 4.4x of one GPU iteration). 'cands (full)' = selection without offline\n\
     pruning: the pruning ablation -- more candidates inspected at runtime.\n"
