(* Table VI: GRANII's learned selection vs the optimal choice and
   single-factor oracle heuristics (Sec. VI-G), plus two ablations of the
   cost model (analytic roofline, FLOP counting).

   Each oracle fixes one composition per value of its factor, chosen by
   majority vote of the per-setting winners, and applies it everywhere —
   exactly the paper's construction. Speedups are over the host system's
   default composition, geomean across all settings. *)

open Bench_common
open Granii_core
module Mp = Granii_mp
module Sys_ = Granii_systems

type setting = {
  s_graph : Granii_graph.Graph.t;
  s_key : string;
  s_pair : int * int;
  s_profile : Granii_hw.Hw_profile.t;
  s_sys : Sys_.System.t;
}

let settings_for model =
  List.concat_map
    (fun (info, graph) ->
      List.concat_map
        (fun pair ->
          List.concat_map
            (fun profile ->
              List.map
                (fun sys ->
                  { s_graph = graph;
                    s_key = info.Granii_graph.Datasets.key;
                    s_pair = pair;
                    s_profile = profile;
                    s_sys = sys })
                systems)
            profiles)
        (pairs_for model))
    (datasets ())

(* candidate times and default time for one setting *)
let evaluate model s =
  let _, comp, _ = compiled model ~binned:s.s_sys.Sys_.System.binned_degrees in
  let k_in, k_out = s.s_pair in
  let env = env_of s.s_graph ~k_in ~k_out in
  let times =
    List.map
      (fun (c : Codegen.ccand) ->
        ( Assoc_tree.tree_key c.Codegen.tree,
          plan_time ~mode:Inference ~profile:s.s_profile ~graph:s.s_graph ~env
            c.Codegen.plan
          +. Granii.simulated_overhead ~profile:s.s_profile ~env ))
      comp.Codegen.candidates
  in
  let t_default =
    baseline_time ~mode:Inference ~profile:s.s_profile ~sys:s.s_sys ~model
      ~graph:s.s_graph ~k_in ~k_out ()
  in
  (times, t_default)

let argmin_assoc xs =
  fst (List.fold_left (fun (bk, bv) (k, v) -> if v < bv then (k, v) else (bk, bv))
         (List.hd xs) (List.tl xs))

let majority keys =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun k -> Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    keys;
  fst
    (Hashtbl.fold
       (fun k c (bk, bc) ->
         if c > bc || (c = bc && k < bk) then (k, c) else (bk, bc))
       tbl ("", 0))

let run () =
  section "Table VI: GRANII vs oracle heuristics and cost-model ablations";
  Printf.printf "%-6s | %8s %8s | %8s %8s %8s %8s | %8s %8s\n" "GNN" "Optimal"
    "GRANII" "Config." "HW" "Graph" "Sys." "Analytic" "Flops";
  hr ();
  List.iter
    (fun (model : Mp.Mp_ast.model) ->
      let settings = settings_for model in
      let evals = List.map (fun s -> (s, evaluate model s)) settings in
      let per_setting_speedup pick =
        geomean
          (List.map
             (fun (s, (times, t_default)) ->
               let key = pick s times in
               t_default /. List.assoc key times)
             evals)
      in
      let optimal = per_setting_speedup (fun _ times -> argmin_assoc times) in
      let granii_with oracle_of =
        per_setting_speedup (fun s _ ->
            let _, comp, _ =
              compiled model ~binned:s.s_sys.Sys_.System.binned_degrees
            in
            let k_in, k_out = s.s_pair in
            let env = env_of s.s_graph ~k_in ~k_out in
            let choice =
              Selector.select ~oracle:(oracle_of s) ~feats:(feats s.s_graph) ~env
                ~iterations:100 comp
            in
            Assoc_tree.tree_key choice.Selector.candidate.Codegen.tree)
      in
      let granii = granii_with (fun s -> oracle s.s_profile) in
      let analytic = granii_with (fun s -> Cost_oracle.analytic s.s_profile) in
      let flops = granii_with (fun _ -> Cost_oracle.flops_only ()) in
      let oracle factor =
        (* majority winner per factor value *)
        let winners = Hashtbl.create 8 in
        List.iter
          (fun (s, (times, _)) ->
            let f = factor s in
            let cur = Option.value ~default:[] (Hashtbl.find_opt winners f) in
            Hashtbl.replace winners f (argmin_assoc times :: cur))
          evals;
        let fixed = Hashtbl.create 8 in
        Hashtbl.iter (fun f ws -> Hashtbl.replace fixed f (majority ws)) winners;
        per_setting_speedup (fun s times ->
            let key = Hashtbl.find fixed (factor s) in
            if List.mem_assoc key times then key else argmin_assoc times)
      in
      let config_o =
        oracle (fun s -> Printf.sprintf "%d/%d" (fst s.s_pair) (snd s.s_pair))
      in
      let hw_o = oracle (fun s -> s.s_profile.Granii_hw.Hw_profile.name) in
      let graph_o = oracle (fun s -> s.s_key) in
      let sys_o = oracle (fun s -> s.s_sys.Sys_.System.sys_name) in
      Printf.printf "%-6s | %7.2fx %7.2fx | %7.2fx %7.2fx %7.2fx %7.2fx | %7.2fx %7.2fx\n"
        model.Mp.Mp_ast.name optimal granii config_o hw_o graph_o sys_o analytic
        flops)
    Mp.Mp_models.paper_five;
  hr ();
  print_endline
    "Expected shape (paper): GRANII within a few percent of Optimal and above\n\
     every single-factor oracle; Config. is the strongest oracle."
