(* Quickstart: the paper's Fig. 4 usage — hand GRANII a GNN model and an
   input, get back an accelerated executable.

     dune exec examples/quickstart.exe *)

open Granii_core
module G = Granii_graph
module Mp = Granii_mp
module Gnn = Granii_gnn

let () =
  (* 1. A model written against the message-passing API, and an input. *)
  let model = Mp.Mp_models.gcn in
  let graph = G.Generators.rmat ~seed:1 ~scale:10 ~edge_factor:24 () in
  let n = G.Graph.n_nodes graph in
  let k_in = 64 and k_out = 16 in
  Printf.printf "model: %s   graph: %s (n=%d, nnz=%d)\n" model.Mp.Mp_ast.name
    graph.G.Graph.name n (G.Graph.n_edges graph);

  (* 2. Offline: lower to the matrix IR, enumerate re-associations, prune. *)
  let low = Mp.Lower.lower model in
  let compiled, stats =
    Granii.compile ~name:model.Mp.Mp_ast.name
      ~degree_leaves:(Mp.Lower.degree_leaves low ~binned:false)
      low.Mp.Lower.ir
  in
  Printf.printf
    "offline: %d associations enumerated, %d pruned, %d promoted candidates\n"
    stats.Granii.n_enumerated stats.Granii.n_pruned stats.Granii.n_promoted;
  Format.printf "%a@." Codegen.pp compiled;

  (* 3. Train the per-primitive cost models once per target machine
     (here: a quick profile of the A100 model). *)
  let profile = Granii_hw.Hw_profile.a100 in
  let oracle =
    Cost_oracle.of_model (Cost_model.train ~profile (Profiling.collect ~profile ()))
  in

  (* 4. Online: inspect the input, pick the cheapest composition, run it. *)
  let decision = Granii.optimize ~oracle ~graph ~k_in ~k_out compiled in
  Printf.printf "selected %s (predicted %.3f ms for 100 iterations, %s)\n"
    decision.Granii.choice.Selector.candidate.Codegen.plan.Plan.name
    (1000. *. decision.Granii.choice.Selector.predicted_cost)
    (if decision.Granii.choice.Selector.used_cost_models then
       "via learned cost models"
     else "decided by embedding sizes alone");
  Printf.printf "one-time overhead: %.2f ms (featurize + select)\n"
    (1000. *. decision.Granii.overhead);

  let params = Gnn.Layer.init_params ~env:(Dim.{ n; nnz = G.Graph.n_edges graph + n; k_in; k_out }) low in
  let h = Granii_tensor.Dense.random ~seed:2 n k_in in
  let report =
    Granii.execute_with ~engine:(Engine.default ())
      ~timing:(Executor.Simulate profile) ~graph
      ~bindings:(Gnn.Layer.bindings ~graph ~h params)
      decision
  in
  let rows, cols = Executor.shape_of report.Executor.output in
  Printf.printf
    "executed: output %dx%d, simulated setup %.3f ms + %.3f ms/iteration\n" rows
    cols
    (1000. *. report.Executor.setup_time)
    (1000. *. report.Executor.iteration_time)
