(* Financial-fraud detection (one of the GNN application domains the paper's
   introduction motivates): a GAT over a heavy-tailed transaction graph,
   trained end-to-end with GRANII picking the attention composition
   (reuse vs recompute, Sec. III-B) for the input.

     dune exec examples/fraud_detection.exe *)

open Granii_core
module Dense = Granii_tensor.Dense
module G = Granii_graph
module Mp = Granii_mp
module Gnn = Granii_gnn

(* Synthetic "accounts" graph: preferential attachment (a few hub accounts
   transacting with everyone) with planted fraudulent communities whose
   features are shifted. *)
let make_data ~seed ~n ~feat_dim =
  let graph = G.Generators.barabasi_albert ~seed ~n ~m:4 () in
  let rng = Granii_tensor.Prng.create (seed + 1) in
  let labels = Array.init n (fun _ -> if Granii_tensor.Prng.bool rng 0.25 then 1 else 0) in
  let features =
    Dense.init n feat_dim (fun i _ ->
        let base = Granii_tensor.Prng.normal rng in
        if labels.(i) = 1 then base +. 1.2 else base -. 0.3)
  in
  (graph, features, labels)

let () =
  let n = 400 and feat_dim = 16 and classes = 2 in
  let graph, features, labels = make_data ~seed:7 ~n ~feat_dim in
  Printf.printf "transaction graph: n=%d nnz=%d max_degree=%d (heavy-tailed)\n" n
    (G.Graph.n_edges graph) (G.Graph.max_degree graph);

  let model = Mp.Mp_models.gat in
  let low = Mp.Lower.lower model in
  let compiled, _ =
    Granii.compile ~name:"GAT"
      ~degree_leaves:(Mp.Lower.degree_leaves low ~binned:false)
      low.Mp.Lower.ir
  in
  let profile = Granii_hw.Hw_profile.h100 in
  let oracle =
    Cost_oracle.of_model (Cost_model.train ~profile (Profiling.collect ~profile ()))
  in
  let decision =
    Granii.optimize ~oracle ~graph ~k_in:feat_dim ~k_out:classes compiled
  in
  let plan = decision.Granii.choice.Selector.candidate.Codegen.plan in
  let gemms =
    List.length
      (List.filter (function Primitive.Gemm _ -> true | _ -> false)
         (Plan.primitives plan))
  in
  Printf.printf "GRANII picked the %s composition (%s)\n"
    (if gemms = 1 then "reuse-based" else "recomputation-based")
    plan.Plan.name;

  (* train/test split and full-graph training *)
  let rng = Granii_tensor.Prng.create 99 in
  let train_mask = Array.init n (fun _ -> Granii_tensor.Prng.bool rng 0.6) in
  let test_mask = Array.map not train_mask in
  let env = { Dim.n; nnz = G.Graph.n_edges graph + n; k_in = feat_dim; k_out = classes } in
  let params = Gnn.Layer.init_params ~seed:3 ~env low in
  let history =
    Gnn.Trainer.train ~mask:train_mask ~epochs:60
      ~optimizer:(Gnn.Optimizer.adam ~lr:0.02 ())
      ~plan ~graph ~features ~labels ~params ()
  in
  Printf.printf "training loss: %.4f -> %.4f\n" history.Gnn.Trainer.losses.(0)
    history.Gnn.Trainer.losses.(59);

  (* evaluate on held-out accounts *)
  let bindings = Gnn.Layer.bindings ~graph ~h:features history.Gnn.Trainer.final_params in
  let out =
    Executor.exec ~engine:(Engine.default ()) ~timing:Executor.Measure ~graph
      ~bindings plan
  in
  (match out.Executor.output with
  | Executor.Vdense logits ->
      Printf.printf "held-out fraud-detection accuracy: %.1f%%\n"
        (100. *. Gnn.Loss.accuracy ~mask:test_mask ~logits ~labels ())
  | _ -> assert false)
