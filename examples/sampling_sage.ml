(* GraphSAGE with neighborhood sampling (paper, Sec. VI-E): GRANII's
   decision is made once on the full graph and reused across sampled
   mini-batches without re-running the cost models.

     dune exec examples/sampling_sage.exe *)

open Granii_core
module Dense = Granii_tensor.Dense
module G = Granii_graph
module Mp = Granii_mp
module Gnn = Granii_gnn

let () =
  let model = Mp.Mp_models.sage in
  let full = G.Generators.rmat ~seed:11 ~scale:11 ~edge_factor:48 () in
  let n = G.Graph.n_nodes full in
  let k_in = 32 and classes = 5 in
  Printf.printf "full graph: n=%d nnz=%d avg_degree=%.1f\n" n
    (G.Graph.n_edges full) (G.Graph.avg_degree full);

  let low = Mp.Lower.lower model in
  let compiled, _ =
    Granii.compile ~name:"SAGE"
      ~degree_leaves:(Mp.Lower.degree_leaves low ~binned:false)
      low.Mp.Lower.ir
  in
  let profile = Granii_hw.Hw_profile.h100 in
  let oracle =
    Cost_oracle.of_model (Cost_model.train ~profile (Profiling.collect ~profile ()))
  in

  (* One decision on the full graph... *)
  let decision = Granii.optimize ~oracle ~graph:full ~k_in ~k_out:classes compiled in
  let plan = decision.Granii.choice.Selector.candidate.Codegen.plan in
  Printf.printf "decision on the full graph: %s (overhead %.2f ms, paid once)\n"
    plan.Plan.name
    (1000. *. decision.Granii.overhead);

  (* ...reused across sampled epochs. Train with a fresh neighborhood sample
     per epoch block, GraphSAGE-style. *)
  let rng = Granii_tensor.Prng.create 3 in
  let labels = Array.init n (fun _ -> Granii_tensor.Prng.int rng classes) in
  let features =
    Dense.init n k_in (fun i j ->
        Granii_tensor.Prng.normal rng
        +. if j = labels.(i) then 1.5 else 0.)
  in
  let env = { Dim.n; nnz = G.Graph.n_edges full + n; k_in; k_out = classes } in
  let params = ref (Gnn.Layer.init_params ~seed:5 ~env low) in
  let optimizer = Gnn.Optimizer.adam ~lr:0.03 () in
  List.iteri
    (fun round fanout ->
      let sampled = G.Sampling.neighborhood ~seed:round ~fanout full in
      let history =
        Gnn.Trainer.train ~epochs:10 ~optimizer ~plan ~graph:sampled ~features
          ~labels ~params:!params ()
      in
      params := history.Gnn.Trainer.final_params;
      Printf.printf
        "round %d (fanout %2d, sampled nnz %6d): loss %.4f -> %.4f, acc %.1f%%\n"
        round fanout (G.Graph.n_edges sampled) history.Gnn.Trainer.losses.(0)
        history.Gnn.Trainer.losses.(9)
        (100. *. history.Gnn.Trainer.train_accuracy))
    [ 10; 10; 5; 5 ];

  (* Sanity: the full-graph decision is also the best for the samples. *)
  let sampled = G.Sampling.neighborhood ~seed:99 ~fanout:10 full in
  let ranked =
    Selector.rank ~oracle ~feats:(Featurizer.extract sampled)
      ~env:
        { Dim.n;
          nnz = G.Graph.n_edges sampled + n;
          k_in;
          k_out = classes }
      ~iterations:100 compiled
  in
  let best, _ = List.hd ranked in
  Printf.printf "re-selection on a sample picks: %s (%s)\n"
    best.Codegen.plan.Plan.name
    (if String.equal best.Codegen.plan.Plan.name plan.Plan.name then
       "same as full graph - one call suffices, Sec. VI-E"
     else "different - worth re-inspecting")
