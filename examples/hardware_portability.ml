(* Hardware portability (paper, Sec. VI-C1 "Difference Across Hardware"):
   the same model, graph, and embedding sizes can prefer different primitive
   compositions on different machines, because dense throughput improves
   faster than irregular-sparse throughput from CPU to A100 to H100. A
   hand-tuned heuristic would need re-tuning per machine; GRANII just
   retrains its cost models from that machine's profiling data.

     dune exec examples/hardware_portability.exe *)

open Granii_core
module G = Granii_graph
module Mp = Granii_mp

let () =
  let model = Mp.Mp_models.gcn in
  let low = Mp.Lower.lower model in
  let compiled, _ =
    Granii.compile ~name:"GCN"
      ~degree_leaves:(Mp.Lower.degree_leaves low ~binned:false)
      low.Mp.Lower.ir
  in
  let graph = G.Datasets.load (G.Datasets.find "RD") in
  let k_in = 1024 and k_out = 1024 in
  Printf.printf
    "GCN on %s (n=%d, nnz=%d), embeddings %d -> %d, one decision per machine:\n\n"
    graph.G.Graph.name (G.Graph.n_nodes graph) (G.Graph.n_edges graph) k_in k_out;
  Printf.printf "%-6s %-46s %12s\n" "hw" "top-2 candidates by predicted cost" "gap";
  List.iter
    (fun profile ->
      (* one-time initialization per machine: profile + train (Sec. V) *)
      let oracle =
    Cost_oracle.of_model (Cost_model.train ~profile (Profiling.collect ~profile ()))
  in
      let decision = Granii.optimize ~oracle ~graph ~k_in ~k_out compiled in
      ignore decision;
      let ranked =
        Selector.rank ~oracle
          ~feats:(Featurizer.extract graph)
          ~env:
            { Dim.n = G.Graph.n_nodes graph;
              nnz = G.Graph.n_edges graph + G.Graph.n_nodes graph;
              k_in;
              k_out }
          ~iterations:100 compiled
      in
      match ranked with
      | (c1, t1) :: (c2, t2) :: _ ->
          Printf.printf "%-6s %s (%.2f ms) over %s (%.2f ms) %10.1f%%\n"
            profile.Granii_hw.Hw_profile.name c1.Codegen.plan.Plan.name
            (1000. *. t1) c2.Codegen.plan.Plan.name (1000. *. t2)
            (100. *. ((t2 /. t1) -. 1.))
      | _ -> assert false)
    Granii_hw.Hw_profile.all;
  Printf.printf
    "\nThe ranking (and how close the runner-up sits) shifts with the machine:\n\
     dense-heavy candidates become relatively cheaper on the GPU profiles,\n\
     exactly the effect Fig. 2 documents. Nothing in GRANII changed between\n\
     rows - only the profiling data its cost models were trained on.\n"
