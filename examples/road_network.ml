(* Travel-time regression-style node classification on a road network —
   the sparse end of the paper's graph spectrum, where GCN's
   precomputation-based composition (Eq. 3) should win. This example shows
   GRANII's decision flipping between a sparse road graph and a dense
   social graph on the same hardware.

     dune exec examples/road_network.exe *)

open Granii_core
module G = Granii_graph
module Mp = Granii_mp

let describe name compiled oracle graph ~iterations ~k_in ~k_out =
  let decision =
    Granii.optimize ~oracle ~graph ~k_in ~k_out ~iterations compiled
  in
  let plan = decision.Granii.choice.Selector.candidate.Codegen.plan in
  let prims = Plan.primitives plan in
  let style =
    if List.mem Primitive.Sddmm_rank1 prims then "precompute (SDDMM, Eq. 3)"
    else if
      List.exists (function Primitive.Diag_scale _ -> true | _ -> false) prims
    then "precompute (diagonal scaling)"
    else "dynamic normalization (row-broadcasts, Eq. 2)"
  in
  Printf.printf "  %-28s nnz/node=%5.1f %4d iter(s) -> %s\n" name
    (G.Graph.avg_degree graph) iterations style;
  let ranked =
    Selector.rank ~oracle ~feats:(Featurizer.extract graph)
      ~env:
        { Dim.n = G.Graph.n_nodes graph;
          nnz = G.Graph.n_edges graph + G.Graph.n_nodes graph;
          k_in;
          k_out }
      ~iterations compiled
  in
  List.iteri
    (fun i (c, cost) ->
      if i < 3 then
        Printf.printf "      #%d %-12s predicted %8.3f ms\n" (i + 1)
          c.Codegen.plan.Plan.name (1000. *. cost))
    ranked

let () =
  let model = Mp.Mp_models.gcn in
  let low = Mp.Lower.lower model in
  let compiled, _ =
    Granii.compile ~name:"GCN"
      ~degree_leaves:(Mp.Lower.degree_leaves low ~binned:false)
      low.Mp.Lower.ir
  in
  let profile = Granii_hw.Hw_profile.a100 in
  let oracle =
    Cost_oracle.of_model (Cost_model.train ~profile (Profiling.collect ~profile ()))
  in
  let road = G.Generators.grid2d ~seed:4 ~rows:96 ~cols:96 () in
  let social = G.Generators.rmat ~seed:5 ~scale:12 ~edge_factor:96 () in
  Printf.printf "GCN composition choice per input (A100 profile, 64 -> 64):\n";
  describe "road network (grid)" compiled oracle road ~iterations:100 ~k_in:64
    ~k_out:64;
  describe "social network (power law)" compiled oracle social ~iterations:100
    ~k_in:64 ~k_out:64;
  describe "social, single inference" compiled oracle social ~iterations:1
    ~k_in:64 ~k_out:64;
  Printf.printf
    "\nSame model, same machine - the input graph and the execution horizon\n\
     move the predicted costs and the runner-up ordering: the precompute's\n\
     margin is wide on the sparse road graph, narrows on the dense graph,\n\
     and nearly vanishes for a single inference where its one-time SDDMM\n\
     cannot amortize (Sec. III-A).\n"
