(* Perf-regression gate over BENCH_*.json artifacts (used by CI).

   Every artifact the bench harness writes is a flat JSON array of rows:
   {"bench": "...", <string/bool identity fields>, <numeric metric fields>}.
   The gate compares an artifact against its committed baseline
   (bench/baselines/<same name>): rows are grouped by their identity (the
   bench tag plus every string- and bool-valued field), numeric fields are
   aggregated per group (arithmetic mean) and each aggregate is compared
   within a per-metric tolerance band. The direction of "worse" is derived
   from the field name — times, latencies, errors, misses, regret and
   breaches regress upward; throughputs, speedups, hit counts regress
   downward; anything unclassified is informational only.

     bench_gate [--tolerance F] [--floor F] [--baselines DIR]
                [--update] [--perturb OUT] FILE.json ...

   --update rewrites each baseline from the current artifact instead of
   comparing. --perturb OUT degrades the first FILE (doubling every
   upward-regressing metric) and writes it to OUT — CI uses it as the
   negative test proving the gate actually fails on a regression. Exits 1
   on any regression, 2 on usage/IO errors. *)

module Json = Granii_obs.Obs.Json

let tolerance = ref 0.35
let floor_ = ref 1e-6
let baselines_dir = ref "bench/baselines"
let update = ref false
let perturb_out = ref None

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      output_string oc s)

(* ---- direction heuristics ---- *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let higher_is_worse =
  [ "_s"; "_ms"; "time"; "latency"; "overhead"; "err"; "regret"; "retries";
    "dropped"; "breach"; "miss"; "stall"; "inversions"; "words"; "bytes";
    "rss"; "p50"; "p95"; "p99"; "wall"; "evictions"; "rejected" ]

let lower_is_worse =
  [ "throughput"; "speedup"; "hit"; "gflops"; "gbps"; "accepted"; "completed" ]

type direction = Up_bad | Down_bad | Neutral

(* single-sample extremes of a distribution (one outlier moves them by
   hundreds of percent on a busy host): informational, never gated *)
let extreme =
  [ "max_s"; "min_s"; "max_ms"; "min_ms"; "worst_s"; "best_s" ]

let direction field =
  let f = String.lowercase_ascii field in
  if List.exists (fun sub -> Filename.check_suffix f sub || f = sub) extreme
  then Neutral
  else if List.exists (fun sub -> contains ~sub f) higher_is_worse then Up_bad
  else if List.exists (fun sub -> contains ~sub f) lower_is_worse then Down_bad
  else Neutral

(* ---- row grouping ---- *)

type group = {
  mutable nums : (string * float list) list;  (* metric -> samples *)
  mutable bools : (string * bool list) list;
}

let rows_of path =
  match Json.parse (read_file path) with
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Ok (Json.List rows) ->
      let ok =
        List.for_all (function Json.Obj _ -> true | _ -> false) rows
      in
      if ok then
        Ok (List.map (function Json.Obj f -> f | _ -> assert false) rows)
      else Error (path ^ ": array elements must all be objects")
  | Ok _ -> Error (path ^ ": expected a top-level array")

let identity fields =
  fields
  |> List.filter_map (fun (k, v) ->
         match v with
         | Json.Str s -> Some (k ^ "=" ^ s)
         | Json.Bool _ | Json.Num _ | _ -> None)
  |> List.sort compare |> String.concat "|"

let group_rows rows =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun fields ->
      let id = identity fields in
      let g =
        match Hashtbl.find_opt tbl id with
        | Some g -> g
        | None ->
            let g = { nums = []; bools = [] } in
            Hashtbl.add tbl id g;
            g
      in
      List.iter
        (fun (k, v) ->
          match v with
          | Json.Num x when Float.is_finite x ->
              let prev =
                match List.assoc_opt k g.nums with Some l -> l | None -> []
              in
              g.nums <- (k, x :: prev) :: List.remove_assoc k g.nums
          | Json.Bool b ->
              let prev =
                match List.assoc_opt k g.bools with Some l -> l | None -> []
              in
              g.bools <- (k, b :: prev) :: List.remove_assoc k g.bools
          | _ -> ())
        fields)
    rows;
  tbl

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

(* ---- comparison ---- *)

let compare_artifact ~baseline ~candidate =
  let base = group_rows baseline and cand = group_rows candidate in
  let regressions = ref [] and checked = ref 0 and missing = ref 0 in
  Hashtbl.iter
    (fun id (bg : group) ->
      match Hashtbl.find_opt cand id with
      | None -> incr missing
      | Some cg ->
          List.iter
            (fun (field, bxs) ->
              match List.assoc_opt field cg.nums with
              | None -> incr missing
              | Some cxs -> (
                  let b = mean bxs and c = mean cxs in
                  (* fractions and rates live near zero, where a relative
                     band is all noise: compare them in absolute points *)
                  let fractional =
                    Filename.check_suffix field "_frac"
                    || Filename.check_suffix field "_rate"
                  in
                  let rel =
                    if fractional then c -. b
                    else (c -. b) /. Float.max (Float.abs b) !floor_
                  in
                  match direction field with
                  | Neutral -> ()
                  | Up_bad ->
                      incr checked;
                      if rel > !tolerance then
                        regressions :=
                          (id, field, b, c, rel) :: !regressions
                  | Down_bad ->
                      incr checked;
                      if rel < -. !tolerance then
                        regressions :=
                          (id, field, b, c, rel) :: !regressions))
            bg.nums;
          List.iter
            (fun (field, bbs) ->
              match List.assoc_opt field cg.bools with
              | None -> incr missing
              | Some cbs ->
                  incr checked;
                  let falses l =
                    List.length (List.filter (fun b -> not b) l)
                  in
                  if falses cbs > falses bbs then
                    regressions :=
                      ( id, field,
                        float_of_int (falses bbs),
                        float_of_int (falses cbs), infinity )
                    :: !regressions)
            bg.bools)
    base;
  (!regressions, !checked, !missing)

(* ---- perturbation (the CI negative test) ---- *)

let perturb rows =
  let degrade fields =
    List.map
      (fun (k, v) ->
        match v with
        | Json.Num x when direction k = Up_bad -> (k, Json.Num (x *. 2.))
        | Json.Num x when direction k = Down_bad -> (k, Json.Num (x /. 2.))
        | _ -> (k, v))
      fields
  in
  List.map degrade rows

let render rows =
  let field (k, v) =
    let value =
      match v with
      | Json.Num x ->
          if Float.is_integer x && Float.abs x < 1e15 then
            Printf.sprintf "%.0f" x
          else Printf.sprintf "%.9g" x
      | Json.Str s -> Printf.sprintf "%S" s
      | Json.Bool b -> string_of_bool b
      | Json.Null -> "null"
      | _ -> "null"
    in
    Printf.sprintf "\"%s\": %s" k value
  in
  "[\n"
  ^ String.concat ",\n"
      (List.map
         (fun fields ->
           "  {" ^ String.concat ", " (List.map field fields) ^ "}")
         rows)
  ^ "\n]\n"

(* ---- driver ---- *)

let () =
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: v :: rest -> (
        match float_of_string_opt v with
        | Some f when f > 0. ->
            tolerance := f;
            parse rest
        | _ ->
            prerr_endline "--tolerance expects a positive float";
            exit 2)
    | "--floor" :: v :: rest -> (
        match float_of_string_opt v with
        | Some f when f > 0. ->
            floor_ := f;
            parse rest
        | _ ->
            prerr_endline "--floor expects a positive float";
            exit 2)
    | "--baselines" :: dir :: rest ->
        baselines_dir := dir;
        parse rest
    | "--update" :: rest ->
        update := true;
        parse rest
    | "--perturb" :: out :: rest ->
        perturb_out := Some out;
        parse rest
    | f :: rest ->
        files := f :: !files;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let files = List.rev !files in
  if files = [] then begin
    prerr_endline
      "usage: bench_gate [--tolerance F] [--floor F] [--baselines DIR] \
       [--update] [--perturb OUT] FILE.json ...";
    exit 2
  end;
  match !perturb_out with
  | Some out -> (
      match rows_of (List.hd files) with
      | Error msg ->
          prerr_endline msg;
          exit 2
      | Ok rows ->
          write_file out (render (perturb rows));
          Printf.printf "perturbed %s -> %s (every regressing metric degraded \
                         2x)\n"
            (List.hd files) out)
  | None ->
      let failed = ref false in
      List.iter
        (fun file ->
          let bpath = Filename.concat !baselines_dir (Filename.basename file) in
          if !update then begin
            (match rows_of file with
            | Error msg ->
                prerr_endline msg;
                exit 2
            | Ok _ -> ());
            write_file bpath (read_file file);
            Printf.printf "baseline updated: %s -> %s\n" file bpath
          end
          else if not (Sys.file_exists bpath) then begin
            Printf.eprintf "FAIL: %s: no baseline at %s (run with --update)\n"
              file bpath;
            failed := true
          end
          else
            match (rows_of bpath, rows_of file) with
            | Error msg, _ | _, Error msg ->
                prerr_endline msg;
                exit 2
            | Ok baseline, Ok candidate ->
                let regs, checked, missing =
                  compare_artifact ~baseline ~candidate
                in
                if regs = [] then
                  Printf.printf
                    "ok: %s vs %s (%d metrics within %.0f%%, %d missing \
                     rows ignored)\n"
                    file bpath checked (100. *. !tolerance) missing
                else begin
                  failed := true;
                  Printf.eprintf "FAIL: %s vs %s: %d regression(s)\n" file
                    bpath (List.length regs);
                  List.iter
                    (fun (id, field, b, c, rel) ->
                      Printf.eprintf "  %s  %s: %.6g -> %.6g (%+.1f%%)\n" id
                        field b c (100. *. rel))
                    regs
                end)
        files;
      if !failed then exit 1
