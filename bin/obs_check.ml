(* Telemetry artifact checker (used by CI): validates that every file given
   on the command line is well-formed for its format, inferred from the
   extension — .json through the strict RFC 8259 validator, .folded as
   flamegraph lines ("frame;frame;... <int>"), .prom as Prometheus text
   exposition lines. Exits non-zero naming the first offending file. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_folded s =
  let bad = ref None in
  String.split_on_char '\n' s
  |> List.iteri (fun i line ->
         if !bad = None && String.trim line <> "" then
           match String.rindex_opt line ' ' with
           | None -> bad := Some (i + 1, "no self-time field")
           | Some sp -> (
               let stack = String.sub line 0 sp in
               let self =
                 String.sub line (sp + 1) (String.length line - sp - 1)
               in
               if stack = "" then bad := Some (i + 1, "empty stack")
               else
                 match int_of_string_opt self with
                 | Some n when n >= 0 -> ()
                 | _ -> bad := Some (i + 1, "self-time not a non-negative int")));
  match !bad with
  | None -> Ok ()
  | Some (ln, msg) -> Error (Printf.sprintf "line %d: %s" ln msg)

let check_prometheus s =
  let bad = ref None in
  String.split_on_char '\n' s
  |> List.iteri (fun i line ->
         if !bad = None && String.trim line <> "" then
           if String.length line >= 1 && line.[0] = '#' then ()
           else
             match String.rindex_opt line ' ' with
             | None -> bad := Some (i + 1, "no value field")
             | Some sp -> (
                 let value =
                   String.sub line (sp + 1) (String.length line - sp - 1)
                 in
                 match float_of_string_opt value with
                 | Some _ -> ()
                 | None -> bad := Some (i + 1, "value not a number")));
  match !bad with
  | None -> Ok ()
  | Some (ln, msg) -> Error (Printf.sprintf "line %d: %s" ln msg)

let check path =
  let content = read_file path in
  if String.length content = 0 then Error "empty file"
  else if Filename.check_suffix path ".json" then
    Granii_obs.Obs.Json.validate content
  else if Filename.check_suffix path ".folded" then check_folded content
  else if Filename.check_suffix path ".prom" then check_prometheus content
  else Error "unknown extension (expected .json, .folded or .prom)"

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: obs_check FILE.{json,folded,prom} ...";
    exit 2
  end;
  let failed = ref false in
  List.iter
    (fun f ->
      match check f with
      | Ok () -> Printf.printf "ok: %s\n" f
      | Error msg ->
          Printf.eprintf "FAIL: %s: %s\n" f msg;
          failed := true
      | exception Sys_error e ->
          Printf.eprintf "FAIL: %s\n" e;
          failed := true)
    files;
  if !failed then exit 1
