(* Telemetry artifact checker (used by CI): validates that every file given
   on the command line is well-formed for its format, inferred from the
   extension — .json through the strict RFC 8259 validator, .jsonl as one
   RFC 8259 document per line (the journal drain format), .folded as
   flamegraph lines ("frame;frame;... <int>"), .prom as Prometheus text
   exposition: every sample line must parse (metric name, label syntax and
   escaping, numeric value) and belong to a family announced by both a
   # HELP and a # TYPE comment. Exits non-zero naming the first offending
   file. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_folded s =
  let bad = ref None in
  String.split_on_char '\n' s
  |> List.iteri (fun i line ->
         if !bad = None && String.trim line <> "" then
           match String.rindex_opt line ' ' with
           | None -> bad := Some (i + 1, "no self-time field")
           | Some sp -> (
               let stack = String.sub line 0 sp in
               let self =
                 String.sub line (sp + 1) (String.length line - sp - 1)
               in
               if stack = "" then bad := Some (i + 1, "empty stack")
               else
                 match int_of_string_opt self with
                 | Some n when n >= 0 -> ()
                 | _ -> bad := Some (i + 1, "self-time not a non-negative int")));
  match !bad with
  | None -> Ok ()
  | Some (ln, msg) -> Error (Printf.sprintf "line %d: %s" ln msg)

(* ---- Prometheus text exposition ---- *)

let is_metric_name s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       s

let is_label_name s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

(* Validate the text between the braces of a sample: comma-separated
   name=quoted-value pairs. Escapes inside a value are limited to
   backslash, double quote and the letter n per the exposition format; an
   unescaped double quote ends the value. *)
let check_labels s =
  let n = String.length s in
  let rec pair i =
    let j = ref i in
    while !j < n && s.[!j] <> '=' do incr j done;
    if !j >= n then Error "label without '='"
    else if not (is_label_name (String.sub s i (!j - i))) then
      Error (Printf.sprintf "bad label name %S" (String.sub s i (!j - i)))
    else if !j + 1 >= n || s.[!j + 1] <> '"' then
      Error "label value not double-quoted"
    else value (!j + 2)
  and value i =
    if i >= n then Error "unterminated label value"
    else
      match s.[i] with
      | '\\' ->
          if
            i + 1 < n
            && (s.[i + 1] = '\\' || s.[i + 1] = '"' || s.[i + 1] = 'n')
          then value (i + 2)
          else Error "bad escape in label value (only \\\\ \\\" \\n)"
      | '"' ->
          if i + 1 >= n then Ok ()
          else if s.[i + 1] = ',' then pair (i + 2)
          else Error "junk after label value (expected ',' or end)"
      | _ -> value (i + 1)
  in
  if n = 0 then Ok () else pair 0

let prom_value_ok v =
  match v with
  | "+Inf" | "-Inf" | "NaN" -> true
  | _ -> float_of_string_opt v <> None

let check_prometheus s =
  let helped = Hashtbl.create 16 and typed = Hashtbl.create 16 in
  let strip_suffix name suf =
    if Filename.check_suffix name suf then
      Some (String.sub name 0 (String.length name - String.length suf))
    else None
  in
  (* a histogram's samples carry _bucket/_sum/_count suffixes; the family
     announced by # TYPE is the base name *)
  let family name =
    let base =
      match strip_suffix name "_bucket" with
      | Some b -> Some b
      | None -> (
          match strip_suffix name "_sum" with
          | Some b -> Some b
          | None -> strip_suffix name "_count")
    in
    match base with
    | Some b when Hashtbl.mem typed b -> b
    | _ -> name
  in
  let bad = ref None in
  let fail i msg = if !bad = None then bad := Some (i + 1, msg) in
  String.split_on_char '\n' s
  |> List.iteri (fun i line ->
         if !bad = None && String.trim line <> "" then
           if String.length line >= 7 && String.sub line 0 7 = "# HELP " then (
             let rest = String.sub line 7 (String.length line - 7) in
             let name =
               match String.index_opt rest ' ' with
               | Some sp -> String.sub rest 0 sp
               | None -> rest
             in
             if not (is_metric_name name) then
               fail i ("bad metric name in # HELP: " ^ name)
             else Hashtbl.replace helped name ())
           else if String.length line >= 7 && String.sub line 0 7 = "# TYPE "
           then (
             let rest = String.sub line 7 (String.length line - 7) in
             match String.split_on_char ' ' rest with
             | [ name; kind ] ->
                 if not (is_metric_name name) then
                   fail i ("bad metric name in # TYPE: " ^ name)
                 else if
                   not
                     (List.mem kind
                        [ "counter"; "gauge"; "histogram"; "summary";
                          "untyped" ])
                 then fail i ("unknown metric type " ^ kind)
                 else Hashtbl.replace typed name ()
             | _ -> fail i "malformed # TYPE line")
           else if line.[0] = '#' then () (* free-form comment *)
           else
             match String.rindex_opt line ' ' with
             | None -> fail i "no value field"
             | Some sp -> (
                 let head = String.sub line 0 sp in
                 let value =
                   String.sub line (sp + 1) (String.length line - sp - 1)
                 in
                 if not (prom_value_ok value) then
                   fail i ("value not a number: " ^ value)
                 else
                   let name_ok, name =
                     match String.index_opt head '{' with
                     | None -> (is_metric_name head, head)
                     | Some ob -> (
                         let name = String.sub head 0 ob in
                         match String.rindex_opt head '}' with
                         | Some cb when cb = String.length head - 1 ->
                             let inner =
                               String.sub head (ob + 1) (cb - ob - 1)
                             in
                             (match check_labels inner with
                             | Ok () -> (is_metric_name name, name)
                             | Error msg ->
                                 fail i msg;
                                 (true, name))
                         | _ ->
                             fail i "unbalanced label braces";
                             (true, name))
                   in
                   if !bad = None then
                     if not name_ok then fail i ("bad metric name " ^ name)
                     else
                       let fam = family name in
                       if not (Hashtbl.mem typed fam) then
                         fail i ("sample " ^ name ^ " has no # TYPE for " ^ fam)
                       else if not (Hashtbl.mem helped fam) then
                         fail i ("sample " ^ name ^ " has no # HELP for " ^ fam)));
  match !bad with
  | None -> Ok ()
  | Some (ln, msg) -> Error (Printf.sprintf "line %d: %s" ln msg)

(* ---- JSONL (one RFC 8259 document per line) ---- *)

let check_jsonl s =
  let bad = ref None in
  String.split_on_char '\n' s
  |> List.iteri (fun i line ->
         if !bad = None && String.trim line <> "" then
           match Granii_obs.Obs.Json.validate line with
           | Ok () -> ()
           | Error msg -> bad := Some (i + 1, msg));
  match !bad with
  | None -> Ok ()
  | Some (ln, msg) -> Error (Printf.sprintf "line %d: %s" ln msg)

let check path =
  let content = read_file path in
  if String.length content = 0 then Error "empty file"
  else if Filename.check_suffix path ".jsonl" then check_jsonl content
  else if Filename.check_suffix path ".json" then
    Granii_obs.Obs.Json.validate content
  else if Filename.check_suffix path ".folded" then check_folded content
  else if Filename.check_suffix path ".prom" then check_prometheus content
  else Error "unknown extension (expected .json, .jsonl, .folded or .prom)"

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: obs_check FILE.{json,jsonl,folded,prom} ...";
    exit 2
  end;
  let failed = ref false in
  List.iter
    (fun f ->
      match check f with
      | Ok () -> Printf.printf "ok: %s\n" f
      | Error msg ->
          Printf.eprintf "FAIL: %s: %s\n" f msg;
          failed := true
      | exception Sys_error e ->
          Printf.eprintf "FAIL: %s\n" e;
          failed := true)
    files;
  if !failed then exit 1
